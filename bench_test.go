package barbican_test

import (
	"strconv"
	"testing"
	"time"

	"barbican/internal/core"
	"barbican/internal/experiment"
)

// Each benchmark regenerates one of the paper's artifacts and reports
// the headline simulated metrics via b.ReportMetric, so `go test
// -bench=.` doubles as a quick reproduction run. The Quick config keeps
// sweeps to representative points; `cmd/barbican` runs the full sweeps.

var benchCfg = experiment.Config{Quick: true, Duration: time.Second}

// BenchmarkFig2AvailableBandwidth regenerates Figure 2.
func BenchmarkFig2AvailableBandwidth(b *testing.B) {
	var fig *experiment.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = experiment.Fig2(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range fig.Series {
		last := s.Points[len(s.Points)-1]
		b.ReportMetric(last.Y, "Mbps_"+metricLabel(s.Label)+"_deepest")
	}
}

// BenchmarkFig3aFloodBandwidth regenerates Figure 3(a).
func BenchmarkFig3aFloodBandwidth(b *testing.B) {
	var fig *experiment.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = experiment.Fig3a(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range fig.Series {
		last := s.Points[len(s.Points)-1]
		b.ReportMetric(last.Y, "Mbps_"+metricLabel(s.Label)+"_at12500pps")
	}
}

// BenchmarkFig3bMinFloodRate regenerates Figure 3(b).
func BenchmarkFig3bMinFloodRate(b *testing.B) {
	var fig *experiment.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = experiment.Fig3b(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range fig.Series {
		last := s.Points[len(s.Points)-1]
		b.ReportMetric(last.Y, "pps_"+metricLabel(s.Label)+"_deepest")
	}
}

// BenchmarkTable1HTTPPerformance regenerates Table 1.
func BenchmarkTable1HTTPPerformance(b *testing.B) {
	var tab *experiment.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = experiment.Table1(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Row 0 is fetches/s; column 1 is the standard NIC, last is VPG.
	if len(tab.Rows) > 0 && len(tab.Rows[0]) > 2 {
		b.ReportMetric(atof(tab.Rows[0][1]), "fetches/s_standard")
		b.ReportMetric(atof(tab.Rows[0][len(tab.Rows[0])-1]), "fetches/s_vpg")
	}
}

// BenchmarkAblationDenyResponses regenerates ablation ABL1.
func BenchmarkAblationDenyResponses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationDenyResponses(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationVPGLazyDecrypt regenerates ablation ABL2.
func BenchmarkAblationVPGLazyDecrypt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationVPGLazyDecrypt(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTrailingRules regenerates ablation ABL3.
func BenchmarkAblationTrailingRules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationTrailingRules(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// seconds of a fully loaded EFW testbed per wall-clock second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var events uint64
	for i := 0; i < b.N; i++ {
		p, err := core.RunBandwidth(core.Scenario{
			Device: core.DeviceEFW, Depth: 64,
			FloodRatePPS: 8000, FloodAllowed: true,
			Duration: time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		events += p.TargetNIC.RxFrames
	}
	b.ReportMetric(float64(events)/float64(b.N), "frames/run")
}

// BenchmarkMinFloodSearch measures a full binary search.
func BenchmarkMinFloodSearch(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		r, err := core.MinFloodRate(core.Scenario{
			Device: core.DeviceEFW, Depth: 64, FloodAllowed: true,
			Duration: time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		rate = r.RatePPS
	}
	b.ReportMetric(rate, "min_pps")
}

func metricLabel(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ' || r == '(' || r == ')':
			// skip
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func atof(s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return v
}
