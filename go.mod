module barbican

go 1.22
