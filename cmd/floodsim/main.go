// Command floodsim explores flood tolerance interactively: measure
// available bandwidth for one device/depth/flood-rate configuration, or
// search for the minimum denial-of-service flood rate.
//
// Usage:
//
//	floodsim -device efw -depth 64 -rate 8000
//	floodsim -device adf -depth 64 -deny -search
//	floodsim -device adf -rate 12500 -metrics-out /tmp/m
//
// With -metrics-out the run is recorded by the obs flight recorder and
// written in the same artifact formats as cmd/barbican: Prometheus
// text, JSON, and CSV timelines plus a final scrape-style snapshot.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"barbican/internal/core"
	"barbican/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "floodsim:", err)
		os.Exit(1)
	}
}

func parseDevice(s string) (core.Device, error) {
	switch strings.ToLower(s) {
	case "standard", "none":
		return core.DeviceStandard, nil
	case "efw":
		return core.DeviceEFW, nil
	case "adf":
		return core.DeviceADF, nil
	case "vpg", "adf-vpg":
		return core.DeviceADFVPG, nil
	case "iptables":
		return core.DeviceIPTables, nil
	default:
		return 0, fmt.Errorf("unknown device %q (standard|efw|adf|vpg|iptables)", s)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("floodsim", flag.ContinueOnError)
	deviceName := fs.String("device", "efw", "firewall under test: standard|efw|adf|vpg|iptables")
	depth := fs.Int("depth", 1, "rules (or VPGs) traversed before the action rule")
	rate := fs.Float64("rate", 0, "flood rate in packets/s (0 = no flood)")
	deny := fs.Bool("deny", false, "policy denies the flood packets instead of allowing them")
	fragment := fs.Bool("fragment", false, "split flood packets into IP fragments (evades port-based deny rules)")
	search := fs.Bool("search", false, "binary-search the minimum DoS flood rate")
	duration := fs.Duration("duration", 2*time.Second, "measurement window")
	seed := fs.Int64("seed", 0, "simulation seed (0 = 1)")
	pcapPath := fs.String("pcap", "", "write the target's wire traffic to this pcap file (single runs only)")
	metricsOut := fs.String("metrics-out", "", "write telemetry artifacts (prom/json/csv) under this directory (single runs only)")
	sampleEvery := fs.Duration("sample-every", 0, "flight-recorder tick in virtual time (0 = 50ms default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	device, err := parseDevice(*deviceName)
	if err != nil {
		return err
	}
	s := core.Scenario{
		Device:          device,
		Depth:           *depth,
		FloodRatePPS:    *rate,
		FloodAllowed:    !*deny,
		FloodFragmented: *fragment,
		Duration:        *duration,
		Seed:            *seed,
	}

	if *search {
		r, err := core.MinFloodRate(s)
		if err != nil {
			return err
		}
		if !r.Found {
			fmt.Printf("%v depth=%d: no denial of service up to %d pps\n",
				device, *depth, core.MaxSearchRatePPS)
			return nil
		}
		note := ""
		if r.LockedUp {
			note = "  (card LOCKED UP — agent restart required, as the paper observed)"
		}
		fmt.Printf("%v depth=%d flood-%s: minimum DoS flood rate ≈ %.0f pps (%d probes)%s\n",
			device, *depth, mode(!*deny), r.RatePPS, r.Probes, note)
		return nil
	}

	var p core.BandwidthPoint
	switch {
	case *metricsOut != "" && *pcapPath != "":
		return fmt.Errorf("-metrics-out and -pcap cannot be combined; run twice")
	case *metricsOut != "":
		var inst *core.Instrumentation
		p, inst, err = core.RunBandwidthInstrumented(s, *sampleEvery)
		if err != nil {
			return err
		}
		base := fmt.Sprintf("floodsim_%s_depth-%d_rate-%.0f_%s", obs.SanitizeName(device.String()), *depth, *rate, mode(!*deny))
		paths, werr := inst.WriteArtifacts(*metricsOut, base)
		if werr != nil {
			return werr
		}
		for _, path := range paths {
			fmt.Println("wrote", path)
		}
	case *pcapPath != "":
		p, err = runWithCapture(s, *pcapPath)
	default:
		p, err = core.RunBandwidth(s)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%v depth=%d flood=%.0f pps (%s): %.1f Mbps available\n",
		device, *depth, *rate, mode(!*deny), p.Mbps())
	if p.TargetLocked {
		fmt.Println("target card LOCKED UP during the flood")
	}
	st := p.TargetNIC
	fmt.Printf("target card: rx %d frames (%d allowed, %d denied, %d overload-dropped), tx %d (%d overload-dropped)\n",
		st.RxFrames, st.RxAllowed, st.RxDenied, st.RxOverloadDrops, st.TxAllowed, st.TxOverloadDrops)
	return nil
}

func mode(allowed bool) string {
	if allowed {
		return "allowed"
	}
	return "denied"
}

// runWithCapture mirrors core.RunBandwidth but taps the client's wire
// and writes a pcap of the run.
func runWithCapture(s core.Scenario, path string) (core.BandwidthPoint, error) {
	p, cap, err := core.RunBandwidthCaptured(s)
	if err != nil {
		return p, err
	}
	f, err := os.Create(path)
	if err != nil {
		return p, err
	}
	defer f.Close()
	if err := cap.WritePCAP(f); err != nil {
		return p, err
	}
	fmt.Printf("wrote %d captured frames to %s\n", cap.Len(), path)
	return p, nil
}
