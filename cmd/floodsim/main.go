// Command floodsim explores flood tolerance interactively: measure
// available bandwidth for one device/depth/flood-rate configuration,
// search for the minimum denial-of-service flood rate, or sweep a grid
// of configurations in parallel.
//
// Usage:
//
//	floodsim -device efw -depth 64 -rate 8000
//	floodsim -device adf -depth 64 -deny -search
//	floodsim -device adf -rate 12500 -metrics-out /tmp/m -trace-out /tmp/t
//	floodsim -device efw -depths 1,16,64 -rates 4000,8000,12500 -parallel 4
//	floodsim -device adf -rate 8000 -faults loss=0.05,corrupt=0.01,down=1s-1.5s -fault-seed 42
//
// With -faults a deterministic fault-injection plan (see
// internal/faults) is attached to the target's access link: seeded
// probabilistic frame loss, single-bit corruption, duplication,
// reordering, and scheduled link-down windows.
//
// With -metrics-out the run is recorded by the obs flight recorder and
// written in the same artifact formats as cmd/barbican: Prometheus
// text, JSON, and CSV timelines plus a final scrape-style snapshot.
//
// With -profile-out the run is profiled in both domains — card cost
// units attributed per NIC/phase/rule, and host wall time per kernel
// event handler — and written as gzipped pprof plus folded stacks
// (see barbican profile to summarize or diff them).
//
// With -depths and/or -rates the tool sweeps the cross product on
// -parallel workers. Each point owns a private simulation, and output
// is routed through an ordered collector: the lowest unfinished point
// streams live, later points buffer until their turn, so concurrent
// workers can never interleave partial lines and the output is
// byte-identical to a serial run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"barbican/internal/core"
	"barbican/internal/faults"
	"barbican/internal/obs"
	"barbican/internal/obs/profile"
	"barbican/internal/obs/tracing"
	"barbican/internal/runner"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "floodsim:", err)
		os.Exit(1)
	}
}

func parseDevice(s string) (core.Device, error) {
	switch strings.ToLower(s) {
	case "standard", "none":
		return core.DeviceStandard, nil
	case "efw":
		return core.DeviceEFW, nil
	case "adf":
		return core.DeviceADF, nil
	case "vpg", "adf-vpg":
		return core.DeviceADFVPG, nil
	case "iptables":
		return core.DeviceIPTables, nil
	case "nextgen":
		return core.DeviceNextGen, nil
	default:
		return 0, fmt.Errorf("unknown device %q (standard|efw|adf|vpg|iptables|nextgen)", s)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("floodsim", flag.ContinueOnError)
	deviceName := fs.String("device", "efw", "firewall under test: standard|efw|adf|vpg|iptables|nextgen")
	depth := fs.Int("depth", 1, "rules (or VPGs) traversed before the action rule")
	rate := fs.Float64("rate", 0, "flood rate in packets/s (0 = no flood)")
	deny := fs.Bool("deny", false, "policy denies the flood packets instead of allowing them")
	fragment := fs.Bool("fragment", false, "split flood packets into IP fragments (evades port-based deny rules)")
	search := fs.Bool("search", false, "binary-search the minimum DoS flood rate")
	duration := fs.Duration("duration", 2*time.Second, "measurement window")
	seed := fs.Int64("seed", 0, "simulation seed (0 = 1)")
	faultSpec := fs.String("faults", "", `fault plan for the target's access link, e.g. "loss=0.05,corrupt=0.01,dup=0.02,reorder=0.05,down=1s-2s"`)
	faultSeed := fs.Int64("fault-seed", 0, "fault-injector seed (0 = simulation seed)")
	depthList := fs.String("depths", "", "comma-separated depth sweep (overrides -depth; enables sweep mode)")
	rateList := fs.String("rates", "", "comma-separated flood-rate sweep (overrides -rate; enables sweep mode)")
	parallel := fs.Int("parallel", 0, "sweep points measured concurrently (0 = GOMAXPROCS, 1 = serial)")
	pcapPath := fs.String("pcap", "", "write the target's wire traffic to this pcap file (single runs only)")
	metricsOut := fs.String("metrics-out", "", "write telemetry artifacts (prom/json/csv) under this directory (single runs only)")
	sampleEvery := fs.Duration("sample-every", 0, "flight-recorder tick in virtual time (0 = 50ms default)")
	traceOut := fs.String("trace-out", "", "write packet-lifecycle traces (Perfetto JSON + text) under this directory (single runs only)")
	traceSample := fs.Int("trace-sample", 0, "trace 1 packet in N (0 = 64 default; needs -trace-out)")
	profileOut := fs.String("profile-out", "", "write dual-domain profiles (pprof + folded stacks) under this directory (single runs only)")
	profileSample := fs.Int("profile-sample", 0, "kernel profiler samples 1 event in N (0 = 16 default; needs -profile-out)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	device, err := parseDevice(*deviceName)
	if err != nil {
		return err
	}
	s := core.Scenario{
		Device:          device,
		Depth:           *depth,
		FloodRatePPS:    *rate,
		FloodAllowed:    !*deny,
		FloodFragmented: *fragment,
		Duration:        *duration,
		Seed:            *seed,
		FaultSeed:       *faultSeed,
	}
	if *faultSpec != "" {
		plan, err := faults.ParsePlan(*faultSpec)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		s.Faults = &plan
	}

	if *depthList != "" || *rateList != "" {
		if *metricsOut != "" || *traceOut != "" || *profileOut != "" || *pcapPath != "" {
			return fmt.Errorf("-metrics-out, -trace-out, -profile-out, and -pcap apply to single runs only, not sweeps")
		}
		depths, err := parseInts(*depthList, *depth)
		if err != nil {
			return fmt.Errorf("-depths: %w", err)
		}
		rates, err := parseFloats(*rateList, *rate)
		if err != nil {
			return fmt.Errorf("-rates: %w", err)
		}
		return runSweep(s, depths, rates, *search, *parallel)
	}

	if *search {
		r, err := core.MinFloodRate(s)
		if err != nil {
			return err
		}
		fmt.Print(searchReport(s, r))
		return nil
	}

	var p core.BandwidthPoint
	switch {
	case (*metricsOut != "" || *traceOut != "" || *profileOut != "") && *pcapPath != "":
		return fmt.Errorf("-metrics-out/-trace-out/-profile-out and -pcap cannot be combined; run twice")
	case *metricsOut != "" || *traceOut != "" || *profileOut != "":
		opt := core.ObserveOptions{SampleEvery: *sampleEvery}
		if *traceOut != "" {
			n := *traceSample
			if n <= 0 {
				n = tracing.DefaultSampleEvery
			}
			opt.Trace = tracing.Options{SampleEvery: n}
		}
		if *profileOut != "" {
			opt.Profile = &profile.Options{KernelSampleEvery: *profileSample}
		}
		var inst *core.Instrumentation
		p, inst, err = core.RunBandwidthObserved(s, opt)
		if err != nil {
			return err
		}
		base := fmt.Sprintf("floodsim_%s_depth-%d_rate-%.0f_%s", obs.SanitizeName(device.String()), *depth, *rate, mode(!*deny))
		var paths []string
		if *metricsOut != "" {
			mp, werr := inst.WriteArtifacts(*metricsOut, base)
			if werr != nil {
				return werr
			}
			paths = append(paths, mp...)
		}
		if *traceOut != "" {
			tp, werr := inst.WriteTraceArtifacts(*traceOut, base)
			if werr != nil {
				return werr
			}
			paths = append(paths, tp...)
		}
		if *profileOut != "" {
			pp, werr := inst.WriteProfileArtifacts(*profileOut, base)
			if werr != nil {
				return werr
			}
			paths = append(paths, pp...)
		}
		for _, path := range paths {
			fmt.Println("wrote", path)
		}
	case *pcapPath != "":
		p, err = runWithCapture(s, *pcapPath)
	default:
		p, err = core.RunBandwidth(s)
	}
	if err != nil {
		return err
	}
	fmt.Print(bandwidthReport(s, p))
	return nil
}

// searchReport renders a minimum-flood-rate search result in the tool's
// single-run format.
func searchReport(s core.Scenario, r core.MinFloodResult) string {
	if !r.Found {
		return fmt.Sprintf("%v depth=%d: no denial of service up to %d pps\n",
			s.Device, s.Depth, core.MaxSearchRatePPS)
	}
	note := ""
	if r.LockedUp {
		note = "  (card LOCKED UP — agent restart required, as the paper observed)"
	}
	return fmt.Sprintf("%v depth=%d flood-%s: minimum DoS flood rate ≈ %.0f pps (%d probes)%s\n",
		s.Device, s.Depth, mode(s.FloodAllowed), r.RatePPS, r.Probes, note)
}

// bandwidthReport renders a bandwidth point in the tool's single-run
// format.
func bandwidthReport(s core.Scenario, p core.BandwidthPoint) string {
	out := fmt.Sprintf("%v depth=%d flood=%.0f pps (%s): %.1f Mbps available\n",
		s.Device, s.Depth, s.FloodRatePPS, mode(s.FloodAllowed), p.Mbps())
	if p.TargetLocked {
		out += "target card LOCKED UP during the flood\n"
	}
	st := p.TargetNIC
	out += fmt.Sprintf("target card: rx %d frames (%d allowed, %d denied, %d overload-dropped), tx %d (%d overload-dropped)\n",
		st.RxFrames, st.RxAllowed, st.RxDenied, st.RxOverloadDrops, st.TxAllowed, st.TxOverloadDrops)
	return out
}

// runSweep measures the depths × rates cross product on the executor.
// Point-level output goes through an ordered collector, so concurrent
// workers never interleave partial lines and the byte stream matches a
// serial run of the same sweep. With -search each depth searches
// independently (rates are ignored; the search picks its own probes).
func runSweep(base core.Scenario, depths []int, rates []float64, search bool, parallel int) error {
	type point struct {
		s core.Scenario
	}
	var points []point
	for _, d := range depths {
		sc := base
		sc.Depth = d
		if search {
			points = append(points, point{s: sc})
			continue
		}
		for _, r := range rates {
			sr := sc
			sr.FloodRatePPS = r
			points = append(points, point{s: sr})
		}
	}

	col := runner.NewCollector(os.Stdout, len(points))
	start := time.Now()
	var simSecs float64
	var mu sync.Mutex
	_, err := runner.Map(runner.Pool{Workers: parallel}, len(points), func(i int) (struct{}, error) {
		defer col.Done(i)
		sc := points[i].s
		if search {
			r, err := core.MinFloodRate(sc)
			if err != nil {
				return struct{}{}, err
			}
			mu.Lock()
			simSecs += r.SimSeconds
			mu.Unlock()
			col.Printf(i, "%s", searchReport(sc, r))
			return struct{}{}, nil
		}
		p, err := core.RunBandwidth(sc)
		if err != nil {
			return struct{}{}, err
		}
		mu.Lock()
		simSecs += p.SimSeconds
		mu.Unlock()
		col.Printf(i, "%s", bandwidthReport(sc, p))
		return struct{}{}, nil
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	line := fmt.Sprintf("(%d points in %v wall clock", len(points), elapsed.Round(time.Millisecond))
	if elapsed > 0 {
		line += fmt.Sprintf(", %.1f sim-s/wall-s", simSecs/elapsed.Seconds())
	}
	fmt.Println(line + ")")
	return nil
}

// parseInts parses a comma-separated integer list; empty falls back to
// the single default.
func parseInts(list string, def int) ([]int, error) {
	if list == "" {
		return []int{def}, nil
	}
	var out []int
	for _, f := range strings.Split(list, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFloats parses a comma-separated float list; empty falls back to
// the single default.
func parseFloats(list string, def float64) ([]float64, error) {
	if list == "" {
		return []float64{def}, nil
	}
	var out []float64
	for _, f := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func mode(allowed bool) string {
	if allowed {
		return "allowed"
	}
	return "denied"
}

// runWithCapture mirrors core.RunBandwidth but taps the client's wire
// and writes a pcap of the run.
func runWithCapture(s core.Scenario, path string) (core.BandwidthPoint, error) {
	p, cap, err := core.RunBandwidthCaptured(s)
	if err != nil {
		return p, err
	}
	f, err := os.Create(path)
	if err != nil {
		return p, err
	}
	defer f.Close()
	if err := cap.WritePCAP(f); err != nil {
		return p, err
	}
	fmt.Printf("wrote %d captured frames to %s\n", cap.Len(), path)
	return p, nil
}
