package main

import (
	"path/filepath"
	"testing"

	"barbican/internal/core"
)

func TestParseDevice(t *testing.T) {
	tests := []struct {
		give    string
		want    core.Device
		wantErr bool
	}{
		{give: "efw", want: core.DeviceEFW},
		{give: "EFW", want: core.DeviceEFW},
		{give: "adf", want: core.DeviceADF},
		{give: "vpg", want: core.DeviceADFVPG},
		{give: "adf-vpg", want: core.DeviceADFVPG},
		{give: "iptables", want: core.DeviceIPTables},
		{give: "standard", want: core.DeviceStandard},
		{give: "none", want: core.DeviceStandard},
		{give: "3com", wantErr: true},
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseDevice(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parseDevice(%q) = %v, want error", tt.give, got)
			}
			continue
		}
		if err != nil || got != tt.want {
			t.Errorf("parseDevice(%q) = %v, %v; want %v", tt.give, got, err, tt.want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-device", "hal9000"}); err == nil {
		t.Error("unknown device accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunMeasurementAndPcap(t *testing.T) {
	pcap := filepath.Join(t.TempDir(), "out.pcap")
	err := run([]string{"-device", "efw", "-depth", "4", "-rate", "1000",
		"-duration", "200ms", "-pcap", pcap})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("binary search is slow")
	}
	if err := run([]string{"-device", "efw", "-depth", "64", "-search", "-duration", "1s"}); err != nil {
		t.Fatalf("run -search: %v", err)
	}
}
