// Command barbicanvet is the repository's multichecker: it runs the
// barbican-specific static analyzers from internal/analysis over the
// module and reports every finding in file:line:col form.
//
// Checks:
//
//	walltime   - no host-clock reads in deterministic packages
//	seededrand - no global math/rand functions outside tests
//	maporder   - no map-iteration order escaping into output
//	exhaustive - DropReason / FindingKind / fw ConnState / nic FailMode + DegradedState + StateRecovery / conntrack TCPState + EvictPolicy + CommitStatus / sem RegionClass switches and tables cover every constant
//	setterbypass - nic.NIC's rules and ct fields are written only through setRules / setConntrack (flow-cache invalidation contract)
//	noalloc    - //barbican:noalloc functions stay free of heap escapes
//
// Usage:
//
//	go run ./cmd/barbicanvet ./...
//
// Flags:
//
//	-out FILE    also write findings to FILE (one per line), for CI artifacts
//	-noalloc     run the escape-analysis gate (default true; needs the go tool)
//
// Exit status: 0 when clean, 1 when any finding is reported, 2 on
// loader or tool errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"barbican/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	out := flag.String("out", "", "also write findings to this file, one per line")
	noalloc := flag.Bool("noalloc", true, "run the //barbican:noalloc escape-analysis gate")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: barbicanvet [-out file] [-noalloc=false] [./...]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "barbicanvet: %v\n", err)
		return 2
	}

	pkgs, err := analysis.NewLoader().LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "barbicanvet: load module: %v\n", err)
		return 2
	}
	pkgs = filterPackages(pkgs, root, flag.Args())
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "barbicanvet: no packages matched")
		return 2
	}

	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "barbicanvet: type error in %s: %v\n", p.ImportPath, terr)
		}
	}

	diags, err := analysis.Run(pkgs, analysis.Suite())
	if err != nil {
		fmt.Fprintf(os.Stderr, "barbicanvet: %v\n", err)
		return 2
	}

	if *noalloc {
		allocDiags, err := analysis.NoAllocGate(root, pkgs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "barbicanvet: noalloc gate: %v\n", err)
			return 2
		}
		diags = append(diags, allocDiags...)
	}

	var lines []string
	for _, d := range diags {
		lines = append(lines, relativize(root, d))
	}
	for _, l := range lines {
		fmt.Println(l)
	}
	if *out != "" {
		body := strings.Join(lines, "\n")
		if body != "" {
			body += "\n"
		}
		if err := os.WriteFile(*out, []byte(body), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "barbicanvet: write %s: %v\n", *out, err)
			return 2
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "barbicanvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// filterPackages narrows the module's package list to the requested
// patterns. "./..." (or no arguments) selects everything; "./dir/..."
// selects a subtree; "./dir" selects one directory.
func filterPackages(pkgs []*analysis.Package, root string, patterns []string) []*analysis.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	var keep []*analysis.Package
	for _, p := range pkgs {
		rel, err := filepath.Rel(root, p.Dir)
		if err != nil {
			continue
		}
		rel = filepath.ToSlash(rel)
		for _, pat := range patterns {
			if matchPattern(rel, pat) {
				keep = append(keep, p)
				break
			}
		}
	}
	return keep
}

func matchPattern(rel, pat string) bool {
	pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
	if pat == "..." || pat == "" {
		return true
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == sub || strings.HasPrefix(rel, sub+"/")
	}
	return rel == pat
}

// relativize renders a diagnostic with the file path relative to the
// module root so output is stable across machines.
func relativize(root string, d analysis.Diagnostic) string {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}
