package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCheckValidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.txt")
	text := "allow in proto tcp from any to any port 80\ndefault deny\n"
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"check", path}); err != nil {
		t.Fatalf("check: %v", err)
	}
}

func TestCheckInvalidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte("nonsense\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"check", path}); err == nil {
		t.Error("invalid policy accepted")
	}
}

func TestCheckMissingArgs(t *testing.T) {
	if err := run([]string{"check"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
}

func TestAnalyzeSubcommand(t *testing.T) {
	clean := filepath.Join(t.TempDir(), "clean.txt")
	if err := os.WriteFile(clean, []byte("allow in proto tcp from any to any port 80\ndefault deny\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"analyze", clean}); err != nil {
		t.Fatalf("analyze clean: %v", err)
	}
	shadowed := filepath.Join(t.TempDir(), "shadowed.txt")
	text := "deny in from 10.0.0.0/8 to any\n" +
		"allow in proto tcp from 10.1.0.0/16 to any port 80\n" +
		"default deny\n"
	if err := os.WriteFile(shadowed, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"analyze", shadowed}); err == nil {
		t.Error("analyze of shadowed policy reported no findings")
	}
}

func TestOracleSubcommand(t *testing.T) {
	if err := run([]string{"oracle"}); err != nil {
		t.Fatalf("oracle: %v", err)
	}
}

func TestDemoPushesBuiltinPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	if err := run([]string{"demo", "-"}); err != nil {
		t.Fatalf("demo: %v", err)
	}
}
