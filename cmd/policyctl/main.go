// Command policyctl works with barbican policy files.
//
// Usage:
//
//	policyctl check <file>            validate a policy file and print its canonical form
//	policyctl lint <file> [flags]     cross-rule analysis: conflicts, redundancy,
//	                                  unreachable rules, and depth cost warnings
//	                                  (-exact proves findings over the whole packet space)
//	policyctl verify <file> [flags]   exhaustively prove the compiled classifier equals
//	                                  the linear walk for the policy (or -generate corpus)
//	policyctl verify <a> <b>          prove two policies verdict-identical over the
//	                                  entire packet space, or print witness packets
//	policyctl diff <a> <b> [flags]    exact semantic diff: per-class changed-packet
//	                                  counts and witness packets for each changed region
//	policyctl oracle                  print the built-in Oracle-server example policy
//	policyctl demo <file>             push the policy to a simulated EFW fleet and report
//	policyctl explain <file> [flags]  replay one packet against the policy and predict
//	                                  matched rule, depth walked, and per-stage cost
//	policyctl health [flags]          run the canonical flood-detection scenario and
//	                                  render the fleet-health table and alert timeline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"barbican/internal/core"
	"barbican/internal/experiment"
	"barbican/internal/fw"
	"barbican/internal/fw/sem"
	"barbican/internal/nic"
	"barbican/internal/packet"
	"barbican/internal/policy"
	"barbican/internal/stack"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "policyctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("policyctl", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: policyctl check <file> | lint <file> [flags] | verify <file> [<file>] [flags] | diff <a> <b> [flags] | analyze <file> | oracle | demo <file> | explain <file> [flags] | health [flags]")
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch fs.Arg(0) {
	case "check":
		return check(fs.Arg(1))
	case "analyze":
		return analyze(fs.Arg(1))
	case "lint":
		var flags []string
		if fs.NArg() > 2 {
			flags = fs.Args()[2:]
		}
		return lint(fs.Arg(1), flags)
	case "verify":
		return verify(fs.Args()[1:])
	case "diff":
		return diffCmd(fs.Args()[1:])
	case "oracle":
		fmt.Print(policy.OraclePolicy)
		return nil
	case "demo":
		return demo(fs.Arg(1))
	case "explain":
		var flags []string
		if fs.NArg() > 2 {
			flags = fs.Args()[2:]
		}
		return explain(fs.Arg(1), flags)
	case "health":
		return health(fs.Args()[1:])
	default:
		fs.Usage()
		return fmt.Errorf("unknown subcommand %q", fs.Arg(0))
	}
}

// analyze reports shadowed and redundant rules — the static check behind
// the paper's advice to order rule-sets deliberately.
func analyze(path string) error {
	text, err := readPolicy(path)
	if err != nil {
		return err
	}
	rs, err := policy.Parse(text)
	if err != nil {
		return err
	}
	findings := rs.Analyze()
	if len(findings) == 0 {
		fmt.Printf("# %d rules, no shadowed or redundant rules\n", rs.Len())
		return nil
	}
	for _, f := range findings {
		fmt.Println(f)
		fmt.Printf("  rule %d: %s\n", f.By, rs.Rule(f.By))
		fmt.Printf("  rule %d: %s\n", f.Rule, rs.Rule(f.Rule))
	}
	return fmt.Errorf("%d finding(s)", len(findings))
}

// lintFinding is the JSON form of one finding.
type lintFinding struct {
	Severity string `json:"severity"`
	Kind     string `json:"kind"`
	Rule     int    `json:"rule"`
	By       int    `json:"by,omitempty"`
	Covering []int  `json:"covering,omitempty"`
	Depth    int    `json:"depth,omitempty"`
	Message  string `json:"message"`
	// SustainablePPS predicts the packet rate the selected card can
	// sustain for packets that traverse to this rule's depth (Fig. 2's
	// cost model); set for depth findings only.
	SustainablePPS float64 `json:"sustainablePps,omitempty"`
	// SustainablePPSNextGen is the same prediction on the NextGen
	// compiled-matcher card, whose cost is flat in depth — the
	// comparison column showing what escaping the linear walk buys.
	SustainablePPSNextGen float64 `json:"sustainablePpsNextgen,omitempty"`
}

// lint runs the cross-rule policy linter: conflicting, shadowed,
// redundant, and unreachable rules are order/coverage bugs; depth
// findings translate rule position into the card's sustainable packet
// rate via the Fig. 2 cost model. Exit status is 1 when any
// error-severity finding (conflict, shadowed, unreachable) is present.
// With -exact, findings come from the sem engine's proven region
// analysis instead of the box-subtraction heuristic: cross-class
// coverage is detected, phantom conflicts disappear, and every
// covering list names the rules that actually take the packets.
func lint(path string, args []string) error {
	fs := flag.NewFlagSet("policyctl lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	device := fs.String("device", "efw", "card profile for depth predictions: standard|efw|adf|nextgen")
	depthWarn := fs.Int("depth-warn", 16, "note reachable rules deeper than this position (0 disables)")
	exact := fs.Bool("exact", false, "prove findings with the exact semantics engine instead of the heuristic")
	if err := fs.Parse(args); err != nil {
		return err
	}
	text, err := readPolicy(path)
	if err != nil {
		return err
	}
	rs, err := policy.Parse(text)
	if err != nil {
		return err
	}
	profile, err := nic.ProfileByName(*device)
	if err != nil {
		return err
	}

	var findings []fw.Finding
	if *exact {
		findings = sem.ExactLint(rs, fw.LintOptions{DepthWarn: *depthWarn})
	} else {
		findings = rs.Lint(fw.LintOptions{DepthWarn: *depthWarn})
	}
	nextgen := nic.NextGen()
	out := make([]lintFinding, 0, len(findings))
	errors := 0
	for _, f := range findings {
		lf := lintFinding{
			Severity: f.Kind.Severity().String(),
			Kind:     f.Kind.String(),
			Rule:     f.Rule,
			By:       f.By,
			Covering: f.Covering,
			Depth:    f.Depth,
			Message:  f.String(),
		}
		if f.Kind == fw.FindingDepth && profile.CapacityUnits > 0 {
			lf.SustainablePPS = profile.CapacityUnits / profile.Cost(f.Depth, 0)
			lf.SustainablePPSNextGen = nextgen.CapacityUnits / nextgen.Cost(f.Depth, 0)
		}
		if f.Kind.Severity() == fw.SeverityError {
			errors++
		}
		out = append(out, lf)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		for _, lf := range out {
			fmt.Printf("%s: %s\n", lf.Severity, lf.Message)
			if lf.By != 0 {
				fmt.Printf("  rule %d: %s\n", lf.By, rs.Rule(lf.By))
			}
			for _, j := range lf.Covering {
				fmt.Printf("  rule %d: %s\n", j, rs.Rule(j))
			}
			if lf.Rule != 0 && lf.Kind != "deep" {
				fmt.Printf("  rule %d: %s\n", lf.Rule, rs.Rule(lf.Rule))
			}
			if lf.SustainablePPS > 0 {
				fmt.Printf("  %s sustains ≈ %.0f pkt/s for packets walking %d rules\n",
					profile.Name, lf.SustainablePPS, lf.Depth)
				fmt.Printf("  %s (compiled) sustains ≈ %.0f pkt/s at that depth\n",
					nextgen.Name, lf.SustainablePPSNextGen)
			}
		}
		fmt.Printf("# %d rules, %d finding(s)\n", rs.Len(), len(out))
	}
	if errors > 0 {
		return fmt.Errorf("%d error-severity finding(s)", errors)
	}
	return nil
}

// verify runs exhaustive proofs. With one policy it proves the
// compiled classifier byte-identical to the linear walk over every
// atomic region of the packet space — the full-coverage upgrade of the
// sampled differential test. With two policies it proves them
// verdict-identical (semantic convergence), or prints witness packets
// for the difference. With -generate it verifies a seeded random
// corpus instead of a file. Exit status is 1 when any proof fails.
func verify(args []string) error {
	fs := flag.NewFlagSet("policyctl verify", flag.ContinueOnError)
	generate := fs.Int("generate", 0, "verify this many generated rule sets instead of a file")
	seed := fs.Int64("seed", 1, "corpus seed for -generate")
	genRules := fs.Int("rules", 24, "rules per generated set for -generate")
	maxRegions := fs.Uint64("max-regions", 0, "region budget per proof (0 = engine default)")
	strict := fs.Bool("strict", false, "two-policy mode: require identical deciding rules, not just identical actions")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *generate > 0 {
		r := rand.New(rand.NewSource(*seed))
		var regions uint64
		for i := 0; i < *generate; i++ {
			rs := sem.Generate(r, sem.GenOptions{Rules: *genRules})
			res, err := sem.VerifyCompiled(rs, sem.VerifyOptions{MaxRegions: *maxRegions})
			if err != nil {
				return fmt.Errorf("corpus seed %d set %d: %w", *seed, i, err)
			}
			if !res.OK() {
				fmt.Printf("FAIL corpus seed %d set %d (%d rules):\n", *seed, i, rs.Len())
				printVerifyFailure(res, rs)
				return fmt.Errorf("compiled classifier diverges from the linear walk")
			}
			regions += res.Regions
		}
		fmt.Printf("ok: %d generated rule sets (seed %d, %d rules each), %d regions proven\n",
			*generate, *seed, *genRules, regions)
		return nil
	}

	switch fs.NArg() {
	case 1:
		rs, err := loadPolicy(fs.Arg(0))
		if err != nil {
			return err
		}
		res, err := sem.VerifyCompiled(rs, sem.VerifyOptions{MaxRegions: *maxRegions})
		if err != nil {
			return err
		}
		if !res.OK() {
			printVerifyFailure(res, rs)
			return fmt.Errorf("compiled classifier diverges from the linear walk")
		}
		fmt.Printf("ok: compiled classifier == linear walk over all %d atomic regions (%d rules)\n",
			res.Regions, res.Rules)
		return nil
	case 2:
		a, err := loadPolicy(fs.Arg(0))
		if err != nil {
			return err
		}
		b, err := loadPolicy(fs.Arg(1))
		if err != nil {
			return err
		}
		res, err := sem.Diff(a, b, sem.DiffOptions{StrictIndex: *strict, MaxRegions: *maxRegions})
		if err != nil {
			return err
		}
		if !res.Equivalent {
			fmt.Printf("NOT equivalent: %v packets change action, %v change deciding rule (%d regions)\n",
				res.ChangedPackets, res.RedecidedPackets, res.ChangedRegions)
			for _, w := range res.Witnesses {
				fmt.Printf("  %v\n", w)
			}
			return fmt.Errorf("policies are not semantically equivalent")
		}
		fmt.Printf("ok: policies are verdict-identical over the entire packet space")
		if !*strict && res.RedecidedPackets.Sign() != 0 {
			fmt.Printf(" (%v packets decided by a different rule; -strict rejects this)", res.RedecidedPackets)
		}
		fmt.Println()
		return nil
	default:
		return fmt.Errorf("verify needs one policy, two policies, or -generate N")
	}
}

func printVerifyFailure(res *sem.VerifyResult, rs *fw.RuleSet) {
	if res.Mismatch != nil {
		fmt.Printf("  %v\n", res.Mismatch)
	}
	if res.ParityError != "" {
		fmt.Printf("  counter parity: %s\n", res.ParityError)
	}
	fmt.Printf("policy under test:\n%v", rs)
}

// diffCmd prints the exact semantic diff between two policies: how
// many packets change verdict, in which direction, and one witness
// packet per changed traffic class. The witness line replays verbatim
// through `policyctl explain`.
func diffCmd(args []string) error {
	fs := flag.NewFlagSet("policyctl diff", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the diff as JSON")
	witnesses := fs.Int("witnesses", 8, "maximum witness packets to print")
	maxRegions := fs.Uint64("max-regions", 0, "region budget (0 = engine default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff needs exactly two policy files")
	}
	a, err := loadPolicy(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := loadPolicy(fs.Arg(1))
	if err != nil {
		return err
	}
	res, err := sem.Diff(a, b, sem.DiffOptions{MaxWitnesses: *witnesses, MaxRegions: *maxRegions})
	if err != nil {
		return err
	}

	if *jsonOut {
		type jsonWitness struct {
			Class   string `json:"class"`
			From    string `json:"from"`
			To      string `json:"to"`
			Region  string `json:"region"`
			Packet  string `json:"packet"`
			Dir     string `json:"dir"`
			Proto   int    `json:"proto"`
			Src     string `json:"src"`
			Dst     string `json:"dst"`
			SrcPort int    `json:"srcPort"`
			DstPort int    `json:"dstPort"`
			Sealed  bool   `json:"sealed"`
		}
		doc := struct {
			Equivalent     bool          `json:"equivalent"`
			ChangedPackets string        `json:"changedPackets"`
			Redecided      string        `json:"redecidedPackets"`
			Total          string        `json:"totalPackets"`
			AllowToDeny    string        `json:"allowToDeny"`
			DenyToAllow    string        `json:"denyToAllow"`
			ChangedRegions uint64        `json:"changedRegions"`
			Witnesses      []jsonWitness `json:"witnesses"`
		}{
			Equivalent:     res.Equivalent,
			ChangedPackets: res.ChangedPackets.String(),
			Redecided:      res.RedecidedPackets.String(),
			Total:          res.TotalPackets.String(),
			AllowToDeny:    res.ByClass[sem.RegionAllowToDeny].String(),
			DenyToAllow:    res.ByClass[sem.RegionDenyToAllow].String(),
			ChangedRegions: res.ChangedRegions,
			Witnesses:      make([]jsonWitness, 0, len(res.Witnesses)),
		}
		for _, w := range res.Witnesses {
			doc.Witnesses = append(doc.Witnesses, jsonWitness{
				Class: w.Class.String(), From: w.From.String(), To: w.To.String(),
				Region: w.Region.String(), Packet: fmt.Sprint(w.Packet), Dir: w.Dir.String(),
				Proto: int(w.Packet.Proto), Src: w.Packet.Src.String(), Dst: w.Packet.Dst.String(),
				SrcPort: int(w.Packet.SrcPort), DstPort: int(w.Packet.DstPort), Sealed: w.Packet.Sealed,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}

	if res.Equivalent && res.RedecidedPackets.Sign() == 0 {
		fmt.Println("policies are semantically identical (every packet: same action, same deciding rule)")
		return nil
	}
	fmt.Printf("changed packets: %v of %v\n", res.ChangedPackets, res.TotalPackets)
	fmt.Printf("  allow -> deny: %v\n", res.ByClass[sem.RegionAllowToDeny])
	fmt.Printf("  deny -> allow: %v\n", res.ByClass[sem.RegionDenyToAllow])
	fmt.Printf("  redecided (same action, different rule): %v\n", res.RedecidedPackets)
	fmt.Printf("changed regions: %d\n", res.ChangedRegions)
	for _, w := range res.Witnesses {
		fmt.Printf("  %v\n", w)
	}
	return nil
}

// loadPolicy reads and parses one policy argument ("-" is the
// built-in Oracle example).
func loadPolicy(path string) (*fw.RuleSet, error) {
	text, err := readPolicy(path)
	if err != nil {
		return nil, err
	}
	return policy.Parse(text)
}

func readPolicy(path string) (string, error) {
	if path == "" {
		return "", fmt.Errorf("missing policy file argument")
	}
	if path == "-" {
		return policy.OraclePolicy, nil
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func check(path string) error {
	text, err := readPolicy(path)
	if err != nil {
		return err
	}
	rs, err := policy.Parse(text)
	if err != nil {
		return err
	}
	fmt.Printf("# valid: %d rules, default %v\n", rs.Len(), rs.Default())
	fmt.Print(policy.Format(rs))
	return nil
}

// demo pushes the policy to a simulated fleet of EFW-protected hosts and
// prints the audit log.
func demo(path string) error {
	text, err := readPolicy(path)
	if err != nil {
		return err
	}
	if _, err := policy.Parse(text); err != nil {
		return err
	}

	tb, err := core.NewTestbed(core.TestbedOptions{TargetDevice: core.DeviceEFW, ClientDevice: core.DeviceEFW})
	if err != nil {
		return err
	}
	extra, err := tb.AddHost("db-server", packet.MustIP("10.0.0.3"), core.DeviceEFW, true)
	if err != nil {
		return err
	}

	psk := policy.DeriveKey("demo")
	srv := policy.NewServer(tb.PolicyServer, psk)
	fleet := map[string]*policyHost{
		"client":    {host: tb.Client},
		"target":    {host: tb.Target},
		"db-server": {host: extra},
	}
	for name, ph := range fleet {
		agent, err := policy.NewAgent(ph.host, tb.PolicyServer.IP(), psk)
		if err != nil {
			return err
		}
		ph.agent = agent
		if _, err := srv.SetPolicy(name, text); err != nil {
			return err
		}
		if err := srv.Push(name, ph.host.IP(), nil); err != nil {
			return err
		}
	}
	if err := tb.Kernel.RunUntil(10 * time.Second); err != nil {
		return err
	}

	for _, e := range srv.Audit() {
		fmt.Println(e)
	}
	names := make([]string, 0, len(fleet))
	for name := range fleet {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ph := fleet[name]
		fmt.Printf("%-10s installed v%d (%d rules on card)\n",
			name, ph.agent.InstalledVersion(), ph.host.NIC().RuleSet().Len())
	}
	return nil
}

type policyHost struct {
	host  *stack.Host
	agent *policy.Agent
}

// health runs the canonical detection scenario — an admitted flood
// against a telemetry-reporting fleet with a responsive deny push —
// and prints the operator's view: headline detection metrics, the
// collector's fleet-health table, and the alert timeline.
func health(args []string) error {
	fs := flag.NewFlagSet("policyctl health", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shorter measurement window")
	seed := fs.Int64("seed", 0, "simulation seed (0 = 1)")
	duration := fs.Duration("duration", 0, "flood window (0 = tool default)")
	metricsOut := fs.String("metrics-out", "", "write fleet-health table, alert timeline, and metric snapshot under this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	out, err := experiment.FleetHealth(experiment.Config{
		Quick: *quick, Seed: *seed, Duration: *duration, MetricsDir: *metricsOut,
	})
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

// explain replays one hypothetical packet against the policy file on a
// card profile and prints the predicted verdict — matched rule, depth
// walked — and per-stage processing cost. Pure prediction: no
// simulation runs and no live counters are touched.
func explain(path string, args []string) error {
	text, err := readPolicy(path)
	if err != nil {
		return err
	}
	rs, err := policy.Parse(text)
	if err != nil {
		return err
	}
	fs := flag.NewFlagSet("policyctl explain", flag.ContinueOnError)
	device := fs.String("device", "efw", "card profile: standard|efw|adf|nextgen")
	proto := fs.String("proto", "tcp", "packet protocol: tcp|udp|icmp")
	src := fs.String("src", "10.0.0.1", "source IP")
	dst := fs.String("dst", "10.0.0.2", "destination IP")
	sport := fs.Int("sport", 40000, "source port (tcp/udp)")
	dport := fs.Int("dport", 80, "destination port (tcp/udp)")
	size := fs.Int("size", 40, "IP datagram length in bytes")
	dir := fs.String("dir", "in", "direction through the card: in|out")
	sealed := fs.Bool("sealed", false, "packet arrives in a VPG envelope")
	if err := fs.Parse(args); err != nil {
		return err
	}
	profile, err := nic.ProfileByName(*device)
	if err != nil {
		return err
	}
	spec := nic.PacketSpec{
		Proto: *proto, Src: *src, Dst: *dst,
		SrcPort: *sport, DstPort: *dport,
		Size: *size, Dir: *dir, Sealed: *sealed,
	}
	summary, fdir, err := spec.Summary()
	if err != nil {
		return err
	}
	fmt.Print(nic.Explain(profile, rs, summary, fdir).Render())
	return nil
}
