package main

import (
	"os"
	"path/filepath"
	"testing"

	"barbican/internal/fw"
	"barbican/internal/fw/sem"
	"barbican/internal/nic"
	"barbican/internal/policy"
)

func writePolicy(t *testing.T, name, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const verifyV1 = `default deny
allow in proto tcp from any to 10.0.0.2/32 port 443
allow in proto tcp from any to 10.0.0.2/32 port 80
`

const verifyV2 = `default deny
allow in proto tcp from any to 10.0.0.2/32 port 443
deny in proto tcp from 198.51.100.0/24 to any
allow in proto tcp from any to 10.0.0.2/32 port 80
`

func TestVerifySingle(t *testing.T) {
	if err := run([]string{"verify", "-"}); err != nil {
		t.Fatalf("verify oracle: %v", err)
	}
	p := writePolicy(t, "v1.txt", verifyV1)
	if err := run([]string{"verify", p}); err != nil {
		t.Fatalf("verify v1: %v", err)
	}
}

func TestVerifyGeneratedCorpus(t *testing.T) {
	if err := run([]string{"verify", "-generate", "4", "-seed", "11", "-rules", "12"}); err != nil {
		t.Fatalf("verify corpus: %v", err)
	}
}

func TestVerifyEquivalence(t *testing.T) {
	a := writePolicy(t, "a.txt", verifyV1)
	b := writePolicy(t, "b.txt", verifyV1)
	if err := run([]string{"verify", a, b}); err != nil {
		t.Fatalf("identical policies reported inequivalent: %v", err)
	}
	c := writePolicy(t, "c.txt", verifyV2)
	if err := run([]string{"verify", a, c}); err == nil {
		t.Fatal("inequivalent policies reported equivalent")
	}
}

func TestVerifyStrictRejectsReorder(t *testing.T) {
	a := writePolicy(t, "a.txt", "allow in proto tcp from any to any\nallow in from any to any\ndefault deny\n")
	b := writePolicy(t, "b.txt", "allow in from any to any\nallow in proto tcp from any to any\ndefault deny\n")
	if err := run([]string{"verify", a, b}); err != nil {
		t.Fatalf("action-equivalent reorder rejected without -strict: %v", err)
	}
	if err := run([]string{"verify", "-strict", a, b}); err == nil {
		t.Fatal("-strict accepted a reorder that changes deciding rules")
	}
}

func TestDiffSubcommand(t *testing.T) {
	a := writePolicy(t, "a.txt", verifyV1)
	b := writePolicy(t, "b.txt", verifyV2)
	if err := run([]string{"diff", a, b}); err != nil {
		t.Fatalf("diff: %v", err)
	}
	if err := run([]string{"diff", "-json", a, b}); err != nil {
		t.Fatalf("diff -json: %v", err)
	}
	if err := run([]string{"diff", a}); err == nil {
		t.Fatal("diff with one file accepted")
	}
}

func TestLintExact(t *testing.T) {
	// The cross-class case the heuristic cannot see: a plain allow-out
	// wildcard makes the VPG seal rule dead. -exact must fail the lint
	// where the heuristic passes it.
	text := "allow out from any to any\nallow out vpg g from 10.0.0.0/8 to any\ndefault deny\n"
	p := writePolicy(t, "cross.txt", text)
	if err := run([]string{"lint", p, "-depth-warn", "0"}); err != nil {
		t.Fatalf("heuristic lint unexpectedly failed: %v", err)
	}
	// The proven finding is a warning (redundant), not an error, so
	// -exact still exits 0 — but on a shadowed variant it must exit 1.
	if err := run([]string{"lint", p, "-exact", "-depth-warn", "0"}); err != nil {
		t.Fatalf("exact lint on redundant-only policy: %v", err)
	}
	shadow := "allow out from any to any\ndeny out proto tcp from 10.0.0.0/8 to any\ndefault deny\n"
	sp := writePolicy(t, "shadow.txt", shadow)
	if err := run([]string{"lint", sp, "-exact", "-depth-warn", "0"}); err == nil {
		t.Fatal("exact lint missed a shadowed rule")
	}
}

// TestDiffWitnessReplaysThroughExplain is the acceptance criterion:
// the witness packet the semantic diff emits for a constructed V1->V2
// delta must replay through nic.Explain on both versions with exactly
// the verdicts the diff claims.
func TestDiffWitnessReplaysThroughExplain(t *testing.T) {
	v1, err := policy.Parse(verifyV1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := policy.Parse(verifyV2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sem.Diff(v1, v2, sem.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent || len(res.Witnesses) == 0 {
		t.Fatalf("constructed delta produced no witnesses: %+v", res)
	}
	profile, err := nic.ProfileByName("efw")
	if err != nil {
		t.Fatal(err)
	}
	sawActionChange := false
	for _, w := range res.Witnesses {
		e1 := nic.Explain(profile, v1, w.Packet, w.Dir)
		e2 := nic.Explain(profile, v2, w.Packet, w.Dir)
		if e1.Action != w.From.Action || e1.RuleIndex != w.From.Index {
			t.Fatalf("witness %v: V1 explain verdict %v/%d, diff claimed %v",
				w, e1.Action, e1.RuleIndex, w.From)
		}
		if e2.Action != w.To.Action || e2.RuleIndex != w.To.Index {
			t.Fatalf("witness %v: V2 explain verdict %v/%d, diff claimed %v",
				w, e2.Action, e2.RuleIndex, w.To)
		}
		if w.Class == sem.RegionAllowToDeny {
			sawActionChange = true
			if e1.Action != fw.Allow || e2.Action != fw.Deny {
				t.Fatalf("allow-to-deny witness replays as %v -> %v", e1.Action, e2.Action)
			}
		}
	}
	if !sawActionChange {
		t.Fatal("delta that blocks a /24 produced no allow-to-deny witness")
	}
}
