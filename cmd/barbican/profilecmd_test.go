package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"barbican/internal/obs/profile"
)

// writeTestProfiles writes a small cost profile in both encodings plus
// a grown variant for diffing, returning their paths.
func writeTestProfiles(t *testing.T) (pprofPath, foldedPath, grownPath string) {
	t.Helper()
	dir := t.TempDir()
	d := profile.NewData(profile.CostSampleTypes, "cost")
	d.Add([]string{"target (EFW)", "rx", "parse"}, 100, 50)
	d.Add([]string{"target (EFW)", "rx", "match", "rule 001"}, 300, 50)

	pprofPath = filepath.Join(dir, "run.cost.pprof")
	if err := d.WritePprofFile(pprofPath); err != nil {
		t.Fatal(err)
	}
	foldedPath = filepath.Join(dir, "run.cost.folded")
	if err := d.WriteFoldedFile(foldedPath); err != nil {
		t.Fatal(err)
	}

	d.Add([]string{"target (EFW)", "rx", "match", "rule 001"}, 200, 0)
	grownPath = filepath.Join(dir, "grown.cost.pprof")
	if err := d.WritePprofFile(grownPath); err != nil {
		t.Fatal(err)
	}
	return pprofPath, foldedPath, grownPath
}

func TestProfileCmdSummary(t *testing.T) {
	pprofPath, foldedPath, _ := writeTestProfiles(t)
	for _, path := range []string{pprofPath, foldedPath} {
		var out bytes.Buffer
		if err := runProfileCmd(&out, []string{"-top", "5", path}); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		s := out.String()
		for _, want := range []string{"Phases:", "Top 5 stacks:", "target (EFW);rx;match", "400"} {
			if !strings.Contains(s, want) {
				t.Errorf("%s summary missing %q:\n%s", filepath.Ext(path), want, s)
			}
		}
	}
}

func TestProfileCmdDiff(t *testing.T) {
	pprofPath, _, grownPath := writeTestProfiles(t)
	var out bytes.Buffer
	if err := runProfileCmd(&out, []string{"-diff", pprofPath, grownPath}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"total 400 -> 600 (+200)", "Phase deltas:", "+200", "rule 001"} {
		if !strings.Contains(s, want) {
			t.Errorf("diff missing %q:\n%s", want, s)
		}
	}
}

func TestProfileCmdArgErrors(t *testing.T) {
	pprofPath, _, grownPath := writeTestProfiles(t)
	var out bytes.Buffer
	if err := runProfileCmd(&out, nil); err == nil {
		t.Error("no args: want error")
	}
	if err := runProfileCmd(&out, []string{pprofPath, grownPath}); err == nil {
		t.Error("two args without -diff: want error")
	}
	if err := runProfileCmd(&out, []string{"-diff", pprofPath}); err == nil {
		t.Error("-diff with one arg: want error")
	}
	if err := runProfileCmd(&out, []string{filepath.Join(t.TempDir(), "absent.pprof")}); err == nil {
		t.Error("missing file: want error")
	}
}

// TestProfileSubcommandDispatch checks `barbican profile ...` routes
// through run's dispatcher, like explain.
func TestProfileSubcommandDispatch(t *testing.T) {
	if err := run([]string{"profile"}); err == nil {
		t.Error("bare profile subcommand: want usage error")
	}
}
