package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"barbican/internal/core"
	"barbican/internal/fw"
	"barbican/internal/nic"
	"barbican/internal/policy"
)

// runExplain implements `barbican explain`: replay one hypothetical
// packet against a rule set on a card profile and print the matched
// rule, the depth walked, and the predicted per-stage cost. The output
// is a pure function of the flags — no clocks, no map iteration — so
// identical invocations are byte-identical regardless of any -parallel
// setting elsewhere.
func runExplain(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("barbican explain", flag.ContinueOnError)
	device := fs.String("device", "efw", "card profile: standard|efw|adf|nextgen|stateful")
	depth := fs.Int("depth", 64, "synthetic rule-set depth (paper shape: depth-1 non-matching rules above the action rule); 0 = no policy")
	deny := fs.Bool("deny", false, "synthetic action rule denies the flood signature (default: allows everything)")
	stateful := fs.Bool("stateful", false, "use the stateful synthetic rule set (new-to-service + established/related) instead of the stateless one")
	policyFile := fs.String("policy", "", "explain against this policy file ('-' = built-in example) instead of the synthetic rule set")
	proto := fs.String("proto", "tcp", "packet protocol: tcp|udp|icmp")
	src := fs.String("src", core.ClientIP.String(), "source IP")
	dst := fs.String("dst", core.TargetIP.String(), "destination IP")
	sport := fs.Int("sport", 40000, "source port (tcp/udp)")
	dport := fs.Int("dport", 5001, "destination port (tcp/udp)")
	size := fs.Int("size", 40, "IP datagram length in bytes")
	dir := fs.String("dir", "in", "direction through the card: in|out")
	sealed := fs.Bool("sealed", false, "packet arrives in a VPG envelope")
	tcpFlags := fs.String("flags", "", "tcp control bits, comma-separated: syn|ack|fin|rst|psh|none (default syn)")
	prior := fs.String("prior", "none", "assumed prior conntrack history of the flow: none|new|established")
	// Accepted for interface uniformity with the experiment runner;
	// explain is a pure single-packet replay, so worker count cannot
	// change its output.
	_ = fs.Int("parallel", 0, "accepted and ignored; explain output is identical at any worker count")
	fs.SetOutput(w)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: barbican explain [flags]")
		fmt.Fprintln(fs.Output(), "replay one packet against a rule set; print matched rule, depth walked, predicted cost")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	profile, err := nic.ProfileByName(*device)
	if err != nil {
		return err
	}

	var rs *fw.RuleSet
	switch {
	case *policyFile != "":
		var text string
		if *policyFile == "-" {
			text = policy.OraclePolicy
		} else {
			b, rerr := os.ReadFile(*policyFile)
			if rerr != nil {
				return rerr
			}
			text = string(b)
		}
		if rs, err = policy.Parse(text); err != nil {
			return err
		}
	case *depth > 0 && *stateful:
		if rs, err = core.StatefulRuleSet(*depth); err != nil {
			return err
		}
	case *depth > 0:
		if rs, err = core.StandardRuleSet(*depth, !*deny); err != nil {
			return err
		}
	}

	switch *prior {
	case "none", "new", "established":
	default:
		return fmt.Errorf("unknown prior %q (none|new|established)", *prior)
	}

	spec := nic.PacketSpec{
		Proto: *proto, Src: *src, Dst: *dst,
		SrcPort: *sport, DstPort: *dport,
		Size: *size, Dir: *dir, Sealed: *sealed,
		Flags: *tcpFlags,
	}
	summary, fdir, err := spec.Summary()
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, nic.ExplainConn(profile, rs, summary, fdir, *prior).Render())
	return err
}
