package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunRejectsUnknownExperiment(t *testing.T) {
	err := run([]string{"figure9"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v", err)
	}
}

func TestRunRequiresExactlyOneArgument(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no arguments accepted")
	}
	if err := run([]string{"fig2", "fig3a"}); err == nil {
		t.Error("two arguments accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-bogus", "fig2"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunQuickAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	if err := run([]string{"-quick", "-duration", "500ms", "ablations"}); err != nil {
		t.Fatalf("run ablations: %v", err)
	}
}

func TestExplainByteIdenticalAcrossParallel(t *testing.T) {
	argsAt := func(workers string) []string {
		return []string{"-device", "efw", "-depth", "64", "-parallel", workers}
	}
	var a, b bytes.Buffer
	if err := runExplain(&a, argsAt("1")); err != nil {
		t.Fatal(err)
	}
	if err := runExplain(&b, argsAt("8")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("explain output differs across -parallel:\n-parallel 1:\n%s\n-parallel 8:\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{"rule 64", "traversing 64 rule(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainSubcommandDispatch(t *testing.T) {
	if err := run([]string{"explain", "-bogus"}); err == nil {
		t.Error("explain accepted unknown flag")
	}
	if err := run([]string{"explain", "-device", "warp-drive"}); err == nil || !strings.Contains(err.Error(), "unknown device") {
		t.Errorf("err = %v", err)
	}
}
