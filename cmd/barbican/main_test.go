package main

import (
	"strings"
	"testing"
)

func TestRunRejectsUnknownExperiment(t *testing.T) {
	err := run([]string{"figure9"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v", err)
	}
}

func TestRunRequiresExactlyOneArgument(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no arguments accepted")
	}
	if err := run([]string{"fig2", "fig3a"}); err == nil {
		t.Error("two arguments accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-bogus", "fig2"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunQuickAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	if err := run([]string{"-quick", "-duration", "500ms", "ablations"}); err != nil {
		t.Fatalf("run ablations: %v", err)
	}
}
