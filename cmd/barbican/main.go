// Command barbican regenerates the paper's evaluation: every figure and
// table from "Barbarians in the Gate" (DSN 2006), reproduced on the
// simulated testbed.
//
// Usage:
//
//	barbican [flags] fig2|fig3a|fig3b|table1|ablations|all
//
// Flags:
//
//	-quick          shrink sweeps to a few representative points
//	-duration D     per-measurement window (default: tool defaults)
//	-seed N         simulation seed (default 1)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"barbican/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "barbican:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("barbican", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shrink sweeps to representative points")
	duration := fs.Duration("duration", 0, "per-measurement window (0 = tool default)")
	seed := fs.Int64("seed", 0, "simulation seed (0 = 1)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: barbican [flags] fig2|fig3a|fig3b|table1|ablations|ext1|ext2|ext3|rfc2544|latency|report|all")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one experiment name")
	}
	cfg := experiment.Config{Quick: *quick, Duration: *duration, Seed: *seed}

	type runner struct {
		name string
		fn   func(experiment.Config) (string, error)
	}
	runners := []runner{
		{name: "fig2", fn: renderFigure(experiment.Fig2)},
		{name: "fig3a", fn: renderFigure(experiment.Fig3a)},
		{name: "fig3b", fn: renderFigure(experiment.Fig3b)},
		{name: "table1", fn: renderTable(experiment.Table1)},
		{name: "ablations", fn: renderAblations},
		{name: "ext1", fn: renderTable(experiment.ExtensionNextGen)},
		{name: "ext2", fn: renderTable(experiment.ExtensionHTTPUnderFlood)},
		{name: "ext3", fn: renderTable(experiment.ExtensionFragmentEvasion)},
		{name: "rfc2544", fn: renderTable(experiment.AppendixRFC2544)},
		{name: "latency", fn: renderTable(experiment.AppendixLatency)},
		{name: "report", fn: experiment.Report},
	}

	want := fs.Arg(0)
	ran := false
	start := time.Now()
	for _, r := range runners {
		if want != r.name && (want != "all" || r.name == "report") {
			continue
		}
		ran = true
		out, err := r.fn(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		fmt.Println(out)
	}
	if !ran {
		fs.Usage()
		return fmt.Errorf("unknown experiment %q", want)
	}
	fmt.Printf("(completed in %v wall clock)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func renderFigure(fn func(experiment.Config) (*experiment.Figure, error)) func(experiment.Config) (string, error) {
	return func(cfg experiment.Config) (string, error) {
		fig, err := fn(cfg)
		if err != nil {
			return "", err
		}
		return fig.Render(), nil
	}
}

func renderTable(fn func(experiment.Config) (*experiment.Table, error)) func(experiment.Config) (string, error) {
	return func(cfg experiment.Config) (string, error) {
		t, err := fn(cfg)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	}
}

func renderAblations(cfg experiment.Config) (string, error) {
	var out string
	for _, fn := range []func(experiment.Config) (*experiment.Table, error){
		experiment.AblationDenyResponses,
		experiment.AblationVPGLazyDecrypt,
		experiment.AblationTrailingRules,
	} {
		t, err := fn(cfg)
		if err != nil {
			return "", err
		}
		out += t.Render() + "\n"
	}
	return out, nil
}
