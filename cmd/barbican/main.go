// Command barbican regenerates the paper's evaluation: every figure and
// table from "Barbarians in the Gate" (DSN 2006), reproduced on the
// simulated testbed.
//
// Usage:
//
//	barbican [flags] fig2|fig3a|fig3b|fig2ng|fig3ng|table1|ablations|detect|stateflood|fleet-health|all
//	barbican explain [flags]
//	barbican profile [flags] FILE [FILE]
//
// Flags:
//
//	-quick           shrink sweeps to a few representative points
//	-duration D      per-measurement window (default: tool defaults)
//	-seed N          simulation seed (default 1)
//	-parallel N      experiment points measured concurrently (default
//	                 GOMAXPROCS; 1 = serial). Output is byte-identical
//	                 at any worker count.
//	-metrics-out DIR write telemetry artifacts (Prometheus text, JSON,
//	                 CSV) for every run, plus figure/table data exports
//	-sample-every D  flight-recorder tick in virtual time (default 50ms)
//	-trace-out DIR   write sampled packet-lifecycle traces (Perfetto
//	                 trace_event JSON + annotated text) for every run
//	-trace-sample N  trace 1 packet in N (default 64)
//	-profile-out DIR write dual-domain profiles (card cost units +
//	                 kernel wall time) for every run as gzipped pprof
//	                 and folded stacks, plus merged per-experiment
//	                 cost profiles
//	-profile-sample N  kernel profiler samples 1 event in N (default 16;
//	                 the cost domain is always exact)
//	-faults PLAN     custom management-channel fault plan for the chaos
//	                 experiments (e.g. "loss=0.2,down=1s-2.5s")
//	-fault-seed N    fault-injector seed (default: the simulation seed)
//
// The chaos experiment family pushes the flood-mitigating policy over a
// deliberately faulty management channel (seeded loss, corruption, and
// partition windows) and reports policy-convergence time and available
// bandwidth; see internal/faults for the plan syntax.
//
// The detect family exercises the in-band telemetry plane: NIC agents
// report card health over the management network, the collector's
// per-device detectors raise flood alerts, and the experiments report
// time-to-detect and window-of-exposure versus flood rate, card type,
// and management-channel faults. fleet-health runs the canonical
// detection scenario and renders the collector's fleet table plus the
// alert timeline.
//
// The stateflood family attacks the stateful card's conntrack table:
// SYN floods from spoofed sources exhaust table entries at rates far
// below packet-rate DoS, eviction policies are compared under flood,
// ACK floods probe the INVALID-drop path, and the recovery table shows
// what each state-recovery policy does to live connections after a
// fail-open degraded episode.
//
// The explain subcommand replays one hypothetical packet against a
// rule set and prints the matched rule, depth walked, and predicted
// per-stage cost; see barbican explain -h.
//
// The profile subcommand summarizes a profile written by -profile-out
// (top-N phases and stacks) or, with -diff, reports per-phase and
// per-stack deltas between two profiles; see barbican profile -h.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"barbican/internal/experiment"
	"barbican/internal/faults"
	"barbican/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "barbican:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "explain" {
		return runExplain(os.Stdout, args[1:])
	}
	if len(args) > 0 && args[0] == "profile" {
		return runProfileCmd(os.Stdout, args[1:])
	}
	fs := flag.NewFlagSet("barbican", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shrink sweeps to representative points")
	duration := fs.Duration("duration", 0, "per-measurement window (0 = tool default)")
	seed := fs.Int64("seed", 0, "simulation seed (0 = 1)")
	parallel := fs.Int("parallel", 0, "experiment points measured concurrently (0 = GOMAXPROCS, 1 = serial)")
	metricsOut := fs.String("metrics-out", "", "write telemetry artifacts (prom/json/csv) under this directory")
	sampleEvery := fs.Duration("sample-every", 0, "flight-recorder tick in virtual time (0 = 50ms default)")
	traceOut := fs.String("trace-out", "", "write packet-lifecycle traces (Perfetto JSON + text) under this directory")
	traceSample := fs.Int("trace-sample", 0, "trace 1 packet in N (0 = 64 default; needs -trace-out)")
	profileOut := fs.String("profile-out", "", "write dual-domain profiles (pprof + folded stacks) under this directory")
	profileSample := fs.Int("profile-sample", 0, "kernel profiler samples 1 event in N (0 = 16 default; needs -profile-out)")
	faultSpec := fs.String("faults", "", `custom management-channel fault plan for the chaos experiments, e.g. "loss=0.2,down=1s-2.5s" (replaces the default condition sweep)`)
	faultSeed := fs.Int64("fault-seed", 0, "fault-injector seed (0 = derive from the simulation seed)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: barbican [flags] fig2|fig3a|fig3b|fig2ng|fig3ng|table1|ablations|timeline|ext1|ext2|ext3|rfc2544|latency|chaos|detect|stateflood|fleet-health|report|all")
		fmt.Fprintln(fs.Output(), "       barbican explain [flags]  (replay one packet against a rule set)")
		fmt.Fprintln(fs.Output(), "       barbican profile [flags] FILE [FILE]  (summarize or diff profiles)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one experiment name")
	}
	acct := &experiment.Accounting{}
	cfg := experiment.Config{
		Quick: *quick, Duration: *duration, Seed: *seed,
		MetricsDir: *metricsOut, SampleEvery: *sampleEvery,
		TraceDir: *traceOut, TraceSample: *traceSample,
		ProfileDir: *profileOut, ProfileSample: *profileSample,
		Parallel: *parallel, Account: acct,
		FaultSeed: *faultSeed,
	}
	if *faultSpec != "" {
		plan, err := faults.ParsePlan(*faultSpec)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		cfg.Faults = &plan
	}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type runner struct {
		name string
		fn   func(experiment.Config) (string, error)
	}
	runners := []runner{
		{name: "fig2", fn: renderFigure("fig2", experiment.Fig2)},
		{name: "fig3a", fn: renderFigure("fig3a", experiment.Fig3a)},
		{name: "fig3b", fn: renderFigure("fig3b", experiment.Fig3b)},
		{name: "fig2ng", fn: renderFigure("fig2ng", experiment.Fig2NextGen)},
		{name: "fig3ng", fn: renderFigure("fig3ng", experiment.Fig3NextGen)},
		{name: "table1", fn: renderTable("table1", experiment.Table1)},
		{name: "ablations", fn: renderAblations},
		{name: "timeline", fn: renderFigure("timeline", experiment.FloodTimeline)},
		{name: "ext1", fn: renderTable("ext1", experiment.ExtensionNextGen)},
		{name: "ext2", fn: renderTable("ext2", experiment.ExtensionHTTPUnderFlood)},
		{name: "ext3", fn: renderTable("ext3", experiment.ExtensionFragmentEvasion)},
		{name: "rfc2544", fn: renderTable("rfc2544", experiment.AppendixRFC2544)},
		{name: "latency", fn: renderTable("latency", experiment.AppendixLatency)},
		{name: "chaos", fn: renderChaos},
		{name: "detect", fn: renderDetect},
		{name: "stateflood", fn: renderStateflood},
		{name: "fleet-health", fn: experiment.FleetHealth},
		{name: "report", fn: experiment.Report},
	}

	want := fs.Arg(0)
	ran := false
	start := time.Now()
	for _, r := range runners {
		if want != r.name && (want != "all" || r.name == "report") {
			continue
		}
		ran = true
		out, err := r.fn(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		fmt.Println(out)
	}
	if !ran {
		fs.Usage()
		return fmt.Errorf("unknown experiment %q", want)
	}
	elapsed := time.Since(start)
	fmt.Println(acct.Summary(elapsed, workers))
	if *metricsOut != "" {
		reg := obs.NewRegistry()
		acct.Publish(reg, elapsed, workers)
		if _, err := obs.WriteRunArtifacts(*metricsOut, "executor", reg, nil); err != nil {
			return fmt.Errorf("executor metrics: %w", err)
		}
	}
	return nil
}

func renderFigure(name string, fn func(experiment.Config) (*experiment.Figure, error)) func(experiment.Config) (string, error) {
	return func(cfg experiment.Config) (string, error) {
		fig, err := fn(cfg)
		if err != nil {
			return "", err
		}
		if cfg.MetricsDir != "" {
			if err := experiment.WriteFigureArtifacts(cfg.MetricsDir, name, fig); err != nil {
				return "", err
			}
		}
		return fig.Render(), nil
	}
}

func renderTable(name string, fn func(experiment.Config) (*experiment.Table, error)) func(experiment.Config) (string, error) {
	return func(cfg experiment.Config) (string, error) {
		t, err := fn(cfg)
		if err != nil {
			return "", err
		}
		if cfg.MetricsDir != "" {
			if err := experiment.WriteTableArtifacts(cfg.MetricsDir, name, t); err != nil {
				return "", err
			}
		}
		return t.Render(), nil
	}
}

func renderChaos(cfg experiment.Config) (string, error) {
	fig, err := renderFigure("chaos-bandwidth", experiment.ChaosBandwidth)(cfg)
	if err != nil {
		return "", err
	}
	tab, err := renderTable("chaos-convergence", experiment.ChaosConvergence)(cfg)
	if err != nil {
		return "", err
	}
	return fig + "\n" + tab, nil
}

func renderDetect(cfg experiment.Config) (string, error) {
	fig, err := renderFigure("detect-latency", experiment.DetectionLatency)(cfg)
	if err != nil {
		return "", err
	}
	out := fig
	for _, t := range []struct {
		name string
		fn   func(experiment.Config) (*experiment.Table, error)
	}{
		{"detect-exposure", experiment.DetectionExposure},
		{"detect-chaos", experiment.DetectionChaos},
		{"detect-false-positives", experiment.DetectionFalsePositives},
	} {
		tab, err := renderTable(t.name, t.fn)(cfg)
		if err != nil {
			return "", err
		}
		out += "\n" + tab
	}
	return out, nil
}

func renderStateflood(cfg experiment.Config) (string, error) {
	out, err := renderFigure("stateflood-curves", experiment.StatefloodCurves)(cfg)
	if err != nil {
		return "", err
	}
	for _, t := range []struct {
		name string
		fn   func(experiment.Config) (*experiment.Table, error)
	}{
		{"stateflood-thresholds", experiment.StatefloodThresholds},
		{"stateflood-ack", experiment.StatefloodACK},
		{"stateflood-recovery", experiment.StatefloodRecovery},
	} {
		tab, err := renderTable(t.name, t.fn)(cfg)
		if err != nil {
			return "", err
		}
		out += "\n" + tab
	}
	return out, nil
}

func renderAblations(cfg experiment.Config) (string, error) {
	var out string
	for _, fn := range []func(experiment.Config) (*experiment.Table, error){
		experiment.AblationDenyResponses,
		experiment.AblationVPGLazyDecrypt,
		experiment.AblationTrailingRules,
	} {
		t, err := fn(cfg)
		if err != nil {
			return "", err
		}
		out += t.Render() + "\n"
	}
	return out, nil
}
