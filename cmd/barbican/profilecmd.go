package main

import (
	"flag"
	"fmt"
	"io"

	"barbican/internal/obs/profile"
)

// runProfileCmd implements `barbican profile`: summarize one profile
// written by -profile-out (top-N phases and stacks), or with -diff
// report per-phase and per-stack deltas between two. Both the gzipped
// pprof and folded-stack encodings are accepted (sniffed by magic
// bytes). Like explain, the output is a pure function of the inputs.
func runProfileCmd(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("barbican profile", flag.ContinueOnError)
	top := fs.Int("top", 20, "rows in the top-stacks table")
	diff := fs.Bool("diff", false, "diff two profiles: report per-phase and per-stack deltas of NEW against OLD")
	fs.SetOutput(w)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: barbican profile [flags] FILE        (summarize one profile)")
		fmt.Fprintln(fs.Output(), "       barbican profile -diff OLD NEW       (report per-phase deltas)")
		fmt.Fprintln(fs.Output(), "FILEs may be .pprof (gzipped profile.proto) or .folded stacks")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *diff {
		if fs.NArg() != 2 {
			fs.Usage()
			return fmt.Errorf("-diff needs exactly two profile files, got %d", fs.NArg())
		}
		oldD, err := profile.ReadProfileFile(fs.Arg(0))
		if err != nil {
			return fmt.Errorf("read %s: %w", fs.Arg(0), err)
		}
		newD, err := profile.ReadProfileFile(fs.Arg(1))
		if err != nil {
			return fmt.Errorf("read %s: %w", fs.Arg(1), err)
		}
		_, err = io.WriteString(w, profile.Diff(oldD, newD, *top))
		return err
	}

	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one profile file, got %d", fs.NArg())
	}
	d, err := profile.ReadProfileFile(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("read %s: %w", fs.Arg(0), err)
	}
	_, err = io.WriteString(w, d.Summary(*top))
	return err
}
