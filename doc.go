// Package barbican is a simulation-based reproduction of "Barbarians in
// the Gate: An Experimental Validation of NIC-based Distributed Firewall
// Performance and Flood Tolerance" (Ihde & Sanders, DSN 2006).
//
// The paper's proprietary hardware — the 3Com Embedded Firewall (EFW)
// and the Autonomic Distributed Firewall (ADF), both built on the 3CR990
// NIC — is unobtainable, so this repository rebuilds the entire testbed
// in a deterministic discrete-event simulator: the 100 Mbps switched
// network, the filtering cards (calibrated embedded-processor cost
// models), the virtual private groups (real AES-CTR+HMAC cryptography),
// the host TCP/IP stacks, the central policy server and firewall agents,
// and the measurement toolchain (iperf, http_load, and a flood
// generator). See DESIGN.md for the system inventory and EXPERIMENTS.md
// for paper-vs-measured results.
//
// Layout:
//
//	internal/core        the validation methodology (testbed, scenarios, DoS search)
//	internal/experiment  runners that regenerate every figure and table
//	internal/{sim,packet,link,fw,vpg,nic,hostfw,stack,apps,measure,policy}
//	                     the substrates
//	cmd/barbican         CLI that prints the paper's figures and tables
//	cmd/floodsim         interactive flood-tolerance explorer
//	cmd/policyctl        policy-file tooling and a distribution demo
//	examples/            runnable walkthroughs of the public API
package barbican
