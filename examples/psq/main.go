// PSQ under attack: the DPASA scenario the paper's validation served.
// A publish/subscribe/query broker runs behind an EFW; heartbeats flow
// from a publisher to a subscriber while an attacker ramps up a flood.
// The service rides out light attacks and collapses at the DoS rate the
// validation predicted — exactly the knowledge a deployer needs.
package main

import (
	"fmt"
	"log"
	"time"

	"barbican/internal/apps"
	"barbican/internal/core"
	"barbican/internal/fw"
	"barbican/internal/measure"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("PSQ broker behind an EFW (8-rule policy), heartbeat every 100 ms, 5 s per trial")
	fmt.Println()
	fmt.Printf("%12s  %12s  %s\n", "flood (pps)", "heartbeats", "verdict")

	for _, rate := range []float64{0, 2000, 5000, 10000, 25000} {
		delivered, locked, err := trial(rate)
		if err != nil {
			return err
		}
		verdict := "service healthy"
		switch {
		case locked:
			verdict = "CARD LOCKED UP"
		case delivered < 25:
			verdict = "denial of service"
		case delivered < 45:
			verdict = "degraded"
		}
		fmt.Printf("%12.0f  %9d/50  %s\n", rate, delivered, verdict)
	}
	fmt.Println()
	fmt.Println("Deployment guidance (the paper's conclusion): pair the embedded firewall")
	fmt.Println("with rate-limiting upstream, or an attacker with LAN access owns the service.")
	return nil
}

func trial(rate float64) (delivered int, locked bool, err error) {
	tb, err := core.NewTestbed(core.TestbedOptions{TargetDevice: core.DeviceEFW})
	if err != nil {
		return 0, false, err
	}
	rs, err := fw.DepthRuleSet(8, fw.AllowAllRule(), fw.Deny)
	if err != nil {
		return 0, false, err
	}
	tb.InstallPolicy(tb.Target, rs)

	if _, err := apps.NewPSQBroker(tb.Target, 0); err != nil {
		return 0, false, err
	}
	sub, err := apps.DialPSQ(tb.Client, tb.Target.IP(), 0)
	if err != nil {
		return 0, false, err
	}
	sub.OnMessage = func(apps.PSQMessage) { delivered++ }
	sub.Subscribe("heartbeat")

	pub, err := apps.DialPSQ(tb.PolicyServer, tb.Target.IP(), 0)
	if err != nil {
		return 0, false, err
	}
	tb.Kernel.NewTicker(100*time.Millisecond, func() { pub.Publish("heartbeat", "ok") })

	if rate > 0 {
		f := measure.NewFlooder(tb.Attacker, tb.Target.IP(), measure.FloodConfig{
			RatePPS: rate, DstPort: core.FloodPort,
		})
		f.Start()
	}
	if err := tb.Kernel.RunUntil(5 * time.Second); err != nil {
		return 0, false, err
	}
	return delivered, tb.Target.NIC().Locked(), nil
}
