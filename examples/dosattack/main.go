// DoS attack: the paper's headline experiment. Flood an EFW-protected
// web server at increasing rates, watch the available bandwidth collapse
// while the same flood barely dents a standard NIC, then binary-search
// the minimum flood rate — and reproduce the EFW Deny-All lockup.
package main

import (
	"fmt"
	"log"
	"time"

	"barbican/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Available bandwidth under flood (64-rule policy, flood allowed) ==")
	for _, device := range []core.Device{core.DeviceStandard, core.DeviceEFW} {
		depth := 64
		if device == core.DeviceStandard {
			depth = 0
		}
		for _, rate := range []float64{0, 2000, 4000, 6000} {
			p, err := core.RunBandwidth(core.Scenario{
				Device: device, Depth: depth,
				FloodRatePPS: rate, FloodAllowed: true,
				Duration: 2 * time.Second,
			})
			if err != nil {
				return err
			}
			fmt.Printf("  %-12v flood %5.0f pps -> %5.1f Mbps\n", device, rate, p.Mbps())
		}
	}

	fmt.Println("\n== Minimum flood rate for denial of service ==")
	for _, tc := range []struct {
		device  core.Device
		depth   int
		allowed bool
	}{
		{core.DeviceEFW, 1, true},
		{core.DeviceEFW, 64, true},
		{core.DeviceADF, 64, false},
		{core.DeviceEFW, 64, false}, // the Deny-All lockup case
	} {
		r, err := core.MinFloodRate(core.Scenario{
			Device: tc.device, Depth: tc.depth, FloodAllowed: tc.allowed,
		})
		if err != nil {
			return err
		}
		mode := "denied"
		if tc.allowed {
			mode = "allowed"
		}
		switch {
		case !r.Found:
			fmt.Printf("  %-4v depth %2d (%s): no DoS up to %d pps\n",
				tc.device, tc.depth, mode, core.MaxSearchRatePPS)
		case r.LockedUp:
			fmt.Printf("  %-4v depth %2d (%s): ≈%5.0f pps — card LOCKED UP; only an agent restart recovers it\n",
				tc.device, tc.depth, mode, r.RatePPS)
		default:
			fmt.Printf("  %-4v depth %2d (%s): ≈%5.0f pps\n", tc.device, tc.depth, mode, r.RatePPS)
		}
	}

	fmt.Println("\nAn attacker on a 100 Mbps segment can trivially reach every one of those rates.")
	return nil
}
