// VPG channel: two ADF-protected hosts communicate through a virtual
// private group. Traffic is sealed on the wire (confidentiality +
// integrity + sender authentication); cleartext from a non-member is
// denied, and a forged envelope fails authentication at the card.
package main

import (
	"fmt"
	"log"
	"time"

	"barbican/internal/core"
	"barbican/internal/fw"
	"barbican/internal/packet"
	"barbican/internal/vpg"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tb, err := core.NewTestbed(core.TestbedOptions{
		ClientDevice: core.DeviceADF,
		TargetDevice: core.DeviceADF,
	})
	if err != nil {
		return err
	}

	// Provision the group on both members and install VPG-only policies.
	if _, err := tb.SetupVPG("psq", "darpa-challenge", tb.Client, tb.Target); err != nil {
		return err
	}
	prefix := packet.MustPrefix("10.0.0.0/24")
	tb.InstallPolicy(tb.Client, fw.MustRuleSet(fw.Deny,
		fw.VPGRulePair("psq", tb.Client.IP(), prefix)...))
	tb.InstallPolicy(tb.Target, fw.MustRuleSet(fw.Deny,
		fw.VPGRulePair("psq", tb.Target.IP(), prefix)...))

	// A UDP "publish" from client to target: sealed by the client card,
	// opened by the target card, delivered in clear to the application.
	sub, err := tb.Target.BindUDP(7000)
	if err != nil {
		return err
	}
	sub.OnRecv = func(src packet.IP, srcPort uint16, payload []byte) {
		fmt.Printf("subscriber received %q from %v (delivered in cleartext)\n", payload, src)
	}
	pub, err := tb.Client.BindUDP(0)
	if err != nil {
		return err
	}
	pub.SendTo(tb.Target.IP(), 7000, []byte("sensor reading 42"))
	if err := tb.Kernel.RunUntil(100 * time.Millisecond); err != nil {
		return err
	}
	fmt.Printf("client card sealed %d frame(s); target card opened %d\n",
		tb.Client.NIC().Stats().Sealed, tb.Target.NIC().Stats().Opened)

	// The attacker tries cleartext: denied by the VPG-only policy.
	atk, err := tb.Attacker.BindUDP(0)
	if err != nil {
		return err
	}
	atk.SendTo(tb.Target.IP(), 7000, []byte("evil injection"))
	if err := tb.Kernel.RunFor(100 * time.Millisecond); err != nil {
		return err
	}
	fmt.Printf("attacker cleartext injection: %d denied at the target card\n",
		tb.Target.NIC().Stats().RxDenied)

	// The attacker forges a sealed envelope with a guessed key: the
	// card's HMAC check rejects it.
	forged, err := vpg.NewGroup("psq", vpg.DeriveKey("wrong-guess"), tb.Attacker.IP(), tb.Target.IP())
	if err != nil {
		return err
	}
	env, err := forged.Seal(tb.Attacker.IP(), tb.Target.IP(), packet.ProtoUDP, []byte("forged"), 1)
	if err != nil {
		return err
	}
	outer := packet.NewDatagram(tb.Attacker.IP(), tb.Target.IP(), packet.ProtoVPGEncap, 1, env)
	tb.Attacker.InjectSealed(outer)
	if err := tb.Kernel.RunFor(100 * time.Millisecond); err != nil {
		return err
	}
	fmt.Printf("forged envelope: %d authentication failures at the target card\n",
		tb.Target.NIC().Stats().RxAuthFailures)
	return nil
}
