// Policy rollout: the central policy server distributes 3Com's
// recommended Oracle-server protection (31+ rules) to a fleet of
// EFW-protected hosts over the network, with signed pushes and an audit
// log — then demonstrates the paper's operational lesson: a useful
// policy is deep, and depth costs bandwidth.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"barbican/internal/core"
	"barbican/internal/measure"
	"barbican/internal/packet"
	"barbican/internal/policy"
	"barbican/internal/stack"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tb, err := core.NewTestbed(core.TestbedOptions{TargetDevice: core.DeviceEFW})
	if err != nil {
		return err
	}
	db, err := tb.AddHost("oracle-db", packet.MustIP("10.0.0.3"), core.DeviceEFW, true)
	if err != nil {
		return err
	}

	psk := policy.DeriveKey("dpasa")
	srv := policy.NewServer(tb.PolicyServer, psk)

	agents := map[string]*policy.Agent{}
	for name, h := range map[string]*stack.Host{"target": tb.Target, "oracle-db": db} {
		agent, err := policy.NewAgent(h, tb.PolicyServer.IP(), psk)
		if err != nil {
			return err
		}
		agents[name] = agent
	}

	// Baseline: unfiltered bandwidth to the target.
	before, err := measure.RunTCPIperf(tb.Kernel, tb.Client, tb.Target, measure.IperfConfig{Duration: time.Second})
	if err != nil {
		return err
	}

	// Author one policy centrally, push it to the fleet. The iperf
	// rules ride on top of the recommended Oracle protection.
	oracle := "allow in proto tcp from 10.0.0.1/32 to any port 5001 # iperf\n" +
		"allow out proto tcp from any port 5001 to 10.0.0.1/32\n" + policy.OraclePolicy
	for name := range agents {
		if _, err := srv.SetPolicy(name, oracle); err != nil {
			return err
		}
	}
	for name, h := range map[string]packet.IP{"target": tb.Target.IP(), "oracle-db": db.IP()} {
		if err := srv.Push(name, h, nil); err != nil {
			return err
		}
	}
	if err := tb.Kernel.RunFor(time.Second); err != nil {
		return err
	}

	fmt.Println("== audit log ==")
	for _, e := range srv.Audit() {
		fmt.Println(" ", e)
	}
	enforcing := make([]string, 0, len(agents))
	for name := range agents {
		enforcing = append(enforcing, name)
	}
	sort.Strings(enforcing)
	for _, name := range enforcing {
		fmt.Printf("%s: enforcing v%d\n", name, agents[name].InstalledVersion())
	}

	// The same measurement now traverses a 30+ rule policy on the card.
	after, err := measure.RunTCPIperf(tb.Kernel, tb.Client, tb.Target, measure.IperfConfig{
		Duration: time.Second, Port: 5001,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nbandwidth before policy: %5.1f Mbps\n", before.Mbps)
	fmt.Printf("bandwidth after rollout: %5.1f Mbps (iperf allowed at rule 1)\n", after.Mbps)
	fmt.Println("\nThe paper's point: real policies (Oracle needs 31+ rules) put")
	fmt.Println("performance-sensitive traffic deep in the rule-set unless ordered carefully.")
	return nil
}
