// Quickstart: build the paper's testbed, enforce a policy on an
// EFW-protected host, and measure available bandwidth — the library's
// core loop in ~40 lines.
package main

import (
	"fmt"
	"log"
	"time"

	"barbican/internal/core"
	"barbican/internal/measure"
	"barbican/internal/policy"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The testbed is the paper's: policy server, attacker, client, and
	// target on one 100 Mbps switch. The target gets a 3Com EFW card.
	tb, err := core.NewTestbed(core.TestbedOptions{TargetDevice: core.DeviceEFW})
	if err != nil {
		return err
	}

	// Policies are plain text; the card enforces first-match semantics.
	rs, err := policy.Parse(`
allow in proto tcp from any to 10.0.0.2/32 port 5001   # iperf server
allow out proto tcp from 10.0.0.2/32 port 5001 to any
deny in proto icmp from any to any
default deny
`)
	if err != nil {
		return err
	}
	tb.InstallPolicy(tb.Target, rs)

	// Measure TCP goodput from client to target with the iperf tool.
	res, err := measure.RunTCPIperf(tb.Kernel, tb.Client, tb.Target, measure.IperfConfig{
		Duration: 2 * time.Second,
	})
	if err != nil {
		return err
	}
	fmt.Printf("bandwidth through the EFW: %v\n", res)

	// The card kept per-rule statistics while we measured.
	evals, perRule, defHits := rs.Stats()
	fmt.Printf("card evaluated %d packets (per-rule matches %v, default hits %d)\n",
		evals, perRule, defHits)
	return nil
}
