#!/usr/bin/env bash
# Run the repository's hot-path benchmarks and snapshot the results as
# a machine-readable baseline so perf regressions diff against a
# committed reference.
#
# Usage:
#
#   scripts/bench.sh [output.json]
#   scripts/bench.sh --compare BENCH_baseline.json [output.json]
#   scripts/bench.sh --profile-compare OLD NEW
#
# Writes BENCH_baseline.json (or the given path) at the repo root with
# one record per benchmark: ns/op, B/op, allocs/op, MB/s, and any
# custom metrics (e.g. sim_Mbps from the stack bulk-transfer bench),
# each the median of -count 3 runs.
#
# With --compare the fresh run is checked against the given baseline
# and the script exits non-zero when any benchmark regresses: ns/op
# worse than the baseline by more than NSOP_TOL percent (default 10),
# or allocs/op above the baseline at all (the zero-alloc fast paths
# admit no tolerance; BenchmarkRxPath/uninstrumented in particular
# must stay at 0 allocs/op with profiling off — the profiled variant's
# overhead is measured separately as BenchmarkRxPath/profiled — and
# BenchmarkRxPathTelemetry holds the ingress path at 0 allocs/op with
# a telemetry agent attached, as does the agent's own
# BenchmarkTelemetrySnapshotEncode build path, and
# BenchmarkRxPathStateful plus BenchmarkConntrack's lookup variants
# hold the conntrack-enabled ingress there too).
# Benchmarks present on only one side are reported but never fail the
# gate, so adding or renaming a benchmark doesn't break CI.
#
# With --profile-compare the two arguments are cost/kernel profiles
# written by -profile-out (.pprof or .folded); the script prints the
# per-phase and per-stack deltas of NEW against OLD and exits 0 — the
# diff is a report, not a gate.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--profile-compare" ]; then
  old="${2:?--profile-compare needs OLD and NEW profile paths}"
  new="${3:?--profile-compare needs OLD and NEW profile paths}"
  exec go run ./cmd/barbican profile -diff "$old" "$new"
fi

baseline=""
if [ "${1:-}" = "--compare" ]; then
  baseline="${2:?--compare needs a baseline path}"
  [ -r "$baseline" ] || { echo "bench.sh: baseline $baseline not readable" >&2; exit 2; }
  shift 2
fi
out="${1:-BENCH_baseline.json}"
if [ -n "$baseline" ] && [ "$#" -eq 0 ]; then
  out="$(mktemp --suffix .json)"
fi
pkgs="./internal/nic ./internal/nic/conntrack ./internal/fw ./internal/fw/sem ./internal/sim ./internal/packet ./internal/measure ./internal/telemetry"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench . -benchmem -count "${BENCH_COUNT:-3}" -timeout 30m $pkgs | tee "$raw"

python3 - "$raw" "$out" <<'PY'
import json, re, statistics, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
# Benchmark line: "BenchmarkName-8  <iters>  <value> <unit>  <value> <unit> ..."
line_re = re.compile(r"^(Benchmark\S+)\s+(\d+)\s+(.*)$")
pair_re = re.compile(r"([0-9.eE+]+)\s+(\S+)")

samples = {}
for line in open(raw_path):
    m = line_re.match(line.strip())
    if not m:
        continue
    name = re.sub(r"-\d+$", "", m.group(1))  # strip the -GOMAXPROCS suffix
    metrics = samples.setdefault(name, {})
    for value, unit in pair_re.findall(m.group(3)):
        metrics.setdefault(unit, []).append(float(value))

baseline = {
    name: {unit: statistics.median(vals) for unit, vals in metrics.items()}
    for name, metrics in sorted(samples.items())
}
with open(out_path, "w") as f:
    json.dump(baseline, f, indent=1, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(baseline)} benchmarks)")
PY

if [ -n "$baseline" ]; then
  NSOP_TOL="${NSOP_TOL:-10}" python3 - "$baseline" "$out" <<'PY'
import json, os, sys

base_path, cur_path = sys.argv[1], sys.argv[2]
tol = float(os.environ.get("NSOP_TOL", "10"))
base = json.load(open(base_path))
cur = json.load(open(cur_path))

failures, notes = [], []
for name in sorted(set(base) | set(cur)):
    if name not in cur:
        notes.append(f"  {name}: in baseline only (removed or renamed)")
        continue
    if name not in base:
        notes.append(f"  {name}: new benchmark, no baseline")
        continue
    b, c = base[name], cur[name]
    b_ns, c_ns = b.get("ns/op"), c.get("ns/op")
    if b_ns and c_ns is not None and c_ns > b_ns * (1 + tol / 100):
        failures.append(
            f"  {name}: ns/op {c_ns:g} vs baseline {b_ns:g} (+{(c_ns / b_ns - 1) * 100:.1f}% > {tol:g}%)")
    b_al, c_al = b.get("allocs/op", 0), c.get("allocs/op", 0)
    if c_al > b_al:
        failures.append(
            f"  {name}: allocs/op {c_al:g} vs baseline {b_al:g} (any increase fails)")

if notes:
    print("bench compare notes:")
    print("\n".join(notes))
if failures:
    print(f"bench compare FAILED against {base_path} (NSOP_TOL={tol:g}%):")
    print("\n".join(failures))
    sys.exit(1)
print(f"bench compare OK against {base_path} "
      f"({len([n for n in base if n in cur])} benchmarks, NSOP_TOL={tol:g}%)")
PY
fi
