#!/usr/bin/env bash
# Run the repository's hot-path benchmarks and snapshot the results as
# a machine-readable baseline so perf regressions diff against a
# committed reference.
#
# Usage:
#
#   scripts/bench.sh [output.json]
#
# Writes BENCH_baseline.json (or the given path) at the repo root with
# one record per benchmark: ns/op, B/op, allocs/op, MB/s, and any
# custom metrics (e.g. sim_Mbps from the stack bulk-transfer bench),
# each the median of -count 3 runs.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_baseline.json}"
pkgs="./internal/nic ./internal/fw ./internal/sim ./internal/packet ./internal/measure"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench . -benchmem -count 3 -timeout 30m $pkgs | tee "$raw"

python3 - "$raw" "$out" <<'PY'
import json, re, statistics, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
# Benchmark line: "BenchmarkName-8  <iters>  <value> <unit>  <value> <unit> ..."
line_re = re.compile(r"^(Benchmark\S+)\s+(\d+)\s+(.*)$")
pair_re = re.compile(r"([0-9.eE+]+)\s+(\S+)")

samples = {}
for line in open(raw_path):
    m = line_re.match(line.strip())
    if not m:
        continue
    name = re.sub(r"-\d+$", "", m.group(1))  # strip the -GOMAXPROCS suffix
    metrics = samples.setdefault(name, {})
    for value, unit in pair_re.findall(m.group(3)):
        metrics.setdefault(unit, []).append(float(value))

baseline = {
    name: {unit: statistics.median(vals) for unit, vals in metrics.items()}
    for name, metrics in sorted(samples.items())
}
with open(out_path, "w") as f:
    json.dump(baseline, f, indent=1, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(baseline)} benchmarks)")
PY
