// Package hostfw models a host-resident software firewall (the paper's
// iptables baseline): the same first-match rule semantics as the embedded
// cards, but executed on the host CPU, whose budget dwarfs the NIC's
// embedded processor. That ratio is why the paper found iptables lost no
// bandwidth at 64 rules on a 100 Mbps network and shrugged off every
// flood their generator could produce.
package hostfw

import (
	"barbican/internal/fw"
	"barbican/internal/nic"
	"barbican/internal/nic/conntrack"
	"barbican/internal/packet"
	"barbican/internal/sim"
)

// Profile parameterizes the host CPU cost of filtering.
type Profile struct {
	Name          string
	CapacityUnits float64
	BaseCost      float64
	PerRuleCost   float64
	MaxQueue      int // kernel backlog, in packets

	// Connection tracking (the ip_conntrack module). Zero entries =
	// stateless host filter; state matchers in the policy then never
	// see a classification other than StateNone and stateful rules
	// simply cannot fire.
	ConntrackEntries    int
	ConntrackLookupCost float64
	ConntrackInsertCost float64
	ConntrackEvict      conntrack.EvictPolicy
}

// IPTables returns the calibrated Linux 2.4 iptables profile on the
// paper's 1 GHz Pentium III hosts: roughly 17× the embedded card's
// packet budget, so a 100 Mbps network cannot saturate it at any rule
// depth the paper tested.
func IPTables() Profile {
	return Profile{
		Name:          "iptables",
		CapacityUnits: 6_000_000,
		BaseCost:      60,
		PerRuleCost:   2.2,
		MaxQueue:      1024,
	}
}

// IPTablesStateful returns the iptables profile with the ip_conntrack
// module loaded. Host RAM dwarfs NIC SRAM: the table holds 64× the
// stateful card's entries, so the state-exhaustion flood that fells the
// card leaves the host untouched — the same capacity asymmetry the
// paper measured for raw packet rate. Eviction is the kernel's
// early-drop of embryonic entries.
func IPTablesStateful() Profile {
	p := IPTables()
	p.Name = "iptables-conntrack"
	p.ConntrackEntries = 65536
	p.ConntrackLookupCost = 3.0
	p.ConntrackInsertCost = 6.0
	p.ConntrackEvict = conntrack.EvictSYNDrop
	return p
}

// Stats counts filter activity.
type Stats struct {
	InAllowed, InDenied, InOverloadDrops    uint64
	OutAllowed, OutDenied, OutOverloadDrops uint64
	// StateFullDrops counts allowed-by-policy packets dropped because
	// the conntrack table was full ("nf_conntrack: table full, dropping
	// packet"). The host has no fail-open posture for this.
	StateFullDrops uint64
}

// Firewall is a host software firewall. A nil *Firewall admits all
// traffic, so hosts can hold one unconditionally.
type Firewall struct {
	kernel  *sim.Kernel
	profile Profile
	proc    *nic.Processor
	rules   *fw.RuleSet
	ct      *conntrack.Table // nil without the conntrack module
	stats   Stats
}

// New creates a host firewall with no rules installed (allow all).
func New(k *sim.Kernel, profile Profile) *Firewall {
	f := &Firewall{
		kernel:  k,
		profile: profile,
		proc:    nic.NewProcessor(k, profile.CapacityUnits, profile.MaxQueue),
	}
	if profile.ConntrackEntries > 0 {
		f.ct = conntrack.New(conntrack.Config{
			Cap:    profile.ConntrackEntries,
			Policy: profile.ConntrackEvict,
			Seed:   k.Rand().Int63(),
		})
	}
	return f
}

// Conntrack returns the host's connection-tracking table (nil without
// the module).
func (f *Firewall) Conntrack() *conntrack.Table {
	if f == nil {
		return nil
	}
	return f.ct
}

// Install sets (or with nil clears) the rule set.
func (f *Firewall) Install(rs *fw.RuleSet) { f.rules = rs }

// RuleSet returns the installed policy (nil when unfiltered).
func (f *Firewall) RuleSet() *fw.RuleSet {
	if f == nil {
		return nil
	}
	return f.rules
}

// Stats returns a snapshot of the counters.
func (f *Firewall) Stats() Stats { return f.stats }

// FilterIn reports whether an inbound packet is admitted.
func (f *Firewall) FilterIn(s packet.Summary) bool {
	if f == nil {
		return true
	}
	ok, allowed := f.filter(s, fw.In)
	switch {
	case !ok:
		f.stats.InOverloadDrops++
	case allowed:
		f.stats.InAllowed++
	default:
		f.stats.InDenied++
	}
	return ok && allowed
}

// FilterOut reports whether an outbound packet is admitted.
func (f *Firewall) FilterOut(s packet.Summary) bool {
	if f == nil {
		return true
	}
	ok, allowed := f.filter(s, fw.Out)
	switch {
	case !ok:
		f.stats.OutOverloadDrops++
	case allowed:
		f.stats.OutAllowed++
	default:
		f.stats.OutDenied++
	}
	return ok && allowed
}

func (f *Firewall) filter(s packet.Summary, dir fw.Direction) (processed, allowed bool) {
	if f.rules == nil {
		return true, true
	}
	// Classify before rule evaluation when both the module and a
	// stateful policy are present. Unlike the NIC fast path, the host
	// filter does NOT auto-drop ctstate INVALID: iptables hands every
	// classification to the rules, and only an explicit match (or the
	// default action) decides. A stateful policy without a `state
	// invalid` rule falls through to its default.
	cs := fw.StateNone
	ctCost := 0.0
	if f.ct != nil && !s.Sealed && f.rules.Stateful() {
		cs = f.ct.Classify(s, f.kernel.Now())
		ctCost = f.profile.ConntrackLookupCost
	}
	v := f.rules.EvalState(s, dir, cs)
	stateFull := false
	if v.Action == fw.Allow && cs != fw.StateNone && cs != fw.StateInvalid {
		switch f.ct.Commit(s, f.kernel.Now()) {
		case conntrack.CommitCreated, conntrack.CommitEvicted:
			ctCost += f.profile.ConntrackInsertCost
		case conntrack.CommitFull:
			ctCost += f.profile.ConntrackInsertCost
			stateFull = true
		case conntrack.CommitExisting, conntrack.NumCommitStatuses:
		}
	}
	cost := f.profile.BaseCost + f.profile.PerRuleCost*float64(v.Traversed) + ctCost
	if _, ok := f.proc.Admit(cost); !ok {
		return false, false
	}
	if stateFull {
		f.stats.StateFullDrops++
		return true, false
	}
	return true, v.Action == fw.Allow
}
