// Package hostfw models a host-resident software firewall (the paper's
// iptables baseline): the same first-match rule semantics as the embedded
// cards, but executed on the host CPU, whose budget dwarfs the NIC's
// embedded processor. That ratio is why the paper found iptables lost no
// bandwidth at 64 rules on a 100 Mbps network and shrugged off every
// flood their generator could produce.
package hostfw

import (
	"barbican/internal/fw"
	"barbican/internal/nic"
	"barbican/internal/packet"
	"barbican/internal/sim"
)

// Profile parameterizes the host CPU cost of filtering.
type Profile struct {
	Name          string
	CapacityUnits float64
	BaseCost      float64
	PerRuleCost   float64
	MaxQueue      int // kernel backlog, in packets
}

// IPTables returns the calibrated Linux 2.4 iptables profile on the
// paper's 1 GHz Pentium III hosts: roughly 17× the embedded card's
// packet budget, so a 100 Mbps network cannot saturate it at any rule
// depth the paper tested.
func IPTables() Profile {
	return Profile{
		Name:          "iptables",
		CapacityUnits: 6_000_000,
		BaseCost:      60,
		PerRuleCost:   2.2,
		MaxQueue:      1024,
	}
}

// Stats counts filter activity.
type Stats struct {
	InAllowed, InDenied, InOverloadDrops    uint64
	OutAllowed, OutDenied, OutOverloadDrops uint64
}

// Firewall is a host software firewall. A nil *Firewall admits all
// traffic, so hosts can hold one unconditionally.
type Firewall struct {
	profile Profile
	proc    *nic.Processor
	rules   *fw.RuleSet
	stats   Stats
}

// New creates a host firewall with no rules installed (allow all).
func New(k *sim.Kernel, profile Profile) *Firewall {
	return &Firewall{
		profile: profile,
		proc:    nic.NewProcessor(k, profile.CapacityUnits, profile.MaxQueue),
	}
}

// Install sets (or with nil clears) the rule set.
func (f *Firewall) Install(rs *fw.RuleSet) { f.rules = rs }

// RuleSet returns the installed policy (nil when unfiltered).
func (f *Firewall) RuleSet() *fw.RuleSet {
	if f == nil {
		return nil
	}
	return f.rules
}

// Stats returns a snapshot of the counters.
func (f *Firewall) Stats() Stats { return f.stats }

// FilterIn reports whether an inbound packet is admitted.
func (f *Firewall) FilterIn(s packet.Summary) bool {
	if f == nil {
		return true
	}
	ok, allowed := f.filter(s, fw.In)
	switch {
	case !ok:
		f.stats.InOverloadDrops++
	case allowed:
		f.stats.InAllowed++
	default:
		f.stats.InDenied++
	}
	return ok && allowed
}

// FilterOut reports whether an outbound packet is admitted.
func (f *Firewall) FilterOut(s packet.Summary) bool {
	if f == nil {
		return true
	}
	ok, allowed := f.filter(s, fw.Out)
	switch {
	case !ok:
		f.stats.OutOverloadDrops++
	case allowed:
		f.stats.OutAllowed++
	default:
		f.stats.OutDenied++
	}
	return ok && allowed
}

func (f *Firewall) filter(s packet.Summary, dir fw.Direction) (processed, allowed bool) {
	if f.rules == nil {
		return true, true
	}
	v := f.rules.Eval(s, dir)
	cost := f.profile.BaseCost + f.profile.PerRuleCost*float64(v.Traversed)
	if _, ok := f.proc.Admit(cost); !ok {
		return false, false
	}
	return true, v.Action == fw.Allow
}
