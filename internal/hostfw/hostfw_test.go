package hostfw

import (
	"testing"
	"time"

	"barbican/internal/fw"
	"barbican/internal/packet"
	"barbican/internal/sim"
)

func summary(dport uint16) packet.Summary {
	return packet.Summary{
		Proto: packet.ProtoTCP,
		Src:   packet.MustIP("10.0.0.1"), Dst: packet.MustIP("10.0.0.2"),
		SrcPort: 4242, DstPort: dport, HasPorts: true,
	}
}

func TestNilFirewallAllowsAll(t *testing.T) {
	var f *Firewall
	if !f.FilterIn(summary(80)) || !f.FilterOut(summary(80)) {
		t.Error("nil firewall filtered traffic")
	}
	if f.RuleSet() != nil {
		t.Error("nil firewall has rules")
	}
}

func TestNoRulesAllowsAll(t *testing.T) {
	f := New(sim.NewKernel(), IPTables())
	if !f.FilterIn(summary(80)) {
		t.Error("empty firewall denied traffic")
	}
}

func TestRulesEnforced(t *testing.T) {
	f := New(sim.NewKernel(), IPTables())
	f.Install(fw.MustRuleSet(fw.Deny,
		fw.Rule{Action: fw.Allow, Direction: fw.In, Proto: packet.ProtoTCP, DstPorts: fw.Port(80)},
	))
	if !f.FilterIn(summary(80)) {
		t.Error("allowed traffic denied")
	}
	if f.FilterIn(summary(81)) {
		t.Error("denied traffic allowed")
	}
	st := f.Stats()
	if st.InAllowed != 1 || st.InDenied != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDirectionsIndependent(t *testing.T) {
	f := New(sim.NewKernel(), IPTables())
	f.Install(fw.MustRuleSet(fw.Allow,
		fw.Rule{Action: fw.Deny, Direction: fw.Out, Proto: packet.ProtoTCP, DstPorts: fw.Port(80)},
	))
	if !f.FilterIn(summary(80)) {
		t.Error("inbound denied by out-rule")
	}
	if f.FilterOut(summary(80)) {
		t.Error("outbound allowed despite out-rule")
	}
}

func TestIPTablesSurvives100MbpsFloods(t *testing.T) {
	// The paper could not flood iptables into denial of service with a
	// 64-rule policy on a 100 Mbps network. 12,500 pps at 64 rules must
	// consume well under the host budget.
	k := sim.NewKernel()
	f := New(k, IPTables())
	rs, err := fw.DepthRuleSet(64, fw.AllowAllRule(), fw.Deny)
	if err != nil {
		t.Fatal(err)
	}
	f.Install(rs)
	denied := 0
	interval := time.Second / 12_500
	for i := 0; i < 12_500; i++ {
		k.At(time.Duration(i)*interval, func() {
			if !f.FilterIn(summary(80)) {
				denied++
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if denied != 0 {
		t.Errorf("iptables dropped %d of 12500 packets at 64 rules", denied)
	}
}

func TestOverloadDropsWhenSaturated(t *testing.T) {
	k := sim.NewKernel()
	p := IPTables()
	p.CapacityUnits = 1000 // tiny budget
	p.MaxQueue = 4
	f := New(k, p)
	f.Install(fw.MustRuleSet(fw.Allow))
	drops := 0
	for i := 0; i < 1000; i++ {
		if !f.FilterIn(summary(80)) {
			drops++
		}
	}
	if drops == 0 {
		t.Error("saturated host firewall dropped nothing")
	}
	if f.Stats().InOverloadDrops == 0 {
		t.Error("overload drops not counted")
	}
}
