package measure_test

import (
	"math"
	"strings"
	"testing"

	"barbican/internal/measure"
)

func TestSampleVarianceAndStderr(t *testing.T) {
	var s measure.Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Variance(); math.Abs(got-4) > 1e-9 {
		t.Errorf("variance = %v, want 4", got)
	}
	// stderr = population stddev / sqrt(n-1) = 2 / sqrt(7)
	want := 2 / math.Sqrt(7)
	if got := s.Stderr(); math.Abs(got-want) > 1e-9 {
		t.Errorf("stderr = %v, want %v", got, want)
	}
}

func TestSampleStderrGuards(t *testing.T) {
	var s measure.Sample
	if s.Variance() != 0 || s.Stderr() != 0 {
		t.Errorf("empty sample: variance=%v stderr=%v, want 0/0", s.Variance(), s.Stderr())
	}
	s.Add(3.5)
	if s.Stderr() != 0 {
		t.Errorf("n=1 stderr = %v, want 0", s.Stderr())
	}
}

func TestSampleVarianceNeverNegative(t *testing.T) {
	// Near-constant large values provoke catastrophic cancellation in
	// sumsq/n - mean^2; the guard must clamp to zero, never go NaN.
	var s measure.Sample
	for i := 0; i < 1000; i++ {
		s.Add(1e9 + 0.0001)
	}
	if v := s.Variance(); v < 0 || math.IsNaN(v) {
		t.Errorf("variance = %v, want >= 0", v)
	}
	if sd := s.Stddev(); math.IsNaN(sd) {
		t.Errorf("stddev = %v, want a number", sd)
	}
}

func TestSampleStringSingleObservation(t *testing.T) {
	var s measure.Sample
	s.Add(42.5)
	got := s.String()
	if strings.Contains(got, "±") {
		t.Errorf("n=1 String() = %q, must not render a ± term", got)
	}
	if !strings.Contains(got, "42.50") || !strings.Contains(got, "n=1") {
		t.Errorf("n=1 String() = %q, want mean and count", got)
	}

	s.Add(43.5)
	if got := s.String(); !strings.Contains(got, "±") {
		t.Errorf("n=2 String() = %q, want a ± term", got)
	}
}
