package measure

import (
	"fmt"
	"time"

	"barbican/internal/apps"
	"barbican/internal/sim"
	"barbican/internal/stack"
)

// RFC 2544 benchmarking, adapted as the paper adapted it (§4.1): the
// classic methodology measures a forwarding device between two
// interfaces, but a NIC-based firewall has one interface and no
// forwarding path, so the throughput search offers a unidirectional
// stream to the protected host and asks what rate arrives intact.

// RFC2544FrameSizes are the standard Ethernet trial frame sizes.
var RFC2544FrameSizes = []int{64, 128, 256, 512, 1024, 1280, 1518}

// ThroughputConfig configures an RFC 2544-style zero-loss throughput
// search.
type ThroughputConfig struct {
	// FrameSize is the Ethernet frame size (header+payload+FCS), one of
	// the RFC's trial sizes; zero defaults to 1518.
	FrameSize int
	// TrialDuration is the per-rate trial length; zero defaults to 2 s
	// (the RFC recommends 60 s; simulation trades that for search depth).
	TrialDuration time.Duration
	// LossTolerance is the acceptable loss fraction for a passing trial;
	// the RFC demands zero, but a small epsilon (default 0.1 %)
	// stabilizes the binary search against boundary jitter.
	LossTolerance float64
	// Port is the sink port; zero defaults to DefaultIperfPort.
	Port uint16
}

func (c ThroughputConfig) withDefaults() ThroughputConfig {
	if c.FrameSize == 0 {
		c.FrameSize = 1518
	}
	if c.TrialDuration == 0 {
		c.TrialDuration = 2 * time.Second
	}
	if c.LossTolerance == 0 {
		c.LossTolerance = 0.001
	}
	if c.Port == 0 {
		c.Port = DefaultIperfPort
	}
	return c
}

// ThroughputResult reports a zero-loss throughput search.
type ThroughputResult struct {
	FrameSize int
	// FramesPerSec is the highest offered frame rate with loss within
	// tolerance.
	FramesPerSec float64
	// Mbps is the corresponding line rate (frame bytes, excluding
	// preamble/IFG, as RFC 2544 reports).
	Mbps float64
	// Trials is the number of rate trials run.
	Trials int
	// LineRateLimited reports that the search hit the medium's maximum
	// frame rate rather than a device limit.
	LineRateLimited bool
}

// String renders one result row.
func (r ThroughputResult) String() string {
	note := ""
	if r.LineRateLimited {
		note = " (line rate)"
	}
	return fmt.Sprintf("%4d-byte frames: %8.0f fps  %6.1f Mbps%s", r.FrameSize, r.FramesPerSec, r.Mbps, note)
}

// trialFn runs one offered-load trial and reports sent and received
// frame counts.
type trialFn func(rate float64) (sent, received uint64, err error)

// ZeroLossThroughput performs the RFC 2544 §26.1 throughput search for
// one frame size: binary search on the offered rate for the highest
// rate whose loss is within tolerance. newTrial must build a *fresh*
// client/server pair per trial (trials must be independent); it is
// invoked once per trial.
func ZeroLossThroughput(cfg ThroughputConfig, maxRate float64, trial trialFn) (ThroughputResult, error) {
	return ZeroLossThroughputFrom(cfg, maxRate, 0, trial)
}

// ZeroLossThroughputFrom is ZeroLossThroughput warm-started from a
// neighboring result. A hint in (0, maxRate) — typically the passing
// rate found at the adjacent frame size, scaled by the size ratio —
// seeds the bisection bracket by galloping outward from the hint, which
// cuts trial count when neighboring sizes saturate at nearby rates.
// hint <= 0 runs the cold search.
func ZeroLossThroughputFrom(cfg ThroughputConfig, maxRate, hint float64, trial trialFn) (ThroughputResult, error) {
	cfg = cfg.withDefaults()
	res := ThroughputResult{FrameSize: cfg.FrameSize}

	passes := func(rate float64) (bool, error) {
		sent, received, err := trial(rate)
		if err != nil {
			return false, err
		}
		res.Trials++
		if sent == 0 {
			return false, fmt.Errorf("measure: trial offered no frames")
		}
		loss := 1 - float64(received)/float64(sent)
		return loss <= cfg.LossTolerance, nil
	}

	var lo, hi float64
	if hint > 0 && hint < maxRate {
		// Warm start: establish the lo-passes / hi-fails bracket by
		// galloping from the hint, doubling the step until the outcome
		// flips or a cold bound is reached.
		ok, err := passes(hint)
		if err != nil {
			return res, err
		}
		step := maxRate / 256
		if ok {
			lo = hint
			for {
				hi = lo + step
				if hi >= maxRate {
					hi = maxRate
				}
				ok2, err := passes(hi)
				if err != nil {
					return res, err
				}
				if !ok2 {
					break
				}
				lo = hi
				if hi == maxRate {
					res.FramesPerSec = maxRate
					res.LineRateLimited = true
					res.Mbps = maxRate * float64(cfg.FrameSize) * 8 / 1e6
					return res, nil
				}
				step *= 2
			}
		} else {
			hi = hint
			for {
				lo = hi - step
				if lo <= 0 {
					lo = 0
					break // lo passes vacuously
				}
				ok2, err := passes(lo)
				if err != nil {
					return res, err
				}
				if ok2 {
					break
				}
				hi = lo
				step *= 2
			}
		}
	} else {
		ok, err := passes(maxRate)
		if err != nil {
			return res, err
		}
		if ok {
			res.FramesPerSec = maxRate
			res.LineRateLimited = true
			res.Mbps = maxRate * float64(cfg.FrameSize) * 8 / 1e6
			return res, nil
		}
		lo, hi = 0.0, maxRate // invariant: lo passes (vacuously), hi fails
	}
	for hi-lo > maxRate/256 {
		mid := (lo + hi) / 2
		ok, err := passes(mid)
		if err != nil {
			return res, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	res.FramesPerSec = lo
	res.Mbps = lo * float64(cfg.FrameSize) * 8 / 1e6
	return res, nil
}

// HostThroughputTrial returns a trialFn measuring a UDP stream between
// two hosts built fresh per trial by newPair. The frame size fixes the
// UDP payload length.
func HostThroughputTrial(cfg ThroughputConfig, newPair func() (k *sim.Kernel, client, server *stack.Host, err error)) trialFn {
	cfg = cfg.withDefaults()
	// frame = 18 (eth hdr+fcs) + 20 (ip) + 8 (udp) + payload
	payload := cfg.FrameSize - 18 - 28
	if payload < 0 {
		payload = 0
	}
	return func(rate float64) (uint64, uint64, error) {
		k, client, server, err := newPair()
		if err != nil {
			return 0, 0, err
		}
		sink, err := apps.NewUDPSink(server, cfg.Port)
		if err != nil {
			return 0, 0, err
		}
		sock, err := client.BindUDP(0)
		if err != nil {
			return 0, 0, err
		}
		buf := make([]byte, payload)
		start := k.Now()
		var sent uint64
		interval := time.Duration(float64(time.Second) / rate)
		var send func()
		send = func() {
			if k.Now()-start >= cfg.TrialDuration {
				return
			}
			sent++
			sock.SendTo(server.IP(), cfg.Port, buf)
			k.After(interval, send)
		}
		send()
		if err := k.RunUntil(start + cfg.TrialDuration + 100*time.Millisecond); err != nil {
			return 0, 0, err
		}
		received, _ := sink.Received()
		return sent, received, nil
	}
}
