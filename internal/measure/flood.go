package measure

import (
	"time"

	"barbican/internal/packet"
	"barbican/internal/sim"
	"barbican/internal/stack"
)

// FloodKind selects the flood traffic type.
type FloodKind int

// Flood kinds.
const (
	// FloodUDP sends UDP datagrams (like hping2 --udp / the thesis'
	// generator). Allowed UDP floods to a closed port elicit ICMP port
	// unreachable responses from the victim.
	FloodUDP FloodKind = iota + 1
	// FloodTCPSYN sends TCP SYNs. Allowed SYN floods elicit RSTs (closed
	// port) or SYN-ACKs (open port) from the victim.
	FloodTCPSYN
	// FloodTCPACK sends bare TCP ACKs that belong to no tracked
	// connection. Against a stateless filter they look like established
	// traffic; a conntrack filter classifies them INVALID and drops
	// each one after a table lookup, without ever creating state — the
	// probe that separates state exhaustion from packet-rate exhaustion.
	FloodTCPACK
)

// FloodConfig configures a flood.
type FloodConfig struct {
	// Kind of flood; defaults to FloodUDP.
	Kind FloodKind
	// RatePPS is the packet rate. Required.
	RatePPS float64
	// DstPort is the targeted port; zero picks 7 (echo) for UDP and 80
	// for SYN floods.
	DstPort uint16
	// PayloadBytes pads UDP flood packets; zero means minimum-size
	// frames, maximizing packets per second — the attacker's optimal
	// choice against a per-packet bottleneck.
	PayloadBytes int
	// SpoofSources, when non-empty, cycles the source address through
	// the given addresses (the paper notes an attacker can spoof
	// whatever addresses the policy allows deep rule traversal for).
	SpoofSources []packet.IP
	// SrcPort is the source port; zero defaults to 4444.
	SrcPort uint16
	// Duration bounds the flood; zero floods until Stop.
	Duration time.Duration
	// Fragment splits each flood packet into IP fragments (RFC 1858
	// style evasion): only the first fragment carries ports, so
	// port-based deny rules never see the rest. Requires FloodUDP with
	// PayloadBytes large enough to split (>= 16).
	Fragment bool
}

// Flooder generates a rate-controlled packet flood from an attacker host.
type Flooder struct {
	kernel *sim.Kernel
	host   *stack.Host
	target packet.IP
	cfg    FloodConfig

	running bool
	stopped bool
	started time.Duration
	sent    uint64
	ipID    uint16

	// Scratch state for the steady-state build path: the attacker host
	// resolves neighbors statically in every scenario, so the NIC
	// consumes each injected datagram synchronously and the flood packet
	// can be assembled in place, allocation-free, at any rate.
	reuse    bool
	payload  []byte
	tx       []byte
	scratchD packet.Datagram
	tickFn   func(any)
}

// NewFlooder creates a flood generator on the attacker host aimed at
// target.
func NewFlooder(host *stack.Host, target packet.IP, cfg FloodConfig) *Flooder {
	if cfg.Kind == 0 {
		cfg.Kind = FloodUDP
	}
	if cfg.DstPort == 0 {
		if cfg.Kind == FloodTCPSYN || cfg.Kind == FloodTCPACK {
			cfg.DstPort = 80
		} else {
			cfg.DstPort = 7
		}
	}
	if cfg.SrcPort == 0 {
		cfg.SrcPort = 4444
	}
	f := &Flooder{
		kernel:  host.Kernel(),
		host:    host,
		target:  target,
		cfg:     cfg,
		reuse:   host.StaticNeighbors(),
		payload: make([]byte, cfg.PayloadBytes),
	}
	f.tickFn = func(any) { f.tick() }
	return f
}

// Start begins flooding. The flood runs in virtual time alongside
// whatever measurement the caller drives next.
func (f *Flooder) Start() {
	if f.running || f.cfg.RatePPS <= 0 {
		return
	}
	f.running = true
	f.stopped = false
	f.started = f.kernel.Now()
	f.tick()
}

// Stop halts the flood.
func (f *Flooder) Stop() { f.stopped = true; f.running = false }

// Sent returns the number of flood packets injected.
func (f *Flooder) Sent() uint64 { return f.sent }

func (f *Flooder) tick() {
	if f.stopped {
		return
	}
	if f.cfg.Duration > 0 && f.kernel.Now()-f.started >= f.cfg.Duration {
		f.running = false
		return
	}
	f.inject()
	// Deterministic ±5% jitter avoids phase-locking artifacts between
	// the flood, the measurement stream, and the card's service times.
	interval := time.Duration(float64(time.Second) / f.cfg.RatePPS * (0.95 + 0.1*f.kernel.Rand().Float64()))
	if interval <= 0 {
		interval = time.Microsecond
	}
	f.kernel.AfterCall(interval, f.tickFn, nil)
}

// buildDatagram assembles the next flood packet. When the attacker host
// resolves neighbors statically the flooder's scratch buffers are
// reused, making the steady-state build path allocation-free
// (BenchmarkFloodMarshal).
//
//barbican:noalloc
func (f *Flooder) buildDatagram() *packet.Datagram {
	src := f.host.IP()
	if n := len(f.cfg.SpoofSources); n > 0 {
		src = f.cfg.SpoofSources[int(f.sent)%n]
	}
	f.ipID++
	tx := f.tx[:0]
	if !f.reuse {
		tx = nil
	}
	var transport []byte
	var proto packet.Protocol
	switch f.cfg.Kind {
	case FloodTCPSYN:
		seg := packet.TCPSegment{
			SrcPort: f.cfg.SrcPort + uint16(f.sent%1024),
			DstPort: f.cfg.DstPort,
			Seq:     uint32(f.sent),
			Flags:   packet.FlagSYN,
			Window:  65535,
		}
		transport = seg.MarshalTo(src, f.target, tx)
		proto = packet.ProtoTCP
	case FloodTCPACK:
		seg := packet.TCPSegment{
			SrcPort: f.cfg.SrcPort + uint16(f.sent%1024),
			DstPort: f.cfg.DstPort,
			Seq:     uint32(f.sent),
			Ack:     uint32(f.sent) + 1,
			Flags:   packet.FlagACK,
			Window:  65535,
		}
		transport = seg.MarshalTo(src, f.target, tx)
		proto = packet.ProtoTCP
	default:
		u := packet.UDPDatagram{
			SrcPort: f.cfg.SrcPort,
			DstPort: f.cfg.DstPort,
			Payload: f.payload,
		}
		transport = u.MarshalTo(src, f.target, tx)
		proto = packet.ProtoUDP
	}
	if f.reuse {
		f.tx = transport
		f.scratchD = *packet.NewDatagram(src, f.target, proto, f.ipID, transport)
		return &f.scratchD
	}
	return packet.NewDatagram(src, f.target, proto, f.ipID, transport) //barbican:allow alloc -- non-reuse path: dynamic ARP keeps per-packet buffers alive
}

func (f *Flooder) inject() {
	d := f.buildDatagram()
	if f.cfg.Fragment {
		// Split so the first fragment holds just the transport header
		// (ports) and the rest carries the payload unmatchable by
		// port rules.
		d.Header.DontFrag = false
		frags, err := packet.Fragment(d, packet.IPv4HeaderLen+16)
		if err == nil {
			for _, fr := range frags {
				f.host.InjectDatagram(fr)
			}
			f.sent++
			return
		}
		// Fall through to unfragmented on error (payload too small).
	}
	f.host.InjectDatagram(d)
	f.sent++
}
