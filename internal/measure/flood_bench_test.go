package measure

import (
	"testing"

	"barbican/internal/link"
	"barbican/internal/nic"
	"barbican/internal/packet"
	"barbican/internal/sim"
	"barbican/internal/stack"
)

// benchFlooder builds a flooder on a minimal attacker host with a static
// neighbor table — the configuration every scenario uses — so the
// steady-state build path runs with scratch-buffer reuse enabled.
func benchFlooder(b *testing.B, cfg FloodConfig) *Flooder {
	b.Helper()
	k := sim.NewKernel()
	ep, _ := link.New(k, link.Config{})
	targetIP := packet.MustIP("10.0.0.2")
	targetMAC := packet.MAC{0x02, 0, 0, 0, 0, 2}
	card := nic.New(k, packet.MAC{0x02, 0, 0, 0, 0, 0x66}, nic.Profile{}, ep)
	host, err := stack.NewHost(k, stack.Config{
		Name: "attacker",
		IP:   packet.MustIP("10.0.0.66"),
		NIC:  card,
		Resolve: func(packet.IP) (packet.MAC, bool) {
			return targetMAC, true
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return NewFlooder(host, targetIP, cfg)
}

// BenchmarkFloodMarshal measures the flood generator's per-packet build
// path — transport marshal, checksum, and datagram assembly. The
// acceptance bar is 0 allocs/op: at 12,500 pps this path must not be an
// allocation firehose.
func BenchmarkFloodMarshal(b *testing.B) {
	cases := []struct {
		name string
		cfg  FloodConfig
	}{
		{"udp-min", FloodConfig{Kind: FloodUDP, RatePPS: 12500}},
		{"udp-padded", FloodConfig{Kind: FloodUDP, RatePPS: 12500, PayloadBytes: 1472}},
		{"tcp-syn", FloodConfig{Kind: FloodTCPSYN, RatePPS: 12500}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			f := benchFlooder(b, tc.cfg)
			if d := f.buildDatagram(); len(d.Payload) == 0 {
				b.Fatal("empty flood transport")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.buildDatagram()
			}
		})
	}
}

// BenchmarkFloodInject covers the full injection path (build + NIC
// egress + wire departure). The frame and its payload escape into the
// network, so this path keeps a small constant allocation count; the
// benchmark tracks it so regressions surface.
func BenchmarkFloodInject(b *testing.B) {
	f := benchFlooder(b, FloodConfig{Kind: FloodUDP, RatePPS: 12500})
	k := f.kernel
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.inject()
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
