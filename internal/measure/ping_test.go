package measure_test

import (
	"testing"

	"barbican/internal/core"
	"barbican/internal/fw"
	"barbican/internal/measure"
)

func TestPingRTTCleanPath(t *testing.T) {
	tb := testbed(t, core.TestbedOptions{})
	res, err := measure.RunPingRTT(tb.Kernel, tb.Client, tb.Target, measure.PingConfig{Count: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 10 || res.Received != 10 {
		t.Fatalf("sent/received = %d/%d", res.Sent, res.Received)
	}
	// Two switch hops each way on idle 100 Mbps links: well under 1 ms.
	if res.RTTms.Mean() <= 0 || res.RTTms.Mean() > 1 {
		t.Errorf("mean RTT = %.3f ms", res.RTTms.Mean())
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

func TestPingRTTGrowsWithRuleDepth(t *testing.T) {
	rtt := func(depth int) float64 {
		tb := testbed(t, core.TestbedOptions{TargetDevice: core.DeviceEFW})
		rs, err := fw.DepthRuleSet(depth, fw.AllowAllRule(), fw.Deny)
		if err != nil {
			t.Fatal(err)
		}
		tb.InstallPolicy(tb.Target, rs)
		res, err := measure.RunPingRTT(tb.Kernel, tb.Client, tb.Target, measure.PingConfig{Count: 10})
		if err != nil {
			t.Fatal(err)
		}
		if res.Received != res.Sent {
			t.Fatalf("loss on idle path: %s", res)
		}
		return res.RTTms.Mean()
	}
	shallow, deep := rtt(1), rtt(64)
	if deep <= shallow {
		t.Errorf("RTT did not grow with depth: %.3f vs %.3f ms", shallow, deep)
	}
}

func TestPingRTTCountsLoss(t *testing.T) {
	tb := testbed(t, core.TestbedOptions{TargetDevice: core.DeviceEFW})
	// Deny ICMP: all probes lost.
	rs, err := fw.NewRuleSet(fw.Deny)
	if err != nil {
		t.Fatal(err)
	}
	tb.InstallPolicy(tb.Target, rs)
	res, err := measure.RunPingRTT(tb.Kernel, tb.Client, tb.Target, measure.PingConfig{Count: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Received != 0 || res.Sent != 5 {
		t.Errorf("result = %s", res)
	}
}
