package measure

import (
	"fmt"
	"time"

	"barbican/internal/packet"
	"barbican/internal/sim"
	"barbican/internal/stack"
)

// PingConfig configures an ICMP round-trip-time measurement.
type PingConfig struct {
	// Count is the number of echo requests; zero defaults to 20.
	Count int
	// Interval spaces the requests; zero defaults to 10 ms.
	Interval time.Duration
	// Timeout bounds the wait for stragglers after the last request;
	// zero defaults to 500 ms.
	Timeout time.Duration
}

func (c PingConfig) withDefaults() PingConfig {
	if c.Count == 0 {
		c.Count = 20
	}
	if c.Interval == 0 {
		c.Interval = 10 * time.Millisecond
	}
	if c.Timeout == 0 {
		c.Timeout = 500 * time.Millisecond
	}
	return c
}

// PingResult reports an RTT measurement.
type PingResult struct {
	Sent     int
	Received int
	// RTTms is the round-trip-time distribution in milliseconds.
	RTTms Sample
}

// String renders a ping-style summary.
func (r PingResult) String() string {
	loss := 0.0
	if r.Sent > 0 {
		loss = 100 * float64(r.Sent-r.Received) / float64(r.Sent)
	}
	return fmt.Sprintf("%d sent, %d received (%.0f%% loss), rtt %.3f±%.3f ms",
		r.Sent, r.Received, loss, r.RTTms.Mean(), r.RTTms.Stddev())
}

// RunPingRTT measures ICMP echo round-trip times from client to server.
// It installs (and restores) the client's ICMP observer and drives the
// simulation kernel for the measurement.
func RunPingRTT(k *sim.Kernel, client, server *stack.Host, cfg PingConfig) (PingResult, error) {
	cfg = cfg.withDefaults()
	var res PingResult

	const id = 0x4242
	sentAt := make(map[uint16]time.Duration, cfg.Count)
	prev := client.OnICMP
	defer func() { client.OnICMP = prev }()
	client.OnICMP = func(src packet.IP, m *packet.ICMPMessage) {
		if m.Type != packet.ICMPEchoReply || m.ID != id || src != server.IP() {
			if prev != nil {
				prev(src, m)
			}
			return
		}
		at, ok := sentAt[m.Seq]
		if !ok {
			return // duplicate or stray
		}
		delete(sentAt, m.Seq)
		res.Received++
		res.RTTms.Add(float64(k.Now()-at) / float64(time.Millisecond))
	}

	start := k.Now()
	for i := 0; i < cfg.Count; i++ {
		seq := uint16(i + 1)
		k.At(start+time.Duration(i)*cfg.Interval, func() {
			sentAt[seq] = k.Now()
			res.Sent++
			client.Ping(server.IP(), id, seq)
		})
	}
	deadline := start + time.Duration(cfg.Count)*cfg.Interval + cfg.Timeout
	if err := k.RunUntil(deadline); err != nil {
		return res, err
	}
	return res, nil
}
