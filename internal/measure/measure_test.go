package measure_test

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"barbican/internal/apps"
	"barbican/internal/core"
	"barbican/internal/measure"
	"barbican/internal/packet"
)

func testbed(t *testing.T, opts core.TestbedOptions) *core.Testbed {
	t.Helper()
	tb, err := core.NewTestbed(opts)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestUDPIperfCleanPath(t *testing.T) {
	tb := testbed(t, core.TestbedOptions{})
	res, err := measure.RunUDPIperf(tb.Kernel, tb.Client, tb.Target, measure.IperfConfig{
		Duration: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mbps < 90 || res.Mbps > 100 {
		t.Errorf("UDP goodput = %.1f Mbps, want ≈95", res.Mbps)
	}
	if res.LossFraction > 0.05 {
		t.Errorf("loss = %.2f on a clean path", res.LossFraction)
	}
	if res.DatagramsReceived == 0 || res.DatagramsSent < res.DatagramsReceived {
		t.Errorf("datagram counts: %d sent, %d received", res.DatagramsSent, res.DatagramsReceived)
	}
}

func TestUDPIperfRespectsOfferedRate(t *testing.T) {
	tb := testbed(t, core.TestbedOptions{})
	res, err := measure.RunUDPIperf(tb.Kernel, tb.Client, tb.Target, measure.IperfConfig{
		Duration:    time.Second,
		OfferedMbps: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mbps-10) > 1 {
		t.Errorf("goodput = %.1f Mbps, want ≈10 (offered rate)", res.Mbps)
	}
}

func TestTCPIperfCleanPath(t *testing.T) {
	tb := testbed(t, core.TestbedOptions{})
	res, err := measure.RunTCPIperf(tb.Kernel, tb.Client, tb.Target, measure.IperfConfig{
		Duration: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mbps < 85 {
		t.Errorf("TCP goodput = %.1f Mbps, want >85", res.Mbps)
	}
}

func TestIperfResultString(t *testing.T) {
	r := measure.IperfResult{Protocol: "udp", Duration: time.Second, Mbps: 42, DatagramsSent: 10, DatagramsReceived: 9, LossFraction: 0.1}
	if s := r.String(); s == "" {
		t.Error("empty render")
	}
	r2 := measure.IperfResult{Protocol: "tcp", Duration: time.Second, Mbps: 42}
	if s := r2.String(); s == "" {
		t.Error("empty render")
	}
}

func TestFlooderRateAccuracy(t *testing.T) {
	tb := testbed(t, core.TestbedOptions{})
	f := measure.NewFlooder(tb.Attacker, tb.Target.IP(), measure.FloodConfig{
		RatePPS: 5000,
	})
	f.Start()
	if err := tb.Kernel.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	f.Stop()
	rate := float64(f.Sent()) / 2
	if math.Abs(rate-5000) > 250 {
		t.Errorf("flood rate = %.0f pps, want ≈5000", rate)
	}
}

func TestFlooderDurationBound(t *testing.T) {
	tb := testbed(t, core.TestbedOptions{})
	f := measure.NewFlooder(tb.Attacker, tb.Target.IP(), measure.FloodConfig{
		RatePPS:  1000,
		Duration: 500 * time.Millisecond,
	})
	f.Start()
	if err := tb.Kernel.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	sent := f.Sent()
	if sent < 400 || sent > 600 {
		t.Errorf("bounded flood sent %d packets, want ≈500", sent)
	}
}

func TestFlooderSpoofedSourcesElicitNoHandshake(t *testing.T) {
	tb := testbed(t, core.TestbedOptions{})
	f := measure.NewFlooder(tb.Attacker, tb.Target.IP(), measure.FloodConfig{
		Kind:         measure.FloodTCPSYN,
		RatePPS:      1000,
		Duration:     time.Second,
		SpoofSources: []packet.IP{packet.MustIP("192.0.2.1"), packet.MustIP("192.0.2.2")},
	})
	f.Start()
	if err := tb.Kernel.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The victim responds toward the spoofed sources (RSTs), which do
	// not exist on this network.
	if tb.Target.Stats().RSTsSent == 0 {
		t.Error("victim sent no RSTs for a SYN flood")
	}
}

func TestHTTPLoadReportsMetrics(t *testing.T) {
	tb := testbed(t, core.TestbedOptions{})
	if _, err := apps.NewHTTPServer(tb.Target, apps.HTTPServerConfig{}); err != nil {
		t.Fatal(err)
	}
	res, err := measure.RunHTTPLoad(tb.Kernel, tb.Client, tb.Target, measure.HTTPLoadConfig{
		Duration: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Fetches == 0 || res.FetchesPerSec <= 0 {
		t.Fatalf("no fetches: %+v", res)
	}
	if res.ConnectMs.N() != res.Fetches || res.FirstResponseMs.N() != res.Fetches {
		t.Errorf("latency sample counts %d/%d vs fetches %d",
			res.ConnectMs.N(), res.FirstResponseMs.N(), res.Fetches)
	}
	if res.ConnectMs.Mean() <= 0 || res.FirstResponseMs.Mean() <= res.ConnectMs.Mean() {
		t.Errorf("latencies: connect=%.3f first=%.3f", res.ConnectMs.Mean(), res.FirstResponseMs.Mean())
	}
}

func TestSampleStatistics(t *testing.T) {
	var s measure.Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 || s.Mean() != 5 {
		t.Errorf("mean = %v (n=%d), want 5 (8)", s.Mean(), s.N())
	}
	if math.Abs(s.Stddev()-2) > 1e-9 {
		t.Errorf("stddev = %v, want 2", s.Stddev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

// Property: merging two samples equals adding all observations to one.
func TestSampleMergeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		var all, sa, sb measure.Sample
		for _, v := range a {
			clean := sanitize(v)
			all.Add(clean)
			sa.Add(clean)
		}
		for _, v := range b {
			clean := sanitize(v)
			all.Add(clean)
			sb.Add(clean)
		}
		sa.Merge(sb)
		return sa.N() == all.N() &&
			math.Abs(sa.Mean()-all.Mean()) < 1e-6 &&
			sa.Min() == all.Min() && sa.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	// Keep magnitudes small so float error bounds hold.
	return math.Mod(v, 1e6)
}

func TestThroughputConfigDefaults(t *testing.T) {
	res, err := measure.ZeroLossThroughput(measure.ThroughputConfig{}, 100,
		func(rate float64) (uint64, uint64, error) {
			n := uint64(rate * 2)
			return n, n, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.FrameSize != 1518 {
		t.Errorf("default frame size = %d", res.FrameSize)
	}
	if !res.LineRateLimited || res.FramesPerSec != 100 {
		t.Errorf("lossless device result = %+v", res)
	}
}

func TestZeroLossThroughputPropagatesErrors(t *testing.T) {
	wantErr := errSentinel{}
	_, err := measure.ZeroLossThroughput(measure.ThroughputConfig{}, 100,
		func(rate float64) (uint64, uint64, error) { return 0, 0, wantErr })
	if err == nil {
		t.Error("trial error swallowed")
	}
}

type errSentinel struct{}

func (errSentinel) Error() string { return "trial failed" }

func TestFragmentedFloodGeneratesTwoFramesPerPacket(t *testing.T) {
	tb := testbed(t, core.TestbedOptions{})
	f := measure.NewFlooder(tb.Attacker, tb.Target.IP(), measure.FloodConfig{
		RatePPS:      1000,
		Duration:     time.Second,
		PayloadBytes: 24,
		Fragment:     true,
		DstPort:      7,
	})
	f.Start()
	if err := tb.Kernel.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Each flood packet becomes two wire frames; the victim sees both as
	// fragments and reassembles none to a socket (port 7 closed) — but
	// reassembly *does* complete, so ICMP responses still flow for the
	// allowed flood.
	st := tb.Target.Stats()
	if st.RxFragments < 1900 {
		t.Errorf("RxFragments = %d, want ≈2000", st.RxFragments)
	}
	if st.RxReassembled < 950 {
		t.Errorf("RxReassembled = %d, want ≈1000", st.RxReassembled)
	}
}
