// Package measure implements the paper's measurement toolchain in
// simulation: an iperf-style bandwidth meter (TCP and UDP), an
// http_load-style web load driver, and the packet-flood generator used to
// test denial-of-service tolerance.
package measure

import (
	"fmt"
	"math"
)

// Sample accumulates scalar observations.
type Sample struct {
	n          int
	sum, sumsq float64
	min, max   float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumsq += v * v
}

// Merge folds other into s. Merging is associative and commutative.
func (s *Sample) Merge(other Sample) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = other
		return
	}
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n += other.n
	s.sum += other.sum
	s.sumsq += other.sumsq
}

// N returns the observation count.
func (s *Sample) N() int { return s.n }

// Mean returns the arithmetic mean (0 when empty).
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Variance returns the population variance (0 when empty).
func (s *Sample) Variance() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumsq/float64(s.n) - m*m
	if v < 0 {
		// Guard against catastrophic cancellation on near-constant data.
		v = 0
	}
	return v
}

// Stddev returns the population standard deviation (0 when empty).
func (s *Sample) Stddev() float64 {
	return math.Sqrt(s.Variance())
}

// Stderr returns the standard error of the mean, using Bessel's
// correction (sample variance). A single observation carries no spread
// information, so n < 2 returns 0.
func (s *Sample) Stderr() float64 {
	if s.n < 2 {
		return 0
	}
	// sample stddev = population stddev * sqrt(n/(n-1)); divided by
	// sqrt(n) this collapses to population stddev / sqrt(n-1).
	return s.Stddev() / math.Sqrt(float64(s.n-1))
}

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 { return s.max }

// String renders "mean±stddev (n)". With fewer than two observations
// there is no spread to report, so the ± term is omitted rather than
// rendered as a misleading ±0.00.
func (s *Sample) String() string {
	if s.n < 2 {
		return fmt.Sprintf("%.2f (n=%d)", s.Mean(), s.n)
	}
	return fmt.Sprintf("%.2f±%.2f (n=%d)", s.Mean(), s.Stddev(), s.n)
}
