// Package measure implements the paper's measurement toolchain in
// simulation: an iperf-style bandwidth meter (TCP and UDP), an
// http_load-style web load driver, and the packet-flood generator used to
// test denial-of-service tolerance.
package measure

import (
	"fmt"
	"math"
)

// Sample accumulates scalar observations.
type Sample struct {
	n          int
	sum, sumsq float64
	min, max   float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumsq += v * v
}

// Merge folds other into s. Merging is associative and commutative.
func (s *Sample) Merge(other Sample) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = other
		return
	}
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n += other.n
	s.sum += other.sum
	s.sumsq += other.sumsq
}

// N returns the observation count.
func (s *Sample) N() int { return s.n }

// Mean returns the arithmetic mean (0 when empty).
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Stddev returns the population standard deviation (0 when empty).
func (s *Sample) Stddev() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumsq/float64(s.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 { return s.max }

// String renders "mean±stddev (n)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.2f±%.2f (n=%d)", s.Mean(), s.Stddev(), s.n)
}
