package measure

import "barbican/internal/obs"

// PublishMetrics registers the flood generator's injection counter with
// the registry; its per-second rate is the offered flood rate actually
// achieved.
func (f *Flooder) PublishMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.MustRegisterFunc("flood_sent_total", "Flood packets injected by the attacker.",
		obs.KindCounter, func() float64 { return float64(f.sent) }, labels...)
	reg.MustRegisterFunc("flood_running", "Whether the flood is active (0/1).",
		obs.KindGauge, func() float64 {
			if f.running {
				return 1
			}
			return 0
		}, labels...)
}
