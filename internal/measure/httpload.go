package measure

import (
	"time"

	"barbican/internal/apps"
	"barbican/internal/sim"
	"barbican/internal/stack"
)

// HTTPLoadConfig configures a web load measurement, mirroring the paper's
// http_load invocation: "at most one connection at a time with an
// unlimited rate for 30 s".
type HTTPLoadConfig struct {
	// Duration is the measurement window; zero defaults to 30 s.
	Duration time.Duration
	// Port is the web server port; zero defaults to 80.
	Port uint16
	// Drain allows the final in-flight fetch to finish; zero defaults to
	// 250 ms.
	Drain time.Duration
}

func (c HTTPLoadConfig) withDefaults() HTTPLoadConfig {
	if c.Duration == 0 {
		c.Duration = 30 * time.Second
	}
	if c.Port == 0 {
		c.Port = 80
	}
	if c.Drain == 0 {
		c.Drain = 250 * time.Millisecond
	}
	return c
}

// HTTPLoadResult reports the three metrics http_load prints and the paper
// tabulates in Table 1.
type HTTPLoadResult struct {
	Duration      time.Duration
	Fetches       int
	Errors        int
	FetchesPerSec float64
	// ConnectMs is the TCP three-way-handshake latency distribution.
	ConnectMs Sample
	// FirstResponseMs is the request-to-first-response-byte latency
	// distribution.
	FirstResponseMs Sample
	BytesFetched    uint64
}

// RunHTTPLoad fetches / from the server sequentially on fresh
// connections for the configured window and reports throughput and
// latency. It drives the simulation kernel.
func RunHTTPLoad(k *sim.Kernel, client, server *stack.Host, cfg HTTPLoadConfig) (HTTPLoadResult, error) {
	cfg = cfg.withDefaults()
	httpc := apps.NewHTTPClient(client)
	start := k.Now()
	res := HTTPLoadResult{Duration: cfg.Duration}

	var issue func()
	issue = func() {
		if k.Now()-start >= cfg.Duration {
			return
		}
		dialAt := k.Now()
		var connectAt, requestAt time.Duration
		err := httpc.Get(server.IP(), cfg.Port,
			func() { // connected
				connectAt = k.Now()
				requestAt = connectAt
				res.ConnectMs.Add(float64(connectAt-dialAt) / float64(time.Millisecond))
			},
			func() { // first response byte
				res.FirstResponseMs.Add(float64(k.Now()-requestAt) / float64(time.Millisecond))
			},
			func(r apps.FetchResult) { // complete
				if r.Err != nil || r.Status != 200 {
					res.Errors++
				} else {
					res.Fetches++
					res.BytesFetched += uint64(r.BodyBytes)
				}
				issue()
			})
		if err != nil {
			res.Errors++
		}
	}
	issue()

	if err := k.RunUntil(start + cfg.Duration + cfg.Drain); err != nil {
		return res, err
	}
	res.FetchesPerSec = float64(res.Fetches) / cfg.Duration.Seconds()
	return res, nil
}
