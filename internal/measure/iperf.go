package measure

import (
	"fmt"
	"time"

	"barbican/internal/apps"
	"barbican/internal/obs"
	"barbican/internal/sim"
	"barbican/internal/stack"
)

// DefaultIperfPort is iperf's conventional port.
const DefaultIperfPort = 5001

// IperfConfig configures a bandwidth measurement.
type IperfConfig struct {
	// Duration is the measurement window; zero defaults to 5 s.
	Duration time.Duration
	// Port is the server port; zero defaults to DefaultIperfPort.
	Port uint16
	// PayloadBytes is the UDP payload per datagram; zero defaults to the
	// largest payload that fits one frame on the client's path (1,518-byte
	// frames, the size the paper's bandwidth experiments used).
	PayloadBytes int
	// OfferedMbps is the UDP offered load in Mbit/s of payload; zero
	// defaults to slightly above the theoretical goodput of the wire so
	// the measurement reports *available* bandwidth.
	OfferedMbps float64
	// Drain is extra settle time after the send window before reading
	// counters; zero defaults to 50 ms.
	Drain time.Duration
	// Metrics, when non-nil, publishes the measurement's live counters
	// (bytes received, datagrams sent) so a flight recorder can turn the
	// endpoint scalar into a time-resolved goodput series.
	Metrics *obs.Registry
}

func (c IperfConfig) withDefaults() IperfConfig {
	if c.Duration == 0 {
		c.Duration = 5 * time.Second
	}
	if c.Port == 0 {
		c.Port = DefaultIperfPort
	}
	if c.Drain == 0 {
		c.Drain = 50 * time.Millisecond
	}
	return c
}

// IperfResult reports a bandwidth measurement. Mbps counts payload
// goodput, the quantity iperf prints.
type IperfResult struct {
	Protocol          string
	Duration          time.Duration
	BytesReceived     uint64
	Mbps              float64
	DatagramsSent     uint64
	DatagramsReceived uint64
	LossFraction      float64
}

// String renders the result like iperf's summary line.
func (r IperfResult) String() string {
	if r.Protocol == "udp" {
		return fmt.Sprintf("[%s] %v  %d bytes  %.1f Mbits/sec  %d/%d (%.1f%% loss)",
			r.Protocol, r.Duration, r.BytesReceived, r.Mbps,
			r.DatagramsSent-r.DatagramsReceived, r.DatagramsSent, 100*r.LossFraction)
	}
	return fmt.Sprintf("[%s] %v  %d bytes  %.1f Mbits/sec", r.Protocol, r.Duration, r.BytesReceived, r.Mbps)
}

// RunUDPIperf measures available UDP bandwidth from client to server by
// offering a near-wire-rate datagram stream and counting what survives
// the path. It drives the simulation kernel for the measurement window.
func RunUDPIperf(k *sim.Kernel, client, server *stack.Host, cfg IperfConfig) (IperfResult, error) {
	cfg = cfg.withDefaults()
	if cfg.PayloadBytes == 0 {
		cfg.PayloadBytes = client.MaxUDPPayload()
	}
	if cfg.OfferedMbps == 0 {
		// Offer a touch above what the wire can carry so the path, not
		// the sender, is the bottleneck.
		cfg.OfferedMbps = 99
	}

	sink, err := apps.NewUDPSink(server, cfg.Port)
	if err != nil {
		return IperfResult{}, err
	}
	defer sink.Close()
	sock, err := client.BindUDP(0)
	if err != nil {
		return IperfResult{}, err
	}
	defer sock.Close()

	interval := time.Duration(float64(cfg.PayloadBytes*8) / (cfg.OfferedMbps * 1e6) * float64(time.Second))
	if interval <= 0 {
		interval = time.Microsecond
	}
	payload := make([]byte, cfg.PayloadBytes)
	start := k.Now()
	var sent uint64
	if cfg.Metrics != nil {
		cfg.Metrics.MustRegisterFunc("iperf_rx_bytes_total",
			"Payload bytes received by the iperf sink; its per-second rate is instantaneous goodput.",
			obs.KindCounter, func() float64 { _, b := sink.Received(); return float64(b) },
			obs.L("proto", "udp"))
		cfg.Metrics.MustRegisterFunc("iperf_rx_datagrams_total",
			"Datagrams received by the iperf sink.",
			obs.KindCounter, func() float64 { d, _ := sink.Received(); return float64(d) },
			obs.L("proto", "udp"))
		cfg.Metrics.MustRegisterFunc("iperf_tx_datagrams_total",
			"Datagrams offered by the iperf sender.",
			obs.KindCounter, func() float64 { return float64(sent) },
			obs.L("proto", "udp"))
	}
	var send func(any)
	send = func(any) {
		if k.Now()-start >= cfg.Duration {
			return
		}
		sent++
		sock.SendTo(server.IP(), cfg.Port, payload)
		// Deterministic ±5% jitter avoids phase-locking with other
		// periodic senders sharing the path.
		k.AfterCall(time.Duration(float64(interval)*(0.95+0.1*k.Rand().Float64())), send, nil)
	}
	send(nil)

	if err := k.RunUntil(start + cfg.Duration + cfg.Drain); err != nil {
		return IperfResult{}, err
	}
	datagrams, bytes := sink.Received()
	res := IperfResult{
		Protocol:          "udp",
		Duration:          cfg.Duration,
		BytesReceived:     bytes,
		Mbps:              float64(bytes) * 8 / cfg.Duration.Seconds() / 1e6,
		DatagramsSent:     sent,
		DatagramsReceived: datagrams,
	}
	if sent > 0 {
		res.LossFraction = 1 - float64(datagrams)/float64(sent)
	}
	return res, nil
}

// RunTCPIperf measures TCP goodput from client to server. It drives the
// simulation kernel for the measurement window.
func RunTCPIperf(k *sim.Kernel, client, server *stack.Host, cfg IperfConfig) (IperfResult, error) {
	cfg = cfg.withDefaults()

	var received uint64
	listener, err := server.ListenTCP(cfg.Port, func(c *stack.Conn) {
		c.OnData = func(p []byte) { received += uint64(len(p)) }
	})
	if err != nil {
		return IperfResult{}, err
	}
	defer listener.Close()
	if cfg.Metrics != nil {
		cfg.Metrics.MustRegisterFunc("iperf_rx_bytes_total",
			"Payload bytes received by the iperf sink; its per-second rate is instantaneous goodput.",
			obs.KindCounter, func() float64 { return float64(received) },
			obs.L("proto", "tcp"))
	}

	conn, err := client.DialTCP(server.IP(), cfg.Port)
	if err != nil {
		return IperfResult{}, err
	}
	start := k.Now()
	const chunk = 64 << 10
	chunkBuf := make([]byte, chunk) // Write copies into the conn buffer, so one chunk is reusable
	fill := func() {
		for conn.Buffered() < 2*chunk && k.Now()-start < cfg.Duration {
			if err := conn.Write(chunkBuf); err != nil {
				return
			}
		}
	}
	conn.OnConnect = fill
	conn.OnAcked = func(int) { fill() }

	if err := k.RunUntil(start + cfg.Duration + cfg.Drain); err != nil {
		return IperfResult{}, err
	}
	conn.Abort()
	return IperfResult{
		Protocol:      "tcp",
		Duration:      cfg.Duration,
		BytesReceived: received,
		Mbps:          float64(received) * 8 / cfg.Duration.Seconds() / 1e6,
	}, nil
}
