// Package faults is the deterministic fault-injection layer: seeded,
// virtual-time fault plans applied to link endpoints through the
// link.FaultInjector hook.
//
// A Plan is pure data — probabilities and scheduled windows — and an
// Injector is a Plan bound to an explicitly seeded *rand.Rand. Every
// random decision comes from that private generator, never from the
// global source or wall clock, so a (plan, seed, traffic) triple
// yields byte-identical behavior on every run and at any -parallel
// setting: the experiment runner gives each point its own kernel and
// its own injectors, and nothing here escapes the simulation
// goroutine.
//
// Plans compose loss, corruption, duplication, reordering, and
// scheduled down windows; ParsePlan/String round-trip the CLI spec
// format used by the -faults flag:
//
//	loss=0.1,corrupt=0.01,dup=0.02,reorder=0.05,reorder-delay=1ms,down=1s-2s
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"barbican/internal/link"
	"barbican/internal/obs/tracing"
	"barbican/internal/packet"
)

// DefaultReorderDelay is the extra-delay bound applied to reordered
// frames when the plan does not set one.
const DefaultReorderDelay = 2 * time.Millisecond

// duplicateGap is the fixed extra delay of a duplicated frame's second
// copy, enough to land it behind the original.
const duplicateGap = time.Microsecond

// Window is a half-open [From, To) interval of virtual time during
// which the link is down: every frame sent inside it is lost.
type Window struct {
	From, To time.Duration
}

func (w Window) contains(t time.Duration) bool { return t >= w.From && t < w.To }

// Plan describes what a fault injector does. The zero Plan injects
// nothing. Probabilities are per-frame in [0, 1] and independent.
type Plan struct {
	Loss      float64 // probabilistic frame loss
	Corrupt   float64 // single-bit payload corruption
	Duplicate float64 // frame delivered twice
	Reorder   float64 // frame delayed by up to ReorderDelay

	// ReorderDelay bounds the extra delay of reordered frames; zero
	// means DefaultReorderDelay.
	ReorderDelay time.Duration

	// Down lists scheduled link-down windows (partitions when applied
	// to a host's access link).
	Down []Window
}

// Active reports whether the plan injects any fault at all.
func (p Plan) Active() bool {
	return p.Loss > 0 || p.Corrupt > 0 || p.Duplicate > 0 || p.Reorder > 0 || len(p.Down) > 0
}

// String renders the plan in canonical ParsePlan syntax: fields in
// fixed order, zero fields omitted, down windows sorted by start.
func (p Plan) String() string {
	var parts []string
	add := func(key string, v float64) {
		if v > 0 {
			parts = append(parts, key+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	add("loss", p.Loss)
	add("corrupt", p.Corrupt)
	add("dup", p.Duplicate)
	add("reorder", p.Reorder)
	if p.Reorder > 0 && p.ReorderDelay > 0 {
		parts = append(parts, "reorder-delay="+p.ReorderDelay.String())
	}
	wins := append([]Window(nil), p.Down...)
	sort.Slice(wins, func(i, j int) bool {
		if wins[i].From != wins[j].From {
			return wins[i].From < wins[j].From
		}
		return wins[i].To < wins[j].To
	})
	for _, w := range wins {
		parts = append(parts, fmt.Sprintf("down=%s-%s", w.From, w.To))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses the -faults CLI spec: comma-separated key=value
// pairs. Keys: loss, corrupt, dup, reorder (probabilities in [0,1]),
// reorder-delay (duration), down (FROM-TO duration window,
// repeatable). "none" and the empty string parse to the zero Plan.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Plan{}, fmt.Errorf("faults: %q is not key=value", field)
		}
		switch key {
		case "loss", "corrupt", "dup", "reorder":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return Plan{}, fmt.Errorf("faults: %s wants a probability in [0,1], got %q", key, val)
			}
			switch key {
			case "loss":
				p.Loss = f
			case "corrupt":
				p.Corrupt = f
			case "dup":
				p.Duplicate = f
			case "reorder":
				p.Reorder = f
			}
		case "reorder-delay":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return Plan{}, fmt.Errorf("faults: reorder-delay wants a positive duration, got %q", val)
			}
			p.ReorderDelay = d
		case "down":
			from, to, ok := strings.Cut(val, "-")
			if !ok {
				return Plan{}, fmt.Errorf("faults: down wants FROM-TO, got %q", val)
			}
			wf, errF := time.ParseDuration(from)
			wt, errT := time.ParseDuration(to)
			if errF != nil || errT != nil || wf < 0 || wt <= wf {
				return Plan{}, fmt.Errorf("faults: bad down window %q", val)
			}
			p.Down = append(p.Down, Window{From: wf, To: wt})
		default:
			return Plan{}, fmt.Errorf("faults: unknown key %q (want loss, corrupt, dup, reorder, reorder-delay, down)", key)
		}
	}
	return p, nil
}

// Injector applies a Plan to one link direction. It implements
// link.FaultInjector. All randomness comes from its private seeded
// generator; an Injector must only be used from the simulation
// goroutine of the kernel whose traffic it sees.
type Injector struct {
	plan Plan
	rng  *rand.Rand

	// Decision counts, by effect.
	lost, corrupted, duplicated, reordered uint64
}

// NewInjector binds a plan to a fresh generator seeded with seed.
func NewInjector(plan Plan, seed int64) *Injector {
	return &Injector{plan: plan, rng: rand.New(rand.NewSource(seed))}
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Counts reports how many frames each effect was applied to.
func (in *Injector) Counts() (lost, corrupted, duplicated, reordered uint64) {
	return in.lost, in.corrupted, in.duplicated, in.reordered
}

// Apply decides the fate of one accepted frame. Down windows are
// checked first (no randomness spent), then loss, corruption,
// reordering, and duplication each draw once in that fixed order, so
// the decision stream is a pure function of (seed, frame sequence).
func (in *Injector) Apply(f *packet.Frame, now time.Duration) link.FaultOutcome {
	for _, w := range in.plan.Down {
		if w.contains(now) {
			in.lost++
			return link.FaultOutcome{Lost: true, Reason: tracing.DropLinkDown}
		}
	}
	if in.plan.Loss > 0 && in.rng.Float64() < in.plan.Loss {
		in.lost++
		return link.FaultOutcome{Lost: true, Reason: tracing.DropFaultLoss}
	}

	var out link.FaultOutcome
	deliver := f
	if in.plan.Corrupt > 0 && in.rng.Float64() < in.plan.Corrupt && len(f.Payload) > 0 {
		c := f.Clone()
		bit := in.rng.Intn(len(c.Payload) * 8)
		c.Payload[bit/8] ^= 1 << (bit % 8)
		deliver = c
		out.Corrupted = true
		in.corrupted++
	}
	var extra time.Duration
	if in.plan.Reorder > 0 && in.rng.Float64() < in.plan.Reorder {
		bound := in.plan.ReorderDelay
		if bound <= 0 {
			bound = DefaultReorderDelay
		}
		extra = time.Duration(1 + in.rng.Int63n(int64(bound)))
		out.Reordered = true
		in.reordered++
	}
	dup := in.plan.Duplicate > 0 && in.rng.Float64() < in.plan.Duplicate
	if dup {
		out.Duplicated = true
		in.duplicated++
	}
	if !out.Corrupted && !out.Reordered && !dup {
		return link.FaultOutcome{} // pass through, no allocation
	}
	out.Deliveries = append(out.Deliveries, link.FaultDelivery{Frame: deliver, ExtraDelay: extra})
	if dup {
		out.Deliveries = append(out.Deliveries, link.FaultDelivery{
			Frame: deliver.Clone(), ExtraDelay: extra + duplicateGap,
		})
	}
	return out
}

// Attach binds the plan to both directions of e's link with derived
// seeds (seed for e's transmit side, seed+1 for the peer's), returning
// the two injectors. This is the usual way to make a host's access
// link — e.g. the policy server's management channel — lossy in both
// directions.
func Attach(e *link.Endpoint, plan Plan, seed int64) (tx, rx *Injector) {
	tx = NewInjector(plan, seed)
	rx = NewInjector(plan, seed+1)
	e.SetFaults(tx)
	e.Peer().SetFaults(rx)
	return tx, rx
}
