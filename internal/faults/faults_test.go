package faults

import (
	"bytes"
	"testing"
	"time"

	"barbican/internal/link"
	"barbican/internal/packet"
	"barbican/internal/sim"
)

func frame(dst, src byte, payload int) *packet.Frame {
	return &packet.Frame{
		Dst:     packet.MAC{2, 0, 0, 0, 0, dst},
		Src:     packet.MAC{2, 0, 0, 0, 0, src},
		Type:    packet.EtherTypeIPv4,
		Payload: make([]byte, payload),
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	cases := []string{
		"none",
		"loss=0.1",
		"loss=0.1,corrupt=0.01,dup=0.02,reorder=0.05,reorder-delay=1ms",
		"loss=0.25,down=1s-2s,down=3s-3.5s",
		"corrupt=1",
	}
	for _, spec := range cases {
		p, err := ParsePlan(spec)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", spec, err)
		}
		p2, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("ParsePlan(String(%q)=%q): %v", spec, p.String(), err)
		}
		if p.String() != p2.String() {
			t.Errorf("round trip %q: %q != %q", spec, p.String(), p2.String())
		}
	}
}

func TestParsePlanRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"loss",            // not key=value
		"loss=1.5",        // out of range
		"loss=-0.1",       // out of range
		"bogus=1",         // unknown key
		"down=2s",         // no window
		"down=2s-1s",      // inverted window
		"reorder-delay=0", // non-positive
		"reorder-delay=x", // unparsable
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted, want error", spec)
		}
	}
}

// TestInjectorDeterminism: identical (plan, seed, traffic) triples
// must produce identical decision streams and stats.
func TestInjectorDeterminism(t *testing.T) {
	plan, err := ParsePlan("loss=0.2,corrupt=0.1,dup=0.1,reorder=0.2,reorder-delay=500us")
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]time.Duration, []byte, link.Stats) {
		k := sim.NewKernel()
		a, b := link.New(k, link.Config{})
		a.SetFaults(NewInjector(plan, 42))
		var arrivals []time.Duration
		var payloads []byte
		b.Attach(func(f *packet.Frame) {
			arrivals = append(arrivals, k.Now())
			payloads = append(payloads, f.Payload...)
		})
		for i := 0; i < 200; i++ {
			f := frame(1, 2, 64)
			f.Payload[0] = byte(i)
			k.AtCall(time.Duration(i)*100*time.Microsecond, func(x any) {
				a.Send(x.(*packet.Frame))
			}, f)
		}
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return arrivals, payloads, a.Stats()
	}
	ar1, pl1, st1 := run()
	ar2, pl2, st2 := run()
	if len(ar1) != len(ar2) || st1 != st2 || !bytes.Equal(pl1, pl2) {
		t.Fatalf("same seed diverged: %d vs %d arrivals, stats %+v vs %+v", len(ar1), len(ar2), st1, st2)
	}
	for i := range ar1 {
		if ar1[i] != ar2[i] {
			t.Fatalf("arrival %d: %v vs %v", i, ar1[i], ar2[i])
		}
	}
	if st1.FaultLost == 0 || st1.FaultCorrupted == 0 || st1.FaultDuplicated == 0 || st1.FaultReordered == 0 {
		t.Errorf("expected every fault class to fire over 200 frames, got %+v", st1)
	}
	if got := uint64(len(ar1)); got != st1.SentFrames-st1.FaultLost+st1.FaultDuplicated {
		t.Errorf("deliveries %d, want sent-lost+dup = %d", got, st1.SentFrames-st1.FaultLost+st1.FaultDuplicated)
	}
}

func TestDownWindowLosesEverything(t *testing.T) {
	plan := Plan{Down: []Window{{From: time.Millisecond, To: 2 * time.Millisecond}}}
	k := sim.NewKernel()
	a, b := link.New(k, link.Config{})
	a.SetFaults(NewInjector(plan, 1))
	var got int
	b.Attach(func(*packet.Frame) { got++ })
	// One frame before, three inside, one after the window.
	for i, at := range []time.Duration{0, 1100 * time.Microsecond, 1500 * time.Microsecond,
		1900 * time.Microsecond, 2500 * time.Microsecond} {
		f := frame(1, 2, 64)
		_ = i
		k.AtCall(at, func(x any) { a.Send(x.(*packet.Frame)) }, f)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 2 {
		t.Fatalf("delivered %d frames, want 2 (outside the down window)", got)
	}
	if st := a.Stats(); st.FaultLost != 3 {
		t.Fatalf("FaultLost = %d, want 3", st.FaultLost)
	}
}

func TestCorruptionFlipsExactlyOneBit(t *testing.T) {
	plan := Plan{Corrupt: 1}
	k := sim.NewKernel()
	a, b := link.New(k, link.Config{})
	a.SetFaults(NewInjector(plan, 7))
	orig := frame(1, 2, 128)
	for i := range orig.Payload {
		orig.Payload[i] = byte(i)
	}
	var got *packet.Frame
	b.Attach(func(f *packet.Frame) { got = f })
	a.Send(orig)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got == nil {
		t.Fatal("frame not delivered")
	}
	if got == orig {
		t.Fatal("corrupted frame aliases the original")
	}
	diffBits := 0
	for i := range got.Payload {
		x := got.Payload[i] ^ orig.Payload[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diffBits)
	}
}

// TestDuplicateQueueAccounting floods a duplicating link hard enough
// to cycle the transmit queue and checks it never wedges: every
// accepted frame's slot is released, so the queue drains to zero.
func TestDuplicateQueueAccounting(t *testing.T) {
	plan := Plan{Duplicate: 0.5, Loss: 0.2}
	k := sim.NewKernel()
	a, b := link.New(k, link.Config{QueueFrames: 4})
	a.SetFaults(NewInjector(plan, 99))
	var got int
	b.Attach(func(*packet.Frame) { got++ })
	sent := 0
	for i := 0; i < 400; i++ {
		k.AtCall(time.Duration(i)*50*time.Microsecond, func(x any) {
			if a.Send(x.(*packet.Frame)) {
				sent++
			}
		}, frame(1, 2, 200))
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := a.Stats()
	if uint64(sent) != st.SentFrames {
		t.Fatalf("sent %d, stats say %d", sent, st.SentFrames)
	}
	if want := st.SentFrames - st.FaultLost + st.FaultDuplicated; uint64(got) != want {
		t.Fatalf("delivered %d, want %d", got, want)
	}
	// The queue must be fully drained: more sends still succeed.
	ok := false
	k.AtCall(k.Now()+time.Millisecond, func(any) { ok = a.Send(frame(1, 2, 64)) }, nil)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ok {
		t.Fatal("queue wedged after fault churn: Send failed on idle link")
	}
}

func TestAttachCoversBothDirections(t *testing.T) {
	plan := Plan{Loss: 1}
	k := sim.NewKernel()
	a, b := link.New(k, link.Config{})
	Attach(a, plan, 5)
	var got int
	a.Attach(func(*packet.Frame) { got++ })
	b.Attach(func(*packet.Frame) { got++ })
	a.Send(frame(1, 2, 64))
	b.Send(frame(2, 1, 64))
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 0 {
		t.Fatalf("delivered %d frames across a fully lossy link, want 0", got)
	}
	if a.Stats().FaultLost != 1 || b.Stats().FaultLost != 1 {
		t.Fatalf("FaultLost a=%d b=%d, want 1 and 1", a.Stats().FaultLost, b.Stats().FaultLost)
	}
}
