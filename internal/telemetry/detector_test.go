package telemetry

import (
	"testing"
	"time"
)

// feed synthesizes a report series: drop-counter deltas per 100 ms
// sample, fed through the detector with arrival = sent time.
func feed(d *Detector, deltas []uint64) {
	var total uint64
	at := time.Duration(0)
	for i, delta := range deltas {
		total += delta
		at = time.Duration(i+1) * 100 * time.Millisecond
		d.Observe(at, &Report{Device: "t", Seq: uint32(i + 1), SentAt: at, RxDrops: dropsOf(total)})
	}
}

func dropsOf(total uint64) (a [len(Report{}.RxDrops)]uint64) {
	a[0] = total
	return
}

// TestDetectorFloodOnset: a quiet baseline then a sustained burst must
// walk Healthy → Suspect → Alerting, and the alert timestamp must be
// the second hot sample's arrival time.
func TestDetectorFloodOnset(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	// Ten quiet samples (~50 drops/s), then a flood (~5000 drops/s).
	series := make([]uint64, 0, 16)
	for i := 0; i < 10; i++ {
		series = append(series, 5)
	}
	for i := 0; i < 4; i++ {
		series = append(series, 500)
	}
	feed(d, series)

	if d.State() != AlertAlerting {
		t.Fatalf("state = %v after sustained burst, want alerting", d.State())
	}
	if d.Alerts() != 1 {
		t.Fatalf("alerts = %d, want 1", d.Alerts())
	}
	tl := d.Transitions()
	if len(tl) != 2 || tl[0].To != AlertSuspect || tl[1].To != AlertAlerting {
		t.Fatalf("timeline = %+v, want suspect then alerting", tl)
	}
	// Sample 1 (100 ms) primes; samples through 1000 ms are quiet; the
	// 1100 ms sample is the first hot one (suspect), 1200 ms the second
	// (alerting).
	if want := 1200 * time.Millisecond; tl[1].At != want {
		t.Fatalf("alert at %v, want %v (RiseCount=2 × 100 ms cadence)", tl[1].At, want)
	}
}

// TestDetectorSingleSpikeClears: one hot sample must reach Suspect but
// never Alerting, and a calm follow-up returns to Healthy — the
// RiseCount hysteresis that keeps benign bursts from paging.
func TestDetectorSingleSpikeClears(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	feed(d, []uint64{5, 5, 5, 5, 500, 5, 5})
	if d.Alerts() != 0 {
		t.Fatalf("alerts = %d after a single-sample spike, want 0", d.Alerts())
	}
	if d.State() != AlertHealthy {
		t.Fatalf("state = %v, want healthy after spike cleared", d.State())
	}
}

// TestDetectorRecovery: after a flood stops, the detector must pass
// through Recovering and only declare Healthy after FallCount calm
// samples; a re-burst mid-recovery snaps back to Alerting.
func TestDetectorRecovery(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	feed(d, []uint64{5, 5, 5, 5, 500, 500, 500, 5, 5})
	if d.State() != AlertRecovering {
		t.Fatalf("state = %v two calm samples after flood end, want recovering", d.State())
	}
	feed2 := []uint64{5}
	var total uint64 = 5*6 + 500*3
	at := 1000 * time.Millisecond
	for i, delta := range feed2 {
		total += delta
		at += 100 * time.Millisecond
		_ = i
		d.Observe(at, &Report{Device: "t", Seq: 10, SentAt: at, RxDrops: dropsOf(total)})
	}
	if d.State() != AlertHealthy {
		t.Fatalf("state = %v after FallCount calm samples, want healthy", d.State())
	}

	// Re-burst during recovery must return to Alerting without a new
	// Suspect detour.
	d2 := NewDetector(DetectorConfig{})
	feed(d2, []uint64{5, 5, 5, 5, 500, 500, 500, 5, 500})
	if d2.State() != AlertAlerting {
		t.Fatalf("state = %v after re-burst mid-recovery, want alerting", d2.State())
	}
	if d2.Alerts() != 2 {
		t.Fatalf("alerts = %d, want 2 (initial + re-burst)", d2.Alerts())
	}
}

// TestDetectorBacklogSignal: a report whose backlog crosses the floor
// is hot even with zero drops — the admitted-but-overwhelmed case.
func TestDetectorBacklogSignal(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	base := &Report{Device: "t", SentAt: 100 * time.Millisecond}
	d.Observe(100*time.Millisecond, base)
	for i := 2; i <= 3; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		d.Observe(at, &Report{Device: "t", Seq: uint32(i), SentAt: at, Backlog: time.Millisecond})
	}
	if d.State() != AlertAlerting {
		t.Fatalf("state = %v on sustained backlog with zero drops, want alerting", d.State())
	}
}

// TestDetectorGuards: duplicate timestamps and counter resets must
// re-prime or no-op, never produce a transition from a negative or
// infinite rate.
func TestDetectorGuards(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	r := &Report{Device: "t", Seq: 1, SentAt: 100 * time.Millisecond, RxDrops: dropsOf(1000)}
	d.Observe(100*time.Millisecond, r)
	// Same SentAt (duplicated datagram): ignored.
	if _, changed := d.Observe(101*time.Millisecond, r); changed {
		t.Fatal("duplicate report changed state")
	}
	// Counter reset (card reboot): re-prime, no judgement.
	reset := &Report{Device: "t", Seq: 2, SentAt: 200 * time.Millisecond, RxDrops: dropsOf(0)}
	if _, changed := d.Observe(200*time.Millisecond, reset); changed {
		t.Fatal("counter reset changed state")
	}
	if d.State() != AlertHealthy || len(d.Transitions()) != 0 {
		t.Fatalf("state = %v with %d transitions after guard cases, want pristine healthy",
			d.State(), len(d.Transitions()))
	}
}

// TestAlertStateStrings pins the rendered names golden tests depend on.
func TestAlertStateStrings(t *testing.T) {
	want := map[AlertState]string{
		AlertHealthy:    "healthy",
		AlertSuspect:    "suspect",
		AlertAlerting:   "alerting",
		AlertRecovering: "recovering",
		NumAlertStates:  "alert?",
	}
	for s, name := range want {
		if got := s.String(); got != name {
			t.Errorf("AlertState(%d).String() = %q, want %q", s, got, name)
		}
	}
}
