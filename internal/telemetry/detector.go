package telemetry

import "time"

// AlertState is the per-device flood-detection state machine driven by
// the collector's detector. Transitions are recorded in virtual time;
// the flood-start → AlertAlerting interval is the plane's headline
// time-to-detect metric.
type AlertState uint8

const (
	// AlertHealthy: signal tracks the EWMA baseline; the detector keeps
	// learning what "normal" looks like.
	AlertHealthy AlertState = iota
	// AlertSuspect: one hot sample seen; baseline learning is frozen so
	// an onset can't raise its own threshold. Needs RiseCount
	// consecutive hot samples to alert, one calm sample to clear.
	AlertSuspect
	// AlertAlerting: sustained anomaly. Entry timestamp is the
	// detection instant.
	AlertAlerting
	// AlertRecovering: signal back under the clear threshold; needs
	// FallCount consecutive calm samples before declaring healthy —
	// hysteresis against flapping on a sputtering flood.
	AlertRecovering

	NumAlertStates // array-sizing sentinel, not a state
)

// alertStateNames is keyed by constant so the exhaustive analyzer
// flags any AlertState added without a name.
var alertStateNames = [NumAlertStates]string{
	AlertHealthy:    "healthy",
	AlertSuspect:    "suspect",
	AlertAlerting:   "alerting",
	AlertRecovering: "recovering",
}

func (s AlertState) String() string {
	if int(s) < len(alertStateNames) {
		return alertStateNames[s]
	}
	return "alert?"
}

// DetectorConfig tunes the flood-onset detector. Zero values select
// the defaults noted per field; the defaults are part of the
// determinism contract (changing them changes every golden timeline).
type DetectorConfig struct {
	// Alpha is the EWMA smoothing factor for the drop-rate baseline
	// (default 0.2). Higher adapts faster but lets a slow-ramping
	// flood teach the detector that flooding is normal.
	Alpha float64
	// RiseFactor: a sample is hot when its drop rate exceeds
	// RiseFactor × baseline (default 4).
	RiseFactor float64
	// AbsFloorPPS keeps the rise threshold meaningful when the
	// baseline is near zero — below this rate (default 200 drops/s)
	// nothing is ever hot, so counter noise on an idle card can't
	// alert.
	AbsFloorPPS float64
	// BacklogFloor: a reported processor backlog at or above this
	// (default 500µs, half the card's 1 ms exhaustion threshold) makes
	// the sample hot regardless of drop rate — catches floods the
	// policy admits but the CPU can't keep up with.
	BacklogFloor time.Duration
	// RiseCount consecutive hot samples promote Suspect → Alerting
	// (default 2).
	RiseCount int
	// FallCount consecutive calm samples demote Recovering → Healthy
	// (default 3).
	FallCount int
	// ClearFrac: a sample is calm when its drop rate is at or below
	// ClearFrac × the rise threshold (default 0.5). The gap between
	// hot and calm is the hysteresis band.
	ClearFrac float64
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Alpha == 0 {
		c.Alpha = 0.2
	}
	if c.RiseFactor == 0 {
		c.RiseFactor = 4
	}
	if c.AbsFloorPPS == 0 {
		c.AbsFloorPPS = 200
	}
	if c.BacklogFloor == 0 {
		c.BacklogFloor = 500 * time.Microsecond
	}
	if c.RiseCount == 0 {
		c.RiseCount = 2
	}
	if c.FallCount == 0 {
		c.FallCount = 3
	}
	if c.ClearFrac == 0 {
		c.ClearFrac = 0.5
	}
	return c
}

// Transition is one alert-state change, timestamped with the
// collector's virtual arrival time of the report that caused it.
type Transition struct {
	At       time.Duration
	From, To AlertState
	// Signal is the drop rate (drops/s of sender time) that drove the
	// change; Baseline the frozen EWMA it was judged against.
	Signal   float64
	Baseline float64
}

// Detector turns a device's report series into alert-state
// transitions. It is purely deterministic — stronger than seeded:
// rates derive from sender-side SentAt deltas, judgement timestamps
// from collector arrival time, and no randomness enters anywhere. The
// same report sequence always yields byte-identical timelines.
type Detector struct {
	cfg DetectorConfig

	primed     bool
	lastSentAt time.Duration
	lastDrops  uint64

	baseline  float64
	state     AlertState
	hotStreak int
	cool      int

	transitions []Transition
	alerts      int
}

// NewDetector builds a detector with cfg's zero fields defaulted.
func NewDetector(cfg DetectorConfig) *Detector {
	return &Detector{cfg: cfg.withDefaults()}
}

// State returns the current alert state.
func (d *Detector) State() AlertState { return d.state }

// Alerts returns how many times the detector has entered
// AlertAlerting.
func (d *Detector) Alerts() int { return d.alerts }

// Baseline returns the current EWMA drop-rate baseline (drops/s).
func (d *Detector) Baseline() float64 { return d.baseline }

// Transitions returns the recorded state changes in order.
func (d *Detector) Transitions() []Transition { return d.transitions }

// ObserveSilence feeds the absence of a report: the collector's
// staleness watchdog calls it when a device that used to report has
// gone quiet past the silence threshold. Silence is judged as a hot
// sample (Signal recorded as -1) — a card that stops talking during
// its own flood is exactly the EFW lockup case, where the victim is
// mute precisely because it is dying.
func (d *Detector) ObserveSilence(at time.Duration) (AlertState, bool) {
	if !d.primed {
		return d.state, false
	}
	return d.judge(at, -1, true, false)
}

// Observe feeds one report, judged at collector virtual time `at`, and
// returns the (possibly new) state plus whether it changed. Reports
// are differentiated against the previous one from the same device, so
// the first report only primes; reordered or reset counter series
// re-prime rather than producing negative rates.
func (d *Detector) Observe(at time.Duration, r *Report) (AlertState, bool) {
	drops := r.RxDropTotal()
	if !d.primed {
		d.primed = true
		d.lastSentAt, d.lastDrops = r.SentAt, drops
		return d.state, false
	}
	dt := r.SentAt - d.lastSentAt
	if dt <= 0 {
		// Duplicate or reordered report; no new interval to judge.
		return d.state, false
	}
	if drops < d.lastDrops {
		// Counter went backwards (card reset); re-prime the series.
		d.lastSentAt, d.lastDrops = r.SentAt, drops
		return d.state, false
	}
	rate := float64(drops-d.lastDrops) / dt.Seconds()
	d.lastSentAt, d.lastDrops = r.SentAt, drops

	riseThresh := d.cfg.RiseFactor * d.baseline
	if riseThresh < d.cfg.AbsFloorPPS {
		riseThresh = d.cfg.AbsFloorPPS
	}
	hot := rate > riseThresh || r.Backlog >= d.cfg.BacklogFloor
	calm := rate <= d.cfg.ClearFrac*riseThresh && r.Backlog < d.cfg.BacklogFloor
	return d.judge(at, rate, hot, calm)
}

// judge advances the state machine for one sample.
func (d *Detector) judge(at time.Duration, rate float64, hot, calm bool) (AlertState, bool) {
	from := d.state
	switch d.state {
	case AlertHealthy:
		if hot {
			d.state = AlertSuspect
			d.hotStreak = 1
		} else {
			// Baseline learns only while healthy: a flood must not
			// drag its own threshold up (Suspect onward freezes it).
			d.baseline += d.cfg.Alpha * (rate - d.baseline)
		}
	case AlertSuspect:
		switch {
		case hot:
			d.hotStreak++
			if d.hotStreak >= d.cfg.RiseCount {
				d.state = AlertAlerting
				d.alerts++
			}
		case calm:
			d.state = AlertHealthy
			d.baseline += d.cfg.Alpha * (rate - d.baseline)
		}
	case AlertAlerting:
		if calm {
			d.state = AlertRecovering
			d.cool = 1
		}
	case AlertRecovering:
		switch {
		case hot:
			d.state = AlertAlerting
			d.alerts++
			d.cool = 0
		case calm:
			d.cool++
			if d.cool >= d.cfg.FallCount {
				d.state = AlertHealthy
			}
		}
	case NumAlertStates:
		// Sentinel, unreachable; listed for the exhaustive analyzer.
	}

	changed := d.state != from
	if changed {
		d.transitions = append(d.transitions, Transition{
			At: at, From: from, To: d.state, Signal: rate, Baseline: d.baseline,
		})
	}
	return d.state, changed
}
