package telemetry

import (
	"testing"

	"barbican/internal/fw"
	"barbican/internal/link"
	"barbican/internal/nic"
	"barbican/internal/obs"
	"barbican/internal/packet"
	"barbican/internal/sim"
	"barbican/internal/stack"
)

// benchHost builds an EFW-protected host with a telemetry agent
// attached, plus the far endpoint of its link for injecting ingress
// frames. The rule set admits UDP/2000 in (the bench traffic) and UDP
// out (the agent's reports); everything else is denied, so the card
// walks real policy on both paths.
func benchHost(b *testing.B) (*sim.Kernel, *link.Endpoint, *nic.NIC, *Agent) {
	b.Helper()
	k := sim.NewKernel()
	ea, eb := link.New(k, link.Config{QueueFrames: 1 << 16})
	ea.Attach(func(*packet.Frame) {})
	card := nic.New(k, packet.MAC{0x02, 0, 0, 0, 0, 2}, nic.EFW(), eb)
	card.InstallRuleSet(fw.MustRuleSet(fw.Deny,
		fw.Rule{Action: fw.Allow, Direction: fw.In, Proto: packet.ProtoUDP, DstPorts: fw.Port(2000)},
		fw.Rule{Action: fw.Allow, Direction: fw.Out, Proto: packet.ProtoUDP},
	))
	host, err := stack.NewHost(k, stack.Config{
		Name: "bench",
		IP:   packet.MustIP("10.0.0.2"),
		NIC:  card,
		Resolve: func(packet.IP) (packet.MAC, bool) {
			return packet.MAC{0x02, 0, 0, 0, 0, 1}, true
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	agent, err := NewAgent(host, AgentConfig{
		Device:    "bench",
		Collector: packet.MustIP("10.0.0.10"),
	})
	if err != nil {
		b.Fatal(err)
	}
	// The bench sinks ingress frames itself; no sockets receive.
	card.SetDeliver(func(*packet.Frame) {})
	return k, ea, card, agent
}

// BenchmarkTelemetrySnapshotEncode measures the agent's steady-state
// report build: snapshot every card counter and wire-encode into the
// reused scratch buffer. This is the part that runs on every tick
// regardless of network outcome, and it must stay at 0 allocs/op (the
// bench gate admits no tolerance on allocs).
func BenchmarkTelemetrySnapshotEncode(b *testing.B) {
	_, _, _, agent := benchHost(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.seq++
		agent.Snapshot(&agent.report)
		agent.scratch = AppendReport(agent.scratch[:0], &agent.report)
	}
	if len(agent.scratch) == 0 {
		b.Fatal("empty encoded report")
	}
}

// BenchmarkTelemetryReportNow covers the full per-tick path: snapshot,
// encode, and UDP transmission through the host stack and card egress.
// The departing frame escapes into the network, so like the flood
// injector this path keeps a small constant allocation count; the
// benchmark tracks it so regressions surface.
func BenchmarkTelemetryReportNow(b *testing.B) {
	k, _, _, agent := benchHost(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !agent.ReportNow() {
			b.Fatal("report refused")
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRxPathTelemetry drives the card's ingress path with a
// telemetry agent attached and its metrics published — the satellite
// contract that observability rides along for free: the agent only
// reads card accessors at report time, so the per-frame hot path must
// stay at 0 allocs/op exactly like the bare BenchmarkRxPath.
func BenchmarkRxPathTelemetry(b *testing.B) {
	k, ea, card, agent := benchHost(b)
	reg := obs.NewRegistry()
	card.PublishMetrics(reg, obs.L("host", "bench"))
	agent.PublishMetrics(reg)
	// Warm the agent's scratch buffer the way a first tick would.
	if !agent.ReportNow() {
		b.Fatal("warm-up report refused")
	}
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}

	u := &packet.UDPDatagram{SrcPort: 1000, DstPort: 2000, Payload: make([]byte, 100)}
	src, dst := packet.MustIP("10.0.0.1"), packet.MustIP("10.0.0.2")
	d := packet.NewDatagram(src, dst, packet.ProtoUDP, 1, u.Marshal(src, dst))
	f := &packet.Frame{
		Dst:     packet.MAC{0x02, 0, 0, 0, 0, 2},
		Src:     packet.MAC{0x02, 0, 0, 0, 0, 1},
		Type:    packet.EtherTypeIPv4,
		Payload: d.Marshal(),
	}
	base := card.Stats().RxAllowed

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !ea.Send(f) {
			b.Fatal("link refused frame")
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := card.Stats().RxAllowed - base; got != uint64(b.N) {
		b.Fatalf("rx allowed = %d, want %d", got, b.N)
	}
}
