package telemetry

import (
	"fmt"
	"time"

	"barbican/internal/obs"
	"barbican/internal/packet"
	"barbican/internal/sim"
	"barbican/internal/stack"
)

// CollectorConfig configures the fleet-health collector.
type CollectorConfig struct {
	// Port to listen on (0 = TelemetryPort).
	Port uint16
	// Detector tunes the per-device flood-onset detector; zero fields
	// take the documented defaults.
	Detector DetectorConfig
	// OnAlert fires whenever a device's detector enters AlertAlerting,
	// with the collector's virtual time — the hook scenarios use to
	// trigger a responsive blocklist push.
	OnAlert func(device string, at time.Duration)
	// OnReport fires for every accepted report, after ingestion.
	OnReport func(r *Report)
	// SilenceAfter, when positive, arms the staleness watchdog: a
	// device that has reported at least once and then stays quiet for
	// longer than this is fed to its detector as a hot "silence"
	// sample. Loss of telemetry during a flood is itself a signal —
	// the EFW Deny-All lockup silences its own victim. Zero disables
	// the watchdog (the collector stays purely reactive).
	SilenceAfter time.Duration
	// SweepEvery is the watchdog cadence; zero means SilenceAfter / 2.
	SweepEvery time.Duration
}

// DeviceHealth is the collector's model of one device.
type DeviceHealth struct {
	Device string
	// Last is the most recent report; LastAt its collector arrival
	// time in virtual time.
	Last   Report
	LastAt time.Duration
	// Reports counts accepted reports; Gaps counts sequence numbers
	// skipped between them — telemetry the management network lost.
	Reports uint64
	Gaps    uint64
	// Detector is the device's flood-onset state machine.
	Detector *Detector
}

// Collector listens on the policy server's management interface,
// decodes agent reports, maintains per-device health, and runs a
// deterministic flood-onset detector per device. Device iteration
// order is Track/arrival order — fixed by scenario construction, never
// map order — so metric registration and rendered fleet tables are
// deterministic.
type Collector struct {
	kernel *sim.Kernel
	sock   *stack.UDPSocket
	cfg    CollectorConfig

	devices map[string]*DeviceHealth
	order   []string

	reports uint64
	corrupt uint64
	bytes   uint64
}

// NewCollector binds the telemetry port on h (normally the policy
// server) and starts accepting reports.
func NewCollector(h *stack.Host, cfg CollectorConfig) (*Collector, error) {
	if cfg.Port == 0 {
		cfg.Port = TelemetryPort
	}
	sock, err := h.BindUDP(cfg.Port)
	if err != nil {
		return nil, fmt.Errorf("telemetry: bind collector: %w", err)
	}
	c := &Collector{
		kernel:  h.Kernel(),
		sock:    sock,
		cfg:     cfg,
		devices: make(map[string]*DeviceHealth),
	}
	sock.OnRecv = func(_ packet.IP, _ uint16, payload []byte) { c.ingest(payload) }
	if cfg.SilenceAfter > 0 {
		sweep := cfg.SweepEvery
		if sweep <= 0 {
			sweep = cfg.SilenceAfter / 2
		}
		var sweepFn func(any)
		sweepFn = func(any) {
			c.sweepSilence()
			c.kernel.AfterCall(sweep, sweepFn, nil)
		}
		c.kernel.AfterCall(sweep, sweepFn, nil)
	}
	return c, nil
}

// sweepSilence feeds a hot "silence" sample to every tracked device
// whose report stream has gone stale, in tracking order.
func (c *Collector) sweepSilence() {
	now := c.kernel.Now()
	for _, name := range c.order {
		h := c.devices[name]
		if h.Reports == 0 || now-h.LastAt <= c.cfg.SilenceAfter {
			continue
		}
		state, changed := h.Detector.ObserveSilence(now)
		if changed && state == AlertAlerting && c.cfg.OnAlert != nil {
			c.cfg.OnAlert(name, now)
		}
	}
}

// Track pre-registers a device so its health entry (and any metrics
// registered against it) exists before the first report arrives, in a
// code-ordered position independent of network timing.
func (c *Collector) Track(device string) *DeviceHealth {
	if h, ok := c.devices[device]; ok {
		return h
	}
	h := &DeviceHealth{Device: device, Detector: NewDetector(c.cfg.Detector)}
	c.devices[device] = h
	c.order = append(c.order, device)
	return h
}

func (c *Collector) ingest(payload []byte) {
	r, n, err := DecodeReport(payload)
	if err != nil || r == nil || n != len(payload) {
		// Corrupt, truncated, or trailing-garbage datagram: the
		// checksum (or framing) caught it. Count and drop — a mangled
		// report must never perturb a device's health model.
		c.corrupt++
		return
	}
	c.reports++
	c.bytes += uint64(n)

	h := c.Track(r.Device)
	if h.Reports > 0 && r.Seq > h.Last.Seq+1 {
		h.Gaps += uint64(r.Seq - h.Last.Seq - 1)
	}
	now := c.kernel.Now()
	h.Reports++
	if r.Seq >= h.Last.Seq || h.Reports == 1 {
		h.Last = *r
		h.LastAt = now
	}
	state, changed := h.Detector.Observe(now, r)
	if changed && state == AlertAlerting && c.cfg.OnAlert != nil {
		c.cfg.OnAlert(r.Device, now)
	}
	if c.cfg.OnReport != nil {
		c.cfg.OnReport(r)
	}
}

// Devices returns tracked device names in Track/arrival order.
func (c *Collector) Devices() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Health returns the model for one device, or nil if never tracked.
func (c *Collector) Health(device string) *DeviceHealth {
	return c.devices[device]
}

// Staleness returns virtual time since the device's last accepted
// report, or (0, false) if none has arrived yet.
func (c *Collector) Staleness(device string) (time.Duration, bool) {
	h := c.devices[device]
	if h == nil || h.Reports == 0 {
		return 0, false
	}
	return c.kernel.Now() - h.LastAt, true
}

// Totals returns (accepted, corrupt, bytes) across all devices.
func (c *Collector) Totals() (reports, corrupt, bytes uint64) {
	return c.reports, c.corrupt, c.bytes
}

// PublishMetrics registers fleet-wide counters plus per-device gauges
// for every device tracked so far. Call after Track()ing the fleet so
// the per-device series exist (and export) in deterministic order.
func (c *Collector) PublishMetrics(reg *obs.Registry, labels ...obs.Label) {
	counter := func(name, help string, read func() float64) {
		reg.MustRegisterFunc(name, help, obs.KindCounter, read, labels...)
	}
	counter("telemetry_reports_total", "Telemetry reports accepted by the collector.",
		func() float64 { return float64(c.reports) })
	counter("telemetry_corrupt_total", "Telemetry datagrams rejected as corrupt or malformed.",
		func() float64 { return float64(c.corrupt) })
	counter("telemetry_report_bytes_total", "Accepted telemetry payload bytes.",
		func() float64 { return float64(c.bytes) })
	reg.MustRegisterFunc("telemetry_devices", "Devices tracked by the collector.",
		obs.KindGauge, func() float64 { return float64(len(c.order)) }, labels...)

	for _, name := range c.order {
		h := c.devices[name]
		dl := append([]obs.Label{obs.L("device", name)}, labels...)
		reg.MustRegisterFunc("telemetry_device_reports_total",
			"Reports accepted from this device.",
			obs.KindCounter, func() float64 { return float64(h.Reports) }, dl...)
		reg.MustRegisterFunc("telemetry_device_gaps_total",
			"Sequence numbers missing from this device's report stream.",
			obs.KindCounter, func() float64 { return float64(h.Gaps) }, dl...)
		reg.MustRegisterFunc("telemetry_device_staleness_seconds",
			"Virtual time since this device's last accepted report.",
			obs.KindGauge, func() float64 {
				if h.Reports == 0 {
					return 0
				}
				return (c.kernel.Now() - h.LastAt).Seconds()
			}, dl...)
		reg.MustRegisterFunc("telemetry_device_conntrack_occupancy",
			"State-table fill ratio from this device's last report (0 on stateless cards).",
			obs.KindGauge, func() float64 { return h.Last.CTOccupancy() }, dl...)
		reg.MustRegisterFunc("telemetry_device_alert_state",
			"Detector state (0 healthy, 1 suspect, 2 alerting, 3 recovering).",
			obs.KindGauge, func() float64 { return float64(h.Detector.State()) }, dl...)
		reg.MustRegisterFunc("telemetry_device_alerts_total",
			"Times this device's detector entered alerting.",
			obs.KindCounter, func() float64 { return float64(h.Detector.Alerts()) }, dl...)
	}
}
