package telemetry

import (
	"fmt"
	"time"

	"barbican/internal/nic"
	"barbican/internal/obs"
	"barbican/internal/packet"
	"barbican/internal/sim"
	"barbican/internal/stack"
)

// DefaultReportInterval is the agent's report cadence when the config
// leaves it zero. 100 ms is an order of magnitude faster than human
// polling and an order slower than the card's 1 ms exhaustion
// threshold — detection latency is then dominated by the detector's
// hysteresis, not the sampling clock.
const DefaultReportInterval = 100 * time.Millisecond

// AgentConfig configures one host's telemetry agent.
type AgentConfig struct {
	// Device is the fleet name stamped into every report (the policy
	// plane's device name).
	Device string
	// Collector is the policy server's IP; Port its telemetry port
	// (0 = TelemetryPort).
	Collector packet.IP
	Port      uint16
	// Interval between reports (0 = DefaultReportInterval).
	Interval time.Duration
	// RulesVersion, when non-nil, supplies the installed policy
	// version for each snapshot — typically policy.Agent's
	// InstalledVersion, taken as a closure so telemetry needs no
	// policy import.
	RulesVersion func() uint32
}

// Agent periodically snapshots its host's NIC and sends a wire-encoded
// Report to the collector over plain UDP on the shared management
// network. The datagram rides the same links as policy pushes, pays
// the card's egress cost-model units, and passes through any fault
// plan attached to either endpoint — telemetry loss under attack is a
// phenomenon this plane exists to measure, not an error.
//
// Unlike the TCP policy channel, UDP telemetry gets no management
// bypass on the card: a fail-closed or egress-deny policy silences the
// agent, which the collector observes as staleness. That is realistic
// and intentional.
type Agent struct {
	kernel *sim.Kernel
	card   *nic.NIC
	sock   *stack.UDPSocket
	cfg    AgentConfig

	running bool
	stopped bool
	tickFn  func(any)

	seq       uint32
	sent      uint64
	sendFails uint64

	// report and scratch are reused across ticks so the steady-state
	// snapshot+encode path allocates nothing.
	report  Report
	scratch []byte
}

// NewAgent binds an ephemeral UDP socket on h and returns an agent
// ready to Start.
func NewAgent(h *stack.Host, cfg AgentConfig) (*Agent, error) {
	if cfg.Device == "" {
		return nil, fmt.Errorf("telemetry: agent needs a device name")
	}
	if len(cfg.Device) > maxDeviceName {
		return nil, fmt.Errorf("telemetry: device name %q longer than %d bytes", cfg.Device, maxDeviceName)
	}
	if cfg.Port == 0 {
		cfg.Port = TelemetryPort
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultReportInterval
	}
	sock, err := h.BindUDP(0)
	if err != nil {
		return nil, fmt.Errorf("telemetry: bind agent socket: %w", err)
	}
	a := &Agent{
		kernel:  h.Kernel(),
		card:    h.NIC(),
		sock:    sock,
		cfg:     cfg,
		scratch: make([]byte, 0, maxReportSize),
	}
	a.report.Device = cfg.Device
	a.tickFn = func(any) { a.tick() }
	return a, nil
}

// Start schedules the periodic report loop; the first report goes out
// one interval from now. Idempotent while running.
func (a *Agent) Start() {
	if a.running || a.stopped {
		return
	}
	a.running = true
	a.kernel.AfterCall(a.cfg.Interval, a.tickFn, nil)
}

// Stop halts the loop permanently.
func (a *Agent) Stop() {
	a.stopped = true
	a.running = false
}

func (a *Agent) tick() {
	if a.stopped {
		return
	}
	a.ReportNow()
	a.kernel.AfterCall(a.cfg.Interval, a.tickFn, nil)
}

// Snapshot fills r from the card's current counters without sending.
//
//barbican:noalloc
func (a *Agent) Snapshot(r *Report) {
	stats := a.card.Stats()
	flow := a.card.FlowCacheStats()
	r.Seq = a.seq
	r.SentAt = a.kernel.Now()
	if a.cfg.RulesVersion != nil {
		r.RulesVersion = a.cfg.RulesVersion()
	} else {
		r.RulesVersion = 0
	}
	r.State = a.card.DegradedState()
	r.Mode = a.card.FailMode()
	r.Locked = a.card.Locked()
	r.Backlog = a.card.Backlog()
	r.QueueDepth = uint32(a.card.QueueDepth())
	r.RxFrames = stats.RxFrames
	r.RxAllowed = stats.RxAllowed
	r.FlowHits = flow.Hits
	r.FlowMisses = flow.Misses
	if ct := a.card.Conntrack(); ct != nil {
		r.CTEntries = uint32(ct.Len())
		r.CTCapacity = uint32(ct.Cap())
		r.CTEvictions = ct.Stats().Evicted
	} else {
		r.CTEntries, r.CTCapacity, r.CTEvictions = 0, 0, 0
	}
	r.RxDrops, r.TxDrops = a.card.DropCounts()
}

// ReportNow snapshots, encodes into the reused scratch buffer, and
// sends one report immediately, returning whether the host accepted
// the datagram for transmission (false counts as a send failure: no
// route, oversize, or socket closed — not wire loss, which only the
// collector's gap counters can see).
func (a *Agent) ReportNow() bool {
	a.seq++
	a.Snapshot(&a.report)
	a.scratch = AppendReport(a.scratch[:0], &a.report)
	ok := a.sock.SendTo(a.cfg.Collector, a.cfg.Port, a.scratch)
	if ok {
		a.sent++
	} else {
		a.sendFails++
	}
	return ok
}

// Sent returns (accepted, failed) report counts at the sending host.
func (a *Agent) Sent() (sent, failed uint64) { return a.sent, a.sendFails }

// PublishMetrics registers the agent's counters on reg.
func (a *Agent) PublishMetrics(reg *obs.Registry, labels ...obs.Label) {
	labels = append([]obs.Label{obs.L("device", a.cfg.Device)}, labels...)
	reg.MustRegisterFunc("telemetry_agent_reports_total",
		"Telemetry reports accepted for transmission.",
		obs.KindCounter, func() float64 { return float64(a.sent) }, labels...)
	reg.MustRegisterFunc("telemetry_agent_send_failures_total",
		"Telemetry reports the host refused to transmit.",
		obs.KindCounter, func() float64 { return float64(a.sendFails) }, labels...)
}
