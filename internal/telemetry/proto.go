// Package telemetry is the in-band fleet-health plane: NIC agents
// periodically snapshot card health (per-reason drop counters, processor
// backlog, flow-cache hit ratio, degraded-mode state, rules version) and
// push compact reports over the simulated management network to a
// collector on the policy server. Reports share links with policy
// pushes, cost card CPU units like any other egress traffic, and are
// subject to fault plans — lost, late, and corrupt reports are a
// measured phenomenon, not an accident. The collector aggregates
// reports into a per-device fleet-health model and runs deterministic
// flood-onset detectors (EWMA baseline + threshold with hysteresis)
// whose alert-state transitions, recorded in virtual time, yield the
// two headline metrics: time-to-detect and window-of-exposure.
package telemetry

import (
	"errors"
	"fmt"
	"time"

	"barbican/internal/nic"
	"barbican/internal/obs/tracing"
)

// TelemetryPort is the collector's well-known UDP port on the policy
// server (the policy push channel is TCP 4747 next door).
const TelemetryPort = 4748

// Wire format: "BTL1" | uint16 bodyLen (BE) | body | uint64 FNV-1a(body).
//
// The checksum is integrity, not authenticity: telemetry is advisory
// (a forged report can at worst raise a false alert, never install
// policy), so unlike the BPL2 push channel it carries no MAC. What the
// checksum must catch is the fault plane's single-bit corruption — a
// flipped byte must never yield a silently-wrong report.
const (
	reportMagic   = "BTL1"
	headerLen     = 4 + 2 // magic + body length
	checksumLen   = 8
	maxDeviceName = 64
	maxReportSize = 1024
)

// Report decode errors.
var (
	ErrBadMagic    = errors.New("telemetry: bad magic")
	ErrBadChecksum = errors.New("telemetry: checksum mismatch")
	ErrTooLarge    = errors.New("telemetry: report too large")
	ErrTruncated   = errors.New("telemetry: truncated report")
)

// Report is one card-health snapshot, as carried on the wire. All
// timestamps are virtual time at the sender.
type Report struct {
	// Device is the reporting device's fleet name (the policy plane's
	// device name, not the hostname).
	Device string
	// Seq increments per report from one agent; the collector counts
	// gaps to measure telemetry loss.
	Seq uint32
	// SentAt is the snapshot's virtual time at the sender.
	SentAt time.Duration
	// RulesVersion is the installed policy version (0 = none/unknown).
	RulesVersion uint32

	State  nic.DegradedState
	Mode   nic.FailMode
	Locked bool

	// Backlog is the embedded processor's queued work, in time;
	// QueueDepth its descriptor-ring occupancy.
	Backlog    time.Duration
	QueueDepth uint32

	RxFrames  uint64
	RxAllowed uint64

	FlowHits   uint64
	FlowMisses uint64

	// Conntrack table occupancy (all zero on stateless cards).
	// CTEntries over CTCapacity is the occupancy ratio the collector's
	// detectors watch for state-exhaustion floods; CTEvictions is the
	// cumulative displaced-entry count, whose rate is the flood's
	// steady-state signature once the table is pinned full.
	CTEntries   uint32
	CTCapacity  uint32
	CTEvictions uint64

	// RxDrops and TxDrops are the card's always-on per-reason drop
	// counters, indexed by tracing.DropReason.
	RxDrops [tracing.NumDropReasons]uint64
	TxDrops [tracing.NumDropReasons]uint64
}

// CTOccupancy returns the state-table fill ratio (0 on stateless
// cards).
func (r *Report) CTOccupancy() float64 {
	if r.CTCapacity == 0 {
		return 0
	}
	return float64(r.CTEntries) / float64(r.CTCapacity)
}

// RxDropTotal sums the ingress drop counters — the detector's primary
// flood signal.
func (r *Report) RxDropTotal() uint64 {
	var total uint64
	for i := range r.RxDrops {
		total += r.RxDrops[i]
	}
	return total
}

// FlowHitRatio returns the flow-cache hit ratio (0 when the card has
// no cache or has seen no policy-subject packets).
func (r *Report) FlowHitRatio() float64 {
	total := r.FlowHits + r.FlowMisses
	if total == 0 {
		return 0
	}
	return float64(r.FlowHits) / float64(total)
}

// checksum is 64-bit FNV-1a, inlined so the encode path needs no
// hash.Hash allocation.
func checksum(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v>>8), byte(v))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// AppendReport appends the report's wire image to dst and returns the
// extended slice. Pure appends into the caller's scratch: the agent's
// steady-state encode path is allocation-free once the scratch has
// grown to report size.
//
//barbican:noalloc
func AppendReport(dst []byte, r *Report) []byte {
	start := len(dst)
	dst = append(dst, reportMagic...)
	dst = appendU16(dst, 0) // body length, patched below
	bodyStart := len(dst)

	name := r.Device
	if len(name) > maxDeviceName {
		name = name[:maxDeviceName]
	}
	dst = append(dst, byte(len(name)))
	dst = append(dst, name...)
	dst = appendU32(dst, r.Seq)
	dst = appendU64(dst, uint64(r.SentAt))
	dst = appendU32(dst, r.RulesVersion)
	dst = append(dst, byte(r.State), byte(r.Mode), boolByte(r.Locked))
	dst = appendU64(dst, uint64(r.Backlog))
	dst = appendU32(dst, r.QueueDepth)
	dst = appendU64(dst, r.RxFrames)
	dst = appendU64(dst, r.RxAllowed)
	dst = appendU64(dst, r.FlowHits)
	dst = appendU64(dst, r.FlowMisses)
	dst = appendU32(dst, r.CTEntries)
	dst = appendU32(dst, r.CTCapacity)
	dst = appendU64(dst, r.CTEvictions)
	dst = append(dst, byte(tracing.NumDropReasons))
	for i := range r.RxDrops {
		dst = appendU64(dst, r.RxDrops[i])
	}
	for i := range r.TxDrops {
		dst = appendU64(dst, r.TxDrops[i])
	}

	body := dst[bodyStart:]
	dst[start+4] = byte(len(body) >> 8)
	dst[start+5] = byte(len(body))
	return appendU64(dst, checksum(body))
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// DecodeReport decodes one wire image. Like policy.decodePush it
// returns (nil, 0, nil) when buf is a plausible prefix that needs more
// bytes, (report, consumed, nil) on success, and a non-nil error for
// anything structurally wrong. It must never panic and never return a
// silently-wrong report: the body checksum shields every field against
// the fault plane's bit flips.
func DecodeReport(buf []byte) (*Report, int, error) {
	if len(buf) < headerLen {
		return nil, 0, nil
	}
	if string(buf[:4]) != reportMagic {
		return nil, 0, ErrBadMagic
	}
	bodyLen := int(buf[4])<<8 | int(buf[5])
	if bodyLen > maxReportSize {
		return nil, 0, ErrTooLarge
	}
	total := headerLen + bodyLen + checksumLen
	if len(buf) < total {
		return nil, 0, nil
	}
	body := buf[headerLen : headerLen+bodyLen]
	want := u64(buf[headerLen+bodyLen:])
	if checksum(body) != want {
		return nil, 0, ErrBadChecksum
	}
	r, err := parseReportBody(body)
	if err != nil {
		return nil, 0, err
	}
	return r, total, nil
}

func u32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func u64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// parseReportBody parses a checksum-verified body. Every read is
// bounds-checked through take, so a structurally corrupt body (which
// the checksum normally shields) errors instead of panicking — defense
// in depth, same contract as the policy plane's parseBody.
func parseReportBody(body []byte) (*Report, error) {
	rest := body
	take := func(n int) ([]byte, error) {
		if len(rest) < n {
			return nil, ErrTruncated
		}
		b := rest[:n]
		rest = rest[n:]
		return b, nil
	}

	nb, err := take(1)
	if err != nil {
		return nil, err
	}
	nameLen := int(nb[0])
	if nameLen == 0 || nameLen > maxDeviceName {
		return nil, fmt.Errorf("telemetry: bad device name length %d", nameLen)
	}
	name, err := take(nameLen)
	if err != nil {
		return nil, err
	}
	r := &Report{Device: string(name)}

	fixed, err := take(4 + 8 + 4 + 3 + 8 + 4 + 8*4 + 4 + 4 + 8 + 1)
	if err != nil {
		return nil, err
	}
	r.Seq = u32(fixed[0:])
	r.SentAt = time.Duration(u64(fixed[4:]))
	r.RulesVersion = u32(fixed[12:])
	r.State = nic.DegradedState(fixed[16])
	r.Mode = nic.FailMode(fixed[17])
	r.Locked = fixed[18] != 0
	r.Backlog = time.Duration(u64(fixed[19:]))
	r.QueueDepth = u32(fixed[27:])
	r.RxFrames = u64(fixed[31:])
	r.RxAllowed = u64(fixed[39:])
	r.FlowHits = u64(fixed[47:])
	r.FlowMisses = u64(fixed[55:])
	r.CTEntries = u32(fixed[63:])
	r.CTCapacity = u32(fixed[67:])
	r.CTEvictions = u64(fixed[71:])
	if reasons := int(fixed[79]); reasons != int(tracing.NumDropReasons) {
		return nil, fmt.Errorf("telemetry: report carries %d drop reasons, want %d", reasons, tracing.NumDropReasons)
	}
	if r.State >= nic.NumDegradedStates || r.Mode >= nic.NumFailModes {
		return nil, fmt.Errorf("telemetry: bad state %d / mode %d", r.State, r.Mode)
	}
	for i := range r.RxDrops {
		b, err := take(8)
		if err != nil {
			return nil, err
		}
		r.RxDrops[i] = u64(b)
	}
	for i := range r.TxDrops {
		b, err := take(8)
		if err != nil {
			return nil, err
		}
		r.TxDrops[i] = u64(b)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("telemetry: %d trailing bytes after report body", len(rest))
	}
	return r, nil
}
