package telemetry

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"barbican/internal/nic"
	"barbican/internal/obs/tracing"
)

// sampleReport exercises every field of the wire format: non-zero
// counters in every slot, a degraded state, and a fail mode.
func sampleReport() *Report {
	r := &Report{
		Device:       "target",
		Seq:          42,
		SentAt:       1500 * time.Millisecond,
		RulesVersion: 7,
		State:        nic.StateDegraded,
		Mode:         nic.FailModeClosed,
		Locked:       true,
		Backlog:      750 * time.Microsecond,
		QueueDepth:   33,
		RxFrames:     123456,
		RxAllowed:    100000,
		FlowHits:     90000,
		FlowMisses:   10000,
		CTEntries:    1000,
		CTCapacity:   1024,
		CTEvictions:  555,
	}
	for i := range r.RxDrops {
		r.RxDrops[i] = uint64(1000 + i)
		r.TxDrops[i] = uint64(i)
	}
	return r
}

func TestReportRoundTrip(t *testing.T) {
	want := sampleReport()
	wire := AppendReport(nil, want)
	got, n, err := DecodeReport(wire)
	if err != nil || got == nil {
		t.Fatalf("decode: report=%v err=%v", got, err)
	}
	if n != len(wire) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(wire))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Appending to a prefilled buffer must leave the prefix intact.
	prefixed := AppendReport([]byte("xyz"), want)
	if !bytes.Equal(prefixed[:3], []byte("xyz")) || !bytes.Equal(prefixed[3:], wire) {
		t.Fatal("AppendReport disturbed the destination prefix")
	}
}

// TestAppendReportNoAlloc: snapshot encoding into a warm scratch buffer
// is on the agent's per-tick path and must not allocate.
func TestAppendReportNoAlloc(t *testing.T) {
	r := sampleReport()
	scratch := make([]byte, 0, maxReportSize)
	if allocs := testing.AllocsPerRun(100, func() {
		scratch = AppendReport(scratch[:0], r)
	}); allocs != 0 {
		t.Fatalf("AppendReport into warm scratch allocated %.1f/op, want 0", allocs)
	}
}

// TestDecodeReportTruncationSweep: every strict prefix of a valid wire
// image must decode to "need more bytes" or an error — never a report,
// never a panic. This is what the fault plane's truncation leaves in a
// datagram.
func TestDecodeReportTruncationSweep(t *testing.T) {
	wire := AppendReport(nil, sampleReport())
	for cut := 0; cut < len(wire); cut++ {
		r, _, err := DecodeReport(wire[:cut])
		if r != nil {
			t.Fatalf("prefix of %d/%d bytes decoded to a report", cut, len(wire))
		}
		// Short prefixes legitimately report "need more"; what matters
		// is no panic and no report.
		_ = err
	}
}

// TestDecodeReportBitFlipSweep: single-byte corruptions must never
// panic and never yield an accepted report. Flips outside the length
// field must error outright (magic or checksum); length-field flips
// may instead look like an incomplete longer report, but shrunk
// lengths must fail the checksum.
func TestDecodeReportBitFlipSweep(t *testing.T) {
	wire := AppendReport(nil, sampleReport())
	for i := 0; i < len(wire); i++ {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), wire...)
			mut[i] ^= flip
			r, _, err := DecodeReport(mut)
			if r != nil {
				t.Fatalf("flip 0x%02x at byte %d decoded to a report", flip, i)
			}
			lengthField := i >= 4 && i < headerLen
			if !lengthField && err == nil {
				t.Fatalf("flip 0x%02x at byte %d returned no error", flip, i)
			}
			if lengthField && err == nil {
				if n := int(mut[4])<<8 | int(mut[5]); n <= len(wire)-headerLen-checksumLen {
					t.Fatalf("flip 0x%02x at byte %d shrank the length yet decoded cleanly", flip, i)
				}
			}
		}
	}
}

// TestParseReportBodyPrefixSweep: the body parser must hold the line
// on every strict prefix even though the checksum normally shields it
// — defense in depth, same contract as the policy plane's parseBody.
func TestParseReportBodyPrefixSweep(t *testing.T) {
	wire := AppendReport(nil, sampleReport())
	body := wire[headerLen : len(wire)-checksumLen]
	if _, err := parseReportBody(body); err != nil {
		t.Fatalf("baseline parseReportBody failed: %v", err)
	}
	for cut := 0; cut < len(body); cut++ {
		if _, err := parseReportBody(body[:cut]); err == nil {
			t.Fatalf("parseReportBody accepted a %d/%d-byte prefix", cut, len(body))
		}
	}
}

// TestParseReportBodyByteFlipNeverPanics: arbitrary single-byte
// corruption of the body must never panic the parser.
func TestParseReportBodyByteFlipNeverPanics(t *testing.T) {
	wire := AppendReport(nil, sampleReport())
	body := wire[headerLen : len(wire)-checksumLen]
	for i := 0; i < len(body); i++ {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), body...)
			mut[i] ^= flip
			_, _ = parseReportBody(mut)
		}
	}
}

// TestDecodeReportRejects: structural junk beyond bit flips.
func TestDecodeReportRejects(t *testing.T) {
	wire := AppendReport(nil, sampleReport())

	if _, _, err := DecodeReport([]byte("NOPE?!")); err != ErrBadMagic {
		t.Errorf("bad magic: err=%v, want ErrBadMagic", err)
	}

	big := append([]byte(nil), wire...)
	big[4], big[5] = 0xff, 0xff // bodyLen 65535 > maxReportSize
	if _, _, err := DecodeReport(big); err != ErrTooLarge {
		t.Errorf("oversize length: err=%v, want ErrTooLarge", err)
	}

	trailing := append(append([]byte(nil), wire...), 0xAA)
	r, n, err := DecodeReport(trailing)
	if err != nil || r == nil || n != len(wire) {
		t.Errorf("trailing byte: report=%v n=%d err=%v (framing should stop at the checksum)", r, n, err)
	}

	// A report claiming a different drop-reason count is a version
	// mismatch, not silently-partial data.
	mismatched := sampleReport()
	raw := AppendReport(nil, mismatched)
	body := append([]byte(nil), raw[headerLen:len(raw)-checksumLen]...)
	reasonOff := 1 + len(mismatched.Device) + 4 + 8 + 4 + 3 + 8 + 4 + 8*4 + 4 + 4 + 8
	body[reasonOff] = byte(tracing.NumDropReasons) + 1
	reframed := AppendReport(nil, mismatched)[:headerLen]
	reframed = append(reframed[:headerLen], body...)
	reframed = appendU64(reframed, checksum(body))
	if _, _, err := DecodeReport(reframed); err == nil {
		t.Error("mismatched drop-reason count decoded cleanly")
	}

	// Out-of-range enum values must be rejected even with a valid
	// checksum (a malicious or future-version sender).
	badState := sampleReport()
	badState.State = nic.NumDegradedStates
	if _, _, err := DecodeReport(AppendReport(nil, badState)); err == nil {
		t.Error("out-of-range degraded state decoded cleanly")
	}
}
