package packet

import (
	"encoding/binary"
	"fmt"
)

// ICMP message types used by the simulator.
const (
	ICMPEchoReply       = 0
	ICMPDestUnreach     = 3
	ICMPEchoRequest     = 8
	ICMPTimeExceeded    = 11
	ICMPCodePortUnreach = 3 // code for ICMPDestUnreach
)

// ICMPHeaderLen is the fixed ICMP header length.
const ICMPHeaderLen = 8

// ICMPMessage is an ICMP header plus body.
type ICMPMessage struct {
	Type uint8
	Code uint8
	// ID and Seq hold the identifier/sequence for echo messages and the
	// unused field otherwise.
	ID      uint16
	Seq     uint16
	Payload []byte
}

// Marshal encodes the message with a correct checksum.
func (m *ICMPMessage) Marshal() []byte {
	return m.MarshalTo(make([]byte, 0, ICMPHeaderLen+len(m.Payload)))
}

// MarshalTo appends the encoded message to b and returns the extended
// slice.
func (m *ICMPMessage) MarshalTo(b []byte) []byte {
	b, off := grow(b, ICMPHeaderLen+len(m.Payload))
	p := b[off:]
	p[0] = m.Type
	p[1] = m.Code
	binary.BigEndian.PutUint16(p[4:6], m.ID)
	binary.BigEndian.PutUint16(p[6:8], m.Seq)
	copy(p[ICMPHeaderLen:], m.Payload)
	binary.BigEndian.PutUint16(p[2:4], Checksum(p))
	return b
}

// UnmarshalICMPMessage parses an ICMP message and verifies its checksum.
// The payload aliases b.
func UnmarshalICMPMessage(b []byte) (*ICMPMessage, error) {
	if len(b) < ICMPHeaderLen {
		return nil, fmt.Errorf("packet: ICMP message too short (%d bytes)", len(b))
	}
	if Checksum(b) != 0 {
		return nil, fmt.Errorf("packet: ICMP checksum mismatch")
	}
	return &ICMPMessage{
		Type:    b[0],
		Code:    b[1],
		ID:      binary.BigEndian.Uint16(b[4:6]),
		Seq:     binary.BigEndian.Uint16(b[6:8]),
		Payload: b[ICMPHeaderLen:],
	}, nil
}
