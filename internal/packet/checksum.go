package packet

// Checksum computes the RFC 1071 internet checksum over data.
func Checksum(data []byte) uint16 {
	return finishChecksum(sumWords(0, data))
}

// sumWords accumulates 16-bit big-endian words of data into sum. An odd
// trailing byte is padded with zero, per RFC 1071.
func sumWords(sum uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	return sum
}

func finishChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum accumulates the IPv4 pseudo-header used by TCP and UDP
// checksums: source, destination, zero+protocol, and the transport length.
func pseudoHeaderSum(src, dst IP, proto Protocol, length int) uint32 {
	var sum uint32
	sum = sumWords(sum, src[:])
	sum = sumWords(sum, dst[:])
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// TransportChecksum computes the TCP/UDP checksum of segment (header plus
// payload) with the IPv4 pseudo-header for src/dst/proto.
func TransportChecksum(src, dst IP, proto Protocol, segment []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, len(segment))
	return finishChecksum(sumWords(sum, segment))
}
