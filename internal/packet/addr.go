// Package packet implements the wire formats used on the simulated
// network: Ethernet II framing, IPv4, TCP, UDP, and ICMP.
//
// All headers marshal to and parse from the real on-the-wire byte layout,
// including internet checksums, so captures produced by the simulator are
// byte-accurate and tooling (firewalls, NIC models, traces) operates on
// genuine packets rather than abstract records.
package packet

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// MAC is a 48-bit IEEE 802 MAC address.
type MAC [6]byte

// Broadcast is the Ethernet broadcast address ff:ff:ff:ff:ff:ff.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String formats the address as colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the address is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// ParseMAC parses a colon-separated hex MAC address.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return m, fmt.Errorf("packet: invalid MAC %q", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return m, fmt.Errorf("packet: invalid MAC %q: %v", s, err)
		}
		m[i] = byte(v)
	}
	return m, nil
}

// IP is an IPv4 address.
type IP [4]byte

// String formats the address in dotted-quad notation.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// IsZero reports whether the address is 0.0.0.0.
func (ip IP) IsZero() bool { return ip == IP{} }

// Uint32 returns the address as a big-endian 32-bit integer.
func (ip IP) Uint32() uint32 {
	return uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
}

// IPFromUint32 converts a big-endian 32-bit integer to an address.
func IPFromUint32(v uint32) IP {
	return IP{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// ParseIP parses a dotted-quad IPv4 address.
func ParseIP(s string) (IP, error) {
	var ip IP
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return ip, fmt.Errorf("packet: invalid IPv4 address %q", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return ip, fmt.Errorf("packet: invalid IPv4 address %q: %v", s, err)
		}
		ip[i] = byte(v)
	}
	return ip, nil
}

// MustIP parses a dotted-quad IPv4 address and panics on error. It is
// intended for tests and static configuration.
func MustIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// Prefix is an IPv4 CIDR prefix used for firewall rule matching.
type Prefix struct {
	Addr IP
	Bits int // 0..32
}

var errBadPrefix = errors.New("packet: invalid prefix")

// NewPrefix returns a prefix after validating the mask length.
func NewPrefix(addr IP, bits int) (Prefix, error) {
	if bits < 0 || bits > 32 {
		return Prefix{}, errBadPrefix
	}
	return Prefix{Addr: addr, Bits: bits}, nil
}

// ParsePrefix parses "a.b.c.d/len". A bare address parses as a /32.
func ParsePrefix(s string) (Prefix, error) {
	addrStr, bitsStr, found := strings.Cut(s, "/")
	addr, err := ParseIP(addrStr)
	if err != nil {
		return Prefix{}, err
	}
	if !found {
		return Prefix{Addr: addr, Bits: 32}, nil
	}
	bits, err := strconv.Atoi(bitsStr)
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("packet: invalid prefix %q", s)
	}
	return Prefix{Addr: addr, Bits: bits}, nil
}

// MustPrefix parses a CIDR prefix and panics on error.
func MustPrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Contains reports whether ip falls within the prefix.
func (p Prefix) Contains(ip IP) bool {
	if p.Bits == 0 {
		return true
	}
	mask := ^uint32(0) << (32 - p.Bits)
	return ip.Uint32()&mask == p.Addr.Uint32()&mask
}

// String formats the prefix in CIDR notation.
func (p Prefix) String() string {
	return p.Addr.String() + "/" + strconv.Itoa(p.Bits)
}
