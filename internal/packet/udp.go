package packet

import (
	"encoding/binary"
	"fmt"
)

// UDPHeaderLen is the fixed UDP header length.
const UDPHeaderLen = 8

// UDPDatagram is a UDP header plus payload.
type UDPDatagram struct {
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

// Marshal encodes the datagram with a correct checksum computed over the
// IPv4 pseudo-header for src and dst.
func (u *UDPDatagram) Marshal(src, dst IP) []byte {
	return u.MarshalTo(src, dst, make([]byte, 0, UDPHeaderLen+len(u.Payload)))
}

// MarshalTo appends the encoded datagram to b and returns the extended
// slice.
func (u *UDPDatagram) MarshalTo(src, dst IP, b []byte) []byte {
	b, off := grow(b, UDPHeaderLen+len(u.Payload))
	p := b[off:]
	binary.BigEndian.PutUint16(p[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(p[2:4], u.DstPort)
	binary.BigEndian.PutUint16(p[4:6], uint16(len(p)))
	copy(p[UDPHeaderLen:], u.Payload)
	sum := TransportChecksum(src, dst, ProtoUDP, p)
	if sum == 0 {
		sum = 0xffff // RFC 768: transmitted all-ones when computed zero
	}
	binary.BigEndian.PutUint16(p[6:8], sum)
	return b
}

// UnmarshalUDPDatagram parses a UDP datagram and verifies its checksum.
// The payload aliases b.
func UnmarshalUDPDatagram(src, dst IP, b []byte) (*UDPDatagram, error) {
	if len(b) < UDPHeaderLen {
		return nil, fmt.Errorf("packet: UDP datagram too short (%d bytes)", len(b))
	}
	length := int(binary.BigEndian.Uint16(b[4:6]))
	if length < UDPHeaderLen || length > len(b) {
		return nil, fmt.Errorf("packet: bad UDP length %d (buffer %d)", length, len(b))
	}
	b = b[:length]
	if binary.BigEndian.Uint16(b[6:8]) != 0 && TransportChecksum(src, dst, ProtoUDP, b) != 0 {
		return nil, fmt.Errorf("packet: UDP checksum mismatch")
	}
	return &UDPDatagram{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Payload: b[UDPHeaderLen:],
	}, nil
}
