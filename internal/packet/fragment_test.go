package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func bigDatagram(size int) *Datagram {
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	d := NewDatagram(MustIP("10.0.0.1"), MustIP("10.0.0.2"), ProtoUDP, 77, payload)
	d.Header.DontFrag = false
	return d
}

func TestFragmentSplitsOnEightByteBoundaries(t *testing.T) {
	d := bigDatagram(100)
	frags, err := Fragment(d, IPv4HeaderLen+30)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 5 { // chunks of 24 bytes: 24*4 + 4
		t.Fatalf("fragments = %d, want 5", len(frags))
	}
	for i, f := range frags {
		if f.Header.FragOffset%8 != 0 {
			t.Errorf("fragment %d offset %d not 8-aligned", i, f.Header.FragOffset)
		}
		wantMore := i < len(frags)-1
		if f.Header.MoreFrags != wantMore {
			t.Errorf("fragment %d MoreFrags = %v", i, f.Header.MoreFrags)
		}
		if f.Header.ID != d.Header.ID {
			t.Errorf("fragment %d lost the datagram ID", i)
		}
	}
}

func TestFragmentNoopWhenFits(t *testing.T) {
	d := bigDatagram(50)
	frags, err := Fragment(d, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || frags[0] != d {
		t.Errorf("small datagram was fragmented: %d pieces", len(frags))
	}
}

func TestFragmentHonorsDF(t *testing.T) {
	d := bigDatagram(100)
	d.Header.DontFrag = true
	if _, err := Fragment(d, IPv4HeaderLen+16); err == nil {
		t.Error("DF datagram fragmented")
	}
}

func TestFragmentRejectsTinyMTU(t *testing.T) {
	if _, err := Fragment(bigDatagram(100), IPv4HeaderLen+4); err == nil {
		t.Error("mtu below minimum accepted")
	}
}

func TestReassembleInOrder(t *testing.T) {
	d := bigDatagram(100)
	frags, err := Fragment(d, IPv4HeaderLen+32)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReassembler(0, 0)
	for i, f := range frags {
		whole := r.Add(f)
		if i < len(frags)-1 {
			if whole != nil {
				t.Fatalf("reassembled early at fragment %d", i)
			}
			continue
		}
		if whole == nil {
			t.Fatal("never reassembled")
		}
		if !bytes.Equal(whole.Payload, d.Payload) {
			t.Error("payload mismatch after reassembly")
		}
		if whole.Header.IsFragment() {
			t.Error("reassembled datagram still marked as fragment")
		}
	}
	if done, _, _ := r.Stats(); done != 1 {
		t.Errorf("completed = %d", done)
	}
	if r.Pending() != 0 {
		t.Errorf("pending = %d after completion", r.Pending())
	}
}

// Property: fragments reassemble to the original payload under any
// permutation and any (valid) MTU.
func TestReassembleAnyOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(sizeRaw uint16, mtuRaw uint8, permSeed int64) bool {
		size := 64 + int(sizeRaw)%1400
		mtu := IPv4HeaderLen + 16 + int(mtuRaw)%256
		d := bigDatagram(size)
		frags, err := Fragment(d, mtu)
		if err != nil {
			return false
		}
		perm := rand.New(rand.NewSource(permSeed)).Perm(len(frags))
		r := NewReassembler(0, 0)
		var whole *Datagram
		for _, idx := range perm {
			if w := r.Add(frags[idx]); w != nil {
				whole = w
			}
		}
		return whole != nil && bytes.Equal(whole.Payload, d.Payload) &&
			whole.Header.Protocol == d.Header.Protocol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestReassemblerMissingFragmentNeverCompletes(t *testing.T) {
	d := bigDatagram(100)
	frags, err := Fragment(d, IPv4HeaderLen+32)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReassembler(0, 0)
	// Withhold the first fragment (the EXT3 attack pattern: the filter
	// denied it).
	for _, f := range frags[1:] {
		if whole := r.Add(f); whole != nil {
			t.Fatal("reassembled without the first fragment")
		}
	}
	if r.Pending() != 1 {
		t.Errorf("pending = %d", r.Pending())
	}
}

func TestReassemblerEvictsUnderFloodPressure(t *testing.T) {
	r := NewReassembler(4, 0)
	// Offer 10 distinct half-finished datagrams.
	for id := 0; id < 10; id++ {
		d := bigDatagram(64)
		d.Header.ID = uint16(id)
		frags, err := Fragment(d, IPv4HeaderLen+40)
		if err != nil {
			t.Fatal(err)
		}
		r.Add(frags[0]) // only the first piece
	}
	if r.Pending() != 4 {
		t.Errorf("pending = %d, want capped at 4", r.Pending())
	}
	if _, evicted, _ := r.Stats(); evicted != 6 {
		t.Errorf("evicted = %d, want 6", evicted)
	}
}

func TestReassemblerOversizeAborts(t *testing.T) {
	r := NewReassembler(0, 64)
	d := bigDatagram(200)
	frags, err := Fragment(d, IPv4HeaderLen+48)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frags {
		if whole := r.Add(f); whole != nil {
			t.Fatal("oversize datagram reassembled")
		}
	}
	// Each abort discards buffered fragments; stragglers may restart the
	// reassembly and trip the bound again.
	if _, _, oversize := r.Stats(); oversize == 0 {
		t.Error("oversize abort not counted")
	}
}

func TestFragmentHeaderRoundTrip(t *testing.T) {
	h := &IPv4Header{
		TotalLen: 60, ID: 9, MoreFrags: true, FragOffset: 1480,
		TTL: 64, Protocol: ProtoUDP,
		Src: MustIP("1.1.1.1"), Dst: MustIP("2.2.2.2"),
	}
	got, _, err := UnmarshalIPv4Header(append(h.Marshal(), make([]byte, 40)...))
	if err != nil {
		t.Fatal(err)
	}
	if !got.MoreFrags || got.FragOffset != 1480 || !got.IsFragment() {
		t.Errorf("round trip = %+v", got)
	}
}

func TestSummarizeFragments(t *testing.T) {
	d := bigDatagram(100)
	u := &UDPDatagram{SrcPort: 9, DstPort: 7, Payload: make([]byte, 92)}
	d.Payload = u.Marshal(d.Header.Src, d.Header.Dst)
	frags, err := Fragment(d, IPv4HeaderLen+32)
	if err != nil {
		t.Fatal(err)
	}
	first, err := SummarizeIPv4(frags[0].Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !first.Fragment || !first.HasPorts || first.DstPort != 7 {
		t.Errorf("first fragment summary = %+v", first)
	}
	later, err := SummarizeIPv4(frags[1].Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !later.Fragment || later.HasPorts {
		t.Errorf("later fragment summary = %+v (ports must be invisible)", later)
	}
}
