package packet

import "testing"

func BenchmarkChecksum1500(b *testing.B) {
	data := make([]byte, 1500)
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		Checksum(data)
	}
}

func BenchmarkTCPMarshal(b *testing.B) {
	src, dst := IP{10, 0, 0, 1}, IP{10, 0, 0, 2}
	s := &TCPSegment{SrcPort: 1, DstPort: 2, Flags: FlagACK, Payload: make([]byte, 1448)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Marshal(src, dst)
	}
}

func BenchmarkTCPUnmarshal(b *testing.B) {
	src, dst := IP{10, 0, 0, 1}, IP{10, 0, 0, 2}
	buf := (&TCPSegment{SrcPort: 1, DstPort: 2, Flags: FlagACK, Payload: make([]byte, 1448)}).Marshal(src, dst)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := UnmarshalTCPSegment(src, dst, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSummarize(b *testing.B) {
	src, dst := IP{10, 0, 0, 1}, IP{10, 0, 0, 2}
	seg := &TCPSegment{SrcPort: 4242, DstPort: 80, Flags: FlagSYN}
	d := NewDatagram(src, dst, ProtoTCP, 1, seg.Marshal(src, dst))
	f := &Frame{Type: EtherTypeIPv4, Payload: d.Marshal()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Summarize(f); err != nil {
			b.Fatal(err)
		}
	}
}
