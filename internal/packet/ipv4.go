package packet

import (
	"encoding/binary"
	"fmt"
)

// Protocol is an IPv4 protocol number.
type Protocol uint8

// Protocol numbers used by the simulator.
const (
	ProtoICMP Protocol = 1
	ProtoTCP  Protocol = 6
	ProtoUDP  Protocol = 17
	// ProtoVPGEncap marks datagrams whose payload is a VPG envelope
	// (an encrypted, authenticated transport segment). 99 is "any
	// private encryption scheme" in the IANA registry.
	ProtoVPGEncap Protocol = 99
)

// String returns the conventional lowercase protocol name.
func (p Protocol) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// IPv4HeaderLen is the length of an IPv4 header without options. The
// simulator never emits options.
const IPv4HeaderLen = 20

// DefaultTTL is the initial time-to-live of packets built by hosts.
const DefaultTTL = 64

// IPv4Header is an IPv4 header without options.
type IPv4Header struct {
	TOS      uint8
	TotalLen int
	ID       uint16
	DontFrag bool
	// MoreFrags and FragOffset carry the fragmentation state; FragOffset
	// is in bytes and must be a multiple of 8.
	MoreFrags  bool
	FragOffset int
	TTL        uint8
	Protocol   Protocol
	Src        IP
	Dst        IP
}

// IsFragment reports whether the header describes a fragment (first or
// later) of a larger datagram.
func (h *IPv4Header) IsFragment() bool { return h.MoreFrags || h.FragOffset > 0 }

// Marshal encodes the header with a correct checksum.
func (h *IPv4Header) Marshal() []byte {
	return h.MarshalTo(make([]byte, 0, IPv4HeaderLen))
}

// MarshalTo appends the encoded header (with a correct checksum) to b
// and returns the extended slice.
func (h *IPv4Header) MarshalTo(b []byte) []byte {
	b, off := grow(b, IPv4HeaderLen)
	p := b[off:]
	p[0] = 0x45 // version 4, IHL 5
	p[1] = h.TOS
	binary.BigEndian.PutUint16(p[2:4], uint16(h.TotalLen))
	binary.BigEndian.PutUint16(p[4:6], h.ID)
	flagsOff := uint16(h.FragOffset / 8)
	if h.DontFrag {
		flagsOff |= 0x4000
	}
	if h.MoreFrags {
		flagsOff |= 0x2000
	}
	binary.BigEndian.PutUint16(p[6:8], flagsOff)
	p[8] = h.TTL
	p[9] = uint8(h.Protocol)
	copy(p[12:16], h.Src[:])
	copy(p[16:20], h.Dst[:])
	binary.BigEndian.PutUint16(p[10:12], Checksum(p[:IPv4HeaderLen]))
	return b
}

// UnmarshalIPv4Header parses and validates an IPv4 header, returning the
// header and the number of header bytes consumed.
func UnmarshalIPv4Header(b []byte) (*IPv4Header, int, error) {
	h, ihl, err := ParseIPv4Header(b)
	if err != nil {
		return nil, 0, err
	}
	return &h, ihl, nil
}

// ParseIPv4Header is the by-value form of UnmarshalIPv4Header, used on
// the per-packet filter path where the header must not escape to the
// heap.
func ParseIPv4Header(b []byte) (IPv4Header, int, error) {
	var h IPv4Header
	if len(b) < IPv4HeaderLen {
		return h, 0, fmt.Errorf("packet: IPv4 header too short (%d bytes)", len(b))
	}
	if b[0]>>4 != 4 {
		return h, 0, fmt.Errorf("packet: not IPv4 (version %d)", b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return h, 0, fmt.Errorf("packet: bad IHL %d", ihl)
	}
	if Checksum(b[:ihl]) != 0 {
		return h, 0, fmt.Errorf("packet: IPv4 header checksum mismatch")
	}
	flagsOff := binary.BigEndian.Uint16(b[6:8])
	h = IPv4Header{
		TOS:        b[1],
		TotalLen:   int(binary.BigEndian.Uint16(b[2:4])),
		ID:         binary.BigEndian.Uint16(b[4:6]),
		DontFrag:   flagsOff&0x4000 != 0,
		MoreFrags:  flagsOff&0x2000 != 0,
		FragOffset: int(flagsOff&0x1fff) * 8,
		TTL:        b[8],
		Protocol:   Protocol(b[9]),
	}
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	if h.TotalLen < ihl || h.TotalLen > len(b) {
		return IPv4Header{}, 0, fmt.Errorf("packet: bad total length %d (buffer %d)", h.TotalLen, len(b))
	}
	return h, ihl, nil
}

// Datagram is a parsed IPv4 datagram: header plus transport payload.
type Datagram struct {
	Header  IPv4Header
	Payload []byte
}

// Marshal encodes the datagram, fixing TotalLen to match the payload.
func (d *Datagram) Marshal() []byte {
	return d.MarshalTo(make([]byte, 0, IPv4HeaderLen+len(d.Payload)))
}

// MarshalTo appends the encoded datagram to b (fixing TotalLen to match
// the payload) and returns the extended slice.
func (d *Datagram) MarshalTo(b []byte) []byte {
	h := d.Header
	h.TotalLen = IPv4HeaderLen + len(d.Payload)
	b = h.MarshalTo(b)
	b, off := grow(b, len(d.Payload))
	copy(b[off:], d.Payload)
	return b
}

// UnmarshalDatagram parses an IPv4 datagram. The payload aliases b and is
// truncated to the header's TotalLen.
func UnmarshalDatagram(b []byte) (*Datagram, error) {
	h, ihl, err := UnmarshalIPv4Header(b)
	if err != nil {
		return nil, err
	}
	return &Datagram{Header: *h, Payload: b[ihl:h.TotalLen]}, nil
}

// NewDatagram builds a datagram with the simulator's defaults (TTL 64,
// don't-fragment) around a transport payload.
func NewDatagram(src, dst IP, proto Protocol, id uint16, payload []byte) *Datagram {
	return &Datagram{
		Header: IPv4Header{
			TotalLen: IPv4HeaderLen + len(payload),
			ID:       id,
			DontFrag: true,
			TTL:      DefaultTTL,
			Protocol: proto,
			Src:      src,
			Dst:      dst,
		},
		Payload: payload,
	}
}
