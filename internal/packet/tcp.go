package packet

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// TCPFlags is the TCP control-bit field.
type TCPFlags uint8

// TCP control bits.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// Has reports whether all bits in f are set.
func (f TCPFlags) Has(flags TCPFlags) bool { return f&flags == flags }

// String lists the set flags, e.g. "SYN|ACK".
func (f TCPFlags) String() string {
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{FlagFIN, "FIN"}, {FlagSYN, "SYN"}, {FlagRST, "RST"},
		{FlagPSH, "PSH"}, {FlagACK, "ACK"}, {FlagURG, "URG"},
	}
	var set []string
	for _, n := range names {
		if f.Has(n.bit) {
			set = append(set, n.name)
		}
	}
	if len(set) == 0 {
		return "none"
	}
	return strings.Join(set, "|")
}

// TCPHeaderLen is the length of a TCP header without options. The
// simulator never emits TCP options.
const TCPHeaderLen = 20

// TCPSegment is a TCP header plus payload.
type TCPSegment struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   TCPFlags
	Window  uint16
	Payload []byte
}

// Marshal encodes the segment with a correct checksum computed over the
// IPv4 pseudo-header for src and dst.
func (s *TCPSegment) Marshal(src, dst IP) []byte {
	return s.MarshalTo(src, dst, make([]byte, 0, TCPHeaderLen+len(s.Payload)))
}

// MarshalTo appends the encoded segment to b and returns the extended
// slice.
func (s *TCPSegment) MarshalTo(src, dst IP, b []byte) []byte {
	b, off := grow(b, TCPHeaderLen+len(s.Payload))
	p := b[off:]
	binary.BigEndian.PutUint16(p[0:2], s.SrcPort)
	binary.BigEndian.PutUint16(p[2:4], s.DstPort)
	binary.BigEndian.PutUint32(p[4:8], s.Seq)
	binary.BigEndian.PutUint32(p[8:12], s.Ack)
	p[12] = (TCPHeaderLen / 4) << 4
	p[13] = uint8(s.Flags)
	binary.BigEndian.PutUint16(p[14:16], s.Window)
	copy(p[TCPHeaderLen:], s.Payload)
	binary.BigEndian.PutUint16(p[16:18], TransportChecksum(src, dst, ProtoTCP, p))
	return b
}

// UnmarshalTCPSegment parses a TCP segment and verifies its checksum
// against the IPv4 pseudo-header. The payload aliases b.
func UnmarshalTCPSegment(src, dst IP, b []byte) (*TCPSegment, error) {
	if len(b) < TCPHeaderLen {
		return nil, fmt.Errorf("packet: TCP segment too short (%d bytes)", len(b))
	}
	dataOff := int(b[12]>>4) * 4
	if dataOff < TCPHeaderLen || dataOff > len(b) {
		return nil, fmt.Errorf("packet: bad TCP data offset %d", dataOff)
	}
	if TransportChecksum(src, dst, ProtoTCP, b) != 0 {
		return nil, fmt.Errorf("packet: TCP checksum mismatch")
	}
	return &TCPSegment{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Seq:     binary.BigEndian.Uint32(b[4:8]),
		Ack:     binary.BigEndian.Uint32(b[8:12]),
		Flags:   TCPFlags(b[13]),
		Window:  binary.BigEndian.Uint16(b[14:16]),
		Payload: b[dataOff:],
	}, nil
}
