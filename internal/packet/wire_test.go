package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChecksumKnownVector(t *testing.T) {
	// Classic example from RFC 1071 discussions.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got, want := Checksum(data), uint16(0x220d); got != want {
		t.Errorf("Checksum = %#04x, want %#04x", got, want)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// An odd final byte is padded with zero.
	odd := Checksum([]byte{0xab})
	padded := Checksum([]byte{0xab, 0x00})
	if odd != padded {
		t.Errorf("odd-length checksum %#04x != padded %#04x", odd, padded)
	}
}

// Property: the checksum of data with its own checksum inserted verifies
// to zero (the standard receive-side check).
func TestChecksumSelfVerifies(t *testing.T) {
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		sum := Checksum(data)
		buf := append(append([]byte(nil), data...), byte(sum>>8), byte(sum))
		return Checksum(buf) == 0
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{
		Dst:     MAC{2, 0, 0, 0, 0, 1},
		Src:     MAC{2, 0, 0, 0, 0, 2},
		Type:    EtherTypeIPv4,
		Payload: []byte("hello ethernet"),
	}
	got, err := UnmarshalFrame(f.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalFrame: %v", err)
	}
	if got.Dst != f.Dst || got.Src != f.Src || got.Type != f.Type || !bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, f)
	}
}

func TestFrameTooShort(t *testing.T) {
	if _, err := UnmarshalFrame(make([]byte, 13)); err == nil {
		t.Error("13-byte frame parsed successfully")
	}
}

func TestFrameLenPadding(t *testing.T) {
	tests := []struct {
		payload int
		want    int
	}{
		{payload: 0, want: 64},
		{payload: 46, want: 64},
		{payload: 47, want: 65},
		{payload: 1500, want: 1518},
	}
	for _, tt := range tests {
		f := &Frame{Payload: make([]byte, tt.payload)}
		if got := f.FrameLen(); got != tt.want {
			t.Errorf("FrameLen(payload=%d) = %d, want %d", tt.payload, got, tt.want)
		}
	}
}

func TestFrameWireLen(t *testing.T) {
	f := &Frame{Payload: make([]byte, 1500)}
	if got := f.WireLen(); got != 1538 {
		t.Errorf("WireLen = %d, want 1538 (1518 + preamble/IFG)", got)
	}
}

func TestFrameClone(t *testing.T) {
	f := &Frame{Payload: []byte{1, 2, 3}}
	c := f.Clone()
	c.Payload[0] = 9
	if f.Payload[0] != 1 {
		t.Error("Clone shares payload storage")
	}
}

func TestIPv4HeaderRoundTrip(t *testing.T) {
	h := &IPv4Header{
		TOS:      0x10,
		TotalLen: 120,
		ID:       0xbeef,
		DontFrag: true,
		TTL:      64,
		Protocol: ProtoTCP,
		Src:      MustIP("10.0.0.1"),
		Dst:      MustIP("10.0.0.2"),
	}
	b := h.Marshal()
	got, n, err := UnmarshalIPv4Header(append(b, make([]byte, 100)...))
	if err != nil {
		t.Fatalf("UnmarshalIPv4Header: %v", err)
	}
	if n != IPv4HeaderLen {
		t.Errorf("consumed %d bytes, want %d", n, IPv4HeaderLen)
	}
	if *got != *h {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestIPv4HeaderChecksumValidation(t *testing.T) {
	h := &IPv4Header{TotalLen: 20, TTL: 64, Protocol: ProtoUDP,
		Src: MustIP("1.1.1.1"), Dst: MustIP("2.2.2.2")}
	b := h.Marshal()
	b[8] ^= 0xff // corrupt TTL
	if _, _, err := UnmarshalIPv4Header(b); err == nil {
		t.Error("corrupted header parsed successfully")
	}
}

func TestIPv4RejectsNonIPv4(t *testing.T) {
	b := make([]byte, 20)
	b[0] = 0x65 // version 6
	if _, _, err := UnmarshalIPv4Header(b); err == nil {
		t.Error("version-6 header parsed as IPv4")
	}
}

func TestDatagramRoundTrip(t *testing.T) {
	d := NewDatagram(MustIP("10.0.0.1"), MustIP("10.0.0.2"), ProtoUDP, 7, []byte("payload"))
	got, err := UnmarshalDatagram(d.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalDatagram: %v", err)
	}
	if got.Header.Src != d.Header.Src || got.Header.Dst != d.Header.Dst ||
		got.Header.Protocol != ProtoUDP || !bytes.Equal(got.Payload, d.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, d)
	}
}

func TestDatagramTotalLenTruncates(t *testing.T) {
	d := NewDatagram(MustIP("1.1.1.1"), MustIP("2.2.2.2"), ProtoUDP, 0, []byte("abcdef"))
	b := d.Marshal()
	// Trailing garbage beyond TotalLen (e.g. Ethernet pad bytes) must be dropped.
	b = append(b, 0xde, 0xad)
	got, err := UnmarshalDatagram(b)
	if err != nil {
		t.Fatalf("UnmarshalDatagram: %v", err)
	}
	if string(got.Payload) != "abcdef" {
		t.Errorf("payload = %q, want %q", got.Payload, "abcdef")
	}
}

func TestTCPSegmentRoundTrip(t *testing.T) {
	src, dst := MustIP("10.0.0.1"), MustIP("10.0.0.2")
	s := &TCPSegment{
		SrcPort: 4242, DstPort: 80,
		Seq: 1000, Ack: 2000,
		Flags: FlagSYN | FlagACK, Window: 65535,
		Payload: []byte("GET /"),
	}
	got, err := UnmarshalTCPSegment(src, dst, s.Marshal(src, dst))
	if err != nil {
		t.Fatalf("UnmarshalTCPSegment: %v", err)
	}
	if got.SrcPort != s.SrcPort || got.DstPort != s.DstPort || got.Seq != s.Seq ||
		got.Ack != s.Ack || got.Flags != s.Flags || got.Window != s.Window ||
		!bytes.Equal(got.Payload, s.Payload) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
}

func TestTCPChecksumCoversPseudoHeader(t *testing.T) {
	src, dst := MustIP("10.0.0.1"), MustIP("10.0.0.2")
	s := &TCPSegment{SrcPort: 1, DstPort: 2, Flags: FlagSYN}
	b := s.Marshal(src, dst)
	// Same bytes with a different destination IP must fail verification.
	if _, err := UnmarshalTCPSegment(src, MustIP("10.0.0.3"), b); err == nil {
		t.Error("TCP checksum did not bind destination address")
	}
}

func TestTCPFlagsString(t *testing.T) {
	tests := []struct {
		flags TCPFlags
		want  string
	}{
		{flags: FlagSYN, want: "SYN"},
		{flags: FlagSYN | FlagACK, want: "SYN|ACK"},
		{flags: FlagFIN | FlagACK, want: "FIN|ACK"},
		{flags: 0, want: "none"},
	}
	for _, tt := range tests {
		if got := tt.flags.String(); got != tt.want {
			t.Errorf("(%d).String() = %q, want %q", tt.flags, got, tt.want)
		}
	}
}

func TestUDPDatagramRoundTrip(t *testing.T) {
	src, dst := MustIP("10.0.0.1"), MustIP("10.0.0.2")
	u := &UDPDatagram{SrcPort: 5001, DstPort: 5002, Payload: []byte("iperf data")}
	got, err := UnmarshalUDPDatagram(src, dst, u.Marshal(src, dst))
	if err != nil {
		t.Fatalf("UnmarshalUDPDatagram: %v", err)
	}
	if got.SrcPort != u.SrcPort || got.DstPort != u.DstPort || !bytes.Equal(got.Payload, u.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, u)
	}
}

func TestUDPChecksumTamperDetected(t *testing.T) {
	src, dst := MustIP("10.0.0.1"), MustIP("10.0.0.2")
	u := &UDPDatagram{SrcPort: 1, DstPort: 2, Payload: []byte("xyz")}
	b := u.Marshal(src, dst)
	b[len(b)-1] ^= 0x01
	if _, err := UnmarshalUDPDatagram(src, dst, b); err == nil {
		t.Error("tampered UDP datagram parsed successfully")
	}
}

func TestICMPRoundTrip(t *testing.T) {
	m := &ICMPMessage{Type: ICMPEchoRequest, ID: 77, Seq: 3, Payload: []byte("ping")}
	got, err := UnmarshalICMPMessage(m.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalICMPMessage: %v", err)
	}
	if got.Type != m.Type || got.ID != m.ID || got.Seq != m.Seq || !bytes.Equal(got.Payload, m.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, m)
	}
}

func TestICMPChecksumTamperDetected(t *testing.T) {
	m := &ICMPMessage{Type: ICMPEchoReply, ID: 1}
	b := m.Marshal()
	b[0] = ICMPEchoRequest
	if _, err := UnmarshalICMPMessage(b); err == nil {
		t.Error("tampered ICMP message parsed successfully")
	}
}

// Property: TCP segments round-trip for arbitrary field values.
func TestTCPRoundTripProperty(t *testing.T) {
	f := func(srcPort, dstPort uint16, seq, ack uint32, flags uint8, window uint16, payload []byte) bool {
		src, dst := IP{10, 0, 0, 1}, IP{10, 0, 0, 2}
		if len(payload) > MaxPayload-IPv4HeaderLen-TCPHeaderLen {
			payload = payload[:MaxPayload-IPv4HeaderLen-TCPHeaderLen]
		}
		s := &TCPSegment{
			SrcPort: srcPort, DstPort: dstPort, Seq: seq, Ack: ack,
			Flags: TCPFlags(flags & 0x3f), Window: window, Payload: payload,
		}
		got, err := UnmarshalTCPSegment(src, dst, s.Marshal(src, dst))
		if err != nil {
			return false
		}
		return got.SrcPort == s.SrcPort && got.DstPort == s.DstPort &&
			got.Seq == s.Seq && got.Ack == s.Ack && got.Flags == s.Flags &&
			got.Window == s.Window && bytes.Equal(got.Payload, s.Payload)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: UDP datagrams round-trip for arbitrary payloads.
func TestUDPRoundTripProperty(t *testing.T) {
	f := func(srcPort, dstPort uint16, payload []byte) bool {
		src, dst := IP{192, 0, 2, 1}, IP{192, 0, 2, 2}
		u := &UDPDatagram{SrcPort: srcPort, DstPort: dstPort, Payload: payload}
		got, err := UnmarshalUDPDatagram(src, dst, u.Marshal(src, dst))
		if err != nil {
			return false
		}
		return got.SrcPort == u.SrcPort && got.DstPort == u.DstPort &&
			bytes.Equal(got.Payload, u.Payload)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSummarizeTCP(t *testing.T) {
	src, dst := MustIP("10.0.0.1"), MustIP("10.0.0.2")
	seg := &TCPSegment{SrcPort: 4242, DstPort: 80, Flags: FlagSYN}
	d := NewDatagram(src, dst, ProtoTCP, 1, seg.Marshal(src, dst))
	f := &Frame{Type: EtherTypeIPv4, Payload: d.Marshal()}
	s, err := Summarize(f)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.Proto != ProtoTCP || s.Src != src || s.Dst != dst ||
		s.SrcPort != 4242 || s.DstPort != 80 || !s.Flags.Has(FlagSYN) || !s.HasPorts {
		t.Errorf("bad summary: %+v", s)
	}
	if s.Sealed {
		t.Error("plain IPv4 frame summarized as sealed")
	}
}

func TestSummarizeUDPAndICMP(t *testing.T) {
	src, dst := MustIP("10.0.0.1"), MustIP("10.0.0.2")
	u := &UDPDatagram{SrcPort: 53, DstPort: 5353, Payload: []byte("x")}
	d := NewDatagram(src, dst, ProtoUDP, 1, u.Marshal(src, dst))
	s, err := Summarize(&Frame{Type: EtherTypeIPv4, Payload: d.Marshal()})
	if err != nil {
		t.Fatalf("Summarize UDP: %v", err)
	}
	if s.Proto != ProtoUDP || s.SrcPort != 53 || s.DstPort != 5353 {
		t.Errorf("bad UDP summary: %+v", s)
	}

	m := &ICMPMessage{Type: ICMPEchoRequest}
	d2 := NewDatagram(src, dst, ProtoICMP, 2, m.Marshal())
	s2, err := Summarize(&Frame{Type: EtherTypeIPv4, Payload: d2.Marshal()})
	if err != nil {
		t.Fatalf("Summarize ICMP: %v", err)
	}
	if s2.HasPorts {
		t.Error("ICMP summary claims ports")
	}
	if s2.Proto != ProtoICMP {
		t.Errorf("proto = %v, want icmp", s2.Proto)
	}
}

func TestSummarizeRejectsUnknownEtherType(t *testing.T) {
	if _, err := Summarize(&Frame{Type: 0x0806}); err == nil {
		t.Error("ARP frame summarized successfully")
	}
}

func TestSummarizeTruncatedTransport(t *testing.T) {
	src, dst := MustIP("10.0.0.1"), MustIP("10.0.0.2")
	d := NewDatagram(src, dst, ProtoTCP, 1, make([]byte, 5)) // < TCP header
	if _, err := Summarize(&Frame{Type: EtherTypeIPv4, Payload: d.Marshal()}); err == nil {
		t.Error("truncated TCP summarized successfully")
	}
}
