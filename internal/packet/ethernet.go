package packet

import (
	"encoding/binary"
	"fmt"
)

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// EtherTypes carried on the simulated network.
const (
	EtherTypeIPv4 EtherType = 0x0800
	// EtherTypeVPG marks frames sealed by a virtual private group. Real
	// ADF cards carry VPG data in-band; we use a dedicated EtherType so
	// sealed frames are unambiguous on the wire.
	EtherTypeVPG EtherType = 0x88b7 // OUI extended ethertype, locally chosen
)

// Ethernet layer constants, in bytes.
const (
	EthernetHeaderLen = 14
	EthernetFCSLen    = 4
	// EthernetOverhead is the per-frame wire overhead outside the
	// header+payload+FCS: 7-byte preamble, 1-byte SFD, 12-byte minimum
	// inter-frame gap.
	EthernetOverhead = 20
	// MaxPayload is the standard Ethernet MTU.
	MaxPayload = 1500
	// MinFrameLen is the minimum Ethernet frame length (header + payload
	// + FCS); shorter frames are padded on the wire.
	MinFrameLen = 64
	// MaxFrameLen is the maximum standard frame length: 14-byte header +
	// 1500-byte payload + 4-byte FCS = 1518, the size the paper floods
	// with in the bandwidth experiments.
	MaxFrameLen = EthernetHeaderLen + MaxPayload + EthernetFCSLen
)

// Frame is an Ethernet II frame.
type Frame struct {
	Dst     MAC
	Src     MAC
	Type    EtherType
	Payload []byte

	// TraceID is simulator-side metadata, not part of the wire
	// format: a nonzero value marks the frame as carrying a sampled
	// packet-lifecycle trace (internal/obs/tracing). Marshal ignores
	// it; Clone propagates it.
	TraceID uint64
}

// FrameLen returns the frame length counted the way the paper counts it:
// header + payload + FCS, padded to the Ethernet minimum.
func (f *Frame) FrameLen() int {
	n := EthernetHeaderLen + len(f.Payload) + EthernetFCSLen
	if n < MinFrameLen {
		n = MinFrameLen
	}
	return n
}

// WireLen returns the number of byte times the frame occupies on the
// medium, including preamble and inter-frame gap. This is the quantity
// that bounds achievable frame rates on a 100 Mbps link.
func (f *Frame) WireLen() int { return f.FrameLen() + EthernetOverhead }

// Marshal encodes the frame header and payload (FCS is not materialized;
// the simulated medium does not corrupt frames).
func (f *Frame) Marshal() []byte {
	return f.MarshalTo(make([]byte, 0, EthernetHeaderLen+len(f.Payload)))
}

// MarshalTo appends the encoded frame to b and returns the extended
// slice. Passing a scratch buffer with sufficient capacity makes the
// encode allocation-free.
func (f *Frame) MarshalTo(b []byte) []byte {
	b, off := grow(b, EthernetHeaderLen+len(f.Payload))
	p := b[off:]
	copy(p[0:6], f.Dst[:])
	copy(p[6:12], f.Src[:])
	binary.BigEndian.PutUint16(p[12:14], uint16(f.Type))
	copy(p[14:], f.Payload)
	return b
}

// grow extends b by n bytes (growing capacity only when needed) and
// returns the extended slice plus the offset of the new region.
func grow(b []byte, n int) ([]byte, int) {
	off := len(b)
	if cap(b)-off < n {
		nb := make([]byte, off+n, max(2*cap(b), off+n))
		copy(nb, b)
		return nb, off
	}
	b = b[:off+n]
	clear(b[off:])
	return b, off
}

// UnmarshalFrame parses an encoded Ethernet frame. The returned frame's
// payload aliases b.
func UnmarshalFrame(b []byte) (*Frame, error) {
	if len(b) < EthernetHeaderLen {
		return nil, fmt.Errorf("packet: ethernet frame too short (%d bytes)", len(b))
	}
	f := &Frame{Type: EtherType(binary.BigEndian.Uint16(b[12:14])), Payload: b[14:]}
	copy(f.Dst[:], b[0:6])
	copy(f.Src[:], b[6:12])
	return f, nil
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	c := *f
	c.Payload = append([]byte(nil), f.Payload...)
	return &c
}
