package packet

import (
	"testing"
	"testing/quick"
)

func TestParseIP(t *testing.T) {
	tests := []struct {
		give    string
		want    IP
		wantErr bool
	}{
		{give: "10.0.0.1", want: IP{10, 0, 0, 1}},
		{give: "255.255.255.255", want: IP{255, 255, 255, 255}},
		{give: "0.0.0.0", want: IP{}},
		{give: "192.168.1.42", want: IP{192, 168, 1, 42}},
		{give: "1.2.3", wantErr: true},
		{give: "1.2.3.4.5", wantErr: true},
		{give: "256.0.0.1", wantErr: true},
		{give: "a.b.c.d", wantErr: true},
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got, err := ParseIP(tt.give)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("ParseIP(%q) = %v, want error", tt.give, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseIP(%q): %v", tt.give, err)
			}
			if got != tt.want {
				t.Errorf("ParseIP(%q) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestIPStringRoundTrip(t *testing.T) {
	f := func(a, b, c, d byte) bool {
		ip := IP{a, b, c, d}
		back, err := ParseIP(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIPUint32RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		return IPFromUint32(v).Uint32() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseMAC(t *testing.T) {
	m, err := ParseMAC("02:00:00:aa:bb:cc")
	if err != nil {
		t.Fatalf("ParseMAC: %v", err)
	}
	want := MAC{0x02, 0, 0, 0xaa, 0xbb, 0xcc}
	if m != want {
		t.Errorf("got %v, want %v", m, want)
	}
	if m.String() != "02:00:00:aa:bb:cc" {
		t.Errorf("String() = %q", m.String())
	}
	for _, bad := range []string{"", "02:00:00:aa:bb", "zz:00:00:aa:bb:cc", "02-00-00-aa-bb-cc"} {
		if _, err := ParseMAC(bad); err == nil {
			t.Errorf("ParseMAC(%q) succeeded, want error", bad)
		}
	}
}

func TestBroadcast(t *testing.T) {
	if !Broadcast.IsBroadcast() {
		t.Error("Broadcast.IsBroadcast() = false")
	}
	if (MAC{1, 2, 3, 4, 5, 6}).IsBroadcast() {
		t.Error("unicast address reported as broadcast")
	}
}

func TestPrefixContains(t *testing.T) {
	tests := []struct {
		prefix string
		ip     string
		want   bool
	}{
		{prefix: "10.0.0.0/8", ip: "10.1.2.3", want: true},
		{prefix: "10.0.0.0/8", ip: "11.0.0.1", want: false},
		{prefix: "192.168.1.0/24", ip: "192.168.1.255", want: true},
		{prefix: "192.168.1.0/24", ip: "192.168.2.0", want: false},
		{prefix: "0.0.0.0/0", ip: "203.0.113.7", want: true},
		{prefix: "10.0.0.5/32", ip: "10.0.0.5", want: true},
		{prefix: "10.0.0.5/32", ip: "10.0.0.6", want: false},
		{prefix: "172.16.0.0/12", ip: "172.31.255.255", want: true},
		{prefix: "172.16.0.0/12", ip: "172.32.0.0", want: false},
	}
	for _, tt := range tests {
		t.Run(tt.prefix+"_"+tt.ip, func(t *testing.T) {
			p := MustPrefix(tt.prefix)
			if got := p.Contains(MustIP(tt.ip)); got != tt.want {
				t.Errorf("%v.Contains(%v) = %v, want %v", p, tt.ip, got, tt.want)
			}
		})
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("10.0.0.1")
	if err != nil {
		t.Fatalf("ParsePrefix bare addr: %v", err)
	}
	if p.Bits != 32 {
		t.Errorf("bare address parsed as /%d, want /32", p.Bits)
	}
	for _, bad := range []string{"10.0.0.0/33", "10.0.0.0/-1", "10.0.0.0/x", "10.0.0/8"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded, want error", bad)
		}
	}
}

func TestNewPrefixValidates(t *testing.T) {
	if _, err := NewPrefix(IP{10}, 33); err == nil {
		t.Error("NewPrefix(33 bits) succeeded")
	}
	if _, err := NewPrefix(IP{10}, -1); err == nil {
		t.Error("NewPrefix(-1 bits) succeeded")
	}
	if _, err := NewPrefix(IP{10}, 0); err != nil {
		t.Errorf("NewPrefix(0 bits): %v", err)
	}
}

// Property: a /32 prefix contains exactly its own address.
func TestPrefix32Property(t *testing.T) {
	f := func(v, w uint32) bool {
		p := Prefix{Addr: IPFromUint32(v), Bits: 32}
		return p.Contains(IPFromUint32(v)) && (v == w || !p.Contains(IPFromUint32(w)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
