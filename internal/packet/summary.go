package packet

import (
	"encoding/binary"
	"fmt"
)

// Summary is the cheap 5-tuple view of a frame that packet filters match
// on. It is extracted without verifying transport checksums, mirroring
// what a filtering NIC inspects before deciding a packet's fate.
type Summary struct {
	Proto    Protocol
	Src, Dst IP
	SrcPort  uint16 // zero when HasPorts is false
	DstPort  uint16
	HasPorts bool // true for TCP and UDP (first fragments included)
	Flags    TCPFlags
	IPLen    int  // IPv4 total length
	Sealed   bool // frame carried EtherTypeVPG (an encrypted VPG frame)
	// Fragment marks IP fragments. Non-first fragments carry no
	// transport header, so port-based rules cannot match them — the
	// classic stateless-filter blind spot (RFC 1858).
	Fragment bool
}

// String renders the tuple for logs, e.g. "tcp 10.0.0.1:80 > 10.0.0.2:4242".
func (s Summary) String() string {
	if !s.HasPorts {
		return fmt.Sprintf("%v %v > %v", s.Proto, s.Src, s.Dst)
	}
	return fmt.Sprintf("%v %v:%d > %v:%d", s.Proto, s.Src, s.SrcPort, s.Dst, s.DstPort)
}

// Summarize extracts the filterable 5-tuple from a frame carrying IPv4 (or
// a VPG-sealed envelope whose outer header is IPv4-shaped).
func Summarize(f *Frame) (Summary, error) {
	var sealed bool
	switch f.Type {
	case EtherTypeIPv4:
	case EtherTypeVPG:
		sealed = true
	default:
		return Summary{}, fmt.Errorf("packet: cannot summarize ethertype %#04x", uint16(f.Type))
	}
	s, err := SummarizeIPv4(f.Payload)
	s.Sealed = sealed
	return s, err
}

// SummarizeIPv4 extracts the filterable 5-tuple from a raw IPv4 packet.
func SummarizeIPv4(b []byte) (Summary, error) {
	var s Summary
	h, ihl, err := ParseIPv4Header(b)
	if err != nil {
		return s, err
	}
	return summarize(&h, h.TotalLen, b[ihl:h.TotalLen])
}

// SummarizeDatagram extracts the filterable 5-tuple straight from a
// parsed datagram, skipping the marshal/reparse round-trip (and its
// allocations) that Summarize over the wire bytes would cost. The
// result is identical to summarizing the datagram's marshaled form.
func SummarizeDatagram(d *Datagram) (Summary, error) {
	// Marshal fixes TotalLen to the option-free header plus payload, so
	// the wire-identical length is reconstructed the same way here.
	return summarize(&d.Header, IPv4HeaderLen+len(d.Payload), d.Payload)
}

func summarize(h *IPv4Header, ipLen int, transport []byte) (Summary, error) {
	s := Summary{
		Proto:    h.Protocol,
		Src:      h.Src,
		Dst:      h.Dst,
		IPLen:    ipLen,
		Fragment: h.IsFragment(),
	}
	if h.FragOffset > 0 {
		// Later fragments: no transport header to inspect.
		return s, nil
	}
	switch h.Protocol {
	case ProtoTCP:
		if len(transport) < TCPHeaderLen {
			return s, fmt.Errorf("packet: truncated TCP header")
		}
		s.HasPorts = true
		s.SrcPort = binary.BigEndian.Uint16(transport[0:2])
		s.DstPort = binary.BigEndian.Uint16(transport[2:4])
		s.Flags = TCPFlags(transport[13])
	case ProtoUDP:
		if len(transport) < UDPHeaderLen {
			return s, fmt.Errorf("packet: truncated UDP header")
		}
		s.HasPorts = true
		s.SrcPort = binary.BigEndian.Uint16(transport[0:2])
		s.DstPort = binary.BigEndian.Uint16(transport[2:4])
	}
	return s, nil
}
