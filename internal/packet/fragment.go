package packet

import "fmt"

// Fragment splits a datagram into fragments whose IP payload fits mtu
// bytes (mtu counts the IP datagram size, header included). Fragment
// boundaries fall on 8-byte multiples, per IPv4 rules. A datagram that
// already fits is returned unchanged as a single element.
func Fragment(d *Datagram, mtu int) ([]*Datagram, error) {
	maxPayload := mtu - IPv4HeaderLen
	if maxPayload < 8 {
		return nil, fmt.Errorf("packet: mtu %d leaves no room for fragment payload", mtu)
	}
	if d.Header.DontFrag && len(d.Payload) > maxPayload {
		return nil, fmt.Errorf("packet: datagram needs fragmentation but DF is set")
	}
	if len(d.Payload) <= maxPayload {
		return []*Datagram{d}, nil
	}
	chunk := maxPayload - maxPayload%8
	var frags []*Datagram
	for off := 0; off < len(d.Payload); off += chunk {
		end := off + chunk
		more := true
		if end >= len(d.Payload) {
			end = len(d.Payload)
			more = false
		}
		h := d.Header
		h.MoreFrags = more
		h.FragOffset = off
		h.DontFrag = false
		h.TotalLen = IPv4HeaderLen + (end - off)
		frags = append(frags, &Datagram{Header: h, Payload: d.Payload[off:end]})
	}
	return frags, nil
}

// Reassembler rebuilds datagrams from fragments. It bounds both the
// number of concurrent reassemblies and the bytes buffered per datagram,
// so fragment floods exhaust a fixed budget rather than memory.
type Reassembler struct {
	limit    int
	maxBytes int
	pending  map[reasmKey]*reasmState
	order    []reasmKey // FIFO eviction

	completed uint64
	evicted   uint64
	oversize  uint64
}

type reasmKey struct {
	src, dst IP
	id       uint16
	proto    Protocol
}

type reasmState struct {
	frags   []*Datagram
	bytes   int
	gotLast bool
}

// NewReassembler creates a reassembler holding at most limit concurrent
// datagrams of up to maxBytes each (zeros choose 64 and 65535).
func NewReassembler(limit, maxBytes int) *Reassembler {
	if limit <= 0 {
		limit = 64
	}
	if maxBytes <= 0 {
		maxBytes = 65535
	}
	return &Reassembler{limit: limit, maxBytes: maxBytes, pending: make(map[reasmKey]*reasmState)}
}

// Stats reports completed reassemblies, evictions (older in-progress
// datagrams displaced by new ones), and oversize aborts.
func (r *Reassembler) Stats() (completed, evicted, oversize uint64) {
	return r.completed, r.evicted, r.oversize
}

// Pending returns the number of in-progress reassemblies.
func (r *Reassembler) Pending() int { return len(r.pending) }

// Add offers a fragment. When the fragment completes its datagram, the
// reassembled datagram is returned; otherwise nil.
func (r *Reassembler) Add(d *Datagram) *Datagram {
	key := reasmKey{src: d.Header.Src, dst: d.Header.Dst, id: d.Header.ID, proto: d.Header.Protocol}
	st := r.pending[key]
	if st == nil {
		if len(r.pending) >= r.limit {
			// Evict the oldest in-progress reassembly.
			oldest := r.order[0]
			r.order = r.order[1:]
			delete(r.pending, oldest)
			r.evicted++
		}
		st = &reasmState{}
		r.pending[key] = st
		r.order = append(r.order, key)
	}
	st.frags = append(st.frags, d)
	st.bytes += len(d.Payload)
	if !d.Header.MoreFrags {
		st.gotLast = true
	}
	if st.bytes > r.maxBytes {
		r.oversize++
		r.drop(key)
		return nil
	}
	if !st.gotLast {
		return nil
	}
	whole := r.assemble(st)
	if whole == nil {
		return nil // holes remain
	}
	r.drop(key)
	r.completed++
	return whole
}

func (r *Reassembler) drop(key reasmKey) {
	delete(r.pending, key)
	for i, k := range r.order {
		if k == key {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// assemble returns the reconstructed datagram if the fragments cover a
// contiguous range from offset zero through the final fragment.
func (r *Reassembler) assemble(st *reasmState) *Datagram {
	var total int
	for _, f := range st.frags {
		if !f.Header.MoreFrags {
			total = f.Header.FragOffset + len(f.Payload)
		}
	}
	if total == 0 {
		return nil
	}
	payload := make([]byte, total)
	covered := make([]bool, total)
	var first *Datagram
	for _, f := range st.frags {
		if f.Header.FragOffset == 0 {
			first = f
		}
		end := f.Header.FragOffset + len(f.Payload)
		if end > total {
			return nil // inconsistent lengths
		}
		copy(payload[f.Header.FragOffset:end], f.Payload)
		for i := f.Header.FragOffset; i < end; i++ {
			covered[i] = true
		}
	}
	if first == nil {
		return nil
	}
	for _, c := range covered {
		if !c {
			return nil
		}
	}
	h := first.Header
	h.MoreFrags = false
	h.FragOffset = 0
	h.TotalLen = IPv4HeaderLen + total
	return &Datagram{Header: h, Payload: payload}
}
