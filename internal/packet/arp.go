package packet

import (
	"encoding/binary"
	"fmt"
)

// EtherTypeARP identifies ARP frames.
const EtherTypeARP EtherType = 0x0806

// ARP operation codes.
const (
	ARPRequest = 1
	ARPReply   = 2
)

// arpLen is the size of an Ethernet/IPv4 ARP message.
const arpLen = 28

// ARPMessage is an Ethernet/IPv4 ARP request or reply.
type ARPMessage struct {
	Op        uint16
	SenderMAC MAC
	SenderIP  IP
	TargetMAC MAC
	TargetIP  IP
}

// Marshal encodes the message in the standard wire layout.
func (m *ARPMessage) Marshal() []byte {
	b := make([]byte, arpLen)
	binary.BigEndian.PutUint16(b[0:2], 1)      // htype: Ethernet
	binary.BigEndian.PutUint16(b[2:4], 0x0800) // ptype: IPv4
	b[4] = 6                                   // hlen
	b[5] = 4                                   // plen
	binary.BigEndian.PutUint16(b[6:8], m.Op)
	copy(b[8:14], m.SenderMAC[:])
	copy(b[14:18], m.SenderIP[:])
	copy(b[18:24], m.TargetMAC[:])
	copy(b[24:28], m.TargetIP[:])
	return b
}

// UnmarshalARPMessage parses an ARP message.
func UnmarshalARPMessage(b []byte) (*ARPMessage, error) {
	if len(b) < arpLen {
		return nil, fmt.Errorf("packet: ARP message too short (%d bytes)", len(b))
	}
	if binary.BigEndian.Uint16(b[0:2]) != 1 || binary.BigEndian.Uint16(b[2:4]) != 0x0800 {
		return nil, fmt.Errorf("packet: unsupported ARP hardware/protocol type")
	}
	m := &ARPMessage{Op: binary.BigEndian.Uint16(b[6:8])}
	copy(m.SenderMAC[:], b[8:14])
	copy(m.SenderIP[:], b[14:18])
	copy(m.TargetMAC[:], b[18:24])
	copy(m.TargetIP[:], b[24:28])
	return m, nil
}
