package policy

import (
	"strings"
	"testing"

	"barbican/internal/fw"
	"barbican/internal/packet"
)

func TestParseBasicPolicy(t *testing.T) {
	text := `
# protect the web server
allow in proto tcp from any to 10.0.0.2/32 port 80  # web
allow in proto tcp from any to 10.0.0.2/32 port 443
deny in proto udp from 10.0.0.0/8 to any
allow out proto udp from 10.0.0.2 port 1024-65535 to any port 53
default deny
`
	rs, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if rs.Len() != 4 {
		t.Fatalf("rules = %d, want 4", rs.Len())
	}
	if rs.Default() != fw.Deny {
		t.Error("default != deny")
	}
	r := rs.Rule(1)
	if r.Name != "web" || r.Action != fw.Allow || r.Direction != fw.In ||
		r.Proto != packet.ProtoTCP || r.DstPorts != fw.Port(80) {
		t.Errorf("rule 1 = %+v", r)
	}
	if got := rs.Rule(1).Dst.String(); got != "10.0.0.2/32" {
		t.Errorf("rule 1 dst = %s", got)
	}
	r4 := rs.Rule(4)
	if r4.SrcPorts != fw.Ports(1024, 65535) || r4.DstPorts != fw.Port(53) {
		t.Errorf("rule 4 ports = %v / %v", r4.SrcPorts, r4.DstPorts)
	}
	// Bare address parses as /32.
	if r4.Src.Bits != 32 {
		t.Errorf("bare address bits = %d", r4.Src.Bits)
	}
}

func TestParseVPGRule(t *testing.T) {
	rs, err := Parse("allow in vpg psq from 10.0.0.0/24 to 10.0.0.2/32\ndefault deny\n")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rule(1).VPG != "psq" {
		t.Errorf("VPG = %q", rs.Rule(1).VPG)
	}
}

func TestParseNumericProtocol(t *testing.T) {
	rs, err := Parse("deny in proto 47 from any to any\ndefault allow\n")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rule(1).Proto != packet.Protocol(47) {
		t.Errorf("proto = %v", rs.Rule(1).Proto)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		text string
		want string
	}{
		{name: "no default", text: "allow in from any to any\n", want: "missing \"default"},
		{name: "bad action", text: "permit in from any to any\ndefault deny", want: "unknown action"},
		{name: "bad direction", text: "allow sideways from any to any\ndefault deny", want: "unknown direction"},
		{name: "bad proto", text: "allow in proto quic from any to any\ndefault deny", want: "unknown protocol"},
		{name: "missing to", text: "allow in from any\ndefault deny", want: `expected "to"`},
		{name: "bad port", text: "allow in proto tcp from any to any port http\ndefault deny", want: "bad port"},
		{name: "trailing", text: "allow in from any to any extra\ndefault deny", want: "trailing"},
		{name: "double default", text: "default deny\ndefault allow", want: "duplicate default"},
		{name: "bad cidr", text: "allow in from 10.0.0.0/40 to any\ndefault deny", want: "invalid prefix"},
		{name: "vpg with ports", text: "allow in vpg g from any to any port 80\ndefault deny", want: "port match requires"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.text)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("Parse = %v, want error containing %q", err, tt.want)
			}
		})
	}
}

func TestParseReportsLineNumbers(t *testing.T) {
	_, err := Parse("allow in from any to any\nbogus line here\ndefault deny\n")
	var pe *ParseError
	if !asParseError(err, &pe) {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 2 {
		t.Errorf("line = %d, want 2", pe.Line)
	}
}

func asParseError(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

func TestFormatParseRoundTrip(t *testing.T) {
	rules := []fw.Rule{
		{Name: "web", Action: fw.Allow, Direction: fw.In, Proto: packet.ProtoTCP,
			Dst: packet.MustPrefix("10.0.0.2/32"), DstPorts: fw.Port(80)},
		{Action: fw.Deny, Direction: fw.Both, Proto: packet.ProtoICMP},
		{Name: "g-in", Action: fw.Allow, Direction: fw.In, VPG: "g",
			Src: packet.MustPrefix("10.0.0.0/24")},
		{Action: fw.Allow, Direction: fw.Out, Proto: packet.ProtoUDP,
			SrcPorts: fw.Ports(1024, 65535), DstPorts: fw.Port(53)},
	}
	rs := fw.MustRuleSet(fw.Deny, rules...)
	back, err := Parse(Format(rs))
	if err != nil {
		t.Fatalf("round trip parse: %v", err)
	}
	if back.Len() != rs.Len() || back.Default() != rs.Default() {
		t.Fatalf("round trip shape mismatch: %d/%v vs %d/%v",
			back.Len(), back.Default(), rs.Len(), rs.Default())
	}
	for i := 1; i <= rs.Len(); i++ {
		a, b := rs.Rule(i), back.Rule(i)
		if a.Action != b.Action || a.Direction != b.Direction || a.Proto != b.Proto ||
			a.Src != b.Src || a.Dst != b.Dst || a.SrcPorts != b.SrcPorts ||
			a.DstPorts != b.DstPorts || a.VPG != b.VPG {
			t.Errorf("rule %d mismatch:\n a=%+v\n b=%+v", i, a, b)
		}
	}
}

func TestOraclePolicyNeedsDeepRuleSet(t *testing.T) {
	// The paper cites 3Com's recommended Oracle protection needing at
	// least 31 rules; our shipped example policy must be that deep.
	rs, err := Parse(OraclePolicy)
	if err != nil {
		t.Fatalf("OraclePolicy: %v", err)
	}
	if rs.Len() < 31 {
		t.Errorf("Oracle policy has %d rules, want >= 31", rs.Len())
	}
}
