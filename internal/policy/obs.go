package policy

import "barbican/internal/obs"

// PublishMetrics registers the firewall agent's counters with the
// registry as collector closures.
func (a *Agent) PublishMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.MustRegisterFunc("policy_agent_installs_total", "Policies installed on the card.",
		obs.KindCounter, func() float64 { return float64(a.stats.Installs) }, labels...)
	reg.MustRegisterFunc("policy_agent_auth_fails_total", "Pushes rejected for bad signatures.",
		obs.KindCounter, func() float64 { return float64(a.stats.AuthFails) }, labels...)
	reg.MustRegisterFunc("policy_agent_parse_fails_total", "Pushes rejected as unparseable.",
		obs.KindCounter, func() float64 { return float64(a.stats.ParseFails) }, labels...)
	reg.MustRegisterFunc("policy_agent_stale_drops_total", "Pushes older than the installed version.",
		obs.KindCounter, func() float64 { return float64(a.stats.StaleDrops) }, labels...)
	reg.MustRegisterFunc("policy_agent_restarts_total", "Agent restarts (EFW lockup recovery).",
		obs.KindCounter, func() float64 { return float64(a.stats.Restarts) }, labels...)
	reg.MustRegisterFunc("policy_agent_installed_version", "Installed policy version.",
		obs.KindGauge, func() float64 { return float64(a.installedVersion) }, labels...)
}
