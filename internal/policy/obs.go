package policy

import "barbican/internal/obs"

// PublishMetrics registers the firewall agent's counters with the
// registry as collector closures.
func (a *Agent) PublishMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.MustRegisterFunc("policy_agent_installs_total", "Policies installed on the card.",
		obs.KindCounter, func() float64 { return float64(a.stats.Installs) }, labels...)
	reg.MustRegisterFunc("policy_agent_auth_fails_total", "Pushes rejected for bad signatures.",
		obs.KindCounter, func() float64 { return float64(a.stats.AuthFails) }, labels...)
	reg.MustRegisterFunc("policy_agent_parse_fails_total", "Pushes rejected as unparseable.",
		obs.KindCounter, func() float64 { return float64(a.stats.ParseFails) }, labels...)
	reg.MustRegisterFunc("policy_agent_stale_drops_total", "Pushes older than the installed version.",
		obs.KindCounter, func() float64 { return float64(a.stats.StaleDrops) }, labels...)
	reg.MustRegisterFunc("policy_agent_restarts_total", "Agent restarts (EFW lockup recovery).",
		obs.KindCounter, func() float64 { return float64(a.stats.Restarts) }, labels...)
	reg.MustRegisterFunc("policy_agent_idempotent_acks_total", "Re-pushes of the installed version acked without reinstall.",
		obs.KindCounter, func() float64 { return float64(a.stats.IdempotentAcks) }, labels...)
	reg.MustRegisterFunc("policy_agent_timeout_aborts_total", "Push connections reaped by the read deadline.",
		obs.KindCounter, func() float64 { return float64(a.stats.TimeoutAborts) }, labels...)
	reg.MustRegisterFunc("policy_agent_aborted_pushes_total", "Push connections torn down mid-message.",
		obs.KindCounter, func() float64 { return float64(a.stats.AbortedPushes) }, labels...)
	reg.MustRegisterFunc("policy_agent_installed_version", "Installed policy version.",
		obs.KindGauge, func() float64 { return float64(a.installedVersion) }, labels...)
	reg.MustRegisterFunc("policy_agent_staleness_seconds", "Time since the last successful install or idempotent ack.",
		obs.KindGauge, func() float64 { return a.Staleness().Seconds() }, labels...)
	reg.MustRegisterFunc("policy_agent_last_good_timestamp_seconds", "Virtual time of the last successful install or idempotent ack (0 until one lands).",
		obs.KindGauge, func() float64 {
			_, at, ok := a.LastGood()
			if !ok {
				return 0
			}
			return at.Seconds()
		}, labels...)
	reg.MustRegisterFunc("policy_agent_ever_installed", "Whether any policy has ever been installed or acked (0/1).",
		obs.KindGauge, func() float64 {
			if _, _, ok := a.LastGood(); ok {
				return 1
			}
			return 0
		}, labels...)
}

// PublishMetrics registers the policy server's distribution counters
// with the registry as collector closures.
func (s *Server) PublishMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.MustRegisterFunc("policy_server_pushes_total", "Push calls accepted.",
		obs.KindCounter, func() float64 { return float64(s.stats.Pushes) }, labels...)
	reg.MustRegisterFunc("policy_server_attempts_total", "Push connection attempts, including retries.",
		obs.KindCounter, func() float64 { return float64(s.stats.Attempts) }, labels...)
	reg.MustRegisterFunc("policy_server_retries_total", "Push attempts after the first.",
		obs.KindCounter, func() float64 { return float64(s.stats.Retries) }, labels...)
	reg.MustRegisterFunc("policy_server_successes_total", "Pushes settled with an agent OK.",
		obs.KindCounter, func() float64 { return float64(s.stats.Successes) }, labels...)
	reg.MustRegisterFunc("policy_server_failures_total", "Pushes settled terminally without an agent OK.",
		obs.KindCounter, func() float64 { return float64(s.stats.Failures) }, labels...)
}
