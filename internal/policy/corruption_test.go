package policy

import (
	"testing"

	"barbican/internal/packet"
	"barbican/internal/vpg"
)

// validWire builds a representative signed push wire image: a policy
// with rules, a device name, and one VPG (so every field of the body
// format is present).
func validWire(t *testing.T, psk []byte) []byte {
	t.Helper()
	msg := &pushMessage{
		Version: 7,
		Name:    "target",
		Text:    "allow in proto tcp from any to 10.0.0.2/32 port 80\ndefault deny\n",
		Groups: []groupDef{{
			Name:    "psq",
			Key:     vpg.Key{1, 2, 3},
			Members: []packet.IP{packet.MustIP("10.0.0.1"), packet.MustIP("10.0.0.2")},
		}},
	}
	wire, err := msg.encode(psk)
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// TestDecodePushTruncationSweep: every strict prefix of a valid wire
// image must decode to "need more bytes" or an error — never a
// message, never a panic. Truncation is what a mid-push partition
// leaves in the agent's buffer.
func TestDecodePushTruncationSweep(t *testing.T) {
	psk := DeriveKey("corruption-test")
	wire := validWire(t, psk)
	if msg, n, err := decodePush(psk, wire); msg == nil || err != nil || n != len(wire) {
		t.Fatalf("baseline decode failed: msg=%v n=%d err=%v", msg, n, err)
	}
	for cut := 0; cut < len(wire); cut++ {
		msg, _, err := decodePush(psk, wire[:cut])
		if msg != nil {
			t.Fatalf("prefix of %d/%d bytes decoded to a message", cut, len(wire))
		}
		// Prefixes shorter than header+payload legitimately report
		// "need more"; what matters is no panic and no message.
		_ = err
	}
}

// TestDecodePushBitFlipSweep: single-byte corruptions of a valid wire
// image must never panic and never yield an accepted message. Flips
// outside the length field must return an error outright (magic check,
// MAC, or framing); length-field flips may instead look like an
// incomplete longer message, which the agent's read deadline reaps.
func TestDecodePushBitFlipSweep(t *testing.T) {
	psk := DeriveKey("corruption-test")
	wire := validWire(t, psk)
	for i := 0; i < len(wire); i++ {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), wire...)
			mut[i] ^= flip
			msg, _, err := decodePush(psk, mut)
			if msg != nil {
				t.Fatalf("flip 0x%02x at byte %d decoded to a message", flip, i)
			}
			lengthField := i >= 4 && i < headerLen
			if !lengthField && err == nil {
				t.Fatalf("flip 0x%02x at byte %d returned no error", flip, i)
			}
			if lengthField && err == nil {
				// Shrunk-length flips must still fail; only grown
				// lengths may legitimately wait for more bytes.
				if n := int(uint32(mut[4])<<24 | uint32(mut[5])<<16 | uint32(mut[6])<<8 | uint32(mut[7])); n <= len(wire)-headerLen {
					t.Fatalf("flip 0x%02x at byte %d shrank the length yet decoded cleanly", flip, i)
				}
			}
		}
	}
}

// TestParseBodyPrefixSweep: parseBody on every strict prefix of a
// valid body must return an error (the MAC normally shields it, but
// the parser itself must hold the line — defense in depth).
func TestParseBodyPrefixSweep(t *testing.T) {
	psk := DeriveKey("corruption-test")
	wire := validWire(t, psk)
	body := wire[headerLen : len(wire)-macLen]
	if _, err := parseBody(body); err != nil {
		t.Fatalf("baseline parseBody failed: %v", err)
	}
	for cut := 0; cut < len(body); cut++ {
		if _, err := parseBody(body[:cut]); err == nil {
			t.Fatalf("parseBody accepted a %d/%d-byte prefix", cut, len(body))
		}
	}
}

// TestParseBodyByteFlipNeverPanics: parseBody must survive arbitrary
// single-byte corruption of the (normally MAC-protected) body.
func TestParseBodyByteFlipNeverPanics(t *testing.T) {
	psk := DeriveKey("corruption-test")
	wire := validWire(t, psk)
	body := wire[headerLen : len(wire)-macLen]
	for i := 0; i < len(body); i++ {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), body...)
			mut[i] ^= flip
			// Any outcome but a panic is acceptable: flipped bytes can
			// still form a structurally valid body.
			_, _ = parseBody(mut)
		}
	}
}

// TestParseResponseGarbage: the server-side response parser must
// handle corrupted reply lines without panicking.
func TestParseResponseGarbage(t *testing.T) {
	cases := []string{"", "OK\n", "OK x\n", "OK 99999999999999999999\n", "ERR\n", "garbage\n", "OK 7"}
	for _, in := range cases {
		version, errMsg, done := parseResponse([]byte(in))
		if in == "OK 7" && done {
			t.Errorf("parseResponse(%q) completed without a newline", in)
		}
		_ = version
		_ = errMsg
	}
}
