package policy_test

import (
	"testing"
	"time"

	"barbican/internal/core"
	"barbican/internal/packet"
	"barbican/internal/policy"
	"barbican/internal/stack"
	"barbican/internal/vpg"
)

// vpgFleet provisions a VPG across client and target entirely through
// the policy server, as the ADF deployment model prescribes.
func vpgFleet(t *testing.T) (*core.Testbed, *policy.Server, map[string]*policy.Agent) {
	t.Helper()
	tb, err := core.NewTestbed(core.TestbedOptions{
		ClientDevice: core.DeviceADF, TargetDevice: core.DeviceADF,
	})
	if err != nil {
		t.Fatal(err)
	}
	psk := policy.DeriveKey("dpasa")
	srv := policy.NewServer(tb.PolicyServer, psk)
	key := vpg.DeriveKey("group-secret")
	members := []packet.IP{tb.Client.IP(), tb.Target.IP()}

	agents := make(map[string]*policy.Agent, 2)
	for name, h := range map[string]*stack.Host{"client": tb.Client, "target": tb.Target} {
		agent, err := policy.NewAgent(h, tb.PolicyServer.IP(), psk)
		if err != nil {
			t.Fatal(err)
		}
		agents[name] = agent
		if _, err := srv.SetPolicy(name, policyText(h.IP())); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.SetVPG(name, "psq", key, members); err != nil {
			t.Fatal(err)
		}
		if err := srv.Push(name, h.IP(), func(err error) {
			if err != nil {
				t.Errorf("push %s: %v", name, err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Kernel.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	return tb, srv, agents
}

func policyText(local packet.IP) string {
	ip := local.String()
	return "allow in vpg psq from 10.0.0.0/24 to " + ip + "/32\n" +
		"allow out vpg psq from " + ip + "/32 to 10.0.0.0/24\n" +
		"default deny\n"
}

func TestVPGProvisionedOverPolicyChannel(t *testing.T) {
	tb, _, agents := vpgFleet(t)
	for name, a := range agents {
		if a.InstalledVersion() != 2 { // SetPolicy + SetVPG each bump
			t.Errorf("%s version = %d, want 2", name, a.InstalledVersion())
		}
		groups := a.InstalledGroups()
		if len(groups) != 1 || groups[0] != "psq" {
			t.Errorf("%s groups = %v", name, groups)
		}
	}

	// Member traffic flows sealed end to end.
	sink, err := tb.Target.BindUDP(7000)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	sink.OnRecv = func(packet.IP, uint16, []byte) { delivered++ }
	sock, err := tb.Client.BindUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	sock.SendTo(tb.Target.IP(), 7000, []byte("provisioned"))
	if err := tb.Kernel.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d through provisioned VPG", delivered)
	}
	if tb.Client.NIC().Stats().Sealed == 0 || tb.Target.NIC().Stats().Opened == 0 {
		t.Error("traffic was not sealed despite provisioned VPG")
	}

	// Outsider cleartext is denied.
	atk, err := tb.Attacker.BindUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	atk.SendTo(tb.Target.IP(), 7000, []byte("evil"))
	if err := tb.Kernel.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Error("outsider traffic delivered")
	}
}

func TestVPGRekeyOverPolicyChannel(t *testing.T) {
	tb, srv, agents := vpgFleet(t)
	members := []packet.IP{tb.Client.IP(), tb.Target.IP()}

	// Rotate the group key on the target only: traffic must now fail
	// authentication (key mismatch between members) until the client is
	// also rekeyed.
	newKey := vpg.DeriveKey("rotated")
	if _, err := srv.SetVPG("target", "psq", newKey, members); err != nil {
		t.Fatal(err)
	}
	if err := srv.Push("target", tb.Target.IP(), nil); err != nil {
		t.Fatal(err)
	}
	if err := tb.Kernel.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if agents["target"].InstalledVersion() != 3 {
		t.Fatalf("target version = %d", agents["target"].InstalledVersion())
	}

	sink, err := tb.Target.BindUDP(7100)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	sink.OnRecv = func(packet.IP, uint16, []byte) { delivered++ }
	sock, err := tb.Client.BindUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	authBefore := tb.Target.NIC().Stats().RxAuthFailures
	sock.SendTo(tb.Target.IP(), 7100, []byte("stale-key"))
	if err := tb.Kernel.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Error("stale-key traffic delivered after rekey")
	}
	if tb.Target.NIC().Stats().RxAuthFailures != authBefore+1 {
		t.Errorf("RxAuthFailures = %d, want +1", tb.Target.NIC().Stats().RxAuthFailures)
	}

	// Rekey the client too: traffic flows again.
	if _, err := srv.SetVPG("client", "psq", newKey, members); err != nil {
		t.Fatal(err)
	}
	if err := srv.Push("client", tb.Client.IP(), nil); err != nil {
		t.Fatal(err)
	}
	if err := tb.Kernel.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	sock.SendTo(tb.Target.IP(), 7100, []byte("fresh-key"))
	if err := tb.Kernel.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Errorf("delivered = %d after both sides rekeyed", delivered)
	}
}

func TestSetVPGValidation(t *testing.T) {
	tb, err := core.NewTestbed(core.TestbedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := policy.NewServer(tb.PolicyServer, policy.DeriveKey("k"))
	key := vpg.DeriveKey("k")
	if _, err := srv.SetVPG("nobody", "g", key, []packet.IP{core.TargetIP}); err == nil {
		t.Error("SetVPG without stored policy accepted")
	}
	if _, err := srv.SetPolicy("dev", "default deny\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.SetVPG("dev", "", key, []packet.IP{core.TargetIP}); err == nil {
		t.Error("empty group name accepted")
	}
	if _, err := srv.SetVPG("dev", "g", key, nil); err == nil {
		t.Error("memberless group accepted")
	}
}
