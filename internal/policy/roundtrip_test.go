package policy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"barbican/internal/fw"
	"barbican/internal/packet"
)

// randomRule builds an arbitrary-but-valid rule from raw fuzz inputs.
func randomRule(r *rand.Rand) fw.Rule {
	actions := []fw.Action{fw.Allow, fw.Deny}
	dirs := []fw.Direction{fw.In, fw.Out, fw.Both}
	protos := []packet.Protocol{0, packet.ProtoTCP, packet.ProtoUDP, packet.ProtoICMP, 47}

	rule := fw.Rule{
		Action:    actions[r.Intn(len(actions))],
		Direction: dirs[r.Intn(len(dirs))],
		Proto:     protos[r.Intn(len(protos))],
	}
	if r.Intn(2) == 0 {
		rule.Src = packet.Prefix{Addr: packet.IPFromUint32(r.Uint32()), Bits: 1 + r.Intn(32)}
		// Canonicalize: formatting keeps host bits, so parse-compare
		// works either way, but keep addresses masked for readability.
	}
	if r.Intn(2) == 0 {
		rule.Dst = packet.Prefix{Addr: packet.IPFromUint32(r.Uint32()), Bits: 1 + r.Intn(32)}
	}
	// Ports require TCP/UDP.
	if rule.Proto == packet.ProtoTCP || rule.Proto == packet.ProtoUDP {
		if r.Intn(2) == 0 {
			lo := uint16(r.Intn(65535))
			rule.SrcPorts = fw.Ports(lo, lo+uint16(r.Intn(int(65535-lo)+1)))
		}
		if r.Intn(2) == 0 {
			lo := uint16(r.Intn(65535))
			rule.DstPorts = fw.Ports(lo, lo+uint16(r.Intn(int(65535-lo)+1)))
		}
	}
	// Occasionally make it a VPG rule instead (no proto/ports).
	if r.Intn(5) == 0 {
		rule.Action = fw.Allow
		rule.Proto = 0
		rule.SrcPorts, rule.DstPorts = fw.AnyPort, fw.AnyPort
		rule.VPG = "g" + string(rune('a'+r.Intn(26)))
	}
	return rule
}

// Property: Format ∘ Parse is the identity on rule-set structure for
// arbitrary valid rule sets.
func TestFormatParseRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%16
		rules := make([]fw.Rule, 0, n)
		for i := 0; i < n; i++ {
			rules = append(rules, randomRule(r))
		}
		def := fw.Allow
		if r.Intn(2) == 0 {
			def = fw.Deny
		}
		rs, err := fw.NewRuleSet(def, rules...)
		if err != nil {
			return false
		}
		back, err := Parse(Format(rs))
		if err != nil {
			t.Logf("parse failed: %v\npolicy:\n%s", err, Format(rs))
			return false
		}
		if back.Len() != rs.Len() || back.Default() != rs.Default() {
			return false
		}
		for i := 1; i <= rs.Len(); i++ {
			a, b := rs.Rule(i), back.Rule(i)
			if a.Action != b.Action || a.Direction != b.Direction || a.Proto != b.Proto ||
				a.Src != b.Src || a.Dst != b.Dst ||
				a.SrcPorts != b.SrcPorts || a.DstPorts != b.DstPorts || a.VPG != b.VPG {
				t.Logf("rule %d mismatch:\n a=%+v\n b=%+v\npolicy:\n%s", i, a, b, Format(rs))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: parsed rule sets give identical verdicts to the originals
// for arbitrary packets (semantic, not just structural, round-trip).
func TestRoundTripPreservesVerdictsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := rand.New(rand.NewSource(1234))
	rules := make([]fw.Rule, 0, 12)
	for i := 0; i < 12; i++ {
		rules = append(rules, randomRule(r))
	}
	rs := fw.MustRuleSet(fw.Deny, rules...)
	back, err := Parse(Format(rs))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}

	f := func(srcRaw, dstRaw uint32, sport, dport uint16, protoPick, dirPick, sealed uint8) bool {
		protos := []packet.Protocol{packet.ProtoTCP, packet.ProtoUDP, packet.ProtoICMP, 47}
		proto := protos[int(protoPick)%len(protos)]
		dir := fw.In
		if dirPick%2 == 1 {
			dir = fw.Out
		}
		s := packet.Summary{
			Proto: proto,
			Src:   packet.IPFromUint32(srcRaw), Dst: packet.IPFromUint32(dstRaw),
			SrcPort: sport, DstPort: dport,
			HasPorts: proto == packet.ProtoTCP || proto == packet.ProtoUDP,
			Sealed:   sealed%5 == 0,
		}
		va, vb := rs.Eval(s, dir), back.Eval(s, dir)
		return va.Action == vb.Action && va.Index == vb.Index && va.Traversed == vb.Traversed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rng}); err != nil {
		t.Error(err)
	}
}
