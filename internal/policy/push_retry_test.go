package policy_test

import (
	"testing"
	"time"

	"barbican/internal/faults"
	"barbican/internal/policy"
)

// TestPushDoneExactlyOnceOnSuccess: the happy path invokes done once,
// with nil.
func TestPushDoneExactlyOnceOnSuccess(t *testing.T) {
	tb, srv, agent := setup(t)
	if _, err := srv.SetPolicy("target", webPolicy); err != nil {
		t.Fatal(err)
	}
	calls := 0
	var last error
	if err := srv.Push("target", tb.Target.IP(), func(err error) { calls++; last = err }); err != nil {
		t.Fatal(err)
	}
	if err := tb.Kernel.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("done invoked %d times, want 1", calls)
	}
	if last != nil {
		t.Errorf("done error: %v", last)
	}
	if agent.InstalledVersion() != 1 {
		t.Errorf("installed = %d", agent.InstalledVersion())
	}
}

// TestPushDoneExactlyOnceOnTotalLoss: with the management link eating
// every frame, each attempt times out; done fires exactly once, with
// the terminal error, after the retry budget is spent.
func TestPushDoneExactlyOnceOnTotalLoss(t *testing.T) {
	tb, srv, agent := setup(t)
	faults.Attach(tb.PolicyServer.NIC().Endpoint(), faults.Plan{Loss: 1}, 1)
	if _, err := srv.SetPolicy("target", webPolicy); err != nil {
		t.Fatal(err)
	}
	calls := 0
	var last error
	if err := srv.Push("target", tb.Target.IP(), func(err error) { calls++; last = err }); err != nil {
		t.Fatal(err)
	}
	// 5 attempts x 1s timeout + backoffs (100ms..1.6s with jitter) < 15s.
	if err := tb.Kernel.RunUntil(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("done invoked %d times, want 1", calls)
	}
	if last == nil {
		t.Fatal("push through a dead link reported success")
	}
	if agent.InstalledVersion() != 0 {
		t.Errorf("installed = %d, want 0", agent.InstalledVersion())
	}
	st := srv.Stats()
	if st.Attempts != 5 || st.Failures != 1 || st.Successes != 0 {
		t.Errorf("server stats = %+v", st)
	}
}

// TestPushDoneExactlyOnceAcrossAgentRestart: the agent is down for the
// first attempts (connection refused) and comes back mid-retry; a later
// attempt succeeds and done fires exactly once, with nil.
func TestPushDoneExactlyOnceAcrossAgentRestart(t *testing.T) {
	tb, srv, agent := setup(t)
	if _, err := srv.SetPolicy("target", webPolicy); err != nil {
		t.Fatal(err)
	}
	agent.Close()

	calls := 0
	var last error
	if err := srv.Push("target", tb.Target.IP(), func(err error) { calls++; last = err }); err != nil {
		t.Fatal(err)
	}
	// Bring a fresh agent up while the server is still backing off
	// (refused attempts back off 100ms, 200ms, 400ms, 800ms — the last
	// attempt fires around t=1.5s).
	var agent2 *policy.Agent
	tb.Kernel.After(time.Second, func() {
		var err error
		agent2, err = policy.NewAgent(tb.Target, tb.PolicyServer.IP(), policy.DeriveKey("test"))
		if err != nil {
			t.Errorf("restart agent: %v", err)
		}
	})
	if err := tb.Kernel.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("done invoked %d times, want 1", calls)
	}
	if last != nil {
		t.Errorf("done error after agent came back: %v", last)
	}
	if agent2 == nil || agent2.InstalledVersion() != 1 {
		t.Fatalf("restarted agent did not install the policy")
	}
	st := srv.Stats()
	if st.Successes != 1 || st.Retries == 0 {
		t.Errorf("server stats = %+v, want a success after retries", st)
	}
}

// TestPushLegacyNoRetryStalls documents the pre-retry behavior that
// PushOptions{MaxAttempts: 1} preserves: one shot, and a dead agent
// means a terminal failure instead of convergence.
func TestPushLegacyNoRetryStalls(t *testing.T) {
	tb, srv, agent := setup(t)
	if _, err := srv.SetPolicy("target", webPolicy); err != nil {
		t.Fatal(err)
	}
	agent.Close()
	calls := 0
	var last error
	opts := policy.PushOptions{MaxAttempts: 1}
	if err := srv.PushWith("target", tb.Target.IP(), opts, func(err error) { calls++; last = err }); err != nil {
		t.Fatal(err)
	}
	var agent2 *policy.Agent
	tb.Kernel.After(2500*time.Millisecond, func() {
		var err error
		agent2, err = policy.NewAgent(tb.Target, tb.PolicyServer.IP(), policy.DeriveKey("test"))
		if err != nil {
			t.Errorf("restart agent: %v", err)
		}
	})
	if err := tb.Kernel.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("done invoked %d times, want 1", calls)
	}
	if last == nil {
		t.Error("single-attempt push to a dead agent reported success")
	}
	if agent2 == nil || agent2.InstalledVersion() != 0 {
		t.Error("policy arrived without retries — test premise broken")
	}
}

// TestAgentSurvivesTruncatedGarbage: raw truncated bytes on the agent
// port must not wedge the listener — the read deadline reaps the
// connection and a subsequent full push still installs.
func TestAgentSurvivesTruncatedGarbage(t *testing.T) {
	tb, srv, agent := setup(t)

	// A client (with management-bypass standing, i.e. the policy server
	// host) dials the agent and sends half a push frame, then goes quiet.
	c, err := tb.PolicyServer.DialTCP(tb.Target.IP(), policy.AgentPort)
	if err != nil {
		t.Fatal(err)
	}
	c.OnConnect = func() {
		_ = c.Write([]byte("BPL2\x00\x00\x01")) // 7 of 8 header bytes
	}
	if err := tb.Kernel.RunFor(policy.AgentReadTimeout + time.Second); err != nil {
		t.Fatal(err)
	}
	if got := agent.Stats().TimeoutAborts; got != 1 {
		t.Fatalf("TimeoutAborts = %d, want 1", got)
	}

	// The agent must still accept a real push.
	if _, err := srv.SetPolicy("target", webPolicy); err != nil {
		t.Fatal(err)
	}
	var result error
	if err := srv.Push("target", tb.Target.IP(), func(err error) { result = err }); err != nil {
		t.Fatal(err)
	}
	if err := tb.Kernel.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if result != nil {
		t.Fatalf("push after garbage connection: %v", result)
	}
	if agent.InstalledVersion() != 1 {
		t.Errorf("installed = %d, want 1", agent.InstalledVersion())
	}
}
