// Package policy implements the central policy server of the EFW/ADF
// architecture: a small policy language, versioned signed distribution
// of rule-sets to per-host firewall agents over the (simulated) network,
// and an audit log.
//
// Policy text round-trips with fw's String renderings:
//
//	# protect the web server
//	allow in proto tcp from any to 10.0.0.2/32 port 80
//	deny in proto udp from 10.0.0.0/8 to any
//	allow in vpg psq from 10.0.0.0/24 to 10.0.0.2/32
//	allow both from any to any state established,related
//	default deny
package policy

import (
	"fmt"
	"strconv"
	"strings"

	"barbican/internal/fw"
	"barbican/internal/packet"
)

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("policy: line %d: %s", e.Line, e.Msg)
}

// Parse compiles policy text into a rule set. A "default allow|deny"
// line is required (the embedded cards always have a default action).
func Parse(text string) (*fw.RuleSet, error) {
	var (
		rules      []fw.Rule
		def        fw.Action
		sawDefault bool
	)
	for i, raw := range strings.Split(text, "\n") {
		lineNo := i + 1
		line := raw
		if idx := strings.Index(line, "#"); idx >= 0 {
			// Trailing comments name the rule, standalone ones are skipped.
			comment := strings.TrimSpace(line[idx+1:])
			line = strings.TrimSpace(line[:idx])
			if line == "" {
				continue
			}
			r, err := parseRule(line, comment)
			if err != nil {
				return nil, &ParseError{Line: lineNo, Msg: err.Error()}
			}
			rules = append(rules, r)
			continue
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "default "); ok {
			if sawDefault {
				return nil, &ParseError{Line: lineNo, Msg: "duplicate default action"}
			}
			a, err := parseAction(strings.TrimSpace(rest))
			if err != nil {
				return nil, &ParseError{Line: lineNo, Msg: err.Error()}
			}
			def = a
			sawDefault = true
			continue
		}
		r, err := parseRule(line, "")
		if err != nil {
			return nil, &ParseError{Line: lineNo, Msg: err.Error()}
		}
		rules = append(rules, r)
	}
	if !sawDefault {
		return nil, &ParseError{Line: 0, Msg: `missing "default allow|deny" line`}
	}
	rs, err := fw.NewRuleSet(def, rules...)
	if err != nil {
		return nil, fmt.Errorf("policy: %w", err)
	}
	return rs, nil
}

// Format renders a rule set as policy text that Parse accepts.
func Format(rs *fw.RuleSet) string { return rs.String() }

func parseAction(s string) (fw.Action, error) {
	switch s {
	case "allow":
		return fw.Allow, nil
	case "deny":
		return fw.Deny, nil
	default:
		return 0, fmt.Errorf("unknown action %q", s)
	}
}

func parseDirection(s string) (fw.Direction, error) {
	switch s {
	case "in":
		return fw.In, nil
	case "out":
		return fw.Out, nil
	case "both":
		return fw.Both, nil
	default:
		return 0, fmt.Errorf("unknown direction %q", s)
	}
}

func parseProto(s string) (packet.Protocol, error) {
	switch s {
	case "tcp":
		return packet.ProtoTCP, nil
	case "udp":
		return packet.ProtoUDP, nil
	case "icmp":
		return packet.ProtoICMP, nil
	default:
		if n, err := strconv.Atoi(s); err == nil && n >= 0 && n <= 255 {
			return packet.Protocol(n), nil
		}
		return 0, fmt.Errorf("unknown protocol %q", s)
	}
}

func parsePrefix(s string) (packet.Prefix, error) {
	if s == "any" {
		return packet.Prefix{}, nil
	}
	return packet.ParsePrefix(s)
}

func parsePorts(s string) (fw.PortRange, error) {
	if s == "any" {
		return fw.AnyPort, nil
	}
	lo, hi, found := strings.Cut(s, "-")
	l, err := strconv.ParseUint(lo, 10, 16)
	if err != nil {
		return fw.AnyPort, fmt.Errorf("bad port %q", s)
	}
	if !found {
		return fw.Port(uint16(l)), nil
	}
	h, err := strconv.ParseUint(hi, 10, 16)
	if err != nil {
		return fw.AnyPort, fmt.Errorf("bad port range %q", s)
	}
	return fw.Ports(uint16(l), uint16(h)), nil
}

// parseRule parses one rule line (without comment) using a small token
// walker.
func parseRule(line, name string) (fw.Rule, error) {
	toks := strings.Fields(line)
	pos := 0
	next := func() (string, bool) {
		if pos >= len(toks) {
			return "", false
		}
		t := toks[pos]
		pos++
		return t, true
	}
	peek := func() string {
		if pos >= len(toks) {
			return ""
		}
		return toks[pos]
	}

	var r fw.Rule
	r.Name = name

	tok, ok := next()
	if !ok {
		return r, fmt.Errorf("empty rule")
	}
	a, err := parseAction(tok)
	if err != nil {
		return r, err
	}
	r.Action = a

	tok, ok = next()
	if !ok {
		return r, fmt.Errorf("missing direction")
	}
	d, err := parseDirection(tok)
	if err != nil {
		return r, err
	}
	r.Direction = d

	switch peek() {
	case "proto":
		next()
		tok, ok = next()
		if !ok {
			return r, fmt.Errorf("missing protocol")
		}
		p, err := parseProto(tok)
		if err != nil {
			return r, err
		}
		r.Proto = p
	case "vpg":
		next()
		tok, ok = next()
		if !ok {
			return r, fmt.Errorf("missing VPG name")
		}
		r.VPG = tok
	}

	// from <addr> [port <range>] to <addr> [port <range>]
	parseEndpoint := func(keyword string) (packet.Prefix, fw.PortRange, error) {
		tok, ok := next()
		if !ok || tok != keyword {
			return packet.Prefix{}, fw.AnyPort, fmt.Errorf("expected %q, got %q", keyword, tok)
		}
		tok, ok = next()
		if !ok {
			return packet.Prefix{}, fw.AnyPort, fmt.Errorf("missing address after %q", keyword)
		}
		prefix, err := parsePrefix(tok)
		if err != nil {
			return packet.Prefix{}, fw.AnyPort, err
		}
		ports := fw.AnyPort
		if peek() == "port" {
			next()
			tok, ok = next()
			if !ok {
				return packet.Prefix{}, fw.AnyPort, fmt.Errorf("missing port range")
			}
			ports, err = parsePorts(tok)
			if err != nil {
				return packet.Prefix{}, fw.AnyPort, err
			}
		}
		return prefix, ports, nil
	}

	if r.Src, r.SrcPorts, err = parseEndpoint("from"); err != nil {
		return r, err
	}
	if r.Dst, r.DstPorts, err = parseEndpoint("to"); err != nil {
		return r, err
	}
	if peek() == "state" {
		next()
		tok, ok = next()
		if !ok {
			return r, fmt.Errorf("missing state list")
		}
		r.States, err = fw.ParseStateMask(tok)
		if err != nil {
			return r, err
		}
	}
	if tok := peek(); tok != "" {
		return r, fmt.Errorf("trailing tokens starting at %q", tok)
	}
	if err := r.Validate(); err != nil {
		return r, err
	}
	return r, nil
}
