package policy

import (
	"errors"
	"testing"
)

func TestPushMessageRoundTrip(t *testing.T) {
	psk := DeriveKey("k")
	m := &pushMessage{Version: 7, Name: "target", Text: "default deny\n"}
	b, err := m.encode(psk)
	if err != nil {
		t.Fatal(err)
	}

	got, n, err := decodePush(psk, b)
	if err != nil {
		t.Fatalf("decodePush: %v", err)
	}
	if got == nil {
		t.Fatal("decodePush wanted more bytes")
	}
	if n != len(b) {
		t.Errorf("consumed %d of %d bytes", n, len(b))
	}
	if got.Version != 7 || got.Name != "target" || got.Text != "default deny\n" {
		t.Errorf("round trip = %+v", got)
	}
}

func TestDecodePushPartial(t *testing.T) {
	psk := DeriveKey("k")
	b, err := (&pushMessage{Version: 1, Name: "t", Text: "default deny\n"}).encode(psk)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(b); i++ {
		got, _, err := decodePush(psk, b[:i])
		if err != nil {
			t.Fatalf("partial decode at %d: %v", i, err)
		}
		if got != nil {
			t.Fatalf("partial decode at %d returned a message", i)
		}
	}
}

func TestDecodePushWrongKey(t *testing.T) {
	b, err := (&pushMessage{Version: 1, Name: "t", Text: "x"}).encode(DeriveKey("a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := decodePush(DeriveKey("b"), b); !errors.Is(err, ErrBadMAC) {
		t.Errorf("err = %v, want ErrBadMAC", err)
	}
}

func TestDecodePushBadMagic(t *testing.T) {
	b, err := (&pushMessage{Version: 1, Name: "t", Text: "x"}).encode(DeriveKey("a"))
	if err != nil {
		t.Fatal(err)
	}
	b[0] = 'X'
	if _, _, err := decodePush(DeriveKey("a"), b); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestParseResponse(t *testing.T) {
	if _, _, done := parseResponse([]byte("OK 3")); done {
		t.Error("incomplete line reported done")
	}
	v, msg, done := parseResponse([]byte("OK 3\n"))
	if !done || v != 3 || msg != "" {
		t.Errorf("OK parse = %d %q %v", v, msg, done)
	}
	_, msg, done = parseResponse([]byte("ERR boom\n"))
	if !done || msg != "boom" {
		t.Errorf("ERR parse = %q %v", msg, done)
	}
	_, msg, done = parseResponse([]byte("??\n"))
	if !done || msg == "" {
		t.Error("garbage response not flagged")
	}
}
