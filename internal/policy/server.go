package policy

import (
	"crypto/sha256"
	"fmt"
	"time"

	"barbican/internal/packet"
	"barbican/internal/stack"
	"barbican/internal/vpg"
)

// DeriveKey derives the pre-shared distribution key from a passphrase.
func DeriveKey(passphrase string) []byte {
	sum := sha256.Sum256([]byte("barbican-policy-psk:" + passphrase))
	return sum[:]
}

// AuditEvent records one policy-distribution outcome.
type AuditEvent struct {
	At      time.Duration // virtual time
	Device  string
	Target  packet.IP
	Version uint32
	OK      bool
	Detail  string
}

// String renders the event as an audit-log line.
func (e AuditEvent) String() string {
	status := "OK"
	if !e.OK {
		status = "FAIL"
	}
	return fmt.Sprintf("%v push %q v%d -> %v: %s %s", e.At, e.Device, e.Target, e.Version, status, e.Detail)
}

// assignment is a device's policy state on the server.
type assignment struct {
	text    string
	version uint32
	groups  []groupDef
}

// Server is the central policy server: it owns named device policies and
// pushes signed rule-sets to firewall agents.
type Server struct {
	host *stack.Host
	psk  []byte

	assignments map[string]*assignment
	audit       []AuditEvent
}

// NewServer creates a policy server on the given host.
func NewServer(h *stack.Host, psk []byte) *Server {
	return &Server{host: h, psk: psk, assignments: make(map[string]*assignment)}
}

// SetPolicy validates and stores the policy text for a device, bumping
// its version.
func (s *Server) SetPolicy(device, text string) (version uint32, err error) {
	if _, err := Parse(text); err != nil {
		return 0, err
	}
	a := s.assignments[device]
	if a == nil {
		a = &assignment{}
		s.assignments[device] = a
	}
	a.text = text
	a.version++
	return a.version, nil
}

// SetVPG provisions (or, for an existing name, replaces) a VPG on a
// device's next push: the group key and member set ride the same
// authenticated channel as the rule-set, as in the ADF architecture.
// The device must already have a policy stored, and it bumps the
// version.
func (s *Server) SetVPG(device, group string, key vpg.Key, members []packet.IP) (version uint32, err error) {
	a := s.assignments[device]
	if a == nil {
		return 0, fmt.Errorf("policy: no policy stored for device %q", device)
	}
	if group == "" || len(group) > 64 {
		return 0, fmt.Errorf("policy: invalid group name %q", group)
	}
	if len(members) == 0 {
		return 0, fmt.Errorf("policy: group %q has no members", group)
	}
	def := groupDef{Name: group, Key: key, Members: append([]packet.IP(nil), members...)}
	replaced := false
	for i := range a.groups {
		if a.groups[i].Name == group {
			a.groups[i] = def
			replaced = true
			break
		}
	}
	if !replaced {
		a.groups = append(a.groups, def)
	}
	a.version++
	return a.version, nil
}

// Policy returns the stored policy text and version for a device.
func (s *Server) Policy(device string) (text string, version uint32, ok bool) {
	a := s.assignments[device]
	if a == nil {
		return "", 0, false
	}
	return a.text, a.version, true
}

// Audit returns a copy of the audit log.
func (s *Server) Audit() []AuditEvent {
	return append([]AuditEvent(nil), s.audit...)
}

// Push distributes the device's current policy to the agent at target.
// done (optional) is invoked with the outcome once the agent replies, the
// connection fails, or the timeout (5 s of virtual time) expires.
func (s *Server) Push(device string, target packet.IP, done func(error)) error {
	a := s.assignments[device]
	if a == nil {
		return fmt.Errorf("policy: no policy stored for device %q", device)
	}
	msg := &pushMessage{Version: a.version, Name: device, Text: a.text, Groups: a.groups}
	wire, err := msg.encode(s.psk)
	if err != nil {
		return err
	}

	conn, err := s.host.DialTCP(target, AgentPort)
	if err != nil {
		return err
	}

	finished := false
	finish := func(outcome error) {
		if finished {
			return
		}
		finished = true
		detail := "installed"
		if outcome != nil {
			detail = outcome.Error()
		}
		s.audit = append(s.audit, AuditEvent{
			At:      s.host.Kernel().Now(),
			Device:  device,
			Target:  target,
			Version: a.version,
			OK:      outcome == nil,
			Detail:  detail,
		})
		if done != nil {
			done(outcome)
		}
	}

	var resp []byte
	conn.OnConnect = func() {
		if err := conn.Write(wire); err != nil {
			finish(fmt.Errorf("policy: send: %w", err))
			conn.Abort()
		}
	}
	conn.OnData = func(p []byte) {
		resp = append(resp, p...)
		version, errMsg, ok := parseResponse(resp)
		if !ok {
			return
		}
		switch {
		case errMsg != "":
			finish(fmt.Errorf("policy: agent: %s", errMsg))
		case version != a.version:
			finish(fmt.Errorf("policy: agent installed v%d, want v%d", version, a.version))
		default:
			finish(nil)
		}
		conn.Close()
	}
	conn.OnReset = func() { finish(fmt.Errorf("policy: connection reset")) }
	conn.OnPeerClose = func() {
		if !finished {
			finish(fmt.Errorf("policy: agent closed without replying"))
		}
	}
	s.host.Kernel().After(5*time.Second, func() {
		if !finished {
			finish(fmt.Errorf("policy: push timed out"))
			conn.Abort()
		}
	})
	return nil
}

// PushAll distributes each device's current policy to its address and
// invokes done once with the per-device outcomes after every push
// settles (success, failure, or timeout).
func (s *Server) PushAll(targets map[string]packet.IP, done func(map[string]error)) {
	outcomes := make(map[string]error, len(targets))
	remaining := len(targets)
	finishOne := func(device string, err error) {
		outcomes[device] = err
		remaining--
		if remaining == 0 && done != nil {
			done(outcomes)
		}
	}
	if remaining == 0 {
		if done != nil {
			done(outcomes)
		}
		return
	}
	for device, ip := range targets {
		device := device
		if err := s.Push(device, ip, func(err error) { finishOne(device, err) }); err != nil {
			finishOne(device, err)
		}
	}
}
