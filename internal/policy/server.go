package policy

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"barbican/internal/packet"
	"barbican/internal/stack"
	"barbican/internal/vpg"
)

// DeriveKey derives the pre-shared distribution key from a passphrase.
func DeriveKey(passphrase string) []byte {
	sum := sha256.Sum256([]byte("barbican-policy-psk:" + passphrase))
	return sum[:]
}

// AuditEvent records one policy-distribution outcome.
type AuditEvent struct {
	At      time.Duration // virtual time
	Device  string
	Target  packet.IP
	Version uint32
	OK      bool
	Detail  string
}

// String renders the event as an audit-log line.
func (e AuditEvent) String() string {
	status := "OK"
	if !e.OK {
		status = "FAIL"
	}
	return fmt.Sprintf("%v push %q v%d -> %v: %s %s", e.At, e.Device, e.Target, e.Version, status, e.Detail)
}

// assignment is a device's policy state on the server.
type assignment struct {
	text    string
	version uint32
	groups  []groupDef
}

// ServerStats counts policy-distribution activity.
type ServerStats struct {
	Pushes    uint64 // Push calls accepted (policy existed and encoded)
	Attempts  uint64 // connection attempts, including retries
	Retries   uint64 // attempts after the first
	Successes uint64 // pushes settled with an agent OK
	Failures  uint64 // pushes settled terminally without one
}

// Server is the central policy server: it owns named device policies and
// pushes signed rule-sets to firewall agents.
type Server struct {
	host *stack.Host
	psk  []byte

	assignments map[string]*assignment
	audit       []AuditEvent
	stats       ServerStats
}

// NewServer creates a policy server on the given host.
func NewServer(h *stack.Host, psk []byte) *Server {
	return &Server{host: h, psk: psk, assignments: make(map[string]*assignment)}
}

// SetPolicy validates and stores the policy text for a device, bumping
// its version.
func (s *Server) SetPolicy(device, text string) (version uint32, err error) {
	if _, err := Parse(text); err != nil {
		return 0, err
	}
	a := s.assignments[device]
	if a == nil {
		a = &assignment{}
		s.assignments[device] = a
	}
	a.text = text
	a.version++
	return a.version, nil
}

// SetVPG provisions (or, for an existing name, replaces) a VPG on a
// device's next push: the group key and member set ride the same
// authenticated channel as the rule-set, as in the ADF architecture.
// The device must already have a policy stored, and it bumps the
// version.
func (s *Server) SetVPG(device, group string, key vpg.Key, members []packet.IP) (version uint32, err error) {
	a := s.assignments[device]
	if a == nil {
		return 0, fmt.Errorf("policy: no policy stored for device %q", device)
	}
	if group == "" || len(group) > 64 {
		return 0, fmt.Errorf("policy: invalid group name %q", group)
	}
	if len(members) == 0 {
		return 0, fmt.Errorf("policy: group %q has no members", group)
	}
	def := groupDef{Name: group, Key: key, Members: append([]packet.IP(nil), members...)}
	replaced := false
	for i := range a.groups {
		if a.groups[i].Name == group {
			a.groups[i] = def
			replaced = true
			break
		}
	}
	if !replaced {
		a.groups = append(a.groups, def)
	}
	a.version++
	return a.version, nil
}

// Policy returns the stored policy text and version for a device.
func (s *Server) Policy(device string) (text string, version uint32, ok bool) {
	a := s.assignments[device]
	if a == nil {
		return "", 0, false
	}
	return a.text, a.version, true
}

// Audit returns a copy of the audit log.
func (s *Server) Audit() []AuditEvent {
	return append([]AuditEvent(nil), s.audit...)
}

// Stats returns a snapshot of the distribution counters.
func (s *Server) Stats() ServerStats { return s.stats }

// PushOptions tunes the retry engine behind Push. The zero value means
// defaults; see the field comments.
type PushOptions struct {
	// AttemptTimeout bounds each connection attempt (dial → agent
	// reply). Zero means 1 s.
	AttemptTimeout time.Duration
	// MaxAttempts caps total attempts before the push settles
	// terminally. Zero means 5; 1 disables retries (legacy behavior).
	MaxAttempts int
	// BaseBackoff is the delay after the first failed attempt; each
	// further failure doubles it up to MaxBackoff. Zero means 100 ms
	// (base) and 2 s (cap).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterFrac spreads each backoff uniformly by ±frac. Zero means
	// 0.2; negative disables jitter.
	JitterFrac float64
	// Rng drives the jitter. Nil means the host kernel's seeded
	// generator, which keeps runs deterministic; jitter never touches
	// the global math/rand source.
	Rng *rand.Rand
}

func (o PushOptions) withDefaults(rng *rand.Rand) PushOptions {
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	switch {
	case o.JitterFrac < 0:
		o.JitterFrac = 0
	case o.JitterFrac == 0:
		o.JitterFrac = 0.2
	}
	if o.Rng == nil {
		o.Rng = rng
	}
	return o
}

// retryableAgentErr classifies an agent ERR reply: corruption-shaped
// rejections (a lossy or bit-flipping management channel mangled the
// wire image) are worth re-sending; semantic rejections (stale
// version, unparseable policy) are not.
func retryableAgentErr(msg string) bool {
	return strings.Contains(msg, "authentication") ||
		strings.Contains(msg, "magic") ||
		strings.Contains(msg, "truncated") ||
		strings.Contains(msg, "too large") ||
		strings.Contains(msg, "malformed") // a corrupted response line, not a corrupted push

}

// Push distributes the device's current policy to the agent at target
// with default retry options. A non-nil return means the push never
// started (no stored policy, encode failure) and done will NOT be
// invoked; once Push returns nil, done (if non-nil) is invoked exactly
// once with the terminal outcome — after the agent's OK, or after the
// retry budget is exhausted.
func (s *Server) Push(device string, target packet.IP, done func(error)) error {
	return s.PushWith(device, target, PushOptions{}, done)
}

// PushWith is Push with explicit retry options: per-attempt timeouts,
// capped exponential backoff with seeded jitter, and idempotent
// versioned re-push (the agent acks a version it already runs, so a
// retry whose previous OK was lost still converges).
func (s *Server) PushWith(device string, target packet.IP, opt PushOptions, done func(error)) error {
	a := s.assignments[device]
	if a == nil {
		return fmt.Errorf("policy: no policy stored for device %q", device)
	}
	msg := &pushMessage{Version: a.version, Name: device, Text: a.text, Groups: a.groups}
	wire, err := msg.encode(s.psk)
	if err != nil {
		return err
	}
	s.stats.Pushes++
	r := &pushRun{
		s:       s,
		device:  device,
		target:  target,
		version: a.version,
		wire:    wire,
		opt:     opt.withDefaults(s.host.Kernel().Rand()),
		done:    done,
	}
	r.attempt(1)
	return nil
}

// pushRun is one Push's lifetime across its attempts. settle is the
// single terminal path: it fires done exactly once no matter how many
// attempt callbacks (timeout, reset, late data) race in after it.
type pushRun struct {
	s       *Server
	device  string
	target  packet.IP
	version uint32
	wire    []byte
	opt     PushOptions
	done    func(error)
	settled bool
}

func (r *pushRun) auditEvent(ok bool, detail string) {
	r.s.audit = append(r.s.audit, AuditEvent{
		At:      r.s.host.Kernel().Now(),
		Device:  r.device,
		Target:  r.target,
		Version: r.version,
		OK:      ok,
		Detail:  detail,
	})
}

func (r *pushRun) settle(outcome error) {
	if r.settled {
		return
	}
	r.settled = true
	if outcome == nil {
		r.s.stats.Successes++
		r.auditEvent(true, "installed")
	} else {
		r.s.stats.Failures++
		r.auditEvent(false, outcome.Error())
	}
	if r.done != nil {
		r.done(outcome)
	}
}

// backoff computes the post-attempt-i delay: capped exponential with
// seeded ±JitterFrac jitter.
func (r *pushRun) backoff(i int) time.Duration {
	d := r.opt.MaxBackoff
	if shift := i - 1; shift < 20 && r.opt.BaseBackoff<<shift < r.opt.MaxBackoff {
		d = r.opt.BaseBackoff << shift
	}
	if r.opt.JitterFrac > 0 {
		u := 2*r.opt.Rng.Float64() - 1
		d = time.Duration(float64(d) * (1 + r.opt.JitterFrac*u))
	}
	return d
}

// attemptFailed records a failed attempt and either schedules the next
// one or settles the push terminally.
func (r *pushRun) attemptFailed(i int, err error, retryable bool) {
	if r.settled {
		return
	}
	if !retryable || i >= r.opt.MaxAttempts {
		if i > 1 || retryable {
			err = fmt.Errorf("policy: push failed after %d attempt(s): %w", i, err)
		}
		r.settle(err)
		return
	}
	r.auditEvent(false, fmt.Sprintf("attempt %d/%d: %v", i, r.opt.MaxAttempts, err))
	r.s.stats.Retries++
	r.s.host.Kernel().After(r.backoff(i), func() { r.attempt(i + 1) })
}

// attempt runs one connection attempt.
func (r *pushRun) attempt(i int) {
	if r.settled {
		return
	}
	r.s.stats.Attempts++
	conn, err := r.s.host.DialTCP(r.target, AgentPort)
	if err != nil {
		r.attemptFailed(i, fmt.Errorf("policy: dial: %w", err), true)
		return
	}

	attemptDone := false
	timeoutEv := r.s.host.Kernel().After(r.opt.AttemptTimeout, func() {
		if attemptDone || r.settled {
			return
		}
		attemptDone = true
		conn.Abort()
		r.attemptFailed(i, fmt.Errorf("policy: attempt timed out after %v", r.opt.AttemptTimeout), true)
	})
	finishAttempt := func() bool {
		if attemptDone || r.settled {
			return false
		}
		attemptDone = true
		timeoutEv.Cancel()
		return true
	}

	var resp []byte
	conn.OnConnect = func() {
		if attemptDone || r.settled {
			return
		}
		if err := conn.Write(r.wire); err != nil {
			if finishAttempt() {
				conn.Abort()
				r.attemptFailed(i, fmt.Errorf("policy: send: %w", err), true)
			}
		}
	}
	conn.OnData = func(p []byte) {
		if attemptDone || r.settled {
			return
		}
		resp = append(resp, p...)
		version, errMsg, ok := parseResponse(resp)
		if !ok {
			return
		}
		if !finishAttempt() {
			return
		}
		switch {
		case errMsg != "":
			r.attemptFailed(i, fmt.Errorf("policy: agent: %s", errMsg), retryableAgentErr(errMsg))
		case version != r.version:
			r.attemptFailed(i, fmt.Errorf("policy: agent installed v%d, want v%d", version, r.version), false)
		default:
			r.settle(nil)
		}
		conn.Close()
	}
	conn.OnReset = func() {
		if finishAttempt() {
			r.attemptFailed(i, fmt.Errorf("policy: connection reset"), true)
		}
	}
	conn.OnPeerClose = func() {
		if finishAttempt() {
			r.attemptFailed(i, fmt.Errorf("policy: agent closed without replying"), true)
		}
	}
}

// PushAll distributes each device's current policy to its address and
// invokes done once with the per-device outcomes after every push
// settles (success, failure, or timeout).
func (s *Server) PushAll(targets map[string]packet.IP, done func(map[string]error)) {
	outcomes := make(map[string]error, len(targets))
	remaining := len(targets)
	finishOne := func(device string, err error) {
		outcomes[device] = err
		remaining--
		if remaining == 0 && done != nil {
			done(outcomes)
		}
	}
	if remaining == 0 {
		if done != nil {
			done(outcomes)
		}
		return
	}
	for device, ip := range targets {
		device := device
		if err := s.Push(device, ip, func(err error) { finishOne(device, err) }); err != nil {
			finishOne(device, err)
		}
	}
}
