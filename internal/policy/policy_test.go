package policy_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"barbican/internal/core"
	"barbican/internal/measure"
	"barbican/internal/packet"
	"barbican/internal/policy"
)

func newFlood(tb *core.Testbed, rate float64) *measure.Flooder {
	return measure.NewFlooder(tb.Attacker, tb.Target.IP(), measure.FloodConfig{
		RatePPS: rate,
		DstPort: core.FloodPort,
	})
}

const webPolicy = `allow in proto tcp from any to 10.0.0.2/32 port 80
allow out proto tcp from 10.0.0.2/32 port 80 to any
default deny
`

func setup(t *testing.T) (*core.Testbed, *policy.Server, *policy.Agent) {
	t.Helper()
	tb, err := core.NewTestbed(core.TestbedOptions{TargetDevice: core.DeviceEFW})
	if err != nil {
		t.Fatal(err)
	}
	psk := policy.DeriveKey("test")
	srv := policy.NewServer(tb.PolicyServer, psk)
	agent, err := policy.NewAgent(tb.Target, tb.PolicyServer.IP(), psk)
	if err != nil {
		t.Fatal(err)
	}
	return tb, srv, agent
}

func TestPushInstallsPolicyOnCard(t *testing.T) {
	tb, srv, agent := setup(t)
	if _, err := srv.SetPolicy("target", webPolicy); err != nil {
		t.Fatal(err)
	}
	var result error = errors.New("never finished")
	if err := srv.Push("target", tb.Target.IP(), func(err error) { result = err }); err != nil {
		t.Fatal(err)
	}
	if err := tb.Kernel.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if result != nil {
		t.Fatalf("push outcome: %v", result)
	}
	if agent.InstalledVersion() != 1 {
		t.Errorf("installed version = %d, want 1", agent.InstalledVersion())
	}
	rs := tb.Target.NIC().RuleSet()
	if rs == nil || rs.Len() != 2 {
		t.Fatalf("card rule set = %v", rs)
	}
	audit := srv.Audit()
	if len(audit) != 1 || !audit[0].OK {
		t.Errorf("audit = %v", audit)
	}
}

func TestPushRejectsWrongKey(t *testing.T) {
	tb, _, agent := setup(t)
	evil := policy.NewServer(tb.Attacker, policy.DeriveKey("WRONG"))
	if _, err := evil.SetPolicy("target", "allow both from any to any\ndefault allow\n"); err != nil {
		t.Fatal(err)
	}
	var result error
	if err := evil.Push("target", tb.Target.IP(), func(err error) { result = err }); err != nil {
		t.Fatal(err)
	}
	// Auth failures look like wire corruption to the server, so it
	// retries them — the push settles only after the retry budget.
	if err := tb.Kernel.RunUntil(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if result == nil || !strings.Contains(result.Error(), "authentication") {
		t.Errorf("forged push outcome: %v, want auth failure", result)
	}
	if agent.InstalledVersion() != 0 {
		t.Error("forged policy was installed")
	}
	if got := agent.Stats().AuthFails; got != 5 {
		t.Errorf("AuthFails = %d, want 5 (one per retry attempt)", got)
	}
	if tb.Target.NIC().RuleSet() != nil {
		t.Error("card accepted forged rules")
	}
}

func TestPushRejectsStaleVersion(t *testing.T) {
	tb, srv, agent := setup(t)
	// Install version 2 so a replayed v1 is strictly older.
	for i := 0; i < 2; i++ {
		if _, err := srv.SetPolicy("target", webPolicy); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Push("target", tb.Target.IP(), nil); err != nil {
		t.Fatal(err)
	}
	if err := tb.Kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if agent.InstalledVersion() != 2 {
		t.Fatalf("installed = %d, want 2", agent.InstalledVersion())
	}

	// A second server instance replays version 1; the agent refuses,
	// and a stale rejection is terminal — no retries.
	replay := policy.NewServer(tb.PolicyServer, policy.DeriveKey("test"))
	if _, err := replay.SetPolicy("target", webPolicy); err != nil {
		t.Fatal(err)
	}
	var result error
	if err := replay.Push("target", tb.Target.IP(), func(err error) { result = err }); err != nil {
		t.Fatal(err)
	}
	if err := tb.Kernel.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if result == nil || !strings.Contains(result.Error(), "stale") {
		t.Errorf("replayed push outcome: %v, want stale rejection", result)
	}
	if agent.Stats().StaleDrops != 1 {
		t.Errorf("StaleDrops = %d", agent.Stats().StaleDrops)
	}
}

func TestRePushOfInstalledVersionIsIdempotent(t *testing.T) {
	tb, srv, agent := setup(t)
	if _, err := srv.SetPolicy("target", webPolicy); err != nil {
		t.Fatal(err)
	}
	if err := srv.Push("target", tb.Target.IP(), nil); err != nil {
		t.Fatal(err)
	}
	if err := tb.Kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}

	// A second server with the same stored version re-pushes v1 — the
	// lost-OK retry case. The agent acks without reinstalling.
	again := policy.NewServer(tb.PolicyServer, policy.DeriveKey("test"))
	if _, err := again.SetPolicy("target", webPolicy); err != nil {
		t.Fatal(err)
	}
	var result error = errors.New("never finished")
	if err := again.Push("target", tb.Target.IP(), func(err error) { result = err }); err != nil {
		t.Fatal(err)
	}
	if err := tb.Kernel.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if result != nil {
		t.Errorf("idempotent re-push outcome: %v, want success", result)
	}
	st := agent.Stats()
	if st.Installs != 1 || st.IdempotentAcks != 1 || st.StaleDrops != 0 {
		t.Errorf("stats = %+v, want 1 install + 1 idempotent ack", st)
	}
	if v, _, ok := agent.LastGood(); !ok || v != 1 {
		t.Errorf("LastGood = %d, %v", v, ok)
	}
}

func TestPushUpdatesVersion(t *testing.T) {
	tb, srv, agent := setup(t)
	for i := 0; i < 3; i++ {
		if _, err := srv.SetPolicy("target", webPolicy); err != nil {
			t.Fatal(err)
		}
	}
	if _, v, ok := srv.Policy("target"); !ok || v != 3 {
		t.Fatalf("stored version = %d, want 3", v)
	}
	if err := srv.Push("target", tb.Target.IP(), nil); err != nil {
		t.Fatal(err)
	}
	if err := tb.Kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if agent.InstalledVersion() != 3 {
		t.Errorf("installed = %d, want 3", agent.InstalledVersion())
	}
}

func TestPushToDeadAgentTimesOut(t *testing.T) {
	tb, err := core.NewTestbed(core.TestbedOptions{TargetDevice: core.DeviceEFW})
	if err != nil {
		t.Fatal(err)
	}
	srv := policy.NewServer(tb.PolicyServer, policy.DeriveKey("test"))
	if _, err := srv.SetPolicy("target", webPolicy); err != nil {
		t.Fatal(err)
	}
	var result error
	// No agent is listening: the target stack RSTs the connection.
	if err := srv.Push("target", tb.Target.IP(), func(err error) { result = err }); err != nil {
		t.Fatal(err)
	}
	if err := tb.Kernel.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if result == nil {
		t.Error("push to dead agent reported success")
	}
	// Every attempt is audited (4 retry lines + the terminal failure).
	audit := srv.Audit()
	if len(audit) != 5 {
		t.Fatalf("audit has %d events, want 5 (one per attempt)", len(audit))
	}
	for _, e := range audit {
		if e.OK {
			t.Errorf("audit reported success: %v", e)
		}
	}
	st := srv.Stats()
	if st.Attempts != 5 || st.Retries != 4 || st.Failures != 1 || st.Successes != 0 {
		t.Errorf("server stats = %+v", st)
	}
}

func TestAgentRestartClearsLockupAndKeepsPolicy(t *testing.T) {
	tb, srv, agent := setup(t)
	if _, err := srv.SetPolicy("target", "default deny\n"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Push("target", tb.Target.IP(), nil); err != nil {
		t.Fatal(err)
	}
	if err := tb.Kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}

	// Flood the deny-all EFW over the lockup threshold.
	flood := newFlood(tb, 2000)
	flood.Start()
	if err := tb.Kernel.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	flood.Stop()
	if !tb.Target.NIC().Locked() {
		t.Fatal("EFW did not lock up")
	}

	agent.Restart()
	if tb.Target.NIC().Locked() {
		t.Error("restart did not clear the lockup")
	}
	if tb.Target.NIC().RuleSet() == nil {
		t.Error("restart lost the installed policy")
	}
	if agent.Stats().Restarts != 1 {
		t.Errorf("Restarts = %d", agent.Stats().Restarts)
	}
}

func TestPolicyRequiresValidation(t *testing.T) {
	_, srv, _ := setup(t)
	if _, err := srv.SetPolicy("target", "garbage\n"); err == nil {
		t.Error("invalid policy accepted")
	}
	if err := srv.Push("nobody", core.TargetIP, nil); err == nil {
		t.Error("push without stored policy accepted")
	}
}

func TestPushAllAggregatesOutcomes(t *testing.T) {
	tb, srv, _ := setup(t)
	if _, err := srv.SetPolicy("target", webPolicy); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.SetPolicy("ghost", webPolicy); err != nil {
		t.Fatal(err)
	}
	var outcomes map[string]error
	srv.PushAll(map[string]packet.IP{
		"target": tb.Target.IP(),
		"ghost":  core.AttackerIP, // no agent there
	}, func(o map[string]error) { outcomes = o })
	if err := tb.Kernel.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if outcomes == nil {
		t.Fatal("done never fired")
	}
	if outcomes["target"] != nil {
		t.Errorf("target outcome: %v", outcomes["target"])
	}
	if outcomes["ghost"] == nil {
		t.Error("ghost push reported success")
	}
}
