package policy

// OraclePolicy is a canned policy modeled on 3Com's recommended
// protection for an Oracle database server, which the paper cites as
// requiring at least 31 rules — the example that makes "keep rule-sets
// under eight rules" impractical advice.
const OraclePolicy = `# Oracle database server protection (after 3Com's recommended rule-set)
deny in proto tcp from any to any port 135-139            # block NetBIOS
deny in proto udp from any to any port 135-139
deny in proto tcp from any to any port 445                # block SMB
allow in proto tcp from 10.0.0.0/24 to any port 1521      # TNS listener
allow in proto tcp from 10.0.0.0/24 to any port 1522      # TNS listener (failover)
allow in proto tcp from 10.0.0.0/24 to any port 1526      # TNS alternate
allow in proto tcp from 10.0.0.0/24 to any port 1575      # Oracle names
allow in proto tcp from 10.0.0.0/24 to any port 1630      # connection manager
allow in proto tcp from 10.0.0.0/24 to any port 1830      # connection manager admin
allow in proto tcp from 10.0.0.0/24 to any port 2481      # IIOP
allow in proto tcp from 10.0.0.0/24 to any port 2482      # IIOP/SSL
allow in proto tcp from 10.0.0.0/24 to any port 2483      # TTC
allow in proto tcp from 10.0.0.0/24 to any port 2484      # TTC/SSL
allow in proto tcp from 10.0.0.0/24 to any port 2100      # XDB FTP
allow in proto tcp from 10.0.0.0/24 to any port 8080      # XDB HTTP
allow in proto tcp from 10.0.0.10/32 to any port 1810     # enterprise manager
allow in proto tcp from 10.0.0.10/32 to any port 1812     # EM reporting
allow in proto tcp from 10.0.0.10/32 to any port 5500     # EM console
allow in proto tcp from 10.0.0.10/32 to any port 5520     # EM agent
allow in proto tcp from 10.0.0.10/32 to any port 3938     # EM upload
allow in proto tcp from 10.0.0.10/32 to any port 22       # managed ssh
allow in proto icmp from 10.0.0.10/32 to any              # monitoring ping
allow out proto tcp from any port 1521 to 10.0.0.0/24     # listener replies
allow out proto tcp from any port 2481-2484 to 10.0.0.0/24
allow out proto tcp from any port 8080 to 10.0.0.0/24
allow out proto udp from any port 1024-65535 to 10.0.0.10/32 port 53   # DNS
allow out proto udp from any port 1024-65535 to 10.0.0.10/32 port 123  # NTP
allow out proto tcp from any port 1024-65535 to 10.0.0.10/32 port 25   # alert mail
allow out proto icmp from any to 10.0.0.10/32
deny in proto udp from any to any port 161-162            # no external SNMP
deny in proto tcp from any to any port 23                 # no telnet
deny both proto tcp from any to any port 512-514          # no r-services
default deny
`
