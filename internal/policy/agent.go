package policy

import (
	"fmt"

	"barbican/internal/fw"
	"barbican/internal/nic"
	"barbican/internal/packet"
	"barbican/internal/stack"
	"barbican/internal/vpg"
)

// AgentStats counts agent activity.
type AgentStats struct {
	Installs   uint64
	AuthFails  uint64
	ParseFails uint64
	StaleDrops uint64 // pushes older than the installed version
	Restarts   uint64
}

// Agent is the firewall agent running on a protected host: it receives
// signed policy pushes from the central server and installs them on the
// host's filtering card. It is also the component the operator restarts
// to clear the EFW's Deny-All lockup.
type Agent struct {
	host *stack.Host
	card *nic.NIC
	psk  []byte

	installedVersion uint32
	installed        *fw.RuleSet
	installedGroups  []*vpg.Group
	listener         *stack.Listener
	stats            AgentStats

	// OnInstall, when set, observes successful installs.
	OnInstall func(version uint32, rs *fw.RuleSet)
}

// NewAgent starts an agent on the host, managing the host's NIC. The
// card's management bypass is armed for server, so a freshly pushed
// deny-all policy cannot sever the control channel.
func NewAgent(h *stack.Host, server packet.IP, psk []byte) (*Agent, error) {
	a := &Agent{host: h, card: h.NIC(), psk: psk}
	l, err := h.ListenTCP(AgentPort, a.serve)
	if err != nil {
		return nil, fmt.Errorf("policy: agent: %w", err)
	}
	a.listener = l
	a.card.SetManagementBypass(server, AgentPort)
	return a, nil
}

// InstalledVersion returns the version of the currently enforced policy
// (0 before the first push).
func (a *Agent) InstalledVersion() uint32 { return a.installedVersion }

// Installed returns the enforced rule set (nil before the first push).
func (a *Agent) Installed() *fw.RuleSet { return a.installed }

// Stats returns a snapshot of the agent counters.
func (a *Agent) Stats() AgentStats { return a.stats }

// InstalledGroups returns the names of the provisioned VPGs.
func (a *Agent) InstalledGroups() []string {
	names := make([]string, 0, len(a.installedGroups))
	for _, g := range a.installedGroups {
		names = append(names, g.Name())
	}
	return names
}

// Restart restarts the agent software: the card is reset (clearing a
// lockup) and the current policy and groups re-installed.
func (a *Agent) Restart() {
	a.stats.Restarts++
	a.card.RestartAgent()
	if a.installed != nil {
		a.card.InstallRuleSet(a.installed)
	}
	for _, g := range a.installedGroups {
		// Re-installation of a surviving group cannot fail membership
		// validation; ignore the impossible error.
		_ = a.card.InstallGroup(g, a.host.IP())
	}
}

// Close stops accepting pushes.
func (a *Agent) Close() { a.listener.Close() }

func (a *Agent) serve(c *stack.Conn) {
	var buf []byte
	c.OnData = func(p []byte) {
		buf = append(buf, p...)
		msg, n, err := decodePush(a.psk, buf)
		if err != nil {
			if err == ErrBadMAC {
				a.stats.AuthFails++
			}
			if werr := c.Write(encodeErr(err.Error())); werr == nil {
				c.Close()
			}
			return
		}
		if msg == nil {
			return // need more bytes
		}
		buf = buf[n:]
		a.handlePush(c, msg)
	}
}

func (a *Agent) handlePush(c *stack.Conn, msg *pushMessage) {
	if msg.Version <= a.installedVersion {
		a.stats.StaleDrops++
		if err := c.Write(encodeErr(fmt.Sprintf("stale version %d (installed %d)", msg.Version, a.installedVersion))); err == nil {
			c.Close()
		}
		return
	}
	rs, err := Parse(msg.Text)
	if err != nil {
		a.stats.ParseFails++
		if werr := c.Write(encodeErr(err.Error())); werr == nil {
			c.Close()
		}
		return
	}
	// Provision the pushed VPGs before enforcing rules that require them.
	groups := make([]*vpg.Group, 0, len(msg.Groups))
	for _, def := range msg.Groups {
		g, err := vpg.NewGroup(def.Name, def.Key, def.Members...)
		if err == nil {
			err = a.card.InstallGroup(g, a.host.IP())
		}
		if err != nil {
			a.stats.ParseFails++
			if werr := c.Write(encodeErr(fmt.Sprintf("group %q: %v", def.Name, err))); werr == nil {
				c.Close()
			}
			return
		}
		groups = append(groups, g)
	}
	a.installedGroups = groups
	a.installed = rs
	a.installedVersion = msg.Version
	a.card.InstallRuleSet(rs)
	a.stats.Installs++
	if a.OnInstall != nil {
		a.OnInstall(msg.Version, rs)
	}
	if err := c.Write(encodeOK(msg.Version)); err == nil {
		c.Close()
	}
}
