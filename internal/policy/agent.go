package policy

import (
	"fmt"
	"time"

	"barbican/internal/fw"
	"barbican/internal/nic"
	"barbican/internal/packet"
	"barbican/internal/stack"
	"barbican/internal/vpg"
)

// AgentStats counts agent activity.
type AgentStats struct {
	Installs       uint64
	AuthFails      uint64
	ParseFails     uint64
	StaleDrops     uint64 // pushes strictly older than the installed version
	IdempotentAcks uint64 // re-pushes of the installed version, acked without reinstall
	TimeoutAborts  uint64 // connections reaped by the per-push read deadline
	AbortedPushes  uint64 // connections torn down mid-push by the peer
	Restarts       uint64
}

// AgentReadTimeout bounds how long one push connection may stay open
// without completing: a truncated message (its tail lost to a fault or
// partition) must not wedge the listener slot or hold the card's
// update watchdog hostage forever.
const AgentReadTimeout = 3 * time.Second

// Agent is the firewall agent running on a protected host: it receives
// signed policy pushes from the central server and installs them on the
// host's filtering card. It is also the component the operator restarts
// to clear the EFW's Deny-All lockup.
type Agent struct {
	host *stack.Host
	card *nic.NIC
	psk  []byte

	installedVersion uint32
	installed        *fw.RuleSet
	installedGroups  []*vpg.Group
	listener         *stack.Listener
	stats            AgentStats
	lastGoodAt       time.Duration // virtual time of the last successful install
	everInstalled    bool

	// OnInstall, when set, observes successful installs.
	OnInstall func(version uint32, rs *fw.RuleSet)
}

// NewAgent starts an agent on the host, managing the host's NIC. The
// card's management bypass is armed for server, so a freshly pushed
// deny-all policy cannot sever the control channel.
func NewAgent(h *stack.Host, server packet.IP, psk []byte) (*Agent, error) {
	a := &Agent{host: h, card: h.NIC(), psk: psk}
	l, err := h.ListenTCP(AgentPort, a.serve)
	if err != nil {
		return nil, fmt.Errorf("policy: agent: %w", err)
	}
	a.listener = l
	a.card.SetManagementBypass(server, AgentPort)
	return a, nil
}

// InstalledVersion returns the version of the currently enforced policy
// (0 before the first push).
func (a *Agent) InstalledVersion() uint32 { return a.installedVersion }

// LastGood reports the last successfully installed policy version and
// when it landed (virtual time). ok is false before the first install.
func (a *Agent) LastGood() (version uint32, at time.Duration, ok bool) {
	return a.installedVersion, a.lastGoodAt, a.everInstalled
}

// Staleness reports how long the enforced policy has gone without a
// successful (re-)install — the operator-facing "how far behind might
// this card be" signal. Before the first install it is the agent's
// whole lifetime.
func (a *Agent) Staleness() time.Duration {
	return a.host.Kernel().Now() - a.lastGoodAt
}

// Installed returns the enforced rule set (nil before the first push).
func (a *Agent) Installed() *fw.RuleSet { return a.installed }

// Stats returns a snapshot of the agent counters.
func (a *Agent) Stats() AgentStats { return a.stats }

// InstalledGroups returns the names of the provisioned VPGs.
func (a *Agent) InstalledGroups() []string {
	names := make([]string, 0, len(a.installedGroups))
	for _, g := range a.installedGroups {
		names = append(names, g.Name())
	}
	return names
}

// Restart restarts the agent software: the card is reset (clearing a
// lockup) and the current policy and groups re-installed.
func (a *Agent) Restart() {
	a.stats.Restarts++
	a.card.RestartAgent()
	if a.installed != nil {
		a.card.InstallRuleSet(a.installed)
	}
	for _, g := range a.installedGroups {
		// Re-installation of a surviving group cannot fail membership
		// validation; ignore the impossible error.
		_ = a.card.InstallGroup(g, a.host.IP())
	}
}

// Close stops accepting pushes.
func (a *Agent) Close() { a.listener.Close() }

// serve handles one push connection. Faults on the management channel
// mean the bytes may be truncated, bit-flipped, or never complete; the
// handler must reject without panicking and, crucially, without
// wedging: every exit path settles the card's update watchdog and the
// read deadline frees the connection when the tail never arrives.
func (a *Agent) serve(c *stack.Conn) {
	var buf []byte
	began := false    // card told an update is in flight
	complete := false // a push was answered (OK or ERR)

	deadline := a.host.Kernel().After(AgentReadTimeout, func() {
		if complete {
			return
		}
		complete = true
		a.stats.TimeoutAborts++
		if began {
			// The push died mid-flight: this is a real interruption,
			// the degraded machine's fail-mode applies.
			a.card.AbortPolicyUpdate()
		}
		c.Abort()
	})
	// reject answers a malformed push and settles the update state
	// cleanly (a fully received, cleanly rejected message is not an
	// interruption).
	reject := func(msg string) {
		complete = true
		deadline.Cancel()
		if began {
			a.card.CancelPolicyUpdate()
		}
		if werr := c.Write(encodeErr(msg)); werr == nil {
			c.Close()
		} else {
			c.Abort()
		}
	}
	torndown := func() {
		if complete {
			return
		}
		complete = true
		deadline.Cancel()
		a.stats.AbortedPushes++
		if began {
			a.card.AbortPolicyUpdate()
		}
	}
	c.OnReset = torndown
	c.OnPeerClose = torndown

	c.OnData = func(p []byte) {
		if complete {
			return
		}
		buf = append(buf, p...)
		if !began && len(buf) > 0 {
			began = true
			a.card.BeginPolicyUpdate()
		}
		msg, n, err := decodePush(a.psk, buf)
		if err != nil {
			if err == ErrBadMAC {
				a.stats.AuthFails++
			} else {
				a.stats.ParseFails++
			}
			reject(err.Error())
			return
		}
		if msg == nil {
			// Need more bytes — but a corrupted length field must not
			// buffer unboundedly while we wait for a tail that will
			// never come.
			if len(buf) > headerLen+maxPayloadSize+macLen {
				a.stats.ParseFails++
				reject(ErrTooLarge.Error())
			}
			return
		}
		buf = buf[n:]
		complete = true
		deadline.Cancel()
		a.handlePush(c, msg)
	}
}

// handlePush processes one fully received, authenticated push. The
// card's update watchdog is armed (serve called BeginPolicyUpdate);
// every path here settles it — commit on install, cancel on a clean
// rejection or idempotent ack.
func (a *Agent) handlePush(c *stack.Conn, msg *pushMessage) {
	rejectWith := func(detail string) {
		a.card.CancelPolicyUpdate()
		if werr := c.Write(encodeErr(detail)); werr == nil {
			c.Close()
		} else {
			c.Abort()
		}
	}
	if a.everInstalled && msg.Version == a.installedVersion {
		// Idempotent re-push: a retry whose previous OK was lost on the
		// management channel. Confirm without reinstalling.
		a.stats.IdempotentAcks++
		a.lastGoodAt = a.host.Kernel().Now()
		a.card.CancelPolicyUpdate()
		if err := c.Write(encodeOK(msg.Version)); err == nil {
			c.Close()
		} else {
			c.Abort()
		}
		return
	}
	if msg.Version < a.installedVersion {
		a.stats.StaleDrops++
		rejectWith(fmt.Sprintf("stale version %d (installed %d)", msg.Version, a.installedVersion))
		return
	}
	rs, err := Parse(msg.Text)
	if err != nil {
		a.stats.ParseFails++
		rejectWith(err.Error())
		return
	}
	// Provision the pushed VPGs before enforcing rules that require them.
	groups := make([]*vpg.Group, 0, len(msg.Groups))
	for _, def := range msg.Groups {
		g, err := vpg.NewGroup(def.Name, def.Key, def.Members...)
		if err == nil {
			err = a.card.InstallGroup(g, a.host.IP())
		}
		if err != nil {
			a.stats.ParseFails++
			rejectWith(fmt.Sprintf("group %q: %v", def.Name, err))
			return
		}
		groups = append(groups, g)
	}
	a.installedGroups = groups
	a.installed = rs
	a.installedVersion = msg.Version
	a.everInstalled = true
	a.lastGoodAt = a.host.Kernel().Now()
	a.card.CommitPolicyUpdate(rs)
	a.stats.Installs++
	if a.OnInstall != nil {
		a.OnInstall(msg.Version, rs)
	}
	if err := c.Write(encodeOK(msg.Version)); err == nil {
		c.Close()
	}
}
