package policy_test

import (
	"fmt"

	"barbican/internal/policy"
)

// Policies are plain text and round-trip through Parse/Format.
func ExampleParse() {
	rs, err := policy.Parse(`
allow in proto tcp from any to 10.0.0.2/32 port 80  # web
deny  in proto icmp from any to any
default deny
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d rules, default %v\n", rs.Len(), rs.Default())
	fmt.Print(policy.Format(rs))
	// Output:
	// 2 rules, default deny
	// allow in proto tcp from any to 10.0.0.2/32 port 80 # web
	// deny in proto icmp from any to any
	// default deny
}
