package policy

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"barbican/internal/packet"
	"barbican/internal/vpg"
)

// AgentPort is the TCP port firewall agents listen on for policy pushes.
const AgentPort = 4747

// Wire framing: "BPL2" | uint32 payloadLen | payload, where payload is
//
//	uint32 version | uint16 nameLen | name | uint32 textLen | text |
//	uint8 groupCount | groups... | 32-byte HMAC
//
// and each group is
//
//	uint8 nameLen | name | 32-byte key | uint16 memberCount | members (4 bytes each)
//
// The HMAC (SHA-256, pre-shared key) covers everything before it. VPG
// keys ride the same authenticated channel as rule-sets, as in the ADF
// architecture, where the policy server provisions group membership.
const (
	protoMagic     = "BPL2"
	headerLen      = 8
	macLen         = 32
	maxPayloadSize = 1 << 20
	maxGroups      = 255
)

// Errors surfaced by message decoding.
var (
	ErrBadMagic  = errors.New("policy: bad protocol magic")
	ErrTruncated = errors.New("policy: truncated message")
	ErrBadMAC    = errors.New("policy: message authentication failed")
	ErrTooLarge  = errors.New("policy: message too large")
)

// groupDef is a VPG provisioning record carried in a push.
type groupDef struct {
	Name    string
	Key     vpg.Key
	Members []packet.IP
}

// pushMessage is a policy push: a rule-set plus the VPGs the device
// participates in.
type pushMessage struct {
	Version uint32
	Name    string
	Text    string
	Groups  []groupDef
}

// body serializes everything the MAC covers.
func (m *pushMessage) body() ([]byte, error) {
	if len(m.Groups) > maxGroups {
		return nil, fmt.Errorf("policy: too many groups (%d)", len(m.Groups))
	}
	var b []byte
	b = binary.BigEndian.AppendUint32(b, m.Version)
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Name)))
	b = append(b, m.Name...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.Text)))
	b = append(b, m.Text...)
	b = append(b, byte(len(m.Groups)))
	for _, g := range m.Groups {
		if len(g.Name) > 255 {
			return nil, fmt.Errorf("policy: group name too long")
		}
		b = append(b, byte(len(g.Name)))
		b = append(b, g.Name...)
		b = append(b, g.Key[:]...)
		b = binary.BigEndian.AppendUint16(b, uint16(len(g.Members)))
		for _, ip := range g.Members {
			b = append(b, ip[:]...)
		}
	}
	return b, nil
}

func sign(psk, body []byte) []byte {
	mac := hmac.New(sha256.New, psk)
	mac.Write(body)
	return mac.Sum(nil)
}

// encode frames and signs the message.
func (m *pushMessage) encode(psk []byte) ([]byte, error) {
	body, err := m.body()
	if err != nil {
		return nil, err
	}
	payloadLen := len(body) + macLen
	b := make([]byte, 0, headerLen+payloadLen)
	b = append(b, protoMagic...)
	b = binary.BigEndian.AppendUint32(b, uint32(payloadLen))
	b = append(b, body...)
	b = append(b, sign(psk, body)...)
	return b, nil
}

// decodePush parses a framed buffer. It returns (nil, nil) when more
// bytes are needed, and the consumed byte count on success.
func decodePush(psk, buf []byte) (*pushMessage, int, error) {
	if len(buf) < headerLen {
		return nil, 0, nil
	}
	if string(buf[:4]) != protoMagic {
		return nil, 0, ErrBadMagic
	}
	payloadLen := int(binary.BigEndian.Uint32(buf[4:8]))
	if payloadLen > maxPayloadSize {
		return nil, 0, ErrTooLarge
	}
	if len(buf) < headerLen+payloadLen {
		return nil, 0, nil
	}
	p := buf[headerLen : headerLen+payloadLen]
	if payloadLen < macLen {
		return nil, 0, ErrTruncated
	}
	body, tag := p[:payloadLen-macLen], p[payloadLen-macLen:]
	if !hmac.Equal(tag, sign(psk, body)) {
		return nil, 0, ErrBadMAC
	}
	m, err := parseBody(body)
	if err != nil {
		return nil, 0, err
	}
	return m, headerLen + payloadLen, nil
}

func parseBody(p []byte) (*pushMessage, error) {
	if len(p) < 4+2 {
		return nil, ErrTruncated
	}
	m := &pushMessage{Version: binary.BigEndian.Uint32(p[0:4])}
	nameLen := int(binary.BigEndian.Uint16(p[4:6]))
	p = p[6:]
	if len(p) < nameLen+4 {
		return nil, ErrTruncated
	}
	m.Name = string(p[:nameLen])
	textLen := int(binary.BigEndian.Uint32(p[nameLen : nameLen+4]))
	p = p[nameLen+4:]
	if len(p) < textLen+1 {
		return nil, ErrTruncated
	}
	m.Text = string(p[:textLen])
	p = p[textLen:]
	groupCount := int(p[0])
	p = p[1:]
	for i := 0; i < groupCount; i++ {
		if len(p) < 1 {
			return nil, ErrTruncated
		}
		n := int(p[0])
		p = p[1:]
		if len(p) < n+32+2 {
			return nil, ErrTruncated
		}
		var g groupDef
		g.Name = string(p[:n])
		copy(g.Key[:], p[n:n+32])
		members := int(binary.BigEndian.Uint16(p[n+32 : n+34]))
		p = p[n+34:]
		if len(p) < members*4 {
			return nil, ErrTruncated
		}
		for j := 0; j < members; j++ {
			var ip packet.IP
			copy(ip[:], p[j*4:j*4+4])
			g.Members = append(g.Members, ip)
		}
		p = p[members*4:]
		m.Groups = append(m.Groups, g)
	}
	if len(p) != 0 {
		return nil, ErrTruncated
	}
	return m, nil
}

// Responses are a single text line: "OK <version>\n" or "ERR <msg>\n".

func encodeOK(version uint32) []byte {
	return []byte(fmt.Sprintf("OK %d\n", version))
}

func encodeErr(msg string) []byte {
	return []byte("ERR " + strings.ReplaceAll(msg, "\n", " ") + "\n")
}

// parseResponse interprets an agent's reply line. It returns (0, "", false)
// until a full line is buffered.
func parseResponse(buf []byte) (version uint32, errMsg string, done bool) {
	line, _, found := strings.Cut(string(buf), "\n")
	if !found {
		return 0, "", false
	}
	if rest, ok := strings.CutPrefix(line, "OK "); ok {
		v, err := strconv.ParseUint(rest, 10, 32)
		if err != nil {
			return 0, "malformed OK response", true
		}
		return uint32(v), "", true
	}
	if rest, ok := strings.CutPrefix(line, "ERR "); ok {
		return 0, rest, true
	}
	return 0, "malformed response: " + line, true
}
