package vpg_test

import (
	"fmt"

	"barbican/internal/packet"
	"barbican/internal/vpg"
)

// Seal and open a group message; tampering is detected.
func ExampleGroup() {
	alice := packet.MustIP("10.0.0.1")
	bob := packet.MustIP("10.0.0.2")
	g, err := vpg.NewGroup("ops", vpg.DeriveKey("shared-secret"), alice, bob)
	if err != nil {
		fmt.Println(err)
		return
	}

	env, err := g.Seal(alice, bob, packet.ProtoUDP, []byte("rotate the logs"), 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	_, plaintext, _, err := g.Open(alice, bob, env)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s\n", plaintext)

	env[len(env)-1] ^= 1 // tamper
	if _, _, _, err := g.Open(alice, bob, env); err != nil {
		fmt.Println("tampered envelope rejected")
	}
	// Output:
	// rotate the logs
	// tampered envelope rejected
}
