// Package vpg implements virtual private groups, the ADF's encrypted
// host-to-host channels (Carney et al., "Virtual Private Groups").
//
// A group is a set of member hosts sharing a group key. Traffic between
// members is sealed into envelopes providing confidentiality (AES-256-CTR),
// integrity, and sender authentication (HMAC-SHA-256 bound to the sender
// and destination addresses, plus group membership checks). Receivers keep
// a per-sender anti-replay window.
//
// The real ADF's cipher suite is proprietary; this package substitutes
// modern stdlib primitives with the same security properties. The *cost*
// of the card's crypto is modeled separately by internal/nic.
package vpg

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"barbican/internal/packet"
)

// Key is a 256-bit group key.
type Key [32]byte

// DeriveKey derives a group key from a passphrase. Real deployments
// provision keys from the policy server; experiments and tests derive
// them from names.
func DeriveKey(passphrase string) Key {
	return sha256.Sum256([]byte("barbican-vpg-key:" + passphrase))
}

// Envelope framing constants.
const (
	envVersion  = 1
	tagLen      = 16
	maxNameLen  = 64
	fixedHdrLen = 11 // version(1) + origProto(1) + nameLen(1) + seq(8)
)

// Overhead returns the number of bytes sealing adds to a transport
// segment for a group with the given name length.
func Overhead(nameLen int) int { return fixedHdrLen + nameLen + tagLen }

// Errors reported by Open.
var (
	ErrNotMember   = errors.New("vpg: sender is not a group member")
	ErrBadEnvelope = errors.New("vpg: malformed envelope")
	ErrWrongGroup  = errors.New("vpg: envelope for a different group")
	ErrAuth        = errors.New("vpg: authentication failed")
	ErrReplay      = errors.New("vpg: replayed sequence number")
)

// Group is a named virtual private group with a shared key and a member
// set.
type Group struct {
	name    string
	encKey  [32]byte
	macKey  [32]byte
	members map[packet.IP]struct{}
}

// NewGroup creates a group. Member addresses may be added later with
// AddMember.
func NewGroup(name string, key Key, members ...packet.IP) (*Group, error) {
	if name == "" || len(name) > maxNameLen {
		return nil, fmt.Errorf("vpg: invalid group name %q", name)
	}
	g := &Group{
		name:    name,
		encKey:  deriveSubkey(key, "enc"),
		macKey:  deriveSubkey(key, "mac"),
		members: make(map[packet.IP]struct{}, len(members)),
	}
	for _, m := range members {
		g.members[m] = struct{}{}
	}
	return g, nil
}

func deriveSubkey(key Key, label string) [32]byte {
	mac := hmac.New(sha256.New, key[:])
	mac.Write([]byte(label))
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// Name returns the group name.
func (g *Group) Name() string { return g.name }

// AddMember adds a host address to the group.
func (g *Group) AddMember(ip packet.IP) { g.members[ip] = struct{}{} }

// RemoveMember removes a host address from the group.
func (g *Group) RemoveMember(ip packet.IP) { delete(g.members, ip) }

// IsMember reports whether ip belongs to the group.
func (g *Group) IsMember(ip packet.IP) bool {
	_, ok := g.members[ip]
	return ok
}

// Members returns the member addresses in sorted order.
func (g *Group) Members() []packet.IP {
	out := make([]packet.IP, 0, len(g.members))
	for m := range g.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Uint32() < out[j].Uint32() })
	return out
}

// Seal encrypts and authenticates a transport segment from sender to dst.
// origProto records the encapsulated transport protocol so the receiver
// can restore the original datagram. seq must be strictly increasing per
// sender (use a Sealer).
func (g *Group) Seal(sender, dst packet.IP, origProto packet.Protocol, transport []byte, seq uint64) ([]byte, error) {
	if !g.IsMember(sender) {
		return nil, ErrNotMember
	}
	if !g.IsMember(dst) {
		return nil, fmt.Errorf("%w (destination %v)", ErrNotMember, dst)
	}
	n := len(g.name)
	env := make([]byte, fixedHdrLen+n+len(transport)+tagLen)
	env[0] = envVersion
	env[1] = byte(origProto)
	env[2] = byte(n)
	copy(env[3:], g.name)
	binary.BigEndian.PutUint64(env[3+n:], seq)
	ct := env[fixedHdrLen+n : fixedHdrLen+n+len(transport)]
	g.stream(sender, seq).XORKeyStream(ct, transport)
	tag := g.tag(sender, dst, env[:len(env)-tagLen])
	copy(env[len(env)-tagLen:], tag)
	return env, nil
}

// Open verifies and decrypts an envelope received from sender addressed
// to dst, returning the original protocol, transport segment, and
// sequence number. Replay checking is the caller's responsibility (see
// ReplayWindow); Open itself is stateless.
func (g *Group) Open(sender, dst packet.IP, env []byte) (packet.Protocol, []byte, uint64, error) {
	if len(env) < fixedHdrLen+tagLen {
		return 0, nil, 0, ErrBadEnvelope
	}
	if env[0] != envVersion {
		return 0, nil, 0, fmt.Errorf("%w: version %d", ErrBadEnvelope, env[0])
	}
	n := int(env[2])
	if len(env) < fixedHdrLen+n+tagLen {
		return 0, nil, 0, ErrBadEnvelope
	}
	if string(env[3:3+n]) != g.name {
		return 0, nil, 0, ErrWrongGroup
	}
	if !g.IsMember(sender) {
		return 0, nil, 0, ErrNotMember
	}
	body := env[:len(env)-tagLen]
	want := g.tag(sender, dst, body)
	if !hmac.Equal(want, env[len(env)-tagLen:]) {
		return 0, nil, 0, ErrAuth
	}
	seq := binary.BigEndian.Uint64(env[3+n:])
	ct := env[fixedHdrLen+n : len(env)-tagLen]
	pt := make([]byte, len(ct))
	g.stream(sender, seq).XORKeyStream(pt, ct)
	return packet.Protocol(env[1]), pt, seq, nil
}

// stream builds the CTR keystream bound to (sender, seq).
func (g *Group) stream(sender packet.IP, seq uint64) cipher.Stream {
	block, err := aes.NewCipher(g.encKey[:])
	if err != nil {
		// AES-256 with a fixed 32-byte key cannot fail; treat as corruption.
		panic("vpg: aes.NewCipher: " + err.Error())
	}
	var iv [aes.BlockSize]byte
	copy(iv[0:4], sender[:])
	binary.BigEndian.PutUint64(iv[4:12], seq)
	return cipher.NewCTR(block, iv[:])
}

// tag computes the truncated HMAC binding sender, destination, and body.
func (g *Group) tag(sender, dst packet.IP, body []byte) []byte {
	mac := hmac.New(sha256.New, g.macKey[:])
	mac.Write(sender[:])
	mac.Write(dst[:])
	mac.Write(body)
	return mac.Sum(nil)[:tagLen]
}

// PeekGroupName extracts the group name from an envelope without
// verifying it, so a receiver holding several groups can route the
// envelope to the right one.
func PeekGroupName(env []byte) (string, error) {
	if len(env) < fixedHdrLen || env[0] != envVersion {
		return "", ErrBadEnvelope
	}
	n := int(env[2])
	if len(env) < fixedHdrLen+n {
		return "", ErrBadEnvelope
	}
	return string(env[3 : 3+n]), nil
}

// Sealer seals traffic from one member with automatically increasing
// sequence numbers.
type Sealer struct {
	group  *Group
	sender packet.IP
	seq    uint64
}

// NewSealer creates a sealer for the given member address.
func NewSealer(g *Group, sender packet.IP) (*Sealer, error) {
	if !g.IsMember(sender) {
		return nil, ErrNotMember
	}
	return &Sealer{group: g, sender: sender}, nil
}

// Seal seals one transport segment toward dst.
func (s *Sealer) Seal(dst packet.IP, origProto packet.Protocol, transport []byte) ([]byte, error) {
	s.seq++
	return s.group.Seal(s.sender, dst, origProto, transport, s.seq)
}

// ReplayWindow is a 64-entry sliding anti-replay window, as in IPsec.
// The zero value is ready to use and accepts any first sequence number.
type ReplayWindow struct {
	highest uint64
	bitmap  uint64
	primed  bool
}

// Check validates seq and marks it seen. It returns false for replays and
// for sequence numbers older than the window.
func (w *ReplayWindow) Check(seq uint64) bool {
	if !w.primed {
		w.primed = true
		w.highest = seq
		w.bitmap = 1
		return true
	}
	switch {
	case seq > w.highest:
		shift := seq - w.highest
		if shift >= 64 {
			w.bitmap = 0
		} else {
			w.bitmap <<= shift
		}
		w.bitmap |= 1
		w.highest = seq
		return true
	case w.highest-seq >= 64:
		return false // too old
	default:
		bit := uint64(1) << (w.highest - seq)
		if w.bitmap&bit != 0 {
			return false // replay
		}
		w.bitmap |= bit
		return true
	}
}
