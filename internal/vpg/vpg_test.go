package vpg

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"barbican/internal/packet"
)

var (
	alice = packet.MustIP("10.0.0.1")
	bob   = packet.MustIP("10.0.0.2")
	eve   = packet.MustIP("10.0.0.66")
)

func newTestGroup(t *testing.T) *Group {
	t.Helper()
	g, err := NewGroup("psq", DeriveKey("test"), alice, bob)
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	return g
}

func TestSealOpenRoundTrip(t *testing.T) {
	g := newTestGroup(t)
	plaintext := []byte("GET /index.html HTTP/1.0\r\n\r\n")
	env, err := g.Seal(alice, bob, packet.ProtoTCP, plaintext, 1)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if bytes.Contains(env, plaintext[:16]) {
		t.Error("envelope contains plaintext (no confidentiality)")
	}
	proto, got, seq, err := g.Open(alice, bob, env)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if proto != packet.ProtoTCP || seq != 1 || !bytes.Equal(got, plaintext) {
		t.Errorf("round trip mismatch: proto=%v seq=%d payload=%q", proto, seq, got)
	}
}

func TestSealRejectsNonMembers(t *testing.T) {
	g := newTestGroup(t)
	if _, err := g.Seal(eve, bob, packet.ProtoTCP, []byte("x"), 1); !errors.Is(err, ErrNotMember) {
		t.Errorf("Seal from non-member: %v, want ErrNotMember", err)
	}
	if _, err := g.Seal(alice, eve, packet.ProtoTCP, []byte("x"), 1); !errors.Is(err, ErrNotMember) {
		t.Errorf("Seal to non-member: %v, want ErrNotMember", err)
	}
}

func TestOpenRejectsNonMemberSender(t *testing.T) {
	g := newTestGroup(t)
	env, err := g.Seal(alice, bob, packet.ProtoTCP, []byte("x"), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Even a byte-identical envelope claimed to be from a non-member fails.
	if _, _, _, err := g.Open(eve, bob, env); !errors.Is(err, ErrNotMember) {
		t.Errorf("Open from non-member: %v, want ErrNotMember", err)
	}
}

func TestOpenRejectsTamper(t *testing.T) {
	g := newTestGroup(t)
	env, err := g.Seal(alice, bob, packet.ProtoTCP, []byte("sensitive"), 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{1, fixedHdrLen + 3 /* name */, len(env) - tagLen - 1, len(env) - 1} {
		mutated := append([]byte(nil), env...)
		mutated[idx] ^= 0x01
		if _, _, _, err := g.Open(alice, bob, mutated); err == nil {
			t.Errorf("tampered byte %d accepted", idx)
		}
	}
}

func TestOpenBindsSenderAndDestination(t *testing.T) {
	g := newTestGroup(t)
	env, err := g.Seal(alice, bob, packet.ProtoTCP, []byte("x"), 1)
	if err != nil {
		t.Fatal(err)
	}
	// A member replaying the envelope as its own traffic must fail auth.
	if _, _, _, err := g.Open(bob, bob, env); !errors.Is(err, ErrAuth) {
		t.Errorf("sender spoof: %v, want ErrAuth", err)
	}
	// Redirecting to another destination must fail auth.
	if _, _, _, err := g.Open(alice, alice, env); !errors.Is(err, ErrAuth) {
		t.Errorf("destination spoof: %v, want ErrAuth", err)
	}
}

func TestOpenRejectsWrongGroup(t *testing.T) {
	g := newTestGroup(t)
	other, err := NewGroup("other", DeriveKey("test2"), alice, bob)
	if err != nil {
		t.Fatal(err)
	}
	env, err := g.Seal(alice, bob, packet.ProtoTCP, []byte("x"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := other.Open(alice, bob, env); !errors.Is(err, ErrWrongGroup) {
		t.Errorf("wrong group: %v, want ErrWrongGroup", err)
	}
}

func TestOpenRejectsSameNameDifferentKey(t *testing.T) {
	g := newTestGroup(t)
	imposter, err := NewGroup("psq", DeriveKey("wrong-key"), alice, bob)
	if err != nil {
		t.Fatal(err)
	}
	env, err := imposter.Seal(alice, bob, packet.ProtoTCP, []byte("x"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := g.Open(alice, bob, env); !errors.Is(err, ErrAuth) {
		t.Errorf("forged key: %v, want ErrAuth", err)
	}
}

func TestOpenRejectsTruncatedEnvelopes(t *testing.T) {
	g := newTestGroup(t)
	env, err := g.Seal(alice, bob, packet.ProtoTCP, []byte("hello"), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, fixedHdrLen - 1, fixedHdrLen + 2} {
		if _, _, _, err := g.Open(alice, bob, env[:n]); err == nil {
			t.Errorf("truncated envelope of %d bytes accepted", n)
		}
	}
}

func TestPeekGroupName(t *testing.T) {
	g := newTestGroup(t)
	env, err := g.Seal(alice, bob, packet.ProtoUDP, []byte("x"), 1)
	if err != nil {
		t.Fatal(err)
	}
	name, err := PeekGroupName(env)
	if err != nil || name != "psq" {
		t.Errorf("PeekGroupName = %q, %v", name, err)
	}
	if _, err := PeekGroupName([]byte{0x02}); err == nil {
		t.Error("PeekGroupName accepted garbage")
	}
}

func TestNewGroupValidation(t *testing.T) {
	if _, err := NewGroup("", DeriveKey("k")); err == nil {
		t.Error("empty group name accepted")
	}
	if _, err := NewGroup(string(make([]byte, 65)), DeriveKey("k")); err == nil {
		t.Error("oversized group name accepted")
	}
}

func TestMembership(t *testing.T) {
	g := newTestGroup(t)
	if g.IsMember(eve) {
		t.Error("eve is a member")
	}
	g.AddMember(eve)
	if !g.IsMember(eve) {
		t.Error("AddMember did not add")
	}
	g.RemoveMember(eve)
	if g.IsMember(eve) {
		t.Error("RemoveMember did not remove")
	}
	members := g.Members()
	if len(members) != 2 || members[0] != alice || members[1] != bob {
		t.Errorf("Members() = %v", members)
	}
}

func TestSealerIncrementsSeq(t *testing.T) {
	g := newTestGroup(t)
	s, err := NewSealer(g, alice)
	if err != nil {
		t.Fatal(err)
	}
	var w ReplayWindow
	for i := 0; i < 5; i++ {
		env, err := s.Seal(bob, packet.ProtoTCP, []byte("m"))
		if err != nil {
			t.Fatal(err)
		}
		_, _, seq, err := g.Open(alice, bob, env)
		if err != nil {
			t.Fatal(err)
		}
		if !w.Check(seq) {
			t.Errorf("fresh seq %d rejected", seq)
		}
	}
	if _, err := NewSealer(g, eve); !errors.Is(err, ErrNotMember) {
		t.Errorf("NewSealer non-member: %v", err)
	}
}

func TestReplayWindow(t *testing.T) {
	var w ReplayWindow
	if !w.Check(100) {
		t.Fatal("first seq rejected")
	}
	if w.Check(100) {
		t.Error("replay accepted")
	}
	if !w.Check(99) || w.Check(99) {
		t.Error("in-window out-of-order handling broken")
	}
	if !w.Check(163) {
		t.Error("forward jump rejected")
	}
	if w.Check(99) {
		t.Error("seq older than window accepted")
	}
	if !w.Check(150) {
		t.Error("in-window unseen seq rejected")
	}
	if w.Check(150) {
		t.Error("replay of 150 accepted")
	}
}

func TestReplayWindowLargeJump(t *testing.T) {
	var w ReplayWindow
	if !w.Check(1) || !w.Check(1<<40) {
		t.Fatal("large forward jump rejected")
	}
	if w.Check(1 << 40) {
		t.Error("replay after large jump accepted")
	}
	if w.Check(1) {
		t.Error("ancient seq accepted after large jump")
	}
}

// Property: seal∘open is the identity for arbitrary payloads and sequence
// numbers, and flipping any single bit of the envelope breaks it.
func TestSealOpenProperty(t *testing.T) {
	g, err := NewGroup("prop", DeriveKey("prop"), alice, bob)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	f := func(payload []byte, seq uint64) bool {
		env, err := g.Seal(alice, bob, packet.ProtoUDP, payload, seq)
		if err != nil {
			return false
		}
		proto, got, gotSeq, err := g.Open(alice, bob, env)
		if err != nil || proto != packet.ProtoUDP || gotSeq != seq || !bytes.Equal(got, payload) {
			return false
		}
		if len(env) > 0 {
			i := rng.Intn(len(env))
			env[i] ^= 1 << uint(rng.Intn(8))
			if _, _, _, err := g.Open(alice, bob, env); err == nil {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestOverhead(t *testing.T) {
	g := newTestGroup(t)
	payload := make([]byte, 100)
	env, err := g.Seal(alice, bob, packet.ProtoTCP, payload, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(env)-len(payload), Overhead(len("psq")); got != want {
		t.Errorf("observed overhead %d, Overhead() says %d", got, want)
	}
}
