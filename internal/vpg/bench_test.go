package vpg

import (
	"fmt"
	"testing"

	"barbican/internal/packet"
)

func benchGroup(b *testing.B) *Group {
	b.Helper()
	g, err := NewGroup("bench", DeriveKey("bench"), alice, bob)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkSeal(b *testing.B) {
	g := benchGroup(b)
	for _, size := range []int{64, 512, 1460} {
		payload := make([]byte, size)
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, err := g.Seal(alice, bob, packet.ProtoTCP, payload, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOpen(b *testing.B) {
	g := benchGroup(b)
	for _, size := range []int{64, 1460} {
		env, err := g.Seal(alice, bob, packet.ProtoTCP, make([]byte, size), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, _, _, err := g.Open(alice, bob, env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReplayWindow(b *testing.B) {
	var w ReplayWindow
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Check(uint64(i))
	}
}
