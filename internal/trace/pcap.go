package trace

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Classic libpcap file format constants.
const (
	pcapMagic        = 0xa1b2c3d4
	pcapVersionMajor = 2
	pcapVersionMinor = 4
	pcapSnapLen      = 65535
	linkTypeEthernet = 1
)

// WritePCAP writes the capture as a classic pcap file (microsecond
// timestamps, Ethernet link type) readable by tcpdump and Wireshark.
func (c *Capture) WritePCAP(w io.Writer) error {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], pcapVersionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], pcapVersionMinor)
	// thiszone, sigfigs: zero.
	binary.LittleEndian.PutUint32(hdr[16:20], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], linkTypeEthernet)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("trace: pcap header: %w", err)
	}
	for i, r := range c.records {
		data := r.Frame.Marshal()
		rec := make([]byte, 16, 16+len(data))
		usec := r.At.Microseconds()
		binary.LittleEndian.PutUint32(rec[0:4], uint32(usec/1_000_000))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(usec%1_000_000))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(len(data)))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(r.Frame.FrameLen()))
		rec = append(rec, data...)
		if _, err := w.Write(rec); err != nil {
			return fmt.Errorf("trace: pcap record %d: %w", i, err)
		}
	}
	return nil
}

// ReadPCAP parses a classic pcap file produced by WritePCAP, returning
// the raw frame bytes of each record. It exists so tests can verify the
// writer against an independent reader.
func ReadPCAP(r io.Reader) ([][]byte, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("trace: pcap header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != pcapMagic {
		return nil, fmt.Errorf("trace: bad pcap magic %#x", binary.LittleEndian.Uint32(hdr[0:4]))
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:24]); lt != linkTypeEthernet {
		return nil, fmt.Errorf("trace: unexpected link type %d", lt)
	}
	var frames [][]byte
	rec := make([]byte, 16)
	for {
		if _, err := io.ReadFull(r, rec); err != nil {
			if err == io.EOF {
				return frames, nil
			}
			return nil, fmt.Errorf("trace: pcap record header: %w", err)
		}
		n := binary.LittleEndian.Uint32(rec[8:12])
		if n > pcapSnapLen {
			return nil, fmt.Errorf("trace: record length %d exceeds snaplen", n)
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("trace: pcap record body: %w", err)
		}
		frames = append(frames, data)
	}
}
