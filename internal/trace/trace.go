// Package trace captures frames from the simulated network, renders them
// tcpdump-style, and writes standard pcap files that real tooling
// (tcpdump, Wireshark) can open — the validation workflow the paper's
// authors used on their physical testbed.
package trace

import (
	"fmt"
	"strings"
	"time"

	"barbican/internal/link"
	"barbican/internal/packet"
	"barbican/internal/sim"
)

// Direction distinguishes transmitted from received frames at the tap
// point.
type Direction int

// Tap directions.
const (
	TX Direction = iota + 1
	RX
)

// String returns "tx" or "rx".
func (d Direction) String() string {
	if d == TX {
		return "tx"
	}
	return "rx"
}

// Record is one captured frame.
type Record struct {
	At    time.Duration // virtual capture time
	Dir   Direction
	Frame *packet.Frame
}

// Capture accumulates frames from one or more taps, bounded by a record
// limit (oldest kept).
type Capture struct {
	kernel  *sim.Kernel
	limit   int
	records []Record
	dropped uint64
}

// DefaultLimit bounds captures that don't specify one.
const DefaultLimit = 65536

// NewCapture creates a capture. limit <= 0 uses DefaultLimit.
func NewCapture(k *sim.Kernel, limit int) *Capture {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Capture{kernel: k, limit: limit}
}

// Tap attaches the capture to a link endpoint. Only one tap per endpoint
// is supported; tapping again replaces the previous observer.
func (c *Capture) Tap(e *link.Endpoint) {
	e.SetTap(func(f *packet.Frame, tx bool) {
		dir := RX
		if tx {
			dir = TX
		}
		c.add(Record{At: c.kernel.Now(), Dir: dir, Frame: f.Clone()})
	})
}

func (c *Capture) add(r Record) {
	if len(c.records) >= c.limit {
		c.records = c.records[1:]
		c.dropped++
	}
	c.records = append(c.records, r)
}

// Records returns the captured frames in order.
func (c *Capture) Records() []Record { return append([]Record(nil), c.records...) }

// Len returns the number of retained records.
func (c *Capture) Len() int { return len(c.records) }

// Dropped returns how many records were evicted by the limit.
func (c *Capture) Dropped() uint64 { return c.dropped }

// Format renders one record as a tcpdump-style line.
func Format(r Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12.6f %s ", r.At.Seconds(), r.Dir)
	s, err := packet.Summarize(r.Frame)
	if err != nil {
		fmt.Fprintf(&b, "[unparsed ethertype %#04x, %d bytes]", uint16(r.Frame.Type), len(r.Frame.Payload))
		return b.String()
	}
	if s.Sealed {
		fmt.Fprintf(&b, "VPG %v > %v: sealed, %d bytes", s.Src, s.Dst, s.IPLen)
		return b.String()
	}
	switch s.Proto {
	case packet.ProtoTCP:
		fmt.Fprintf(&b, "IP %v.%d > %v.%d: ", s.Src, s.SrcPort, s.Dst, s.DstPort)
		seg, err := tcpOf(r.Frame, s)
		if err != nil {
			b.WriteString("tcp [malformed]")
			return b.String()
		}
		fmt.Fprintf(&b, "Flags [%s], seq %d", tcpFlagShort(seg.Flags), seg.Seq)
		if seg.Flags.Has(packet.FlagACK) {
			fmt.Fprintf(&b, ", ack %d", seg.Ack)
		}
		fmt.Fprintf(&b, ", win %d, length %d", seg.Window, len(seg.Payload))
	case packet.ProtoUDP:
		fmt.Fprintf(&b, "IP %v.%d > %v.%d: UDP, length %d",
			s.Src, s.SrcPort, s.Dst, s.DstPort, s.IPLen-packet.IPv4HeaderLen-packet.UDPHeaderLen)
	case packet.ProtoICMP:
		fmt.Fprintf(&b, "IP %v > %v: ICMP", s.Src, s.Dst)
	default:
		fmt.Fprintf(&b, "IP %v > %v: proto %d, length %d", s.Src, s.Dst, uint8(s.Proto), s.IPLen)
	}
	return b.String()
}

// Dump renders the whole capture.
func (c *Capture) Dump() string {
	var b strings.Builder
	for _, r := range c.records {
		b.WriteString(Format(r))
		b.WriteByte('\n')
	}
	return b.String()
}

func tcpOf(f *packet.Frame, s packet.Summary) (*packet.TCPSegment, error) {
	d, err := packet.UnmarshalDatagram(f.Payload)
	if err != nil {
		return nil, err
	}
	return packet.UnmarshalTCPSegment(d.Header.Src, d.Header.Dst, d.Payload)
}

func tcpFlagShort(f packet.TCPFlags) string {
	var b strings.Builder
	if f.Has(packet.FlagSYN) {
		b.WriteByte('S')
	}
	if f.Has(packet.FlagFIN) {
		b.WriteByte('F')
	}
	if f.Has(packet.FlagRST) {
		b.WriteByte('R')
	}
	if f.Has(packet.FlagPSH) {
		b.WriteByte('P')
	}
	if f.Has(packet.FlagACK) {
		b.WriteByte('.')
	}
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}
