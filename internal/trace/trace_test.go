package trace_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"barbican/internal/apps"
	"barbican/internal/core"
	"barbican/internal/fw"
	"barbican/internal/link"
	"barbican/internal/measure"
	"barbican/internal/packet"
	"barbican/internal/trace"
)

func clientEndpoint(tb *core.Testbed) *link.Endpoint   { return tb.Client.NIC().Endpoint() }
func attackerEndpoint(tb *core.Testbed) *link.Endpoint { return tb.Attacker.NIC().Endpoint() }

func TestCaptureTCPHandshake(t *testing.T) {
	tb, err := core.NewTestbed(core.TestbedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cap := trace.NewCapture(tb.Kernel, 0)
	cap.Tap(clientEndpoint(tb))

	if _, err := apps.NewHTTPServer(tb.Target, apps.HTTPServerConfig{PageSize: 2048}); err != nil {
		t.Fatal(err)
	}
	client := apps.NewHTTPClient(tb.Client)
	if err := client.Get(tb.Target.IP(), 80, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := tb.Kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}

	if cap.Len() == 0 {
		t.Fatal("capture is empty")
	}
	dump := cap.Dump()
	for _, want := range []string{"Flags [S]", "Flags [S.]", "Flags [.]", "10.0.0.1", "10.0.0.2"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, truncate(dump, 1200))
		}
	}
	// Directionality: the tap sees both tx and rx.
	sawTX, sawRX := false, false
	for _, r := range cap.Records() {
		switch r.Dir {
		case trace.TX:
			sawTX = true
		case trace.RX:
			sawRX = true
		}
	}
	if !sawTX || !sawRX {
		t.Errorf("tap directions: tx=%v rx=%v", sawTX, sawRX)
	}
}

func TestCaptureSealedVPGFrames(t *testing.T) {
	tb, err := core.NewTestbed(core.TestbedOptions{ClientDevice: core.DeviceADF, TargetDevice: core.DeviceADF})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.SetupVPG("psq", "k", tb.Client, tb.Target); err != nil {
		t.Fatal(err)
	}
	prefix := packet.MustPrefix("10.0.0.0/24")
	tb.InstallPolicy(tb.Client, fw.MustRuleSet(fw.Deny, fw.VPGRulePair("psq", tb.Client.IP(), prefix)...))
	tb.InstallPolicy(tb.Target, fw.MustRuleSet(fw.Deny, fw.VPGRulePair("psq", tb.Target.IP(), prefix)...))

	cap := trace.NewCapture(tb.Kernel, 0)
	cap.Tap(clientEndpoint(tb))

	sock, err := tb.Client.BindUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	sock.SendTo(tb.Target.IP(), 7000, []byte("secret"))
	if err := tb.Kernel.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	dump := cap.Dump()
	if !strings.Contains(dump, "sealed") {
		t.Errorf("VPG frame not rendered as sealed:\n%s", dump)
	}
	if strings.Contains(dump, "UDP, length 6") {
		t.Error("cleartext UDP visible on the wire despite VPG policy")
	}
}

func TestPCAPRoundTrip(t *testing.T) {
	tb, err := core.NewTestbed(core.TestbedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cap := trace.NewCapture(tb.Kernel, 0)
	cap.Tap(clientEndpoint(tb))

	sock, err := tb.Client.BindUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		sock.SendTo(tb.Target.IP(), 5001, make([]byte, 100))
	}
	if err := tb.Kernel.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := cap.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	frames, err := trace.ReadPCAP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != cap.Len() {
		t.Fatalf("pcap frames = %d, capture = %d", len(frames), cap.Len())
	}
	// Each record must parse back as an Ethernet frame with an IPv4
	// payload.
	for i, raw := range frames {
		f, err := packet.UnmarshalFrame(raw)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if _, err := packet.SummarizeIPv4(f.Payload); err != nil {
			t.Fatalf("frame %d payload: %v", i, err)
		}
	}
}

func TestCaptureLimitEvicts(t *testing.T) {
	tb, err := core.NewTestbed(core.TestbedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cap := trace.NewCapture(tb.Kernel, 4)
	cap.Tap(clientEndpoint(tb))
	sock, err := tb.Client.BindUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sock.SendTo(tb.Target.IP(), 5001, make([]byte, 10))
	}
	if err := tb.Kernel.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if cap.Len() != 4 {
		t.Errorf("retained %d records, want 4", cap.Len())
	}
	if cap.Dropped() == 0 {
		t.Error("no evictions recorded")
	}
}

func TestCaptureFloodIsVisible(t *testing.T) {
	tb, err := core.NewTestbed(core.TestbedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cap := trace.NewCapture(tb.Kernel, 0)
	cap.Tap(attackerEndpoint(tb))
	f := measure.NewFlooder(tb.Attacker, tb.Target.IP(), measure.FloodConfig{
		RatePPS: 1000, Duration: 100 * time.Millisecond, DstPort: 7,
	})
	f.Start()
	if err := tb.Kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if cap.Len() < 90 {
		t.Errorf("captured %d flood frames, want ≈100", cap.Len())
	}
	if !strings.Contains(trace.Format(cap.Records()[0]), "UDP") {
		t.Errorf("flood frame rendering: %s", trace.Format(cap.Records()[0]))
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
