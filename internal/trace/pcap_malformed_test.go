package trace_test

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"time"

	"barbican/internal/core"
	"barbican/internal/trace"
)

// validPCAP builds a well-formed single-record pcap in memory so the
// malformed-input tests can corrupt known-good bytes instead of
// hand-assembling files.
func validPCAP(t *testing.T) []byte {
	t.Helper()
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], 0xa1b2c3d4)
	binary.LittleEndian.PutUint16(hdr[4:6], 2)
	binary.LittleEndian.PutUint16(hdr[6:8], 4)
	binary.LittleEndian.PutUint32(hdr[16:20], 65535)
	binary.LittleEndian.PutUint32(hdr[20:24], 1) // Ethernet
	frame := bytes.Repeat([]byte{0xee}, 60)
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(frame)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
	return append(append(hdr, rec...), frame...)
}

func TestReadPCAPValidBaseline(t *testing.T) {
	frames, err := trace.ReadPCAP(bytes.NewReader(validPCAP(t)))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 || len(frames[0]) != 60 {
		t.Fatalf("frames = %d (len %d), want 1 of 60 bytes", len(frames), len(frames[0]))
	}
}

func TestReadPCAPMalformed(t *testing.T) {
	good := validPCAP(t)
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr string
	}{
		{
			name:    "empty input",
			mutate:  func(b []byte) []byte { return nil },
			wantErr: "header",
		},
		{
			name:    "truncated file header",
			mutate:  func(b []byte) []byte { return b[:10] },
			wantErr: "header",
		},
		{
			name: "bad magic",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[0:4], 0xdeadbeef)
				return b
			},
			wantErr: "magic",
		},
		{
			name: "wrong link type",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[20:24], 101) // LINKTYPE_RAW
				return b
			},
			wantErr: "link type",
		},
		{
			name:    "truncated record header",
			mutate:  func(b []byte) []byte { return b[:24+7] },
			wantErr: "record header",
		},
		{
			name:    "truncated record body",
			mutate:  func(b []byte) []byte { return b[:len(b)-30] },
			wantErr: "record body",
		},
		{
			name: "record length over snaplen",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[24+8:24+12], 1<<20)
				return b
			},
			wantErr: "snaplen",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := tc.mutate(append([]byte(nil), good...))
			frames, err := trace.ReadPCAP(bytes.NewReader(in))
			if err == nil {
				t.Fatalf("parsed %d frames from malformed input, want error", len(frames))
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error = %q, want it to mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestPCAPFloodRoundTrip closes the loop on a real run: capture the
// target-bound wire during a flooded bandwidth measurement, write the
// pcap, and read it back with the independent reader.
func TestPCAPFloodRoundTrip(t *testing.T) {
	_, cap, err := core.RunBandwidthCaptured(core.Scenario{
		Device:       core.DeviceEFW,
		Depth:        4,
		FloodRatePPS: 2000,
		FloodAllowed: true,
		Duration:     200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cap.Len() == 0 {
		t.Fatal("flood run captured no frames")
	}

	var buf bytes.Buffer
	if err := cap.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	frames, err := trace.ReadPCAP(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != cap.Len() {
		t.Fatalf("read %d frames, capture holds %d", len(frames), cap.Len())
	}
	for i, r := range cap.Records() {
		if len(frames[i]) != len(r.Frame.Marshal()) {
			t.Fatalf("frame %d: read %d bytes, wrote %d", i, len(frames[i]), len(r.Frame.Marshal()))
		}
	}
}
