package trace_test

import (
	"testing"
	"time"

	"barbican/internal/packet"
	"barbican/internal/trace"
)

// frameOf wraps a transport payload in IPv4 + Ethernet.
func frameOf(src, dst packet.IP, proto packet.Protocol, id uint16, transport []byte) *packet.Frame {
	return &packet.Frame{
		Dst:     packet.MAC{0x02, 0, 0, 0, 0, 2},
		Src:     packet.MAC{0x02, 0, 0, 0, 0, 1},
		Type:    packet.EtherTypeIPv4,
		Payload: packet.NewDatagram(src, dst, proto, id, transport).Marshal(),
	}
}

// TestFormatGolden pins the tcpdump-style renderer's exact output for
// TCP, UDP, and ICMP records at fixed virtual timestamps, so rendering
// changes are deliberate rather than accidental.
func TestFormatGolden(t *testing.T) {
	src := packet.MustIP("10.0.0.1")
	dst := packet.MustIP("10.0.0.2")

	syn := (&packet.TCPSegment{
		SrcPort: 40000, DstPort: 80,
		Seq: 1000, Flags: packet.FlagSYN, Window: 65535,
	}).Marshal(src, dst)
	synAck := (&packet.TCPSegment{
		SrcPort: 80, DstPort: 40000,
		Seq: 5000, Ack: 1001, Flags: packet.FlagSYN | packet.FlagACK, Window: 65535,
	}).Marshal(dst, src)
	data := (&packet.TCPSegment{
		SrcPort: 40000, DstPort: 80,
		Seq: 1001, Ack: 5001, Flags: packet.FlagPSH | packet.FlagACK, Window: 65535,
		Payload: []byte("GET / HTTP/1.0\r\n"),
	}).Marshal(src, dst)
	udp := (&packet.UDPDatagram{
		SrcPort: 4444, DstPort: 7, Payload: make([]byte, 18),
	}).Marshal(src, dst)
	echo := (&packet.ICMPMessage{
		Type: packet.ICMPEchoRequest, ID: 7, Seq: 1, Payload: []byte("ping"),
	}).Marshal()

	cases := []struct {
		name string
		rec  trace.Record
		want string
	}{
		{
			name: "tcp syn",
			rec: trace.Record{
				At: 1500 * time.Microsecond, Dir: trace.TX,
				Frame: frameOf(src, dst, packet.ProtoTCP, 1, syn),
			},
			want: "    0.001500 tx IP 10.0.0.1.40000 > 10.0.0.2.80: Flags [S], seq 1000, win 65535, length 0",
		},
		{
			name: "tcp syn-ack",
			rec: trace.Record{
				At: 1700 * time.Microsecond, Dir: trace.RX,
				Frame: frameOf(dst, src, packet.ProtoTCP, 2, synAck),
			},
			want: "    0.001700 rx IP 10.0.0.2.80 > 10.0.0.1.40000: Flags [S.], seq 5000, ack 1001, win 65535, length 0",
		},
		{
			name: "tcp data",
			rec: trace.Record{
				At: 2 * time.Millisecond, Dir: trace.TX,
				Frame: frameOf(src, dst, packet.ProtoTCP, 3, data),
			},
			want: "    0.002000 tx IP 10.0.0.1.40000 > 10.0.0.2.80: Flags [P.], seq 1001, ack 5001, win 65535, length 16",
		},
		{
			name: "udp",
			rec: trace.Record{
				At: 1234567890 * time.Nanosecond, Dir: trace.TX,
				Frame: frameOf(src, dst, packet.ProtoUDP, 4, udp),
			},
			want: "    1.234568 tx IP 10.0.0.1.4444 > 10.0.0.2.7: UDP, length 18",
		},
		{
			name: "icmp echo",
			rec: trace.Record{
				At: 3 * time.Second, Dir: trace.RX,
				Frame: frameOf(src, dst, packet.ProtoICMP, 5, echo),
			},
			want: "    3.000000 rx IP 10.0.0.1 > 10.0.0.2: ICMP",
		},
	}
	for _, tc := range cases {
		if got := trace.Format(tc.rec); got != tc.want {
			t.Errorf("%s:\n got  %q\n want %q", tc.name, got, tc.want)
		}
	}
}
