package apps_test

import (
	"testing"
	"time"

	"barbican/internal/apps"
	"barbican/internal/core"
	"barbican/internal/fw"
	"barbican/internal/measure"
	"barbican/internal/packet"
)

func psqSetup(t *testing.T, opts core.TestbedOptions) (*core.Testbed, *apps.PSQBroker) {
	t.Helper()
	tb, err := core.NewTestbed(opts)
	if err != nil {
		t.Fatal(err)
	}
	broker, err := apps.NewPSQBroker(tb.Target, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tb, broker
}

func TestPSQPublishSubscribe(t *testing.T) {
	tb, broker := psqSetup(t, core.TestbedOptions{})
	sub, err := apps.DialPSQ(tb.Client, tb.Target.IP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []apps.PSQMessage
	sub.OnMessage = func(m apps.PSQMessage) { got = append(got, m) }
	sub.Subscribe("sensors/temp")

	pub, err := apps.DialPSQ(tb.Attacker, tb.Target.IP(), 0) // any host can be a publisher
	if err != nil {
		t.Fatal(err)
	}
	pub.Publish("sensors/temp", "21.5C")
	pub.Publish("sensors/other", "ignored")
	pub.Publish("sensors/temp", "22.0C")

	if err := tb.Kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("messages = %+v, want 2", got)
	}
	if got[0].Topic != "sensors/temp" || got[0].Payload != "21.5C" || got[1].Payload != "22.0C" {
		t.Errorf("messages = %+v", got)
	}
	st := broker.Stats()
	if st.Publishes != 3 || st.Subscriptions != 1 || st.Fanout != 2 {
		t.Errorf("broker stats = %+v", st)
	}
}

func TestPSQQueryRetained(t *testing.T) {
	tb, _ := psqSetup(t, core.TestbedOptions{})
	pub, err := apps.DialPSQ(tb.Client, tb.Target.IP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	pub.Publish("status", "alpha")
	pub.Publish("status", "beta")

	q, err := apps.DialPSQ(tb.PolicyServer, tb.Target.IP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var res *apps.PSQMessage
	q.OnResult = func(m apps.PSQMessage) { res = &m }
	// Let the publishes land first.
	tb.Kernel.After(100*time.Millisecond, func() { q.Query("status") })

	if err := tb.Kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no query result")
	}
	if res.Topic != "status" || res.Payload != "beta" || res.Count != 2 {
		t.Errorf("result = %+v", res)
	}
}

func TestPSQQueryEmptyTopic(t *testing.T) {
	tb, _ := psqSetup(t, core.TestbedOptions{})
	q, err := apps.DialPSQ(tb.Client, tb.Target.IP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var res *apps.PSQMessage
	q.OnResult = func(m apps.PSQMessage) { res = &m }
	q.Query("nonexistent")
	if err := tb.Kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Count != 0 || res.Payload != "" {
		t.Errorf("empty-topic result = %+v", res)
	}
}

func TestPSQProtocolErrors(t *testing.T) {
	tb, broker := psqSetup(t, core.TestbedOptions{})
	c, err := apps.DialPSQ(tb.Client, tb.Target.IP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var errs []string
	c.OnError = func(reason string) { errs = append(errs, reason) }
	c.Subscribe("") // missing topic
	c.Publish("", "")
	if err := tb.Kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(errs) != 2 {
		t.Errorf("errors = %v, want 2", errs)
	}
	if broker.Stats().Errors != 2 {
		t.Errorf("broker errors = %d", broker.Stats().Errors)
	}
}

func TestPSQSubscriberDisconnectPrunesFanout(t *testing.T) {
	tb, broker := psqSetup(t, core.TestbedOptions{})
	sub, err := apps.DialPSQ(tb.Client, tb.Target.IP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sub.Subscribe("x")
	if err := tb.Kernel.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sub.Close()
	if err := tb.Kernel.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	pub, err := apps.DialPSQ(tb.Attacker, tb.Target.IP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	pub.Publish("x", "after-close")
	if err := tb.Kernel.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if broker.Stats().Fanout != 0 {
		t.Errorf("fanout to closed subscriber: %d", broker.Stats().Fanout)
	}
}

func TestPSQOverVPGExcludesNonMembers(t *testing.T) {
	// The DPASA deployment: PSQ protected by a VPG. Members converse;
	// the attacker's cleartext connection cannot even complete a
	// handshake.
	tb, err := core.NewTestbed(core.TestbedOptions{
		ClientDevice: core.DeviceADF, TargetDevice: core.DeviceADF,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.SetupVPG("psq", "dpasa", tb.Client, tb.Target); err != nil {
		t.Fatal(err)
	}
	prefix := packet.MustPrefix("10.0.0.0/24")
	tb.InstallPolicy(tb.Client, fw.MustRuleSet(fw.Deny, fw.VPGRulePair("psq", tb.Client.IP(), prefix)...))
	tb.InstallPolicy(tb.Target, fw.MustRuleSet(fw.Deny, fw.VPGRulePair("psq", tb.Target.IP(), prefix)...))

	if _, err := apps.NewPSQBroker(tb.Target, 0); err != nil {
		t.Fatal(err)
	}
	member, err := apps.DialPSQ(tb.Client, tb.Target.IP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []apps.PSQMessage
	member.OnMessage = func(m apps.PSQMessage) { got = append(got, m) }
	member.Subscribe("ops")
	member.Publish("ops", "members-only")

	outsider, err := apps.DialPSQ(tb.Attacker, tb.Target.IP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	outsiderDead := false
	outsider.OnDisconnect = func() { outsiderDead = true }
	outsider.Subscribe("ops")

	if err := tb.Kernel.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Payload != "members-only" {
		t.Errorf("member traffic = %+v", got)
	}
	if outsider.Connected() {
		t.Error("outsider completed a handshake through the VPG-only policy")
	}
	_ = outsiderDead // the outsider's SYN dies silently; either signal is fine
	if tb.Client.NIC().Stats().Sealed == 0 {
		t.Error("member PSQ traffic was not sealed")
	}
}

func TestPSQSurvivesModerateFloodDegradesUnderDoS(t *testing.T) {
	// The DPASA question: does the protected PSQ service keep working
	// during an attack? Below the card's capacity it must; at the DoS
	// rate it must not.
	run := func(rate float64) (delivered int) {
		tb, err := core.NewTestbed(core.TestbedOptions{TargetDevice: core.DeviceEFW})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := fw.DepthRuleSet(8, fw.AllowAllRule(), fw.Deny)
		if err != nil {
			t.Fatal(err)
		}
		tb.InstallPolicy(tb.Target, rs)
		if _, err := apps.NewPSQBroker(tb.Target, 0); err != nil {
			t.Fatal(err)
		}
		sub, err := apps.DialPSQ(tb.Client, tb.Target.IP(), 0)
		if err != nil {
			t.Fatal(err)
		}
		sub.OnMessage = func(apps.PSQMessage) { delivered++ }
		sub.Subscribe("heartbeat")
		pub, err := apps.DialPSQ(tb.PolicyServer, tb.Target.IP(), 0)
		if err != nil {
			t.Fatal(err)
		}
		tb.Kernel.NewTicker(100*time.Millisecond, func() {
			pub.Publish("heartbeat", "ok")
		})
		if rate > 0 {
			f := measure.NewFlooder(tb.Attacker, tb.Target.IP(), measure.FloodConfig{
				RatePPS: rate, DstPort: core.FloodPort,
			})
			f.Start()
		}
		if err := tb.Kernel.RunUntil(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		return delivered
	}

	quiet := run(0)
	if quiet < 45 {
		t.Fatalf("PSQ heartbeats without flood = %d, want ≈50", quiet)
	}
	light := run(2000)
	if light < quiet*3/4 {
		t.Errorf("PSQ under light flood delivered %d of %d heartbeats", light, quiet)
	}
	dos := run(25_000)
	if dos > quiet/2 {
		t.Errorf("PSQ under DoS flood delivered %d of %d heartbeats; expected severe degradation", dos, quiet)
	}
}
