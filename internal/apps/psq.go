package apps

import (
	"fmt"
	"strings"

	"barbican/internal/packet"
	"barbican/internal/stack"
)

// The paper's validation effort served DPASA, a survivable
// publish/subscribe/query (PSQ) system. This file provides a small PSQ
// substrate so examples and tests can exercise the firewalls under the
// workload they were deployed to protect.
//
// Line protocol over one persistent TCP connection per client:
//
//	SUB <topic>                 subscribe the connection to a topic
//	PUB <topic> <payload>       publish; fans out MSG lines to subscribers
//	QRY <topic>                 query the retained (last) message
//
// Broker responses:
//
//	MSG <topic> <payload>       fan-out to subscribers
//	RES <topic> <count> <payload>  query result (count = total published)
//	ERR <reason>                protocol error

// DefaultPSQPort is the broker's conventional port.
const DefaultPSQPort = 6100

// PSQBrokerStats counts broker activity.
type PSQBrokerStats struct {
	Connections   uint64
	Subscriptions uint64
	Publishes     uint64
	Queries       uint64
	Fanout        uint64 // MSG lines sent
	Errors        uint64
}

type psqTopic struct {
	retained  string
	published uint64
	subs      map[*stack.Conn]bool
}

// PSQBroker is the publish/subscribe/query server.
type PSQBroker struct {
	host   *stack.Host
	port   uint16
	topics map[string]*psqTopic
	stats  PSQBrokerStats
}

// NewPSQBroker starts a broker on the host.
func NewPSQBroker(h *stack.Host, port uint16) (*PSQBroker, error) {
	if port == 0 {
		port = DefaultPSQPort
	}
	b := &PSQBroker{host: h, port: port, topics: make(map[string]*psqTopic)}
	if _, err := h.ListenTCP(port, b.accept); err != nil {
		return nil, fmt.Errorf("apps: psq broker: %w", err)
	}
	return b, nil
}

// Port returns the broker port.
func (b *PSQBroker) Port() uint16 { return b.port }

// Stats returns a snapshot of the broker counters.
func (b *PSQBroker) Stats() PSQBrokerStats { return b.stats }

// Topics returns the number of known topics.
func (b *PSQBroker) Topics() int { return len(b.topics) }

func (b *PSQBroker) topic(name string) *psqTopic {
	t := b.topics[name]
	if t == nil {
		t = &psqTopic{subs: make(map[*stack.Conn]bool)}
		b.topics[name] = t
	}
	return t
}

func (b *PSQBroker) accept(c *stack.Conn) {
	b.stats.Connections++
	var buf []byte
	cleanup := func() {
		for _, t := range b.topics {
			delete(t.subs, c)
		}
	}
	c.OnReset = cleanup
	c.OnPeerClose = func() {
		cleanup()
		c.Close()
	}
	c.OnData = func(p []byte) {
		buf = append(buf, p...)
		for {
			idx := indexByte(buf, '\n')
			if idx < 0 {
				return
			}
			line := string(buf[:idx])
			buf = buf[idx+1:]
			b.handleLine(c, strings.TrimRight(line, "\r"))
		}
	}
}

func (b *PSQBroker) handleLine(c *stack.Conn, line string) {
	cmd, rest, _ := strings.Cut(line, " ")
	switch cmd {
	case "SUB":
		topic := strings.TrimSpace(rest)
		if topic == "" {
			b.protoErr(c, "SUB needs a topic")
			return
		}
		b.stats.Subscriptions++
		b.topic(topic).subs[c] = true
	case "PUB":
		topic, payload, ok := strings.Cut(rest, " ")
		if !ok || topic == "" {
			b.protoErr(c, "PUB needs a topic and payload")
			return
		}
		b.stats.Publishes++
		t := b.topic(topic)
		t.retained = payload
		t.published++
		for sub := range t.subs {
			if err := writeLine(sub, fmt.Sprintf("MSG %s %s", topic, payload)); err == nil {
				b.stats.Fanout++
			}
		}
	case "QRY":
		topic := strings.TrimSpace(rest)
		if topic == "" {
			b.protoErr(c, "QRY needs a topic")
			return
		}
		b.stats.Queries++
		t := b.topic(topic)
		writeLine(c, fmt.Sprintf("RES %s %d %s", topic, t.published, t.retained))
	default:
		b.protoErr(c, "unknown command "+cmd)
	}
}

func (b *PSQBroker) protoErr(c *stack.Conn, reason string) {
	b.stats.Errors++
	writeLine(c, "ERR "+reason)
}

func writeLine(c *stack.Conn, line string) error {
	return c.Write(append([]byte(line), '\n'))
}

func indexByte(b []byte, ch byte) int {
	for i, v := range b {
		if v == ch {
			return i
		}
	}
	return -1
}

// PSQMessage is a received publication or query result.
type PSQMessage struct {
	Topic   string
	Payload string
	// Count is the total publications on the topic (query results only).
	Count uint64
}

// PSQClient is a PSQ participant holding one connection to the broker.
type PSQClient struct {
	conn      *stack.Conn
	connected bool

	// OnMessage receives publications for subscribed topics.
	OnMessage func(m PSQMessage)
	// OnResult receives query results.
	OnResult func(m PSQMessage)
	// OnError receives broker protocol errors.
	OnError func(reason string)
	// OnDisconnect fires when the broker connection dies.
	OnDisconnect func()

	pending []string // lines queued before the handshake completes
	buf     []byte
}

// DialPSQ connects a client to the broker.
func DialPSQ(h *stack.Host, broker packet.IP, port uint16) (*PSQClient, error) {
	if port == 0 {
		port = DefaultPSQPort
	}
	conn, err := h.DialTCP(broker, port)
	if err != nil {
		return nil, fmt.Errorf("apps: psq dial: %w", err)
	}
	cl := &PSQClient{conn: conn}
	conn.OnConnect = func() {
		cl.connected = true
		for _, line := range cl.pending {
			writeLine(conn, line)
		}
		cl.pending = nil
	}
	conn.OnData = cl.onData
	conn.OnReset = func() {
		if cl.OnDisconnect != nil {
			cl.OnDisconnect()
		}
	}
	conn.OnPeerClose = func() {
		if cl.OnDisconnect != nil {
			cl.OnDisconnect()
		}
		conn.Close()
	}
	return cl, nil
}

// Connected reports whether the broker handshake has completed.
func (c *PSQClient) Connected() bool { return c.connected }

// Close tears down the client connection.
func (c *PSQClient) Close() { c.conn.Close() }

func (c *PSQClient) send(line string) {
	if !c.connected {
		c.pending = append(c.pending, line)
		return
	}
	writeLine(c.conn, line)
}

// Subscribe registers interest in a topic; publications arrive via
// OnMessage.
func (c *PSQClient) Subscribe(topic string) { c.send("SUB " + topic) }

// Publish sends one publication.
func (c *PSQClient) Publish(topic, payload string) { c.send("PUB " + topic + " " + payload) }

// Query asks for a topic's retained message; the answer arrives via
// OnResult.
func (c *PSQClient) Query(topic string) { c.send("QRY " + topic) }

func (c *PSQClient) onData(p []byte) {
	c.buf = append(c.buf, p...)
	for {
		idx := indexByte(c.buf, '\n')
		if idx < 0 {
			return
		}
		line := strings.TrimRight(string(c.buf[:idx]), "\r")
		c.buf = c.buf[idx+1:]
		c.handleLine(line)
	}
}

func (c *PSQClient) handleLine(line string) {
	cmd, rest, _ := strings.Cut(line, " ")
	switch cmd {
	case "MSG":
		topic, payload, _ := strings.Cut(rest, " ")
		if c.OnMessage != nil {
			c.OnMessage(PSQMessage{Topic: topic, Payload: payload})
		}
	case "RES":
		topic, rest2, _ := strings.Cut(rest, " ")
		countStr, payload, _ := strings.Cut(rest2, " ")
		var count uint64
		fmt.Sscanf(countStr, "%d", &count)
		if c.OnResult != nil {
			c.OnResult(PSQMessage{Topic: topic, Payload: payload, Count: count})
		}
	case "ERR":
		if c.OnError != nil {
			c.OnError(rest)
		}
	}
}
