// Package apps provides the application substrates the paper's
// experiments run against: an HTTP/1.0-subset web server standing in for
// the Apache 2 instance behind the firewall, a matching client, and
// simple UDP traffic sinks.
package apps

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"time"

	"barbican/internal/packet"
	"barbican/internal/stack"
)

// DefaultPageSize approximates the default Gentoo Apache index page the
// paper's http_load fetched.
const DefaultPageSize = 10 * 1024

// DefaultServiceTime approximates Apache 2 on the paper's 1 GHz PIII
// serving a static page: request parsing, filesystem cache hit, and
// process scheduling.
const DefaultServiceTime = 3 * time.Millisecond

// HTTPServerConfig configures the web server.
type HTTPServerConfig struct {
	// Port is the listening port; zero defaults to 80.
	Port uint16
	// PageSize is the body size served for every request; zero defaults
	// to DefaultPageSize.
	PageSize int
	// ServiceTime is the server-side processing time per request; zero
	// defaults to DefaultServiceTime. Negative disables the delay.
	ServiceTime time.Duration
}

// HTTPServerStats counts server activity.
type HTTPServerStats struct {
	Connections uint64
	Requests    uint64
	BytesServed uint64
	BadRequests uint64
}

// HTTPServer is a minimal HTTP/1.0 server: it answers every GET with a
// fixed-size page and closes the connection, like Apache serving a static
// index with keep-alive off.
type HTTPServer struct {
	host  *stack.Host
	cfg   HTTPServerConfig
	page  []byte
	stats HTTPServerStats
}

// NewHTTPServer starts a web server on the host.
func NewHTTPServer(h *stack.Host, cfg HTTPServerConfig) (*HTTPServer, error) {
	if cfg.Port == 0 {
		cfg.Port = 80
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = DefaultPageSize
	}
	switch {
	case cfg.ServiceTime == 0:
		cfg.ServiceTime = DefaultServiceTime
	case cfg.ServiceTime < 0:
		cfg.ServiceTime = 0
	}
	s := &HTTPServer{host: h, cfg: cfg, page: buildPage(cfg.PageSize)}
	if _, err := h.ListenTCP(cfg.Port, s.accept); err != nil {
		return nil, fmt.Errorf("apps: http server: %w", err)
	}
	return s, nil
}

// Stats returns a snapshot of the server counters.
func (s *HTTPServer) Stats() HTTPServerStats { return s.stats }

// Port returns the listening port.
func (s *HTTPServer) Port() uint16 { return s.cfg.Port }

func (s *HTTPServer) accept(c *stack.Conn) {
	s.stats.Connections++
	var req bytes.Buffer
	c.OnData = func(p []byte) {
		req.Write(p)
		if !bytes.Contains(req.Bytes(), []byte("\r\n\r\n")) {
			return
		}
		line, _, _ := strings.Cut(req.String(), "\r\n")
		if !strings.HasPrefix(line, "GET ") {
			s.stats.BadRequests++
			resp := "HTTP/1.0 400 Bad Request\r\nContent-Length: 0\r\n\r\n"
			if err := c.Write([]byte(resp)); err == nil {
				c.Close()
			}
			return
		}
		s.stats.Requests++
		header := fmt.Sprintf(
			"HTTP/1.0 200 OK\r\nServer: barbican-apache/2.0\r\nContent-Type: text/html\r\nContent-Length: %d\r\n\r\n",
			len(s.page))
		s.stats.BytesServed += uint64(len(s.page))
		respond := func() {
			if err := c.Write(append([]byte(header), s.page...)); err != nil {
				return
			}
			c.Close()
		}
		if s.cfg.ServiceTime > 0 {
			s.host.Kernel().After(s.cfg.ServiceTime, respond)
		} else {
			respond()
		}
	}
}

func buildPage(size int) []byte {
	var b bytes.Buffer
	b.WriteString("<html><head><title>It works!</title></head><body>\n")
	line := []byte("<p>This is the default page served by the barbican web server.</p>\n")
	for b.Len() < size-len("</body></html>\n") {
		b.Write(line)
	}
	b.Truncate(size - len("</body></html>\n"))
	b.WriteString("</body></html>\n")
	return b.Bytes()
}

// FetchResult reports one HTTP fetch.
type FetchResult struct {
	Status    int
	BodyBytes int
	Err       error
}

// HTTPClient issues sequential HTTP/1.0 GETs.
type HTTPClient struct {
	host *stack.Host
}

// NewHTTPClient creates a client on the host.
func NewHTTPClient(h *stack.Host) *HTTPClient {
	return &HTTPClient{host: h}
}

// Get fetches / from the server, invoking callbacks as the fetch
// progresses: onConnect when the handshake completes, onFirstByte when
// the first response byte arrives, and done when the response completes
// (or fails).
func (c *HTTPClient) Get(dst packet.IP, port uint16, onConnect, onFirstByte func(), done func(FetchResult)) error {
	conn, err := c.host.DialTCP(dst, port)
	if err != nil {
		return err
	}
	var (
		resp     bytes.Buffer
		sawFirst bool
		finished bool
	)
	finish := func(r FetchResult) {
		if finished {
			return
		}
		finished = true
		if done != nil {
			done(r)
		}
	}
	conn.OnConnect = func() {
		if onConnect != nil {
			onConnect()
		}
		if err := conn.Write([]byte("GET / HTTP/1.0\r\nHost: server\r\n\r\n")); err != nil {
			finish(FetchResult{Err: err})
		}
	}
	conn.OnData = func(p []byte) {
		if !sawFirst {
			sawFirst = true
			if onFirstByte != nil {
				onFirstByte()
			}
		}
		resp.Write(p)
		if r, ok := parseResponse(resp.Bytes()); ok {
			finish(r)
			conn.Close()
		}
	}
	conn.OnPeerClose = func() {
		if r, ok := parseResponse(resp.Bytes()); ok {
			finish(r)
		} else {
			finish(FetchResult{Err: fmt.Errorf("apps: truncated response (%d bytes)", resp.Len())})
		}
		conn.Close()
	}
	conn.OnReset = func() {
		finish(FetchResult{Err: fmt.Errorf("apps: connection reset")})
	}
	return nil
}

// parseResponse reports whether buf holds a complete HTTP response and
// extracts its status and body size.
func parseResponse(buf []byte) (FetchResult, bool) {
	head, body, found := bytes.Cut(buf, []byte("\r\n\r\n"))
	if !found {
		return FetchResult{}, false
	}
	lines := strings.Split(string(head), "\r\n")
	fields := strings.Fields(lines[0])
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "HTTP/") {
		return FetchResult{}, false
	}
	status, err := strconv.Atoi(fields[1])
	if err != nil {
		return FetchResult{}, false
	}
	contentLen := -1
	for _, l := range lines[1:] {
		name, val, ok := strings.Cut(l, ":")
		if ok && strings.EqualFold(strings.TrimSpace(name), "Content-Length") {
			if n, err := strconv.Atoi(strings.TrimSpace(val)); err == nil {
				contentLen = n
			}
		}
	}
	if contentLen < 0 || len(body) < contentLen {
		return FetchResult{}, false
	}
	return FetchResult{Status: status, BodyBytes: contentLen}, true
}

// UDPSink counts datagrams delivered to a port (the iperf server role).
type UDPSink struct {
	sock *stack.UDPSocket
}

// NewUDPSink binds a counting sink on the port.
func NewUDPSink(h *stack.Host, port uint16) (*UDPSink, error) {
	sock, err := h.BindUDP(port)
	if err != nil {
		return nil, fmt.Errorf("apps: udp sink: %w", err)
	}
	return &UDPSink{sock: sock}, nil
}

// Received returns delivered datagram and payload byte counts.
func (s *UDPSink) Received() (datagrams, bytes uint64) { return s.sock.Received() }

// Close unbinds the sink.
func (s *UDPSink) Close() { s.sock.Close() }
