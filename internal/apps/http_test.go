package apps_test

import (
	"testing"
	"time"

	"barbican/internal/apps"
	"barbican/internal/core"
)

func testbed(t *testing.T) *core.Testbed {
	t.Helper()
	tb, err := core.NewTestbed(core.TestbedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestHTTPServerServesPage(t *testing.T) {
	tb := testbed(t)
	srv, err := apps.NewHTTPServer(tb.Target, apps.HTTPServerConfig{PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	client := apps.NewHTTPClient(tb.Client)

	var result apps.FetchResult
	connected, firstByte := false, false
	err = client.Get(tb.Target.IP(), 80,
		func() { connected = true },
		func() { firstByte = true },
		func(r apps.FetchResult) { result = r })
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if !connected || !firstByte {
		t.Errorf("callbacks: connected=%v firstByte=%v", connected, firstByte)
	}
	if result.Err != nil || result.Status != 200 || result.BodyBytes != 4096 {
		t.Errorf("fetch result = %+v", result)
	}
	st := srv.Stats()
	if st.Connections != 1 || st.Requests != 1 || st.BytesServed != 4096 {
		t.Errorf("server stats = %+v", st)
	}
}

func TestHTTPServerRejectsNonGET(t *testing.T) {
	tb := testbed(t)
	srv, err := apps.NewHTTPServer(tb.Target, apps.HTTPServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := tb.Client.DialTCP(tb.Target.IP(), 80)
	if err != nil {
		t.Fatal(err)
	}
	var resp []byte
	conn.OnConnect = func() {
		if err := conn.Write([]byte("DELETE / HTTP/1.0\r\n\r\n")); err != nil {
			t.Error(err)
		}
	}
	conn.OnData = func(p []byte) { resp = append(resp, p...) }
	if err := tb.Kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(resp) == 0 || string(resp[:17]) != "HTTP/1.0 400 Bad " {
		t.Errorf("response = %q", resp)
	}
	if srv.Stats().BadRequests != 1 {
		t.Errorf("BadRequests = %d", srv.Stats().BadRequests)
	}
}

func TestHTTPServerSequentialFetches(t *testing.T) {
	tb := testbed(t)
	if _, err := apps.NewHTTPServer(tb.Target, apps.HTTPServerConfig{ServiceTime: -1}); err != nil {
		t.Fatal(err)
	}
	client := apps.NewHTTPClient(tb.Client)
	fetches := 0
	var issue func()
	issue = func() {
		err := client.Get(tb.Target.IP(), 80, nil, nil, func(r apps.FetchResult) {
			if r.Err == nil && r.Status == 200 {
				fetches++
			}
			if fetches < 5 {
				issue()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	issue()
	if err := tb.Kernel.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fetches != 5 {
		t.Errorf("fetches = %d, want 5", fetches)
	}
}

func TestHTTPFetchFromClosedPortReportsError(t *testing.T) {
	tb := testbed(t)
	client := apps.NewHTTPClient(tb.Client)
	var result apps.FetchResult
	got := false
	err := client.Get(tb.Target.IP(), 8080, nil, nil, func(r apps.FetchResult) {
		result = r
		got = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if !got || result.Err == nil {
		t.Errorf("fetch to closed port: got=%v result=%+v", got, result)
	}
}

func TestUDPSinkCounts(t *testing.T) {
	tb := testbed(t)
	sink, err := apps.NewUDPSink(tb.Target, 5001)
	if err != nil {
		t.Fatal(err)
	}
	sock, err := tb.Client.BindUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		sock.SendTo(tb.Target.IP(), 5001, make([]byte, 100))
	}
	if err := tb.Kernel.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	d, b := sink.Received()
	if d != 3 || b != 300 {
		t.Errorf("Received = %d, %d; want 3, 300", d, b)
	}
	sink.Close()
}
