package fw_test

import (
	"fmt"

	"barbican/internal/fw"
	"barbican/internal/packet"
)

// A minimal web-server policy: first match wins, and the position of the
// matching rule is the traversal cost the embedded cards pay.
func ExampleRuleSet_Eval() {
	rs := fw.MustRuleSet(fw.Deny,
		fw.Rule{Name: "block-attacker", Action: fw.Deny, Direction: fw.In,
			Src: packet.MustPrefix("10.0.0.66/32")},
		fw.Rule{Name: "web", Action: fw.Allow, Direction: fw.In,
			Proto: packet.ProtoTCP, DstPorts: fw.Port(80)},
	)

	pkt := packet.Summary{
		Proto: packet.ProtoTCP,
		Src:   packet.MustIP("10.0.0.1"), Dst: packet.MustIP("10.0.0.2"),
		SrcPort: 4242, DstPort: 80, HasPorts: true,
	}
	v := rs.Eval(pkt, fw.In)
	fmt.Printf("%v by rule %d after traversing %d rules\n", v.Action, v.Index, v.Traversed)
	// Output: allow by rule 2 after traversing 2 rules
}

// Analyze finds rules that can never fire.
func ExampleRuleSet_Analyze() {
	rs := fw.MustRuleSet(fw.Deny,
		fw.Rule{Action: fw.Deny, Direction: fw.In, Src: packet.MustPrefix("10.0.0.0/8")},
		fw.Rule{Action: fw.Allow, Direction: fw.In, Proto: packet.ProtoTCP,
			Src: packet.MustPrefix("10.1.0.0/16"), DstPorts: fw.Port(80)},
	)
	for _, f := range rs.Analyze() {
		fmt.Println(f)
	}
	// Output: rule 2 is shadowed (covered by rule 1)
}
