package fw

import (
	"fmt"
	"strings"

	"barbican/internal/packet"
)

// Verdict is the outcome of evaluating a packet against a rule-set.
type Verdict struct {
	// Action is the disposition.
	Action Action
	// Rule is the matching rule, or nil when the default action applied.
	Rule *Rule
	// Index is the 1-based position of the matching rule, or 0 for the
	// default action.
	Index int
	// Traversed is the number of rules the filter had to examine: the
	// paper's "rules traversed before action". It equals Index for a rule
	// match and the full rule count for the default action. This is the
	// quantity that drives the embedded processor's per-packet cost.
	Traversed int
}

// RuleSet is an ordered, first-match packet filter policy.
type RuleSet struct {
	rules    []Rule
	view     []Rule // copy handed out by Rules, built in NewRuleSet so concurrent readers never race
	def      Action
	stateful bool     // any rule carries state matchers; computed once in NewRuleSet
	matches  []uint64 // per-rule match counts
	defHits  uint64
	evals    uint64
}

// NewRuleSet validates rules and builds a rule-set with the given default
// action for packets no rule matches.
func NewRuleSet(def Action, rules ...Rule) (*RuleSet, error) {
	if def != Allow && def != Deny {
		return nil, fmt.Errorf("fw: invalid default action %d", def)
	}
	for i := range rules {
		if err := rules[i].Validate(); err != nil {
			return nil, fmt.Errorf("fw: rule %d: %w", i+1, err)
		}
	}
	rs := &RuleSet{
		rules:   append([]Rule(nil), rules...),
		view:    append([]Rule(nil), rules...),
		def:     def,
		matches: make([]uint64, len(rules)),
	}
	for i := range rs.rules {
		if rs.rules[i].IsStateful() {
			rs.stateful = true
			break
		}
	}
	return rs, nil
}

// MustRuleSet is NewRuleSet that panics on error, for tests and static
// configuration.
func MustRuleSet(def Action, rules ...Rule) *RuleSet {
	rs, err := NewRuleSet(def, rules...)
	if err != nil {
		panic(err)
	}
	return rs
}

// Len returns the number of rules.
func (rs *RuleSet) Len() int { return len(rs.rules) }

// Default returns the default action.
func (rs *RuleSet) Default() Action { return rs.def }

// Rule returns the 1-based i'th rule.
func (rs *RuleSet) Rule(i int) *Rule { return &rs.rules[i-1] }

// Rules returns the rules in order. The returned slice is a copy built
// once at construction — a rule-set's rules are immutable afterwards, so
// repeated calls (markdown/analysis render loops, metric-gather
// closures) share one copy and may run concurrently. Callers must not
// modify it.
func (rs *RuleSet) Rules() []Rule { return rs.view }

// Each calls fn for each rule in order with its 1-based index, stopping
// early if fn returns false. It is the allocation-free alternative to
// Rules for iteration.
func (rs *RuleSet) Each(fn func(i int, r *Rule) bool) {
	for i := range rs.rules {
		if !fn(i+1, &rs.rules[i]) {
			return
		}
	}
}

// Stateful reports whether any rule carries state matchers: the signal
// that evaluation needs a conntrack classification to be meaningful.
func (rs *RuleSet) Stateful() bool { return rs.stateful }

// Eval evaluates a packet summary traveling in direction dir on the
// stateless path and returns the verdict of the first matching rule (or
// the default action). Rules with state matchers never fire here.
func (rs *RuleSet) Eval(s packet.Summary, dir Direction) Verdict {
	return rs.EvalState(s, dir, StateNone)
}

// EvalState evaluates a packet summary traveling in direction dir whose
// conntrack classification is cs, returning the verdict of the first
// matching rule (or the default action).
func (rs *RuleSet) EvalState(s packet.Summary, dir Direction, cs ConnState) Verdict {
	rs.evals++
	for i := range rs.rules {
		if rs.rules[i].MatchesState(s, dir, cs) {
			rs.matches[i]++
			return Verdict{
				Action:    rs.rules[i].Action,
				Rule:      &rs.rules[i],
				Index:     i + 1,
				Traversed: i + 1,
			}
		}
	}
	rs.defHits++
	return Verdict{Action: rs.def, Traversed: len(rs.rules)}
}

// Record applies the counter updates an Eval producing verdict v would
// have applied, without re-evaluating. It lets a caller that replayed a
// remembered verdict (a flow-cache hit) keep the per-rule hit counts,
// eval totals, and default-hit totals identical to an uncached walk.
//
//barbican:noalloc
func (rs *RuleSet) Record(v Verdict) {
	rs.evals++
	if v.Index > 0 {
		rs.matches[v.Index-1]++
		return
	}
	rs.defHits++
}

// CountVPGCandidates returns how many VPG rules applicable to direction
// dir appear among the first traversed rules. It quantifies the trial
// decryptions an eager (decrypt-before-match) filter would perform on a
// sealed packet that traversed that far (ablation ABL2).
func (rs *RuleSet) CountVPGCandidates(dir Direction, traversed int) int {
	if traversed > len(rs.rules) {
		traversed = len(rs.rules)
	}
	n := 0
	for i := 0; i < traversed; i++ {
		r := &rs.rules[i]
		if r.IsVPG() && (r.Direction == Both || r.Direction == dir) {
			n++
		}
	}
	return n
}

// Stats reports evaluation counters: total evaluations, per-rule match
// counts (1-based positions in the returned slice's 0-based indexes), and
// default-action hits.
func (rs *RuleSet) Stats() (evals uint64, perRule []uint64, defaultHits uint64) {
	return rs.evals, append([]uint64(nil), rs.matches...), rs.defHits
}

// MatchCount returns the 1-based i'th rule's hit count without
// copying, for metric collector closures on the hot-path-free gather
// side.
func (rs *RuleSet) MatchCount(i int) uint64 { return rs.matches[i-1] }

// EvalCount returns the total number of Eval calls.
func (rs *RuleSet) EvalCount() uint64 { return rs.evals }

// DefaultHits returns how many evaluations fell through to the
// default action (a full-depth walk).
func (rs *RuleSet) DefaultHits() uint64 { return rs.defHits }

// String renders the rule-set in the policy DSL syntax.
func (rs *RuleSet) String() string {
	var b strings.Builder
	for i := range rs.rules {
		b.WriteString(rs.rules[i].String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "default %v\n", rs.def)
	return b.String()
}
