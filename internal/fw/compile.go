package fw

import (
	"math/bits"
	"sort"

	"barbican/internal/packet"
)

// This file is the "modern NIC" matcher: a RuleSet compiled into a
// dimension-split interval structure whose lookup cost is independent
// of rule depth. The geometry reuses lint.go's box algebra — a rule's
// match space is a product of integer intervals — but instead of
// subtracting boxes it projects them: each dimension's axis is cut at
// every rule boundary into elementary segments, and each segment
// stores the bitmask of rules whose interval covers it (the classic
// bit-vector classification scheme). Evaluating a packet is then one
// value→segment binary search per dimension plus a word-wise AND of
// the per-dimension masks; the lowest set bit of the intersection is,
// by construction, the first matching rule — so the verdict (Action,
// Rule, Index, Traversed) is byte-identical to the linear walk's while
// the work is O(dims × log segments + rules/64) instead of O(rules).
//
// The discrete packet attributes the linear walk branches on — travel
// direction, sealed-vs-cleartext, and port presence — are not interval
// searches but mask selections: direction × sealed picks one of four
// precomputed class masks (VPG rules match sealed traffic inbound and
// cleartext outbound; plain rules never match sealed envelopes), and a
// portless packet swaps the two port-segment lookups for the mask of
// rules that match packets without transport ports.

// CompiledSet is the compiled form of a RuleSet. It shares the
// underlying rule storage and hit counters: Eval updates the same
// per-rule match counters, default-hit and eval totals the linear walk
// would, so per-rule attribution, metrics collectors, and profiler
// frames built on the RuleSet keep working unchanged.
//
// Like RuleSet.Eval, CompiledSet.Eval is not safe for concurrent use
// (it increments the shared counters); the compiled tables themselves
// are immutable after Compile.
type CompiledSet struct {
	rs    *RuleSet
	words int

	// class[d][s] is the mask of rules applicable to direction In+d
	// traveling sealed (s=1) or cleartext (s=0).
	class [2][2][]uint64
	// protoAny covers rules that match any protocol (VPG rules and
	// plain rules with Proto == 0); protoVals/protoMasks extend it per
	// distinct protocol, already OR-ed with protoAny.
	protoAny   []uint64
	protoVals  []packet.Protocol
	protoMasks []uint64 // len(protoVals) × words, flattened
	// portless is the mask of rules that match packets without
	// transport ports (both port ranges Any; includes all VPG rules).
	portless []uint64
	// stateMasks[cs] is the mask of rules matchable under conntrack
	// classification cs: stateless rules appear in every state's mask,
	// stateful rules only where their StateMask has the bit.
	stateMasks [NumConnStates][]uint64

	src, dst         segTable
	srcPort, dstPort segTable
}

// segTable maps a dimension value to the bitmask of rules whose
// interval contains it, via elementary segments: bounds[k] is the
// first value of segment k (bounds[0] is always 0), and masks holds
// one words-sized bitmask per segment, flattened.
type segTable struct {
	bounds []uint32
	masks  []uint64
	words  int
}

// lookup returns the rule mask of the segment containing v: the
// greatest k with bounds[k] <= v, by binary search.
//
//barbican:noalloc
func (t *segTable) lookup(v uint32) []uint64 {
	lo, hi := 0, len(t.bounds)
	for hi-lo > 1 {
		mid := int(uint(lo+hi) >> 1)
		if t.bounds[mid] <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return t.masks[lo*t.words : (lo+1)*t.words]
}

// buildSegTable cuts the [0, maxVal] axis at every interval boundary
// and stores, per elementary segment, the mask of intervals covering
// it. Intervals are per-rule, in rule order, so bit i is rule i+1.
func buildSegTable(words int, ivals [][2]uint32, maxVal uint32) segTable {
	bounds := make([]uint32, 0, 2*len(ivals)+1)
	bounds = append(bounds, 0)
	for _, iv := range ivals {
		if iv[0] > 0 {
			bounds = append(bounds, iv[0])
		}
		if iv[1] < maxVal {
			bounds = append(bounds, iv[1]+1)
		}
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:1]
	for _, b := range bounds[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	masks := make([]uint64, len(uniq)*words)
	for seg, start := range uniq {
		for i, iv := range ivals {
			if iv[0] <= start && start <= iv[1] {
				masks[seg*words+i/64] |= 1 << (i % 64)
			}
		}
	}
	return segTable{bounds: uniq, masks: masks, words: words}
}

// portInterval is a port range as an inclusive interval; the Any range
// spans the full axis.
func portInterval(r PortRange) [2]uint32 {
	if r.Any() {
		return interval(0, 65535)
	}
	return interval(uint32(r.Lo), uint32(r.Hi))
}

// Compile builds the depth-independent matcher for a validated
// rule-set. Compilation is O(rules × segments) and allocates; it runs
// once per policy install, off the per-packet path.
func Compile(rs *RuleSet) *CompiledSet {
	n := len(rs.rules)
	words := (n + 63) / 64
	c := &CompiledSet{rs: rs, words: words}
	for d := 0; d < 2; d++ {
		for s := 0; s < 2; s++ {
			c.class[d][s] = make([]uint64, words)
		}
	}
	c.protoAny = make([]uint64, words)
	c.portless = make([]uint64, words)
	for cs := StateNone; cs < NumConnStates; cs++ {
		c.stateMasks[cs] = make([]uint64, words)
	}

	dirs := [2]Direction{In, Out}
	protoSet := make(map[packet.Protocol]bool)
	srcIv := make([][2]uint32, n)
	dstIv := make([][2]uint32, n)
	spIv := make([][2]uint32, n)
	dpIv := make([][2]uint32, n)
	for i := range rs.rules {
		r := &rs.rules[i]
		w, bit := i/64, uint64(1)<<(i%64)
		for d, dir := range dirs {
			if r.Direction != Both && r.Direction != dir {
				continue
			}
			if r.IsVPG() {
				// VPG rules match sealed envelopes inbound and the
				// cleartext traffic they will seal outbound.
				if dir == In {
					c.class[d][1][w] |= bit
				} else {
					c.class[d][0][w] |= bit
				}
			} else {
				c.class[d][0][w] |= bit
			}
		}
		if r.IsVPG() || r.Proto == 0 {
			c.protoAny[w] |= bit
		} else {
			protoSet[r.Proto] = true
		}
		if r.SrcPorts.Any() && r.DstPorts.Any() {
			c.portless[w] |= bit
		}
		for cs := StateNone; cs < NumConnStates; cs++ {
			if r.States == 0 || r.States.Has(cs) {
				c.stateMasks[cs][w] |= bit
			}
		}
		srcIv[i] = prefixInterval(r.Src)
		dstIv[i] = prefixInterval(r.Dst)
		spIv[i] = portInterval(r.SrcPorts)
		dpIv[i] = portInterval(r.DstPorts)
	}

	c.protoVals = make([]packet.Protocol, 0, len(protoSet))
	for p := range protoSet {
		c.protoVals = append(c.protoVals, p)
	}
	sort.Slice(c.protoVals, func(i, j int) bool { return c.protoVals[i] < c.protoVals[j] })
	c.protoMasks = make([]uint64, len(c.protoVals)*words)
	for pi, p := range c.protoVals {
		copy(c.protoMasks[pi*words:(pi+1)*words], c.protoAny)
		for i := range rs.rules {
			r := &rs.rules[i]
			if !r.IsVPG() && r.Proto == p {
				c.protoMasks[pi*words+i/64] |= 1 << (i % 64)
			}
		}
	}

	c.src = buildSegTable(words, srcIv, ^uint32(0))
	c.dst = buildSegTable(words, dstIv, ^uint32(0))
	c.srcPort = buildSegTable(words, spIv, 65535)
	c.dstPort = buildSegTable(words, dpIv, 65535)
	return c
}

// RuleSet returns the rule-set this matcher was compiled from.
func (c *CompiledSet) RuleSet() *RuleSet { return c.rs }

// protoMask returns the rule mask for packets carrying protocol p. The
// distinct-protocol list is tiny (a handful of IP protocols per
// policy), so a linear scan beats a branchy binary search.
//
//barbican:noalloc
func (c *CompiledSet) protoMask(p packet.Protocol) []uint64 {
	for i, v := range c.protoVals {
		if v == p {
			return c.protoMasks[i*c.words : (i+1)*c.words]
		}
	}
	return c.protoAny
}

// Eval returns the verdict the linear RuleSet.Eval would return for
// the same packet and direction — identical on every Verdict field,
// including the *Rule pointer — and applies the same counter updates.
// The work is independent of where in the rule-set the match lands.
//
//barbican:noalloc
func (c *CompiledSet) Eval(s packet.Summary, dir Direction) Verdict {
	return c.EvalState(s, dir, StateNone)
}

// EvalState is Eval with a conntrack classification: the verdict the
// linear RuleSet.EvalState would return for the same packet, direction,
// and state, with identical counter updates.
//
//barbican:noalloc
func (c *CompiledSet) EvalState(s packet.Summary, dir Direction, cs ConnState) Verdict {
	if dir != In && dir != Out {
		// The compiled class masks are built for concrete travel
		// directions; anything else takes the reference walk.
		return c.rs.EvalState(s, dir, cs)
	}
	if cs < StateNone || cs >= NumConnStates {
		return c.rs.EvalState(s, dir, cs)
	}
	sealed := 0
	if s.Sealed {
		sealed = 1
	}
	cls := c.class[dir-In][sealed]
	stm := c.stateMasks[cs]
	pm := c.protoMask(s.Proto)
	sm := c.src.lookup(s.Src.Uint32())
	dm := c.dst.lookup(s.Dst.Uint32())
	var spm, dpm []uint64
	if s.HasPorts {
		spm = c.srcPort.lookup(uint32(s.SrcPort))
		dpm = c.dstPort.lookup(uint32(s.DstPort))
	} else {
		spm, dpm = c.portless, c.portless
	}
	c.rs.evals++
	for w := 0; w < c.words; w++ {
		x := cls[w] & stm[w] & pm[w] & sm[w] & dm[w] & spm[w] & dpm[w]
		if x == 0 {
			continue
		}
		i := w*64 + bits.TrailingZeros64(x)
		c.rs.matches[i]++
		r := &c.rs.rules[i]
		return Verdict{Action: r.Action, Rule: r, Index: i + 1, Traversed: i + 1}
	}
	c.rs.defHits++
	return Verdict{Action: c.rs.def, Traversed: len(c.rs.rules)}
}
