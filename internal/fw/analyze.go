package fw

import (
	"fmt"
	"sort"
	"strings"

	"barbican/internal/packet"
)

// The paper's operational recommendations pull in opposite directions:
// "place bandwidth-sensitive traffic early in the rule-set" but also
// "deny potential attack sources early". This file provides the static
// analysis a policy author needs to follow them: shadowing/redundancy
// detection (rules that can never fire) and a traversal-cost report
// driven by observed match statistics.

// FindingKind classifies an analysis finding.
type FindingKind int

// Finding kinds.
const (
	// FindingShadowed: an earlier rule with a different action covers
	// this rule's entire match space; the rule can never take effect and
	// the policy likely does not do what its author intended.
	FindingShadowed FindingKind = iota + 1
	// FindingRedundant: an earlier rule with the same action covers this
	// rule entirely (a single rule, or — from Lint — the union of several);
	// removing it shortens every traversal that passes it.
	FindingRedundant
	// FindingConflict: an earlier rule with the opposite action overlaps
	// this rule without either containing the other. The packets in the
	// overlap take the earlier action; the partial overlap makes that
	// order dependence easy to miss when editing either rule.
	FindingConflict
	// FindingUnreachable: the union of earlier rules with mixed actions
	// covers this rule entirely, so it never fires — but unlike
	// FindingRedundant, deleting it is not obviously semantics-free to a
	// reader, because no single earlier rule explains it.
	FindingUnreachable
	// FindingDepth: the rule sits deeper than the configured threshold;
	// per Fig. 2 every packet that traverses to depth d pays
	// BaseCost + d x PerRuleCost on the card, so depth is bandwidth.
	FindingDepth
)

// String names the finding kind.
func (k FindingKind) String() string {
	//barbican:exhaustive
	switch k {
	case FindingShadowed:
		return "shadowed"
	case FindingRedundant:
		return "redundant"
	case FindingConflict:
		return "conflicting"
	case FindingUnreachable:
		return "unreachable"
	case FindingDepth:
		return "deep"
	default:
		return fmt.Sprintf("finding(%d)", int(k))
	}
}

// Finding is one analysis result.
type Finding struct {
	Kind FindingKind
	// Rule is the 1-based index of the affected rule.
	Rule int
	// By is the 1-based index of the covering or conflicting rule, when a
	// single rule is decisive (shadowed, redundant, conflicting).
	By int
	// Covering lists the 1-based indices of the earlier rules whose union
	// covers this rule, for Lint's redundant/unreachable findings.
	Covering []int
	// Depth is the rule's position, for FindingDepth.
	Depth int
}

// String renders the finding.
func (f Finding) String() string {
	switch f.Kind {
	case FindingConflict:
		return fmt.Sprintf("rule %d conflicts with rule %d (partial overlap, opposite actions; rule %d wins the overlap)", f.Rule, f.By, f.By)
	case FindingDepth:
		return fmt.Sprintf("rule %d sits at depth %d; packets matching it pay the full traversal cost (Fig. 2)", f.Rule, f.Depth)
	default:
		if len(f.Covering) > 0 {
			return fmt.Sprintf("rule %d is %v (covered by the union of rules %s)", f.Rule, f.Kind, joinInts(f.Covering))
		}
		return fmt.Sprintf("rule %d is %v (covered by rule %d)", f.Rule, f.Kind, f.By)
	}
}

func joinInts(xs []int) string {
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", x)
	}
	return b.String()
}

// Analyze reports shadowed and redundant rules: any rule whose entire
// match space is covered by a single earlier rule. (Combinations of
// earlier rules that jointly cover a later one are not detected; this is
// the classic pairwise analysis.)
func (rs *RuleSet) Analyze() []Finding {
	var findings []Finding
	for i := 1; i < len(rs.rules); i++ {
		for j := 0; j < i; j++ {
			if covers(&rs.rules[j], &rs.rules[i]) {
				kind := FindingRedundant
				if rs.rules[j].Action != rs.rules[i].Action {
					kind = FindingShadowed
				}
				findings = append(findings, Finding{Kind: kind, Rule: i + 1, By: j + 1})
				break // first covering rule is the decisive one
			}
		}
	}
	return findings
}

// covers reports whether every packet rule b matches is also matched by
// rule a (a precedes b, so b can then never fire).
func covers(a, b *Rule) bool {
	// Direction: a must apply whenever b does.
	if a.Direction != Both && a.Direction != b.Direction {
		return false
	}
	// VPG and plain rules match disjoint traffic classes (sealed vs
	// cleartext inbound); only like covers like. For outbound, a VPG
	// rule matches cleartext, but conservatively we still require like
	// kinds.
	if a.IsVPG() != b.IsVPG() {
		return false
	}
	if !a.IsVPG() {
		// Protocol: a must be wildcard or equal to b's (b wildcard needs
		// a wildcard).
		if a.Proto != 0 && a.Proto != b.Proto {
			return false
		}
		if !portCovers(a.SrcPorts, b.SrcPorts) || !portCovers(a.DstPorts, b.DstPorts) {
			return false
		}
	}
	return prefixCovers(a.Src, b.Src) && prefixCovers(a.Dst, b.Dst)
}

// prefixCovers reports whether prefix a contains all of prefix b.
func prefixCovers(a, b packet.Prefix) bool {
	if a.Bits > b.Bits {
		return false
	}
	return a.Contains(b.Addr)
}

// portCovers reports whether range a admits every packet range b admits.
// A ported rule matches only packets that have ports, so a non-any a
// cannot cover an any b (which also matches portless packets).
func portCovers(a, b PortRange) bool {
	if a.Any() {
		return true
	}
	if b.Any() {
		return false
	}
	return a.Lo <= b.Lo && b.Hi <= a.Hi
}

// RuleCost is one row of the traversal-cost report.
type RuleCost struct {
	// Rule is the 1-based position.
	Rule int
	// Matches is the observed match count.
	Matches uint64
	// Share is the fraction of all decided packets.
	Share float64
	// SavingsIfFirst is the traversal steps saved per second of the
	// observed workload if the rule moved to position 1 (ignoring
	// semantic constraints; a hint, not a proof).
	SavingsIfFirst uint64
}

// CostReport summarizes where an observed workload spends its rule
// traversals — the quantity the paper showed maps directly to bandwidth
// on the embedded cards.
type CostReport struct {
	Evaluations      uint64
	DefaultHits      uint64
	AverageTraversal float64
	// HotRules lists rules by potential savings, descending.
	HotRules []RuleCost
}

// Cost builds a traversal-cost report from the rule set's observed match
// statistics.
func (rs *RuleSet) Cost() CostReport {
	evals, perRule, defHits := rs.Stats()
	report := CostReport{Evaluations: evals, DefaultHits: defHits}
	if evals == 0 {
		return report
	}
	var weighted uint64
	for i, m := range perRule {
		weighted += m * uint64(i+1)
		if m > 0 && i > 0 {
			report.HotRules = append(report.HotRules, RuleCost{
				Rule:           i + 1,
				Matches:        m,
				Share:          float64(m) / float64(evals),
				SavingsIfFirst: m * uint64(i),
			})
		}
	}
	weighted += defHits * uint64(len(perRule))
	report.AverageTraversal = float64(weighted) / float64(evals)
	sort.Slice(report.HotRules, func(i, j int) bool {
		return report.HotRules[i].SavingsIfFirst > report.HotRules[j].SavingsIfFirst
	})
	return report
}

// Render formats the report for operators.
func (r CostReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "evaluations: %d (default action: %d)\n", r.Evaluations, r.DefaultHits)
	fmt.Fprintf(&b, "average rules traversed per packet: %.2f\n", r.AverageTraversal)
	for _, h := range r.HotRules {
		fmt.Fprintf(&b, "rule %3d: %d matches (%.1f%%), moving it first would save %d traversals\n",
			h.Rule, h.Matches, 100*h.Share, h.SavingsIfFirst)
	}
	return b.String()
}
