// Package sem is the exact policy-semantics engine: it decides
// questions about rule sets — equivalence, semantic diff, reachability
// — over the *entire* packet space, by proof rather than sampling.
//
// The engine works by atomic-interval decomposition. A validated
// rule's match predicate, restricted to one discrete traffic class
// (direction × sealed × port presence), is a product of inclusive
// integer intervals over five axes: protocol, source address,
// destination address, source port, destination port (lint.go's box
// geometry, shared through fw's Span helpers). Cutting every axis at
// every interval boundary of every rule under analysis yields
// elementary segments; a product of one segment per axis is an atomic
// region, and by construction every rule either matches all packets
// in a region or none of them. First-match semantics are therefore
// constant per region, so any per-packet question becomes a finite —
// and exhaustively checkable — per-region question.
//
// Enumerating the raw product of segments would be astronomically
// large, so the walker descends axis by axis carrying the bitmask of
// rules still alive (those whose intervals cover every segment chosen
// so far), merging segments with identical masks into one child and
// memoizing subtrees by (axis, mask) — the structure of a firewall
// decision diagram with node sharing. Regions the walker visits are
// exactly the distinct mask combinations; everything merged away is
// provably identical.
package sem

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"barbican/internal/fw"
	"barbican/internal/packet"
)

// Axis indices, in walk order. Port axes are walked only for classes
// whose packets carry transport ports.
const (
	axisProto = iota
	axisSrc
	axisDst
	axisSrcPort
	axisDstPort
	numAxes
)

// axisMax is the inclusive top of each axis.
var axisMax = [numAxes]uint32{
	axisProto:   255,
	axisSrc:     ^uint32(0),
	axisDst:     ^uint32(0),
	axisSrcPort: 65535,
	axisDstPort: 65535,
}

// ruleSpan returns the rule's match interval on one axis.
func ruleSpan(r *fw.Rule, axis int) fw.Span {
	switch axis {
	case axisProto:
		return fw.ProtoSpan(r)
	case axisSrc:
		return fw.SrcSpan(r)
	case axisDst:
		return fw.DstSpan(r)
	case axisSrcPort:
		return fw.SrcPortSpan(r)
	case axisDstPort:
		return fw.DstPortSpan(r)
	default:
		panic(fmt.Sprintf("sem: invalid axis %d", axis))
	}
}

// class is one discrete traffic class: travel direction, sealed
// envelope or cleartext, and whether the packet carries transport
// ports. The five interval axes decompose independently within each
// of the eight classes.
type class struct {
	Dir      fw.Direction // In or Out
	Sealed   bool
	HasPorts bool
}

// classes enumerates the eight discrete classes in a fixed order so
// every walk, count, and witness list is deterministic.
var classes = [8]class{
	{fw.In, false, false}, {fw.In, false, true},
	{fw.In, true, false}, {fw.In, true, true},
	{fw.Out, false, false}, {fw.Out, false, true},
	{fw.Out, true, false}, {fw.Out, true, true},
}

// axesFor returns the axis walk order for a class: portless packets
// have no port coordinates, so their space is three-dimensional.
func axesFor(c class) []int {
	if c.HasPorts {
		return []int{axisProto, axisSrc, axisDst, axisSrcPort, axisDstPort}
	}
	return []int{axisProto, axisSrc, axisDst}
}

// setTables is the per-rule-set compiled geometry over a shared set of
// axis cuts: per-axis per-segment coverage bitmasks plus the discrete
// class masks, mirroring fw.CompiledSet's structure (bit i = rule i+1).
type setTables struct {
	rs    *fw.RuleSet
	rules []fw.Rule
	n     int
	words int

	// classMask[d][s] is the mask of rules applicable to direction
	// In+d traveling sealed (s=1) or cleartext (s=0).
	classMask [2][2][]uint64
	// portless is the mask of rules that can match packets without
	// transport ports.
	portless []uint64
	// axisMasks[axis] holds one words-sized mask per segment of the
	// shared cuts, flattened.
	axisMasks [numAxes][]uint64
}

// space is the joint decomposition of the packet space for one or two
// rule sets: shared axis cuts (from the union of all boundaries) and
// per-set coverage tables.
type space struct {
	sets   []*setTables
	bounds [numAxes][]uint32 // segment starts per axis; bounds[0] == 0
}

// newSpace builds the joint decomposition for the given rule sets.
func newSpace(sets ...*fw.RuleSet) *space {
	sp := &space{}
	for axis := 0; axis < numAxes; axis++ {
		var cuts []uint32
		cuts = append(cuts, 0)
		for _, rs := range sets {
			rules := rs.Rules()
			for i := range rules {
				s := ruleSpan(&rules[i], axis)
				if s.Lo > 0 {
					cuts = append(cuts, s.Lo)
				}
				if s.Hi < axisMax[axis] {
					cuts = append(cuts, s.Hi+1)
				}
			}
		}
		sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
		uniq := cuts[:1]
		for _, b := range cuts[1:] {
			if b != uniq[len(uniq)-1] {
				uniq = append(uniq, b)
			}
		}
		sp.bounds[axis] = uniq
	}
	for _, rs := range sets {
		sp.sets = append(sp.sets, newSetTables(rs, sp))
	}
	return sp
}

// segWidth returns the number of values in segment k of an axis.
func (sp *space) segWidth(axis, k int) uint64 {
	b := sp.bounds[axis]
	if k+1 < len(b) {
		return uint64(b[k+1] - b[k])
	}
	return uint64(axisMax[axis]-b[k]) + 1
}

// segSpan returns segment k of an axis as an inclusive interval.
func (sp *space) segSpan(axis, k int) fw.Span {
	b := sp.bounds[axis]
	hi := axisMax[axis]
	if k+1 < len(b) {
		hi = b[k+1] - 1
	}
	return fw.Span{Lo: b[k], Hi: hi}
}

func newSetTables(rs *fw.RuleSet, sp *space) *setTables {
	rules := rs.Rules()
	n := len(rules)
	t := &setTables{rs: rs, rules: rules, n: n, words: (n + 63) / 64}
	for d := 0; d < 2; d++ {
		for s := 0; s < 2; s++ {
			t.classMask[d][s] = make([]uint64, t.words)
		}
	}
	t.portless = make([]uint64, t.words)
	dirs := [2]fw.Direction{fw.In, fw.Out}
	for i := range rules {
		r := &rules[i]
		w, bit := i/64, uint64(1)<<(i%64)
		for d, dir := range dirs {
			for s := 0; s < 2; s++ {
				if r.AppliesTo(dir, s == 1) {
					t.classMask[d][s][w] |= bit
				}
			}
		}
		if r.MatchesPortless() {
			t.portless[w] |= bit
		}
	}
	for axis := 0; axis < numAxes; axis++ {
		bounds := sp.bounds[axis]
		masks := make([]uint64, len(bounds)*t.words)
		for i := range rules {
			s := ruleSpan(&rules[i], axis)
			w, bit := i/64, uint64(1)<<(i%64)
			for k, start := range bounds {
				if s.Lo <= start && start <= s.Hi {
					masks[k*t.words+w] |= bit
				}
			}
		}
		t.axisMasks[axis] = masks
	}
	return t
}

// startMask returns the set's live mask at the root of a class walk.
func (t *setTables) startMask(c class) []uint64 {
	m := make([]uint64, t.words)
	copy(m, t.classMask[c.Dir-fw.In][b2i(c.Sealed)])
	if !c.HasPorts {
		for w := range m {
			m[w] &= t.portless[w]
		}
	}
	return m
}

// segMask returns the set's coverage mask for segment k of an axis.
func (t *setTables) segMask(axis, k int) []uint64 {
	return t.axisMasks[axis][k*t.words : (k+1)*t.words]
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// firstBit returns the 1-based index of the lowest set bit, or 0 when
// the mask is empty — directly the 1-based first-match rule index with
// 0 meaning the default action, the same convention as fw.Verdict.
func firstBit(m []uint64) int {
	for w, x := range m {
		if x != 0 {
			return w*64 + bits.TrailingZeros64(x) + 1
		}
	}
	return 0
}

func maskEmpty(m []uint64) bool {
	for _, x := range m {
		if x != 0 {
			return false
		}
	}
	return true
}

func hasBit(m []uint64, i int) bool { // i is 1-based
	return m[(i-1)/64]&(1<<(uint(i-1)%64)) != 0
}

func andMasks(dst, a, b []uint64) {
	for w := range dst {
		dst[w] = a[w] & b[w]
	}
}

// appendMaskKey appends the mask's raw bytes to key (for map keys that
// group identical mask combinations).
func appendMaskKey(key []byte, m []uint64) []byte {
	for _, x := range m {
		key = append(key,
			byte(x), byte(x>>8), byte(x>>16), byte(x>>24),
			byte(x>>32), byte(x>>40), byte(x>>48), byte(x>>56))
	}
	return key
}

// verdictOf maps a first-match index to the set's action for it.
func (t *setTables) verdictOf(first int) fw.Action {
	if first == 0 {
		return t.rs.Default()
	}
	return t.rules[first-1].Action
}

// Region is one atomic region of the packet space in human terms: the
// discrete class plus one interval per axis. Port spans are
// meaningful only when HasPorts.
type Region struct {
	Dir              fw.Direction
	Sealed           bool
	HasPorts         bool
	Proto            fw.Span
	Src, Dst         fw.Span
	SrcPort, DstPort fw.Span
}

// String renders the region compactly, e.g.
// "in clear proto tcp src 10.0.0.0-10.0.0.255 dst any sport any dport 80-90".
func (g Region) String() string {
	var b strings.Builder
	b.WriteString(g.Dir.String())
	if g.Sealed {
		b.WriteString(" sealed")
	} else {
		b.WriteString(" clear")
	}
	fmt.Fprintf(&b, " proto %s", protoSpanString(g.Proto))
	fmt.Fprintf(&b, " src %s dst %s", addrSpanString(g.Src), addrSpanString(g.Dst))
	if g.HasPorts {
		fmt.Fprintf(&b, " sport %s dport %s", portSpanString(g.SrcPort), portSpanString(g.DstPort))
	} else {
		b.WriteString(" portless")
	}
	return b.String()
}

func protoSpanString(s fw.Span) string {
	if s.Lo == 0 && s.Hi == 255 {
		return "any"
	}
	if s.Lo == s.Hi {
		return packet.Protocol(s.Lo).String()
	}
	return fmt.Sprintf("%d-%d", s.Lo, s.Hi)
}

func addrSpanString(s fw.Span) string {
	if s.Lo == 0 && s.Hi == ^uint32(0) {
		return "any"
	}
	if s.Lo == s.Hi {
		return packet.IPFromUint32(s.Lo).String()
	}
	return fmt.Sprintf("%v-%v", packet.IPFromUint32(s.Lo), packet.IPFromUint32(s.Hi))
}

func portSpanString(s fw.Span) string {
	if s.Lo == 0 && s.Hi == 65535 {
		return "any"
	}
	if s.Lo == s.Hi {
		return fmt.Sprint(s.Lo)
	}
	return fmt.Sprintf("%d-%d", s.Lo, s.Hi)
}

// regionFor assembles a Region from a class and the chosen segment
// spans in walk-axis order.
func regionFor(c class, spans []fw.Span) Region {
	g := Region{Dir: c.Dir, Sealed: c.Sealed, HasPorts: c.HasPorts}
	g.Proto, g.Src, g.Dst = spans[0], spans[1], spans[2]
	if c.HasPorts {
		g.SrcPort, g.DstPort = spans[3], spans[4]
	} else {
		g.SrcPort = fw.Span{Lo: 0, Hi: 65535}
		g.DstPort = fw.Span{Lo: 0, Hi: 65535}
	}
	return g
}

// Witness converts the region into one concrete packet summary (plus
// direction) that lies inside it. Representative values are the low
// ends of each interval, except the protocol, which prefers a
// well-known value when the span admits one so the witness can be
// replayed through explain tooling verbatim: tcp/udp for ported
// regions, icmp (naturally portless) for portless ones.
func (g Region) Witness() (packet.Summary, fw.Direction) {
	s := packet.Summary{
		Proto:    packet.Protocol(preferProto(g.Proto, g.HasPorts)),
		Src:      packet.IPFromUint32(g.Src.Lo),
		Dst:      packet.IPFromUint32(g.Dst.Lo),
		Sealed:   g.Sealed,
		HasPorts: g.HasPorts,
		IPLen:    40,
	}
	if g.HasPorts {
		s.SrcPort = uint16(g.SrcPort.Lo)
		s.DstPort = uint16(g.DstPort.Lo)
	}
	return s, g.Dir
}

// preferProto picks a representative protocol from a span: TCP, then
// UDP for ported regions; ICMP first for portless ones; the low end
// when no well-known value fits.
func preferProto(s fw.Span, hasPorts bool) uint32 {
	order := []uint32{uint32(packet.ProtoTCP), uint32(packet.ProtoUDP), uint32(packet.ProtoICMP)}
	if !hasPorts {
		order = []uint32{uint32(packet.ProtoICMP), uint32(packet.ProtoVPGEncap)}
	}
	for _, p := range order {
		if s.Contains(p) {
			return p
		}
	}
	return s.Lo
}
