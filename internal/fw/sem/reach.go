package sem

import (
	"math/bits"

	"barbican/internal/fw"
)

// ExactLint is the proven replacement for RuleSet.Lint's heuristic
// findings: it decides reachability, shadowing, redundancy, and
// conflicts by walking the exact region decomposition instead of box
// subtraction, and emits fw.Finding values in Lint's shape and order
// (per rule ascending; unreachable-class finding, or conflicts by
// earlier-rule position then the depth note) so severities and
// rendering carry over unchanged.
//
// Where Lint approximates, ExactLint proves:
//
//   - Reachability is decided over every atomic region, so coverage
//     through a *different* traffic class (a plain allow-out rule
//     swallowing the cleartext packets a VPG rule would seal, which
//     Lint's same-class guard skips) is detected.
//   - The covering list is the set of rules that actually take the
//     unreachable rule's packets (its "winners"), not the subtraction
//     order of a worklist; there is no give-up cap.
//   - A conflict is reported only when the earlier opposite-action
//     rule genuinely decides part of this rule's match space. An
//     overlap whose every packet is taken by an even earlier rule is
//     phantom order-dependence, and Lint reports it; ExactLint does
//     not. The exception pattern (a later general rule containing an
//     earlier specific one) stays excluded, as in Lint.
func ExactLint(rs *fw.RuleSet, opts fw.LintOptions) []fw.Finding {
	if rs.Stateful() {
		// Connection state is not a packet coordinate, so the exact
		// decomposition cannot see it; fall back to the heuristic
		// linter, whose same-class guard skips cross-state pairs
		// conservatively.
		return rs.Lint(opts)
	}
	sp := newSpace(rs)
	t := sp.sets[0]
	w := &lintWalker{sp: sp, t: t, memo: make(map[string][]uint64)}

	reached := make([]uint64, t.words)
	for _, c := range classes {
		r := w.reach(axesFor(c), 0, t.startMask(c))
		for wd := range reached {
			reached[wd] |= r[wd]
		}
	}

	var findings []fw.Finding
	for i := 1; i <= t.n; i++ {
		ri := &t.rules[i-1]
		winners := bitsOf(w.winners(i))
		if !hasBit(reached, i) {
			findings = append(findings, classifyUnreachable(t, i, winners))
			continue
		}
		for _, j := range winners {
			rj := &t.rules[j-1]
			if rj.Action == ri.Action || coversExact(ri, rj) {
				continue
			}
			findings = append(findings, fw.Finding{Kind: fw.FindingConflict, Rule: i, By: j})
		}
		if opts.DepthWarn > 0 && i > opts.DepthWarn {
			findings = append(findings, fw.Finding{Kind: fw.FindingDepth, Rule: i, Depth: i})
		}
	}
	return findings
}

// classifyUnreachable maps an unreachable rule and its winners to
// Lint's finding vocabulary: one decisive winner gives the pairwise
// shadowed/redundant form; several winners give the union form,
// redundant when removal is provably semantics-free (every winner
// applies the same action) and unreachable otherwise.
func classifyUnreachable(t *setTables, i int, winners []int) fw.Finding {
	ri := &t.rules[i-1]
	if len(winners) == 1 {
		kind := fw.FindingRedundant
		if t.rules[winners[0]-1].Action != ri.Action {
			kind = fw.FindingShadowed
		}
		return fw.Finding{Kind: kind, Rule: i, By: winners[0]}
	}
	kind := fw.FindingRedundant
	for _, j := range winners {
		if t.rules[j-1].Action != ri.Action {
			kind = fw.FindingUnreachable
			break
		}
	}
	return fw.Finding{Kind: kind, Rule: i, Covering: winners}
}

type lintWalker struct {
	sp   *space
	t    *setTables
	memo map[string][]uint64 // subtree → reached first-match bitset
}

// reach returns the bitset of rules that are the first match of at
// least one region in the subtree. Memoized: identical (remaining
// axes, live mask) subtrees reach identical rule sets.
func (w *lintWalker) reach(axes []int, level int, mask []uint64) []uint64 {
	if maskEmpty(mask) {
		return make([]uint64, w.t.words)
	}
	key := nodeKey(len(axes), level, mask)
	if r, ok := w.memo[key]; ok {
		return r
	}
	out := make([]uint64, w.t.words)
	if level == len(axes) {
		f := firstBit(mask) // >= 1: mask is non-empty
		out[(f-1)/64] |= 1 << (uint(f-1) % 64)
		w.memo[key] = out
		return out
	}
	axis := axes[level]
	seen := make(map[string]struct{})
	child := make([]uint64, w.t.words)
	var ckey []byte
	for k := 0; k < len(w.sp.bounds[axis]); k++ {
		andMasks(child, mask, w.t.segMask(axis, k))
		ckey = appendMaskKey(ckey[:0], child)
		if _, ok := seen[string(ckey)]; ok {
			continue
		}
		seen[string(ckey)] = struct{}{}
		cc := make([]uint64, w.t.words)
		copy(cc, child)
		r := w.reach(axes, level+1, cc)
		for wd := range out {
			out[wd] |= r[wd]
		}
	}
	w.memo[key] = out
	return out
}

// winners returns the bitset of rules that decide at least one region
// in which rule i (1-based) also matches: the rules that take i's
// packets. For an unreachable i this is its exact covering set; for a
// reachable i it contains i itself plus every rule that beats it
// somewhere.
func (w *lintWalker) winners(i int) []uint64 {
	out := make([]uint64, w.t.words)
	visited := make(map[string]struct{})
	for _, c := range classes {
		m := w.t.startMask(c)
		if !hasBit(m, i) {
			continue
		}
		w.winRecurse(axesFor(c), 0, m, i, out, visited)
	}
	// Drop i itself: callers want the rules competing with i.
	out[(i-1)/64] &^= 1 << (uint(i-1) % 64)
	return out
}

func (w *lintWalker) winRecurse(axes []int, level int, mask []uint64, i int, out []uint64, visited map[string]struct{}) {
	key := nodeKey(len(axes), level, mask)
	if _, ok := visited[key]; ok {
		return
	}
	visited[key] = struct{}{}
	if level == len(axes) {
		f := firstBit(mask) // >= 1: bit i is set
		out[(f-1)/64] |= 1 << (uint(f-1) % 64)
		return
	}
	axis := axes[level]
	child := make([]uint64, w.t.words)
	for k := 0; k < len(w.sp.bounds[axis]); k++ {
		andMasks(child, mask, w.t.segMask(axis, k))
		if !hasBit(child, i) {
			continue // rule i dead below: region is outside i's space
		}
		cc := make([]uint64, w.t.words)
		copy(cc, child)
		w.winRecurse(axes, level+1, cc, i, out, visited)
	}
}

// nodeKey builds a memo key from the remaining-axis identity and the
// live mask.
func nodeKey(axesLen, level int, mask []uint64) string {
	key := make([]byte, 0, 2+8*len(mask))
	key = append(key, byte(axesLen), byte(level))
	key = appendMaskKey(key, mask)
	return string(key)
}

// bitsOf expands a bitset into ascending 1-based indices.
func bitsOf(m []uint64) []int {
	var out []int
	for w, x := range m {
		for x != 0 {
			out = append(out, w*64+bits.TrailingZeros64(x)+1)
			x &= x - 1
		}
	}
	return out
}

// coversExact reports whether rule a matches every packet rule b
// matches, decided class by class over the modeled space (so a plain
// allow-out rule can cover a VPG rule's outbound cleartext, which the
// heuristic covers() conservatively never admits).
func coversExact(a, b *fw.Rule) bool {
	for _, c := range classes {
		if !b.AppliesTo(c.Dir, c.Sealed) || (!c.HasPorts && !b.MatchesPortless()) {
			continue
		}
		if !a.AppliesTo(c.Dir, c.Sealed) || (!c.HasPorts && !a.MatchesPortless()) {
			return false
		}
		for _, axis := range axesFor(c) {
			sa, sb := ruleSpan(a, axis), ruleSpan(b, axis)
			if sa.Lo > sb.Lo || sa.Hi < sb.Hi {
				return false
			}
		}
	}
	return true
}
