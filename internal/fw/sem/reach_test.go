package sem

import (
	"math/rand"
	"reflect"
	"testing"

	"barbican/internal/fw"
	"barbican/internal/packet"
)

// TestExactLintBasics pins the finding vocabulary on hand-built sets
// where the exact and heuristic analyses must agree.
func TestExactLintBasics(t *testing.T) {
	cases := []struct {
		name string
		def  fw.Action
		rs   []fw.Rule
		opts fw.LintOptions
		want []fw.Finding
	}{
		{
			name: "shadowed",
			def:  fw.Deny,
			rs: []fw.Rule{
				fw.AllowAllRule(),
				{Name: "late", Action: fw.Deny, Direction: fw.Both, Proto: packet.ProtoTCP},
			},
			want: []fw.Finding{{Kind: fw.FindingShadowed, Rule: 2, By: 1}},
		},
		{
			name: "conflict",
			def:  fw.Deny,
			rs: []fw.Rule{
				{Name: "block-src", Action: fw.Deny, Direction: fw.In, Src: pfx("10.0.0.0/24")},
				{Name: "open-dst", Action: fw.Allow, Direction: fw.In, Dst: pfx("10.9.9.9/32")},
			},
			want: []fw.Finding{{Kind: fw.FindingConflict, Rule: 2, By: 1}},
		},
		{
			name: "redundant-union",
			def:  fw.Deny,
			rs: []fw.Rule{
				{Name: "lo", Action: fw.Allow, Direction: fw.In, Proto: packet.ProtoTCP, DstPorts: fw.Ports(0, 100)},
				{Name: "hi", Action: fw.Allow, Direction: fw.In, Proto: packet.ProtoTCP, DstPorts: fw.Ports(101, 65535)},
				{Name: "mid", Action: fw.Allow, Direction: fw.In, Proto: packet.ProtoTCP, DstPorts: fw.Ports(50, 200)},
			},
			want: []fw.Finding{{Kind: fw.FindingRedundant, Rule: 3, Covering: []int{1, 2}}},
		},
		{
			name: "unreachable-mixed-union",
			def:  fw.Deny,
			rs: []fw.Rule{
				{Name: "lo", Action: fw.Allow, Direction: fw.In, Proto: packet.ProtoTCP, DstPorts: fw.Ports(0, 100)},
				{Name: "hi", Action: fw.Deny, Direction: fw.In, Proto: packet.ProtoTCP, DstPorts: fw.Ports(101, 65535)},
				{Name: "mid", Action: fw.Allow, Direction: fw.In, Proto: packet.ProtoTCP, DstPorts: fw.Ports(50, 200)},
			},
			want: []fw.Finding{{Kind: fw.FindingUnreachable, Rule: 3, Covering: []int{1, 2}}},
		},
		{
			name: "depth",
			def:  fw.Deny,
			rs:   []fw.Rule{fw.NonMatchingRule(1), fw.AllowAllRule()},
			opts: fw.LintOptions{DepthWarn: 1},
			want: []fw.Finding{{Kind: fw.FindingDepth, Rule: 2, Depth: 2}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rs := fw.MustRuleSet(tc.def, tc.rs...)
			got := ExactLint(rs, tc.opts)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("ExactLint = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestExactLintCrossClass: a plain allow-out wildcard swallows every
// cleartext packet a VPG outbound rule would seal. The heuristic's
// same-class guard skips the pair; the exact analysis proves the VPG
// rule dead.
func TestExactLintCrossClass(t *testing.T) {
	rs := fw.MustRuleSet(fw.Deny,
		fw.Rule{Name: "open-out", Action: fw.Allow, Direction: fw.Out},
		fw.Rule{Name: "seal", Action: fw.Allow, Direction: fw.Out, VPG: "g", Src: pfx("10.0.0.0/8")},
	)
	exact := ExactLint(rs, fw.LintOptions{})
	want := []fw.Finding{{Kind: fw.FindingRedundant, Rule: 2, By: 1}}
	if !reflect.DeepEqual(exact, want) {
		t.Fatalf("exact = %v, want %v", exact, want)
	}
	if heur := rs.Lint(fw.LintOptions{}); len(heur) != 0 {
		t.Fatalf("heuristic unexpectedly found %v; the documented divergence is that it reports nothing here", heur)
	}
}

// TestExactLintPhantomConflict: the heuristic reports a conflict
// between rules 2 and 3 because their boxes partially overlap with
// opposite actions — but a VPG outbound wildcard (rule 1) takes every
// packet first, so the order dependence is phantom. The exact analysis
// instead proves rules 2 and 3 dead behind rule 1.
func TestExactLintPhantomConflict(t *testing.T) {
	rs := fw.MustRuleSet(fw.Deny,
		fw.Rule{Name: "seal-all", Action: fw.Allow, Direction: fw.Out, VPG: "g"},
		fw.Rule{Name: "open-src", Action: fw.Allow, Direction: fw.Out, Src: pfx("10.0.0.0/8")},
		fw.Rule{Name: "block-dst", Action: fw.Deny, Direction: fw.Out, Dst: pfx("10.9.9.9/32")},
	)
	exact := ExactLint(rs, fw.LintOptions{})
	want := []fw.Finding{
		{Kind: fw.FindingRedundant, Rule: 2, By: 1},
		{Kind: fw.FindingShadowed, Rule: 3, By: 1},
	}
	if !reflect.DeepEqual(exact, want) {
		t.Fatalf("exact = %v, want %v", exact, want)
	}
	heur := rs.Lint(fw.LintOptions{})
	want = []fw.Finding{{Kind: fw.FindingConflict, Rule: 3, By: 2}}
	if !reflect.DeepEqual(heur, want) {
		t.Fatalf("heuristic = %v, want the documented phantom conflict %v", heur, want)
	}
}

func unreachableRules(fs []fw.Finding) map[int]bool {
	out := map[int]bool{}
	for _, f := range fs {
		switch f.Kind {
		case fw.FindingShadowed, fw.FindingRedundant, fw.FindingUnreachable:
			out[f.Rule] = true
		}
	}
	return out
}

func conflictPairs(fs []fw.Finding) map[[2]int]bool {
	out := map[[2]int]bool{}
	for _, f := range fs {
		if f.Kind == fw.FindingConflict {
			out[[2]int{f.Rule, f.By}] = true
		}
	}
	return out
}

func depthRules(fs []fw.Finding) map[int]bool {
	out := map[int]bool{}
	for _, f := range fs {
		if f.Kind == fw.FindingDepth {
			out[f.Rule] = true
		}
	}
	return out
}

// TestDifferentialLint is the heuristic-vs-exact differential on
// seeded random rule sets. The heuristic's one-sided guarantees, each
// asserted here:
//
//  1. Soundness of coverage claims: every rule Lint calls
//     shadowed/redundant/unreachable is exactly unreachable (its box
//     algebra is exact within a class; it only under-reports, via the
//     same-class guard and the worklist cap).
//  2. Conflict completeness within a class: every same-class conflict
//     the exact analysis proves (an earlier opposite-action rule
//     really decides part of the later rule's space) also appears in
//     Lint's overlap-based report. The converse is false: Lint also
//     reports phantom conflicts (see TestExactLintPhantomConflict)
//     and misses cross-class ones (TestExactLintCrossClass).
//  3. Depth-note soundness: exact depth notes are a subset of Lint's,
//     because exactly-reachable implies heuristically-reachable.
func TestDifferentialLint(t *testing.T) {
	opts := fw.LintOptions{DepthWarn: 8}
	for seed := int64(1); seed <= 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		rs := Generate(r, GenOptions{Rules: 18})
		heur := rs.Lint(opts)
		exact := ExactLint(rs, opts)

		hUnreach, eUnreach := unreachableRules(heur), unreachableRules(exact)
		for rule := range hUnreach {
			if !eUnreach[rule] {
				t.Errorf("seed %d: heuristic claims rule %d unreachable, exact proof disagrees\npolicy:\n%v",
					seed, rule, rs)
			}
		}

		rules := rs.Rules()
		hConf, eConf := conflictPairs(heur), conflictPairs(exact)
		for pair := range eConf {
			i, j := pair[0], pair[1]
			if rules[i-1].IsVPG() != rules[j-1].IsVPG() {
				continue // cross-class: invisible to the heuristic by design
			}
			if !hConf[pair] {
				t.Errorf("seed %d: exact proves conflict %v, heuristic misses it\npolicy:\n%v", seed, pair, rs)
			}
		}

		hDepth, eDepth := depthRules(heur), depthRules(exact)
		for rule := range eDepth {
			if !hDepth[rule] {
				t.Errorf("seed %d: exact depth note on rule %d missing from heuristic", seed, rule)
			}
		}
	}
}

// TestExactReachabilityProbes: any rule observed deciding a real probe
// packet must be in the exact reachable set.
func TestExactReachabilityProbes(t *testing.T) {
	probes := rand.New(rand.NewSource(5))
	for seed := int64(1); seed <= 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		rs := Generate(r, GenOptions{Rules: 16})
		unreach := unreachableRules(ExactLint(rs, fw.LintOptions{}))
		for p := 0; p < 500; p++ {
			s, dir := genSummary(probes)
			v := rs.Eval(s, dir)
			if v.Index != 0 && unreach[v.Index] {
				t.Fatalf("seed %d: rule %d proven unreachable but decided probe %v %v\npolicy:\n%v",
					seed, v.Index, dir, s, rs)
			}
		}
	}
}
