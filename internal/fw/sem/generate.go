package sem

import (
	"fmt"
	"math/rand"

	"barbican/internal/fw"
	"barbican/internal/packet"
)

// GenOptions shapes Generate's output.
type GenOptions struct {
	// Rules is the rule count (0 = 24).
	Rules int
	// VPGPercent is the percentage of VPG rules (0..100; negative
	// disables VPG rules; 0 = 15).
	VPGPercent int
}

// Generate builds a random valid rule set from a seeded source, biased
// toward the collisions that stress first-match semantics: a narrow
// address pool so prefixes nest and overlap, frequent wildcards,
// adjacent port ranges, Both-direction rules, and a sprinkling of VPG
// rules so the sealed/cleartext class split is exercised. It is the
// property-based half of the verification story: CI feeds generated
// sets to VerifyCompiled and to the Lint-vs-ExactLint differential to
// hunt for engine/walk divergence no hand-written case covers.
//
// The same *rand.Rand always yields the same rule set, so a failing
// seed is a reproducible bug report.
func Generate(r *rand.Rand, opts GenOptions) *fw.RuleSet {
	n := opts.Rules
	if n == 0 {
		n = 24
	}
	vpgPct := opts.VPGPercent
	if vpgPct == 0 {
		vpgPct = 15
	}
	rules := make([]fw.Rule, 0, n)
	for i := 0; i < n; i++ {
		if vpgPct > 0 && r.Intn(100) < vpgPct {
			rules = append(rules, genVPGRule(r, i))
			continue
		}
		rules = append(rules, genPlainRule(r, i))
	}
	def := fw.Deny
	if r.Intn(2) == 0 {
		def = fw.Allow
	}
	return fw.MustRuleSet(def, rules...)
}

func genPlainRule(r *rand.Rand, i int) fw.Rule {
	rule := fw.Rule{
		Name:      fmt.Sprintf("gen-%d", i+1),
		Action:    genAction(r),
		Direction: genDirection(r),
		Src:       genPrefix(r),
		Dst:       genPrefix(r),
	}
	switch r.Intn(5) {
	case 0: // wildcard protocol, no ports
	case 1:
		rule.Proto = packet.ProtoICMP
	default:
		rule.Proto = packet.ProtoTCP
		if r.Intn(2) == 0 {
			rule.Proto = packet.ProtoUDP
		}
		if r.Intn(3) > 0 {
			rule.DstPorts = genPorts(r)
		}
		if r.Intn(4) == 0 {
			rule.SrcPorts = genPorts(r)
		}
	}
	return rule
}

func genVPGRule(r *rand.Rand, i int) fw.Rule {
	return fw.Rule{
		Name:      fmt.Sprintf("gen-%d", i+1),
		Action:    fw.Allow,
		Direction: genDirection(r),
		Src:       genPrefix(r),
		Dst:       genPrefix(r),
		VPG:       fmt.Sprintf("vpg-%d", r.Intn(3)+1),
	}
}

func genAction(r *rand.Rand) fw.Action {
	if r.Intn(2) == 0 {
		return fw.Allow
	}
	return fw.Deny
}

func genDirection(r *rand.Rand) fw.Direction {
	switch r.Intn(4) {
	case 0:
		return fw.Both
	case 1:
		return fw.Out
	default:
		return fw.In
	}
}

// genPrefix draws from a deliberately tiny 10.a.b.c pool so generated
// rules nest, shadow, and partially overlap instead of landing in
// disjoint space.
func genPrefix(r *rand.Rand) packet.Prefix {
	bits := []int{0, 8, 16, 24, 30, 32}[r.Intn(6)]
	if bits == 0 {
		return packet.Prefix{}
	}
	addr := uint32(10)<<24 | uint32(r.Intn(3))<<16 | uint32(r.Intn(4))<<8 | uint32(r.Intn(8))
	mask := ^uint32(0) << (32 - uint(bits))
	p, err := packet.NewPrefix(packet.IPFromUint32(addr&mask), bits)
	if err != nil {
		panic(err)
	}
	return p
}

// genPorts draws narrow, low port ranges so distinct rules share
// boundaries and split each other's intervals.
func genPorts(r *rand.Rand) fw.PortRange {
	lo := uint16(r.Intn(120))
	return fw.Ports(lo, lo+uint16(r.Intn(40)))
}
