package sem

import (
	"fmt"
	"math/big"

	"barbican/internal/fw"
	"barbican/internal/packet"
)

// RegionClass classifies the verdict relation of one atomic region
// between two rule sets (or two matcher implementations of one set).
type RegionClass int

// Region verdict classes.
const (
	// RegionUnchanged: same action, same deciding rule position.
	RegionUnchanged RegionClass = iota
	// RegionRedecided: same action, but a different rule (or the
	// default action) decides it — invisible to enforcement, visible
	// to attribution, counters, and depth cost.
	RegionRedecided
	// RegionAllowToDeny: packets admitted under the first set are
	// dropped under the second.
	RegionAllowToDeny
	// RegionDenyToAllow: packets dropped under the first set are
	// admitted under the second — the class that widens exposure.
	RegionDenyToAllow
	// NumRegionClasses sizes by-class arrays; not a real class.
	NumRegionClasses
)

// String names the class.
func (c RegionClass) String() string {
	//barbican:exhaustive
	switch c {
	case RegionUnchanged:
		return "unchanged"
	case RegionRedecided:
		return "redecided"
	case RegionAllowToDeny:
		return "allow-to-deny"
	case RegionDenyToAllow:
		return "deny-to-allow"
	default:
		return fmt.Sprintf("regionclass(%d)", int(c))
	}
}

// RegionVerdict is the verdict a rule set assigns to every packet of
// one atomic region: the action and the 1-based deciding rule index
// (0 = default action), the same convention as fw.Verdict.
type RegionVerdict struct {
	Action fw.Action
	Index  int
}

// String renders "allow (rule 3)" or "deny (default)".
func (v RegionVerdict) String() string {
	if v.Index == 0 {
		return fmt.Sprintf("%v (default)", v.Action)
	}
	return fmt.Sprintf("%v (rule %d)", v.Action, v.Index)
}

func classify(a, b RegionVerdict) RegionClass {
	if a.Action == b.Action {
		if a.Index == b.Index {
			return RegionUnchanged
		}
		return RegionRedecided
	}
	if a.Action == fw.Allow {
		return RegionAllowToDeny
	}
	return RegionDenyToAllow
}

// RegionDiff is one changed region with a concrete witness packet.
type RegionDiff struct {
	Region Region
	Class  RegionClass
	// From and To are the verdicts under the first and second set.
	From, To RegionVerdict
	// Packet and Dir are a witness inside the region.
	Packet packet.Summary
	Dir    fw.Direction
}

// String renders one witness line.
func (d RegionDiff) String() string {
	return fmt.Sprintf("%s: %v -> %v  witness %v %v [%v]",
		d.Class, d.From, d.To, d.Dir, d.Packet, d.Region)
}

// DiffOptions configures Diff.
type DiffOptions struct {
	// MaxWitnesses bounds the witness list (0 = 8). The walker yields
	// at most one witness per discrete traffic class.
	MaxWitnesses int
	// StrictIndex makes RegionRedecided count against equivalence:
	// two sets are then equivalent only when every packet is decided
	// by the same rule position, not merely given the same action.
	StrictIndex bool
	// MaxRegions bounds the number of atomic regions the walker may
	// materialize before giving up with an error (0 = 10,000,000).
	// Memoized subtree reuse does not count against the budget.
	MaxRegions uint64
}

// DiffResult is the exact semantic comparison of two rule sets over
// the entire modeled packet space.
type DiffResult struct {
	// Equivalent reports verdict equality on every packet: identical
	// actions everywhere (and identical deciding rules, with
	// StrictIndex).
	Equivalent bool
	// ByClass counts packets per verdict-relation class. Counts are
	// exact over the modeled universe: direction × sealed × port
	// presence × protocol × addresses (× ports for ported packets).
	ByClass [NumRegionClasses]*big.Int
	// ChangedPackets is ByClass[AllowToDeny] + ByClass[DenyToAllow].
	ChangedPackets *big.Int
	// RedecidedPackets is ByClass[RegionRedecided].
	RedecidedPackets *big.Int
	// TotalPackets is the size of the modeled universe.
	TotalPackets *big.Int
	// ChangedRegions counts the distinct atomic regions whose verdict
	// relation is not RegionUnchanged.
	ChangedRegions uint64
	// Witnesses holds up to MaxWitnesses concrete changed regions.
	Witnesses []RegionDiff
}

const (
	defaultDiffRegions   = 10_000_000
	defaultVerifyRegions = 4_000_000
	defaultMaxWitnesses  = 8
)

// universeSize returns the number of packet tuples in the modeled
// space: for each of the 8 classes, the product of its axis widths.
func universeSize() *big.Int {
	total := new(big.Int)
	for _, c := range classes {
		p := big.NewInt(1)
		for _, axis := range axesFor(c) {
			w := new(big.Int).SetUint64(uint64(axisMax[axis]) + 1)
			p.Mul(p, w)
		}
		total.Add(total, p)
	}
	return total
}

// diffNode is one memoized subtree result: packet counts per class
// over the remaining axes, changed-region count, and (when the
// subtree contains a changed region) the axis spans of one changed
// path for witness reconstruction.
type diffNode struct {
	byClass [NumRegionClasses]big.Int
	regions uint64 // changed regions in the subtree
	suffix  []fw.Span
	sClass  RegionClass
	sFrom   RegionVerdict
	sTo     RegionVerdict
}

func (n *diffNode) changed() bool { return n.suffix != nil }

// actionChange reports whether the class is an enforcement change
// (not a mere attribution change). Witness selection prefers these.
func actionChange(c RegionClass) bool {
	return c == RegionAllowToDeny || c == RegionDenyToAllow
}

type diffWalker struct {
	sp     *space
	a, b   *setTables
	memo   map[string]*diffNode
	budget uint64
	work   uint64
}

// Diff computes the exact semantic difference from rule set a (V1) to
// rule set b (V2): which packets change verdict, how many, and
// concrete witnesses. It is the policy-push question "what does this
// update actually do on the wire?" answered by proof.
func Diff(a, b *fw.RuleSet, opts DiffOptions) (*DiffResult, error) {
	if a.Stateful() || b.Stateful() {
		// Connection state is a conntrack attribute, not a packet
		// coordinate: the region decomposition cannot represent it, so
		// an answer here would silently treat stateful rules as
		// always-matchable. Refuse rather than prove the wrong claim.
		return nil, fmt.Errorf("sem: stateful rule sets are outside the packet-space model (state matchers present)")
	}
	if opts.MaxRegions == 0 {
		opts.MaxRegions = defaultDiffRegions
	}
	if opts.MaxWitnesses == 0 {
		opts.MaxWitnesses = defaultMaxWitnesses
	}
	sp := newSpace(a, b)
	w := &diffWalker{sp: sp, a: sp.sets[0], b: sp.sets[1],
		memo: make(map[string]*diffNode), budget: opts.MaxRegions}

	res := &DiffResult{
		ChangedPackets:   new(big.Int),
		RedecidedPackets: new(big.Int),
		TotalPackets:     universeSize(),
	}
	for i := range res.ByClass {
		res.ByClass[i] = new(big.Int)
	}
	for _, c := range classes {
		axes := axesFor(c)
		node, err := w.recurse(c, axes, 0, w.a.startMask(c), w.b.startMask(c))
		if err != nil {
			return nil, err
		}
		for i := range res.ByClass {
			res.ByClass[i].Add(res.ByClass[i], &node.byClass[i])
		}
		res.ChangedRegions += node.regions
		if node.changed() && len(res.Witnesses) < opts.MaxWitnesses {
			region := regionFor(c, node.suffix)
			pkt, dir := region.Witness()
			res.Witnesses = append(res.Witnesses, RegionDiff{
				Region: region, Class: node.sClass,
				From: node.sFrom, To: node.sTo,
				Packet: pkt, Dir: dir,
			})
		}
	}
	res.ChangedPackets.Add(res.ByClass[RegionAllowToDeny], res.ByClass[RegionDenyToAllow])
	res.RedecidedPackets.Set(res.ByClass[RegionRedecided])
	res.Equivalent = res.ChangedPackets.Sign() == 0 &&
		(!opts.StrictIndex || res.RedecidedPackets.Sign() == 0)
	return res, nil
}

// Equivalent reports whether two rule sets assign every packet the
// same action, with witnesses for the difference when they do not.
func Equivalent(a, b *fw.RuleSet) (bool, []RegionDiff, error) {
	res, err := Diff(a, b, DiffOptions{})
	if err != nil {
		return false, nil, err
	}
	return res.Equivalent, res.Witnesses, nil
}

// diffGroup is one mask-distinct child during a level expansion.
type diffGroup struct {
	repSeg int
	width  uint64
	mA, mB []uint64
}

func (w *diffWalker) recurse(c class, axes []int, level int, mA, mB []uint64) (*diffNode, error) {
	// Leaf: all axes chosen; the first live bit per set is the
	// first-match rule for every packet in the region.
	if level == len(axes) {
		w.work++
		if w.work > w.budget {
			return nil, fmt.Errorf("sem: region budget %d exceeded (raise MaxRegions)", w.budget)
		}
		return w.leaf(mA, mB), nil
	}

	key := w.key(len(axes), level, mA, mB)
	if n, ok := w.memo[key]; ok {
		return n, nil
	}

	// Both sets dead: every deeper region takes the two default
	// actions, so the whole subtree collapses to one outcome times
	// the product of the remaining axis widths.
	if maskEmpty(mA) && maskEmpty(mB) {
		n := w.emptyTail(c, axes, level)
		w.memo[key] = n
		return n, nil
	}

	groups := w.groups(axes[level], mA, mB)
	n := &diffNode{}
	for _, g := range groups {
		child, err := w.recurse(c, axes, level+1, g.mA, g.mB)
		if err != nil {
			return nil, err
		}
		width := new(big.Int).SetUint64(g.width)
		var tmp big.Int
		for i := range n.byClass {
			tmp.Mul(&child.byClass[i], width)
			n.byClass[i].Add(&n.byClass[i], &tmp)
		}
		n.regions += child.regions
		if child.changed() && (n.suffix == nil || (actionChange(child.sClass) && !actionChange(n.sClass))) {
			n.suffix = append([]fw.Span{w.sp.segSpan(axes[level], g.repSeg)}, child.suffix...)
			n.sClass, n.sFrom, n.sTo = child.sClass, child.sFrom, child.sTo
		}
	}
	w.memo[key] = n
	return n, nil
}

// leaf classifies one fully-decomposed region.
func (w *diffWalker) leaf(mA, mB []uint64) *diffNode {
	va := RegionVerdict{Index: firstBit(mA)}
	va.Action = w.a.verdictOf(va.Index)
	vb := RegionVerdict{Index: firstBit(mB)}
	vb.Action = w.b.verdictOf(vb.Index)
	cls := classify(va, vb)
	n := &diffNode{}
	n.byClass[cls].SetUint64(1)
	if cls != RegionUnchanged {
		n.regions = 1
		n.suffix = []fw.Span{}
		n.sClass, n.sFrom, n.sTo = cls, va, vb
	}
	return n
}

// emptyTail is the collapsed subtree when no rule of either set is
// alive: default action vs default action over every remaining value.
func (w *diffWalker) emptyTail(c class, axes []int, level int) *diffNode {
	va := RegionVerdict{Action: w.a.rs.Default()}
	vb := RegionVerdict{Action: w.b.rs.Default()}
	cls := classify(va, vb)
	count := big.NewInt(1)
	for _, axis := range axes[level:] {
		count.Mul(count, new(big.Int).SetUint64(uint64(axisMax[axis])+1))
	}
	n := &diffNode{}
	n.byClass[cls].Set(count)
	if cls != RegionUnchanged {
		n.regions = 1
		n.suffix = make([]fw.Span, 0, len(axes)-level)
		for _, axis := range axes[level:] {
			n.suffix = append(n.suffix, fw.Span{Lo: 0, Hi: axisMax[axis]})
		}
		n.sClass, n.sFrom, n.sTo = cls, va, vb
	}
	return n
}

// groups expands one axis under the live masks, merging segments with
// identical (maskA, maskB) pairs. Groups are ordered by first segment
// so walks are deterministic.
func (w *diffWalker) groups(axis int, mA, mB []uint64) []diffGroup {
	var out []diffGroup
	index := make(map[string]int)
	segs := len(w.sp.bounds[axis])
	var key []byte
	for k := 0; k < segs; k++ {
		cA := make([]uint64, w.a.words)
		andMasks(cA, mA, w.a.segMask(axis, k))
		cB := make([]uint64, w.b.words)
		andMasks(cB, mB, w.b.segMask(axis, k))
		key = key[:0]
		key = appendMaskKey(key, cA)
		key = appendMaskKey(key, cB)
		if i, ok := index[string(key)]; ok {
			out[i].width += w.sp.segWidth(axis, k)
			continue
		}
		index[string(key)] = len(out)
		out = append(out, diffGroup{repSeg: k, width: w.sp.segWidth(axis, k), mA: cA, mB: cB})
	}
	return out
}

// key builds the memo key: axis-list length, level, and both masks.
func (w *diffWalker) key(axesLen, level int, mA, mB []uint64) string {
	key := make([]byte, 0, 2+8*(len(mA)+len(mB)))
	key = append(key, byte(axesLen), byte(level))
	key = appendMaskKey(key, mA)
	key = appendMaskKey(key, mB)
	return string(key)
}
