package sem

import (
	"math/big"
	"math/rand"
	"testing"

	"barbican/internal/fw"
	"barbican/internal/packet"
	"barbican/internal/policy"
)

func mustParse(t *testing.T, text string) *fw.RuleSet {
	t.Helper()
	rs, err := policy.Parse(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return rs
}

func pfx(s string) packet.Prefix { return packet.MustPrefix(s) }

// genSummary draws a boundary-biased probe packet from the same narrow
// pools Generate uses, so probes land on rule edges.
func genSummary(r *rand.Rand) (packet.Summary, fw.Direction) {
	addr := func() packet.IP {
		if r.Intn(8) == 0 {
			return packet.IPFromUint32(r.Uint32())
		}
		return packet.IPFromUint32(uint32(10)<<24 | uint32(r.Intn(3))<<16 | uint32(r.Intn(4))<<8 | uint32(r.Intn(8)))
	}
	protos := []packet.Protocol{packet.ProtoTCP, packet.ProtoUDP, packet.ProtoICMP, packet.ProtoVPGEncap}
	s := packet.Summary{
		Proto: protos[r.Intn(len(protos))],
		Src:   addr(), Dst: addr(),
		Sealed: r.Intn(4) == 0,
		IPLen:  40,
	}
	if !s.Sealed && (s.Proto == packet.ProtoTCP || s.Proto == packet.ProtoUDP) && r.Intn(8) > 0 {
		s.HasPorts = true
		s.SrcPort = uint16(r.Intn(180))
		s.DstPort = uint16(r.Intn(180))
	}
	dir := fw.In
	if r.Intn(2) == 0 {
		dir = fw.Out
	}
	return s, dir
}

// TestDiffSelfEquivalent: a rule set is strictly equivalent to itself,
// and the by-class packet counts always partition the whole universe.
func TestDiffSelfEquivalent(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		rs := Generate(r, GenOptions{Rules: 16})
		res, err := Diff(rs, rs, DiffOptions{StrictIndex: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Equivalent || res.ChangedRegions != 0 || res.ChangedPackets.Sign() != 0 ||
			res.RedecidedPackets.Sign() != 0 || len(res.Witnesses) != 0 {
			t.Fatalf("seed %d: self-diff not clean: %+v", seed, res)
		}
		checkConservation(t, res)
	}
}

func checkConservation(t *testing.T, res *DiffResult) {
	t.Helper()
	sum := new(big.Int)
	for _, c := range res.ByClass {
		sum.Add(sum, c)
	}
	if sum.Cmp(res.TotalPackets) != 0 {
		t.Fatalf("by-class counts sum to %v, universe is %v", sum, res.TotalPackets)
	}
}

// TestDiffSymmetry: reversing the comparison swaps the two changed
// classes and preserves every count.
func TestDiffSymmetry(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		a := Generate(r, GenOptions{Rules: 14})
		b := Generate(r, GenOptions{Rules: 14})
		ab, err := Diff(a, b, DiffOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ba, err := Diff(b, a, DiffOptions{})
		if err != nil {
			t.Fatal(err)
		}
		checkConservation(t, ab)
		checkConservation(t, ba)
		if ab.ChangedPackets.Cmp(ba.ChangedPackets) != 0 ||
			ab.ChangedRegions != ba.ChangedRegions ||
			ab.ByClass[RegionAllowToDeny].Cmp(ba.ByClass[RegionDenyToAllow]) != 0 ||
			ab.ByClass[RegionDenyToAllow].Cmp(ba.ByClass[RegionAllowToDeny]) != 0 ||
			ab.ByClass[RegionRedecided].Cmp(ba.ByClass[RegionRedecided]) != 0 {
			t.Fatalf("seed %d: diff not symmetric:\na->b %+v\nb->a %+v", seed, ab, ba)
		}
	}
}

// TestDiffWitnessReplay: every witness the engine emits must replay
// through the real evaluators with exactly the claimed verdicts, and
// probe packets may only disagree across sets when the diff says the
// sets are inequivalent.
func TestDiffWitnessReplay(t *testing.T) {
	probes := rand.New(rand.NewSource(99))
	for seed := int64(1); seed <= 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		a := Generate(r, GenOptions{Rules: 12})
		b := Generate(r, GenOptions{Rules: 12})
		res, err := Diff(a, b, DiffOptions{StrictIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range res.Witnesses {
			va := a.Eval(w.Packet, w.Dir)
			vb := b.Eval(w.Packet, w.Dir)
			if va.Action != w.From.Action || va.Index != w.From.Index {
				t.Fatalf("seed %d: witness %v: set A evaluates to %v/%d, claimed %v",
					seed, w, va.Action, va.Index, w.From)
			}
			if vb.Action != w.To.Action || vb.Index != w.To.Index {
				t.Fatalf("seed %d: witness %v: set B evaluates to %v/%d, claimed %v",
					seed, w, vb.Action, vb.Index, w.To)
			}
			if classify(w.From, w.To) != w.Class {
				t.Fatalf("seed %d: witness class %v inconsistent with verdicts %v -> %v",
					seed, w.Class, w.From, w.To)
			}
		}
		for p := 0; p < 400; p++ {
			s, dir := genSummary(probes)
			va, vb := a.Eval(s, dir), b.Eval(s, dir)
			if va.Action != vb.Action && res.ChangedPackets.Sign() == 0 {
				t.Fatalf("seed %d: diff claims action-equivalent, probe %v %v differs: %v vs %v",
					seed, dir, s, va.Action, vb.Action)
			}
			if (va.Action != vb.Action || va.Index != vb.Index) && res.Equivalent {
				t.Fatalf("seed %d: diff claims strictly equivalent, probe %v %v differs", seed, dir, s)
			}
		}
	}
}

// TestDiffHandCounts pins the exact packet counts on deltas small
// enough to compute by hand.
func TestDiffHandCounts(t *testing.T) {
	empty := fw.MustRuleSet(fw.Deny)

	// One ported allow rule: tcp, any src, one dst address, one dst
	// port. Changed packets = 2^32 srcs x 65536 src ports = 2^48.
	one := fw.MustRuleSet(fw.Deny, fw.Rule{
		Name: "web", Action: fw.Allow, Direction: fw.In,
		Proto: packet.ProtoTCP, Dst: pfx("10.0.0.1/32"), DstPorts: fw.Port(80),
	})
	res, err := Diff(empty, one, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Lsh(big.NewInt(1), 48)
	if res.ByClass[RegionDenyToAllow].Cmp(want) != 0 || res.ByClass[RegionAllowToDeny].Sign() != 0 {
		t.Fatalf("deny-to-allow = %v, want 2^48 (%v); allow-to-deny = %v",
			res.ByClass[RegionDenyToAllow], want, res.ByClass[RegionAllowToDeny])
	}
	if res.Equivalent || len(res.Witnesses) == 0 {
		t.Fatalf("one-rule delta reported equivalent or witness-free: %+v", res)
	}
	checkConservation(t, res)

	// One VPG rule over /8 prefixes matches sealed-in and clear-out in
	// both the ported and portless planes:
	//   2 sides x 256 protos x 2^24 x 2^24 addrs x (1 + 2^32 ports).
	vpg := fw.MustRuleSet(fw.Deny, fw.Rule{
		Name: "grp", Action: fw.Allow, Direction: fw.Both,
		Src: pfx("10.0.0.0/8"), Dst: pfx("10.0.0.0/8"), VPG: "grp",
	})
	res, err = Diff(empty, vpg, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	side := new(big.Int).Lsh(big.NewInt(256), 48) // 256 x 2^24 x 2^24
	ports := new(big.Int).Add(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), 32))
	want = new(big.Int).Mul(side, ports)
	want.Mul(want, big.NewInt(2))
	if res.ByClass[RegionDenyToAllow].Cmp(want) != 0 {
		t.Fatalf("vpg deny-to-allow = %v, want %v", res.ByClass[RegionDenyToAllow], want)
	}
	checkConservation(t, res)
}

// TestDiffStrictIndex: reordering rules that never disagree on action
// is equivalent under default options but not under StrictIndex.
func TestDiffStrictIndex(t *testing.T) {
	tcp := fw.Rule{Name: "tcp", Action: fw.Allow, Direction: fw.Both, Proto: packet.ProtoTCP}
	all := fw.Rule{Name: "all", Action: fw.Allow, Direction: fw.Both}
	a := fw.MustRuleSet(fw.Deny, tcp, all)
	b := fw.MustRuleSet(fw.Deny, all, tcp)

	res, err := Diff(a, b, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent || res.ChangedPackets.Sign() != 0 || res.RedecidedPackets.Sign() == 0 {
		t.Fatalf("reorder: want action-equivalent with redecided packets, got %+v", res)
	}
	strict, err := Diff(a, b, DiffOptions{StrictIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Equivalent {
		t.Fatal("reorder reported equivalent under StrictIndex")
	}
	if len(strict.Witnesses) == 0 || strict.Witnesses[0].Class != RegionRedecided {
		t.Fatalf("want a redecided witness, got %v", strict.Witnesses)
	}
}

// TestVerifyCompiled proves compiled == walk on the canned policies,
// the paper's depth shape, and a generated corpus.
func TestVerifyCompiled(t *testing.T) {
	sets := map[string]*fw.RuleSet{
		"empty":  fw.MustRuleSet(fw.Allow),
		"oracle": mustParse(t, policy.OraclePolicy),
	}
	d64, err := fw.DepthRuleSet(64, fw.AllowAllRule(), fw.Deny)
	if err != nil {
		t.Fatal(err)
	}
	sets["depth64"] = d64
	for seed := int64(1); seed <= 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		sets["gen"+string(rune('a'+seed-1))] = Generate(r, GenOptions{Rules: 8 + int(seed)*4})
	}
	for name, rs := range sets {
		res, err := VerifyCompiled(rs, VerifyOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.OK() {
			t.Fatalf("%s: proof failed: mismatch=%v parity=%q", name, res.Mismatch, res.ParityError)
		}
		if res.Regions == 0 {
			t.Fatalf("%s: proof checked zero regions", name)
		}
	}
}

// TestVerifyCountersUntouched: the proof must not pollute the live
// set's counters.
func TestVerifyCountersUntouched(t *testing.T) {
	rs := mustParse(t, policy.OraclePolicy)
	if _, err := VerifyCompiled(rs, VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	if rs.EvalCount() != 0 {
		t.Fatalf("verification bumped the live set's eval counter to %d", rs.EvalCount())
	}
}

// TestVerifyDetectsMismatch drives the checker with a doctored live
// mask so the engine prediction disagrees with the real evaluators,
// proving the mismatch path actually fires.
func TestVerifyDetectsMismatch(t *testing.T) {
	rs := fw.MustRuleSet(fw.Deny, fw.AllowAllRule())
	sp := newSpace(rs)
	w := &verifyWalker{
		sp: sp, t: sp.sets[0],
		walk:     fw.MustRuleSet(fw.Deny, fw.AllowAllRule()),
		compiled: fw.Compile(fw.MustRuleSet(fw.Deny, fw.AllowAllRule())),
		budget:   1 << 20,
		res:      &VerifyResult{},
	}
	// Empty mask claims "no rule matches here": the engine predicts
	// the default deny, but both real matchers see the allow-all rule.
	spans := []fw.Span{{Lo: 0, Hi: 255}, {Lo: 0, Hi: ^uint32(0)}, {Lo: 0, Hi: ^uint32(0)}}
	if err := w.check(class{Dir: fw.In}, make([]uint64, w.t.words), spans); err != nil {
		t.Fatal(err)
	}
	if w.res.Mismatch == nil {
		t.Fatal("doctored mask produced no mismatch")
	}
	if w.res.Mismatch.Engine.Action != fw.Deny || w.res.Mismatch.Walk.Action != fw.Allow {
		t.Fatalf("unexpected mismatch verdicts: %v", w.res.Mismatch)
	}
}

// TestVerifyBudget: the region guard must error out rather than
// silently truncate the proof.
func TestVerifyBudget(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	rs := Generate(r, GenOptions{Rules: 24})
	if _, err := VerifyCompiled(rs, VerifyOptions{MaxRegions: 10}); err == nil {
		t.Fatal("want budget-exceeded error, got nil")
	}
}

// TestGenerateDeterministic: same seed, same rule set.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(42)), GenOptions{})
	b := Generate(rand.New(rand.NewSource(42)), GenOptions{})
	if a.String() != b.String() {
		t.Fatal("same seed produced different rule sets")
	}
	c := Generate(rand.New(rand.NewSource(43)), GenOptions{})
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical rule sets")
	}
	if a.Len() != 24 {
		t.Fatalf("default rule count = %d, want 24", a.Len())
	}
}

// TestRegionWitnessInside: the witness of a region built from real
// spans must evaluate inside that region (spot-check via Eval against
// the first live rule the engine predicts).
func TestRegionWitnessInside(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		rs := Generate(r, GenOptions{Rules: 10})
		res, err := VerifyCompiled(rs, VerifyOptions{})
		if err != nil || !res.OK() {
			t.Fatalf("trial %d: %v %+v", trial, err, res)
		}
	}
}
