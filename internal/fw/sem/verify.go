package sem

import (
	"fmt"

	"barbican/internal/fw"
	"barbican/internal/packet"
)

// VerifyOptions configures VerifyCompiled.
type VerifyOptions struct {
	// MaxRegions bounds how many atomic regions the proof may check
	// before giving up with an error (0 = 4,000,000).
	MaxRegions uint64
}

// Mismatch is a disproof: a concrete packet on which the linear walk,
// the compiled classifier, and/or the engine's prediction disagree.
type Mismatch struct {
	Region Region
	Packet packet.Summary
	Dir    fw.Direction
	// Walk, Compiled, Engine are the three verdicts for the packet.
	Walk, Compiled, Engine RegionVerdict
}

// String renders the disproof with all three verdicts.
func (m *Mismatch) String() string {
	return fmt.Sprintf("mismatch on %v %v [%v]: walk=%v compiled=%v engine=%v",
		m.Dir, m.Packet, m.Region, m.Walk, m.Compiled, m.Engine)
}

// VerifyResult reports the outcome of an exhaustive equivalence proof
// between RuleSet.Eval (the linear reference walk) and the compiled
// classifier built from the same rules.
type VerifyResult struct {
	// Regions is the number of atomic regions checked. One witness
	// per region covers the whole packet space: within a region every
	// rule matches all packets or none, so a matcher that is a pure
	// function of the per-rule match outcomes is constant there.
	Regions uint64
	// Rules is the size of the verified rule set.
	Rules int
	// Mismatch is the disproof witness, nil when the proof succeeded.
	Mismatch *Mismatch
	// ParityError reports a counter divergence (eval totals, per-rule
	// hit counts, default hits) after the full sweep; empty when the
	// counters agree.
	ParityError string
}

// OK reports whether the proof succeeded.
func (r *VerifyResult) OK() bool { return r.Mismatch == nil && r.ParityError == "" }

// VerifyCompiled exhaustively proves that fw.Compile preserves the
// linear walk's semantics for one rule set: it enumerates every atomic
// region of the packet space, evaluates one witness per region through
// private copies of both matchers, and compares verdicts (action,
// deciding index, traversal depth) plus the engine's own first-match
// prediction. It finishes by checking counter parity across the sweep.
//
// Unlike Diff, this walk cannot merge regions or memoize subtrees: the
// point is to drive the real implementations, whose lookup tables are
// indexed by concrete coordinates, over every mask-distinct region.
// The proof upgrades the sampled differential test of the compiled
// matcher to full coverage per rule set.
func VerifyCompiled(rs *fw.RuleSet, opts VerifyOptions) (*VerifyResult, error) {
	if rs.Stateful() {
		// See Diff: connection state is not a packet coordinate. The
		// stateful compiled≡walk property is covered by the seeded
		// differential test in fw instead.
		return nil, fmt.Errorf("sem: stateful rule sets are outside the packet-space model (state matchers present)")
	}
	if opts.MaxRegions == 0 {
		opts.MaxRegions = defaultVerifyRegions
	}
	// Private copies so the proof's evaluations don't pollute the live
	// set's counters, and so the two matchers' counters can be
	// compared in isolation.
	walk := fw.MustRuleSet(rs.Default(), rs.Rules()...)
	compiledSet := fw.MustRuleSet(rs.Default(), rs.Rules()...)
	compiled := fw.Compile(compiledSet)

	sp := newSpace(rs)
	w := &verifyWalker{
		sp: sp, t: sp.sets[0],
		walk: walk, compiled: compiled,
		budget: opts.MaxRegions,
		res:    &VerifyResult{Rules: rs.Len()},
	}
	for _, c := range classes {
		spans := make([]fw.Span, 0, numAxes)
		if err := w.recurse(c, axesFor(c), 0, w.t.startMask(c), spans); err != nil {
			return nil, err
		}
		if w.res.Mismatch != nil {
			return w.res, nil
		}
	}
	// Both matchers saw the identical evaluation sequence; their
	// counters must agree exactly.
	we, wm, wd := walk.Stats()
	ce, cm, cd := compiledSet.Stats()
	if we != ce || wd != cd {
		w.res.ParityError = fmt.Sprintf("evals walk=%d compiled=%d, default hits walk=%d compiled=%d", we, ce, wd, cd)
	} else {
		for i := range wm {
			if wm[i] != cm[i] {
				w.res.ParityError = fmt.Sprintf("rule %d hit count walk=%d compiled=%d", i+1, wm[i], cm[i])
				break
			}
		}
	}
	return w.res, nil
}

type verifyWalker struct {
	sp       *space
	t        *setTables
	walk     *fw.RuleSet
	compiled *fw.CompiledSet
	budget   uint64
	res      *VerifyResult
}

func (w *verifyWalker) recurse(c class, axes []int, level int, mask []uint64, spans []fw.Span) error {
	if level == len(axes) {
		return w.check(c, mask, spans)
	}
	axis := axes[level]
	segs := len(w.sp.bounds[axis])
	// Group mask-identical segments: one witness per distinct child
	// suffices, because both matchers reduce the packet to its
	// per-rule match bits before deciding.
	seen := make(map[string]struct{}, segs)
	child := make([]uint64, w.t.words)
	var key []byte
	for k := 0; k < segs; k++ {
		andMasks(child, mask, w.t.segMask(axis, k))
		key = appendMaskKey(key[:0], child)
		if _, ok := seen[string(key)]; ok {
			continue
		}
		seen[string(key)] = struct{}{}
		cc := make([]uint64, w.t.words)
		copy(cc, child)
		if err := w.recurse(c, axes, level+1, cc, append(spans, w.sp.segSpan(axis, k))); err != nil {
			return err
		}
		if w.res.Mismatch != nil {
			return nil
		}
	}
	return nil
}

// check evaluates one region's witness through both matchers and the
// engine prediction.
func (w *verifyWalker) check(c class, mask []uint64, spans []fw.Span) error {
	w.res.Regions++
	if w.res.Regions > w.budget {
		return fmt.Errorf("sem: verification budget %d regions exceeded (raise MaxRegions)", w.budget)
	}
	region := regionFor(c, spans)
	pkt, dir := region.Witness()

	first := firstBit(mask)
	engine := RegionVerdict{Action: w.t.verdictOf(first), Index: first}
	wv := w.walk.Eval(pkt, dir)
	cv := w.compiled.Eval(pkt, dir)
	if wv.Action != cv.Action || wv.Index != cv.Index || wv.Traversed != cv.Traversed ||
		wv.Action != engine.Action || wv.Index != engine.Index {
		w.res.Mismatch = &Mismatch{
			Region: region, Packet: pkt, Dir: dir,
			Walk:     RegionVerdict{Action: wv.Action, Index: wv.Index},
			Compiled: RegionVerdict{Action: cv.Action, Index: cv.Index},
			Engine:   engine,
		}
	}
	return nil
}
