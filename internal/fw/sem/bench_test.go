package sem

import (
	"fmt"
	"testing"

	"barbican/internal/fw"
)

// BenchmarkSemEquiv tracks the cost of an exhaustive equivalence proof
// over the paper's experimental rule-set shape (depth-1 pad rules plus
// the action rule) at the Fig. 2 sweep's low and high depths. Exact
// verification runs at policy-push time when enabled, so its cost is a
// hot path like any other and regresses through the bench gate.
func BenchmarkSemEquiv(b *testing.B) {
	for _, depth := range []int{64, 512} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			mk := func() *fw.RuleSet {
				rs, err := fw.DepthRuleSet(depth, fw.AllowAllRule(), fw.Deny)
				if err != nil {
					b.Fatal(err)
				}
				return rs
			}
			v1, v2 := mk(), mk()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Diff(v1, v2, DiffOptions{StrictIndex: true})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Equivalent {
					b.Fatal("identical depth sets reported inequivalent")
				}
			}
		})
	}
}

// BenchmarkSemVerifyCompiled tracks the exhaustive compiled-vs-walk
// proof at the same depths.
func BenchmarkSemVerifyCompiled(b *testing.B) {
	for _, depth := range []int{64, 512} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			rs, err := fw.DepthRuleSet(depth, fw.AllowAllRule(), fw.Deny)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := VerifyCompiled(rs, VerifyOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK() {
					b.Fatalf("proof failed: %+v", res)
				}
			}
		})
	}
}
