package fw

import (
	"math/rand"
	"testing"

	"barbican/internal/packet"
)

func TestStateMaskRoundTrip(t *testing.T) {
	cases := []struct {
		mask StateMask
		text string
	}{
		{MaskOf(StateNew), "new"},
		{MaskOf(StateEstablished, StateRelated), "established,related"},
		{MaskOf(StateInvalid), "invalid"},
		{MaskOf(StateNew, StateEstablished, StateRelated, StateInvalid), "new,established,related,invalid"},
	}
	for _, c := range cases {
		if got := c.mask.String(); got != c.text {
			t.Errorf("mask %08b renders %q, want %q", c.mask, got, c.text)
		}
		parsed, err := ParseStateMask(c.text)
		if err != nil || parsed != c.mask {
			t.Errorf("ParseStateMask(%q) = %08b, %v; want %08b", c.text, parsed, err, c.mask)
		}
	}
	for _, bad := range []string{"none", "", "bogus", "new,none"} {
		if _, err := ParseStateMask(bad); err == nil {
			t.Errorf("ParseStateMask(%q) succeeded", bad)
		}
	}
}

func TestStatefulRuleMatching(t *testing.T) {
	established := Rule{Action: Allow, Direction: Both, States: MaskOf(StateEstablished, StateRelated)}
	s := packet.Summary{Proto: packet.ProtoTCP, Src: packet.MustIP("10.0.0.1"),
		Dst: packet.MustIP("10.0.0.2"), SrcPort: 1, DstPort: 2, HasPorts: true}

	if !established.IsStateful() {
		t.Fatal("rule with state mask not stateful")
	}
	if established.MatchesState(s, In, StateNew) {
		t.Error("established-only rule matched a new packet")
	}
	if !established.MatchesState(s, In, StateEstablished) {
		t.Error("established-only rule missed an established packet")
	}
	if !established.MatchesState(s, Out, StateRelated) {
		t.Error("established-only rule missed a related packet")
	}
	// The zero state — conntrack never consulted — matches no stateful
	// rule: a stateful policy evaluated statelessly falls through.
	if established.MatchesState(s, In, StateNone) {
		t.Error("stateful rule matched under StateNone")
	}
	// Stateless rules ignore the classification entirely.
	stateless := Rule{Action: Allow, Direction: Both}
	for cs := StateNone; cs < NumConnStates; cs++ {
		if !stateless.MatchesState(s, In, cs) {
			t.Errorf("stateless rule missed under %v", cs)
		}
	}
}

func TestRuleSetStatefulFlag(t *testing.T) {
	stateless := MustRuleSet(Deny, AllowAllRule())
	if stateless.Stateful() {
		t.Error("stateless set reports stateful")
	}
	stateful := MustRuleSet(Deny,
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP, DstPorts: Port(80), States: MaskOf(StateNew)},
		Rule{Action: Allow, Direction: Both, States: MaskOf(StateEstablished)},
	)
	if !stateful.Stateful() {
		t.Error("stateful set not flagged")
	}
	// Eval (the stateless entry point) evaluates under StateNone: the
	// stateful rules cannot fire and the default verdict applies.
	syn := packet.Summary{Proto: packet.ProtoTCP, Src: packet.MustIP("10.0.0.1"),
		Dst: packet.MustIP("10.0.0.2"), SrcPort: 1000, DstPort: 80, HasPorts: true, Flags: packet.FlagSYN}
	if v := stateful.Eval(syn, In); v.Action != Deny {
		t.Errorf("stateless Eval of stateful set = %v, want default deny", v.Action)
	}
	if v := stateful.EvalState(syn, In, StateNew); v.Action != Allow {
		t.Errorf("EvalState(new) = %v, want allow", v.Action)
	}
}

// TestCompiledStatefulDifferential: the compiled matcher and the
// linear walk agree on every (packet, direction, state) triple for a
// seeded mix of stateful and stateless rules — the same differential
// contract the stateless compiler is held to, extended by the state
// dimension.
func TestCompiledStatefulDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		var rules []Rule
		n := 1 + r.Intn(12)
		for i := 0; i < n; i++ {
			rule := Rule{
				Action:    Action(r.Intn(2) + 1),
				Direction: Direction(r.Intn(3) + 1),
			}
			switch r.Intn(3) {
			case 0:
				rule.Proto = packet.ProtoTCP
			case 1:
				rule.Proto = packet.ProtoUDP
			}
			if rule.Proto != 0 && r.Intn(2) == 0 {
				rule.DstPorts = Port(uint16(r.Intn(4) + 80))
			}
			if r.Intn(2) == 0 {
				var mask StateMask
				for mask == 0 {
					for s := StateNew; s < NumConnStates; s++ {
						if r.Intn(2) == 0 {
							mask |= 1 << uint(s)
						}
					}
				}
				rule.States = mask
			}
			rules = append(rules, rule)
		}
		rs, err := NewRuleSet(Action(r.Intn(2)+1), rules...)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		compiled := Compile(rs)

		for probe := 0; probe < 200; probe++ {
			s := packet.Summary{
				Src: packet.IP{10, 0, 0, byte(r.Intn(4) + 1)},
				Dst: packet.IP{10, 0, 0, byte(r.Intn(4) + 1)},
			}
			switch r.Intn(3) {
			case 0:
				s.Proto = packet.ProtoTCP
				s.HasPorts = true
			case 1:
				s.Proto = packet.ProtoUDP
				s.HasPorts = true
			default:
				s.Proto = packet.ProtoICMP
			}
			if s.HasPorts {
				s.SrcPort = uint16(r.Intn(100) + 1)
				s.DstPort = uint16(r.Intn(6) + 80)
			}
			dir := Direction(r.Intn(2) + 1)
			cs := ConnState(r.Intn(int(NumConnStates)))
			want := rs.EvalState(s, dir, cs)
			got := compiled.EvalState(s, dir, cs)
			if got.Action != want.Action || got.Index != want.Index || got.Traversed != want.Traversed {
				t.Fatalf("trial %d: compiled diverges on %v dir=%v cs=%v: walk=%+v compiled=%+v",
					trial, s, dir, cs, want, got)
			}
		}
	}
}
