package fw

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"barbican/internal/packet"
)

func TestAnalyzeDetectsShadowing(t *testing.T) {
	rs := MustRuleSet(Deny,
		Rule{Action: Deny, Direction: In, Src: packet.MustPrefix("10.0.0.0/8")},
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP,
			Src: packet.MustPrefix("10.1.0.0/16"), DstPorts: Port(80)},
	)
	findings := rs.Analyze()
	if len(findings) != 1 {
		t.Fatalf("findings = %v", findings)
	}
	f := findings[0]
	if f.Kind != FindingShadowed || f.Rule != 2 || f.By != 1 {
		t.Errorf("finding = %+v", f)
	}
	if !strings.Contains(f.String(), "shadowed") {
		t.Errorf("String() = %q", f.String())
	}
}

func TestAnalyzeDetectsRedundancy(t *testing.T) {
	rs := MustRuleSet(Deny,
		Rule{Action: Allow, Direction: Both, Proto: packet.ProtoTCP, DstPorts: Ports(80, 90)},
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP, DstPorts: Port(85)},
	)
	findings := rs.Analyze()
	if len(findings) != 1 || findings[0].Kind != FindingRedundant {
		t.Fatalf("findings = %v", findings)
	}
}

func TestAnalyzeCleanPolicy(t *testing.T) {
	rs := MustRuleSet(Deny,
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP, DstPorts: Port(80)},
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP, DstPorts: Port(443)},
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoUDP, DstPorts: Port(53)},
		Rule{Action: Deny, Direction: In, Proto: packet.ProtoICMP},
	)
	if findings := rs.Analyze(); len(findings) != 0 {
		t.Errorf("clean policy produced findings: %v", findings)
	}
}

func TestAnalyzeCoverageSubtleties(t *testing.T) {
	tests := []struct {
		name  string
		first Rule
		later Rule
		want  int // findings
	}{
		{
			name:  "ported rule does not cover portless",
			first: Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP, DstPorts: Ports(1, 65535)},
			later: Rule{Action: Deny, Direction: In, Proto: packet.ProtoTCP},
			want:  0, // the later rule also matches packets without ports? No — TCP always has ports, but our model keys on the range being any
		},
		{
			name:  "narrower direction does not cover Both",
			first: Rule{Action: Allow, Direction: In},
			later: Rule{Action: Deny, Direction: Both, Proto: packet.ProtoTCP},
			want:  0,
		},
		{
			name:  "wildcard proto covers specific",
			first: Rule{Action: Deny, Direction: Both},
			later: Rule{Action: Allow, Direction: In, Proto: packet.ProtoUDP},
			want:  1,
		},
		{
			name:  "specific proto does not cover wildcard",
			first: Rule{Action: Deny, Direction: Both, Proto: packet.ProtoTCP},
			later: Rule{Action: Allow, Direction: In},
			want:  0,
		},
		{
			name:  "plain rule does not cover VPG rule",
			first: Rule{Action: Allow, Direction: In},
			later: Rule{Action: Allow, Direction: In, VPG: "g"},
			want:  0,
		},
		{
			name:  "broader VPG rule covers narrower",
			first: Rule{Action: Allow, Direction: In, VPG: "a", Src: packet.MustPrefix("10.0.0.0/8")},
			later: Rule{Action: Allow, Direction: In, VPG: "b", Src: packet.MustPrefix("10.1.0.0/16")},
			want:  1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rs := MustRuleSet(Deny, tt.first, tt.later)
			if got := rs.Analyze(); len(got) != tt.want {
				t.Errorf("findings = %v, want %d", got, tt.want)
			}
		})
	}
}

// Property: if Analyze flags rule i as covered by rule j, then no packet
// decided by the rule set is ever decided by rule i (soundness of the
// shadowing analysis against random traffic).
func TestAnalyzeSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ruleGen := func(r *rand.Rand) Rule {
		protos := []packet.Protocol{0, packet.ProtoTCP, packet.ProtoUDP, packet.ProtoICMP}
		rule := Rule{
			Action:    []Action{Allow, Deny}[r.Intn(2)],
			Direction: []Direction{In, Out, Both}[r.Intn(3)],
			Proto:     protos[r.Intn(len(protos))],
		}
		if r.Intn(2) == 0 {
			rule.Src = packet.Prefix{Addr: packet.IP{10, byte(r.Intn(4)), 0, 0}, Bits: 8 * (1 + r.Intn(3))}
		}
		if r.Intn(2) == 0 {
			rule.Dst = packet.Prefix{Addr: packet.IP{10, byte(r.Intn(4)), 0, 0}, Bits: 8 * (1 + r.Intn(3))}
		}
		if (rule.Proto == packet.ProtoTCP || rule.Proto == packet.ProtoUDP) && r.Intn(2) == 0 {
			lo := uint16(r.Intn(100))
			rule.DstPorts = Ports(lo, lo+uint16(r.Intn(100)))
		}
		return rule
	}

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		rules := make([]Rule, 0, n)
		for i := 0; i < n; i++ {
			rules = append(rules, ruleGen(r))
		}
		rs := MustRuleSet(Deny, rules...)
		flagged := make(map[int]bool)
		for _, fd := range rs.Analyze() {
			flagged[fd.Rule] = true
		}
		if len(flagged) == 0 {
			return true
		}
		// Hammer with random packets; flagged rules must never decide.
		for k := 0; k < 300; k++ {
			protos := []packet.Protocol{packet.ProtoTCP, packet.ProtoUDP, packet.ProtoICMP}
			proto := protos[r.Intn(len(protos))]
			s := packet.Summary{
				Proto:   proto,
				Src:     packet.IP{10, byte(r.Intn(4)), byte(r.Intn(4)), byte(r.Intn(4))},
				Dst:     packet.IP{10, byte(r.Intn(4)), byte(r.Intn(4)), byte(r.Intn(4))},
				SrcPort: uint16(r.Intn(200)), DstPort: uint16(r.Intn(200)),
				HasPorts: proto != packet.ProtoICMP,
			}
			dir := []Direction{In, Out}[r.Intn(2)]
			if v := rs.Eval(s, dir); v.Index != 0 && flagged[v.Index] {
				t.Logf("flagged rule %d decided packet %v %v\nrules:\n%s", v.Index, s, dir, rs)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCostReport(t *testing.T) {
	rs := MustRuleSet(Deny,
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP, DstPorts: Port(22)},
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP, DstPorts: Port(80)},
	)
	ssh := packet.Summary{Proto: packet.ProtoTCP, DstPort: 22, SrcPort: 9, HasPorts: true}
	web := packet.Summary{Proto: packet.ProtoTCP, DstPort: 80, SrcPort: 9, HasPorts: true}
	other := packet.Summary{Proto: packet.ProtoUDP, DstPort: 53, SrcPort: 9, HasPorts: true}
	rs.Eval(ssh, In)
	for i := 0; i < 8; i++ {
		rs.Eval(web, In)
	}
	rs.Eval(other, In)

	report := rs.Cost()
	if report.Evaluations != 10 || report.DefaultHits != 1 {
		t.Fatalf("report = %+v", report)
	}
	// weighted: 1*1 + 8*2 + 1*2(default over 2 rules) = 19 → 1.9
	if report.AverageTraversal < 1.89 || report.AverageTraversal > 1.91 {
		t.Errorf("average traversal = %v, want 1.9", report.AverageTraversal)
	}
	if len(report.HotRules) != 1 || report.HotRules[0].Rule != 2 || report.HotRules[0].SavingsIfFirst != 8 {
		t.Errorf("hot rules = %+v", report.HotRules)
	}
	if !strings.Contains(report.Render(), "rule   2: 8 matches") {
		t.Errorf("render:\n%s", report.Render())
	}
}

func TestCostReportEmpty(t *testing.T) {
	rs := MustRuleSet(Deny, AllowAllRule())
	report := rs.Cost()
	if report.AverageTraversal != 0 || len(report.HotRules) != 0 {
		t.Errorf("empty report = %+v", report)
	}
}
