package fw

import (
	"fmt"

	"barbican/internal/obs"
)

// PublishRuleMetrics registers the rule-set's evaluation counters —
// total evaluations, default-action hits, and a per-rule hit counter
// labelled with the 1-based rule index — as collector closures. Eval
// itself is untouched; the closures read the existing counters only
// when a snapshot or flight-recorder tick gathers them.
func (rs *RuleSet) PublishRuleMetrics(reg *obs.Registry, labels ...obs.Label) {
	counter := func(name, help string, read func() float64, extra ...obs.Label) {
		reg.MustRegisterFunc(name, help, obs.KindCounter, read, append(extra, labels...)...)
	}

	counter("fw_evals_total", "Packet evaluations against this rule-set.",
		func() float64 { return float64(rs.EvalCount()) })
	counter("fw_default_hits_total", "Evaluations that walked every rule and hit the default action.",
		func() float64 { return float64(rs.DefaultHits()) })
	for i := 1; i <= rs.Len(); i++ {
		i := i
		counter("fw_rule_hits_total", "Evaluations matched by this rule.",
			func() float64 { return float64(rs.MatchCount(i)) },
			obs.Label{Key: "rule", Value: fmt.Sprintf("%03d", i)})
	}
}
