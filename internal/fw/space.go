package fw

import "barbican/internal/packet"

// This file exports the small geometric vocabulary the exact semantics
// engine (internal/fw/sem) shares with lint.go's box algebra and
// compile.go's segment tables: a validated rule's match space, within
// one discrete traffic class, is a product of inclusive integer
// intervals. Keeping the interval constructors here — next to the
// Matches implementation they must mirror — means the engine, the
// compiled matcher, and the heuristic linter all cut the packet space
// at the same boundaries.

// Span is an inclusive integer interval [Lo, Hi] on one match axis.
type Span struct {
	Lo, Hi uint32
}

// Contains reports whether v falls in the span.
func (s Span) Contains(v uint32) bool { return s.Lo <= v && v <= s.Hi }

// PrefixSpan returns the address range a prefix matches: the full
// 32-bit axis for the zero (wildcard) prefix.
func PrefixSpan(p packet.Prefix) Span {
	iv := prefixInterval(p)
	return Span{Lo: iv[0], Hi: iv[1]}
}

// PortSpan returns the port range a PortRange matches: the full
// 16-bit axis for the Any range.
func PortSpan(r PortRange) Span {
	iv := portInterval(r)
	return Span{Lo: iv[0], Hi: iv[1]}
}

// ProtoSpan returns the protocol interval a rule matches. VPG rules
// ignore the protocol of the (encrypted) envelope, and Proto == 0 is
// the wildcard, so both span the full 8-bit axis.
func ProtoSpan(r *Rule) Span {
	if r.IsVPG() || r.Proto == 0 {
		return Span{Lo: 0, Hi: 255}
	}
	return Span{Lo: uint32(r.Proto), Hi: uint32(r.Proto)}
}

// SrcSpan returns the source-address interval the rule matches.
func SrcSpan(r *Rule) Span { return PrefixSpan(r.Src) }

// DstSpan returns the destination-address interval the rule matches.
func DstSpan(r *Rule) Span { return PrefixSpan(r.Dst) }

// SrcPortSpan returns the source-port interval the rule matches (the
// full axis for VPG rules, whose port ranges are Any by validation).
func SrcPortSpan(r *Rule) Span { return PortSpan(r.SrcPorts) }

// DstPortSpan returns the destination-port interval the rule matches.
func DstPortSpan(r *Rule) Span { return PortSpan(r.DstPorts) }

// AppliesTo reports whether the rule can match any packet in the
// discrete traffic class (dir, sealed): the class-mask logic of
// Rule.Matches and CompiledSet.Eval. VPG rules match sealed envelopes
// inbound and the cleartext traffic they will seal outbound; plain
// rules never match sealed envelopes. dir must be In or Out.
func (r *Rule) AppliesTo(dir Direction, sealed bool) bool {
	if r.Direction != Both && r.Direction != dir {
		return false
	}
	if r.IsVPG() {
		if dir == In {
			return sealed
		}
		return !sealed
	}
	return !sealed
}

// MatchesPortless reports whether the rule can match packets that
// carry no transport ports (ICMP, non-first fragments, sealed
// envelopes): true unless the rule constrains either port range.
func (r *Rule) MatchesPortless() bool {
	return r.SrcPorts.Any() && r.DstPorts.Any()
}
