package fw

import (
	"fmt"
	"testing"

	"barbican/internal/packet"
)

// BenchmarkEvalByDepth is the paper's depth cliff in benchmark form:
// the linear walk's cost grows with the action rule's position, while
// the compiled matcher's stays ~flat (the "modern NIC" fast path). Both
// paths must hold 0 allocs/op.
func BenchmarkEvalByDepth(b *testing.B) {
	s := tcpSummary("10.0.0.1", "10.0.0.2", 4242, 80)
	for _, depth := range []int{1, 8, 64, 512} {
		rs, err := DepthRuleSet(depth, AllowAllRule(), Deny)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if v := rs.Eval(s, In); v.Action != Allow {
					b.Fatal("unexpected deny")
				}
			}
		})
		c := Compile(rs)
		b.Run(fmt.Sprintf("compiled-depth%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if v := c.Eval(s, In); v.Action != Allow {
					b.Fatal("unexpected deny")
				}
			}
		})
	}
}

// BenchmarkCompile prices the one-time compilation a policy install
// pays for depth-independent lookups.
func BenchmarkCompile(b *testing.B) {
	for _, depth := range []int{64, 512} {
		rs, err := DepthRuleSet(depth, AllowAllRule(), Deny)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if Compile(rs) == nil {
					b.Fatal("nil compile")
				}
			}
		})
	}
}

func BenchmarkRuleMatch(b *testing.B) {
	r := Rule{
		Action: Allow, Direction: In, Proto: packet.ProtoTCP,
		Src: packet.MustPrefix("10.0.0.0/8"), Dst: packet.MustPrefix("10.0.0.2/32"),
		DstPorts: Ports(80, 90),
	}
	s := tcpSummary("10.0.0.1", "10.0.0.2", 4242, 85)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !r.Matches(s, In) {
			b.Fatal("no match")
		}
	}
}
