package fw

import (
	"fmt"
	"testing"

	"barbican/internal/packet"
)

func BenchmarkEvalByDepth(b *testing.B) {
	s := tcpSummary("10.0.0.1", "10.0.0.2", 4242, 80)
	for _, depth := range []int{1, 8, 64} {
		rs, err := DepthRuleSet(depth, AllowAllRule(), Deny)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if v := rs.Eval(s, In); v.Action != Allow {
					b.Fatal("unexpected deny")
				}
			}
		})
	}
}

func BenchmarkRuleMatch(b *testing.B) {
	r := Rule{
		Action: Allow, Direction: In, Proto: packet.ProtoTCP,
		Src: packet.MustPrefix("10.0.0.0/8"), Dst: packet.MustPrefix("10.0.0.2/32"),
		DstPorts: Ports(80, 90),
	}
	s := tcpSummary("10.0.0.1", "10.0.0.2", 4242, 85)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !r.Matches(s, In) {
			b.Fatal("no match")
		}
	}
}
