package fw

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"barbican/internal/packet"
)

func tcpSummary(src, dst string, sport, dport uint16) packet.Summary {
	return packet.Summary{
		Proto: packet.ProtoTCP,
		Src:   packet.MustIP(src), Dst: packet.MustIP(dst),
		SrcPort: sport, DstPort: dport, HasPorts: true,
	}
}

func udpSummary(src, dst string, sport, dport uint16) packet.Summary {
	s := tcpSummary(src, dst, sport, dport)
	s.Proto = packet.ProtoUDP
	return s
}

func TestPortRange(t *testing.T) {
	tests := []struct {
		r    PortRange
		p    uint16
		want bool
	}{
		{r: AnyPort, p: 0, want: true},
		{r: AnyPort, p: 65535, want: true},
		{r: Port(80), p: 80, want: true},
		{r: Port(80), p: 81, want: false},
		{r: Ports(6000, 6063), p: 6000, want: true},
		{r: Ports(6000, 6063), p: 6063, want: true},
		{r: Ports(6000, 6063), p: 6064, want: false},
		{r: Ports(6000, 6063), p: 5999, want: false},
	}
	for _, tt := range tests {
		if got := tt.r.Contains(tt.p); got != tt.want {
			t.Errorf("%v.Contains(%d) = %v, want %v", tt.r, tt.p, got, tt.want)
		}
	}
}

func TestRuleMatching(t *testing.T) {
	web := Rule{
		Action: Allow, Direction: In, Proto: packet.ProtoTCP,
		Dst:      packet.MustPrefix("10.0.0.2/32"),
		DstPorts: Port(80),
	}
	tests := []struct {
		name string
		s    packet.Summary
		dir  Direction
		want bool
	}{
		{name: "http in matches", s: tcpSummary("10.0.0.1", "10.0.0.2", 4242, 80), dir: In, want: true},
		{name: "wrong dst port", s: tcpSummary("10.0.0.1", "10.0.0.2", 4242, 443), dir: In, want: false},
		{name: "wrong dst ip", s: tcpSummary("10.0.0.1", "10.0.0.3", 4242, 80), dir: In, want: false},
		{name: "wrong direction", s: tcpSummary("10.0.0.1", "10.0.0.2", 4242, 80), dir: Out, want: false},
		{name: "wrong proto", s: udpSummary("10.0.0.1", "10.0.0.2", 4242, 80), dir: In, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := web.Matches(tt.s, tt.dir); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRuleAnyFieldsMatchEverything(t *testing.T) {
	r := AllowAllRule()
	for _, s := range []packet.Summary{
		tcpSummary("1.2.3.4", "5.6.7.8", 1, 2),
		udpSummary("9.9.9.9", "10.0.0.1", 53, 53),
		{Proto: packet.ProtoICMP, Src: packet.MustIP("1.1.1.1"), Dst: packet.MustIP("2.2.2.2")},
	} {
		if !r.Matches(s, In) || !r.Matches(s, Out) {
			t.Errorf("allow-all did not match %v", s)
		}
	}
}

func TestRulePortMatchRequiresPorts(t *testing.T) {
	r := Rule{Action: Allow, Direction: Both, Proto: packet.ProtoTCP, DstPorts: Port(80)}
	icmp := packet.Summary{Proto: packet.ProtoTCP} // ports absent
	if r.Matches(icmp, In) {
		t.Error("port rule matched portless summary")
	}
}

func TestSealedTrafficOnlyMatchesVPGRules(t *testing.T) {
	sealed := packet.Summary{
		Proto: packet.ProtoTCP,
		Src:   packet.MustIP("10.0.0.1"), Dst: packet.MustIP("10.0.0.2"),
		Sealed: true,
	}
	plain := AllowAllRule()
	if plain.Matches(sealed, In) {
		t.Error("plain rule matched sealed traffic")
	}
	vpgIn := Rule{Action: Allow, Direction: In, VPG: "g"}
	if !vpgIn.Matches(sealed, In) {
		t.Error("VPG in-rule did not match sealed traffic")
	}
	clear := tcpSummary("10.0.0.1", "10.0.0.2", 1, 2)
	if vpgIn.Matches(clear, In) {
		t.Error("VPG in-rule matched cleartext inbound traffic")
	}
	vpgOut := Rule{Action: Allow, Direction: Out, VPG: "g"}
	if !vpgOut.Matches(clear, Out) {
		t.Error("VPG out-rule did not match cleartext outbound traffic")
	}
	sealedOut := sealed
	if vpgOut.Matches(sealedOut, Out) {
		t.Error("VPG out-rule matched already-sealed traffic")
	}
}

func TestRuleValidate(t *testing.T) {
	tests := []struct {
		name    string
		rule    Rule
		wantErr string
	}{
		{name: "valid", rule: AllowAllRule()},
		{name: "bad action", rule: Rule{Direction: In}, wantErr: "invalid action"},
		{name: "bad direction", rule: Rule{Action: Allow}, wantErr: "invalid direction"},
		{
			name:    "inverted ports",
			rule:    Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP, DstPorts: Ports(90, 80)},
			wantErr: "inverted",
		},
		{
			name:    "ports without tcp/udp",
			rule:    Rule{Action: Allow, Direction: In, Proto: packet.ProtoICMP, DstPorts: Port(80)},
			wantErr: "port match requires",
		},
		{
			name:    "vpg deny",
			rule:    Rule{Action: Deny, Direction: In, VPG: "g"},
			wantErr: "must allow",
		},
		{
			name:    "vpg with ports",
			rule:    Rule{Action: Allow, Direction: In, VPG: "g", Proto: packet.ProtoTCP, DstPorts: Port(1)},
			wantErr: "cannot match ports",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.rule.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Validate = %v, want error containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestRuleSetFirstMatchWins(t *testing.T) {
	rs := MustRuleSet(Deny,
		Rule{Name: "deny-attacker", Action: Deny, Direction: In,
			Src: packet.MustPrefix("10.0.0.66/32")},
		Rule{Name: "allow-web", Action: Allow, Direction: In,
			Proto: packet.ProtoTCP, DstPorts: Port(80)},
		Rule{Name: "shadowed", Action: Deny, Direction: In,
			Proto: packet.ProtoTCP, DstPorts: Port(80)},
	)

	v := rs.Eval(tcpSummary("10.0.0.66", "10.0.0.2", 99, 80), In)
	if v.Action != Deny || v.Index != 1 || v.Traversed != 1 {
		t.Errorf("attacker verdict = %+v, want deny at rule 1", v)
	}

	v = rs.Eval(tcpSummary("10.0.0.1", "10.0.0.2", 99, 80), In)
	if v.Action != Allow || v.Index != 2 || v.Traversed != 2 {
		t.Errorf("web verdict = %+v, want allow at rule 2", v)
	}

	v = rs.Eval(udpSummary("10.0.0.1", "10.0.0.2", 99, 53), In)
	if v.Action != Deny || v.Index != 0 || v.Traversed != 3 {
		t.Errorf("default verdict = %+v, want default deny after 3 traversed", v)
	}
}

func TestRuleSetStats(t *testing.T) {
	rs := MustRuleSet(Deny,
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP, DstPorts: Port(80)},
	)
	rs.Eval(tcpSummary("1.1.1.1", "2.2.2.2", 9, 80), In)
	rs.Eval(tcpSummary("1.1.1.1", "2.2.2.2", 9, 80), In)
	rs.Eval(tcpSummary("1.1.1.1", "2.2.2.2", 9, 81), In)
	evals, perRule, defHits := rs.Stats()
	if evals != 3 || perRule[0] != 2 || defHits != 1 {
		t.Errorf("stats = %d %v %d, want 3 [2] 1", evals, perRule, defHits)
	}
}

func TestNewRuleSetRejectsInvalid(t *testing.T) {
	if _, err := NewRuleSet(Action(0)); err == nil {
		t.Error("invalid default action accepted")
	}
	if _, err := NewRuleSet(Allow, Rule{}); err == nil {
		t.Error("invalid rule accepted")
	}
}

func TestRuleSetCopiesInput(t *testing.T) {
	rules := []Rule{AllowAllRule()}
	rs := MustRuleSet(Deny, rules...)
	rules[0].Action = Deny
	if rs.Rule(1).Action != Allow {
		t.Error("rule set aliases caller's slice")
	}
}

func TestDepthRuleSet(t *testing.T) {
	for _, depth := range []int{1, 8, 16, 32, 64} {
		rs, err := DepthRuleSet(depth, AllowAllRule(), Deny)
		if err != nil {
			t.Fatalf("DepthRuleSet(%d): %v", depth, err)
		}
		if rs.Len() != depth {
			t.Fatalf("DepthRuleSet(%d) has %d rules", depth, rs.Len())
		}
		v := rs.Eval(tcpSummary("10.0.0.1", "10.0.0.2", 1234, 80), In)
		if v.Action != Allow || v.Traversed != depth {
			t.Errorf("depth %d: verdict %+v, want allow with %d traversed", depth, v, depth)
		}
	}
}

func TestTrailingRulesAreFree(t *testing.T) {
	// Paper §3: rules after the action rule do not affect traversal.
	action := AllowAllRule()
	rules := []Rule{action}
	for i := 0; i < 63; i++ {
		rules = append(rules, NonMatchingRule(i))
	}
	rs := MustRuleSet(Deny, rules...)
	v := rs.Eval(tcpSummary("10.0.0.1", "10.0.0.2", 1, 2), In)
	if v.Traversed != 1 {
		t.Errorf("traversed = %d, want 1 despite 63 trailing rules", v.Traversed)
	}
}

func TestAllowBetween(t *testing.T) {
	a, b := packet.MustIP("10.0.0.1"), packet.MustIP("10.0.0.2")
	rs := MustRuleSet(Deny, AllowBetween(a, b)...)
	if v := rs.Eval(tcpSummary("10.0.0.1", "10.0.0.2", 1, 2), In); v.Action != Allow {
		t.Error("a->b denied")
	}
	if v := rs.Eval(tcpSummary("10.0.0.2", "10.0.0.1", 2, 1), In); v.Action != Allow {
		t.Error("b->a denied")
	}
	if v := rs.Eval(tcpSummary("10.0.0.3", "10.0.0.2", 1, 2), In); v.Action != Deny {
		t.Error("third party allowed")
	}
}

func TestVPGRulePair(t *testing.T) {
	local := packet.MustIP("10.0.0.2")
	remote := packet.MustPrefix("10.0.0.0/24")
	pair := VPGRulePair("psq", local, remote)
	rs := MustRuleSet(Deny, pair...)

	sealedIn := packet.Summary{Src: packet.MustIP("10.0.0.1"), Dst: local, Sealed: true}
	if v := rs.Eval(sealedIn, In); v.Action != Allow || v.Rule.VPG != "psq" {
		t.Errorf("sealed inbound verdict = %+v", v)
	}
	clearOut := tcpSummary("10.0.0.2", "10.0.0.1", 1, 2)
	if v := rs.Eval(clearOut, Out); v.Action != Allow || v.Rule == nil || v.Rule.VPG != "psq" {
		t.Errorf("clear outbound verdict = %+v", v)
	}
	// Cleartext inbound traffic must NOT be admitted by the VPG.
	clearIn := tcpSummary("10.0.0.1", "10.0.0.2", 1, 2)
	if v := rs.Eval(clearIn, In); v.Action != Deny {
		t.Errorf("cleartext inbound verdict = %+v, want deny", v)
	}
}

func TestRuleStringRendersDSL(t *testing.T) {
	r := Rule{
		Name: "web", Action: Allow, Direction: In, Proto: packet.ProtoTCP,
		Dst: packet.MustPrefix("10.0.0.2/32"), DstPorts: Port(80),
	}
	got := r.String()
	for _, want := range []string{"allow", "in", "proto tcp", "to 10.0.0.2/32 port 80", "# web"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
}

func TestCountVPGCandidates(t *testing.T) {
	rs := MustRuleSet(Deny,
		Rule{Action: Allow, Direction: In, VPG: "a"},
		Rule{Action: Allow, Direction: Out, VPG: "a"},
		NonMatchingRule(1),
		Rule{Action: Allow, Direction: In, VPG: "b"},
		Rule{Action: Allow, Direction: Both, VPG: "c"},
	)
	tests := []struct {
		dir       Direction
		traversed int
		want      int
	}{
		{dir: In, traversed: 0, want: 0},
		{dir: In, traversed: 1, want: 1},
		{dir: In, traversed: 2, want: 1}, // out-rule doesn't count inbound
		{dir: In, traversed: 5, want: 3},
		{dir: Out, traversed: 5, want: 2},
		{dir: In, traversed: 99, want: 3}, // clamped to rule count
	}
	for _, tt := range tests {
		if got := rs.CountVPGCandidates(tt.dir, tt.traversed); got != tt.want {
			t.Errorf("CountVPGCandidates(%v, %d) = %d, want %d", tt.dir, tt.traversed, got, tt.want)
		}
	}
}

// Property: Eval agrees with a naive reference scan for arbitrary packets
// against a fixed diverse rule-set.
func TestEvalMatchesReferenceProperty(t *testing.T) {
	rules := []Rule{
		{Action: Deny, Direction: In, Src: packet.MustPrefix("10.0.0.0/8")},
		{Action: Allow, Direction: Both, Proto: packet.ProtoTCP, DstPorts: Port(80)},
		{Action: Allow, Direction: Out, Proto: packet.ProtoUDP, SrcPorts: Ports(1024, 65535)},
		{Action: Deny, Direction: Both, Proto: packet.ProtoICMP},
		{Action: Allow, Direction: In, VPG: "g", Src: packet.MustPrefix("192.168.0.0/16")},
	}
	rs := MustRuleSet(Deny, rules...)

	f := func(srcRaw, dstRaw uint32, sport, dport uint16, protoPick, dirPick, sealed uint8) bool {
		protos := []packet.Protocol{packet.ProtoTCP, packet.ProtoUDP, packet.ProtoICMP}
		proto := protos[int(protoPick)%len(protos)]
		dir := In
		if dirPick%2 == 1 {
			dir = Out
		}
		s := packet.Summary{
			Proto: proto,
			Src:   packet.IPFromUint32(srcRaw), Dst: packet.IPFromUint32(dstRaw),
			SrcPort: sport, DstPort: dport,
			HasPorts: proto != packet.ProtoICMP,
			Sealed:   sealed%4 == 0,
		}
		got := rs.Eval(s, dir)

		// Reference: linear scan.
		for i := range rules {
			if rules[i].Matches(s, dir) {
				return got.Index == i+1 && got.Action == rules[i].Action && got.Traversed == i+1
			}
		}
		return got.Index == 0 && got.Action == Deny && got.Traversed == len(rules)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
