package fw

import (
	"fmt"
	"strings"
)

// ConnState is the connection-tracking classification a stateful filter
// attaches to a packet before rule evaluation: the netfilter ctstate
// analog. The zero value StateNone means conntrack was not consulted —
// the stateless evaluation path — and is deliberately not a matchable
// state: a rule with state matchers never fires on a stateless walk.
type ConnState int

// Connection states, in DSL/rendering order.
const (
	// StateNone marks a stateless evaluation: no conntrack lookup
	// happened. Rules carrying state matchers do not match.
	StateNone ConnState = iota
	// StateNew marks the first packet of a would-be connection (a TCP
	// SYN with no entry, or the first UDP/ICMP packet of a pair).
	StateNew
	// StateEstablished marks packets belonging to a tracked connection
	// that has seen traffic in a valid sequence (TCP past the entry
	// creation, UDP after a reply).
	StateEstablished
	// StateRelated marks packets associated with, but not part of, a
	// tracked connection — ICMP errors referring to an active flow.
	StateRelated
	// StateInvalid marks packets that contradict the tracked state: TCP
	// segments with no entry and no SYN, or segments for a closed entry.
	StateInvalid
	// NumConnStates is the sentinel for exhaustive-switch checks.
	NumConnStates
)

var connStateNames = [...]string{
	StateNone:        "none",
	StateNew:         "new",
	StateEstablished: "established",
	StateRelated:     "related",
	StateInvalid:     "invalid",
}

// String returns the DSL token for the state.
func (c ConnState) String() string {
	if c >= 0 && int(c) < len(connStateNames) {
		return connStateNames[c]
	}
	return fmt.Sprintf("connstate(%d)", int(c))
}

// StateMask is a set of connection states a rule matches, one bit per
// ConnState. The zero mask marks a stateless rule, which matches under
// any state (including StateNone).
type StateMask uint8

// MaskOf builds a mask from states.
func MaskOf(states ...ConnState) StateMask {
	var m StateMask
	for _, s := range states {
		m |= 1 << uint(s)
	}
	return m
}

// Has reports whether the mask includes state s.
func (m StateMask) Has(s ConnState) bool { return m&(1<<uint(s)) != 0 }

// String renders the mask as a comma-separated DSL clause body in enum
// order, e.g. "new,established".
func (m StateMask) String() string {
	var b strings.Builder
	for s := StateNone; s < NumConnStates; s++ {
		if !m.Has(s) {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.String())
	}
	return b.String()
}

// ParseStateMask parses a comma-separated list of state tokens
// ("new,established") into a mask. "none" is rejected: StateNone means
// conntrack was not consulted and is not a matchable state.
func ParseStateMask(s string) (StateMask, error) {
	var m StateMask
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		switch tok {
		case "new":
			m |= 1 << uint(StateNew)
		case "established":
			m |= 1 << uint(StateEstablished)
		case "related":
			m |= 1 << uint(StateRelated)
		case "invalid":
			m |= 1 << uint(StateInvalid)
		case "none":
			return 0, fmt.Errorf("fw: state %q is not matchable", tok)
		default:
			return 0, fmt.Errorf("fw: unknown connection state %q", tok)
		}
	}
	if m == 0 {
		return 0, fmt.Errorf("fw: empty state list")
	}
	return m, nil
}
