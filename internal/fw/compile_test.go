package fw

import (
	"math/rand"
	"sync"
	"testing"

	"barbican/internal/packet"
)

// randomRule draws one valid rule from a space designed to exercise
// every compiled dimension: all directions, wildcard and specific
// protocols, overlapping prefixes of assorted lengths (including
// non-octet boundaries), port ranges on either or both sides, and VPG
// rules mixed among plain ones.
func randomRule(r *rand.Rand) Rule {
	if r.Intn(6) == 0 {
		// VPG rule: allow-only, portless, proto-wildcard by validation.
		rule := Rule{
			Action:    Allow,
			Direction: []Direction{In, Out, Both}[r.Intn(3)],
			VPG:       []string{"eng", "oracle"}[r.Intn(2)],
		}
		if r.Intn(2) == 0 {
			rule.Src = packet.Prefix{Addr: packet.IP{10, byte(r.Intn(3)), byte(r.Intn(4)), 0}, Bits: 1 + r.Intn(32)}
		}
		if r.Intn(2) == 0 {
			rule.Dst = packet.Prefix{Addr: packet.IP{10, byte(r.Intn(3)), byte(r.Intn(4)), 0}, Bits: 1 + r.Intn(32)}
		}
		return rule
	}
	protos := []packet.Protocol{0, packet.ProtoTCP, packet.ProtoUDP, packet.ProtoICMP}
	rule := Rule{
		Action:    []Action{Allow, Deny}[r.Intn(2)],
		Direction: []Direction{In, Out, Both}[r.Intn(3)],
		Proto:     protos[r.Intn(len(protos))],
	}
	if r.Intn(3) > 0 {
		rule.Src = packet.Prefix{Addr: packet.IP{10, byte(r.Intn(3)), byte(r.Intn(4)), byte(r.Intn(8))}, Bits: 1 + r.Intn(32)}
	}
	if r.Intn(3) > 0 {
		rule.Dst = packet.Prefix{Addr: packet.IP{10, byte(r.Intn(3)), byte(r.Intn(4)), byte(r.Intn(8))}, Bits: 1 + r.Intn(32)}
	}
	if rule.Proto == packet.ProtoTCP || rule.Proto == packet.ProtoUDP {
		if r.Intn(2) == 0 {
			lo := uint16(r.Intn(120))
			rule.DstPorts = Ports(lo, lo+uint16(r.Intn(40)))
		}
		if r.Intn(3) == 0 {
			lo := uint16(r.Intn(120))
			rule.SrcPorts = Ports(lo, lo+uint16(r.Intn(40)))
		}
	}
	return rule
}

// randomSummary draws a packet summary from the same narrow space so
// matches at every depth actually happen.
func randomSummary(r *rand.Rand) packet.Summary {
	protos := []packet.Protocol{packet.ProtoTCP, packet.ProtoUDP, packet.ProtoICMP}
	proto := protos[r.Intn(len(protos))]
	s := packet.Summary{
		Proto:    proto,
		Src:      packet.IP{10, byte(r.Intn(3)), byte(r.Intn(4)), byte(r.Intn(8))},
		Dst:      packet.IP{10, byte(r.Intn(3)), byte(r.Intn(4)), byte(r.Intn(8))},
		HasPorts: proto != packet.ProtoICMP,
		IPLen:    40 + r.Intn(1400),
	}
	if s.HasPorts {
		s.SrcPort = uint16(r.Intn(180))
		s.DstPort = uint16(r.Intn(180))
	}
	if r.Intn(4) == 0 {
		s.Sealed = true
	}
	return s
}

// TestCompiledDifferentialProperty is the seeded differential test the
// compiled matcher's correctness rests on: across random rule sets and
// random packets, in both directions, Compile(rs).Eval must agree with
// the linear reference walk on every Verdict field — including the
// *Rule pointer — and apply identical counter updates. A replayed
// verdict recorded via RuleSet.Record (the flow-cache hit path) must
// keep the counters in lockstep too.
func TestCompiledDifferentialProperty(t *testing.T) {
	const (
		ruleSets         = 80
		packetsPerSet    = 120
		defaultCycle     = 2 // alternate default action across rule sets
		expectedPairsMin = 10_000
	)
	rng := rand.New(rand.NewSource(7))
	pairs := 0
	for rsIdx := 0; rsIdx < ruleSets; rsIdx++ {
		n := rng.Intn(130) // includes the empty rule set
		rules := make([]Rule, 0, n)
		for i := 0; i < n; i++ {
			rules = append(rules, randomRule(rng))
		}
		def := []Action{Allow, Deny}[rsIdx%defaultCycle]
		rs := MustRuleSet(def, rules...)
		ref := MustRuleSet(def, rules...) // independent counters for parity check
		c := Compile(rs)

		for k := 0; k < packetsPerSet; k++ {
			s := randomSummary(rng)
			for _, dir := range []Direction{In, Out} {
				want := rs.Eval(s, dir)
				got := c.Eval(s, dir)
				if got != want {
					t.Fatalf("rule set %d: compiled verdict %+v != linear %+v\npacket %v %v\nrules:\n%s",
						rsIdx, got, want, s, dir, rs)
				}
				// The cached path replays the verdict through Record.
				ref.Eval(s, dir)
				ref.Record(want)
				pairs++
			}
		}

		// rs saw every packet twice (linear + compiled); ref saw every
		// packet twice (linear + recorded replay). Identical counters
		// prove the compiled walk and the replay path update hit
		// accounting exactly like the reference walk.
		ev1, per1, def1 := rs.Stats()
		ev2, per2, def2 := ref.Stats()
		if ev1 != ev2 || def1 != def2 {
			t.Fatalf("rule set %d: counter mismatch: evals %d/%d defaultHits %d/%d", rsIdx, ev1, ev2, def1, def2)
		}
		for i := range per1 {
			if per1[i] != per2[i] {
				t.Fatalf("rule set %d: rule %d hit count %d (compiled) != %d (recorded)", rsIdx, i+1, per1[i], per2[i])
			}
		}
	}
	if pairs < expectedPairsMin {
		t.Fatalf("only %d differential pairs exercised, want >= %d", pairs, expectedPairsMin)
	}
}

// TestCompiledAdversarialCases pins the compiled matcher against the
// constructed shapes most likely to expose a decomposition bug:
// shadowed rules (first-match order), overlapping prefixes, VPG/plain
// interleaving with sealed traffic, the empty rule set,
// default-action fall-through, and exact interval boundaries.
func TestCompiledAdversarialCases(t *testing.T) {
	vpgIn := Rule{Name: "g-in", Action: Allow, Direction: In, VPG: "g",
		Src: packet.MustPrefix("10.1.0.0/16")}
	vpgOut := Rule{Name: "g-out", Action: Allow, Direction: Out, VPG: "g",
		Dst: packet.MustPrefix("10.1.0.0/16")}
	cases := []struct {
		name  string
		def   Action
		rules []Rule
	}{
		{name: "empty", def: Deny},
		{name: "empty-allow", def: Allow},
		{
			name: "shadowed",
			def:  Deny,
			rules: []Rule{
				{Name: "broad", Action: Allow, Direction: Both, Src: packet.MustPrefix("10.0.0.0/8")},
				{Name: "shadowed", Action: Deny, Direction: Both, Src: packet.MustPrefix("10.0.1.0/24")},
			},
		},
		{
			name: "overlapping-prefixes",
			def:  Allow,
			rules: []Rule{
				{Action: Deny, Direction: Both, Src: packet.MustPrefix("10.0.0.0/9")},
				{Action: Allow, Direction: Both, Src: packet.MustPrefix("10.0.0.0/10")},
				{Action: Deny, Direction: Both, Src: packet.MustPrefix("10.64.0.0/10")},
				{Action: Allow, Direction: In, Dst: packet.MustPrefix("10.0.0.128/25")},
			},
		},
		{
			name: "vpg-plain-mix",
			def:  Deny,
			rules: []Rule{
				{Name: "web", Action: Allow, Direction: In, Proto: packet.ProtoTCP,
					DstPorts: Port(80)},
				vpgIn, vpgOut,
				{Name: "tail", Action: Allow, Direction: Both},
			},
		},
		{
			name: "port-boundaries",
			def:  Deny,
			rules: []Rule{
				{Action: Allow, Direction: Both, Proto: packet.ProtoTCP, DstPorts: Ports(80, 90)},
				{Action: Deny, Direction: Both, Proto: packet.ProtoTCP, DstPorts: Ports(90, 100)},
				{Action: Allow, Direction: Both, Proto: packet.ProtoUDP, SrcPorts: Ports(0, 10)},
			},
		},
		{
			name: "default-fallthrough",
			def:  Allow,
			rules: []Rule{
				{Action: Deny, Direction: Both, Src: packet.MustPrefix("192.168.0.0/16")},
				{Action: Deny, Direction: Both, Proto: packet.ProtoICMP},
			},
		},
	}
	// Boundary-heavy probe set shared by all cases.
	var probes []packet.Summary
	for _, ip := range []packet.IP{
		{10, 0, 0, 0}, {10, 0, 0, 255}, {10, 0, 1, 0}, {10, 0, 1, 255},
		{10, 63, 255, 255}, {10, 64, 0, 0}, {10, 127, 255, 255}, {10, 128, 0, 0},
		{10, 0, 0, 127}, {10, 0, 0, 128}, {10, 1, 2, 3},
		{192, 168, 0, 1}, {192, 167, 255, 255}, {203, 0, 113, 1},
	} {
		for _, port := range []uint16{0, 10, 11, 79, 80, 90, 91, 100, 101, 65535} {
			probes = append(probes, packet.Summary{
				Proto: packet.ProtoTCP, Src: ip, Dst: packet.IP{10, 0, 1, 7},
				SrcPort: port, DstPort: port, HasPorts: true, IPLen: 40,
			})
			probes = append(probes, packet.Summary{
				Proto: packet.ProtoUDP, Src: packet.IP{10, 1, 2, 3}, Dst: ip,
				SrcPort: port, DstPort: port, HasPorts: true, IPLen: 40,
			})
		}
		probes = append(probes,
			packet.Summary{Proto: packet.ProtoICMP, Src: ip, Dst: packet.IP{10, 0, 0, 1}, IPLen: 84},
			packet.Summary{Proto: packet.ProtoVPGEncap, Src: ip, Dst: packet.IP{10, 1, 0, 9}, Sealed: true, IPLen: 120},
			packet.Summary{Proto: packet.ProtoTCP, Src: packet.IP{10, 1, 0, 9}, Dst: ip, SrcPort: 443, DstPort: 443, HasPorts: true, IPLen: 40, Sealed: true},
		)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rs := MustRuleSet(tc.def, tc.rules...)
			c := Compile(rs)
			for _, s := range probes {
				for _, dir := range []Direction{In, Out} {
					want := rs.Eval(s, dir)
					got := c.Eval(s, dir)
					if got != want {
						t.Fatalf("compiled %+v != linear %+v for %v %v", got, want, s, dir)
					}
				}
			}
		})
	}
}

// TestCompiledBothDirectionFallback: the compiled class masks exist for
// In and Out only; any other direction value must take the reference
// walk (and still agree with it).
func TestCompiledBothDirectionFallback(t *testing.T) {
	rs := MustRuleSet(Deny, AllowAllRule())
	c := Compile(rs)
	s := packet.Summary{Proto: packet.ProtoTCP, Src: packet.IP{10, 0, 0, 1}, Dst: packet.IP{10, 0, 0, 2}, HasPorts: true, IPLen: 40}
	want := rs.Eval(s, Both)
	got := c.Eval(s, Both)
	if got != want {
		t.Fatalf("compiled %+v != linear %+v for dir=Both", got, want)
	}
}

// TestRulesConcurrent guards the satellite fix for the Rules() data
// race: the view is built in NewRuleSet, so concurrent metric-gather
// and render readers never write shared state. Run under -race.
func TestRulesConcurrent(t *testing.T) {
	rs := MustRuleSet(Deny,
		AllowAllRule(), NonMatchingRule(1), NonMatchingRule(2), DenyAllRule())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				view := rs.Rules()
				if len(view) != 4 {
					t.Errorf("Rules() len = %d, want 4", len(view))
					return
				}
				_ = rs.MatchCount(1)
				_ = rs.DefaultHits()
			}
		}()
	}
	wg.Wait()
}
