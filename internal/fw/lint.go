package fw

import "barbican/internal/packet"

// This file extends the pairwise Analyze into a cross-rule linter. A
// rule's match space is modeled as an axis-aligned box over integer
// intervals (direction, protocol, source/destination address, port
// presence, source/destination port); coverage questions then become
// exact box-subtraction problems:
//
//   - conflict:   an earlier rule with the opposite action overlaps this
//     one without either containing the other, so which action wins
//     depends on rule order in a way the partial overlap hides.
//   - redundant:  the union of earlier same-action rules covers this
//     rule entirely; it never fires and removing it is semantics-free.
//   - unreachable: the union of ALL earlier rules covers this rule; it
//     never fires, but because the covering rules mix actions, removal
//     needs thought (the rule documents intent the earlier rules already
//     decide).
//
// Boxes are exact on the coordinates a real packet can have; coordinate
// combinations no packet exhibits (an ICMP packet with ports) cannot be
// produced by validated rules, so subtraction never proves coverage
// through impossible space. VPG rules match sealed traffic on addresses
// only and are modeled as a separate class; VPG-versus-plain pairs are
// skipped conservatively (they match disjoint traffic inbound).

// Severity ranks a finding for exit-code and display purposes.
type Severity int

// Severity levels, ascending.
const (
	SeverityInfo Severity = iota + 1
	SeverityWarning
	SeverityError
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	default:
		return "severity(?)"
	}
}

// Severity maps a finding kind to its severity: order-dependence bugs
// (conflict, shadowed, unreachable) are errors, removable redundancy is
// a warning, and depth notes are informational.
func (k FindingKind) Severity() Severity {
	switch k {
	case FindingConflict, FindingShadowed, FindingUnreachable:
		return SeverityError
	case FindingRedundant:
		return SeverityWarning
	case FindingDepth:
		return SeverityInfo
	default:
		return SeverityError
	}
}

// LintOptions configures RuleSet.Lint.
type LintOptions struct {
	// DepthWarn, when positive, emits an informational finding for every
	// reachable rule deeper than this position: per Fig. 2 each packet
	// that traverses to depth d costs BaseCost + d x PerRuleCost on the
	// card, so depth is bandwidth.
	DepthWarn int
}

// Lint runs the cross-rule analysis and returns findings ordered by
// rule position (and, within a rule, by the covering/conflicting rule's
// position). The pairwise Analyze remains available for the classic
// single-cover report; Lint subsumes it.
func (rs *RuleSet) Lint(opts LintOptions) []Finding {
	var findings []Finding
	boxes := make([]matchBox, len(rs.rules))
	for i := range rs.rules {
		boxes[i] = ruleBox(&rs.rules[i])
	}

	for i := 1; i <= len(rs.rules); i++ {
		ri := &rs.rules[i-1]
		reachable := true

		// Exact pairwise cover first: it names the single decisive rule,
		// which is the most actionable form of the finding.
		pairwise := 0
		for j := 1; j < i; j++ {
			if sameClass(ri, &rs.rules[j-1]) && covers(&rs.rules[j-1], ri) {
				pairwise = j
				break
			}
		}
		switch {
		case pairwise != 0:
			reachable = false
			kind := FindingRedundant
			if rs.rules[pairwise-1].Action != ri.Action {
				kind = FindingShadowed
			}
			findings = append(findings, Finding{Kind: kind, Rule: i, By: pairwise})
		default:
			// Union coverage: same-action earlier rules first (redundant),
			// then all earlier rules (unreachable).
			if covering, ok := unionCovers(boxes, rs.rules, i, true); ok {
				reachable = false
				findings = append(findings, Finding{Kind: FindingRedundant, Rule: i, Covering: covering})
			} else if covering, ok := unionCovers(boxes, rs.rules, i, false); ok {
				reachable = false
				findings = append(findings, Finding{Kind: FindingUnreachable, Rule: i, Covering: covering})
			}
		}

		if reachable {
			for j := 1; j < i; j++ {
				rj := &rs.rules[j-1]
				if rj.Action == ri.Action || !sameClass(ri, rj) {
					continue
				}
				if boxes[j-1].overlaps(boxes[i-1]) && !covers(rj, ri) && !covers(ri, rj) {
					findings = append(findings, Finding{Kind: FindingConflict, Rule: i, By: j})
				}
			}
			if opts.DepthWarn > 0 && i > opts.DepthWarn {
				findings = append(findings, Finding{Kind: FindingDepth, Rule: i, Depth: i})
			}
		}
	}
	return findings
}

// sameClass reports whether two rules compete for the same traffic
// class. VPG rules match sealed envelopes, plain rules cleartext; cross
// pairs are skipped conservatively. Connection-state masks are not an
// interval dimension (a mask can be non-contiguous), so rules with
// different masks are likewise treated as separate classes and skipped
// conservatively rather than risking findings proven through state
// space no packet occupies.
func sameClass(a, b *Rule) bool {
	return a.IsVPG() == b.IsVPG() && a.States == b.States
}

// matchBox is a rule's match space as a product of inclusive integer
// intervals. Dimension order: direction, protocol, source address,
// destination address, port presence, source port, destination port.
type matchBox [7][2]uint32

const boxDims = 7

func interval(lo, hi uint32) [2]uint32 { return [2]uint32{lo, hi} }

// ruleBox renders a validated rule's match space as a box. VPG rules
// match on direction and addresses only; their remaining dimensions are
// full so boxes of the two classes stay comparable (class separation is
// enforced by sameClass, not by the box).
func ruleBox(r *Rule) matchBox {
	var b matchBox
	switch r.Direction {
	case Both:
		b[0] = interval(uint32(In), uint32(Out))
	default:
		b[0] = interval(uint32(r.Direction), uint32(r.Direction))
	}
	b[1] = interval(0, 255)
	if !r.IsVPG() && r.Proto != 0 {
		b[1] = interval(uint32(r.Proto), uint32(r.Proto))
	}
	b[2] = prefixInterval(r.Src)
	b[3] = prefixInterval(r.Dst)
	b[4] = interval(0, 1)
	b[5] = interval(0, 65535)
	b[6] = interval(0, 65535)
	if !r.IsVPG() {
		if !r.SrcPorts.Any() || !r.DstPorts.Any() {
			// A ported rule only matches packets that carry ports.
			b[4] = interval(1, 1)
		}
		if !r.SrcPorts.Any() {
			b[5] = interval(uint32(r.SrcPorts.Lo), uint32(r.SrcPorts.Hi))
		}
		if !r.DstPorts.Any() {
			b[6] = interval(uint32(r.DstPorts.Lo), uint32(r.DstPorts.Hi))
		}
	}
	return b
}

// prefixInterval returns the [lo, hi] address range a prefix spans.
func prefixInterval(p packet.Prefix) [2]uint32 {
	if p.Bits <= 0 {
		return interval(0, ^uint32(0))
	}
	mask := ^uint32(0) << (32 - p.Bits)
	lo := p.Addr.Uint32() & mask
	return interval(lo, lo|^mask)
}

func (b matchBox) overlaps(o matchBox) bool {
	for d := 0; d < boxDims; d++ {
		if b[d][1] < o[d][0] || o[d][1] < b[d][0] {
			return false
		}
	}
	return true
}

func (b matchBox) contains(o matchBox) bool {
	for d := 0; d < boxDims; d++ {
		if b[d][0] > o[d][0] || b[d][1] < o[d][1] {
			return false
		}
	}
	return true
}

// subtract returns boxes covering b minus a, appended to out. The
// standard axis sweep peels at most two slabs per dimension; the pieces
// are disjoint and their union is exactly b \ a.
func (b matchBox) subtract(a matchBox, out []matchBox) []matchBox {
	if !b.overlaps(a) {
		return append(out, b)
	}
	rem := b
	for d := 0; d < boxDims; d++ {
		if rem[d][0] < a[d][0] {
			piece := rem
			piece[d] = interval(rem[d][0], a[d][0]-1)
			out = append(out, piece)
			rem[d][0] = a[d][0]
		}
		if rem[d][1] > a[d][1] {
			piece := rem
			piece[d] = interval(a[d][1]+1, rem[d][1])
			out = append(out, piece)
			rem[d][1] = a[d][1]
		}
	}
	// rem is now b's intersection with a: covered, dropped.
	return out
}

// lintWorklistCap bounds the box fragments tracked during a union-cover
// check. Fragment counts grow with rule-set complexity; past the cap
// the check gives up and conservatively reports "not covered".
const lintWorklistCap = 2048

// unionCovers reports whether the union of rules before i (1-based)
// covers rule i's entire match space. With sameActionOnly, only earlier
// rules sharing rule i's action count. On success it returns the
// 1-based positions of the earlier rules that consumed part of the
// space, in order.
func unionCovers(boxes []matchBox, rules []Rule, i int, sameActionOnly bool) ([]int, bool) {
	ri := &rules[i-1]
	work := []matchBox{boxes[i-1]}
	var covering []int
	for j := 1; j < i && len(work) > 0; j++ {
		rj := &rules[j-1]
		if !sameClass(ri, rj) || (sameActionOnly && rj.Action != ri.Action) {
			continue
		}
		next := make([]matchBox, 0, len(work))
		consumed := false
		for _, w := range work {
			before := len(next)
			next = w.subtract(boxes[j-1], next)
			if len(next)-before != 1 || next[before] != w {
				consumed = true
			}
		}
		if consumed {
			covering = append(covering, j)
		}
		work = next
		if len(work) > lintWorklistCap {
			return nil, false
		}
	}
	if len(work) > 0 {
		return nil, false
	}
	return covering, true
}
