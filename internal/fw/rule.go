// Package fw implements the stateless packet filter at the heart of the
// EFW and ADF: ordered rules with first-match semantics over the IPv4
// 5-tuple, plus the VPG rule form used by the ADF.
//
// The package deliberately models the paper's cost-relevant property: a
// packet's fate is decided by the first matching rule, so only the rules
// *up to and including* the "action rule" cost anything — rules after it
// are never consulted (paper §3).
package fw

import (
	"fmt"
	"strconv"
	"strings"

	"barbican/internal/packet"
)

// Action is a rule's disposition.
type Action int

// Rule actions.
const (
	Allow Action = iota + 1
	Deny
)

// String returns "allow" or "deny".
func (a Action) String() string {
	switch a {
	case Allow:
		return "allow"
	case Deny:
		return "deny"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Direction distinguishes packets entering the host from packets leaving it.
type Direction int

// Traffic directions, from the protected host's point of view.
const (
	In Direction = iota + 1
	Out
	Both
)

// String returns "in", "out", or "both".
func (d Direction) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	case Both:
		return "both"
	default:
		return fmt.Sprintf("direction(%d)", int(d))
	}
}

// PortRange matches transport ports in [Lo, Hi]. The zero value matches
// any port.
type PortRange struct {
	Lo, Hi uint16
}

// AnyPort matches all ports.
var AnyPort = PortRange{}

// Port returns a range matching exactly p.
func Port(p uint16) PortRange { return PortRange{Lo: p, Hi: p} }

// Ports returns the range [lo, hi].
func Ports(lo, hi uint16) PortRange { return PortRange{Lo: lo, Hi: hi} }

// Any reports whether the range matches all ports.
func (r PortRange) Any() bool { return r == PortRange{} }

// Contains reports whether p falls in the range.
func (r PortRange) Contains(p uint16) bool {
	if r.Any() {
		return true
	}
	return r.Lo <= p && p <= r.Hi
}

// String renders the range ("any", "80", or "6000-6063").
func (r PortRange) String() string {
	switch {
	case r.Any():
		return "any"
	case r.Lo == r.Hi:
		return fmt.Sprint(r.Lo)
	default:
		return fmt.Sprintf("%d-%d", r.Lo, r.Hi)
	}
}

// Rule is one entry of a rule-set. Zero-valued fields match anything:
// the zero Prefix (bits=0) matches all addresses, the zero PortRange all
// ports, and Proto == 0 all protocols.
type Rule struct {
	// Name is an optional label for logs and policy files.
	Name string
	// Action is taken when the rule matches.
	Action Action
	// Direction limits which traffic directions the rule applies to.
	Direction Direction
	// Proto restricts the IP protocol (0 = any).
	Proto packet.Protocol
	// Src and Dst restrict the addresses (zero prefix = any).
	Src, Dst packet.Prefix
	// SrcPorts and DstPorts restrict transport ports; they are only
	// meaningful for TCP and UDP and must be empty otherwise.
	SrcPorts, DstPorts PortRange
	// VPG names the virtual private group for VPG rules. A VPG rule
	// matches sealed traffic inbound and seals matching cleartext
	// traffic outbound; its Action must be Allow.
	VPG string
	// States restricts the rule to packets whose conntrack
	// classification is in the mask (0 = stateless rule, matches under
	// any state). A rule with a non-zero mask never matches on a
	// stateless evaluation (StateNone).
	States StateMask
}

// IsStateful reports whether the rule carries state matchers.
func (r *Rule) IsStateful() bool { return r.States != 0 }

// IsVPG reports whether the rule is a VPG rule.
func (r *Rule) IsVPG() bool { return r.VPG != "" }

// Matches reports whether the rule applies to a packet summary traveling
// in direction dir on a stateless evaluation. Rules with state matchers
// never match here; use MatchesState when conntrack has classified the
// packet.
func (r *Rule) Matches(s packet.Summary, dir Direction) bool {
	return r.MatchesState(s, dir, StateNone)
}

// MatchesState reports whether the rule applies to a packet summary
// traveling in direction dir whose conntrack classification is cs.
// Stateless rules (empty mask) match under any classification.
func (r *Rule) MatchesState(s packet.Summary, dir Direction, cs ConnState) bool {
	if r.States != 0 && !r.States.Has(cs) {
		return false
	}
	if r.Direction != Both && r.Direction != dir {
		return false
	}
	if r.IsVPG() {
		// Inbound VPG traffic arrives sealed; outbound traffic to be
		// sealed is cleartext. Port information of sealed packets is
		// encrypted, so VPG rules match on addresses only.
		if dir == In && !s.Sealed {
			return false
		}
		if dir == Out && s.Sealed {
			return false
		}
	} else if s.Sealed {
		// Plain rules never match sealed envelopes.
		return false
	}
	if r.Proto != 0 && !r.IsVPG() && s.Proto != r.Proto {
		return false
	}
	if !r.Src.Contains(s.Src) || !r.Dst.Contains(s.Dst) {
		return false
	}
	if r.IsVPG() {
		return true
	}
	if !r.SrcPorts.Any() || !r.DstPorts.Any() {
		if !s.HasPorts {
			return false
		}
		if !r.SrcPorts.Contains(s.SrcPort) || !r.DstPorts.Contains(s.DstPort) {
			return false
		}
	}
	return true
}

// Validate checks internal consistency.
func (r *Rule) Validate() error {
	if r.Action != Allow && r.Action != Deny {
		return fmt.Errorf("fw: rule %q: invalid action %d", r.Name, r.Action)
	}
	if r.Direction != In && r.Direction != Out && r.Direction != Both {
		return fmt.Errorf("fw: rule %q: invalid direction %d", r.Name, r.Direction)
	}
	if !r.SrcPorts.Any() && r.SrcPorts.Lo > r.SrcPorts.Hi {
		return fmt.Errorf("fw: rule %q: inverted source port range", r.Name)
	}
	if !r.DstPorts.Any() && r.DstPorts.Lo > r.DstPorts.Hi {
		return fmt.Errorf("fw: rule %q: inverted destination port range", r.Name)
	}
	if (!r.SrcPorts.Any() || !r.DstPorts.Any()) &&
		r.Proto != packet.ProtoTCP && r.Proto != packet.ProtoUDP {
		return fmt.Errorf("fw: rule %q: port match requires tcp or udp", r.Name)
	}
	if r.Src.Bits < 0 || r.Src.Bits > 32 || r.Dst.Bits < 0 || r.Dst.Bits > 32 {
		return fmt.Errorf("fw: rule %q: invalid prefix length", r.Name)
	}
	if r.IsVPG() {
		if r.Action != Allow {
			return fmt.Errorf("fw: rule %q: VPG rules must allow", r.Name)
		}
		if !r.SrcPorts.Any() || !r.DstPorts.Any() {
			return fmt.Errorf("fw: rule %q: VPG rules cannot match ports", r.Name)
		}
		if r.IsStateful() {
			// Sealed envelopes hide the transport header, so the card
			// cannot track connection state for them.
			return fmt.Errorf("fw: rule %q: VPG rules cannot match connection state", r.Name)
		}
	}
	if r.States.Has(StateNone) {
		return fmt.Errorf("fw: rule %q: state \"none\" is not matchable", r.Name)
	}
	if r.States >= 1<<uint(NumConnStates) {
		return fmt.Errorf("fw: rule %q: unknown state bits in mask %#x", r.Name, uint8(r.States))
	}
	return nil
}

// String renders the rule in the policy DSL syntax.
func (r *Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Action.String())
	b.WriteByte(' ')
	b.WriteString(r.Direction.String())
	if r.IsVPG() {
		fmt.Fprintf(&b, " vpg %s", r.VPG)
	} else if r.Proto != 0 {
		fmt.Fprintf(&b, " proto %s", protoToken(r.Proto))
	}
	fmt.Fprintf(&b, " from %v", prefixOrAny(r.Src))
	if !r.SrcPorts.Any() {
		fmt.Fprintf(&b, " port %v", r.SrcPorts)
	}
	fmt.Fprintf(&b, " to %v", prefixOrAny(r.Dst))
	if !r.DstPorts.Any() {
		fmt.Fprintf(&b, " port %v", r.DstPorts)
	}
	if r.IsStateful() {
		fmt.Fprintf(&b, " state %v", r.States)
	}
	if r.Name != "" {
		fmt.Fprintf(&b, " # %s", r.Name)
	}
	return b.String()
}

func prefixOrAny(p packet.Prefix) string {
	if p.Bits == 0 {
		return "any"
	}
	return p.String()
}

// protoToken renders a protocol the policy language can parse back:
// well-known names, numbers otherwise.
func protoToken(p packet.Protocol) string {
	switch p {
	case packet.ProtoTCP, packet.ProtoUDP, packet.ProtoICMP:
		return p.String()
	default:
		return strconv.Itoa(int(p))
	}
}
