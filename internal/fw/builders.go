package fw

import "barbican/internal/packet"

// AllowAllRule returns the paper's simplest "default allow all" rule.
func AllowAllRule() Rule {
	return Rule{Name: "allow-all", Action: Allow, Direction: Both}
}

// DenyAllRule returns a rule denying all traffic.
func DenyAllRule() Rule {
	return Rule{Name: "deny-all", Action: Deny, Direction: Both}
}

// NonMatchingRule returns a rule that can never match live traffic on the
// simulated testbed: it is scoped to the TEST-NET-3 documentation prefix.
// The experiments use stacks of these as the padding above the action
// rule when sweeping rule-set depth.
func NonMatchingRule(i int) Rule {
	return Rule{
		Name:      "pad",
		Action:    Deny,
		Direction: Both,
		Proto:     packet.ProtoTCP,
		Src:       packet.Prefix{Addr: packet.IP{203, 0, 113, byte(i)}, Bits: 32},
		Dst:       packet.Prefix{Addr: packet.IP{203, 0, 113, 254}, Bits: 32},
		SrcPorts:  Port(1),
		DstPorts:  Port(1),
	}
}

// DepthRuleSet builds the paper's experimental rule-set shape: depth-1
// non-matching rules followed by the action rule at position depth, with
// the given default action. depth must be >= 1.
func DepthRuleSet(depth int, action Rule, def Action) (*RuleSet, error) {
	rules := make([]Rule, 0, depth)
	for i := 1; i < depth; i++ {
		rules = append(rules, NonMatchingRule(i))
	}
	rules = append(rules, action)
	return NewRuleSet(def, rules...)
}

// AllowBetween returns a bidirectional allow rule for all traffic between
// two hosts.
func AllowBetween(a, b packet.IP) []Rule {
	return []Rule{
		{
			Name: "allow-a-to-b", Action: Allow, Direction: Both,
			Src: packet.Prefix{Addr: a, Bits: 32},
			Dst: packet.Prefix{Addr: b, Bits: 32},
		},
		{
			Name: "allow-b-to-a", Action: Allow, Direction: Both,
			Src: packet.Prefix{Addr: b, Bits: 32},
			Dst: packet.Prefix{Addr: a, Bits: 32},
		},
	}
}

// VPGRulePair returns the paper's "pair of rules that fully define one
// VPG": an inbound rule accepting sealed traffic from the group's address
// space and an outbound rule sealing cleartext traffic into the group.
func VPGRulePair(group string, local packet.IP, remote packet.Prefix) []Rule {
	return []Rule{
		{
			Name: group + "-in", Action: Allow, Direction: In, VPG: group,
			Src: remote, Dst: packet.Prefix{Addr: local, Bits: 32},
		},
		{
			Name: group + "-out", Action: Allow, Direction: Out, VPG: group,
			Src: packet.Prefix{Addr: local, Bits: 32}, Dst: remote,
		},
	}
}
