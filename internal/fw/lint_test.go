package fw

import (
	"strings"
	"testing"

	"barbican/internal/packet"
)

func TestLintConflictPartialPortOverlap(t *testing.T) {
	rs := MustRuleSet(Deny,
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP, DstPorts: Ports(80, 100)},
		Rule{Action: Deny, Direction: In, Proto: packet.ProtoTCP, DstPorts: Ports(90, 120)},
	)
	findings := rs.Lint(LintOptions{})
	if len(findings) != 1 {
		t.Fatalf("findings = %v", findings)
	}
	f := findings[0]
	if f.Kind != FindingConflict || f.Rule != 2 || f.By != 1 {
		t.Errorf("finding = %+v", f)
	}
	if f.Kind.Severity() != SeverityError {
		t.Errorf("conflict severity = %v, want error", f.Kind.Severity())
	}
}

func TestLintNestedOppositeActionsIsNotAConflict(t *testing.T) {
	// The classic exception-then-general pattern: a specific allow ahead
	// of a broad deny is intentional ordering, not a conflict.
	rs := MustRuleSet(Deny,
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP, DstPorts: Port(80)},
		Rule{Action: Deny, Direction: In, Proto: packet.ProtoTCP},
	)
	if findings := rs.Lint(LintOptions{}); len(findings) != 0 {
		t.Errorf("findings = %v, want none", findings)
	}
}

func TestLintPrefixCoverAtSlashZero(t *testing.T) {
	// A zero-bits (match-anything) source covers any /32.
	rs := MustRuleSet(Deny,
		Rule{Action: Deny, Direction: In},
		Rule{Action: Allow, Direction: In, Src: packet.MustPrefix("1.2.3.4/32")},
	)
	findings := rs.Lint(LintOptions{})
	if len(findings) != 1 || findings[0].Kind != FindingShadowed ||
		findings[0].Rule != 2 || findings[0].By != 1 {
		t.Fatalf("findings = %v", findings)
	}
}

func TestLintPrefixCoverAtSlash32(t *testing.T) {
	// Equal /32s: the later opposite-action twin is shadowed, not a
	// partial-overlap conflict.
	rs := MustRuleSet(Deny,
		Rule{Action: Allow, Direction: In, Src: packet.MustPrefix("1.2.3.4/32")},
		Rule{Action: Deny, Direction: In, Src: packet.MustPrefix("1.2.3.4/32")},
	)
	findings := rs.Lint(LintOptions{})
	if len(findings) != 1 || findings[0].Kind != FindingShadowed {
		t.Fatalf("findings = %v", findings)
	}
}

func TestLintUnionRedundancyAcrossPrefixHalves(t *testing.T) {
	// Neither half covers the whole address space, but their union does:
	// the pairwise Analyze misses this, Lint must not.
	rs := MustRuleSet(Deny,
		Rule{Action: Allow, Direction: In, Src: packet.MustPrefix("0.0.0.0/1")},
		Rule{Action: Allow, Direction: In, Src: packet.MustPrefix("128.0.0.0/1")},
		Rule{Action: Allow, Direction: In},
	)
	if pairwise := rs.Analyze(); len(pairwise) != 0 {
		t.Fatalf("pairwise Analyze = %v, want none (it is blind to unions)", pairwise)
	}
	findings := rs.Lint(LintOptions{})
	if len(findings) != 1 {
		t.Fatalf("findings = %v", findings)
	}
	f := findings[0]
	if f.Kind != FindingRedundant || f.Rule != 3 {
		t.Errorf("finding = %+v", f)
	}
	if len(f.Covering) != 2 || f.Covering[0] != 1 || f.Covering[1] != 2 {
		t.Errorf("covering = %v, want [1 2]", f.Covering)
	}
	if f.Kind.Severity() != SeverityWarning {
		t.Errorf("redundant severity = %v, want warning", f.Kind.Severity())
	}
}

func TestLintUnionRedundancyAcrossPortRanges(t *testing.T) {
	rs := MustRuleSet(Deny,
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP, DstPorts: Ports(0, 1000)},
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP, DstPorts: Ports(1001, 65535)},
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP, DstPorts: Ports(5, 10)},
	)
	findings := rs.Lint(LintOptions{})
	if len(findings) != 1 || findings[0].Kind != FindingRedundant || findings[0].Rule != 3 {
		t.Fatalf("findings = %v", findings)
	}
}

func TestLintUnreachableUnderMixedActions(t *testing.T) {
	rs := MustRuleSet(Deny,
		Rule{Action: Deny, Direction: In, Proto: packet.ProtoUDP, Src: packet.MustPrefix("10.0.0.0/9")},
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoUDP, Src: packet.MustPrefix("10.128.0.0/9")},
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoUDP, Src: packet.MustPrefix("10.0.0.0/8")},
	)
	findings := rs.Lint(LintOptions{})
	if len(findings) != 1 {
		t.Fatalf("findings = %v", findings)
	}
	f := findings[0]
	if f.Kind != FindingUnreachable || f.Rule != 3 {
		t.Errorf("finding = %+v", f)
	}
	if len(f.Covering) != 2 || f.Covering[0] != 1 || f.Covering[1] != 2 {
		t.Errorf("covering = %v, want [1 2]", f.Covering)
	}
	if !strings.Contains(f.String(), "union of rules 1, 2") {
		t.Errorf("String() = %q", f.String())
	}
}

func TestLintDepthWarnings(t *testing.T) {
	rs := MustRuleSet(Deny,
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP, DstPorts: Port(1)},
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP, DstPorts: Port(2)},
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP, DstPorts: Port(3)},
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP, DstPorts: Port(4)},
	)
	findings := rs.Lint(LintOptions{DepthWarn: 2})
	if len(findings) != 2 {
		t.Fatalf("findings = %v", findings)
	}
	for i, f := range findings {
		if f.Kind != FindingDepth || f.Rule != i+3 || f.Depth != i+3 {
			t.Errorf("finding = %+v", f)
		}
		if f.Kind.Severity() != SeverityInfo {
			t.Errorf("depth severity = %v, want info", f.Kind.Severity())
		}
	}
}

func TestLintSkipsVPGVersusPlainPairs(t *testing.T) {
	// VPG rules match sealed envelopes, plain rules cleartext — the
	// traffic classes are disjoint, so no cross-class findings.
	rs := MustRuleSet(Deny,
		Rule{Action: Allow, Direction: Both, VPG: "eng", Src: packet.MustPrefix("10.0.0.0/8")},
		Rule{Action: Deny, Direction: In, Src: packet.MustPrefix("10.0.0.0/16")},
	)
	if findings := rs.Lint(LintOptions{}); len(findings) != 0 {
		t.Errorf("findings = %v, want none", findings)
	}
}

// TestLintGoldenOrdering pins the rendered findings of a policy that
// triggers every cross-rule kind, in the order Lint emits them.
func TestLintGoldenOrdering(t *testing.T) {
	rs := MustRuleSet(Deny,
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP, DstPorts: Ports(80, 100)},
		Rule{Action: Deny, Direction: In, Proto: packet.ProtoTCP, DstPorts: Ports(90, 120)},
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP, DstPorts: Port(95)},
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoUDP, Src: packet.MustPrefix("10.0.0.0/9")},
		Rule{Action: Deny, Direction: In, Proto: packet.ProtoUDP, Src: packet.MustPrefix("10.128.0.0/9")},
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoUDP, Src: packet.MustPrefix("10.0.0.0/8")},
	)
	want := []string{
		"rule 2 conflicts with rule 1 (partial overlap, opposite actions; rule 1 wins the overlap)",
		"rule 3 is redundant (covered by rule 1)",
		"rule 6 is unreachable (covered by the union of rules 4, 5)",
	}
	findings := rs.Lint(LintOptions{})
	var got []string
	for _, f := range findings {
		got = append(got, f.String())
	}
	if len(got) != len(want) {
		t.Fatalf("findings:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLintCleanPolicyHasNoFindings(t *testing.T) {
	rs := MustRuleSet(Deny,
		Rule{Action: Allow, Direction: In, Proto: packet.ProtoTCP, DstPorts: Port(5001)},
		Rule{Action: Allow, Direction: Out, Proto: packet.ProtoTCP, SrcPorts: Port(5001)},
		Rule{Action: Deny, Direction: In, Proto: packet.ProtoUDP},
	)
	if findings := rs.Lint(LintOptions{}); len(findings) != 0 {
		t.Errorf("findings = %v, want none", findings)
	}
}
