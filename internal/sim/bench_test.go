package sim

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndRun(b *testing.B) {
	k := NewKernel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.After(time.Microsecond, func() {})
		k.Step()
	}
}

func BenchmarkEventChurn(b *testing.B) {
	// A self-rescheduling event chain, the simulator's hot pattern.
	k := NewKernel()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	k.After(time.Microsecond, tick)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
