package sim

import "time"

// Ticker fires a callback at a fixed virtual-time interval until stopped.
type Ticker struct {
	kernel   *Kernel
	interval time.Duration
	fn       func()
	next     *Event
	stopped  bool
	fires    uint64
}

// NewTicker schedules fn to run every interval, starting one interval from
// now. interval must be positive.
func (k *Kernel) NewTicker(interval time.Duration, fn func()) *Ticker {
	t := &Ticker{kernel: k, interval: interval, fn: fn}
	if interval <= 0 {
		t.stopped = true
		return t
	}
	t.next = k.After(interval, t.tick)
	return t
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fires++
	t.fn()
	if !t.stopped {
		t.next = t.kernel.After(t.interval, t.tick)
	}
}

// Stop cancels future ticks. It is safe to call multiple times.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.next.Cancel()
}

// Fires returns the number of times the ticker has fired.
func (t *Ticker) Fires() uint64 { return t.fires }
