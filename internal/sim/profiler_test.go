package sim

import (
	"testing"
	"time"
)

// recordingProfiler implements StepProfiler and records every call,
// so tests can assert exactly which events the kernel offered and ran.
type recordingProfiler struct {
	every  int
	seen   int
	begins []uintptr
	ats    []time.Duration
	ends   int
}

func (p *recordingProfiler) Take() bool {
	p.seen++
	return p.seen%p.every == 0
}

func (p *recordingProfiler) BeginStep(pc uintptr, at time.Duration) {
	p.begins = append(p.begins, pc)
	p.ats = append(p.ats, at)
}

func (p *recordingProfiler) EndStep() { p.ends++ }

func TestStepProfilerSampling(t *testing.T) {
	k := NewKernel()
	p := &recordingProfiler{every: 3}
	k.SetStepProfiler(p)

	ran := 0
	for i := 0; i < 10; i++ {
		k.At(time.Duration(i)*time.Millisecond, func() { ran++ })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 10 {
		t.Fatalf("ran %d events, want 10", ran)
	}
	// Take is offered EVERY executed event; 1-in-3 are bracketed.
	if p.seen != 10 {
		t.Fatalf("Take called %d times, want 10", p.seen)
	}
	if len(p.begins) != 3 || p.ends != 3 {
		t.Fatalf("begins=%d ends=%d, want 3 each", len(p.begins), p.ends)
	}
	// Sampled steps carry the virtual clock of the event, not wall time.
	want := []time.Duration{2 * time.Millisecond, 5 * time.Millisecond, 8 * time.Millisecond}
	for i, at := range p.ats {
		if at != want[i] {
			t.Errorf("sampled at[%d] = %v, want %v", i, at, want[i])
		}
	}
}

func TestStepProfilerPooledEvents(t *testing.T) {
	k := NewKernel()
	p := &recordingProfiler{every: 1}
	k.SetStepProfiler(p)

	// AtCall events are pooled; they must be offered to the profiler
	// with the callback's pc, same as plain At events.
	got := 0
	fn := func(arg any) { got += arg.(int) }
	k.AtCall(time.Millisecond, fn, 2)
	k.AtCall(2*time.Millisecond, fn, 3)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("pooled callbacks ran wrong: got %d", got)
	}
	if len(p.begins) != 2 || p.ends != 2 {
		t.Fatalf("begins=%d ends=%d, want 2 each", len(p.begins), p.ends)
	}
	if p.begins[0] == 0 || p.begins[0] != p.begins[1] {
		t.Errorf("same handler func should sample the same pc: %v", p.begins)
	}
}

func TestStepProfilerDetach(t *testing.T) {
	k := NewKernel()
	p := &recordingProfiler{every: 1}
	k.SetStepProfiler(p)
	k.At(time.Millisecond, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if p.seen != 1 {
		t.Fatalf("attached profiler saw %d events", p.seen)
	}

	// nil detaches; subsequent events run unobserved.
	k.SetStepProfiler(nil)
	k.At(2*time.Millisecond, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if p.seen != 1 || len(p.begins) != 1 {
		t.Fatalf("detached profiler still called: seen=%d begins=%d", p.seen, len(p.begins))
	}
}

func TestStepProfilerDeterministicPCs(t *testing.T) {
	// The same scenario must offer the same sampled handler sequence on
	// every run — the structural half of the determinism contract.
	run := func() []uintptr {
		k := NewKernel()
		p := &recordingProfiler{every: 2}
		k.SetStepProfiler(p)
		tick := func(any) {}
		tock := func() {}
		for i := 0; i < 8; i++ {
			k.AtCall(time.Duration(i)*time.Millisecond, tick, nil)
			k.At(time.Duration(i)*time.Millisecond+time.Microsecond, tock)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return p.begins
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("sampled counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampled pc sequence diverged at %d", i)
		}
	}
}
