package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestKernelRunsEventsInTimestampOrder(t *testing.T) {
	k := NewKernel()
	var got []time.Duration
	for _, d := range []time.Duration{5, 1, 3, 2, 4} {
		d := d * time.Millisecond
		k.At(d, func() { got = append(got, d) })
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Errorf("executed %d events, want 5", len(got))
	}
	if k.Now() != 5*time.Millisecond {
		t.Errorf("Now() = %v, want 5ms", k.Now())
	}
}

func TestKernelTieBreaksBySchedulingOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(time.Second, func() { got = append(got, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break order got %v", got)
		}
	}
}

func TestKernelAfterSchedulesRelative(t *testing.T) {
	k := NewKernel()
	var at time.Duration
	k.At(time.Second, func() {
		k.After(500*time.Millisecond, func() { at = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 1500*time.Millisecond {
		t.Errorf("nested After fired at %v, want 1.5s", at)
	}
}

func TestKernelPastSchedulingClamps(t *testing.T) {
	k := NewKernel()
	fired := false
	k.At(time.Second, func() {
		k.At(0, func() { fired = true })
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Error("event scheduled in the past never fired")
	}
	if k.Now() != time.Second {
		t.Errorf("clock moved backwards: %v", k.Now())
	}
}

func TestEventCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.At(time.Second, func() { fired = true })
	if !e.Pending() {
		t.Fatal("event should be pending")
	}
	if !e.Cancel() {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Error("canceled event fired")
	}
}

func TestCancelOneOfManyAtSameInstant(t *testing.T) {
	k := NewKernel()
	var got []int
	var events []*Event
	for i := 0; i < 5; i++ {
		i := i
		events = append(events, k.At(time.Second, func() { got = append(got, i) }))
	}
	events[2].Cancel()
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		k.At(time.Duration(i)*time.Second, func() { count++ })
	}
	if err := k.RunUntil(5 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if count != 5 {
		t.Errorf("executed %d events, want 5", count)
	}
	if k.Now() != 5*time.Second {
		t.Errorf("Now() = %v, want 5s", k.Now())
	}
	if err := k.RunFor(3 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if count != 8 {
		t.Errorf("executed %d events, want 8", count)
	}
}

func TestRunUntilWithEmptyQueueAdvancesClock(t *testing.T) {
	k := NewKernel()
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if k.Now() != time.Minute {
		t.Errorf("Now() = %v, want 1m", k.Now())
	}
}

func TestHaltStopsRun(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		i := i
		k.At(time.Duration(i)*time.Second, func() {
			count++
			if i == 3 {
				k.Halt()
			}
		})
	}
	if err := k.Run(); err != ErrHalted {
		t.Fatalf("Run = %v, want ErrHalted", err)
	}
	if count != 3 {
		t.Errorf("executed %d events before halt, want 3", count)
	}
}

func TestKernelDeterministicWithSeed(t *testing.T) {
	run := func(seed int64) []int64 {
		k := NewKernel(WithSeed(seed))
		var vals []int64
		for i := 0; i < 5; i++ {
			k.After(time.Duration(i)*time.Second, func() {
				vals = append(vals, k.Rand().Int63())
			})
		}
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return vals
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different streams: %v vs %v", a, b)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestTickerFiresAtInterval(t *testing.T) {
	k := NewKernel()
	var times []time.Duration
	tk := k.NewTicker(100*time.Millisecond, func() {
		times = append(times, k.Now())
	})
	if err := k.RunUntil(time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	tk.Stop()
	if err := k.RunUntil(2 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(times) != 10 {
		t.Fatalf("ticker fired %d times, want 10: %v", len(times), times)
	}
	for i, tm := range times {
		want := time.Duration(i+1) * 100 * time.Millisecond
		if tm != want {
			t.Errorf("tick %d at %v, want %v", i, tm, want)
		}
	}
	if tk.Fires() != 10 {
		t.Errorf("Fires() = %d, want 10", tk.Fires())
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	k := NewKernel()
	var tk *Ticker
	count := 0
	tk = k.NewTicker(time.Second, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 3 {
		t.Errorf("ticker fired %d times after in-callback Stop, want 3", count)
	}
}

func TestTickerNonPositiveIntervalNeverFires(t *testing.T) {
	k := NewKernel()
	tk := k.NewTicker(0, func() { t.Error("ticker with zero interval fired") })
	if err := k.RunUntil(time.Hour); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	tk.Stop()
}

// Property: for any set of scheduling offsets, events execute in
// non-decreasing timestamp order and the executed count matches.
func TestEventOrderingProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		k := NewKernel()
		var fired []time.Duration
		for _, off := range offsets {
			d := time.Duration(off) * time.Microsecond
			k.At(d, func() { fired = append(fired, k.Now()) })
		}
		if err := k.Run(); err != nil {
			return false
		}
		if len(fired) != len(offsets) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestKernelCounters(t *testing.T) {
	k := NewKernel()
	if k.Len() != 0 || k.Executed() != 0 {
		t.Fatal("fresh kernel not empty")
	}
	k.At(time.Second, func() {})
	k.At(2*time.Second, func() {})
	if k.Len() != 2 {
		t.Errorf("Len = %d, want 2", k.Len())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Executed() != 2 || k.Len() != 0 {
		t.Errorf("Executed=%d Len=%d after run", k.Executed(), k.Len())
	}
}

func TestEventAtAccessor(t *testing.T) {
	k := NewKernel()
	e := k.At(3*time.Second, func() {})
	if e.At() != 3*time.Second {
		t.Errorf("At() = %v", e.At())
	}
}

// Property: RunUntil never executes events past the bound, in any order
// of scheduling.
func TestRunUntilBoundProperty(t *testing.T) {
	f := func(offsets []uint16, boundRaw uint16) bool {
		k := NewKernel()
		bound := time.Duration(boundRaw) * time.Microsecond
		late := 0
		for _, off := range offsets {
			d := time.Duration(off) * time.Microsecond
			k.At(d, func() {
				if k.Now() > bound {
					late++
				}
			})
		}
		if err := k.RunUntil(bound); err != nil {
			return false
		}
		return late == 0 && k.Now() == bound
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
