// Package sim provides a deterministic discrete-event simulation kernel.
//
// All barbican experiments run in virtual time: events are executed in
// timestamp order by a single goroutine, so simulations are reproducible
// bit-for-bit regardless of host load. Ties are broken by scheduling
// order, which makes the execution order a pure function of the inputs.
package sim

import (
	"container/heap"
	"errors"
	"math/rand"
	"reflect"
	"time"
)

// ErrHalted is returned by Run variants when the kernel was stopped with
// Halt before the run condition was reached.
var ErrHalted = errors.New("sim: kernel halted")

// Event is a scheduled callback. It is returned by the scheduling methods
// so that callers may cancel it before it fires.
type Event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	index int // heap index; -1 when not queued
	fired bool
	// fnArg/arg carry AtCall-style callbacks. Events scheduled that way
	// are pooled: recycled after firing and never handed to callers.
	fnArg  func(any)
	arg    any
	pooled bool
	kernel *Kernel
}

// At reports the virtual time at which the event is (or was) scheduled to fire.
func (e *Event) At() time.Duration { return e.at }

// Cancel removes the event from the queue. Canceling an event that already
// fired or was already canceled is a no-op. Cancel reports whether the
// event was still pending.
func (e *Event) Cancel() bool {
	if e == nil || e.fired || e.index < 0 {
		return false
	}
	heap.Remove(&e.kernel.queue, e.index)
	e.index = -1
	e.fired = true
	return true
}

// Pending reports whether the event is still queued to fire.
func (e *Event) Pending() bool { return e != nil && !e.fired && e.index >= 0 }

// Kernel is a discrete-event scheduler with a virtual clock.
//
// The zero value is not usable; construct kernels with NewKernel.
type Kernel struct {
	now    time.Duration
	seq    uint64
	queue  eventQueue
	rng    *rand.Rand
	halted bool

	executed uint64

	// Observability (see internal/obs). afterStep is a lightweight
	// observer hook costing one nil check per event when unset; wall
	// accounting costs one time.Now pair per Run call, never per event.
	afterStep func(*Kernel)
	stepProf  StepProfiler
	wallBusy  time.Duration
	runStart  time.Time
	running   bool

	// free is the pool of recycled AtCall events. Pooled events are
	// never returned to callers, so a recycled event cannot be the
	// target of a stale Cancel.
	free []*Event
}

// Option configures a Kernel.
type Option interface{ apply(*Kernel) }

type seedOption int64

func (s seedOption) apply(k *Kernel) { k.rng = rand.New(rand.NewSource(int64(s))) }

// WithSeed sets the seed of the kernel's deterministic random source.
// The default seed is 1.
func WithSeed(seed int64) Option { return seedOption(seed) }

// NewKernel returns a kernel whose clock starts at zero.
func NewKernel(opts ...Option) *Kernel {
	k := &Kernel{rng: rand.New(rand.NewSource(1))}
	for _, o := range opts {
		o.apply(k)
	}
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Rand returns the kernel's deterministic random source. It must only be
// used from event callbacks (the simulation is single-threaded).
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Executed returns the number of events executed so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// SetAfterStep registers an observer invoked after every executed event
// (nil removes it). The hook must not block; it exists for telemetry
// and progress reporting, and costs a single nil check when unset.
func (k *Kernel) SetAfterStep(fn func(*Kernel)) { k.afterStep = fn }

// StepProfiler observes sampled event executions for the wall-domain
// profiler (see internal/obs/profile). Take makes the per-event
// sampling decision — it is called for EVERY executed event so that
// counter-based sampling stays deterministic — and a true return is
// bracketed by BeginStep (with the handler's code pointer and the
// virtual clock) and EndStep around the callback. The kernel itself
// never reads the wall clock for profiling; time measurement is the
// profiler's business, which keeps this package deterministic.
type StepProfiler interface {
	Take() bool
	BeginStep(fn uintptr, at time.Duration)
	EndStep()
}

// SetStepProfiler attaches a step profiler (nil detaches). Detached
// cost is one nil check per event.
func (k *Kernel) SetStepProfiler(p StepProfiler) { k.stepProf = p }

// funcPC returns the code pointer of a func value, used to label
// event handlers by symbol without widening the scheduling API. Go
// func values are pointer-shaped, so the interface conversion here
// does not allocate.
func funcPC(fn any) uintptr { return reflect.ValueOf(fn).Pointer() }

// WallBusy returns the cumulative wall-clock time spent inside Run,
// RunUntil, and RunFor — the denominator of the virtual/wall speedup
// ratio. It is accurate mid-run (event callbacks observe a live value).
func (k *Kernel) WallBusy() time.Duration {
	if k.running {
		return k.wallBusy + time.Since(k.runStart) //barbican:allow walltime -- speedup denominator: wall time never feeds back into simulation state
	}
	return k.wallBusy
}

// Speedup returns the virtual/wall-clock ratio: how many virtual
// seconds the kernel has simulated per wall-clock second of execution.
// Zero until the kernel has run.
func (k *Kernel) Speedup() float64 {
	w := k.WallBusy().Seconds()
	if w <= 0 {
		return 0
	}
	return k.now.Seconds() / w
}

// beginRun/endRun bracket the Run variants for wall-clock accounting.
// Nested runs (an event callback driving the kernel again) are counted
// once, by the outermost frame.
func (k *Kernel) beginRun() bool {
	if k.running {
		return false
	}
	k.running = true
	k.runStart = time.Now() //barbican:allow walltime -- per-Run wall accounting pair; see endRun
	return true
}

func (k *Kernel) endRun(outermost bool) {
	if !outermost {
		return
	}
	k.wallBusy += time.Since(k.runStart) //barbican:allow walltime -- per-Run wall accounting pair; see beginRun
	k.running = false
}

// Len returns the number of pending events.
func (k *Kernel) Len() int { return k.queue.Len() }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is clamped to the current time (the event fires "now", after already-queued
// events for the current instant).
func (k *Kernel) At(t time.Duration, fn func()) *Event {
	if t < k.now {
		t = k.now
	}
	e := &Event{at: t, seq: k.seq, fn: fn, kernel: k}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn to run d after the current virtual time.
func (k *Kernel) After(d time.Duration, fn func()) *Event {
	return k.At(k.now+d, fn)
}

// AtCall schedules fn(arg) at absolute virtual time t on a pooled,
// uncancellable event. It is the allocation-free form of At for hot
// per-packet callbacks: at steady state the event comes from and
// returns to the kernel's free list, and because fn is a precomputed
// func(any) rather than a fresh closure, a call site allocates nothing.
func (k *Kernel) AtCall(t time.Duration, fn func(any), arg any) {
	if t < k.now {
		t = k.now
	}
	var e *Event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		e.fired = false
	} else {
		e = &Event{kernel: k, pooled: true}
	}
	e.at, e.seq = t, k.seq
	e.fnArg, e.arg = fn, arg
	k.seq++
	heap.Push(&k.queue, e)
}

// AfterCall schedules fn(arg) d after the current virtual time on a
// pooled event (see AtCall).
func (k *Kernel) AfterCall(d time.Duration, fn func(any), arg any) {
	k.AtCall(k.now+d, fn, arg)
}

// Halt stops any in-progress Run/RunUntil/RunFor after the current event
// finishes executing.
func (k *Kernel) Halt() { k.halted = true }

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (k *Kernel) Step() bool {
	if k.queue.Len() == 0 {
		return false
	}
	ev, _ := heap.Pop(&k.queue).(*Event)
	ev.index = -1
	ev.fired = true
	k.now = ev.at
	k.executed++
	prof := k.stepProf
	sampled := prof != nil && prof.Take()
	if ev.pooled {
		// Recycle before firing: the callback may schedule again and
		// reuse this very event, which is safe once it is off the heap
		// and its fields are captured.
		fn, arg := ev.fnArg, ev.arg
		ev.fnArg, ev.arg = nil, nil
		k.free = append(k.free, ev)
		if sampled {
			prof.BeginStep(funcPC(fn), k.now)
			fn(arg)
			prof.EndStep()
		} else {
			fn(arg)
		}
	} else if sampled {
		prof.BeginStep(funcPC(ev.fn), k.now)
		ev.fn()
		prof.EndStep()
	} else {
		ev.fn()
	}
	if k.afterStep != nil {
		k.afterStep(k)
	}
	return true
}

// Run executes events until the queue is empty or the kernel is halted.
// It returns ErrHalted if Halt was called.
func (k *Kernel) Run() error {
	defer k.endRun(k.beginRun())
	k.halted = false
	for !k.halted {
		if !k.Step() {
			return nil
		}
	}
	return ErrHalted
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. It returns ErrHalted if Halt was called before t was reached.
func (k *Kernel) RunUntil(t time.Duration) error {
	defer k.endRun(k.beginRun())
	k.halted = false
	for !k.halted {
		if k.queue.Len() == 0 || k.queue[0].at > t {
			if t > k.now {
				k.now = t
			}
			return nil
		}
		k.Step()
	}
	return ErrHalted
}

// RunFor executes events for a span of d virtual time from the current clock.
func (k *Kernel) RunFor(d time.Duration) error {
	return k.RunUntil(k.now + d)
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e, ok := x.(*Event)
	if !ok {
		return
	}
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}
