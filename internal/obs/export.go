package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// escapeHelp escapes a HELP string for the text exposition: the
// format reserves backslash escapes and is line-oriented, so literal
// backslashes and newlines must travel as \\ and \n or they corrupt
// the output (a raw newline would start a bogus exposition line).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// unescapeHelp inverts escapeHelp when parsing HELP lines.
func unescapeHelp(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i+1])
			}
			i++
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// WritePromText writes a point-in-time snapshot of the registry in
// Prometheus text exposition format — exactly what a /metrics scrape of
// the run would return at the current virtual instant. Histogram
// expansion series render as one conventional histogram family.
func (r *Registry) WritePromText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	samples := r.Gather()
	for _, fam := range familyOrder(samples) {
		first := true
		for _, sv := range samples {
			if familyName(sv.SeriesInfo) != fam {
				continue
			}
			if first {
				first = false
				if sv.Help != "" {
					fmt.Fprintf(bw, "# HELP %s %s\n", fam, escapeHelp(sv.Help))
				}
				fmt.Fprintf(bw, "# TYPE %s %s\n", fam, familyKind(sv.SeriesInfo))
			}
			fmt.Fprintf(bw, "%s %s\n", sv.ID, formatValue(sv.Value))
		}
	}
	return bw.Flush()
}

// familyOrder returns distinct family names in first-appearance order,
// so the exposition groups each family's series under one TYPE line.
func familyOrder(samples []SampleValue) []string {
	var fams []string
	seen := make(map[string]bool)
	for _, sv := range samples {
		fam := familyName(sv.SeriesInfo)
		if !seen[fam] {
			seen[fam] = true
			fams = append(fams, fam)
		}
	}
	return fams
}

// WritePromText writes the recorded timeline in Prometheus text format
// with explicit millisecond timestamps (virtual time), one exposition
// line per series per tick — suitable for backfill tooling and for
// eyeballing a run's evolution with standard Prometheus parsers.
func (rec *Recorder) WritePromText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	all := rec.AllSeries()
	var fams []string
	seen := make(map[string]bool)
	for _, sd := range all {
		fam := familyName(sd.Info)
		if !seen[fam] {
			seen[fam] = true
			fams = append(fams, fam)
		}
	}
	for _, fam := range fams {
		first := true
		for _, sd := range all {
			if familyName(sd.Info) != fam {
				continue
			}
			if first {
				first = false
				if sd.Info.Help != "" {
					fmt.Fprintf(bw, "# HELP %s %s\n", fam, escapeHelp(sd.Info.Help))
				}
				fmt.Fprintf(bw, "# TYPE %s %s\n", fam, familyKind(sd.Info))
			}
			for _, p := range sd.Points {
				fmt.Fprintf(bw, "%s %s %d\n", sd.Info.ID, formatValue(p.V), p.T.Milliseconds())
			}
		}
	}
	return bw.Flush()
}

// WriteCSV writes the timeline as a wide CSV: a time_s column, one
// column per series (cumulative values as sampled), and a trailing
// rate:<id> column per counter series holding the per-second first
// difference — the instantaneous-rate view (goodput, deny rate, …).
// Cells for ticks taken before a series existed are left empty.
func (rec *Recorder) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	infos := rec.reg.Infos()
	bw.WriteString("time_s")
	for _, in := range infos {
		bw.WriteString(",")
		bw.WriteString(csvEscape(in.ID))
	}
	var rateCols []int
	for i, in := range infos {
		if in.Kind == KindCounter {
			rateCols = append(rateCols, i)
			bw.WriteString(",")
			bw.WriteString(csvEscape("rate:" + in.ID))
		}
	}
	bw.WriteByte('\n')

	ticks := rec.ticks
	for ti, t := range ticks {
		fmt.Fprintf(bw, "%.6f", t.At.Seconds())
		for i := range infos {
			bw.WriteByte(',')
			if i < len(t.Values) {
				bw.WriteString(formatValue(t.Values[i]))
			}
		}
		for _, i := range rateCols {
			bw.WriteByte(',')
			if ti == 0 {
				continue
			}
			prev := ticks[ti-1]
			dt := t.At - prev.At
			if i >= len(t.Values) || i >= len(prev.Values) || dt <= 0 {
				continue
			}
			bw.WriteString(formatValue((t.Values[i] - prev.Values[i]) / dt.Seconds()))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// jsonSeries is the JSON shape of one recorded series.
type jsonSeries struct {
	ID     string            `json:"id"`
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	// Points are [virtual_seconds, value] pairs.
	Points [][2]float64 `json:"points"`
	// Rate is the per-second first difference, for counter series.
	Rate [][2]float64 `json:"rate,omitempty"`
}

type jsonTimeline struct {
	SampleEverySeconds float64      `json:"sample_every_seconds"`
	Ticks              int          `json:"ticks"`
	Series             []jsonSeries `json:"series"`
}

// WriteJSON writes the timeline as a machine-readable JSON document.
func (rec *Recorder) WriteJSON(w io.Writer) error {
	doc := jsonTimeline{
		SampleEverySeconds: rec.every.Seconds(),
		Ticks:              len(rec.ticks),
	}
	for _, sd := range rec.AllSeries() {
		js := jsonSeries{
			ID:   sd.Info.ID,
			Name: sd.Info.Name,
			Kind: sd.Info.Kind.String(),
			Help: sd.Info.Help,
		}
		if len(sd.Info.Labels) > 0 {
			js.Labels = make(map[string]string, len(sd.Info.Labels))
			for _, l := range sd.Info.Labels {
				js.Labels[l.Key] = l.Value
			}
		}
		for _, p := range sd.Points {
			js.Points = append(js.Points, [2]float64{p.T.Seconds(), p.V})
		}
		if sd.Info.Kind == KindCounter {
			for _, p := range sd.Rate() {
				js.Rate = append(js.Rate, [2]float64{p.T.Seconds(), p.V})
			}
		}
		doc.Series = append(doc.Series, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WriteJSON writes a point-in-time snapshot of the registry as JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	type jsonSample struct {
		ID     string            `json:"id"`
		Name   string            `json:"name"`
		Kind   string            `json:"kind"`
		Labels map[string]string `json:"labels,omitempty"`
		Value  float64           `json:"value"`
	}
	var doc []jsonSample
	for _, sv := range r.Gather() {
		js := jsonSample{ID: sv.ID, Name: sv.Name, Kind: sv.Kind.String(), Value: sv.Value}
		if len(sv.Labels) > 0 {
			js.Labels = make(map[string]string, len(sv.Labels))
			for _, l := range sv.Labels {
				js.Labels[l.Key] = l.Value
			}
		}
		doc = append(doc, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// SanitizeName maps an arbitrary label to a filesystem- and
// metrics-friendly token: lowercase, [a-z0-9_-] only.
func SanitizeName(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '.':
			b.WriteRune(r)
		case r == '_', r == ' ', r == '/', r == '(', r == ')':
			// Underscore runs — literal or from separators — collapse to
			// one ("ADF (VPG)_rate" → "adf_vpg_rate", not "adf_vpg__rate").
			if out := b.String(); out != "" && out[len(out)-1] != '_' {
				b.WriteByte('_')
			}
		}
	}
	out := strings.Trim(b.String(), "_")
	if out == "" {
		return "run"
	}
	return out
}

// WriteRunArtifacts writes one run's telemetry under dir as
// <base>.prom (timeline with timestamps), <base>.csv, <base>.json, and
// <base>.snapshot.prom (final scrape-style snapshot). It returns the
// paths written.
func WriteRunArtifacts(dir, base string, reg *Registry, rec *Recorder) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: artifacts dir: %w", err)
	}
	base = SanitizeName(base)
	var paths []string
	write := func(name string, fn func(io.Writer) error) error {
		p := filepath.Join(dir, name)
		f, err := os.Create(p)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("obs: write %s: %w", p, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("obs: close %s: %w", p, err)
		}
		paths = append(paths, p)
		return nil
	}
	if rec != nil {
		if err := write(base+".prom", rec.WritePromText); err != nil {
			return paths, err
		}
		if err := write(base+".csv", rec.WriteCSV); err != nil {
			return paths, err
		}
		if err := write(base+".json", rec.WriteJSON); err != nil {
			return paths, err
		}
	}
	if err := write(base+".snapshot.prom", reg.WritePromText); err != nil {
		return paths, err
	}
	return paths, nil
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
