// Hand-rolled pprof profile.proto encoding and decoding, stdlib only.
//
// The pprof wire format is a gzipped protobuf message. We need only a
// small, fixed subset of the schema, so rather than depend on a proto
// compiler the encoder writes tag/varint/length-delimited records
// directly and the decoder is a generic varint walker. Field numbers
// (from github.com/google/pprof/proto/profile.proto):
//
//	Profile:  sample_type=1 sample=2 mapping=3 location=4 function=5
//	          string_table=6 time_nanos=9 duration_nanos=10
//	          period_type=11 period=12 comment=13 default_sample_type=14
//	ValueType: type=1 unit=2           (string-table indices)
//	Sample:    location_id=1 value=2   (both packed repeated)
//	Mapping:   id=1 has_functions=7
//	Location:  id=1 mapping_id=2 line=4
//	Line:      function_id=1 line=2
//	Function:  id=1 name=2 system_name=3 filename=4
//
// Every frame name becomes one Function + one Location (ids are
// assigned in first-appearance order, so encoding is deterministic);
// sample location_ids are leaf-first per the pprof convention, while
// Data stacks are root-first.
package profile

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
)

// protobuf wire types.
const (
	wireVarint = 0
	wireBytes  = 2
)

type protoBuf struct{ buf []byte }

func (b *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		b.buf = append(b.buf, byte(v)|0x80)
		v >>= 7
	}
	b.buf = append(b.buf, byte(v))
}

func (b *protoBuf) tag(field, wire int) { b.varint(uint64(field)<<3 | uint64(wire)) }

// int64Field emits a varint field; zero values are skipped per proto3.
func (b *protoBuf) int64Field(field int, v int64) {
	if v == 0 {
		return
	}
	b.tag(field, wireVarint)
	b.varint(uint64(v))
}

func (b *protoBuf) bytesField(field int, p []byte) {
	b.tag(field, wireBytes)
	b.varint(uint64(len(p)))
	b.buf = append(b.buf, p...)
}

func (b *protoBuf) stringField(field int, s string) {
	b.tag(field, wireBytes)
	b.varint(uint64(len(s)))
	b.buf = append(b.buf, s...)
}

// packedInt64s emits a packed repeated varint field.
func (b *protoBuf) packedInt64s(field int, vs []int64) {
	if len(vs) == 0 {
		return
	}
	var inner protoBuf
	for _, v := range vs {
		inner.varint(uint64(v))
	}
	b.bytesField(field, inner.buf)
}

// stringTable interns strings into pprof's string_table, where index
// 0 must be the empty string.
type stringTable struct {
	byVal map[string]int64
	vals  []string
}

func newStringTable() *stringTable {
	return &stringTable{byVal: map[string]int64{"": 0}, vals: []string{""}}
}

func (st *stringTable) index(s string) int64 {
	if i, ok := st.byVal[s]; ok {
		return i
	}
	i := int64(len(st.vals))
	st.byVal[s] = i
	st.vals = append(st.vals, s)
	return i
}

// WritePprof writes the profile as a gzipped pprof profile.proto.
func (d *Data) WritePprof(w io.Writer) error {
	st := newStringTable()
	var out protoBuf

	for _, vt := range d.SampleTypes {
		var m protoBuf
		m.int64Field(1, st.index(vt.Type))
		m.int64Field(2, st.index(vt.Unit))
		out.bytesField(1, m.buf)
	}

	// Assign function/location ids (1-based, shared per frame name)
	// in first-appearance order.
	frameID := make(map[string]int64)
	var frames []string
	id := func(frame string) int64 {
		if fid, ok := frameID[frame]; ok {
			return fid
		}
		fid := int64(len(frames) + 1)
		frameID[frame] = fid
		frames = append(frames, frame)
		return fid
	}

	for _, s := range d.Samples {
		var m protoBuf
		locs := make([]int64, 0, len(s.Stack))
		for i := len(s.Stack) - 1; i >= 0; i-- { // leaf-first
			locs = append(locs, id(s.Stack[i]))
		}
		m.packedInt64s(1, locs)
		m.packedInt64s(2, s.Values)
		out.bytesField(2, m.buf)
	}

	// One synthetic mapping so pprof tools treat locations as symbolized.
	{
		var m protoBuf
		m.int64Field(1, 1)
		m.int64Field(7, 1) // has_functions
		out.bytesField(3, m.buf)
	}

	for i, frame := range frames {
		fid := int64(i + 1)
		var loc protoBuf
		loc.int64Field(1, fid)
		loc.int64Field(2, 1) // mapping_id
		var line protoBuf
		line.int64Field(1, fid)
		loc.bytesField(4, line.buf)
		out.bytesField(4, loc.buf)

		var fn protoBuf
		fn.int64Field(1, fid)
		fn.int64Field(2, st.index(frame))
		fn.int64Field(3, st.index(frame))
		fn.int64Field(4, st.index("(virtual)"))
		out.bytesField(5, fn.buf)
	}

	var tail protoBuf
	if d.PeriodType != (ValueType{}) {
		var m protoBuf
		m.int64Field(1, st.index(d.PeriodType.Type))
		m.int64Field(2, st.index(d.PeriodType.Unit))
		tail.bytesField(11, m.buf)
	}
	tail.int64Field(12, d.Period)
	for _, c := range d.Comments {
		tail.int64Field(13, st.index(c))
	}
	tail.int64Field(14, st.index(d.DefaultType))

	// string_table entries must precede nothing in particular (proto
	// fields are order-free), but emitting them after all interning is
	// complete is what makes the single-pass encoder work.
	for _, s := range st.vals {
		out.stringField(6, s)
	}
	out.buf = append(out.buf, tail.buf...)

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(out.buf); err != nil {
		return err
	}
	return gz.Close()
}

// WritePprofFile writes the profile to path as gzipped pprof.
func (d *Data) WritePprofFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WritePprof(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// --- decoding ---

type protoReader struct {
	buf []byte
	pos int
}

func (r *protoReader) done() bool { return r.pos >= len(r.buf) }

func (r *protoReader) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if r.pos >= len(r.buf) {
			return 0, io.ErrUnexpectedEOF
		}
		b := r.buf[r.pos]
		r.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("profile: varint overflow")
}

// field reads the next field, returning its number and either a
// varint value or a bytes payload depending on the wire type.
func (r *protoReader) field() (num int, wire int, v uint64, p []byte, err error) {
	key, err := r.varint()
	if err != nil {
		return 0, 0, 0, nil, err
	}
	num, wire = int(key>>3), int(key&7)
	switch wire {
	case wireVarint:
		v, err = r.varint()
	case 1: // fixed64
		if r.pos+8 > len(r.buf) {
			return 0, 0, 0, nil, io.ErrUnexpectedEOF
		}
		r.pos += 8
	case wireBytes:
		var n uint64
		n, err = r.varint()
		if err == nil {
			if r.pos+int(n) > len(r.buf) {
				return 0, 0, 0, nil, io.ErrUnexpectedEOF
			}
			p = r.buf[r.pos : r.pos+int(n)]
			r.pos += int(n)
		}
	case 5: // fixed32
		if r.pos+4 > len(r.buf) {
			return 0, 0, 0, nil, io.ErrUnexpectedEOF
		}
		r.pos += 4
	default:
		err = fmt.Errorf("profile: unsupported wire type %d", wire)
	}
	return num, wire, v, p, err
}

// ints64 parses a repeated int64 field that may be packed or not.
func ints64(wire int, v uint64, p []byte, into []int64) ([]int64, error) {
	if wire == wireVarint {
		return append(into, int64(v)), nil
	}
	r := &protoReader{buf: p}
	for !r.done() {
		u, err := r.varint()
		if err != nil {
			return nil, err
		}
		into = append(into, int64(u))
	}
	return into, nil
}

// ReadPprof parses a pprof profile.proto stream (gzipped or raw) back
// into a Data. Only the fields WritePprof emits are interpreted;
// anything else is skipped, so profiles from other tools load too as
// long as they are symbolized.
func ReadPprof(r io.Reader) (*Data, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw) >= 2 && raw[0] == 0x1f && raw[1] == 0x8b {
		gz, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		if raw, err = io.ReadAll(gz); err != nil {
			return nil, err
		}
		if err := gz.Close(); err != nil {
			return nil, err
		}
	}

	var (
		strs        []string
		sampleTypes []struct{ typ, unit int64 }
		periodType  struct{ typ, unit int64 }
		period      int64
		comments    []int64
		defType     int64
		// location id → function id; function id → name string index.
		locFn  = map[int64]int64{}
		fnName = map[int64]int64{}
		raws   []struct {
			locs []int64
			vals []int64
		}
	)

	pr := &protoReader{buf: raw}
	for !pr.done() {
		num, wire, v, p, err := pr.field()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1: // sample_type
			var vt struct{ typ, unit int64 }
			ir := &protoReader{buf: p}
			for !ir.done() {
				n, _, iv, _, err := ir.field()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1:
					vt.typ = int64(iv)
				case 2:
					vt.unit = int64(iv)
				}
			}
			sampleTypes = append(sampleTypes, vt)
		case 2: // sample
			var s struct {
				locs []int64
				vals []int64
			}
			ir := &protoReader{buf: p}
			for !ir.done() {
				n, w, iv, ip, err := ir.field()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1:
					if s.locs, err = ints64(w, iv, ip, s.locs); err != nil {
						return nil, err
					}
				case 2:
					if s.vals, err = ints64(w, iv, ip, s.vals); err != nil {
						return nil, err
					}
				}
			}
			raws = append(raws, s)
		case 4: // location
			var id, fid int64
			ir := &protoReader{buf: p}
			for !ir.done() {
				n, _, iv, ip, err := ir.field()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1:
					id = int64(iv)
				case 4: // line
					lr := &protoReader{buf: ip}
					for !lr.done() {
						ln, _, lv, _, err := lr.field()
						if err != nil {
							return nil, err
						}
						if ln == 1 {
							fid = int64(lv)
						}
					}
				}
			}
			locFn[id] = fid
		case 5: // function
			var id, name int64
			ir := &protoReader{buf: p}
			for !ir.done() {
				n, _, iv, _, err := ir.field()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1:
					id = int64(iv)
				case 2:
					name = int64(iv)
				}
			}
			fnName[id] = name
		case 6: // string_table
			strs = append(strs, string(p))
		case 11: // period_type
			ir := &protoReader{buf: p}
			for !ir.done() {
				n, _, iv, _, err := ir.field()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1:
					periodType.typ = int64(iv)
				case 2:
					periodType.unit = int64(iv)
				}
			}
		case 12:
			period = int64(v)
		case 13:
			comments = append(comments, int64(v))
		case 14:
			defType = int64(v)
		default:
			_ = wire // skipped field
		}
	}

	str := func(i int64) string {
		if i >= 0 && int(i) < len(strs) {
			return strs[i]
		}
		return ""
	}

	types := make([]ValueType, len(sampleTypes))
	for i, vt := range sampleTypes {
		types[i] = ValueType{Type: str(vt.typ), Unit: str(vt.unit)}
	}
	d := NewData(types, str(defType))
	d.Period = period
	d.PeriodType = ValueType{Type: str(periodType.typ), Unit: str(periodType.unit)}
	for _, c := range comments {
		d.Comments = append(d.Comments, str(c))
	}
	for _, s := range raws {
		if len(s.vals) != len(types) {
			return nil, fmt.Errorf("profile: sample has %d values, want %d", len(s.vals), len(types))
		}
		stack := make([]string, 0, len(s.locs))
		for i := len(s.locs) - 1; i >= 0; i-- { // back to root-first
			stack = append(stack, str(fnName[locFn[s.locs[i]]]))
		}
		d.Add(stack, s.vals...)
	}
	return d, nil
}

// ReadPprofFile parses the pprof profile at path.
func ReadPprofFile(path string) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPprof(f)
}
