// Package profile is barbican's third observability pillar (after the
// obs metrics registry and the tracing package): a dual-domain
// profiler that answers "where did the budget go?".
//
// Two budgets matter in this simulator, and they live in different
// clocks:
//
//   - The cost domain is the card's embedded-CPU budget, in the
//     abstract cost units of nic.Profile. A CardProfiler attached to a
//     NIC attributes every admitted unit to a named phase — base
//     parse, the per-rule match walk (with rule-index granularity),
//     VPG crypto seal/open, and verdict bookkeeping. This is the
//     paper's Fig. 2/3 collapse decomposed: per-rule match cost ×
//     depth is what exhausts the budget.
//   - The wall domain is the host CPU running the simulation. A
//     KernelProfiler samples the sim event loop 1-in-N
//     (counter-based, like the tracing sampler) and attributes
//     measured wall time to each event handler — the data that says
//     which simulation regions are worth sharding.
//
// Both domains export through one in-memory Data model as gzipped
// pprof profile.proto (hand-rolled, stdlib only — see pprof.go) and
// as folded-stack text for flamegraph.pl / speedscope (folded.go).
//
// Determinism contract (DESIGN.md §12): cost-domain profiles are
// exact, not sampled — every admitted packet is recorded — so their
// exported bytes are identical for identical scenarios at any
// -parallel setting. Wall-domain profiles are deterministic in
// structure and event counts (counter-based sampling on a
// deterministic event sequence) but their wall-nanosecond values are
// measured, and therefore vary run to run.
//
// The disabled state is a nil profiler: hot-path call sites guard
// with one nil check, which is what keeps the //barbican:noalloc
// rx-path contract (0 allocs/op with profiling off) intact.
package profile

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Phase names one slice of a card's per-packet work in the cost
// model: cost(pkt) = base + perRule×traversed + crypto.
type Phase uint8

// The card work phases. PhaseVerdict carries no cost units in the
// model (the verdict is implicit in where the walk stopped); it
// exists so profiles still count packets per matched rule.
const (
	PhaseParse      Phase = iota // fixed per-packet base cost (header parse, DMA, ring bookkeeping)
	PhaseMatch                   // linear rule walk, perRule × rules traversed
	PhaseCryptoSeal              // VPG seal on egress
	PhaseCryptoOpen              // VPG open on ingress
	PhaseVerdict                 // verdict/forward bookkeeping (packet counts only)

	NumPhases // array-sizing sentinel, not a phase
)

var phaseNames = [NumPhases]string{
	PhaseParse:      "parse",
	PhaseMatch:      "match",
	PhaseCryptoSeal: "crypto.seal",
	PhaseCryptoOpen: "crypto.open",
	PhaseVerdict:    "verdict",
}

func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "phase?"
}

// Options configures profiling for one run.
type Options struct {
	// KernelSampleEvery samples 1 in N executed kernel events in the
	// wall domain; <= 0 means DefaultKernelSampleEvery. The cost
	// domain is always exact.
	KernelSampleEvery int
}

// DefaultKernelSampleEvery is the default 1-in-N event sampling rate
// of the wall-domain kernel profiler.
const DefaultKernelSampleEvery = 16

// DirProfile accumulates one direction (rx or tx) of a card's
// attributed cost. All fields are exact sums over admitted packets.
type DirProfile struct {
	Packets     uint64  // admitted packets
	BaseUnits   float64 // PhaseParse units
	MatchUnits  float64 // PhaseMatch units
	CryptoUnits float64 // crypto units (seal on tx, open on rx)
	CryptoPkts  uint64  // packets that paid crypto

	// Walks[t] counts packets whose verdict came after traversing
	// exactly t rules; rule i (1-based) was therefore examined by
	// every packet with t >= i, which is what makes per-rule match
	// cost reconstructible without O(depth) work per packet.
	Walks []uint64
	// Hits[i] counts packets matched at 1-based rule i; Hits[0] is
	// the default action.
	Hits []uint64
}

// record accumulates one admitted packet. Hot path when profiling is
// on; the only allocations are the rare Walks/Hits growth steps.
func (d *DirProfile) record(traversed, matched int, base, match, crypto float64) {
	d.Packets++
	d.BaseUnits += base
	d.MatchUnits += match
	if crypto > 0 {
		d.CryptoUnits += crypto
		d.CryptoPkts++
	}
	for traversed >= len(d.Walks) {
		d.Walks = append(d.Walks, 0)
	}
	d.Walks[traversed]++
	if matched < 0 {
		matched = 0
	}
	for matched >= len(d.Hits) {
		d.Hits = append(d.Hits, 0)
	}
	d.Hits[matched]++
}

// Units returns the direction's total attributed cost units.
func (d *DirProfile) Units() float64 { return d.BaseUnits + d.MatchUnits + d.CryptoUnits }

// CardProfiler attributes one card's admitted cost units to phases
// and rule indices. It is exact (every admitted packet recorded) and
// single-threaded, like the kernel that drives it. A nil *CardProfiler
// is the disabled state.
type CardProfiler struct {
	// Host labels the card's testbed host ("target", "client", ...).
	Host string
	// Device is the card profile name ("EFW", "ADF", ...).
	Device string
	// PerRule is the card's per-rule match cost, used to reconstruct
	// per-rule units from traversal counts.
	PerRule float64
	// RuleText, when non-nil, resolves a 1-based rule index to its
	// DSL text for profile frame labels (evaluated at export time, so
	// labels reflect the finally-installed policy).
	RuleText func(i int) string

	Rx DirProfile
	Tx DirProfile
}

// NewCardProfiler creates a profiler for one card.
func NewCardProfiler(host, device string, perRule float64) *CardProfiler {
	return &CardProfiler{Host: host, Device: device, PerRule: perRule}
}

// RecordRx attributes one admitted ingress packet: its fixed base
// cost, match-walk cost, crypto (open) cost, the rules traversed, and
// the 1-based matched rule (0 = default action).
func (cp *CardProfiler) RecordRx(traversed, matched int, base, match, crypto float64) {
	cp.Rx.record(traversed, matched, base, match, crypto)
}

// RecordTx attributes one admitted egress packet (crypto = seal).
func (cp *CardProfiler) RecordTx(traversed, matched int, base, match, crypto float64) {
	cp.Tx.record(traversed, matched, base, match, crypto)
}

// Units returns the card's total attributed cost units, both
// directions — comparable against the processor's UnitsDone.
func (cp *CardProfiler) Units() float64 { return cp.Rx.Units() + cp.Tx.Units() }

// ruleFrame renders the stack frame of one 1-based rule index.
// Semicolons are reserved by the folded-stack format, so they can
// never appear in a frame.
func (cp *CardProfiler) ruleFrame(i int) string {
	label := fmt.Sprintf("rule %03d", i)
	if cp.RuleText != nil {
		if text := cp.RuleText(i); text != "" {
			label += ": " + text
		}
	}
	return strings.ReplaceAll(label, ";", ",")
}

// CostSampleTypes is the value schema of cost-domain profiles: cost
// units first (the default flamegraph weight), packet counts second.
var CostSampleTypes = []ValueType{{Type: "cost", Unit: "units"}, {Type: "packets", Unit: "count"}}

// AppendCostSamples appends the card's attributed samples to d, which
// must use CostSampleTypes. Stacks are root→leaf:
//
//	<host> (<device>) ; rx|tx ; phase [; rule NNN[: text] | default]
//
// Zero-valued samples are skipped, so profiles stay proportional to
// the rules actually exercised.
func (cp *CardProfiler) AppendCostSamples(d *Data) {
	card := strings.ReplaceAll(fmt.Sprintf("%s (%s)", cp.Host, cp.Device), ";", ",")
	for _, dir := range []struct {
		name string
		p    *DirProfile
	}{{"rx", &cp.Rx}, {"tx", &cp.Tx}} {
		dp := dir.p
		if dp.Packets == 0 {
			continue
		}
		d.Add([]string{card, dir.name, PhaseParse.String()}, round(dp.BaseUnits), int64(dp.Packets))
		// Per-rule match attribution: rule i was examined by every
		// packet that traversed at least i rules. The suffix sum runs
		// deepest-first so each rule's count is O(1).
		examined := uint64(0)
		perRule := make([]uint64, len(dp.Walks))
		for t := len(dp.Walks) - 1; t >= 1; t-- {
			examined += dp.Walks[t]
			perRule[t] = examined
		}
		for i := 1; i < len(perRule); i++ {
			if perRule[i] == 0 {
				continue
			}
			d.Add([]string{card, dir.name, PhaseMatch.String(), cp.ruleFrame(i)},
				round(cp.PerRule*float64(perRule[i])), int64(perRule[i]))
		}
		if dp.CryptoUnits > 0 {
			phase := PhaseCryptoOpen
			if dir.name == "tx" {
				phase = PhaseCryptoSeal
			}
			d.Add([]string{card, dir.name, phase.String()}, round(dp.CryptoUnits), int64(dp.CryptoPkts))
		}
		for i, hits := range dp.Hits {
			if hits == 0 {
				continue
			}
			frame := "default"
			if i > 0 {
				frame = cp.ruleFrame(i)
			}
			d.Add([]string{card, dir.name, PhaseVerdict.String(), frame}, 0, int64(hits))
		}
	}
}

// KernelSite is one event handler observed by the wall-domain
// profiler.
type KernelSite struct {
	// Name is the handler's runtime symbol, e.g.
	// "barbican/internal/nic.(*NIC).finishPending-fm".
	Name string
	// Samples counts sampled executions; each represents
	// KernelSampleEvery events.
	Samples uint64
	// Wall is the measured host time spent inside sampled executions
	// of this handler (outermost kernel steps only).
	Wall time.Duration
}

// KernelProfiler samples the simulation event loop: 1 in every N
// executed events is timed on the host clock and attributed to its
// handler function. It implements sim.StepProfiler.
//
// The sampling decision is counter-based, so which events get
// sampled — and therefore the site set, its order, and all event
// counts — is a deterministic function of the simulation inputs; only
// the wall-nanosecond values are measured.
type KernelProfiler struct {
	every uint64
	seen  uint64

	byPC  map[uintptr]int
	sites []KernelSite

	// Nested kernel runs (an event callback driving the kernel) stack
	// here; wall time is attributed to the outermost step only.
	stack []int
	start time.Time
}

// NewKernelProfiler creates a wall-domain profiler sampling 1 in
// every events (<= 0 means DefaultKernelSampleEvery).
func NewKernelProfiler(every int) *KernelProfiler {
	if every <= 0 {
		every = DefaultKernelSampleEvery
	}
	return &KernelProfiler{every: uint64(every), byPC: make(map[uintptr]int)}
}

// SampleEvery reports the configured 1-in-N event sampling rate.
func (kp *KernelProfiler) SampleEvery() int { return int(kp.every) }

// Take makes the deterministic sampling decision for one executed
// event: every call increments the seen counter and every Nth call
// returns true.
func (kp *KernelProfiler) Take() bool {
	kp.seen++
	return kp.seen%kp.every == 0
}

// BeginStep starts timing a sampled event executing the handler at
// pc. The at parameter is the kernel's virtual clock, accepted for
// interface completeness.
func (kp *KernelProfiler) BeginStep(pc uintptr, at time.Duration) {
	_ = at
	idx, ok := kp.byPC[pc]
	if !ok {
		name := fmt.Sprintf("pc 0x%x", pc)
		if f := runtime.FuncForPC(pc); f != nil {
			name = f.Name()
		}
		idx = len(kp.sites)
		kp.byPC[pc] = idx
		kp.sites = append(kp.sites, KernelSite{Name: name})
	}
	kp.stack = append(kp.stack, idx)
	if len(kp.stack) == 1 {
		kp.start = time.Now()
	}
}

// EndStep finishes the innermost in-flight sampled event.
func (kp *KernelProfiler) EndStep() {
	n := len(kp.stack)
	if n == 0 {
		return
	}
	idx := kp.stack[n-1]
	kp.stack = kp.stack[:n-1]
	kp.sites[idx].Samples++
	if n == 1 {
		kp.sites[idx].Wall += time.Since(kp.start)
	}
}

// Seen reports total executed events offered to the sampler.
func (kp *KernelProfiler) Seen() uint64 { return kp.seen }

// Sites returns the observed handlers in first-sample order.
func (kp *KernelProfiler) Sites() []KernelSite { return kp.sites }

// KernelSampleTypes is the value schema of wall-domain profiles:
// estimated event counts (deterministic) and measured wall time.
var KernelSampleTypes = []ValueType{{Type: "events", Unit: "count"}, {Type: "walltime", Unit: "nanoseconds"}}

// Data converts the profiler's sites into an exportable profile.
// Stacks are [package path, symbol] so flamegraphs group handlers by
// component. Event counts are scaled by the sampling rate.
func (kp *KernelProfiler) Data() *Data {
	d := NewData(KernelSampleTypes, "walltime")
	d.Comments = append(d.Comments,
		fmt.Sprintf("wall-domain kernel profile: sampled 1 in %d of %d events", kp.every, kp.seen))
	d.Period = int64(kp.every)
	d.PeriodType = ValueType{Type: "events", Unit: "count"}
	for _, s := range kp.sites {
		pkg, sym := splitSymbol(s.Name)
		d.Add([]string{pkg, sym}, int64(s.Samples*kp.every), s.Wall.Nanoseconds())
	}
	return d
}

// splitSymbol splits a runtime symbol into (package path, function).
func splitSymbol(name string) (string, string) {
	slash := strings.LastIndexByte(name, '/')
	dot := strings.IndexByte(name[slash+1:], '.')
	if dot < 0 {
		return "unknown", name
	}
	cut := slash + 1 + dot
	return name[:cut], name[cut+1:]
}

// round converts accumulated float units to a profile value.
func round(v float64) int64 {
	if v < 0 {
		return 0
	}
	return int64(v + 0.5)
}

// ValueType describes one value column of a profile, pprof-style.
type ValueType struct {
	Type string
	Unit string
}

// Sample is one stack with its values. Stack is ordered root→leaf.
type Sample struct {
	Stack  []string
	Values []int64
}

// Data is the in-memory profile model shared by both domains: an
// ordered list of stacks, each with one value per sample type. Order
// is insertion order, which keeps every export deterministic.
type Data struct {
	SampleTypes []ValueType
	// DefaultType selects the value column folded output and
	// summaries weight by; must name one of SampleTypes.
	DefaultType string
	Period      int64
	PeriodType  ValueType
	Comments    []string
	Samples     []*Sample

	index map[string]*Sample
}

// NewData creates an empty profile with the given value schema.
func NewData(types []ValueType, defaultType string) *Data {
	return &Data{
		SampleTypes: append([]ValueType(nil), types...),
		DefaultType: defaultType,
		index:       make(map[string]*Sample),
	}
}

const stackSep = "\x00"

func stackKey(stack []string) string { return strings.Join(stack, stackSep) }

// Add accumulates values into the sample with the given stack,
// creating it (in insertion order) on first use.
func (d *Data) Add(stack []string, values ...int64) {
	if len(values) != len(d.SampleTypes) {
		panic(fmt.Sprintf("profile: Add with %d values, want %d", len(values), len(d.SampleTypes)))
	}
	key := stackKey(stack)
	if d.index == nil {
		d.index = make(map[string]*Sample)
	}
	s, ok := d.index[key]
	if !ok {
		s = &Sample{Stack: append([]string(nil), stack...), Values: make([]int64, len(values))}
		d.index[key] = s
		d.Samples = append(d.Samples, s)
	}
	for i, v := range values {
		s.Values[i] += v
	}
}

// defaultIndex returns the value column index of DefaultType.
func (d *Data) defaultIndex() int {
	for i, vt := range d.SampleTypes {
		if vt.Type == d.DefaultType {
			return i
		}
	}
	return 0
}

// Total sums the default-type value over all samples.
func (d *Data) Total() int64 {
	di := d.defaultIndex()
	var total int64
	for _, s := range d.Samples {
		total += s.Values[di]
	}
	return total
}

// Merge accumulates other's samples into d, matching by stack;
// unmatched stacks append in other's order, so merging a deterministic
// sequence of profiles is itself deterministic. The value schemas must
// match.
func (d *Data) Merge(other *Data) error {
	if other == nil {
		return nil
	}
	if len(other.SampleTypes) != len(d.SampleTypes) {
		return fmt.Errorf("profile: merge schema mismatch: %v vs %v", other.SampleTypes, d.SampleTypes)
	}
	for i, vt := range d.SampleTypes {
		if other.SampleTypes[i] != vt {
			return fmt.Errorf("profile: merge schema mismatch: %v vs %v", other.SampleTypes, d.SampleTypes)
		}
	}
	for _, s := range other.Samples {
		d.Add(s.Stack, s.Values...)
	}
	for _, c := range other.Comments {
		if !contains(d.Comments, c) {
			d.Comments = append(d.Comments, c)
		}
	}
	return nil
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// sortedByWeight returns the samples ordered by descending
// default-type value, ties broken by stack text for determinism.
func (d *Data) sortedByWeight() []*Sample {
	di := d.defaultIndex()
	out := append([]*Sample(nil), d.Samples...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Values[di] != out[j].Values[di] {
			return out[i].Values[di] > out[j].Values[di]
		}
		return stackKey(out[i].Stack) < stackKey(out[j].Stack)
	})
	return out
}
