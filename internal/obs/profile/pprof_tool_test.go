package profile

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestPprofToolParses feeds an exported profile to `go tool pprof -raw`
// — the real consumer — and checks the decoded content survives. It
// skips when the go tool is unavailable (stripped CI images).
func TestPprofToolParses(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not in PATH")
	}
	if err := exec.Command(goBin, "tool", "pprof", "-h").Run(); err != nil {
		// pprof exits non-zero on -h in some versions; only skip when
		// the tool itself is missing.
		if ee, ok := err.(*exec.ExitError); !ok || len(ee.Stderr) == 0 && ee.ExitCode() < 0 {
			t.Skipf("go tool pprof unavailable: %v", err)
		}
	}

	path := filepath.Join(t.TempDir(), "card.cost.pprof")
	if err := testProfile().WritePprofFile(path); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(goBin, "tool", "pprof", "-raw", path).CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof -raw: %v\n%s", err, out)
	}
	raw := string(out)
	for _, want := range []string{
		"cost/units",
		"packets/count",
		"match",
		"rule 001: allow tcp",
		"target (EFW)",
	} {
		if !strings.Contains(raw, want) {
			t.Errorf("pprof -raw output missing %q:\n%s", want, raw)
		}
	}
}
