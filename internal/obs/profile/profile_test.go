package profile

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

// funcPCForTest mirrors the sim kernel's funcPC: the pc it hands to
// BeginStep for a handler func value.
func funcPCForTest(fn any) uintptr { return reflect.ValueOf(fn).Pointer() }

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{
		PhaseParse:      "parse",
		PhaseMatch:      "match",
		PhaseCryptoSeal: "crypto.seal",
		PhaseCryptoOpen: "crypto.open",
		PhaseVerdict:    "verdict",
		NumPhases:       "phase?",
	}
	for p, s := range want {
		if got := p.String(); got != s {
			t.Errorf("Phase(%d).String() = %q, want %q", p, got, s)
		}
	}
}

func TestDirProfileRecord(t *testing.T) {
	var d DirProfile
	d.record(3, 2, 1.0, 0.6, 0)   // matched rule 2 after 3 traversals, no crypto
	d.record(3, 0, 1.0, 0.6, 0)   // default action after full walk
	d.record(1, 1, 1.0, 0.2, 2.5) // matched rule 1, paid crypto
	d.record(0, -1, 1.0, 0, 0)    // raw frame: no walk, matched clamped to 0

	if d.Packets != 4 {
		t.Fatalf("Packets = %d, want 4", d.Packets)
	}
	if d.CryptoPkts != 1 || d.CryptoUnits != 2.5 {
		t.Fatalf("crypto = (%d pkts, %g units), want (1, 2.5)", d.CryptoPkts, d.CryptoUnits)
	}
	if got := d.Units(); got != 4*1.0+1.4+2.5 {
		t.Fatalf("Units() = %g, want %g", got, 4*1.0+1.4+2.5)
	}
	wantWalks := []uint64{1, 1, 0, 2}
	for i, w := range wantWalks {
		if d.Walks[i] != w {
			t.Errorf("Walks[%d] = %d, want %d", i, d.Walks[i], w)
		}
	}
	wantHits := []uint64{2, 1, 1}
	for i, h := range wantHits {
		if d.Hits[i] != h {
			t.Errorf("Hits[%d] = %d, want %d", i, d.Hits[i], h)
		}
	}
}

// TestAppendCostSamplesAttribution checks the per-rule suffix-sum
// reconstruction: rule i's match samples must count every packet that
// traversed at least i rules, and the attributed units must reconcile
// exactly with the profiler's running totals.
func TestAppendCostSamplesAttribution(t *testing.T) {
	cp := NewCardProfiler("target", "EFW", 0.5)
	cp.RuleText = func(i int) string {
		if i == 2 {
			return "allow tcp; dst 10.0.0.1" // ";" must be sanitized
		}
		return ""
	}
	// 10 packets stop at rule 1, 5 walk to rule 3, 2 walk all 4 rules
	// to the default action.
	for i := 0; i < 10; i++ {
		cp.RecordRx(1, 1, 1, 0.5, 0)
	}
	for i := 0; i < 5; i++ {
		cp.RecordRx(3, 3, 1, 1.5, 0)
	}
	for i := 0; i < 2; i++ {
		cp.RecordRx(4, 0, 1, 2.0, 0)
	}
	cp.RecordTx(2, 2, 1, 1.0, 3.0)

	d := NewData(CostSampleTypes, "cost")
	cp.AppendCostSamples(d)

	find := func(stack ...string) *Sample {
		t.Helper()
		key := stackKey(stack)
		for _, s := range d.Samples {
			if stackKey(s.Stack) == key {
				return s
			}
		}
		t.Fatalf("no sample with stack %v in %d samples", stack, len(d.Samples))
		return nil
	}

	// Rule 1 examined by all 17 rx packets, rule 3 by 7, rule 4 by 2.
	card := "target (EFW)"
	if s := find(card, "rx", "match", "rule 001"); s.Values[1] != 17 || s.Values[0] != round(0.5*17) {
		t.Errorf("rule 1: values = %v, want [%d 17]", s.Values, round(0.5*17))
	}
	if s := find(card, "rx", "match", "rule 003"); s.Values[1] != 7 {
		t.Errorf("rule 3: packets = %d, want 7", s.Values[1])
	}
	if s := find(card, "rx", "match", "rule 004"); s.Values[1] != 2 {
		t.Errorf("rule 4: packets = %d, want 2", s.Values[1])
	}
	// Rule 2's frame carries sanitized DSL text.
	s2 := find(card, "rx", "match", "rule 002: allow tcp, dst 10.0.0.1")
	if s2.Values[1] != 7 {
		t.Errorf("rule 2: packets = %d, want 7", s2.Values[1])
	}
	// Verdict samples: 15 matched packets across rules, 2 defaults.
	if s := find(card, "rx", "verdict", "default"); s.Values[1] != 2 {
		t.Errorf("default verdicts = %d, want 2", s.Values[1])
	}
	// Crypto only on tx (seal).
	if s := find(card, "tx", "crypto.seal"); s.Values[0] != 3 || s.Values[1] != 1 {
		t.Errorf("crypto.seal values = %v, want [3 1]", s.Values)
	}

	// Exact reconciliation: profile total == profiler unit total.
	// round() is applied per-sample, so allow the per-sample rounding
	// slack (< 1 unit per sample).
	total := d.Total()
	units := cp.Units()
	if diff := float64(total) - units; diff > float64(len(d.Samples)) || diff < -float64(len(d.Samples)) {
		t.Errorf("profile total %d vs profiler units %g: outside rounding slack", total, units)
	}
	for _, s := range d.Samples {
		if strings.Contains(strings.Join(s.Stack, ""), ";") {
			t.Errorf("frame contains reserved ';': %v", s.Stack)
		}
	}
}

func TestDataAddMergeDeterminism(t *testing.T) {
	build := func() *Data {
		d := NewData(CostSampleTypes, "cost")
		d.Add([]string{"a", "b"}, 10, 1)
		d.Add([]string{"a", "c"}, 20, 2)
		d.Add([]string{"a", "b"}, 5, 1) // accumulate into existing
		return d
	}
	d := build()
	if len(d.Samples) != 2 {
		t.Fatalf("Samples = %d, want 2 (dedup by stack)", len(d.Samples))
	}
	if d.Samples[0].Values[0] != 15 || d.Samples[0].Values[1] != 2 {
		t.Fatalf("accumulated values = %v, want [15 2]", d.Samples[0].Values)
	}
	if d.Total() != 35 {
		t.Fatalf("Total = %d, want 35", d.Total())
	}

	other := NewData(CostSampleTypes, "cost")
	other.Add([]string{"a", "c"}, 1, 1)
	other.Add([]string{"z"}, 100, 7)
	other.Comments = []string{"note"}
	if err := d.Merge(other); err != nil {
		t.Fatal(err)
	}
	if err := d.Merge(nil); err != nil {
		t.Fatal(err)
	}
	if len(d.Samples) != 3 || d.Samples[2].Stack[0] != "z" {
		t.Fatalf("merge order broken: %d samples", len(d.Samples))
	}
	if d.Samples[1].Values[0] != 21 {
		t.Fatalf("merged a;c = %v, want 21", d.Samples[1].Values)
	}
	if len(d.Comments) != 1 || d.Comments[0] != "note" {
		t.Fatalf("comments = %v", d.Comments)
	}
	// Merging the same comment again must not duplicate it.
	if err := d.Merge(other); err != nil {
		t.Fatal(err)
	}
	if len(d.Comments) != 1 {
		t.Fatalf("comment deduped: %v", d.Comments)
	}

	// Schema mismatch is an error, not silent corruption.
	bad := NewData(KernelSampleTypes, "walltime")
	bad.Add([]string{"x"}, 1, 1)
	if err := d.Merge(bad); err == nil {
		t.Fatal("Merge with mismatched schema: want error")
	}

	// Same build sequence → byte-identical exports.
	var b1, b2 bytes.Buffer
	if err := build().WriteFolded(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteFolded(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("identical builds produced different folded bytes")
	}
}

func TestAddArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with wrong arity: want panic")
		}
	}()
	NewData(CostSampleTypes, "cost").Add([]string{"a"}, 1)
}

func testProfile() *Data {
	d := NewData(CostSampleTypes, "cost")
	d.Comments = append(d.Comments, "test profile")
	d.Period = 1
	d.PeriodType = ValueType{Type: "cost", Unit: "units"}
	d.Add([]string{"target (EFW)", "rx", "parse"}, 100, 50)
	d.Add([]string{"target (EFW)", "rx", "match", "rule 001: allow tcp"}, 250, 50)
	d.Add([]string{"target (EFW)", "rx", "crypto.open"}, 75, 10)
	d.Add([]string{"target (EFW)", "rx", "verdict", "default"}, 0, 3)
	return d
}

func TestPprofRoundTrip(t *testing.T) {
	d := testProfile()
	var buf bytes.Buffer
	if err := d.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	// gzip magic
	if b := buf.Bytes(); len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Fatal("pprof output not gzipped")
	}
	got, err := ReadPprof(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertDataEqual(t, d, got)

	// Round-tripping again must be byte-stable.
	var buf2 bytes.Buffer
	if err := got.WritePprof(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("pprof encode(decode(encode)) not byte-identical")
	}
}

func TestFoldedRoundTrip(t *testing.T) {
	d := testProfile()
	var buf bytes.Buffer
	if err := d.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The zero-cost verdict sample must be skipped, others present.
	if strings.Contains(out, "verdict") {
		t.Errorf("zero-weight sample in folded output:\n%s", out)
	}
	if !strings.Contains(out, "target (EFW);rx;match;rule 001: allow tcp 250\n") {
		t.Errorf("missing match line in folded output:\n%s", out)
	}
	got, err := ParseFolded(strings.NewReader(out), ValueType{Type: "cost", Unit: "units"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Total() != 425 {
		t.Fatalf("parsed total = %d, want 425", got.Total())
	}
	if len(got.Samples) != 3 {
		t.Fatalf("parsed %d samples, want 3", len(got.Samples))
	}
	if s := got.Samples[1]; s.Stack[3] != "rule 001: allow tcp" || s.Values[0] != 250 {
		t.Fatalf("parsed sample = %v %v", s.Stack, s.Values)
	}

	// Blank lines and comments are tolerated; garbage is not.
	if _, err := ParseFolded(strings.NewReader("\n# comment\na;b 5\n"), ValueType{Type: "x", Unit: "y"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseFolded(strings.NewReader("nocount\n"), ValueType{Type: "x", Unit: "y"}); err == nil {
		t.Fatal("folded line without count: want error")
	}
}

func TestReadProfileFileSniffing(t *testing.T) {
	d := testProfile()
	dir := t.TempDir()

	pprofPath := dir + "/p.pprof"
	if err := d.WritePprofFile(pprofPath); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfileFile(pprofPath)
	if err != nil {
		t.Fatal(err)
	}
	assertDataEqual(t, d, got)

	foldedPath := dir + "/p.folded"
	if err := d.WriteFoldedFile(foldedPath); err != nil {
		t.Fatal(err)
	}
	got, err = ReadProfileFile(foldedPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total() != 425 {
		t.Fatalf("folded-sniffed total = %d, want 425", got.Total())
	}
}

func TestSummaryAndDiff(t *testing.T) {
	d := testProfile()
	sum := d.Summary(10)
	for _, want := range []string{
		"cost", "units",
		"# test profile",
		"Phases:",
		"target (EFW);rx;match",
		"Top 10 stacks:",
	} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary missing %q:\n%s", want, sum)
		}
	}
	// The match phase (250 units of 425) leads the rollup.
	phases := sum[strings.Index(sum, "Phases:"):]
	if mi, pi := strings.Index(phases, ";match"), strings.Index(phases, ";parse"); mi < 0 || pi < 0 || mi > pi {
		t.Errorf("match phase not ranked above parse:\n%s", phases)
	}

	newD := testProfile()
	newD.Add([]string{"target (EFW)", "rx", "match", "rule 001: allow tcp"}, 100, 20)
	diff := Diff(d, newD, 10)
	for _, want := range []string{
		"total 425 -> 525 (+100)",
		"Phase deltas:",
		"+100",
		"rule 001",
	} {
		if !strings.Contains(diff, want) {
			t.Errorf("Diff missing %q:\n%s", want, diff)
		}
	}
	// Identical profiles: no per-stack differences.
	same := Diff(d, testProfile(), 10)
	if !strings.Contains(same, "(no per-stack differences)") {
		t.Errorf("self-diff should report no differences:\n%s", same)
	}
}

func TestKernelProfilerSampling(t *testing.T) {
	kp := NewKernelProfiler(4)
	if kp.SampleEvery() != 4 {
		t.Fatalf("SampleEvery = %d", kp.SampleEvery())
	}
	taken := 0
	for i := 0; i < 40; i++ {
		if kp.Take() {
			taken++
			kp.BeginStep(funcPCForTest(TestKernelProfilerSampling), time.Duration(i))
			kp.EndStep()
		}
	}
	if taken != 10 {
		t.Fatalf("took %d of 40 events at 1-in-4, want 10", taken)
	}
	if kp.Seen() != 40 {
		t.Fatalf("Seen = %d, want 40", kp.Seen())
	}
	sites := kp.Sites()
	if len(sites) != 1 || sites[0].Samples != 10 {
		t.Fatalf("sites = %+v, want one site with 10 samples", sites)
	}
	if !strings.Contains(sites[0].Name, "TestKernelProfilerSampling") {
		t.Errorf("site name = %q, want test symbol", sites[0].Name)
	}

	d := kp.Data()
	if d.DefaultType != "walltime" || d.Period != 4 {
		t.Fatalf("Data schema: default=%q period=%d", d.DefaultType, d.Period)
	}
	// Event counts scale by the sampling rate: 10 samples × 4.
	if len(d.Samples) != 1 || d.Samples[0].Values[0] != 40 {
		t.Fatalf("scaled events = %v, want 40", d.Samples)
	}
	// Stacks are [package path, symbol].
	if got := d.Samples[0].Stack[0]; got != "barbican/internal/obs/profile" {
		t.Errorf("package frame = %q", got)
	}
}

func TestKernelProfilerNesting(t *testing.T) {
	kp := NewKernelProfiler(1)
	pc := funcPCForTest(TestKernelProfilerNesting)
	kp.Take()
	kp.BeginStep(pc, 0)
	kp.Take()
	kp.BeginStep(pc, 0) // nested step (event callback drove the kernel)
	time.Sleep(time.Millisecond)
	kp.EndStep()
	kp.EndStep()
	// Unbalanced EndStep must be a no-op, not a panic.
	kp.EndStep()

	sites := kp.Sites()
	if len(sites) != 1 || sites[0].Samples != 2 {
		t.Fatalf("sites = %+v, want one site with 2 samples", sites)
	}
	if sites[0].Wall <= 0 {
		t.Errorf("outermost step recorded no wall time")
	}
}

func TestSplitSymbol(t *testing.T) {
	cases := []struct{ in, pkg, sym string }{
		{"barbican/internal/nic.(*NIC).finishPending-fm", "barbican/internal/nic", "(*NIC).finishPending-fm"},
		{"main.run", "main", "run"},
		{"nodots", "unknown", "nodots"},
	}
	for _, c := range cases {
		pkg, sym := splitSymbol(c.in)
		if pkg != c.pkg || sym != c.sym {
			t.Errorf("splitSymbol(%q) = (%q, %q), want (%q, %q)", c.in, pkg, sym, c.pkg, c.sym)
		}
	}
}

func assertDataEqual(t *testing.T, want, got *Data) {
	t.Helper()
	if len(got.SampleTypes) != len(want.SampleTypes) {
		t.Fatalf("SampleTypes = %v, want %v", got.SampleTypes, want.SampleTypes)
	}
	for i := range want.SampleTypes {
		if got.SampleTypes[i] != want.SampleTypes[i] {
			t.Fatalf("SampleTypes[%d] = %v, want %v", i, got.SampleTypes[i], want.SampleTypes[i])
		}
	}
	if got.DefaultType != want.DefaultType {
		t.Errorf("DefaultType = %q, want %q", got.DefaultType, want.DefaultType)
	}
	if got.Period != want.Period || got.PeriodType != want.PeriodType {
		t.Errorf("period = %d %v, want %d %v", got.Period, got.PeriodType, want.Period, want.PeriodType)
	}
	if len(got.Comments) != len(want.Comments) {
		t.Fatalf("Comments = %v, want %v", got.Comments, want.Comments)
	}
	if len(got.Samples) != len(want.Samples) {
		t.Fatalf("%d samples, want %d", len(got.Samples), len(want.Samples))
	}
	for i, ws := range want.Samples {
		gs := got.Samples[i]
		if stackKey(gs.Stack) != stackKey(ws.Stack) {
			t.Errorf("sample %d stack = %v, want %v", i, gs.Stack, ws.Stack)
		}
		for j := range ws.Values {
			if gs.Values[j] != ws.Values[j] {
				t.Errorf("sample %d values = %v, want %v", i, gs.Values, ws.Values)
			}
		}
	}
}
