// Folded-stack text export/import, the human-readable sibling of the
// pprof encoding: one line per stack, frames root-first joined by
// ';', then a space and the default-type value. flamegraph.pl and
// speedscope both consume this directly. Frame names never contain
// ';' (sanitized at frame construction); the trailing count is split
// off at the LAST whitespace, matching flamegraph.pl's parser, so
// spaces inside frames are fine.
package profile

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// WriteFolded writes the profile as folded stacks weighted by the
// default value column. Zero-weight samples are skipped (a flamegraph
// cannot render them); sample order is preserved.
func (d *Data) WriteFolded(w io.Writer) error {
	bw := bufio.NewWriter(w)
	di := d.defaultIndex()
	for _, s := range d.Samples {
		if s.Values[di] == 0 {
			continue
		}
		if _, err := fmt.Fprintf(bw, "%s %d\n", strings.Join(s.Stack, ";"), s.Values[di]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFoldedFile writes folded stacks to path.
func (d *Data) WriteFoldedFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteFolded(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ParseFolded reads folded stacks into a single-valued profile with
// the given value type.
func ParseFolded(r io.Reader, vt ValueType) (*Data, error) {
	d := NewData([]ValueType{vt}, vt.Type)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cut := strings.LastIndexAny(line, " \t")
		if cut < 0 {
			return nil, fmt.Errorf("profile: folded line %d: no count: %q", lineNo, line)
		}
		n, err := strconv.ParseInt(strings.TrimSpace(line[cut+1:]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("profile: folded line %d: bad count: %v", lineNo, err)
		}
		d.Add(strings.Split(strings.TrimSpace(line[:cut]), ";"), n)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// ReadProfileFile loads either encoding: gzipped pprof (sniffed by
// magic bytes) or folded-stack text.
func ReadProfileFile(path string) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [2]byte
	n, _ := io.ReadFull(f, magic[:])
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if n == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		return ReadPprof(f)
	}
	return ParseFolded(f, ValueType{Type: "samples", Unit: "count"})
}

// phaseKey rolls a sample up to its phase: the first three frames for
// card-cost stacks ("host (dev);rx;match"), the full stack otherwise.
func phaseKey(stack []string) string {
	if len(stack) > 3 {
		return strings.Join(stack[:3], ";")
	}
	return strings.Join(stack, ";")
}

// rollup aggregates default-type values by phaseKey, preserving first
// appearance order.
func (d *Data) rollup() ([]string, map[string]int64) {
	di := d.defaultIndex()
	var order []string
	vals := make(map[string]int64)
	for _, s := range d.Samples {
		k := phaseKey(s.Stack)
		if _, ok := vals[k]; !ok {
			order = append(order, k)
		}
		vals[k] += s.Values[di]
	}
	return order, vals
}

// Summary renders a deterministic top-N table: a per-phase rollup
// (every sample counted) followed by the top full stacks by weight.
// It is the body of `barbican profile <file>`.
func (d *Data) Summary(top int) string {
	if top <= 0 {
		top = 20
	}
	var b strings.Builder
	unit := "samples"
	if i := d.defaultIndex(); i < len(d.SampleTypes) {
		unit = d.SampleTypes[i].Unit
	}
	total := d.Total()
	fmt.Fprintf(&b, "profile: %d samples, %d %s total (%s)\n", len(d.Samples), total, unit, d.DefaultType)
	for _, c := range d.Comments {
		fmt.Fprintf(&b, "# %s\n", c)
	}

	order, vals := d.rollup()
	sort.SliceStable(order, func(i, j int) bool {
		if vals[order[i]] != vals[order[j]] {
			return vals[order[i]] > vals[order[j]]
		}
		return order[i] < order[j]
	})
	b.WriteString("\nPhases:\n")
	fmt.Fprintf(&b, "  %12s  %6s  %s\n", unit, "%", "phase")
	for _, k := range order {
		fmt.Fprintf(&b, "  %12d  %5.1f%%  %s\n", vals[k], pct(vals[k], total), k)
	}

	fmt.Fprintf(&b, "\nTop %d stacks:\n", top)
	fmt.Fprintf(&b, "  %12s  %6s  %s\n", unit, "%", "stack")
	di := d.defaultIndex()
	for i, s := range d.sortedByWeight() {
		if i >= top {
			break
		}
		fmt.Fprintf(&b, "  %12d  %5.1f%%  %s\n", s.Values[di], pct(s.Values[di], total), strings.Join(s.Stack, ";"))
	}
	return b.String()
}

func pct(v, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(v) / float64(total)
}

// Diff renders per-phase and per-stack deltas of new against old
// (positive = new costs more), sorted by absolute delta. It is the
// body of `barbican profile -diff old new` and bench.sh
// --profile-compare.
func Diff(oldD, newD *Data, top int) string {
	if top <= 0 {
		top = 20
	}
	var b strings.Builder
	unit := "samples"
	if i := newD.defaultIndex(); i < len(newD.SampleTypes) {
		unit = newD.SampleTypes[i].Unit
	}
	oldTotal, newTotal := oldD.Total(), newD.Total()
	fmt.Fprintf(&b, "profile diff (%s, %s): total %d -> %d (%+d)\n",
		newD.DefaultType, unit, oldTotal, newTotal, newTotal-oldTotal)

	oldOrder, oldVals := oldD.rollup()
	newOrder, newVals := newD.rollup()
	keys := append([]string(nil), oldOrder...)
	for _, k := range newOrder {
		if _, ok := oldVals[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.SliceStable(keys, func(i, j int) bool {
		di := abs64(newVals[keys[i]] - oldVals[keys[i]])
		dj := abs64(newVals[keys[j]] - oldVals[keys[j]])
		if di != dj {
			return di > dj
		}
		return keys[i] < keys[j]
	})
	b.WriteString("\nPhase deltas:\n")
	fmt.Fprintf(&b, "  %12s  %12s  %12s  %s\n", "old", "new", "delta", "phase")
	for _, k := range keys {
		o, n := oldVals[k], newVals[k]
		fmt.Fprintf(&b, "  %12d  %12d  %+12d  %s\n", o, n, n-o, k)
	}

	// Per-stack deltas on the full stacks.
	type entry struct {
		stack    string
		old, new int64
	}
	byStack := make(map[string]*entry)
	var seq []*entry
	get := func(key string) *entry {
		e, ok := byStack[key]
		if !ok {
			e = &entry{stack: key}
			byStack[key] = e
			seq = append(seq, e)
		}
		return e
	}
	oi, ni := oldD.defaultIndex(), newD.defaultIndex()
	for _, s := range oldD.Samples {
		get(strings.Join(s.Stack, ";")).old += s.Values[oi]
	}
	for _, s := range newD.Samples {
		get(strings.Join(s.Stack, ";")).new += s.Values[ni]
	}
	sort.SliceStable(seq, func(i, j int) bool {
		di, dj := abs64(seq[i].new-seq[i].old), abs64(seq[j].new-seq[j].old)
		if di != dj {
			return di > dj
		}
		return seq[i].stack < seq[j].stack
	})
	fmt.Fprintf(&b, "\nTop %d stack deltas:\n", top)
	fmt.Fprintf(&b, "  %12s  %12s  %12s  %s\n", "old", "new", "delta", "stack")
	shown := 0
	for _, e := range seq {
		if shown >= top {
			break
		}
		if e.new == e.old {
			continue
		}
		fmt.Fprintf(&b, "  %12d  %12d  %+12d  %s\n", e.old, e.new, e.new-e.old, e.stack)
		shown++
	}
	if shown == 0 {
		b.WriteString("  (no per-stack differences)\n")
	}
	return b.String()
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
