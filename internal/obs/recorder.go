package obs

import (
	"time"

	"barbican/internal/sim"
)

// DefaultSampleEvery is the flight recorder's default virtual-time tick.
const DefaultSampleEvery = 50 * time.Millisecond

// DefaultTickLimit bounds the retained timeline (oldest ticks dropped).
const DefaultTickLimit = 1 << 16

// Tick is one flight-recorder sample: all registered series read at one
// virtual instant. Values are aligned with the registry's registration
// order at sample time; series registered later than a tick simply have
// no value there (exporters render the cell empty).
type Tick struct {
	At     time.Duration
	Values []float64
}

// Point is one (virtual time, value) observation of a single series.
type Point struct {
	T time.Duration
	V float64
}

// SeriesData is one series' recorded timeline.
type SeriesData struct {
	Info   SeriesInfo
	Points []Point
}

// Rate returns the per-second first difference of the series — the
// instantaneous rate for counter timelines (e.g. bytes/s from a
// cumulative byte count). The result has one point per interval,
// stamped at the interval's end.
func (sd SeriesData) Rate() []Point {
	if len(sd.Points) < 2 {
		return nil
	}
	out := make([]Point, 0, len(sd.Points)-1)
	for i := 1; i < len(sd.Points); i++ {
		dt := sd.Points[i].T - sd.Points[i-1].T
		if dt <= 0 {
			continue
		}
		out = append(out, Point{
			T: sd.Points[i].T,
			V: (sd.Points[i].V - sd.Points[i-1].V) / dt.Seconds(),
		})
	}
	return out
}

// Recorder samples a registry on a fixed virtual-time tick, building
// per-run time series. It is the component that turns endpoint scalars
// ("0 Mbps available") into a time-resolved view of *how* a run got
// there (goodput collapsing as a flood saturates the card).
//
// The recorder schedules ordinary kernel events; it draws nothing from
// the kernel's random source, so attaching one perturbs only event
// sequence numbers, never the simulated outcome's distribution.
type Recorder struct {
	kernel  *sim.Kernel
	reg     *Registry
	every   time.Duration
	limit   int
	ticks   []Tick
	dropped uint64
	running bool
	ev      *sim.Event
}

// NewRecorder creates a recorder sampling reg on the kernel's clock.
// every <= 0 defaults to DefaultSampleEvery.
func NewRecorder(k *sim.Kernel, reg *Registry, every time.Duration) *Recorder {
	if every <= 0 {
		every = DefaultSampleEvery
	}
	return &Recorder{kernel: k, reg: reg, every: every, limit: DefaultTickLimit}
}

// Every returns the sampling interval.
func (rec *Recorder) Every() time.Duration { return rec.every }

// Start samples immediately and then on every tick until Stop. Starting
// a running recorder is a no-op.
func (rec *Recorder) Start() {
	if rec.running {
		return
	}
	rec.running = true
	rec.Sample()
	rec.schedule()
}

// Stop cancels the pending tick. The recorded timeline is retained.
func (rec *Recorder) Stop() {
	rec.running = false
	if rec.ev != nil {
		rec.ev.Cancel()
		rec.ev = nil
	}
}

// Sample takes one sample at the current virtual time, independent of
// the periodic tick (e.g. a final sample after the measurement window).
func (rec *Recorder) Sample() {
	t := Tick{At: rec.kernel.Now()}
	t.Values = rec.reg.gatherValues(nil)
	if len(rec.ticks) >= rec.limit {
		rec.ticks = rec.ticks[1:]
		rec.dropped++
	}
	rec.ticks = append(rec.ticks, t)
}

func (rec *Recorder) schedule() {
	rec.ev = rec.kernel.After(rec.every, func() {
		if !rec.running {
			return
		}
		rec.Sample()
		rec.schedule()
	})
}

// Ticks returns the recorded timeline in order.
func (rec *Recorder) Ticks() []Tick { return rec.ticks }

// Dropped returns how many ticks were evicted by the retention limit.
func (rec *Recorder) Dropped() uint64 { return rec.dropped }

// Series extracts one series' timeline by its canonical ID, skipping
// ticks taken before the series was registered.
func (rec *Recorder) Series(id string) (SeriesData, bool) {
	infos := rec.reg.Infos()
	idx := -1
	var info SeriesInfo
	for i, in := range infos {
		if in.ID == id {
			idx, info = i, in
			break
		}
	}
	if idx < 0 {
		return SeriesData{}, false
	}
	sd := SeriesData{Info: info}
	for _, t := range rec.ticks {
		if idx < len(t.Values) {
			sd.Points = append(sd.Points, Point{T: t.At, V: t.Values[idx]})
		}
	}
	return sd, true
}

// AllSeries returns every recorded series, in registration order.
func (rec *Recorder) AllSeries() []SeriesData {
	infos := rec.reg.Infos()
	out := make([]SeriesData, len(infos))
	for i, in := range infos {
		out[i] = SeriesData{Info: in}
	}
	for _, t := range rec.ticks {
		for i := range out {
			if i < len(t.Values) {
				out[i].Points = append(out[i].Points, Point{T: t.At, V: t.Values[i]})
			}
		}
	}
	return out
}

// PublishKernel registers the kernel's own observability surface:
// events executed, pending queue length, virtual clock, wall-clock
// execution time, and the virtual/wall speedup ratio.
func PublishKernel(reg *Registry, k *sim.Kernel, labels ...Label) {
	reg.MustRegisterFunc("sim_events_executed_total",
		"Events executed by the simulation kernel.", KindCounter,
		func() float64 { return float64(k.Executed()) }, labels...)
	reg.MustRegisterFunc("sim_pending_events",
		"Events currently queued in the kernel.", KindGauge,
		func() float64 { return float64(k.Len()) }, labels...)
	reg.MustRegisterFunc("sim_virtual_time_seconds",
		"Current virtual clock.", KindCounter,
		func() float64 { return k.Now().Seconds() }, labels...)
	reg.MustRegisterFunc("sim_wall_busy_seconds",
		"Wall-clock time spent executing events.", KindCounter,
		func() float64 { return k.WallBusy().Seconds() }, labels...)
	reg.MustRegisterFunc("sim_speedup_ratio",
		"Virtual seconds simulated per wall-clock second.", KindGauge,
		k.Speedup, labels...)
}
