package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"barbican/internal/sim"
)

func TestRegistryGatherOrderAndValues(t *testing.T) {
	reg := NewRegistry()
	var a, b float64
	reg.MustRegisterFunc("aaa_total", "first", KindCounter, func() float64 { return a })
	reg.MustRegisterFunc("bbb", "second", KindGauge, func() float64 { return b }, L("host", "target"))
	a, b = 3, 7

	got := reg.Gather()
	if len(got) != 2 || reg.Len() != 2 {
		t.Fatalf("gathered %d series, want 2", len(got))
	}
	if got[0].ID != "aaa_total" || got[0].Value != 3 {
		t.Errorf("series 0 = %q %v", got[0].ID, got[0].Value)
	}
	if got[1].ID != `bbb{host="target"}` || got[1].Value != 7 {
		t.Errorf("series 1 = %q %v", got[1].ID, got[1].Value)
	}
	if got[1].Kind != KindGauge || got[1].Kind.String() != "gauge" {
		t.Errorf("series 1 kind = %v", got[1].Kind)
	}
}

func TestRegistryLabelOrderCanonical(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegisterFunc("m", "", KindGauge, func() float64 { return 0 },
		L("zeta", "1"), L("alpha", "2"))
	id := reg.Infos()[0].ID
	if id != `m{alpha="2",zeta="1"}` {
		t.Errorf("id = %q, want sorted-key label order", id)
	}
}

func TestRegistryRejectsDuplicatesAndBadArgs(t *testing.T) {
	reg := NewRegistry()
	read := func() float64 { return 0 }
	if err := reg.RegisterFunc("dup", "", KindCounter, read, L("a", "b")); err != nil {
		t.Fatal(err)
	}
	// Same identity under a different label ordering must collide.
	if err := reg.RegisterFunc("dup", "", KindCounter, read, L("a", "b")); err == nil {
		t.Error("duplicate series accepted")
	}
	if err := reg.RegisterFunc("", "", KindCounter, read); err == nil {
		t.Error("empty name accepted")
	}
	if err := reg.RegisterFunc("nilread", "", KindCounter, nil); err == nil {
		t.Error("nil read func accepted")
	}
}

func TestOwnedInstruments(t *testing.T) {
	reg := NewRegistry()
	c, err := reg.NewCounter("c_total", "")
	if err != nil {
		t.Fatal(err)
	}
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	if c.Value() != 3 {
		t.Errorf("counter = %v, want 3", c.Value())
	}
	g, err := reg.NewGauge("g", "")
	if err != nil {
		t.Fatal(err)
	}
	g.Set(10)
	g.Add(-4)
	if g.Value() != 6 {
		t.Errorf("gauge = %v, want 6", g.Value())
	}
}

func TestHistogramExpansion(t *testing.T) {
	reg := NewRegistry()
	h, err := reg.NewHistogram("lat_ms", "latency", []float64{1, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 110.5 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
	want := map[string]float64{
		`lat_ms_bucket{le="1"}`:    1,
		`lat_ms_bucket{le="5"}`:    2,
		`lat_ms_bucket{le="10"}`:   3,
		`lat_ms_bucket{le="+Inf"}`: 4,
		"lat_ms_sum":               110.5,
		"lat_ms_count":             4,
	}
	for _, sv := range reg.Gather() {
		w, ok := want[sv.ID]
		if !ok {
			t.Errorf("unexpected series %q", sv.ID)
			continue
		}
		if sv.Value != w {
			t.Errorf("%s = %v, want %v", sv.ID, sv.Value, w)
		}
		delete(want, sv.ID)
	}
	for id := range want {
		t.Errorf("missing series %q", id)
	}

	if _, err := reg.NewHistogram("bad", "", []float64{5, 1}); err == nil {
		t.Error("unsorted bounds accepted")
	}
}

func TestRecorderTicksAndRate(t *testing.T) {
	k := sim.NewKernel()
	reg := NewRegistry()
	var bytesSent float64
	reg.MustRegisterFunc("tx_bytes_total", "", KindCounter, func() float64 { return bytesSent })

	rec := NewRecorder(k, reg, 100*time.Millisecond)
	rec.Start()
	// 1000 bytes every 100ms → rate 10 kB/s.
	for i := 1; i <= 5; i++ {
		k.After(time.Duration(i)*100*time.Millisecond-time.Millisecond, func() { bytesSent += 1000 })
	}
	if err := k.RunUntil(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	rec.Stop()

	ticks := rec.Ticks()
	if len(ticks) != 6 { // t=0 plus 5 periodic ticks
		t.Fatalf("ticks = %d, want 6", len(ticks))
	}
	if ticks[0].At != 0 || ticks[5].At != 500*time.Millisecond {
		t.Errorf("tick times %v .. %v", ticks[0].At, ticks[5].At)
	}

	sd, ok := rec.Series("tx_bytes_total")
	if !ok {
		t.Fatal("series not found")
	}
	rate := sd.Rate()
	if len(rate) != 5 {
		t.Fatalf("rate points = %d, want 5", len(rate))
	}
	for _, p := range rate {
		if math.Abs(p.V-10000) > 1e-6 {
			t.Errorf("rate at %v = %v, want 10000", p.T, p.V)
		}
	}

	if _, ok := rec.Series("no_such_series"); ok {
		t.Error("lookup of unknown series succeeded")
	}
	// Stop must cancel the pending tick: running further adds nothing.
	k.After(time.Second, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.Ticks()) != 6 {
		t.Errorf("ticks after Stop = %d, want still 6", len(rec.Ticks()))
	}
}

func TestRecorderLateRegistration(t *testing.T) {
	k := sim.NewKernel()
	reg := NewRegistry()
	reg.MustRegisterFunc("early", "", KindGauge, func() float64 { return 1 })
	rec := NewRecorder(k, reg, 100*time.Millisecond)
	rec.Start()
	k.After(150*time.Millisecond, func() {
		reg.MustRegisterFunc("late", "", KindGauge, func() float64 { return 2 })
	})
	if err := k.RunUntil(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	rec.Stop()

	early, _ := rec.Series("early")
	late, ok := rec.Series("late")
	if !ok {
		t.Fatal("late series not found")
	}
	if len(early.Points) != 4 {
		t.Errorf("early points = %d, want 4", len(early.Points))
	}
	// Ticks at 0 and 100ms predate the late registration.
	if len(late.Points) != 2 {
		t.Errorf("late points = %d, want 2", len(late.Points))
	}
	for _, p := range late.Points {
		if p.T < 150*time.Millisecond {
			t.Errorf("late series has a point at %v, before registration", p.T)
		}
	}
}

func TestPublishKernel(t *testing.T) {
	k := sim.NewKernel()
	reg := NewRegistry()
	PublishKernel(reg, k)
	k.After(time.Second, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	got := make(map[string]float64)
	for _, sv := range reg.Gather() {
		got[sv.ID] = sv.Value
	}
	if got["sim_events_executed_total"] != 1 {
		t.Errorf("events executed = %v, want 1", got["sim_events_executed_total"])
	}
	if got["sim_virtual_time_seconds"] != 1 {
		t.Errorf("virtual time = %v, want 1", got["sim_virtual_time_seconds"])
	}
	if _, ok := got["sim_speedup_ratio"]; !ok {
		t.Error("speedup ratio not registered")
	}
}

func TestPromTextGroupsInterleavedFamilies(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegisterFunc("f_total", "fam f", KindCounter, func() float64 { return 1 }, L("host", "a"))
	reg.MustRegisterFunc("g_total", "fam g", KindCounter, func() float64 { return 2 }, L("host", "a"))
	// Same family again, registered non-adjacently.
	reg.MustRegisterFunc("f_total", "fam f", KindCounter, func() float64 { return 3 }, L("host", "b"))

	var buf bytes.Buffer
	if err := reg.WritePromText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := strings.Count(out, "# TYPE f_total counter"); n != 1 {
		t.Errorf("TYPE f_total appears %d times:\n%s", n, out)
	}
	// Both f series must sit under the single f TYPE header, before g's.
	typeG := strings.Index(out, "# TYPE g_total")
	fb := strings.Index(out, `f_total{host="b"} 3`)
	if fb < 0 || typeG < 0 || fb > typeG {
		t.Errorf("f series not grouped before g family:\n%s", out)
	}
	if !strings.Contains(out, "# HELP f_total fam f\n") {
		t.Errorf("missing HELP line:\n%s", out)
	}
}

func TestRecorderExportFormats(t *testing.T) {
	k := sim.NewKernel()
	reg := NewRegistry()
	var c float64
	reg.MustRegisterFunc("c_total", "counts", KindCounter, func() float64 { return c })
	reg.MustRegisterFunc("lvl", "level", KindGauge, func() float64 { return 5 })
	rec := NewRecorder(k, reg, 100*time.Millisecond)
	rec.Start()
	k.After(50*time.Millisecond, func() { c = 10 })
	if err := k.RunUntil(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	rec.Stop()

	var prom bytes.Buffer
	if err := rec.WritePromText(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "c_total 10 100") {
		t.Errorf("timeline prom missing timestamped sample:\n%s", prom.String())
	}

	var csv bytes.Buffer
	if err := rec.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "time_s,c_total,lvl,rate:c_total" {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) != 4 { // header + ticks at 0, 100ms, 200ms
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv.String())
	}
	// Tick at 100ms: c jumped 0→10 over 0.1s → rate 100.
	if !strings.HasPrefix(lines[2], "0.100000,10,5,100") {
		t.Errorf("csv row 2 = %q", lines[2])
	}

	var js bytes.Buffer
	if err := rec.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		SampleEverySeconds float64 `json:"sample_every_seconds"`
		Ticks              int     `json:"ticks"`
		Series             []struct {
			ID   string       `json:"id"`
			Kind string       `json:"kind"`
			Rate [][2]float64 `json:"rate"`
		} `json:"series"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("timeline json: %v", err)
	}
	if doc.Ticks != 3 || doc.SampleEverySeconds != 0.1 {
		t.Errorf("json ticks=%d every=%v", doc.Ticks, doc.SampleEverySeconds)
	}
	if len(doc.Series) != 2 || doc.Series[0].ID != "c_total" {
		t.Fatalf("json series: %+v", doc.Series)
	}
	if len(doc.Series[0].Rate) == 0 {
		t.Error("counter series has no rate points")
	}
	if len(doc.Series[1].Rate) != 0 {
		t.Error("gauge series has rate points")
	}
}

func TestWriteRunArtifacts(t *testing.T) {
	k := sim.NewKernel()
	reg := NewRegistry()
	reg.MustRegisterFunc("x", "", KindGauge, func() float64 { return 1 })
	rec := NewRecorder(k, reg, 0)
	if rec.Every() != DefaultSampleEvery {
		t.Errorf("default every = %v", rec.Every())
	}
	rec.Sample()

	dir := t.TempDir()
	paths, err := WriteRunArtifacts(dir, "My Run (ADF)", reg, rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("paths = %v", paths)
	}
	for _, suffix := range []string{".prom", ".csv", ".json", ".snapshot.prom"} {
		found := false
		for _, p := range paths {
			if strings.HasSuffix(p, "my_run_adf"+suffix) {
				found = true
			}
		}
		if !found {
			t.Errorf("no artifact with sanitized base and suffix %q in %v", suffix, paths)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"ADF":              "adf",
		"3Com EFW (v2)":    "3com_efw_v2",
		"a/b c":            "a_b_c",
		"depth-64_rate-12": "depth-64_rate-12",
		"ADF (VPG)_rate-0": "adf_vpg_rate-0",
		"a__b":             "a_b",
		"???":              "run",
		"":                 "run",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
