package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"barbican/internal/sim"
)

// TestRegistrySnapshotRoundTripsThroughParser: WritePromText output must
// parse back into the exact families, kinds, labels, and values the
// registry gathered.
func TestRegistrySnapshotRoundTripsThroughParser(t *testing.T) {
	reg := NewRegistry()
	c, err := reg.NewCounter("pkts_total", "Packets seen.", L("dir", "rx"), L("host", "target"))
	if err != nil {
		t.Fatal(err)
	}
	c.Add(42)
	g, err := reg.NewGauge("queue_depth", "Ring occupancy.")
	if err != nil {
		t.Fatal(err)
	}
	g.Set(7.5)
	if _, err := reg.NewCounter("pkts_total", "Packets seen.", L("dir", "tx"), L("host", "target")); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WritePromText(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePromText(&buf)
	if err != nil {
		t.Fatalf("exported snapshot does not parse: %v", err)
	}
	if len(fams) != 2 {
		t.Fatalf("parsed %d families, want 2", len(fams))
	}

	pk := fams[0]
	if pk.Name != "pkts_total" || pk.Kind != "counter" || pk.Help != "Packets seen." {
		t.Fatalf("family metadata mangled: %+v", pk)
	}
	if len(pk.Samples) != 2 {
		t.Fatalf("pkts_total has %d samples, want 2", len(pk.Samples))
	}
	rx := pk.Samples[0]
	if rx.Value != 42 || rx.Labels["dir"] != "rx" || rx.Labels["host"] != "target" {
		t.Fatalf("rx sample mangled: %+v", rx)
	}
	if rx.HasTimestamp {
		t.Fatal("snapshot samples must not carry timestamps")
	}
	if tx := pk.Samples[1]; tx.Value != 0 || tx.Labels["dir"] != "tx" {
		t.Fatalf("tx sample mangled: %+v", tx)
	}
	qd := fams[1]
	if qd.Kind != "gauge" || len(qd.Samples) != 1 || qd.Samples[0].Value != 7.5 {
		t.Fatalf("gauge family mangled: %+v", qd)
	}
	if qd.Samples[0].ID != "queue_depth" {
		t.Fatalf("unlabeled ID = %q", qd.Samples[0].ID)
	}
}

// TestRecorderTimelineRoundTripsThroughParser: the recorder's timestamped
// exposition must parse back with the recorded virtual-time stamps.
func TestRecorderTimelineRoundTripsThroughParser(t *testing.T) {
	k := sim.NewKernel()
	reg := NewRegistry()
	c, err := reg.NewCounter("bytes_total", "Bytes.", L("proto", "tcp"))
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(k, reg, 100*time.Millisecond)
	k.After(0, func() { rec.Start() })
	k.After(50*time.Millisecond, func() { c.Add(1000) })
	k.After(150*time.Millisecond, func() { c.Add(1000) })
	if err := k.RunUntil(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	rec.Stop()

	var buf bytes.Buffer
	if err := rec.WritePromText(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePromText(&buf)
	if err != nil {
		t.Fatalf("exported timeline does not parse: %v", err)
	}
	if len(fams) != 1 {
		t.Fatalf("parsed %d families, want 1", len(fams))
	}
	sd, ok := rec.Series(`bytes_total{proto="tcp"}`)
	if !ok {
		t.Fatal("series missing from recorder")
	}
	samples := fams[0].Samples
	if len(samples) != len(sd.Points) {
		t.Fatalf("parsed %d samples, recorder has %d points", len(samples), len(sd.Points))
	}
	for i, p := range sd.Points {
		s := samples[i]
		if !s.HasTimestamp {
			t.Fatalf("sample %d lost its timestamp", i)
		}
		if s.TimestampMS != p.T.Milliseconds() {
			t.Fatalf("sample %d timestamp %dms, want %dms", i, s.TimestampMS, p.T.Milliseconds())
		}
		if s.Value != p.V {
			t.Fatalf("sample %d value %g, want %g", i, s.Value, p.V)
		}
		if s.Labels["proto"] != "tcp" {
			t.Fatalf("sample %d labels mangled: %+v", i, s.Labels)
		}
	}
}

// TestParsePromTextRejectsGarbage: malformed lines are errors, not
// silently skipped samples.
func TestParsePromTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"pkts_total{dir=\"rx\" 1",    // unterminated label set
		"pkts_total{dir=rx} 1",       // unquoted label value
		"pkts_total one",             // non-numeric value
		"pkts_total 1 2 3",           // too many fields
		"pkts_total{dir=\"rx\"} 1 x", // non-numeric timestamp
	} {
		if _, err := ParsePromText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParsePromText(%q) accepted garbage", bad)
		}
	}
}

// TestParsePromTextLabelEscapes: quoted values with escaped quotes,
// backslashes, and newlines survive the trip.
func TestParsePromTextLabelEscapes(t *testing.T) {
	in := `weird{name="a \"b\" \\ c"} 1` + "\n"
	fams, err := ParsePromText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := fams[0].Samples[0].Labels["name"]; got != `a "b" \ c` {
		t.Fatalf("escaped label = %q", got)
	}
}

// TestRecorderEvictsOldestTickAtLimit: the flight recorder's retention
// limit drops the oldest tick, keeps the rest in order, and counts the
// eviction in Dropped().
func TestRecorderEvictsOldestTickAtLimit(t *testing.T) {
	k := sim.NewKernel()
	reg := NewRegistry()
	var v float64
	reg.MustRegisterFunc("v", "test level", KindGauge, func() float64 { return v })
	rec := NewRecorder(k, reg, time.Millisecond)

	for i := 0; i <= DefaultTickLimit; i++ {
		v = float64(i)
		rec.Sample()
	}

	if got := len(rec.Ticks()); got != DefaultTickLimit {
		t.Fatalf("retained %d ticks, want %d", got, DefaultTickLimit)
	}
	if rec.Dropped() != 1 {
		t.Fatalf("Dropped() = %d, want 1", rec.Dropped())
	}
	ticks := rec.Ticks()
	if first := ticks[0].Values[0]; first != 1 {
		t.Fatalf("oldest retained tick has value %g, want 1 (tick 0 evicted)", first)
	}
	if last := ticks[len(ticks)-1].Values[0]; last != float64(DefaultTickLimit) {
		t.Fatalf("newest tick has value %g, want %d", last, DefaultTickLimit)
	}
}
