// Package tracing provides a virtual-time packet-lifecycle tracer for
// the simulator: sampled packets carry a trace ID through the full
// path (NIC egress → link → switch → NIC ingress → firewall walk →
// VPG crypto → stack → app) and every stage records spans or instant
// events against that ID in simulated time.
//
// The tracer is deliberately dumb and deterministic:
//
//   - Sampling is counter-based (every Nth Take() call samples), not
//     random, so a given scenario produces the same traces on every
//     run and under any -parallel setting.
//   - All bookkeeping happens on the single simulation goroutine; no
//     locks, no channels.
//   - A nil *Tracer is the disabled state. Hot-path call sites guard
//     with a nil check and a TraceID != 0 check, so the disabled cost
//     is one predictable branch and the instrumented binaries keep
//     their 0 allocs/op contract on the rx fast path.
//
// Traces export as Chrome/Perfetto trace_event JSON (WritePerfetto)
// and as a tcpdump-style annotated text log (WriteText).
package tracing

import (
	"time"

	"barbican/internal/sim"
)

// Stage identifies where in the packet pipeline a span or event was
// recorded.
type Stage uint8

const (
	StageNICTx  Stage = iota + 1 // egress policy walk + card processor
	StageLink                    // wire: queueing + serialization + propagation
	StageSwitch                  // store-and-forward switch latency
	StageNICRx                   // ingress policy walk + card processor
	StageFW                      // firewall rule walk (instant, with attribution)
	StageVPG                     // VPG seal/open crypto (instant)
	StageStack                   // host IP stack dispatch
	StageApp                     // socket/connection delivery
)

var stageNames = [...]string{
	StageNICTx:  "nic.tx",
	StageLink:   "link",
	StageSwitch: "switch",
	StageNICRx:  "nic.rx",
	StageFW:     "fw",
	StageVPG:    "vpg",
	StageStack:  "stack",
	StageApp:    "app",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) && stageNames[s] != "" {
		return stageNames[s]
	}
	return "stage?"
}

// DropReason is the first-class taxonomy of why a packet died. The
// same enum indexes the NICs' always-on per-reason drop counters and
// annotates sampled traces, so aggregate counters and individual
// traces can never disagree about vocabulary.
type DropReason uint8

const (
	DropNone           DropReason = iota
	DropRuleDeny                  // firewall rule (or default policy) said deny
	DropQueueOverflow             // ingress/egress queue full, processor keeping up
	DropCPUExhausted              // queue full while the card processor is saturated
	DropMalformed                 // unparseable or checksum-bad frame
	DropAgentNotReady             // card locked up / policy agent not ready
	DropAuthFail                  // VPG authentication failure
	DropReplay                    // VPG anti-replay window rejection
	DropNoGroup                   // sealed frame without a matching VPG
	DropOversize                  // frame exceeds link MTU
	DropLinkQueue                 // link transmit queue overflow
	DropFaultLoss                 // fault injection: probabilistic frame loss
	DropLinkDown                  // fault injection: link down / partition window
	DropDegraded                  // NIC in fail-closed degraded mode
	DropStateTableFull            // conntrack table full and posture forbids untracked admit
	DropNoState                   // packet contradicts tracked connection state (ctstate INVALID)

	NumDropReasons // array-sizing sentinel, not a reason
)

var dropNames = [...]string{
	DropNone:           "none",
	DropRuleDeny:       "rule-deny",
	DropQueueOverflow:  "queue-overflow",
	DropCPUExhausted:   "cpu-exhausted",
	DropMalformed:      "malformed",
	DropAgentNotReady:  "agent-not-ready",
	DropAuthFail:       "auth-fail",
	DropReplay:         "replay",
	DropNoGroup:        "no-group",
	DropOversize:       "oversize",
	DropLinkQueue:      "link-queue",
	DropFaultLoss:      "fault-loss",
	DropLinkDown:       "link-down",
	DropDegraded:       "degraded",
	DropStateTableFull: "state-table-full",
	DropNoState:        "no-state",
}

func (r DropReason) String() string {
	if int(r) < len(dropNames) && dropNames[r] != "" {
		return dropNames[r]
	}
	return "drop?"
}

// DropReasons lists every real reason (excludes DropNone), in enum
// order, for metric registration and export loops.
func DropReasons() []DropReason {
	out := make([]DropReason, 0, NumDropReasons-1)
	for r := DropRuleDeny; r < NumDropReasons; r++ {
		out = append(out, r)
	}
	return out
}

// Span is one recorded stage of a packet's life. Instant events have
// End == Start. Rule/Traversed carry firewall attribution on StageFW
// spans; Drop marks the span that killed the packet.
type Span struct {
	Stage     Stage
	Start     time.Duration
	End       time.Duration
	Note      string
	Rule      int // 1-based matched rule index, 0 = default action
	Traversed int // rules walked before the verdict
	Drop      DropReason
}

// PacketTrace is the full recorded life of one sampled packet.
type PacketTrace struct {
	ID    uint64
	Desc  string // packet summary, e.g. "udp 10.0.0.66:4444 > 10.0.0.2:7"
	Start time.Duration
	Spans []Span

	// Terminal disposition, filled by Drop or Finish.
	Done    bool
	Dropped DropReason // DropNone when delivered (or still in flight)
	End     time.Duration
	Final   string // human note, e.g. "udp delivered :5001" or "drop rule-deny"

	// Last firewall attribution seen, mirrored here for exports.
	RuleIndex int
	Traversed int
}

// Options configures a Tracer.
type Options struct {
	// SampleEvery samples one packet in every N Take() calls.
	// Values <= 0 mean DefaultSampleEvery.
	SampleEvery int
	// Limit caps retained traces; when full, the oldest completed
	// trace is evicted (counted in Evicted). <= 0 means DefaultLimit.
	Limit int
}

const (
	// DefaultSampleEvery is the default 1-in-N sampling rate.
	DefaultSampleEvery = 64
	// DefaultLimit is the default retained-trace cap.
	DefaultLimit = 4096
)

// Tracer records sampled packet lifecycles in virtual time. All
// methods other than New are safe on traces the tracer does not know
// (unknown or zero IDs are ignored), but NOT on a nil receiver: call
// sites must nil-check, which is what keeps the disabled hot path
// free of any tracing code beyond one branch.
type Tracer struct {
	kernel *sim.Kernel
	every  uint64
	limit  int

	seen    uint64 // Take() calls
	sampled uint64 // Take() calls that returned true
	evicted uint64 // traces dropped to honor limit

	nextID uint64
	byID   map[uint64]*PacketTrace
	order  []*PacketTrace
}

// New creates a tracer bound to a simulation kernel's clock.
func New(k *sim.Kernel, opt Options) *Tracer {
	if opt.SampleEvery <= 0 {
		opt.SampleEvery = DefaultSampleEvery
	}
	if opt.Limit <= 0 {
		opt.Limit = DefaultLimit
	}
	return &Tracer{
		kernel: k,
		every:  uint64(opt.SampleEvery),
		limit:  opt.Limit,
		byID:   make(map[uint64]*PacketTrace),
	}
}

// SampleEvery reports the configured 1-in-N sampling rate.
func (t *Tracer) SampleEvery() int { return int(t.every) }

// Take makes the deterministic sampling decision for one packet:
// every call increments the seen counter and every Nth call returns
// true. Callers that get true should follow with Begin.
func (t *Tracer) Take() bool {
	t.seen++
	if t.seen%t.every != 0 {
		return false
	}
	t.sampled++
	return true
}

// Begin starts a new trace and returns its nonzero ID. The caller
// builds desc only after a positive Take, so unsampled packets never
// pay for string formatting.
func (t *Tracer) Begin(desc string) uint64 {
	t.nextID++
	id := t.nextID
	pt := &PacketTrace{ID: id, Desc: desc, Start: t.kernel.Now()}
	if len(t.order) >= t.limit {
		old := t.order[0]
		t.order = t.order[1:]
		delete(t.byID, old.ID)
		t.evicted++
	}
	t.byID[id] = pt
	t.order = append(t.order, pt)
	return id
}

// get resolves an ID; zero and evicted IDs return nil.
func (t *Tracer) get(id uint64) *PacketTrace {
	if id == 0 {
		return nil
	}
	return t.byID[id]
}

// Span records a stage with explicit enter/exit virtual timestamps
// (the NIC and link know their completion times at admission).
func (t *Tracer) Span(id uint64, st Stage, start, end time.Duration) {
	pt := t.get(id)
	if pt == nil {
		return
	}
	pt.Spans = append(pt.Spans, Span{Stage: st, Start: start, End: end})
}

// Point records an instant event at the current virtual time.
func (t *Tracer) Point(id uint64, st Stage, note string) {
	pt := t.get(id)
	if pt == nil {
		return
	}
	now := t.kernel.Now()
	pt.Spans = append(pt.Spans, Span{Stage: st, Start: now, End: now, Note: note})
}

// RuleWalk records firewall attribution: the 1-based matched rule
// index (0 = default action), the number of rules traversed, and the
// verdict, as an instant event at the current virtual time.
func (t *Tracer) RuleWalk(id uint64, index, traversed int, action string) {
	pt := t.get(id)
	if pt == nil {
		return
	}
	now := t.kernel.Now()
	pt.Spans = append(pt.Spans, Span{
		Stage: StageFW, Start: now, End: now,
		Note: action, Rule: index, Traversed: traversed,
	})
	pt.RuleIndex = index
	pt.Traversed = traversed
}

// Drop terminates a trace with a reason from the taxonomy.
func (t *Tracer) Drop(id uint64, st Stage, r DropReason) {
	pt := t.get(id)
	if pt == nil || pt.Done {
		return
	}
	now := t.kernel.Now()
	pt.Spans = append(pt.Spans, Span{Stage: st, Start: now, End: now, Drop: r})
	pt.Done = true
	pt.Dropped = r
	pt.End = now
	pt.Final = "drop " + r.String()
}

// Finish terminates a trace as delivered (or otherwise consumed)
// with a human-readable note.
func (t *Tracer) Finish(id uint64, st Stage, note string) {
	pt := t.get(id)
	if pt == nil || pt.Done {
		return
	}
	now := t.kernel.Now()
	pt.Spans = append(pt.Spans, Span{Stage: st, Start: now, End: now, Note: note})
	pt.Done = true
	pt.End = now
	pt.Final = note
}

// Traces returns retained traces in begin order. The slice is the
// tracer's own; callers must not mutate it.
func (t *Tracer) Traces() []*PacketTrace { return t.order }

// Seen reports total Take() calls (sampling candidates).
func (t *Tracer) Seen() uint64 { return t.seen }

// Sampled reports how many candidates were sampled.
func (t *Tracer) Sampled() uint64 { return t.sampled }

// Evicted reports traces discarded to honor the retention limit.
func (t *Tracer) Evicted() uint64 { return t.evicted }
