// Chrome/Perfetto trace_event JSON export. The output loads directly
// in https://ui.perfetto.dev or chrome://tracing: each sampled packet
// becomes one "thread" (tid = trace ID) under a single "barbican"
// process, stages render as complete ("X") slices, rule walks and
// drops as instant ("i") events, and aggregate drop counters as
// counter ("C") tracks.
package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// CounterPoint is one (virtual time, value) sample on a counter track.
type CounterPoint struct {
	At    time.Duration
	Value float64
}

// CounterTrack is a named time series rendered as a Perfetto counter
// ("C") track, e.g. a per-reason drop rate from the flight recorder.
type CounterTrack struct {
	Name   string
	Points []CounterPoint
}

// ExportOptions carries run-level aggregates into the trace file.
type ExportOptions struct {
	// Drops holds authoritative per-reason drop totals for the run
	// (from the NIC counters, not from the sampled traces). They are
	// embedded in otherData so the trace file carries the full
	// drop-reason breakdown even at aggressive sampling.
	Drops map[string]uint64
	// Counters are optional counter tracks (e.g. recorder series).
	Counters []CounterTrack
}

// traceEvent is one entry in the trace_event JSON array.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds of virtual time
	Dur   *float64       `json:"dur,omitempty"` // microseconds, "X" events only
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant scope ("t" = thread)
	Args  map[string]any `json:"args,omitempty"`
}

type traceDoc struct {
	TraceEvents     []traceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// usec converts virtual time to trace_event microseconds.
func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WritePerfetto writes every retained trace (plus run-level counters
// and metadata) as a trace_event JSON document.
func (t *Tracer) WritePerfetto(w io.Writer, opt ExportOptions) error {
	const pid = 1
	doc := traceDoc{DisplayTimeUnit: "ns", OtherData: map[string]string{}}
	doc.TraceEvents = append(doc.TraceEvents, traceEvent{
		Name: "process_name", Phase: "M", PID: pid,
		Args: map[string]any{"name": "barbican packet pipeline"},
	})

	for _, pt := range t.Traces() {
		label := fmt.Sprintf("pkt %d %s", pt.ID, pt.Desc)
		if pt.Done {
			label += " [" + pt.Final + "]"
		}
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: "thread_name", Phase: "M", PID: pid, TID: pt.ID,
			Args: map[string]any{"name": label},
		})
		for _, sp := range pt.Spans {
			ev := traceEvent{
				Name: sp.Stage.String(), Cat: "packet",
				PID: pid, TID: pt.ID, TS: usec(sp.Start),
			}
			args := map[string]any{}
			if sp.Note != "" {
				args["note"] = sp.Note
			}
			if sp.Stage == StageFW {
				args["rule"] = sp.Rule
				args["traversed"] = sp.Traversed
			}
			if sp.Drop != DropNone {
				ev.Name = "drop " + sp.Drop.String()
				args["reason"] = sp.Drop.String()
			}
			if sp.End > sp.Start {
				d := usec(sp.End) - usec(sp.Start)
				ev.Phase = "X"
				ev.Dur = &d
			} else {
				ev.Phase = "i"
				ev.Scope = "t"
			}
			if len(args) > 0 {
				ev.Args = args
			}
			doc.TraceEvents = append(doc.TraceEvents, ev)
		}
	}

	for _, c := range t.Counters(opt) {
		doc.TraceEvents = append(doc.TraceEvents, c...)
	}

	doc.OtherData["packets_seen"] = fmt.Sprint(t.Seen())
	doc.OtherData["packets_sampled"] = fmt.Sprint(t.Sampled())
	doc.OtherData["traces_retained"] = fmt.Sprint(len(t.Traces()))
	doc.OtherData["traces_evicted"] = fmt.Sprint(t.Evicted())
	doc.OtherData["sample_every"] = fmt.Sprint(t.SampleEvery())
	var total uint64
	names := make([]string, 0, len(opt.Drops))
	for name := range opt.Drops {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		doc.OtherData["drop_"+name] = fmt.Sprint(opt.Drops[name])
		total += opt.Drops[name]
	}
	doc.OtherData["drops_total"] = fmt.Sprint(total)

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// Counters renders the option's counter tracks as trace events.
func (t *Tracer) Counters(opt ExportOptions) [][]traceEvent {
	const pid = 1
	out := make([][]traceEvent, 0, len(opt.Counters))
	for _, track := range opt.Counters {
		evs := make([]traceEvent, 0, len(track.Points))
		for _, p := range track.Points {
			evs = append(evs, traceEvent{
				Name: track.Name, Phase: "C", PID: pid, TS: usec(p.At),
				Args: map[string]any{"value": p.Value},
			})
		}
		out = append(out, evs)
	}
	return out
}
