// tcpdump-style annotated text export: one block per sampled packet,
// one timestamped line per recorded stage, in virtual seconds with
// nanosecond precision (matching internal/trace's renderer).
package tracing

import (
	"fmt"
	"io"
	"time"
)

// secs renders virtual time like the pcap text renderer: seconds with
// nine fractional digits.
func secs(d time.Duration) string {
	return fmt.Sprintf("%.9f", d.Seconds())
}

// WriteText writes every retained trace as an annotated text log.
func (t *Tracer) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# barbican packet traces: %d retained of %d sampled (%d seen, 1-in-%d, %d evicted)\n",
		len(t.Traces()), t.Sampled(), t.Seen(), t.SampleEvery(), t.Evicted()); err != nil {
		return err
	}
	for _, pt := range t.Traces() {
		disposition := "in flight"
		if pt.Done {
			disposition = pt.Final
		}
		if _, err := fmt.Fprintf(w, "\npkt %d  %s  [%s]\n", pt.ID, pt.Desc, disposition); err != nil {
			return err
		}
		for _, sp := range pt.Spans {
			line := fmt.Sprintf("  %s  %-6s", secs(sp.Start), sp.Stage)
			if sp.End > sp.Start {
				line += fmt.Sprintf("  +%s", sp.End-sp.Start)
			}
			switch {
			case sp.Drop != DropNone:
				line += "  DROP " + sp.Drop.String()
			case sp.Stage == StageFW:
				rule := "default"
				if sp.Rule > 0 {
					rule = fmt.Sprintf("rule %d", sp.Rule)
				}
				line += fmt.Sprintf("  %s %s, %d traversed", sp.Note, rule, sp.Traversed)
			case sp.Note != "":
				line += "  " + sp.Note
			}
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}
