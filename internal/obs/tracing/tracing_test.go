package tracing

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"barbican/internal/sim"
)

func TestCounterSamplingIsDeterministic(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k, Options{SampleEvery: 4})
	var hits []int
	for i := 1; i <= 12; i++ {
		if tr.Take() {
			hits = append(hits, i)
		}
	}
	want := []int{4, 8, 12}
	if len(hits) != len(want) {
		t.Fatalf("sampled %v, want %v", hits, want)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("sampled %v, want %v", hits, want)
		}
	}
	if tr.Seen() != 12 || tr.Sampled() != 3 {
		t.Fatalf("seen=%d sampled=%d, want 12/3", tr.Seen(), tr.Sampled())
	}
}

func TestDefaultsApplied(t *testing.T) {
	tr := New(sim.NewKernel(), Options{})
	if tr.SampleEvery() != DefaultSampleEvery {
		t.Fatalf("SampleEvery = %d, want %d", tr.SampleEvery(), DefaultSampleEvery)
	}
	if tr.limit != DefaultLimit {
		t.Fatalf("limit = %d, want %d", tr.limit, DefaultLimit)
	}
}

func TestTraceLifecycleAndEviction(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k, Options{SampleEvery: 1, Limit: 2})

	id1 := tr.Begin("udp a > b")
	tr.Span(id1, StageNICTx, 0, 10*time.Microsecond)
	tr.RuleWalk(id1, 3, 3, "allow")
	tr.Finish(id1, StageApp, "udp delivered :7")

	id2 := tr.Begin("tcp a > b")
	tr.Drop(id2, StageNICRx, DropCPUExhausted)

	id3 := tr.Begin("icmp a > b") // evicts id1
	if tr.Evicted() != 1 {
		t.Fatalf("evicted = %d, want 1", tr.Evicted())
	}
	if got := len(tr.Traces()); got != 2 {
		t.Fatalf("retained %d traces, want 2", got)
	}
	if tr.Traces()[0].ID != id2 || tr.Traces()[1].ID != id3 {
		t.Fatalf("retained IDs %d,%d, want %d,%d", tr.Traces()[0].ID, tr.Traces()[1].ID, id2, id3)
	}
	// Events against the evicted ID are ignored, not resurrected.
	tr.Span(id1, StageLink, 0, time.Microsecond)
	if got := len(tr.Traces()); got != 2 {
		t.Fatalf("evicted trace resurrected: %d retained", got)
	}

	pt2 := tr.Traces()[0]
	if !pt2.Done || pt2.Dropped != DropCPUExhausted || pt2.Final != "drop cpu-exhausted" {
		t.Fatalf("drop disposition wrong: %+v", pt2)
	}
	// Terminal events are latched: a second terminal is ignored.
	tr.Finish(id2, StageApp, "late delivery")
	if pt2.Dropped != DropCPUExhausted {
		t.Fatalf("terminal disposition overwritten: %+v", pt2)
	}
}

func TestRuleWalkAttribution(t *testing.T) {
	tr := New(sim.NewKernel(), Options{SampleEvery: 1})
	id := tr.Begin("udp flood")
	tr.RuleWalk(id, 0, 64, "deny")
	pt := tr.Traces()[0]
	if pt.RuleIndex != 0 || pt.Traversed != 64 {
		t.Fatalf("attribution = rule %d traversed %d, want 0/64", pt.RuleIndex, pt.Traversed)
	}
	sp := pt.Spans[0]
	if sp.Stage != StageFW || sp.Note != "deny" || sp.Traversed != 64 {
		t.Fatalf("fw span wrong: %+v", sp)
	}
}

func TestZeroIDIsIgnored(t *testing.T) {
	tr := New(sim.NewKernel(), Options{SampleEvery: 1})
	tr.Span(0, StageLink, 0, time.Microsecond)
	tr.Point(0, StageStack, "x")
	tr.RuleWalk(0, 1, 1, "allow")
	tr.Drop(0, StageNICRx, DropRuleDeny)
	tr.Finish(0, StageApp, "x")
	if len(tr.Traces()) != 0 {
		t.Fatalf("zero-ID events created traces: %d", len(tr.Traces()))
	}
}

func TestDropReasonNamesComplete(t *testing.T) {
	for _, r := range DropReasons() {
		if s := r.String(); s == "drop?" || s == "none" {
			t.Fatalf("reason %d has bad name %q", r, s)
		}
	}
	if n := len(DropReasons()); n != int(NumDropReasons)-1 {
		t.Fatalf("DropReasons() has %d entries, want %d", n, NumDropReasons-1)
	}
}

func TestWritePerfettoLoadsAsTraceEventJSON(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k, Options{SampleEvery: 1})
	id := tr.Begin("udp 10.0.0.66:4444 > 10.0.0.2:7")
	tr.Span(id, StageNICTx, 100*time.Microsecond, 130*time.Microsecond)
	tr.RuleWalk(id, 64, 64, "deny")
	tr.Drop(id, StageNICRx, DropRuleDeny)

	var buf bytes.Buffer
	err := tr.WritePerfetto(&buf, ExportOptions{
		Drops: map[string]uint64{"rule-deny": 9, "cpu-exhausted": 1},
		Counters: []CounterTrack{{
			Name:   "drops rule-deny (pps)",
			Points: []CounterPoint{{At: time.Second, Value: 9}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []map[string]any  `json:"traceEvents"`
		OtherData   map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("event missing pid: %v", ev)
		}
	}
	for _, ph := range []string{"M", "X", "i", "C"} {
		if phases[ph] == 0 {
			t.Fatalf("no %q events in output (got %v)", ph, phases)
		}
	}
	if doc.OtherData["drops_total"] != "10" {
		t.Fatalf("drops_total = %q, want 10", doc.OtherData["drops_total"])
	}
	if doc.OtherData["drop_rule-deny"] != "9" {
		t.Fatalf("drop_rule-deny = %q, want 9", doc.OtherData["drop_rule-deny"])
	}
}

func TestWriteTextRendersStagesAndDrop(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k, Options{SampleEvery: 1})
	id := tr.Begin("udp 10.0.0.66:4444 > 10.0.0.2:7")
	tr.Span(id, StageNICTx, 200*time.Microsecond, 230*time.Microsecond)
	tr.RuleWalk(id, 2, 2, "allow")
	tr.Drop(id, StageNICRx, DropQueueOverflow)

	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"pkt 1  udp 10.0.0.66:4444 > 10.0.0.2:7  [drop queue-overflow]",
		"0.000200000  nic.tx  +30µs",
		"allow rule 2, 2 traversed",
		"DROP queue-overflow",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text export missing %q:\n%s", want, out)
		}
	}
}
