package tracing

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"barbican/internal/sim"
)

// decodePerfetto unmarshals a trace_event document, failing the test
// if the exporter emitted invalid JSON.
func decodePerfetto(t *testing.T, buf *bytes.Buffer) (events []map[string]any, other map[string]string) {
	t.Helper()
	var doc struct {
		TraceEvents     []map[string]any  `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit == "" {
		t.Fatal("missing displayTimeUnit")
	}
	return doc.TraceEvents, doc.OtherData
}

// TestWritePerfettoEmptyTrace: a tracer that never sampled anything
// must still export a loadable document — process metadata only, no
// slices, with run-level drop totals intact.
func TestWritePerfettoEmptyTrace(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k, Options{SampleEvery: 1})

	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf, ExportOptions{Drops: map[string]uint64{"rule-deny": 3}}); err != nil {
		t.Fatal(err)
	}
	events, other := decodePerfetto(t, &buf)
	for _, ev := range events {
		if ph, _ := ev["ph"].(string); ph != "M" {
			t.Errorf("empty trace contains non-metadata event %v", ev)
		}
	}
	if other["drops_total"] != "3" {
		t.Errorf("drops_total = %q, want 3", other["drops_total"])
	}
}

// TestWritePerfettoSingleSpan: the minimal real trace — one packet,
// one stage — renders exactly one complete slice with its duration.
func TestWritePerfettoSingleSpan(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k, Options{SampleEvery: 1})
	id := tr.Begin("udp probe")
	tr.Span(id, StageNICRx, 10*time.Microsecond, 25*time.Microsecond)

	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf, ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	events, _ := decodePerfetto(t, &buf)
	var slices []map[string]any
	for _, ev := range events {
		if ph, _ := ev["ph"].(string); ph == "X" {
			slices = append(slices, ev)
		}
	}
	if len(slices) != 1 {
		t.Fatalf("%d complete slices, want 1", len(slices))
	}
	if ts, dur := slices[0]["ts"].(float64), *mustFloat(t, slices[0], "dur"); ts != 10 || dur != 15 {
		t.Errorf("slice ts=%v dur=%v, want 10/15 µs", ts, dur)
	}
}

// TestWritePerfettoSampledOutRun: with an aggressive sampling rate no
// packet is ever traced (Take stays false); export must behave exactly
// like the empty trace, not error or emit phantom threads.
func TestWritePerfettoSampledOutRun(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k, Options{SampleEvery: 1 << 20})
	for i := 0; i < 100; i++ {
		if tr.Take() {
			t.Fatal("Take sampled within 100 of 2^20 events")
		}
	}
	if tr.Sampled() != 0 {
		t.Fatalf("Sampled = %d, want 0", tr.Sampled())
	}

	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf, ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	events, _ := decodePerfetto(t, &buf)
	for _, ev := range events {
		if ph, _ := ev["ph"].(string); ph == "X" || ph == "i" {
			t.Errorf("sampled-out run exported slice/instant event: %v", ev)
		}
	}
}

func mustFloat(t *testing.T, ev map[string]any, key string) *float64 {
	t.Helper()
	v, ok := ev[key].(float64)
	if !ok {
		t.Fatalf("event %v missing float %q", ev, key)
	}
	return &v
}
