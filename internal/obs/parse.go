package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromSample is one parsed exposition line: a series identity, its
// value, and (for timeline expositions) an optional millisecond
// timestamp.
type PromSample struct {
	// ID is the canonical name{labels} identity as it appeared.
	ID     string
	Name   string
	Labels map[string]string
	Value  float64
	// TimestampMS is the exposition timestamp; valid when HasTimestamp.
	TimestampMS  int64
	HasTimestamp bool
}

// PromFamily groups the parsed samples of one metric family with its
// TYPE and HELP metadata.
type PromFamily struct {
	Name    string
	Kind    string // "counter", "gauge", "untyped", ...
	Help    string
	Samples []PromSample
}

// ParsePromText parses Prometheus text exposition format — the inverse
// of Registry.WritePromText and Recorder.WritePromText. It exists so
// tests (and tooling) can round-trip exported artifacts instead of
// string-matching them, and it accepts the subset of the format those
// exporters emit: # HELP / # TYPE comments, name{labels} value lines,
// and optional trailing millisecond timestamps. Families are returned
// in first-appearance order; HELP text is unescaped (\\ and \n).
// Samples of a declared histogram family's conventional expansion
// series (name_bucket, name_sum, name_count) are associated with the
// histogram family, mirroring how the writers group them.
func ParsePromText(r io.Reader) ([]PromFamily, error) {
	var order []string
	byName := make(map[string]*PromFamily)
	family := func(name string) *PromFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &PromFamily{Name: name, Kind: "untyped"}
		byName[name] = f
		order = append(order, name)
		return f
	}
	// histogramFamily resolves a sample name to the declared histogram
	// family that owns it, if any: lat_bucket/lat_sum/lat_count all
	// belong to a family declared `TYPE lat histogram`.
	histogramFamily := func(name string) (*PromFamily, bool) {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base, ok := strings.CutSuffix(name, suffix)
			if !ok {
				continue
			}
			if f, ok := byName[base]; ok && f.Kind == "histogram" {
				return f, true
			}
		}
		return nil, false
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, rest, ok := strings.Cut(strings.TrimSpace(line[1:]), " ")
			if !ok {
				continue
			}
			name, meta, _ := strings.Cut(rest, " ")
			switch kind {
			case "TYPE":
				family(name).Kind = meta
			case "HELP":
				family(name).Help = unescapeHelp(meta)
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: prom text line %d: %w", lineNo, err)
		}
		f, ok := histogramFamily(s.Name)
		if !ok {
			f = family(s.Name)
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: prom text: %w", err)
	}
	out := make([]PromFamily, len(order))
	for i, name := range order {
		out[i] = *byName[name]
	}
	return out, nil
}

// parsePromSample parses one `name{labels} value [timestamp]` line.
func parsePromSample(line string) (PromSample, error) {
	var s PromSample
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		s.Name = rest[:i]
		labels, err := parsePromLabels(rest[i+1 : end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		s.ID = rest[:end+1]
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		var ok bool
		s.Name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			return s, fmt.Errorf("missing value in %q", line)
		}
		s.ID = s.Name
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want `value [timestamp]` after series in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		ts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return s, fmt.Errorf("bad timestamp %q: %v", fields[1], err)
		}
		s.TimestampMS, s.HasTimestamp = ts, true
	}
	return s, nil
}

// parsePromLabels parses `k1="v1",k2="v2"` with \" \\ \n escapes.
func parsePromLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	rest := body
	for rest != "" {
		key, after, ok := strings.Cut(rest, "=")
		if !ok {
			return nil, fmt.Errorf("label without value in %q", body)
		}
		key = strings.TrimSpace(key)
		after = strings.TrimSpace(after)
		if len(after) < 2 || after[0] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q in %q", key, body)
		}
		var b strings.Builder
		i := 1
		closed := false
		for i < len(after) {
			c := after[i]
			if c == '\\' && i+1 < len(after) {
				switch after[i+1] {
				case '"':
					b.WriteByte('"')
				case '\\':
					b.WriteByte('\\')
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(after[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %q in %q", key, body)
		}
		labels[key] = b.String()
		rest = strings.TrimSpace(after[i:])
		rest = strings.TrimPrefix(rest, ",")
		rest = strings.TrimSpace(rest)
	}
	return labels, nil
}
