// Package obs is barbican's unified telemetry layer: a metrics registry
// (counters, gauges, histograms with labeled series), a virtual-time
// flight recorder that samples registered metrics on a configurable
// tick, and exporters for Prometheus text format, JSON, and CSV.
//
// The design contract is zero cost when disabled: components keep their
// existing plain counter structs on the fast path and expose them to a
// registry through read closures ("collectors") that are only invoked
// when a snapshot is taken. A simulation with no registry attached — or
// a registry with no recorder sampling it — executes exactly the same
// instructions on the packet path as an uninstrumented one.
//
// All sampling happens in virtual time on the simulation kernel, so
// recorded time series are deterministic per seed, like everything else
// in the simulator.
package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a metric series for exporters and rate derivation.
type Kind int

// Metric kinds.
const (
	// KindCounter is a monotonically non-decreasing cumulative count;
	// exporters derive instantaneous rates from counter timelines.
	KindCounter Kind = iota + 1
	// KindGauge is a point-in-time level (queue depth, ratio, boolean).
	KindGauge
	// KindHistogram is a family-level kind only: a histogram's scalar
	// expansion series (_bucket/_sum/_count) stay KindCounter so rate
	// derivation keeps working, and their SeriesInfo.FamilyKind carries
	// KindHistogram for the conventional text exposition.
	KindHistogram
)

// String returns the Prometheus TYPE name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Label is one key="value" dimension of a series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// seriesID renders the canonical identity of a series: the family name
// plus its labels in sorted-key order, Prometheus-style.
func seriesID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// SeriesInfo describes one registered scalar series.
type SeriesInfo struct {
	// ID is the canonical name{labels} identity.
	ID string
	// Name is the metric family name.
	Name string
	// Help is the family's one-line description.
	Help string
	// Kind is the series kind.
	Kind Kind
	// Labels are the series dimensions, in sorted-key order.
	Labels []Label
	// Family, when non-empty, names the conventional metric family
	// this series expands (histogram expansions: name_bucket, name_sum
	// and name_count all carry Family=name). Text exporters group and
	// type the exposition by family so downstream Prometheus tooling
	// sees one histogram, not three counter families.
	Family string
	// FamilyKind is the family's exposition TYPE when Family is set.
	FamilyKind Kind
}

// familyName returns the exposition family a series belongs to: its
// declared Family, or its own name for plain scalars.
func familyName(in SeriesInfo) string {
	if in.Family != "" {
		return in.Family
	}
	return in.Name
}

// familyKind returns the family's exposition TYPE.
func familyKind(in SeriesInfo) Kind {
	if in.Family != "" {
		return in.FamilyKind
	}
	return in.Kind
}

// SampleValue is one gathered observation of a series.
type SampleValue struct {
	SeriesInfo
	Value float64
}

type series struct {
	info SeriesInfo
	read func() float64
}

// Registry holds the registered metric series of one simulation run.
// Registration order is preserved; it defines export and recorder
// column order, keeping every artifact deterministic.
//
// A Registry is not safe for concurrent use; like the kernel it
// observes, it belongs to the single simulation goroutine.
type Registry struct {
	series []*series
	byID   map[string]bool
	hists  []*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]bool)}
}

// RegisterFunc registers a collector series whose value is produced by
// read at gather time. This is how components publish existing counters
// without changing their fast-path structs. Registering a duplicate
// name+labels identity is an error.
func (r *Registry) RegisterFunc(name, help string, kind Kind, read func() float64, labels ...Label) error {
	if name == "" {
		return fmt.Errorf("obs: register: empty metric name")
	}
	if read == nil {
		return fmt.Errorf("obs: register %s: nil read func", name)
	}
	id := seriesID(name, labels)
	if r.byID[id] {
		return fmt.Errorf("obs: duplicate series %s", id)
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	r.byID[id] = true
	r.series = append(r.series, &series{
		info: SeriesInfo{ID: id, Name: name, Help: help, Kind: kind, Labels: sorted},
		read: read,
	})
	return nil
}

// MustRegisterFunc is RegisterFunc, panicking on error. Registration
// happens at wiring time with programmer-chosen names, so a failure is
// a bug, not a runtime condition.
func (r *Registry) MustRegisterFunc(name, help string, kind Kind, read func() float64, labels ...Label) {
	if err := r.RegisterFunc(name, help, kind, read, labels...); err != nil {
		panic(err)
	}
}

// Counter is a registry-owned cumulative instrument for code that has
// no pre-existing counter to publish (e.g. the experiment harness).
type Counter struct{ v float64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds d (negative deltas are ignored; counters are monotonic).
func (c *Counter) Add(d float64) {
	if d > 0 {
		c.v += d
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v }

// NewCounter registers and returns an owned counter.
func (r *Registry) NewCounter(name, help string, labels ...Label) (*Counter, error) {
	c := &Counter{}
	if err := r.RegisterFunc(name, help, KindCounter, c.Value, labels...); err != nil {
		return nil, err
	}
	return c, nil
}

// Gauge is a registry-owned level instrument.
type Gauge struct{ v float64 }

// Set replaces the level.
func (g *Gauge) Set(v float64) { g.v = v }

// Add shifts the level by d.
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current level.
func (g *Gauge) Value() float64 { return g.v }

// NewGauge registers and returns an owned gauge.
func (r *Registry) NewGauge(name, help string, labels ...Label) (*Gauge, error) {
	g := &Gauge{}
	if err := r.RegisterFunc(name, help, KindGauge, g.Value, labels...); err != nil {
		return nil, err
	}
	return g, nil
}

// Histogram is a fixed-bucket cumulative histogram. It gathers as the
// conventional Prometheus expansion: one cumulative _bucket series per
// upper bound (plus +Inf), a _sum, and a _count.
type Histogram struct {
	name    string
	bounds  []float64 // ascending upper bounds, +Inf implicit
	buckets []uint64  // len(bounds)+1; last is the +Inf bucket
	sum     float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.sum += v
	for i, ub := range h.bounds {
		if v <= ub {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(h.bounds)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for _, c := range h.buckets {
		n += c
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// NewHistogram registers a histogram with the given ascending bucket
// upper bounds (a +Inf bucket is always appended).
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...Label) (*Histogram, error) {
	if !sort.Float64sAreSorted(bounds) {
		return nil, fmt.Errorf("obs: histogram %s: bounds not ascending", name)
	}
	h := &Histogram{name: name, bounds: append([]float64(nil), bounds...)}
	h.buckets = make([]uint64, len(h.bounds)+1)
	// Expand into cumulative-bucket collector series so the recorder and
	// every exporter see plain scalars. Each expansion series is marked
	// with the histogram family, so text exporters render them as one
	// conventional `TYPE name histogram` family.
	markFamily := func() {
		in := &r.series[len(r.series)-1].info
		in.Family = name
		in.FamilyKind = KindHistogram
	}
	for i := range h.bounds {
		i := i
		le := fmt.Sprintf("%g", h.bounds[i])
		err := r.RegisterFunc(name+"_bucket", help, KindCounter, func() float64 {
			var n uint64
			for _, c := range h.buckets[:i+1] {
				n += c
			}
			return float64(n)
		}, append(append([]Label(nil), labels...), L("le", le))...)
		if err != nil {
			return nil, err
		}
		markFamily()
	}
	err := r.RegisterFunc(name+"_bucket", help, KindCounter, func() float64 {
		return float64(h.Count())
	}, append(append([]Label(nil), labels...), L("le", "+Inf"))...)
	if err != nil {
		return nil, err
	}
	markFamily()
	if err := r.RegisterFunc(name+"_sum", help, KindCounter, func() float64 { return h.sum }, labels...); err != nil {
		return nil, err
	}
	markFamily()
	err = r.RegisterFunc(name+"_count", help, KindCounter, func() float64 {
		return float64(h.Count())
	}, labels...)
	if err != nil {
		return nil, err
	}
	markFamily()
	r.hists = append(r.hists, h)
	return h, nil
}

// Len returns the number of registered scalar series.
func (r *Registry) Len() int { return len(r.series) }

// Infos returns the registered series descriptors in registration order.
func (r *Registry) Infos() []SeriesInfo {
	out := make([]SeriesInfo, len(r.series))
	for i, s := range r.series {
		out[i] = s.info
	}
	return out
}

// Gather reads every registered series once, in registration order.
func (r *Registry) Gather() []SampleValue {
	out := make([]SampleValue, len(r.series))
	for i, s := range r.series {
		out[i] = SampleValue{SeriesInfo: s.info, Value: s.read()}
	}
	return out
}

// gatherValues reads every series into dst (resized as needed),
// avoiding per-tick descriptor allocation in the recorder.
func (r *Registry) gatherValues(dst []float64) []float64 {
	if cap(dst) < len(r.series) {
		dst = make([]float64, len(r.series))
	}
	dst = dst[:len(r.series)]
	for i, s := range r.series {
		dst[i] = s.read()
	}
	return dst
}
