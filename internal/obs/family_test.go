package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"barbican/internal/sim"
)

// TestHelpEscapeRoundTrip: HELP strings containing backslashes or
// newlines must survive WritePromText → ParsePromText unchanged. A raw
// newline in a HELP line would otherwise start a bogus exposition line.
func TestHelpEscapeRoundTrip(t *testing.T) {
	help := `Matches path C:\tmp\rules.
Second line; still one HELP string.`
	reg := NewRegistry()
	reg.MustRegisterFunc("weird_total", help, KindCounter, func() float64 { return 1 })

	var buf bytes.Buffer
	if err := reg.WritePromText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "\n") != 3 { // HELP, TYPE, sample
		t.Fatalf("escaped exposition has wrong line count:\n%s", out)
	}
	if !strings.Contains(out, `C:\\tmp\\rules.\nSecond`) {
		t.Fatalf("HELP not escaped on write:\n%s", out)
	}

	fams, err := ParsePromText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || fams[0].Help != help {
		t.Fatalf("HELP round-trip mangled: %q != %q", fams[0].Help, help)
	}

	// The same escaping applies to the recorder's timeline exposition.
	k := sim.NewKernel()
	rec := NewRecorder(k, reg, 50*time.Millisecond)
	rec.Start()
	if err := k.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	rec.Stop()
	var tbuf bytes.Buffer
	if err := rec.WritePromText(&tbuf); err != nil {
		t.Fatal(err)
	}
	tfams, err := ParsePromText(&tbuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tfams) != 1 || tfams[0].Help != help {
		t.Fatalf("recorder HELP round-trip mangled: %q", tfams[0].Help)
	}
	if strings.Count(unescapeHelp(escapeHelp(help)), "\n") != 1 {
		t.Fatal("escape/unescape not inverse")
	}
}

// TestHistogramFamilyExposition: a histogram's expansion series
// (_bucket, _sum, _count) must render as ONE conventional
// `TYPE name histogram` family, the shape Prometheus tooling expects —
// not three separate counter families — and parse back as such with
// the mean derivable from sum/count.
func TestHistogramFamilyExposition(t *testing.T) {
	reg := NewRegistry()
	h, err := reg.NewHistogram("lat_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	// A scalar counter around it must stay its own family.
	reg.MustRegisterFunc("reqs_total", "Requests.", KindCounter, func() float64 { return 4 })

	var buf bytes.Buffer
	if err := reg.WritePromText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := strings.Count(out, "# TYPE lat_seconds histogram"); n != 1 {
		t.Fatalf("want exactly one histogram TYPE line, got %d:\n%s", n, out)
	}
	for _, stray := range []string{
		"# TYPE lat_seconds_bucket",
		"# TYPE lat_seconds_sum",
		"# TYPE lat_seconds_count",
	} {
		if strings.Contains(out, stray) {
			t.Errorf("expansion series typed separately (%q):\n%s", stray, out)
		}
	}
	// All expansion samples sit contiguously under the family header,
	// before the next family's TYPE line.
	reqs := strings.Index(out, "# TYPE reqs_total")
	for _, id := range []string{`lat_seconds_bucket{le="+Inf"} 4`, "lat_seconds_sum 5.555", "lat_seconds_count 4"} {
		pos := strings.Index(out, id)
		if pos < 0 || pos > reqs {
			t.Errorf("sample %q missing or outside the histogram family block:\n%s", id, out)
		}
	}

	fams, err := ParsePromText(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("parsed %d families, want 2 (histogram + counter)", len(fams))
	}
	hist := fams[0]
	if hist.Name != "lat_seconds" || hist.Kind != "histogram" {
		t.Fatalf("histogram family mangled: %+v", hist)
	}
	// 4 buckets (3 bounds + Inf) + sum + count all under one family.
	if len(hist.Samples) != 6 {
		t.Fatalf("histogram family has %d samples, want 6", len(hist.Samples))
	}
	var sum, count float64
	for _, s := range hist.Samples {
		switch s.Name {
		case "lat_seconds_sum":
			sum = s.Value
		case "lat_seconds_count":
			count = s.Value
		}
	}
	if count != 4 || sum != 5.555 {
		t.Fatalf("sum/count = %g/%g, want 5.555/4", sum, count)
	}
	if mean := sum / count; mean != 5.555/4 {
		t.Fatalf("derived mean = %g", mean)
	}
	if fams[1].Name != "reqs_total" || fams[1].Kind != "counter" {
		t.Fatalf("scalar counter family mangled: %+v", fams[1])
	}

	// Rate derivation contract: the scalar expansion series themselves
	// stay counters so the recorder still emits rate columns for them.
	for _, in := range reg.Infos() {
		if strings.HasPrefix(in.Name, "lat_seconds") {
			if in.Kind != KindCounter || in.Family != "lat_seconds" || in.FamilyKind != KindHistogram {
				t.Errorf("expansion series %s: kind=%v family=%q familyKind=%v", in.ID, in.Kind, in.Family, in.FamilyKind)
			}
		}
	}
}

// TestRecorderCSVRoundTrip parses the recorder's CSV export back and
// checks the cumulative values and derived rates agree with the
// recorded timeline.
func TestRecorderCSVRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	reg := NewRegistry()
	var pkts float64
	reg.MustRegisterFunc("pkts_total", "Packets.", KindCounter, func() float64 { return pkts })
	reg.MustRegisterFunc("depth", "Queue depth.", KindGauge, func() float64 { return 3 })
	rec := NewRecorder(k, reg, 100*time.Millisecond)
	rec.Start()
	k.After(30*time.Millisecond, func() { pkts = 20 })
	k.After(130*time.Millisecond, func() { pkts = 50 })
	if err := k.RunUntil(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	rec.Stop()

	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "time_s,pkts_total,depth,rate:pkts_total" {
		t.Fatalf("header = %q", lines[0])
	}
	// Ticks at 0, 100ms, 200ms, 300ms.
	if len(lines) != 5 {
		t.Fatalf("%d csv lines, want 5:\n%s", len(lines), buf.String())
	}
	parse := func(line string) []string { return strings.Split(line, ",") }
	for i, want := range []struct {
		pkts, rate string
	}{
		{"0", ""},     // t=0: nothing yet, no rate for first tick
		{"20", "200"}, // t=0.1: 20 pkts over 0.1s
		{"50", "300"}, // t=0.2: +30 over 0.1s
		{"50", "0"},   // t=0.3: flat
	} {
		cells := parse(lines[i+1])
		if cells[1] != want.pkts || cells[3] != want.rate {
			t.Errorf("tick %d: pkts=%q rate=%q, want %q/%q (row %q)", i, cells[1], cells[3], want.pkts, want.rate, lines[i+1])
		}
		if cells[2] != "3" {
			t.Errorf("tick %d: gauge = %q, want 3", i, cells[2])
		}
	}
}
