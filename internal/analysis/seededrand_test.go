package analysis

import (
	"path/filepath"
	"testing"
)

func TestSeededrandFixture(t *testing.T) {
	dir := filepath.Join("testdata", "src", "seededrand")
	RunFixture(t, dir, "fixture/seededrand", Seededrand())
}
