package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestNoAllocGateFixture(t *testing.T) {
	moduleDir, err := filepath.Abs(filepath.Join("testdata", "noallocmod"))
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader()
	loader.SetModule(moduleDir, "noallocmod")
	pkg, err := loader.Load(moduleDir, "noallocmod")
	if err != nil {
		t.Fatal(err)
	}

	diags, err := NoAllocGate(moduleDir, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly one (for Escapes)", diags)
	}
	d := diags[0]
	if !strings.Contains(d.Message, "Escapes") || !strings.Contains(d.Message, "moved to heap") {
		t.Errorf("diagnostic = %s, want it to blame Escapes for a moved-to-heap value", d)
	}
	if filepath.Base(d.Pos.Filename) != "alloc.go" || d.Pos.Line == 0 {
		t.Errorf("diagnostic position = %v, want a line inside alloc.go", d.Pos)
	}
}

func TestNoAllocTargetsFindAnnotations(t *testing.T) {
	moduleDir, err := filepath.Abs(filepath.Join("testdata", "noallocmod"))
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader()
	loader.SetModule(moduleDir, "noallocmod")
	pkg, err := loader.Load(moduleDir, "noallocmod")
	if err != nil {
		t.Fatal(err)
	}
	targets := noallocTargets([]*Package{pkg})
	var names []string
	for _, tg := range targets {
		names = append(names, tg.name)
	}
	want := []string{"Escapes", "Clean", "AllowedColdPath"}
	if len(names) != len(want) {
		t.Fatalf("targets = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("targets = %v, want %v", names, want)
		}
	}
}
