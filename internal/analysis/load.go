package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package, the unit every
// analyzer operates on.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	// Files holds the parsed non-test files, sorted by file name so
	// analyzer output order is deterministic.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking problems. Analyzers run on
	// best-effort information; the driver surfaces these separately.
	TypeErrors []error

	directives map[string]map[string]map[int]bool
}

// Loader parses and type-checks packages from disk without the go
// toolchain's package driver, so it works on the module's own packages
// and on testdata fixtures alike. Standard-library imports are
// type-checked from $GOROOT source (network-free); module-local
// imports resolve recursively through the loader itself.
type Loader struct {
	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package

	moduleRoot string
	modulePath string
}

// NewLoader returns an empty loader.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	l := &Loader{fset: fset, pkgs: make(map[string]*Package)}
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		// The source importer has implemented ImporterFrom since it
		// exists; this is unreachable on any supported toolchain.
		panic("analysis: source importer is not an ImporterFrom")
	}
	l.std = std
	return l
}

// SetModule teaches the loader to resolve imports under path (e.g.
// "barbican") against the package directories below root.
func (l *Loader) SetModule(root, path string) {
	l.moduleRoot = root
	l.modulePath = path
}

// Load parses and type-checks the package in dir under the given
// import path, memoizing by import path.
func (l *Loader) Load(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %q", importPath)
		}
		return pkg, nil
	}
	l.pkgs[importPath] = nil // cycle marker
	pkg, err := l.load(dir, importPath)
	if err != nil {
		delete(l.pkgs, importPath)
		return nil, err
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

func (l *Loader) load(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	pkg := &Package{ImportPath: importPath, Dir: dir, Fset: l.fset}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: &loaderImporter{l: l},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the package even when errors were collected; the
	// analyzers run on whatever information survived.
	tpkg, _ := conf.Check(importPath, l.fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	pkg.directives = collectDirectives(l.fset, pkg.Files)
	return pkg, nil
}

// ModulePath reads the module declaration from root's go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}

// LoadModule parses and type-checks every package under root (the
// directory holding go.mod), skipping testdata, hidden, and vendor
// trees, and returns them sorted by import path.
func (l *Loader) LoadModule(root string) ([]*Package, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	root, err = filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	l.SetModule(root, modPath)

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.Load(dir, importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// hasGoFiles reports whether dir directly contains non-test Go files.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}

// loaderImporter routes module-local import paths to the loader and
// everything else to the standard-library source importer.
type loaderImporter struct {
	l *Loader
}

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := li.l
	if l.modulePath != "" && (path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")) {
		sub := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		pkg, err := l.Load(filepath.Join(l.moduleRoot, filepath.FromSlash(sub)), path)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: %s failed to type-check", path)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
