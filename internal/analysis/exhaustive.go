package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// EnumSpec names one enum type whose constant set must be handled
// exhaustively wherever the code switches over it or builds a keyed
// table from it.
type EnumSpec struct {
	// TypePath is the fully qualified type, "import/path.TypeName".
	TypePath string
	// Sentinels lists constant names excluded from the coverage
	// requirement (array-sizing markers like NumDropReasons).
	Sentinels []string
}

// BarbicanEnums is the repository's enforced taxonomy set: the drop
// reasons behind the nic_drops_total aggregates and Fig. 3 flood
// accounting, the firewall linter's finding kinds, the NIC's
// degraded-mode fail policy and state machine, and the conntrack
// taxonomies (TCP states, eviction policies, commit outcomes, the
// firewall's connection states, and the degraded-recovery policy for
// orphaned state). A constant added to any of these enums without
// updating every switch and export table fails the lint gate instead
// of silently vanishing from artifacts.
var BarbicanEnums = []EnumSpec{
	{TypePath: "barbican/internal/obs/tracing.DropReason", Sentinels: []string{"NumDropReasons"}},
	{TypePath: "barbican/internal/fw.FindingKind", Sentinels: nil},
	{TypePath: "barbican/internal/fw.ConnState", Sentinels: []string{"NumConnStates"}},
	{TypePath: "barbican/internal/nic.FailMode", Sentinels: []string{"NumFailModes"}},
	{TypePath: "barbican/internal/nic.MatchPath", Sentinels: []string{"NumMatchPaths"}},
	{TypePath: "barbican/internal/nic.DegradedState", Sentinels: []string{"NumDegradedStates"}},
	{TypePath: "barbican/internal/nic.StateRecovery", Sentinels: []string{"NumStateRecoveries"}},
	{TypePath: "barbican/internal/nic/conntrack.TCPState", Sentinels: []string{"NumTCPStates"}},
	{TypePath: "barbican/internal/nic/conntrack.EvictPolicy", Sentinels: []string{"NumEvictPolicies"}},
	{TypePath: "barbican/internal/nic/conntrack.CommitStatus", Sentinels: []string{"NumCommitStatuses"}},
	{TypePath: "barbican/internal/obs/profile.Phase", Sentinels: []string{"NumPhases"}},
	{TypePath: "barbican/internal/telemetry.AlertState", Sentinels: []string{"NumAlertStates"}},
	{TypePath: "barbican/internal/fw/sem.RegionClass", Sentinels: []string{"NumRegionClasses"}},
}

// Exhaustive returns the analyzer that enforces full constant coverage
// for the given enums in two syntactic shapes:
//
//   - switch statements whose tag has the enum type. A switch without
//     a default clause is always checked; one with a default is only
//     checked when annotated //barbican:exhaustive (fallback-rendering
//     switches like String methods opt in so new constants cannot hide
//     behind the default).
//   - keyed composite literals (arrays, slices, maps) indexed by the
//     enum's constants — the export-table shape. Any literal using at
//     least one enum constant as a key must use them all.
func Exhaustive(enums []EnumSpec) *Analyzer {
	return &Analyzer{
		Name: "exhaustive",
		Doc:  "require switches and keyed tables over taxonomy enums to handle every constant",
		Run: func(pass *Pass) error {
			for _, spec := range enums {
				checkEnum(pass, spec)
			}
			return nil
		},
	}
}

// enumConstants resolves the spec against the pass's package and its
// imports, returning the enum's named type and its non-sentinel
// constants in value order. Packages that never import the enum's
// package return ok=false and are skipped.
func enumConstants(pass *Pass, spec EnumSpec) (types.Type, []*types.Const, bool) {
	dot := strings.LastIndex(spec.TypePath, ".")
	if dot < 0 || pass.Types() == nil {
		return nil, nil, false
	}
	pkgPath, typeName := spec.TypePath[:dot], spec.TypePath[dot+1:]

	var defPkg *types.Package
	if pass.Types().Path() == pkgPath {
		defPkg = pass.Types()
	} else {
		for _, imp := range pass.Types().Imports() {
			if imp.Path() == pkgPath {
				defPkg = imp
				break
			}
		}
	}
	if defPkg == nil {
		return nil, nil, false
	}
	tn, ok := defPkg.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		return nil, nil, false
	}
	sentinel := make(map[string]bool, len(spec.Sentinels))
	for _, s := range spec.Sentinels {
		sentinel[s] = true
	}
	var consts []*types.Const
	scope := defPkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || sentinel[name] || !types.Identical(c.Type(), tn.Type()) {
			continue
		}
		consts = append(consts, c)
	}
	sort.Slice(consts, func(i, j int) bool {
		vi, _ := constant.Int64Val(consts[i].Val())
		vj, _ := constant.Int64Val(consts[j].Val())
		if vi != vj {
			return vi < vj
		}
		return consts[i].Name() < consts[j].Name()
	})
	return tn.Type(), consts, len(consts) > 0
}

func checkEnum(pass *Pass, spec EnumSpec) {
	enumType, consts, ok := enumConstants(pass, spec)
	if !ok {
		return
	}
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				checkSwitch(pass, spec, enumType, consts, n)
			case *ast.CompositeLit:
				checkKeyedLiteral(pass, spec, enumType, consts, n)
			}
			return true
		})
	}
}

func checkSwitch(pass *Pass, spec EnumSpec, enumType types.Type, consts []*types.Const, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tv, ok := pass.Info().Types[sw.Tag]
	if !ok || !types.Identical(tv.Type, enumType) {
		return
	}
	covered := make(map[string]bool)
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, expr := range cc.List {
			if c := constObject(pass, expr); c != nil {
				covered[c.Name()] = true
			}
		}
	}
	if hasDefault && !pass.Annotated(sw.Pos(), "exhaustive") {
		return
	}
	if missing := missingNames(consts, covered); len(missing) != 0 {
		pass.Reportf(sw.Pos(), "switch over %s is missing cases: %s",
			spec.TypePath, strings.Join(missing, ", "))
	}
}

func checkKeyedLiteral(pass *Pass, spec EnumSpec, enumType types.Type, consts []*types.Const, lit *ast.CompositeLit) {
	covered := make(map[string]bool)
	enumKeys := 0
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		c := constObject(pass, kv.Key)
		if c == nil || !types.Identical(c.Type(), enumType) {
			continue
		}
		enumKeys++
		covered[c.Name()] = true
	}
	if enumKeys == 0 {
		return
	}
	if missing := missingNames(consts, covered); len(missing) != 0 {
		pass.Reportf(lit.Pos(), "table keyed by %s is missing entries: %s",
			spec.TypePath, strings.Join(missing, ", "))
	}
}

// constObject resolves an expression (ident or pkg.Sel) to the
// constant it names, or nil.
func constObject(pass *Pass, expr ast.Expr) *types.Const {
	var id *ast.Ident
	switch expr := expr.(type) {
	case *ast.Ident:
		id = expr
	case *ast.SelectorExpr:
		id = expr.Sel
	default:
		return nil
	}
	c, _ := pass.Info().Uses[id].(*types.Const)
	return c
}

func missingNames(consts []*types.Const, covered map[string]bool) []string {
	var missing []string
	for _, c := range consts {
		if !covered[c.Name()] {
			missing = append(missing, c.Name())
		}
	}
	return missing
}
