// Package analysis is barbican's static-analysis suite: a small,
// self-contained go/analysis-style framework plus the project-specific
// analyzers that machine-enforce the contracts DESIGN.md states in
// prose — no wall-clock reads in deterministic packages (§7), no
// unseeded global randomness, no iteration-order leaks into exported
// artifacts, exhaustive drop-reason/finding-kind taxonomies, and the
// zero-allocation fast paths (§7, bench.sh gate).
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic, testdata fixtures with "// want"
// comments) but depends only on the standard library's go/ast,
// go/parser and go/types, so the repository stays dependency-free.
// Analyzers are driven by cmd/barbicanvet and wired into CI.
//
// # Annotation grammar
//
// Two comment directives steer the suite, both attached to a line
// (trailing comment) or to the line directly above:
//
//	//barbican:allow <check>[,<check>...]   suppress findings of the
//	                                        named checks on that line
//	//barbican:noalloc                      (on a function's doc
//	                                        comment) the function's
//	                                        body must not contain any
//	                                        heap-escaping values per
//	                                        go build -gcflags=-m
//	//barbican:exhaustive                   (on a switch) enforce full
//	                                        enum coverage even though
//	                                        the switch has a default
//
// The allow check names are the analyzer names ("walltime",
// "seededrand", "maporder", "exhaustive") plus "alloc" for the
// noalloc escape-analysis gate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in reports and in
	// //barbican:allow comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer
	// enforces and why.
	Doc string
	// Run executes the check against one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the package's parsed (non-test) files.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// Types returns the type-checked package.
func (p *Pass) Types() *types.Package { return p.Pkg.Types }

// Info returns the package's type information.
func (p *Pass) Info() *types.Info { return p.Pkg.Info }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Annotated reports whether the line holding pos (or the line directly
// above it) carries a //barbican:<tag> directive.
func (p *Pass) Annotated(pos token.Pos, tag string) bool {
	position := p.Pkg.Fset.Position(pos)
	lines := p.Pkg.directives[tag]
	if lines == nil {
		return false
	}
	fl := lines[position.Filename]
	return fl[position.Line] || fl[position.Line-1]
}

// A Diagnostic is one finding, positioned for editors and CI logs.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// directiveRE matches barbican comment directives. The directive must
// start its own comment ("//barbican:allow walltime"), mirroring
// go:build and friends. Anything after " -- " is a human reason and
// is ignored by the machinery:
//
//	//barbican:allow walltime -- speedup telemetry only
var directiveRE = regexp.MustCompile(`^//barbican:([a-z]+)(?:[ \t]+(.*))?$`)

// directives indexes a package's //barbican: comments:
// tag -> filename -> line set. For "allow", the named checks become
// separate tags ("allow walltime" -> tag "allow:walltime").
func collectDirectives(fset *token.FileSet, files []*ast.File) map[string]map[string]map[int]bool {
	out := make(map[string]map[string]map[int]bool)
	mark := func(tag string, pos token.Position) {
		byFile := out[tag]
		if byFile == nil {
			byFile = make(map[string]map[int]bool)
			out[tag] = byFile
		}
		lines := byFile[pos.Filename]
		if lines == nil {
			lines = make(map[int]bool)
			byFile[pos.Filename] = lines
		}
		lines[pos.Line] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				tag, args := m[1], m[2]
				if reason := strings.Index(args, "--"); reason >= 0 {
					args = args[:reason]
				}
				if tag == "allow" {
					for _, check := range strings.FieldsFunc(args, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
						mark("allow:"+check, pos)
					}
					continue
				}
				mark(tag, pos)
			}
		}
	}
	return out
}

// allowed reports whether a finding of the named check at pos is
// suppressed by a //barbican:allow comment on its line or the line
// above.
func (pkg *Package) allowed(check string, pos token.Position) bool {
	byFile := pkg.directives["allow:"+check]
	if byFile == nil {
		return false
	}
	lines := byFile[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

// Run executes the analyzers against each package and returns the
// surviving findings sorted by position. Findings on lines carrying a
// matching //barbican:allow directive are dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			if err := a.Run(pass); err != nil {
				return out, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
			for _, d := range pass.diags {
				if !pkg.allowed(a.Name, d.Pos) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
