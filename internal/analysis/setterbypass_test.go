package analysis

import (
	"path/filepath"
	"testing"
)

func TestSetterbypassFixture(t *testing.T) {
	dir := filepath.Join("testdata", "src", "setterbypass")
	spec := SetterSpec{TypePath: "setterbypass.NIC", Field: "rules", Setter: "setRules"}
	RunFixture(t, dir, "setterbypass", Setterbypass([]SetterSpec{spec}))
}

// TestBarbicanSetterConfig pins the production contract: the NIC's
// active rule set is guarded by setRules.
func TestBarbicanSetterConfig(t *testing.T) {
	for _, spec := range BarbicanSetters {
		if spec.TypePath == "barbican/internal/nic.NIC" && spec.Field == "rules" && spec.Setter == "setRules" {
			return
		}
	}
	t.Error("BarbicanSetters is missing the nic.NIC rules/setRules contract")
}
