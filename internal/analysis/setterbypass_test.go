package analysis

import (
	"path/filepath"
	"testing"
)

func TestSetterbypassFixture(t *testing.T) {
	dir := filepath.Join("testdata", "src", "setterbypass")
	spec := SetterSpec{TypePath: "setterbypass.NIC", Field: "rules", Setter: "setRules",
		Reason: "keeps the caches in sync"}
	RunFixture(t, dir, "setterbypass", Setterbypass([]SetterSpec{spec}))
}

// TestBarbicanSetterConfig pins the production contracts: the NIC's
// active rule set is guarded by setRules and its conntrack table by
// setConntrack — both funnels exist to invalidate the flow cache.
func TestBarbicanSetterConfig(t *testing.T) {
	want := []SetterSpec{
		{TypePath: "barbican/internal/nic.NIC", Field: "rules", Setter: "setRules"},
		{TypePath: "barbican/internal/nic.NIC", Field: "ct", Setter: "setConntrack"},
	}
	for _, w := range want {
		found := false
		for _, spec := range BarbicanSetters {
			if spec.TypePath == w.TypePath && spec.Field == w.Field && spec.Setter == w.Setter {
				found = spec.Reason != ""
			}
		}
		if !found {
			t.Errorf("BarbicanSetters is missing the %s %s/%s contract (with a reason)",
				w.TypePath, w.Field, w.Setter)
		}
	}
}
