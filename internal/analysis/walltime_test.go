package analysis

import (
	"path/filepath"
	"testing"
)

func TestWalltimeFixture(t *testing.T) {
	dir := filepath.Join("testdata", "src", "walltime", "sim")
	RunFixture(t, dir, "fixture/sim", Walltime([]string{"fixture/sim"}))
}

func TestWalltimeIgnoresOtherPackages(t *testing.T) {
	dir := filepath.Join("testdata", "src", "walltime", "other")
	// The fixture calls time.Now with no want comment: the analyzer
	// must stay silent because the package is not in the set.
	RunFixture(t, dir, "fixture/other", Walltime([]string{"fixture/sim"}))
}

func TestDeterministicPackageSet(t *testing.T) {
	// The determinism contract (DESIGN.md §7) names these packages;
	// losing one from the config would silently disable the check.
	want := []string{
		"barbican/internal/sim",
		"barbican/internal/core",
		"barbican/internal/nic",
		"barbican/internal/fw",
		"barbican/internal/stack",
		"barbican/internal/link",
		"barbican/internal/vpg",
		"barbican/internal/experiment",
		"barbican/internal/runner",
	}
	have := make(map[string]bool, len(DeterministicPackages))
	for _, p := range DeterministicPackages {
		have[p] = true
	}
	for _, p := range want {
		if !have[p] {
			t.Errorf("DeterministicPackages is missing %s", p)
		}
	}
}
