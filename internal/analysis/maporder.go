package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Maporder returns the analyzer for the classic nondeterminism leak:
// ranging over a map and letting the iteration order escape — by
// appending to a slice that outlives the loop or by writing output
// from inside the body. Go randomizes map iteration per process, so
// any such path breaks the byte-identical artifact contract.
//
// The analyzer understands the standard repair: if the slice the loop
// fills is passed to a sort (sort.*, slices.Sort*, or any local
// helper whose name contains "sort") later in the same function, the
// order was laundered and the loop is fine. Writes from inside the
// body have no such repair — the bytes are already out — so they are
// always flagged (//barbican:allow maporder documents the exceptions,
// e.g. an order-free aggregate).
func Maporder() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "flag map iteration whose order escapes into slices or output without a sort",
		Run:  runMaporder,
	}
}

func runMaporder(pass *Pass) error {
	for _, f := range pass.Files() {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info().Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rs, parents)
			return true
		})
	}
	return nil
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, parents map[ast.Node]ast.Node) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Nested map ranges report on their own.
			if n != rs {
				if tv, ok := pass.Info().Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info().ObjectOf(id)
				if obj == nil || within(obj.Pos(), rs) {
					continue // loop-local accumulation dies with the loop
				}
				if sortedAfter(pass, rs, obj, parents) {
					continue
				}
				pass.Reportf(n.Pos(),
					"map iteration order escapes into %q, which is never sorted afterwards in this function; sort it or //barbican:allow maporder with a reason",
					id.Name)
			}
		case *ast.CallExpr:
			if name, ok := writerCall(pass, n); ok {
				pass.Reportf(n.Pos(),
					"%s inside a map range writes output in iteration order; collect and sort first, or //barbican:allow maporder with a reason",
					name)
			}
		}
		return true
	})
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info().Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// writerCall reports whether call is an output write (fmt.Fprint*,
// fmt.Print*, or a Write*/Print* method) and names it for the report.
func writerCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	writer := strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")
	if !writer {
		return "", false
	}
	if isPackageRef(pass, sel.X, "fmt") || isPackageRef(pass, sel.X, "os") {
		return "fmt-style call " + name, true
	}
	// A method named Write*/Print* on any value (strings.Builder,
	// io.Writer, exporters).
	if _, isMethod := pass.Info().Selections[sel]; isMethod {
		return "call to method " + name, true
	}
	return "", false
}

// sortedAfter reports whether obj is passed to a sorting call in any
// statement that follows the range loop inside its enclosing blocks,
// up to the function boundary.
func sortedAfter(pass *Pass, rs *ast.RangeStmt, obj types.Object, parents map[ast.Node]ast.Node) bool {
	var child ast.Node = rs
	for node := parents[rs]; node != nil; node = parents[node] {
		if stmts := blockStmts(node); stmts != nil {
			after := false
			for _, s := range stmts {
				if after && containsSortOf(pass, s, obj) {
					return true
				}
				if s == child {
					after = true
				}
			}
		}
		if _, isFunc := node.(*ast.FuncDecl); isFunc {
			return false
		}
		if _, isFunc := node.(*ast.FuncLit); isFunc {
			return false
		}
		child = node
	}
	return false
}

// blockStmts returns the statement list of block-like nodes.
func blockStmts(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// containsSortOf reports whether the statement contains a sorting call
// that references obj: a call into package sort or slices, or a call
// to anything whose name mentions "sort" (local helpers).
func containsSortOf(pass *Pass, stmt ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if !isSortingCallee(pass, call.Fun) {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortingCallee(pass *Pass, fun ast.Expr) bool {
	switch fun := fun.(type) {
	case *ast.SelectorExpr:
		if isPackageRef(pass, fun.X, "sort") || isPackageRef(pass, fun.X, "slices") {
			return true
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	}
	return false
}

func mentionsObject(pass *Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info().ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// within reports whether pos falls inside node's source range.
func within(pos token.Pos, node ast.Node) bool {
	return node.Pos() <= pos && pos < node.End()
}

// buildParents maps every node in f to its parent.
func buildParents(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
