package analysis

import (
	"path/filepath"
	"testing"
)

func TestMaporderFixture(t *testing.T) {
	dir := filepath.Join("testdata", "src", "maporder")
	RunFixture(t, dir, "fixture/maporder", Maporder())
}
