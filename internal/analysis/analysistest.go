package analysis

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// wantRE matches fixture expectations: `// want "regexp"` with one or
// more quoted patterns (double quotes or backticks), mirroring
// x/tools analysistest.
var wantRE = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)$")

var wantPatternRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type wantExpectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// RunFixture loads the fixture package in dir under importPath, runs
// the analyzer, and compares its findings against the fixture's
// `// want "re"` comments: every finding must be expected and every
// expectation must fire.
func RunFixture(t *testing.T, dir, importPath string, a *Analyzer) {
	t.Helper()
	loader := NewLoader()
	pkg, err := loader.Load(dir, importPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, importPath, err)
	}
	checkExpectations(t, pkg, diags)
}

func checkExpectations(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		if !claimWant(wants, d) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func collectWants(t *testing.T, pkg *Package) []*wantExpectation {
	t.Helper()
	var wants []*wantExpectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want ") {
						t.Fatalf("%s: malformed want comment: %s", pkg.Fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pm := range wantPatternRE.FindAllStringSubmatch(m[1], -1) {
					unquoted := pm[2] // backtick form: literal, no escapes
					if pm[2] == "" && strings.HasPrefix(pm[0], `"`) {
						var err error
						unquoted, err = unescapeWant(pm[1])
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pm[1], err)
						}
					}
					re, err := regexp.Compile(unquoted)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, unquoted, err)
					}
					wants = append(wants, &wantExpectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants
}

func unescapeWant(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case '"', '\\':
				b.WriteByte(s[i])
			default:
				return "", fmt.Errorf("unsupported escape \\%c", s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}

func claimWant(wants []*wantExpectation, d Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
