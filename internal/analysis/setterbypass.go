package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// A SetterSpec names one struct field whose writes must all funnel
// through a designated setter method on the same type. The analyzer
// flags any other assignment to the field — the "setter bypass" that
// silently breaks whatever invariant the setter maintains.
type SetterSpec struct {
	// TypePath is the fully qualified struct type, "import/path.TypeName".
	TypePath string
	// Field is the guarded field's name.
	Field string
	// Setter is the only method allowed to assign the field.
	Setter string
	// Reason, when set, names the invariant the setter maintains; it
	// is folded into the finding message so a bypass report explains
	// what the direct write would break.
	Reason string
}

// BarbicanSetters is the repository's enforced setter contracts, all
// guarding the same invariant from different angles: the per-flow
// verdict cache must never outlive the state that produced its
// verdicts. The NIC's active rule set may change only through
// setRules (which also rebuilds the compiled matcher), and its
// conntrack table only through setConntrack — cached verdicts are
// keyed by the conn-state classification the old table produced, so
// swapping the table without flushing the cache serves stale state.
var BarbicanSetters = []SetterSpec{
	{TypePath: "barbican/internal/nic.NIC", Field: "rules", Setter: "setRules",
		Reason: "keeps the compiled matcher in sync and invalidates the flow cache"},
	{TypePath: "barbican/internal/nic.NIC", Field: "ct", Setter: "setConntrack",
		Reason: "invalidates the flow cache, whose verdicts are keyed by the old table's conn-state classification"},
}

// Setterbypass returns the analyzer that enforces setter contracts:
// every assignment to a guarded field outside its designated setter
// method is a finding (//barbican:allow setterbypass documents any
// deliberate exception, with a reason).
func Setterbypass(specs []SetterSpec) *Analyzer {
	return &Analyzer{
		Name: "setterbypass",
		Doc:  "flag direct writes to setter-guarded struct fields outside their designated setter",
		Run: func(pass *Pass) error {
			for _, spec := range specs {
				checkSetterSpec(pass, spec)
			}
			return nil
		},
	}
}

// checkSetterSpec flags writes to the spec's field in this package.
// Packages that cannot see the guarded type are skipped; in practice
// only the defining package can write an unexported field at all.
func checkSetterSpec(pass *Pass, spec SetterSpec) {
	named := lookupNamed(pass, spec.TypePath)
	if named == nil {
		return
	}
	field := structField(named, spec.Field)
	if field == nil {
		return
	}
	for _, f := range pass.Files() {
		// The setter's declaration ranges in this file; assignments
		// inside them (including in function literals the setter
		// defines) are the sanctioned writes.
		var setters []*ast.FuncDecl
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && isMethodOn(pass, fd, named, spec.Setter) {
				setters = append(setters, fd)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				pos, ok := guardedFieldWrite(pass, lhs, field)
				if !ok || insideAny(pos, setters) {
					continue
				}
				why := spec.Reason
				if why == "" {
					why = "maintains an invariant the direct write skips"
				}
				pass.Reportf(pos,
					"direct write to %s.%s bypasses %s, which %s; call the setter or //barbican:allow setterbypass with a reason",
					named.Obj().Name(), spec.Field, spec.Setter, why)
			}
			return true
		})
	}
}

// lookupNamed resolves "import/path.TypeName" against the pass's
// package and its imports, returning nil when the type is not visible
// from this package.
func lookupNamed(pass *Pass, typePath string) *types.Named {
	dot := strings.LastIndex(typePath, ".")
	if dot < 0 || pass.Types() == nil {
		return nil
	}
	pkgPath, typeName := typePath[:dot], typePath[dot+1:]
	var defPkg *types.Package
	if pass.Types().Path() == pkgPath {
		defPkg = pass.Types()
	} else {
		for _, imp := range pass.Types().Imports() {
			if imp.Path() == pkgPath {
				defPkg = imp
				break
			}
		}
	}
	if defPkg == nil {
		return nil
	}
	tn, ok := defPkg.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	return named
}

// structField returns the named type's direct struct field, nil if the
// underlying type is not a struct or has no such field.
func structField(named *types.Named, name string) *types.Var {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == name {
			return f
		}
	}
	return nil
}

// guardedFieldWrite reports whether lhs selects exactly the guarded
// field (object identity, so embedding-promoted selections of the same
// field still match) and returns the position to report.
func guardedFieldWrite(pass *Pass, lhs ast.Expr, field *types.Var) (token.Pos, bool) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return token.NoPos, false
	}
	s, ok := pass.Info().Selections[sel]
	if !ok || s.Kind() != types.FieldVal || s.Obj() != field {
		return token.NoPos, false
	}
	return sel.Pos(), true
}

// isMethodOn reports whether fd declares the named method on the given
// type (value or pointer receiver).
func isMethodOn(pass *Pass, fd *ast.FuncDecl, named *types.Named, name string) bool {
	if fd.Name.Name != name || fd.Recv == nil {
		return false
	}
	fn, ok := pass.Info().Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	rn, ok := t.(*types.Named)
	return ok && rn.Obj() == named.Obj()
}

// insideAny reports whether pos falls within any of the declarations.
func insideAny(pos token.Pos, decls []*ast.FuncDecl) bool {
	for _, d := range decls {
		if within(pos, d) {
			return true
		}
	}
	return false
}
