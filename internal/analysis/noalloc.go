package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// The noalloc gate turns the bench.sh allocs/op contract into a
// build-time check: functions annotated //barbican:noalloc (the
// BenchmarkRxPath and BenchmarkFloodMarshal hot paths) must contain no
// heap-escaping values according to the compiler's own escape
// analysis (go build -gcflags=-m). Escape analysis is a superset of
// what the benchmarks observe — it flags cold branches too — so
// deliberate off-fast-path allocations (freelist refills, traced-only
// branches) carry a line-level //barbican:allow alloc with a reason.
// Unlike the benchmark gate this fails deterministically, on any
// machine, before anything runs.

// noallocFunc is one annotated function's source extent.
type noallocFunc struct {
	pkg       *Package
	name      string
	file      string // absolute, cleaned
	startLine int
	endLine   int
}

// escapeLineRE matches the compiler diagnostics we care about, e.g.
// "internal/nic/nic.go:498:8: &pendingIngress{} escapes to heap".
var escapeLineRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// noallocTargets scans the packages for functions whose doc comment
// carries //barbican:noalloc.
func noallocTargets(pkgs []*Package) []noallocFunc {
	var targets []noallocFunc
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil || fd.Body == nil {
					continue
				}
				annotated := false
				for _, c := range fd.Doc.List {
					if strings.TrimSpace(c.Text) == "//barbican:noalloc" {
						annotated = true
						break
					}
				}
				if !annotated {
					continue
				}
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				abs, err := filepath.Abs(start.Filename)
				if err != nil {
					abs = start.Filename
				}
				targets = append(targets, noallocFunc{
					pkg:       pkg,
					name:      funcDisplayName(fd),
					file:      filepath.Clean(abs),
					startLine: start.Line,
					endLine:   end.Line,
				})
			}
		}
	}
	return targets
}

func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	if id, ok := recv.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// NoAllocGate runs the escape-analysis check for every
// //barbican:noalloc function in pkgs. moduleDir is the module root
// the compiler runs in; build patterns default to ./... so the escape
// output covers every package. The returned diagnostics are already
// filtered through //barbican:allow alloc line annotations.
func NoAllocGate(moduleDir string, pkgs []*Package) ([]Diagnostic, error) {
	targets := noallocTargets(pkgs)
	if len(targets) == 0 {
		return nil, nil
	}
	out, err := escapeAnalysis(moduleDir)
	if err != nil {
		return nil, err
	}

	byFile := make(map[string][]noallocFunc)
	for _, t := range targets {
		byFile[t.file] = append(byFile[t.file], t)
	}

	var diags []Diagnostic
	seen := make(map[string]bool)
	for _, line := range strings.Split(out, "\n") {
		m := escapeLineRE.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(moduleDir, file)
		}
		file = filepath.Clean(file)
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		for _, t := range byFile[file] {
			if lineNo < t.startLine || lineNo > t.endLine {
				continue
			}
			pos := token.Position{Filename: file, Line: lineNo, Column: col}
			if t.pkg.allowed("alloc", pos) {
				continue
			}
			key := fmt.Sprintf("%s:%d: %s", file, lineNo, msg)
			if seen[key] {
				continue
			}
			seen[key] = true
			diags = append(diags, Diagnostic{
				Analyzer: "noalloc",
				Pos:      pos,
				Message: fmt.Sprintf("%s is //barbican:noalloc but escape analysis reports %q; keep the fast path allocation-free or annotate the line //barbican:allow alloc with a reason",
					t.name, msg),
			})
		}
	}
	return diags, nil
}

// escapeAnalysis compiles the module with -gcflags=-m and returns the
// compiler diagnostics. Build outputs are discarded (multi-package
// go build compiles as a check only); the build cache replays the
// diagnostics on unchanged packages, so repeat runs are cheap.
func escapeAnalysis(moduleDir string) (string, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = moduleDir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("analysis: go build -gcflags=-m in %s: %w\n%s", moduleDir, err, out)
	}
	return string(out), nil
}
