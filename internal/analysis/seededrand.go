package analysis

import (
	"go/ast"
	"go/types"
)

// seededrandAllowed names the math/rand package-level functions that
// construct explicitly seeded generators — the only sanctioned way to
// get randomness anywhere in the repository.
var seededrandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// Seededrand returns the analyzer that forbids the global math/rand
// convenience functions (rand.Intn, rand.Float64, rand.Shuffle, ...)
// in non-test code. The global source is process-seeded, so any use
// makes a run irreproducible; experiments must draw from the kernel's
// seeded *rand.Rand (sim.Kernel.Rand) or another explicitly seeded
// generator. math/rand/v2 has no seedable global at all, so its
// top-level functions are forbidden outright.
func Seededrand() *Analyzer {
	return &Analyzer{
		Name: "seededrand",
		Doc:  "forbid global math/rand top-level functions; only explicitly seeded *rand.Rand sources",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files() {
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					id, ok := sel.X.(*ast.Ident)
					if !ok {
						return true
					}
					pn, ok := pass.Info().Uses[id].(*types.PkgName)
					if !ok {
						return true
					}
					// Only package-level functions are process-seeded;
					// type references like rand.Rand are fine.
					if _, ok := pass.Info().Uses[sel.Sel].(*types.Func); !ok {
						return true
					}
					switch pn.Imported().Path() {
					case "math/rand":
						if !seededrandAllowed[sel.Sel.Name] {
							pass.Reportf(sel.Pos(),
								"global math/rand.%s draws from the process-seeded source; use an explicitly seeded *rand.Rand (sim.Kernel.Rand)",
								sel.Sel.Name)
						}
					case "math/rand/v2":
						if !seededrandAllowed[sel.Sel.Name] {
							pass.Reportf(sel.Pos(),
								"math/rand/v2.%s cannot be seeded; use an explicitly seeded *rand.Rand (sim.Kernel.Rand)",
								sel.Sel.Name)
						}
					}
					return true
				})
			}
			return nil
		},
	}
}
