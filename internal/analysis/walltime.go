package analysis

import (
	"go/ast"
	"go/types"
)

// DeterministicPackages lists the import paths whose behavior must be
// a pure function of the simulation inputs (DESIGN.md §7): everything
// they compute has to come from the kernel's virtual clock and seeded
// RNG, never from the host. The walltime analyzer enforces it.
var DeterministicPackages = []string{
	"barbican/internal/sim",
	"barbican/internal/core",
	"barbican/internal/nic",
	"barbican/internal/fw",
	"barbican/internal/stack",
	"barbican/internal/link",
	"barbican/internal/vpg",
	"barbican/internal/experiment",
	"barbican/internal/runner",
}

// walltimeForbidden names the package time functions that read or wait
// on the host clock. time.Duration arithmetic and the Duration
// constants remain free — they are values, not clock reads.
var walltimeForbidden = map[string]string{
	"Now":       "reads the host clock",
	"Since":     "reads the host clock",
	"Until":     "reads the host clock",
	"Sleep":     "blocks on the host clock",
	"Tick":      "starts a host-clock ticker",
	"After":     "starts a host-clock timer",
	"AfterFunc": "starts a host-clock timer",
	"NewTimer":  "starts a host-clock timer",
	"NewTicker": "starts a host-clock ticker",
}

// Walltime returns the analyzer that forbids host-clock reads inside
// the given deterministic packages. A byte-identical serial/parallel
// contract cannot survive a single time.Now in a result path, so the
// escape hatch (//barbican:allow walltime) is reserved for the
// kernel's per-Run wall-clock accounting pair, which feeds speedup
// telemetry only, never simulated state.
func Walltime(deterministic []string) *Analyzer {
	paths := make(map[string]bool, len(deterministic))
	for _, p := range deterministic {
		paths[p] = true
	}
	return &Analyzer{
		Name: "walltime",
		Doc:  "forbid time.Now/Since/Sleep and host-clock timers in deterministic packages",
		Run: func(pass *Pass) error {
			if pass.Types() == nil || !paths[pass.Types().Path()] {
				return nil
			}
			for _, f := range pass.Files() {
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					reason, bad := walltimeForbidden[sel.Sel.Name]
					if !bad || !isPackageRef(pass, sel.X, "time") {
						return true
					}
					pass.Reportf(sel.Pos(),
						"time.%s %s; deterministic package %s must use the kernel's virtual clock (sim.Kernel.Now)",
						sel.Sel.Name, reason, pass.Types().Path())
					return true
				})
			}
			return nil
		},
	}
}

// isPackageRef reports whether expr is a reference to the package
// imported from the given path (alias-safe: it resolves the identifier
// to its PkgName object rather than comparing spelling).
func isPackageRef(pass *Pass, expr ast.Expr, path string) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info().Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}
