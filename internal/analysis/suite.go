package analysis

// Suite returns the repository's analyzer set with its production
// configuration — the checks cmd/barbicanvet runs and CI enforces.
// The noalloc escape-analysis gate runs separately (NoAllocGate): it
// needs the compiler, not just the AST.
func Suite() []*Analyzer {
	return []*Analyzer{
		Walltime(DeterministicPackages),
		Seededrand(),
		Maporder(),
		Exhaustive(BarbicanEnums),
		Setterbypass(BarbicanSetters),
	}
}
