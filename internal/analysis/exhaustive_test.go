package analysis

import (
	"path/filepath"
	"testing"
)

func TestExhaustiveFixture(t *testing.T) {
	dir := filepath.Join("testdata", "src", "exhaustive")
	spec := EnumSpec{TypePath: "exhaustive.Reason", Sentinels: []string{"NumReasons"}}
	RunFixture(t, dir, "exhaustive", Exhaustive([]EnumSpec{spec}))
}

func TestBarbicanEnumConfig(t *testing.T) {
	want := map[string]bool{
		"barbican/internal/obs/tracing.DropReason": true,
		"barbican/internal/fw.FindingKind":         true,
		"barbican/internal/nic.FailMode":           true,
		"barbican/internal/nic.DegradedState":      true,
	}
	for _, spec := range BarbicanEnums {
		delete(want, spec.TypePath)
	}
	for missing := range want {
		t.Errorf("BarbicanEnums is missing %s", missing)
	}
}
