// Package noallocmod is the fixture module for the escape-analysis
// gate: it is compiled with go build -gcflags=-m by the noalloc test.
package noallocmod

// Escapes violates its annotation: the local is moved to the heap.
//
//barbican:noalloc
func Escapes() *int {
	x := 42
	return &x
}

// Clean honors the annotation: everything stays on the stack.
//
//barbican:noalloc
func Clean(xs []int) int {
	sum := 0
	for _, v := range xs {
		sum += v
	}
	return sum
}

// AllowedColdPath allocates on a refill branch that the fast path
// never takes; the line-level annotation documents it.
//
//barbican:noalloc
func AllowedColdPath(trigger bool) *int {
	if trigger {
		p := new(int) //barbican:allow alloc -- cold-path freelist refill
		return p
	}
	return nil
}

// Unannotated may allocate freely; the gate must not look at it.
func Unannotated() *int {
	y := 7
	return &y
}
