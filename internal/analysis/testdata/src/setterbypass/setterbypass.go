// Package setterbypass is the fixture for the setter-contract check.
// The test enforces the spec setterbypass.NIC, field rules, setter
// setRules — mirroring the production contract on the real NIC.
package setterbypass

// RuleSet stands in for the policy a card enforces.
type RuleSet struct{ n int }

// NIC mimics the card: the active rule set and the caches the setter
// keeps consistent with it.
type NIC struct {
	rules    *RuleSet
	compiled *RuleSet
	dirty    bool
}

// setRules is the sanctioned write path.
func (n *NIC) setRules(rs *RuleSet) {
	n.rules = rs // the setter's own assignment is the contract, not a finding
	n.compiled = rs
	deferred := func() {
		n.rules = rs // still inside the setter, still sanctioned
	}
	deferred()
}

// install funnels through the setter: no findings.
func (n *NIC) install(rs *RuleSet) {
	n.setRules(rs)
	n.dirty = false // unguarded sibling fields assign freely
}

// restore is the bypass the production bug looked like: a watchdog
// path assigning the field directly, skipping cache invalidation.
func (n *NIC) restore(committed *RuleSet) {
	n.rules = committed // want `direct write to NIC.rules bypasses setRules`
}

// clear bypasses through a tuple assignment.
func (n *NIC) clear() {
	n.rules, n.dirty = nil, false // want `direct write to NIC.rules bypasses setRules`
}

// fromOutside writes the field from a plain function.
func fromOutside(n *NIC) {
	n.rules = &RuleSet{} // want `direct write to NIC.rules bypasses setRules`
}

// setRules the free function is NOT the method: same name, no receiver.
func setRules(n *NIC, rs *RuleSet) {
	n.rules = rs // want `direct write to NIC.rules bypasses setRules`
}

// card embeds NIC; a write through the promoted field is the same
// field object and still a bypass.
type card struct {
	NIC
	slot int
}

func (c *card) swap(rs *RuleSet) {
	c.rules = rs // want `direct write to NIC.rules bypasses setRules`
}

// otherNIC has its own rules field; it is not under contract.
type otherNIC struct {
	rules *RuleSet
}

func (o *otherNIC) set(rs *RuleSet) {
	o.rules = rs // a different type's field: no finding
}

// allowedBypass documents a deliberate exception with the directive.
func allowedBypass(n *NIC) {
	//barbican:allow setterbypass -- fixture demonstrates the escape hatch
	n.rules = nil
}

// reads of the guarded field are always fine.
func reads(n *NIC) *RuleSet {
	if n.rules != nil {
		return n.rules
	}
	return n.compiled
}
