// Package maporder is the fixture for the iteration-order check.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

func escapesUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `map iteration order escapes into "out"`
	}
	return out
}

func sortedAfterLoop(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedViaSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func sortedByLocalHelper(m map[float64]bool) []float64 {
	var xs []float64
	for x := range m {
		xs = append(xs, x)
	}
	sortFloats(xs)
	return xs
}

func sortFloats(xs []float64) {
	sort.Float64s(xs)
}

func sortedInOuterBlock(m map[string]int, cond bool) []string {
	var out []string
	if cond {
		for k := range m {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func writesInsideLoop(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want `call to method WriteString inside a map range writes output`
	}
}

func printsInsideLoop(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt-style call Println inside a map range writes output`
	}
}

func allowedAggregate(m map[string]int) int {
	max := 0
	var keys []string
	for k, v := range m {
		if v > max {
			max = v
		}
		keys = append(keys, k) //barbican:allow maporder -- fixture escape hatch
	}
	_ = keys
	return max
}

func loopLocalIsFine(m map[string]int) int {
	total := 0
	for k := range m {
		var parts []string
		parts = append(parts, k)
		total += len(parts)
	}
	return total
}

func mapToMapIsFine(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func rangeOverSliceIsFine(s []string, b *strings.Builder) {
	for _, v := range s {
		b.WriteString(v)
	}
}
