// Package sim is a walltime fixture standing in for a deterministic
// package: the test registers its import path in the analyzer config.
package sim

import (
	"time"
	tt "time"
)

// Clock is a stand-in virtual clock.
type Clock struct{ now time.Duration }

func bad() time.Time {
	t := time.Now()                // want `time.Now reads the host clock`
	time.Sleep(time.Millisecond)   // want `time.Sleep blocks on the host clock`
	_ = time.Since(t)              // want `time.Since reads the host clock`
	_ = time.Until(t)              // want `time.Until reads the host clock`
	_ = tt.Now()                   // want `time.Now reads the host clock`
	_ = time.After(time.Second)    // want `time.After starts a host-clock timer`
	_ = time.NewTimer(time.Second) // want `time.NewTimer starts a host-clock timer`
	tk := time.NewTicker(1)        // want `time.NewTicker starts a host-clock ticker`
	tk.Stop()
	return t
}

func allowedSameLine() time.Time {
	return time.Now() //barbican:allow walltime
}

func allowedLineAbove() time.Time {
	//barbican:allow walltime -- per-Run accounting pair, speedup telemetry only
	return time.Now()
}

func fine(c *Clock) time.Duration {
	// Duration arithmetic and constants never touch the host clock.
	d := 5 * time.Millisecond
	c.now += d
	_ = time.Duration(42).Round(time.Second)
	return c.now
}
