// Package other is outside the deterministic set: the walltime
// analyzer must stay silent here even though it reads the host clock.
package other

import "time"

// Timestamp is legitimate at the CLI boundary.
func Timestamp() time.Time { return time.Now() }
