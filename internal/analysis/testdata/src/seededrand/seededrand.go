// Package seededrand is the fixture for the global-randomness check.
package seededrand

import (
	"math/rand"
	mrand "math/rand"
)

func bad() {
	_ = rand.Intn(10)                  // want `global math/rand.Intn draws from the process-seeded source`
	_ = rand.Float64()                 // want `global math/rand.Float64 draws from the process-seeded source`
	_ = mrand.Int63()                  // want `global math/rand.Int63 draws from the process-seeded source`
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand.Shuffle draws from the process-seeded source`
	var p []int
	p = rand.Perm(4) // want `global math/rand.Perm draws from the process-seeded source`
	_ = p
}

func allowed() {
	//barbican:allow seededrand -- fixture demonstrates the escape hatch
	_ = rand.Intn(10)
}

func fine(seed int64) *rand.Rand {
	// Explicitly seeded construction is the sanctioned pattern.
	r := rand.New(rand.NewSource(seed))
	_ = r.Intn(10) // methods on a seeded *rand.Rand are fine
	return r
}
