// Package exhaustive is the fixture for the enum-coverage check. The
// test enforces the spec exhaustive.Reason with sentinel NumReasons.
package exhaustive

// Reason mimics a drop-reason taxonomy.
type Reason uint8

const (
	None Reason = iota
	Deny
	Overflow
	Malformed

	NumReasons // sentinel
)

// otherType must never be conflated with Reason.
type otherType int

const otherA otherType = 1

func completeSwitch(r Reason) int {
	switch r {
	case None:
		return 0
	case Deny:
		return 1
	case Overflow:
		return 2
	case Malformed:
		return 3
	}
	return -1
}

func missingCase(r Reason) int {
	switch r { // want `switch over exhaustive.Reason is missing cases: Overflow, Malformed`
	case None:
		return 0
	case Deny:
		return 1
	}
	return -1
}

func defaultExemptsUnlessAnnotated(r Reason) int {
	switch r {
	case None:
		return 0
	default:
		return -1
	}
}

func annotatedDefaultIsChecked(r Reason) string {
	//barbican:exhaustive
	switch r { // want `switch over exhaustive.Reason is missing cases: Overflow, Malformed`
	case None:
		return "none"
	case Deny:
		return "deny"
	default:
		return "?"
	}
}

func multiValueCase(r Reason) bool {
	switch r {
	case None, Deny:
		return false
	case Overflow, Malformed:
		return true
	}
	return false
}

var completeTable = [...]string{
	None:      "none",
	Deny:      "deny",
	Overflow:  "overflow",
	Malformed: "malformed",
}

var missingTable = [...]string{ // want `table keyed by exhaustive.Reason is missing entries: Overflow, Malformed`
	None: "none",
	Deny: "deny",
}

var missingMap = map[Reason]int{ // want `table keyed by exhaustive.Reason is missing entries: Malformed`
	None:     0,
	Deny:     1,
	Overflow: 2,
}

var allowedPartial = map[Reason]int{ //barbican:allow exhaustive -- deliberate subset
	Deny: 1,
}

// Literals not keyed by the enum stay out of scope.
var unrelated = map[otherType]string{otherA: "a"}

var plainSlice = []string{"x", "y"}

func otherSwitch(o otherType) int {
	switch o {
	case otherA:
		return 1
	}
	return 0
}
