package link

import "barbican/internal/obs"

// PublishMetrics registers the endpoint's transmit-direction counters
// with the registry as collector closures; the frame path is untouched.
func (e *Endpoint) PublishMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.MustRegisterFunc("link_tx_frames_total", "Frames accepted for transmission.",
		obs.KindCounter, func() float64 { return float64(e.dir.stats.SentFrames) }, labels...)
	reg.MustRegisterFunc("link_tx_bytes_total", "Wire bytes transmitted, including preamble/IFG.",
		obs.KindCounter, func() float64 { return float64(e.dir.stats.SentBytes) }, labels...)
	reg.MustRegisterFunc("link_tx_dropped_total", "Frames dropped on transmit queue overflow.",
		obs.KindCounter, func() float64 { return float64(e.dir.stats.DroppedFrames) }, labels...)
	reg.MustRegisterFunc("link_tx_queue_depth", "Frames queued for transmission.",
		obs.KindGauge, func() float64 { return float64(e.dir.queued) }, labels...)
	reg.MustRegisterFunc("link_tx_busy_seconds", "Remaining serialization backlog, in time.",
		obs.KindGauge, func() float64 { return e.Busy().Seconds() }, labels...)
	reg.MustRegisterFunc("link_fault_lost_total", "Frames consumed by fault injection (loss or down window).",
		obs.KindCounter, func() float64 { return float64(e.dir.stats.FaultLost) }, labels...)
	reg.MustRegisterFunc("link_fault_corrupted_total", "Frames delivered with injected bit corruption.",
		obs.KindCounter, func() float64 { return float64(e.dir.stats.FaultCorrupted) }, labels...)
	reg.MustRegisterFunc("link_fault_duplicated_total", "Frames delivered more than once by fault injection.",
		obs.KindCounter, func() float64 { return float64(e.dir.stats.FaultDuplicated) }, labels...)
	reg.MustRegisterFunc("link_fault_reordered_total", "Frames delayed for reordering by fault injection.",
		obs.KindCounter, func() float64 { return float64(e.dir.stats.FaultReordered) }, labels...)
}

// PublishMetrics registers the switch's forwarding counters with the
// registry as collector closures.
func (s *Switch) PublishMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.MustRegisterFunc("switch_forwarded_total", "Frames forwarded to a learned port.",
		obs.KindCounter, func() float64 { return float64(s.stats.Forwarded) }, labels...)
	reg.MustRegisterFunc("switch_flooded_total", "Frames flooded (unknown destination or broadcast).",
		obs.KindCounter, func() float64 { return float64(s.stats.Flooded) }, labels...)
	reg.MustRegisterFunc("switch_dropped_total", "Frames dropped at egress (link queue overflow).",
		obs.KindCounter, func() float64 { return float64(s.stats.Dropped) }, labels...)
	reg.MustRegisterFunc("switch_ports", "Attached ports.",
		obs.KindGauge, func() float64 { return float64(len(s.ports)) }, labels...)
	reg.MustRegisterFunc("switch_learned_macs", "MAC addresses in the forwarding table.",
		obs.KindGauge, func() float64 { return float64(len(s.macs)) }, labels...)
}
