package link

import (
	"time"

	"barbican/internal/obs/tracing"
	"barbican/internal/packet"
	"barbican/internal/sim"
)

// DefaultSwitchLatency is the store-and-forward processing latency of the
// modeled switch, on top of full-frame reception (which the ingress link
// already accounts for).
const DefaultSwitchLatency = 5 * time.Microsecond

// SwitchConfig parameterizes a Switch.
type SwitchConfig struct {
	// Latency is the per-frame forwarding latency; zero defaults to
	// DefaultSwitchLatency.
	Latency time.Duration
	// Link configures the access links created by NewPort.
	Link Config
}

// SwitchStats counts switch-level activity.
type SwitchStats struct {
	Forwarded uint64 // frames forwarded to a learned port
	Flooded   uint64 // frames flooded (unknown destination or broadcast)
	Dropped   uint64 // frames dropped at egress (link queue overflow)
}

// Switch is a store-and-forward Ethernet learning switch.
type Switch struct {
	kernel *sim.Kernel
	cfg    SwitchConfig
	ports  []*Endpoint // switch-side endpoints
	macs   map[packet.MAC]int
	stats  SwitchStats
	tracer *tracing.Tracer
}

// NewSwitch creates an empty switch.
func NewSwitch(k *sim.Kernel, cfg SwitchConfig) *Switch {
	if cfg.Latency == 0 {
		cfg.Latency = DefaultSwitchLatency
	}
	return &Switch{kernel: k, cfg: cfg, macs: make(map[packet.MAC]int)}
}

// NewPort creates an access link, connects one end to the switch, and
// returns the station-side endpoint for a host NIC to use.
func (s *Switch) NewPort() *Endpoint {
	station, swSide := New(s.kernel, s.cfg.Link)
	port := len(s.ports)
	s.ports = append(s.ports, swSide)
	swSide.SetTracer(s.tracer)
	swSide.Attach(func(f *packet.Frame) { s.ingress(port, f) })
	return station
}

// SetTracer attaches (or with nil detaches) a packet-lifecycle tracer
// to the switch and every switch-side port direction: traced frames
// record the store-and-forward latency and egress-link spans.
func (s *Switch) SetTracer(tr *tracing.Tracer) {
	s.tracer = tr
	for _, p := range s.ports {
		p.SetTracer(tr)
	}
}

// Ports returns the number of attached ports.
func (s *Switch) Ports() int { return len(s.ports) }

// Stats returns switch-level statistics.
func (s *Switch) Stats() SwitchStats { return s.stats }

// LearnedPort returns the port a MAC was learned on, or -1.
func (s *Switch) LearnedPort(m packet.MAC) int {
	if p, ok := s.macs[m]; ok {
		return p
	}
	return -1
}

func (s *Switch) ingress(port int, f *packet.Frame) {
	if !f.Src.IsBroadcast() {
		s.macs[f.Src] = port
	}
	if s.tracer != nil && f.TraceID != 0 {
		now := s.kernel.Now()
		s.tracer.Span(f.TraceID, tracing.StageSwitch, now, now+s.cfg.Latency)
	}
	s.kernel.After(s.cfg.Latency, func() { s.egress(port, f) })
}

func (s *Switch) egress(inPort int, f *packet.Frame) {
	if !f.Dst.IsBroadcast() {
		if out, ok := s.macs[f.Dst]; ok {
			if out == inPort {
				return // destination is behind the ingress port; filter
			}
			s.stats.Forwarded++
			if !s.ports[out].Send(f) {
				s.stats.Dropped++
			}
			return
		}
	}
	s.stats.Flooded++
	for i, p := range s.ports {
		if i == inPort {
			continue
		}
		if !p.Send(f.Clone()) {
			s.stats.Dropped++
		}
	}
}
