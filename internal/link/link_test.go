package link

import (
	"math"
	"testing"
	"time"

	"barbican/internal/packet"
	"barbican/internal/sim"
)

func frame(dst, src byte, payload int) *packet.Frame {
	return &packet.Frame{
		Dst:     packet.MAC{2, 0, 0, 0, 0, dst},
		Src:     packet.MAC{2, 0, 0, 0, 0, src},
		Type:    packet.EtherTypeIPv4,
		Payload: make([]byte, payload),
	}
}

func TestLinkDeliversFrames(t *testing.T) {
	k := sim.NewKernel()
	a, b := New(k, Config{})
	var got []*packet.Frame
	b.Attach(func(f *packet.Frame) { got = append(got, f) })
	if !a.Send(frame(1, 2, 100)) {
		t.Fatal("Send returned false")
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(got))
	}
}

func TestLinkSerializationDelay(t *testing.T) {
	k := sim.NewKernel()
	a, b := New(k, Config{Propagation: time.Nanosecond})
	var arrival time.Duration
	b.Attach(func(f *packet.Frame) { arrival = k.Now() })
	f := frame(1, 2, 1500)
	a.Send(f)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := TransmitTime(f.WireLen(), Rate100Mbps) + time.Nanosecond
	if arrival != want {
		t.Errorf("arrival at %v, want %v", arrival, want)
	}
	// 1538 wire bytes at 100 Mbps = 123.04 µs.
	if arrival < 123*time.Microsecond || arrival > 124*time.Microsecond {
		t.Errorf("1518-byte frame arrived after %v, want ≈123µs", arrival)
	}
}

func TestLinkBackToBackFramesQueue(t *testing.T) {
	k := sim.NewKernel()
	a, b := New(k, Config{Propagation: time.Nanosecond})
	var arrivals []time.Duration
	b.Attach(func(f *packet.Frame) { arrivals = append(arrivals, k.Now()) })
	f := frame(1, 2, 1500)
	for i := 0; i < 3; i++ {
		a.Send(f.Clone())
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(arrivals) != 3 {
		t.Fatalf("delivered %d frames, want 3", len(arrivals))
	}
	tx := TransmitTime(f.WireLen(), Rate100Mbps)
	for i := 1; i < 3; i++ {
		if gap := arrivals[i] - arrivals[i-1]; gap != tx {
			t.Errorf("inter-arrival %d = %v, want %v", i, gap, tx)
		}
	}
}

func TestLinkQueueOverflowDrops(t *testing.T) {
	k := sim.NewKernel()
	a, b := New(k, Config{QueueFrames: 2})
	delivered := 0
	b.Attach(func(f *packet.Frame) { delivered++ })
	sent := 0
	for i := 0; i < 5; i++ {
		if a.Send(frame(1, 2, 1500)) {
			sent++
		}
	}
	if sent != 2 {
		t.Errorf("accepted %d frames, want 2", sent)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered != 2 {
		t.Errorf("delivered %d frames, want 2", delivered)
	}
	if st := a.Stats(); st.DroppedFrames != 3 || st.SentFrames != 2 {
		t.Errorf("stats = %+v, want 3 dropped / 2 sent", st)
	}
}

func TestLinkFullDuplex(t *testing.T) {
	k := sim.NewKernel()
	a, b := New(k, Config{})
	gotA, gotB := 0, 0
	a.Attach(func(f *packet.Frame) { gotA++ })
	b.Attach(func(f *packet.Frame) { gotB++ })
	a.Send(frame(1, 2, 100))
	b.Send(frame(2, 1, 100))
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if gotA != 1 || gotB != 1 {
		t.Errorf("gotA=%d gotB=%d, want 1/1 (directions must not share capacity)", gotA, gotB)
	}
}

func TestLinkThroughputMatchesRate(t *testing.T) {
	k := sim.NewKernel()
	a, b := New(k, Config{QueueFrames: 1 << 20})
	bytesDelivered := 0
	b.Attach(func(f *packet.Frame) { bytesDelivered += len(f.Payload) })
	// Offer far more than one second of traffic, then run for one second.
	f := frame(1, 2, 1500)
	for i := 0; i < 10_000; i++ {
		a.Send(f.Clone())
	}
	if err := k.RunUntil(time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	// Goodput at 100 Mbps with 1538 wire bytes per 1500 payload bytes:
	// 100e6/8 * 1500/1538 ≈ 12.19 MB.
	want := 100e6 / 8 * 1500 / 1538
	if math.Abs(float64(bytesDelivered)-want)/want > 0.01 {
		t.Errorf("delivered %d bytes in 1s, want ≈%.0f", bytesDelivered, want)
	}
}

func TestMaxFrameRate(t *testing.T) {
	// 1518-byte frames (1500 payload): ≈8127 fps at 100 Mbps.
	got := MaxFrameRate(1500, Rate100Mbps)
	if math.Abs(got-8127.4) > 1 {
		t.Errorf("MaxFrameRate(1500) = %.1f, want ≈8127", got)
	}
	// Minimum-size frames: ≈148,810 fps at 100 Mbps.
	got = MaxFrameRate(46, Rate100Mbps)
	if math.Abs(got-148809.5) > 10 {
		t.Errorf("MaxFrameRate(46) = %.1f, want ≈148810", got)
	}
}

func TestBusyReflectsQueuedTransmissions(t *testing.T) {
	k := sim.NewKernel()
	a, _ := New(k, Config{})
	if a.Busy() != 0 {
		t.Error("idle link reports busy")
	}
	f := frame(1, 2, 1500)
	a.Send(f)
	a.Send(f.Clone())
	if want := 2 * TransmitTime(f.WireLen(), Rate100Mbps); a.Busy() != want {
		t.Errorf("Busy = %v, want %v", a.Busy(), want)
	}
}

func TestSwitchLearnsAndForwards(t *testing.T) {
	k := sim.NewKernel()
	sw := NewSwitch(k, SwitchConfig{})
	p1 := sw.NewPort()
	p2 := sw.NewPort()
	p3 := sw.NewPort()

	got := map[int]int{}
	p1.Attach(func(f *packet.Frame) { got[1]++ })
	p2.Attach(func(f *packet.Frame) { got[2]++ })
	p3.Attach(func(f *packet.Frame) { got[3]++ })

	// First frame from host 1 to unknown host 2: flooded to ports 2 and 3.
	p1.Send(frame(2, 1, 100))
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got[2] != 1 || got[3] != 1 || got[1] != 0 {
		t.Fatalf("flood delivery = %v, want ports 2,3 only", got)
	}

	// Host 2 replies; switch has learned 1's port, so only port 1 sees it,
	// and now both MACs are learned.
	p2.Send(frame(1, 2, 100))
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got[1] != 1 || got[3] != 1 {
		t.Fatalf("reply delivery = %v, want unicast to port 1", got)
	}

	// Now 1→2 is unicast: port 3 must not see it.
	p1.Send(frame(2, 1, 100))
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got[2] != 2 || got[3] != 1 {
		t.Fatalf("learned delivery = %v, want unicast to port 2", got)
	}
	if sw.Stats().Forwarded != 2 || sw.Stats().Flooded != 1 {
		t.Errorf("switch stats = %+v, want 2 forwarded / 1 flooded", sw.Stats())
	}
}

func TestSwitchBroadcast(t *testing.T) {
	k := sim.NewKernel()
	sw := NewSwitch(k, SwitchConfig{})
	p1 := sw.NewPort()
	p2 := sw.NewPort()
	p3 := sw.NewPort()
	got := map[int]int{}
	p1.Attach(func(f *packet.Frame) { got[1]++ })
	p2.Attach(func(f *packet.Frame) { got[2]++ })
	p3.Attach(func(f *packet.Frame) { got[3]++ })

	f := frame(0, 1, 100)
	f.Dst = packet.Broadcast
	p1.Send(f)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got[1] != 0 || got[2] != 1 || got[3] != 1 {
		t.Errorf("broadcast delivery = %v, want all but sender", got)
	}
}

func TestSwitchFiltersSamePortDestination(t *testing.T) {
	k := sim.NewKernel()
	sw := NewSwitch(k, SwitchConfig{})
	p1 := sw.NewPort()
	p2 := sw.NewPort()
	got := 0
	p2.Attach(func(f *packet.Frame) { got++ })
	p1.Attach(func(f *packet.Frame) { got++ })

	// Learn two MACs behind port 1 (a hub behind the port), then send
	// between them: the switch must filter the frame.
	p1.Send(frame(9, 1, 64))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	got = 0
	p1.Send(frame(1, 1, 64)) // src MAC 1 to dst MAC 1's own port
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("same-port frame was forwarded %d times", got)
	}
}

func TestSwitchLearnedPort(t *testing.T) {
	k := sim.NewKernel()
	sw := NewSwitch(k, SwitchConfig{})
	p1 := sw.NewPort()
	sw.NewPort()
	m := packet.MAC{2, 0, 0, 0, 0, 7}
	if sw.LearnedPort(m) != -1 {
		t.Error("unlearned MAC has a port")
	}
	f := frame(9, 7, 64)
	f.Src = m
	p1.Send(f)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sw.LearnedPort(m) != 0 {
		t.Errorf("LearnedPort = %d, want 0", sw.LearnedPort(m))
	}
}

func TestSwitchDoesNotLearnBroadcastSource(t *testing.T) {
	k := sim.NewKernel()
	sw := NewSwitch(k, SwitchConfig{})
	p1 := sw.NewPort()
	sw.NewPort()
	f := frame(1, 0, 64)
	f.Src = packet.Broadcast
	p1.Send(f)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sw.LearnedPort(packet.Broadcast) != -1 {
		t.Error("switch learned the broadcast address")
	}
}

func TestEndpointTapSeesBothDirections(t *testing.T) {
	k := sim.NewKernel()
	a, b := New(k, Config{})
	b.Attach(func(f *packet.Frame) {})
	var tx, rx int
	a.SetTap(func(f *packet.Frame, isTx bool) {
		if isTx {
			tx++
		} else {
			rx++
		}
	})
	a.Send(frame(1, 2, 100))
	b.Send(frame(2, 1, 100))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if tx != 1 || rx != 1 {
		t.Errorf("tap saw tx=%d rx=%d, want 1/1", tx, rx)
	}
	// Removing the tap stops observation.
	a.SetTap(nil)
	a.Send(frame(1, 2, 100))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if tx != 1 {
		t.Errorf("tap fired after removal")
	}
}
