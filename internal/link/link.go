// Package link models the physical network: full-duplex Ethernet links
// with finite bit rates and a store-and-forward learning switch, matching
// the paper's 100 Mbps switched testbed (3Com 3C16734A).
//
// Links model serialization delay exactly — a 1518-byte frame plus
// preamble and inter-frame gap occupies 1538 byte times, which caps
// 100 Mbps at about 8,127 maximum-size frames/s — so frame-rate limits on
// the simulated wire match real Fast Ethernet.
package link

import (
	"time"

	"barbican/internal/obs/tracing"
	"barbican/internal/packet"
	"barbican/internal/sim"
)

// Rate100Mbps is Fast Ethernet's bit rate, the paper's network speed.
const Rate100Mbps = 100_000_000

// DefaultQueueFrames is the default per-direction transmit queue bound.
const DefaultQueueFrames = 128

// Config parameterizes a link.
type Config struct {
	// RateBits is the bit rate; zero defaults to 100 Mbps.
	RateBits int64
	// Propagation is the one-way propagation delay; zero defaults to
	// 500 ns (≈100 m of copper).
	Propagation time.Duration
	// QueueFrames bounds the per-direction transmit queue; zero defaults
	// to DefaultQueueFrames.
	QueueFrames int
}

func (c Config) withDefaults() Config {
	if c.RateBits == 0 {
		c.RateBits = Rate100Mbps
	}
	if c.Propagation == 0 {
		c.Propagation = 500 * time.Nanosecond
	}
	if c.QueueFrames == 0 {
		c.QueueFrames = DefaultQueueFrames
	}
	return c
}

// Stats counts traffic through one direction of a link.
type Stats struct {
	SentFrames    uint64
	SentBytes     uint64 // wire bytes, including preamble/IFG
	DroppedFrames uint64 // transmit queue overflow
}

// Endpoint is one end of a full-duplex link. Devices send frames with
// Send and receive frames via the handler registered with Attach.
type Endpoint struct {
	dir  *direction
	peer *Endpoint
	recv func(*packet.Frame)
	tap  func(f *packet.Frame, tx bool)
}

type direction struct {
	cfg       Config
	kernel    *sim.Kernel
	busyUntil time.Duration
	queued    int
	stats     Stats
	dst       *Endpoint
	tracer    *tracing.Tracer

	// deliverFn is the precomputed arrival callback, scheduled through
	// the kernel's pooled-event path so each frame in flight costs no
	// allocation beyond the frame itself.
	deliverFn func(any)
}

// New creates a full-duplex link on the kernel's clock and returns its
// two endpoints.
func New(k *sim.Kernel, cfg Config) (*Endpoint, *Endpoint) {
	cfg = cfg.withDefaults()
	a := &Endpoint{dir: &direction{cfg: cfg, kernel: k}}
	b := &Endpoint{dir: &direction{cfg: cfg, kernel: k}}
	a.peer, b.peer = b, a
	a.dir.dst, b.dir.dst = b, a
	a.dir.deliverFn = a.dir.deliver
	b.dir.deliverFn = b.dir.deliver
	return a, b
}

// deliver completes one frame's flight: it frees the transmit slot and
// hands the frame to the destination endpoint's tap and receiver.
func (d *direction) deliver(x any) {
	f := x.(*packet.Frame)
	d.queued--
	dst := d.dst
	if dst.tap != nil {
		dst.tap(f, false)
	}
	if dst.recv != nil {
		dst.recv(f)
	}
}

// Attach registers the frame handler invoked when a frame arrives at this
// endpoint.
func (e *Endpoint) Attach(recv func(*packet.Frame)) { e.recv = recv }

// SetTap registers a passive observer: it sees every frame this endpoint
// transmits (tx true, at acceptance) and receives (tx false, at
// delivery). Passing nil removes the tap. Taps are how internal/trace
// captures traffic without perturbing it.
func (e *Endpoint) SetTap(tap func(f *packet.Frame, tx bool)) { e.tap = tap }

// SetTracer attaches (or with nil detaches) a packet-lifecycle tracer
// to this endpoint's transmit direction: traced frames record one
// link span covering queueing, serialization, and propagation.
func (e *Endpoint) SetTracer(tr *tracing.Tracer) { e.dir.tracer = tr }

// Stats returns transmit-side statistics for this endpoint.
func (e *Endpoint) Stats() Stats { return e.dir.stats }

// Rate returns the link bit rate.
func (e *Endpoint) Rate() int64 { return e.dir.cfg.RateBits }

// Send queues a frame for transmission toward the peer endpoint. It
// reports false when the transmit queue is full and the frame was dropped.
func (e *Endpoint) Send(f *packet.Frame) bool {
	d := e.dir
	if d.queued >= d.cfg.QueueFrames {
		d.stats.DroppedFrames++
		if d.tracer != nil && f.TraceID != 0 {
			d.tracer.Drop(f.TraceID, tracing.StageLink, tracing.DropLinkQueue)
		}
		return false
	}
	now := d.kernel.Now()
	start := now
	if d.busyUntil > start {
		start = d.busyUntil
	}
	done := start + TransmitTime(f.WireLen(), d.cfg.RateBits)
	d.busyUntil = done
	d.queued++
	d.stats.SentFrames++
	d.stats.SentBytes += uint64(f.WireLen())
	if e.tap != nil {
		e.tap(f, true)
	}
	if d.tracer != nil && f.TraceID != 0 {
		// The full wire occupancy is known at acceptance: queue wait
		// (busyUntil), serialization, and propagation.
		d.tracer.Span(f.TraceID, tracing.StageLink, now, done+d.cfg.Propagation)
	}
	d.kernel.AfterCall(done+d.cfg.Propagation-now, d.deliverFn, f)
	return true
}

// Busy reports how much longer the transmit direction is occupied.
func (e *Endpoint) Busy() time.Duration {
	now := e.dir.kernel.Now()
	if e.dir.busyUntil <= now {
		return 0
	}
	return e.dir.busyUntil - now
}

// TransmitTime returns the serialization time of wireBytes at rateBits.
func TransmitTime(wireBytes int, rateBits int64) time.Duration {
	return time.Duration(int64(wireBytes) * 8 * int64(time.Second) / rateBits)
}

// MaxFrameRate returns the maximum frames/s a link of rateBits sustains
// for frames of the given payload length.
func MaxFrameRate(payloadLen int, rateBits int64) float64 {
	f := &packet.Frame{Payload: make([]byte, payloadLen)}
	return float64(rateBits) / float64(f.WireLen()*8)
}
