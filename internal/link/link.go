// Package link models the physical network: full-duplex Ethernet links
// with finite bit rates and a store-and-forward learning switch, matching
// the paper's 100 Mbps switched testbed (3Com 3C16734A).
//
// Links model serialization delay exactly — a 1518-byte frame plus
// preamble and inter-frame gap occupies 1538 byte times, which caps
// 100 Mbps at about 8,127 maximum-size frames/s — so frame-rate limits on
// the simulated wire match real Fast Ethernet.
package link

import (
	"time"

	"barbican/internal/obs/tracing"
	"barbican/internal/packet"
	"barbican/internal/sim"
)

// Rate100Mbps is Fast Ethernet's bit rate, the paper's network speed.
const Rate100Mbps = 100_000_000

// DefaultQueueFrames is the default per-direction transmit queue bound.
const DefaultQueueFrames = 128

// Config parameterizes a link.
type Config struct {
	// RateBits is the bit rate; zero defaults to 100 Mbps.
	RateBits int64
	// Propagation is the one-way propagation delay; zero defaults to
	// 500 ns (≈100 m of copper).
	Propagation time.Duration
	// QueueFrames bounds the per-direction transmit queue; zero defaults
	// to DefaultQueueFrames.
	QueueFrames int
}

func (c Config) withDefaults() Config {
	if c.RateBits == 0 {
		c.RateBits = Rate100Mbps
	}
	if c.Propagation == 0 {
		c.Propagation = 500 * time.Nanosecond
	}
	if c.QueueFrames == 0 {
		c.QueueFrames = DefaultQueueFrames
	}
	return c
}

// Stats counts traffic through one direction of a link.
type Stats struct {
	SentFrames    uint64
	SentBytes     uint64 // wire bytes, including preamble/IFG
	DroppedFrames uint64 // transmit queue overflow

	// Fault-injection effects applied to accepted frames (all zero
	// unless a FaultInjector is attached).
	FaultLost       uint64 // frames consumed by the wire (loss or down window)
	FaultCorrupted  uint64 // frames delivered with flipped bits
	FaultDuplicated uint64 // frames delivered more than once
	FaultReordered  uint64 // frames delivered with extra delay
}

// FaultDelivery is one (possibly modified, possibly extra) arrival of
// a frame at the far end of the link.
type FaultDelivery struct {
	Frame *packet.Frame
	// ExtraDelay is added on top of the frame's normal
	// serialization + propagation arrival time.
	ExtraDelay time.Duration
}

// FaultOutcome is a FaultInjector's decision for one accepted frame.
// The zero value means "deliver normally" and costs nothing, so a
// mostly-quiet injector stays off the allocation path.
type FaultOutcome struct {
	// Lost consumes the frame: it occupies the wire (the sender saw a
	// successful Send) but never arrives. Reason annotates sampled
	// traces; DropNone defaults to DropFaultLoss.
	Lost   bool
	Reason tracing.DropReason

	// Deliveries, when non-empty, replaces the single on-time
	// delivery: one entry per arrival (corruption substitutes a
	// mangled clone, duplication adds entries, reordering adds
	// ExtraDelay). Ignored when Lost is set.
	Deliveries []FaultDelivery

	// Effect flags drive the per-endpoint Stats counters.
	Corrupted  bool
	Duplicated bool
	Reordered  bool
}

// FaultInjector decides the fate of each frame accepted onto a link
// direction. Implementations must be deterministic in virtual time
// (seeded rand only) — see internal/faults.
type FaultInjector interface {
	Apply(f *packet.Frame, now time.Duration) FaultOutcome
}

// Endpoint is one end of a full-duplex link. Devices send frames with
// Send and receive frames via the handler registered with Attach.
type Endpoint struct {
	dir  *direction
	peer *Endpoint
	recv func(*packet.Frame)
	tap  func(f *packet.Frame, tx bool)
}

type direction struct {
	cfg       Config
	kernel    *sim.Kernel
	busyUntil time.Duration
	queued    int
	stats     Stats
	dst       *Endpoint
	tracer    *tracing.Tracer
	faults    FaultInjector

	// deliverFn is the precomputed arrival callback, scheduled through
	// the kernel's pooled-event path so each frame in flight costs no
	// allocation beyond the frame itself. releaseFn frees the transmit
	// slot of a frame the injector consumed (no arrival to do it).
	deliverFn func(any)
	releaseFn func(any)
}

// New creates a full-duplex link on the kernel's clock and returns its
// two endpoints.
func New(k *sim.Kernel, cfg Config) (*Endpoint, *Endpoint) {
	cfg = cfg.withDefaults()
	a := &Endpoint{dir: &direction{cfg: cfg, kernel: k}}
	b := &Endpoint{dir: &direction{cfg: cfg, kernel: k}}
	a.peer, b.peer = b, a
	a.dir.dst, b.dir.dst = b, a
	a.dir.deliverFn = a.dir.deliver
	b.dir.deliverFn = b.dir.deliver
	a.dir.releaseFn = a.dir.release
	b.dir.releaseFn = b.dir.release
	return a, b
}

// deliver completes one frame's flight: it frees the transmit slot and
// hands the frame to the destination endpoint's tap and receiver.
func (d *direction) deliver(x any) {
	f := x.(*packet.Frame)
	d.queued--
	dst := d.dst
	if dst.tap != nil {
		dst.tap(f, false)
	}
	if dst.recv != nil {
		dst.recv(f)
	}
}

// release frees one transmit-queue slot for a frame that will never
// be delivered (consumed by fault injection at serialization end).
func (d *direction) release(any) { d.queued-- }

// Attach registers the frame handler invoked when a frame arrives at this
// endpoint.
func (e *Endpoint) Attach(recv func(*packet.Frame)) { e.recv = recv }

// Peer returns the other end of the link.
func (e *Endpoint) Peer() *Endpoint { return e.peer }

// SetFaults attaches (or with nil detaches) a fault injector to this
// endpoint's transmit direction. Disabled cost is one nil check on
// the send path.
func (e *Endpoint) SetFaults(fi FaultInjector) { e.dir.faults = fi }

// SetTap registers a passive observer: it sees every frame this endpoint
// transmits (tx true, at acceptance) and receives (tx false, at
// delivery). Passing nil removes the tap. Taps are how internal/trace
// captures traffic without perturbing it.
func (e *Endpoint) SetTap(tap func(f *packet.Frame, tx bool)) { e.tap = tap }

// SetTracer attaches (or with nil detaches) a packet-lifecycle tracer
// to this endpoint's transmit direction: traced frames record one
// link span covering queueing, serialization, and propagation.
func (e *Endpoint) SetTracer(tr *tracing.Tracer) { e.dir.tracer = tr }

// Stats returns transmit-side statistics for this endpoint.
func (e *Endpoint) Stats() Stats { return e.dir.stats }

// Rate returns the link bit rate.
func (e *Endpoint) Rate() int64 { return e.dir.cfg.RateBits }

// Send queues a frame for transmission toward the peer endpoint. It
// reports false when the transmit queue is full and the frame was dropped.
func (e *Endpoint) Send(f *packet.Frame) bool {
	d := e.dir
	if d.queued >= d.cfg.QueueFrames {
		d.stats.DroppedFrames++
		if d.tracer != nil && f.TraceID != 0 {
			d.tracer.Drop(f.TraceID, tracing.StageLink, tracing.DropLinkQueue)
		}
		return false
	}
	now := d.kernel.Now()
	start := now
	if d.busyUntil > start {
		start = d.busyUntil
	}
	done := start + TransmitTime(f.WireLen(), d.cfg.RateBits)
	d.busyUntil = done
	d.queued++
	d.stats.SentFrames++
	d.stats.SentBytes += uint64(f.WireLen())
	if e.tap != nil {
		e.tap(f, true)
	}
	if d.tracer != nil && f.TraceID != 0 {
		// The full wire occupancy is known at acceptance: queue wait
		// (busyUntil), serialization, and propagation.
		d.tracer.Span(f.TraceID, tracing.StageLink, now, done+d.cfg.Propagation)
	}
	if d.faults != nil {
		d.sendWithFaults(f, now, done)
		return true
	}
	d.kernel.AfterCall(done+d.cfg.Propagation-now, d.deliverFn, f)
	return true
}

// sendWithFaults applies the injector's verdict to an already-accepted
// frame. The sender has seen a successful Send either way — faults act
// on the wire, not on admission.
func (d *direction) sendWithFaults(f *packet.Frame, now, done time.Duration) {
	out := d.faults.Apply(f, now)
	if out.Lost {
		d.stats.FaultLost++
		reason := out.Reason
		if reason == tracing.DropNone {
			reason = tracing.DropFaultLoss
		}
		if d.tracer != nil && f.TraceID != 0 {
			d.tracer.Drop(f.TraceID, tracing.StageLink, reason)
		}
		// The wire is still occupied until serialization completes;
		// only then does the transmit slot free up.
		d.kernel.AfterCall(done-now, d.releaseFn, nil)
		return
	}
	if out.Corrupted {
		d.stats.FaultCorrupted++
	}
	if out.Duplicated {
		d.stats.FaultDuplicated++
	}
	if out.Reordered {
		d.stats.FaultReordered++
	}
	if len(out.Deliveries) == 0 {
		d.kernel.AfterCall(done+d.cfg.Propagation-now, d.deliverFn, f)
		return
	}
	// Each scheduled delivery decrements queued on arrival; balance
	// the extra arrivals duplication created.
	d.queued += len(out.Deliveries) - 1
	for _, dv := range out.Deliveries {
		d.kernel.AfterCall(done+d.cfg.Propagation+dv.ExtraDelay-now, d.deliverFn, dv.Frame)
	}
}

// Busy reports how much longer the transmit direction is occupied.
func (e *Endpoint) Busy() time.Duration {
	now := e.dir.kernel.Now()
	if e.dir.busyUntil <= now {
		return 0
	}
	return e.dir.busyUntil - now
}

// TransmitTime returns the serialization time of wireBytes at rateBits.
func TransmitTime(wireBytes int, rateBits int64) time.Duration {
	return time.Duration(int64(wireBytes) * 8 * int64(time.Second) / rateBits)
}

// MaxFrameRate returns the maximum frames/s a link of rateBits sustains
// for frames of the given payload length.
func MaxFrameRate(payloadLen int, rateBits int64) float64 {
	f := &packet.Frame{Payload: make([]byte, payloadLen)}
	return float64(rateBits) / float64(f.WireLen()*8)
}
