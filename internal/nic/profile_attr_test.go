package nic

import (
	"math"
	"testing"
	"time"

	"barbican/internal/fw"
	"barbican/internal/obs/profile"
	"barbican/internal/packet"
	"barbican/internal/sim"
)

// TestCardProfilerAttributionExact is the tentpole reconciliation
// check: a profiled run must attribute the card's consumed cost units
// to named phases exactly — profiler totals equal Processor.UnitsDone
// (the ISSUE's ">= 95%" floor, met with equality up to float
// accumulation order).
func TestCardProfilerAttributionExact(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, Standard(), EFW())
	const depth = 16
	rs, err := fw.DepthRuleSet(depth, fw.AllowAllRule(), fw.Deny)
	if err != nil {
		t.Fatal(err)
	}
	b.InstallRuleSet(rs)
	b.SetDeliver(func(f *packet.Frame) {})

	cpA := profile.NewCardProfiler("client", "", 0)
	a.SetProfiler(cpA)
	cpB := profile.NewCardProfiler("target", "", 0)
	b.SetProfiler(cpB)
	if cpB.Device != "EFW" || cpB.PerRule != EFW().PerRuleCost {
		t.Fatalf("SetProfiler did not fill card params: %q %g", cpB.Device, cpB.PerRule)
	}

	// Mixed traffic: allowed UDP (walks all depth rules to allow-all)
	// and TCP SYNs denied by pad rule 1's port scoping... pad rules are
	// non-matching, so the SYNs also walk to allow-all. Either way every
	// packet pays depth × PerRuleCost, and every admitted packet —
	// delivered or denied — must be attributed.
	for i := 0; i < 50; i++ {
		d := udpDatagram(ipA, ipB, 1000, 2000, 100)
		k.At(time.Duration(i)*time.Millisecond, func() { a.Send(d, macB) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	// Target card: attributed units reconcile exactly with the
	// processor's accounting.
	done := b.proc.UnitsDone()
	got := cpB.Units()
	if done == 0 {
		t.Fatal("target: no units consumed")
	}
	if math.Abs(got-done) > 1e-6*done {
		t.Errorf("target: attributed %g units, processor did %g", got, done)
	}
	// Client card is wire-speed (Standard, zero cost model): packets
	// are still counted but carry zero units, matching UnitsDone = 0.
	if cpA.Tx.Packets != 50 {
		t.Errorf("client tx packets = %d, want 50", cpA.Tx.Packets)
	}
	if cpA.Units() != 0 || a.proc.UnitsDone() != 0 {
		t.Errorf("wire-speed client attributed %g units, processor %g; want 0", cpA.Units(), a.proc.UnitsDone())
	}

	// Target rx: every packet traversed exactly depth rules, so the
	// per-rule reconstruction must show each rule examined by all 50.
	d := profile.NewData(profile.CostSampleTypes, "cost")
	cpB.AppendCostSamples(d)
	ruleSamples := 0
	for _, s := range d.Samples {
		if len(s.Stack) == 4 && s.Stack[1] == "rx" && s.Stack[2] == "match" {
			ruleSamples++
			if s.Values[1] != 50 {
				t.Errorf("rule frame %q examined by %d packets, want 50", s.Stack[3], s.Values[1])
			}
		}
	}
	if ruleSamples != depth {
		t.Errorf("%d per-rule match samples, want %d", ruleSamples, depth)
	}
}

// TestCardProfilerMatchCostLinearInDepth reproduces the profile-level
// view of the paper's Fig. 2 mechanism: attributed match units grow
// linearly with rule-set depth while base units stay flat.
func TestCardProfilerMatchCostLinearInDepth(t *testing.T) {
	matchUnits := func(depth int) (match, base float64) {
		k := sim.NewKernel()
		a, b := pair(t, k, Standard(), EFW())
		rs, err := fw.DepthRuleSet(depth, fw.AllowAllRule(), fw.Deny)
		if err != nil {
			t.Fatal(err)
		}
		b.InstallRuleSet(rs)
		b.SetDeliver(func(f *packet.Frame) {})
		cp := profile.NewCardProfiler("target", "", 0)
		b.SetProfiler(cp)
		for i := 0; i < 20; i++ {
			d := udpDatagram(ipA, ipB, 1000, 2000, 64)
			k.At(time.Duration(i)*time.Millisecond, func() { a.Send(d, macB) })
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return cp.Rx.MatchUnits, cp.Rx.BaseUnits
	}

	m8, b8 := matchUnits(8)
	m32, b32 := matchUnits(32)
	if b8 != b32 {
		t.Errorf("base units moved with depth: %g vs %g", b8, b32)
	}
	if m8 == 0 || math.Abs(m32/m8-4) > 1e-9 {
		t.Errorf("match units not linear in depth: 8 rules → %g, 32 rules → %g (ratio %g, want 4)", m8, m32, m32/m8)
	}
}

// TestProfilerDoesNotPerturbRun checks the observer effect: a profiled
// run must produce identical card counters to an unprofiled one.
func TestProfilerDoesNotPerturbRun(t *testing.T) {
	run := func(prof bool) Stats {
		k := sim.NewKernel()
		a, b := pair(t, k, Standard(), EFW())
		rs, err := fw.DepthRuleSet(8, fw.AllowAllRule(), fw.Deny)
		if err != nil {
			t.Fatal(err)
		}
		b.InstallRuleSet(rs)
		b.SetDeliver(func(f *packet.Frame) {})
		if prof {
			b.SetProfiler(profile.NewCardProfiler("target", "", 0))
		}
		for i := 0; i < 30; i++ {
			d := udpDatagram(ipA, ipB, 1000, 2000, 64)
			k.At(time.Duration(i)*time.Millisecond, func() { a.Send(d, macB) })
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return b.Stats()
	}
	if run(false) != run(true) {
		t.Error("profiling changed the run's card counters")
	}
}

// TestSetProfilerDetach checks nil detaches cleanly mid-run.
func TestSetProfilerDetach(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, Standard(), EFW())
	b.InstallRuleSet(fw.MustRuleSet(fw.Allow))
	b.SetDeliver(func(f *packet.Frame) {})
	cp := profile.NewCardProfiler("target", "", 0)
	b.SetProfiler(cp)
	a.Send(udpDatagram(ipA, ipB, 1, 2, 64), macB)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if cp.Rx.Packets != 1 {
		t.Fatalf("profiled rx packets = %d, want 1", cp.Rx.Packets)
	}
	b.SetProfiler(nil)
	if b.Profiler() != nil {
		t.Fatal("Profiler() non-nil after detach")
	}
	a.Send(udpDatagram(ipA, ipB, 1, 2, 64), macB)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if cp.Rx.Packets != 1 {
		t.Fatalf("detached profiler still recording: %d packets", cp.Rx.Packets)
	}
}
