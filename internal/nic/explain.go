package nic

import (
	"fmt"
	"strings"
	"time"

	"barbican/internal/fw"
	"barbican/internal/nic/conntrack"
	"barbican/internal/packet"
)

// ProfileByName maps a CLI device name to its calibrated card profile,
// shared by the explain subcommands of barbican and policyctl.
func ProfileByName(name string) (Profile, error) {
	switch strings.ToLower(name) {
	case "standard":
		return Standard(), nil
	case "efw":
		return EFW(), nil
	case "adf", "vpg":
		return ADF(), nil
	case "nextgen":
		return NextGen(), nil
	case "stateful":
		return Stateful(), nil
	default:
		return Profile{}, fmt.Errorf("unknown device %q (standard|efw|adf|nextgen|stateful)", name)
	}
}

// PacketSpec describes one hypothetical packet for explain-style
// replay against a rule set, as assembled from command-line flags.
type PacketSpec struct {
	Proto   string // tcp | udp | icmp
	Src     string
	Dst     string
	SrcPort int
	DstPort int
	Size    int    // IP datagram length in bytes
	Dir     string // in | out
	Sealed  bool   // packet arrives in a VPG envelope
	// Flags is the TCP control-bit list ("syn", "syn,ack", "rst", ...;
	// "none" for a bare segment). Empty defaults to "syn" — a fresh
	// connection attempt — which stateless evaluation never reads, so
	// pre-conntrack explain output is unchanged.
	Flags string
}

// Summary builds the packet summary and direction the firewall would
// see for this spec.
func (ps PacketSpec) Summary() (packet.Summary, fw.Direction, error) {
	var s packet.Summary
	switch strings.ToLower(ps.Proto) {
	case "tcp", "":
		s.Proto = packet.ProtoTCP
		s.HasPorts = true
	case "udp":
		s.Proto = packet.ProtoUDP
		s.HasPorts = true
	case "icmp":
		s.Proto = packet.ProtoICMP
	default:
		return s, 0, fmt.Errorf("unknown protocol %q (tcp|udp|icmp)", ps.Proto)
	}
	src, err := packet.ParseIP(ps.Src)
	if err != nil {
		return s, 0, fmt.Errorf("src: %w", err)
	}
	dst, err := packet.ParseIP(ps.Dst)
	if err != nil {
		return s, 0, fmt.Errorf("dst: %w", err)
	}
	s.Src, s.Dst = src, dst
	if s.HasPorts {
		s.SrcPort = uint16(ps.SrcPort)
		s.DstPort = uint16(ps.DstPort)
	}
	if s.Proto == packet.ProtoTCP {
		spec := ps.Flags
		if spec == "" {
			spec = "syn"
		}
		for _, tok := range strings.Split(spec, ",") {
			switch strings.TrimSpace(strings.ToLower(tok)) {
			case "syn":
				s.Flags |= packet.FlagSYN
			case "ack":
				s.Flags |= packet.FlagACK
			case "fin":
				s.Flags |= packet.FlagFIN
			case "rst":
				s.Flags |= packet.FlagRST
			case "psh":
				s.Flags |= packet.FlagPSH
			case "none", "":
			default:
				return s, 0, fmt.Errorf("unknown tcp flag %q (syn|ack|fin|rst|psh|none)", tok)
			}
		}
	}
	s.IPLen = ps.Size
	if s.IPLen <= 0 {
		s.IPLen = 40
	}
	s.Sealed = ps.Sealed
	var dir fw.Direction
	switch strings.ToLower(ps.Dir) {
	case "in", "":
		dir = fw.In
	case "out":
		dir = fw.Out
	default:
		return s, 0, fmt.Errorf("unknown direction %q (in|out)", ps.Dir)
	}
	return s, dir, nil
}

// Explanation is the predicted fate and cost of one packet replayed
// against a rule set on a given card profile — the simulator's
// equivalent of a policy "explain" command.
type Explanation struct {
	Summary   packet.Summary
	Dir       fw.Direction
	Profile   Profile
	Action    fw.Action
	RuleIndex int    // 1-based matched rule, 0 = default action
	RuleText  string // DSL rendering of the matched rule, "" for default
	Traversed int    // rules examined before the verdict

	// WalkCost is the rule-match cost: PerRuleCost × Traversed on a
	// linear profile, the flat CompiledLookupCost on a compiled one
	// (and 0 with no policy installed).
	WalkCost    float64
	BaseCost    float64
	CryptoCost  float64
	TotalCost   float64
	ServiceTime time.Duration // processor time at the profile's capacity
	MaxPPS      float64       // capacity / TotalCost; 0 = wire speed

	// Compiled-matcher / flow-cache state (NextGen-class profiles).
	Compiled        bool    // the profile compiles its rule set
	FlowCache       bool    // the profile caches per-flow verdicts
	CacheHitCost    float64 // match cost when the flow's verdict is cached
	CachedTotalCost float64 // total per-packet cost on a cache hit
	CachedMaxPPS    float64 // capacity / CachedTotalCost; 0 = wire speed or no cache

	// Conntrack decision, filled only when a state-table profile
	// evaluates a stateful policy (zero-valued otherwise, so stateless
	// explain output is byte-unchanged). The replay seeds a scratch
	// table with the assumed prior flow history, so age and transition
	// are real table observations, not guesses.
	Stateful     bool               // conntrack was consulted
	ConnState    fw.ConnState       // classification the rules matched on
	CTPrior      string             // assumed prior flow history ("none"|"new"|"established")
	CTFound      bool               // a tracked entry existed at lookup
	CTAge        time.Duration      // entry age at lookup
	CTBefore     conntrack.TCPState // entry state before this packet
	CTAfter      conntrack.TCPState // entry state after this packet
	CTInvalid    bool               // dropped by conntrack before rule evaluation
	CTCreated    bool               // this packet created the entry
	CTLookupCost float64
	CTInsertCost float64 // charged only when the packet creates an entry
}

// Explain replays one packet summary against a rule set (nil = no
// policy) and predicts the per-stage processing cost on the profile.
// It uses a private evaluation so it never perturbs live counters.
func Explain(p Profile, rs *fw.RuleSet, s packet.Summary, dir fw.Direction) Explanation {
	return ExplainConn(p, rs, s, dir, "none")
}

// seedPrior replays the assumed prior history of the subject flow into
// a scratch conntrack table ("none" leaves it empty, "new" the flow's
// unanswered opening packet, "established" a completed exchange) and
// returns the virtual time at which the subject packet then arrives —
// one second later, so entry ages in the explanation are non-trivial.
func seedPrior(ct *conntrack.Table, s packet.Summary, prior string) time.Duration {
	replay := func(x packet.Summary, at time.Duration) {
		ct.Classify(x, at)
		ct.Commit(x, at)
	}
	rev := s
	rev.Src, rev.Dst = s.Dst, s.Src
	rev.SrcPort, rev.DstPort = s.DstPort, s.SrcPort
	switch prior {
	case "new":
		open := s
		if s.Proto == packet.ProtoTCP {
			open.Flags = packet.FlagSYN
		}
		replay(open, 0)
	case "established":
		switch s.Proto {
		case packet.ProtoTCP:
			syn := s
			syn.Flags = packet.FlagSYN
			replay(syn, 0)
			synack := rev
			synack.Flags = packet.FlagSYN | packet.FlagACK
			replay(synack, 0)
			ack := s
			ack.Flags = packet.FlagACK
			replay(ack, 0)
		case packet.ProtoICMP:
			// Related ICMP rides a tracked connection between the same
			// endpoints; seed one.
			tcp := s
			tcp.Proto = packet.ProtoTCP
			tcp.HasPorts = true
			tcp.SrcPort, tcp.DstPort = 40000, 5001
			tcp.Flags = packet.FlagSYN
			replay(tcp, 0)
		default:
			replay(s, 0)
			replay(rev, 0)
		}
	}
	return time.Second
}

// ExplainConn is Explain with an assumed prior conntrack history for
// the subject flow: "none" (or "") for an untracked flow, "new" for an
// unanswered opening packet, "established" for a completed exchange.
// The history is replayed into a scratch table, never a live card's.
func ExplainConn(p Profile, rs *fw.RuleSet, s packet.Summary, dir fw.Direction, prior string) Explanation {
	e := Explanation{Summary: s, Dir: dir, Profile: p, Action: fw.Allow}
	cs := fw.StateNone
	var ct *conntrack.Table
	now := time.Duration(0)
	if p.ConntrackEntries > 0 && rs != nil && rs.Stateful() && !s.Sealed {
		e.Stateful = true
		if prior == "" {
			prior = "none"
		}
		e.CTPrior = prior
		ct = conntrack.New(conntrack.Config{Cap: 64, Seed: 1})
		now = seedPrior(ct, s, prior)
		if info, ok := ct.Peek(s, now); ok {
			e.CTFound = true
			e.CTAge = info.Age
			e.CTBefore = info.TCP
		}
		cs = ct.Classify(s, now)
		e.ConnState = cs
		e.CTLookupCost = p.ConntrackLookupCost
		if cs == fw.StateInvalid {
			// The NIC fast path drops INVALID before the rules see it.
			e.CTInvalid = true
			e.Action = fw.Deny
		}
	}
	if rs != nil && !e.CTInvalid {
		// Walk the rules directly instead of calling Eval so live
		// hit counters stay untouched.
		matched := false
		rs.Each(func(i int, r *fw.Rule) bool {
			if r.MatchesState(s, dir, cs) {
				e.Action = r.Action
				e.RuleIndex = i
				e.RuleText = r.String()
				e.Traversed = i
				matched = true
				return false
			}
			return true
		})
		if !matched {
			e.Action = rs.Default()
			e.Traversed = rs.Len()
		}
	}
	if e.Stateful && !e.CTInvalid && e.Action == fw.Allow {
		switch ct.Commit(s, now) {
		case conntrack.CommitCreated, conntrack.CommitEvicted:
			e.CTCreated = true
			e.CTInsertCost = p.ConntrackInsertCost
		case conntrack.CommitExisting, conntrack.CommitFull, conntrack.NumCommitStatuses:
		}
	}
	if e.Stateful {
		if info, ok := ct.Peek(s, now); ok {
			e.CTAfter = info.TCP
		}
	}
	cryptoBytes := 0
	if s.Sealed && e.Action == fw.Allow && e.RuleIndex > 0 && rs.Rule(e.RuleIndex).IsVPG() {
		cryptoBytes = s.IPLen
	}
	e.Compiled = p.CompiledMatch
	e.FlowCache = p.FlowCacheSize > 0
	e.CacheHitCost = p.CacheHitCost
	switch {
	case rs == nil || e.CTInvalid:
		// No match cost: no policy consulted, or conntrack dropped the
		// packet before rule evaluation.
	case p.CompiledMatch:
		e.WalkCost = p.CompiledLookupCost
	default:
		e.WalkCost = p.PerRuleCost * float64(e.Traversed)
	}
	e.BaseCost = p.BaseCost
	if cryptoBytes > 0 {
		e.CryptoCost = p.CryptoPerPacket + p.CryptoPerByte*float64(cryptoBytes)
	}
	e.TotalCost = e.BaseCost + e.WalkCost + e.CryptoCost + e.CTLookupCost + e.CTInsertCost
	e.ServiceTime = p.ServiceTime(e.TotalCost)
	if p.CapacityUnits > 0 && e.TotalCost > 0 {
		e.MaxPPS = p.CapacityUnits / e.TotalCost
	}
	if e.FlowCache && rs != nil && !e.CTInvalid {
		// Classification precedes the cache, so a hit still pays the
		// lookup (the insert happened on the flow's first packet).
		e.CachedTotalCost = e.BaseCost + e.CacheHitCost + e.CryptoCost + e.CTLookupCost
		if p.CapacityUnits > 0 && e.CachedTotalCost > 0 {
			e.CachedMaxPPS = p.CapacityUnits / e.CachedTotalCost
		}
	}
	return e
}

// Render formats the explanation for terminal output. The output is a
// pure function of the inputs (no clocks, no maps), so identical
// invocations are byte-identical regardless of parallelism.
func (e Explanation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "packet: %s %s (%d-byte IP)\n", e.Dir, e.Summary.String(), e.Summary.IPLen)
	fmt.Fprintf(&b, "device: %s", e.Profile.Name)
	switch {
	case e.Profile.CapacityUnits > 0 && e.Compiled:
		fmt.Fprintf(&b, " (capacity %.0f units/s, base %.4g, compiled lookup %.4g, cache hit %.4g)",
			e.Profile.CapacityUnits, e.Profile.BaseCost, e.Profile.CompiledLookupCost, e.Profile.CacheHitCost)
	case e.Profile.CapacityUnits > 0:
		fmt.Fprintf(&b, " (capacity %.0f units/s, base %.4g, per-rule %.4g)", e.Profile.CapacityUnits, e.Profile.BaseCost, e.Profile.PerRuleCost)
	default:
		b.WriteString(" (wire speed, no filtering cost)")
	}
	b.WriteByte('\n')
	if e.Stateful {
		fmt.Fprintf(&b, "conntrack: state %v", e.ConnState)
		switch {
		case e.CTFound:
			fmt.Fprintf(&b, " (entry age %v, transition %v → %v)", e.CTAge, e.CTBefore, e.CTAfter)
		case e.CTCreated:
			fmt.Fprintf(&b, " (no entry → %v created)", e.CTAfter)
		default:
			b.WriteString(" (no tracked entry)")
		}
		fmt.Fprintf(&b, " [assumed prior: %s]\n", e.CTPrior)
	}
	switch {
	case e.CTInvalid:
		fmt.Fprintf(&b, "verdict: deny by conntrack (ctstate INVALID, dropped before rule evaluation)\n")
	case e.RuleIndex > 0:
		fmt.Fprintf(&b, "verdict: %v by rule %d after traversing %d rule(s)\n", e.Action, e.RuleIndex, e.Traversed)
		fmt.Fprintf(&b, "  rule %d: %s\n", e.RuleIndex, e.RuleText)
	case e.Traversed > 0:
		fmt.Fprintf(&b, "verdict: %v by default action after traversing all %d rule(s)\n", e.Action, e.Traversed)
	default:
		fmt.Fprintf(&b, "verdict: %v (no policy installed)\n", e.Action)
	}
	fmt.Fprintf(&b, "predicted cost:\n")
	if e.Compiled {
		fmt.Fprintf(&b, "  lookup      %8.1f units (compiled classifier, flat at any depth)\n", e.WalkCost)
	} else {
		fmt.Fprintf(&b, "  rule walk   %8.1f units (%d × %.4g)\n", e.WalkCost, e.Traversed, e.Profile.PerRuleCost)
	}
	fmt.Fprintf(&b, "  base        %8.1f units\n", e.BaseCost)
	if e.CTLookupCost > 0 {
		fmt.Fprintf(&b, "  ct lookup   %8.1f units\n", e.CTLookupCost)
	}
	if e.CTInsertCost > 0 {
		fmt.Fprintf(&b, "  ct insert   %8.1f units (new entry committed)\n", e.CTInsertCost)
	}
	if e.CryptoCost > 0 {
		fmt.Fprintf(&b, "  vpg crypto  %8.1f units\n", e.CryptoCost)
	}
	fmt.Fprintf(&b, "  total       %8.1f units", e.TotalCost)
	if e.Profile.CapacityUnits > 0 {
		fmt.Fprintf(&b, " → %v on card, ≈ %.0f pkt/s sustainable", e.ServiceTime, e.MaxPPS)
	}
	b.WriteByte('\n')
	if e.FlowCache && e.CachedTotalCost > 0 {
		fmt.Fprintf(&b, "  cached flow %8.1f units match → total %.1f units", e.CacheHitCost, e.CachedTotalCost)
		if e.Profile.CapacityUnits > 0 {
			fmt.Fprintf(&b, ", ≈ %.0f pkt/s sustainable", e.CachedMaxPPS)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
