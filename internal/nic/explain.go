package nic

import (
	"fmt"
	"strings"
	"time"

	"barbican/internal/fw"
	"barbican/internal/packet"
)

// ProfileByName maps a CLI device name to its calibrated card profile,
// shared by the explain subcommands of barbican and policyctl.
func ProfileByName(name string) (Profile, error) {
	switch strings.ToLower(name) {
	case "standard":
		return Standard(), nil
	case "efw":
		return EFW(), nil
	case "adf", "vpg":
		return ADF(), nil
	case "nextgen":
		return NextGen(), nil
	default:
		return Profile{}, fmt.Errorf("unknown device %q (standard|efw|adf|nextgen)", name)
	}
}

// PacketSpec describes one hypothetical packet for explain-style
// replay against a rule set, as assembled from command-line flags.
type PacketSpec struct {
	Proto   string // tcp | udp | icmp
	Src     string
	Dst     string
	SrcPort int
	DstPort int
	Size    int    // IP datagram length in bytes
	Dir     string // in | out
	Sealed  bool   // packet arrives in a VPG envelope
}

// Summary builds the packet summary and direction the firewall would
// see for this spec.
func (ps PacketSpec) Summary() (packet.Summary, fw.Direction, error) {
	var s packet.Summary
	switch strings.ToLower(ps.Proto) {
	case "tcp", "":
		s.Proto = packet.ProtoTCP
		s.HasPorts = true
	case "udp":
		s.Proto = packet.ProtoUDP
		s.HasPorts = true
	case "icmp":
		s.Proto = packet.ProtoICMP
	default:
		return s, 0, fmt.Errorf("unknown protocol %q (tcp|udp|icmp)", ps.Proto)
	}
	src, err := packet.ParseIP(ps.Src)
	if err != nil {
		return s, 0, fmt.Errorf("src: %w", err)
	}
	dst, err := packet.ParseIP(ps.Dst)
	if err != nil {
		return s, 0, fmt.Errorf("dst: %w", err)
	}
	s.Src, s.Dst = src, dst
	if s.HasPorts {
		s.SrcPort = uint16(ps.SrcPort)
		s.DstPort = uint16(ps.DstPort)
	}
	s.IPLen = ps.Size
	if s.IPLen <= 0 {
		s.IPLen = 40
	}
	s.Sealed = ps.Sealed
	var dir fw.Direction
	switch strings.ToLower(ps.Dir) {
	case "in", "":
		dir = fw.In
	case "out":
		dir = fw.Out
	default:
		return s, 0, fmt.Errorf("unknown direction %q (in|out)", ps.Dir)
	}
	return s, dir, nil
}

// Explanation is the predicted fate and cost of one packet replayed
// against a rule set on a given card profile — the simulator's
// equivalent of a policy "explain" command.
type Explanation struct {
	Summary   packet.Summary
	Dir       fw.Direction
	Profile   Profile
	Action    fw.Action
	RuleIndex int    // 1-based matched rule, 0 = default action
	RuleText  string // DSL rendering of the matched rule, "" for default
	Traversed int    // rules examined before the verdict

	// WalkCost is the rule-match cost: PerRuleCost × Traversed on a
	// linear profile, the flat CompiledLookupCost on a compiled one
	// (and 0 with no policy installed).
	WalkCost    float64
	BaseCost    float64
	CryptoCost  float64
	TotalCost   float64
	ServiceTime time.Duration // processor time at the profile's capacity
	MaxPPS      float64       // capacity / TotalCost; 0 = wire speed

	// Compiled-matcher / flow-cache state (NextGen-class profiles).
	Compiled        bool    // the profile compiles its rule set
	FlowCache       bool    // the profile caches per-flow verdicts
	CacheHitCost    float64 // match cost when the flow's verdict is cached
	CachedTotalCost float64 // total per-packet cost on a cache hit
	CachedMaxPPS    float64 // capacity / CachedTotalCost; 0 = wire speed or no cache
}

// Explain replays one packet summary against a rule set (nil = no
// policy) and predicts the per-stage processing cost on the profile.
// It uses a private evaluation so it never perturbs live counters.
func Explain(p Profile, rs *fw.RuleSet, s packet.Summary, dir fw.Direction) Explanation {
	e := Explanation{Summary: s, Dir: dir, Profile: p, Action: fw.Allow}
	if rs != nil {
		// Walk the rules directly instead of calling Eval so live
		// hit counters stay untouched.
		matched := false
		rs.Each(func(i int, r *fw.Rule) bool {
			if r.Matches(s, dir) {
				e.Action = r.Action
				e.RuleIndex = i
				e.RuleText = r.String()
				e.Traversed = i
				matched = true
				return false
			}
			return true
		})
		if !matched {
			e.Action = rs.Default()
			e.Traversed = rs.Len()
		}
	}
	cryptoBytes := 0
	if s.Sealed && e.Action == fw.Allow && e.RuleIndex > 0 && rs.Rule(e.RuleIndex).IsVPG() {
		cryptoBytes = s.IPLen
	}
	e.Compiled = p.CompiledMatch
	e.FlowCache = p.FlowCacheSize > 0
	e.CacheHitCost = p.CacheHitCost
	switch {
	case rs == nil:
		// No policy consulted: no match cost on any profile.
	case p.CompiledMatch:
		e.WalkCost = p.CompiledLookupCost
	default:
		e.WalkCost = p.PerRuleCost * float64(e.Traversed)
	}
	e.BaseCost = p.BaseCost
	if cryptoBytes > 0 {
		e.CryptoCost = p.CryptoPerPacket + p.CryptoPerByte*float64(cryptoBytes)
	}
	e.TotalCost = e.BaseCost + e.WalkCost + e.CryptoCost
	e.ServiceTime = p.ServiceTime(e.TotalCost)
	if p.CapacityUnits > 0 && e.TotalCost > 0 {
		e.MaxPPS = p.CapacityUnits / e.TotalCost
	}
	if e.FlowCache && rs != nil {
		e.CachedTotalCost = e.BaseCost + e.CacheHitCost + e.CryptoCost
		if p.CapacityUnits > 0 && e.CachedTotalCost > 0 {
			e.CachedMaxPPS = p.CapacityUnits / e.CachedTotalCost
		}
	}
	return e
}

// Render formats the explanation for terminal output. The output is a
// pure function of the inputs (no clocks, no maps), so identical
// invocations are byte-identical regardless of parallelism.
func (e Explanation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "packet: %s %s (%d-byte IP)\n", e.Dir, e.Summary.String(), e.Summary.IPLen)
	fmt.Fprintf(&b, "device: %s", e.Profile.Name)
	switch {
	case e.Profile.CapacityUnits > 0 && e.Compiled:
		fmt.Fprintf(&b, " (capacity %.0f units/s, base %.4g, compiled lookup %.4g, cache hit %.4g)",
			e.Profile.CapacityUnits, e.Profile.BaseCost, e.Profile.CompiledLookupCost, e.Profile.CacheHitCost)
	case e.Profile.CapacityUnits > 0:
		fmt.Fprintf(&b, " (capacity %.0f units/s, base %.4g, per-rule %.4g)", e.Profile.CapacityUnits, e.Profile.BaseCost, e.Profile.PerRuleCost)
	default:
		b.WriteString(" (wire speed, no filtering cost)")
	}
	b.WriteByte('\n')
	switch {
	case e.RuleIndex > 0:
		fmt.Fprintf(&b, "verdict: %v by rule %d after traversing %d rule(s)\n", e.Action, e.RuleIndex, e.Traversed)
		fmt.Fprintf(&b, "  rule %d: %s\n", e.RuleIndex, e.RuleText)
	case e.Traversed > 0:
		fmt.Fprintf(&b, "verdict: %v by default action after traversing all %d rule(s)\n", e.Action, e.Traversed)
	default:
		fmt.Fprintf(&b, "verdict: %v (no policy installed)\n", e.Action)
	}
	fmt.Fprintf(&b, "predicted cost:\n")
	if e.Compiled {
		fmt.Fprintf(&b, "  lookup      %8.1f units (compiled classifier, flat at any depth)\n", e.WalkCost)
	} else {
		fmt.Fprintf(&b, "  rule walk   %8.1f units (%d × %.4g)\n", e.WalkCost, e.Traversed, e.Profile.PerRuleCost)
	}
	fmt.Fprintf(&b, "  base        %8.1f units\n", e.BaseCost)
	if e.CryptoCost > 0 {
		fmt.Fprintf(&b, "  vpg crypto  %8.1f units\n", e.CryptoCost)
	}
	fmt.Fprintf(&b, "  total       %8.1f units", e.TotalCost)
	if e.Profile.CapacityUnits > 0 {
		fmt.Fprintf(&b, " → %v on card, ≈ %.0f pkt/s sustainable", e.ServiceTime, e.MaxPPS)
	}
	b.WriteByte('\n')
	if e.FlowCache && e.CachedTotalCost > 0 {
		fmt.Fprintf(&b, "  cached flow %8.1f units match → total %.1f units", e.CacheHitCost, e.CachedTotalCost)
		if e.Profile.CapacityUnits > 0 {
			fmt.Fprintf(&b, ", ≈ %.0f pkt/s sustainable", e.CachedMaxPPS)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
