package nic

import (
	"time"

	"barbican/internal/nic/conntrack"
)

// MatchPath classifies how a packet's verdict was produced, which is
// what the cost model charges for: no policy consulted at all, a
// rule-match (linear walk or compiled lookup, per the profile), or a
// per-flow verdict-cache hit.
type MatchPath uint8

const (
	// MatchNone: no rule matching happened (no policy installed,
	// management bypass, raw frame injection).
	MatchNone MatchPath = iota
	// MatchWalk: the packet was evaluated against the policy — a
	// linear first-match walk, or one compiled-classifier lookup when
	// the profile compiles its rule set.
	MatchWalk
	// MatchCacheHit: the verdict was replayed from the per-flow cache.
	MatchCacheHit

	// NumMatchPaths is the enumerator count, for exhaustiveness
	// checks; not a real path.
	NumMatchPaths
)

var matchPathNames = [NumMatchPaths]string{
	MatchNone:     "none",
	MatchWalk:     "walk",
	MatchCacheHit: "cache-hit",
}

func (m MatchPath) String() string {
	if int(m) < len(matchPathNames) {
		return matchPathNames[m]
	}
	return "invalid"
}

// Profile parameterizes a card's embedded processing model. Cost units
// are abstract; only the ratios and the capacity matter. The default
// profiles are calibrated so the simulated cards reproduce the paper's
// measured shapes (see DESIGN.md §4 and the calibration tests in
// internal/experiment).
type Profile struct {
	// Name identifies the model in results ("EFW", "ADF", ...).
	Name string
	// CapacityUnits is the embedded processor budget in cost units per
	// second. Zero models a wire-speed standard NIC.
	CapacityUnits float64
	// BaseCost is the fixed per-packet processing cost.
	BaseCost float64
	// PerRuleCost is the cost of examining one rule. The ADF pays more
	// per rule than the EFW (the paper attributes its lower throughput
	// to "a less efficient packet filtering algorithm" on identical
	// hardware).
	PerRuleCost float64
	// CryptoPerPacket and CryptoPerByte are the additional costs of
	// sealing or opening a VPG packet.
	CryptoPerPacket float64
	CryptoPerByte   float64
	// MaxQueue bounds the card's descriptor ring, in packets.
	MaxQueue int
	// LockupDeniedPPS, when positive, wedges the card once it denies
	// more than this many packets within one second — the EFW's
	// Deny-All failure the paper could not work around. A wedged card
	// drops all traffic until the firewall agent restarts it.
	LockupDeniedPPS int
	// EagerVPGDecrypt, when true, decrypts sealed packets before rule
	// matching instead of on reaching the matching VPG rule. The real
	// ADF is lazy — the paper observed that inserting non-matching VPG
	// rules above the action rule costs almost nothing — and this knob
	// exists for the ablation that shows why that matters.
	EagerVPGDecrypt bool
	// CompiledMatch, when true, models a card that compiles its
	// installed rule set into a depth-independent classifier
	// (fw.Compile): every rule match costs the flat CompiledLookupCost
	// instead of PerRuleCost × rules traversed.
	CompiledMatch bool
	// CompiledLookupCost is the flat per-packet cost of one compiled-
	// classifier lookup. Used only when CompiledMatch is set.
	CompiledLookupCost float64
	// FlowCacheSize, when positive, gives the card an XDP-style
	// per-flow verdict cache with this many entries: a packet whose
	// 5-tuple flow already has a cached verdict pays CacheHitCost
	// instead of the match cost. The cache is invalidated on every
	// policy commit and degraded-mode transition.
	FlowCacheSize int
	// CacheHitCost is the per-packet match cost on a flow-cache hit.
	CacheHitCost float64
	// ConntrackEntries, when positive, gives the card a bounded
	// connection-tracking table (internal/nic/conntrack) consulted
	// whenever the installed policy carries state matchers. The bound
	// is the card's state memory budget divided by ConntrackEntryBytes.
	ConntrackEntries int
	// ConntrackEntryBytes is the card SRAM one tracked connection
	// occupies; ConntrackEntries × ConntrackEntryBytes is the memory
	// the table charges against the card.
	ConntrackEntryBytes int
	// ConntrackLookupCost is the per-packet cost of the conntrack
	// classification (hash lookup + state-machine advance), paid by
	// every packet of a stateful policy.
	ConntrackLookupCost float64
	// ConntrackInsertCost is the additional cost of creating a table
	// entry (including any eviction work) for an allowed new
	// connection.
	ConntrackInsertCost float64
	// ConntrackEvict selects the table's eviction policy
	// (conntrack.EvictLRU when zero).
	ConntrackEvict conntrack.EvictPolicy
}

// Standard returns the non-filtering wire-speed NIC profile (the paper's
// Intel EEPro 100 control).
func Standard() Profile {
	return Profile{Name: "Standard"}
}

// EFW returns the calibrated 3Com Embedded Firewall profile.
//
// The paper measured bandwidth with iperf, whose default protocol is
// TCP, so every data segment costs the card twice: once inbound and once
// for the outbound ACK. Calibration anchors (1518-byte frames, 100 Mbps
// => 8,127 fps; x = capacity / (2·(base + perRule·depth)) data pps):
//   - 64-rule available bandwidth ≈ 50 Mbps  => x(64) ≈ 4,100/s
//   - <20 rules: no significant loss         => x(19) ≥ 8,127/s
//   - 1-rule flood of ≈12,500/s => ~0 Mbps   => 2F·(base+1) ≈ capacity at F≈12.5k
//   - minimum allowed-flood rate at 64 rules ≈ 4,500/s (Figure 3b)
func EFW() Profile {
	return Profile{
		Name:            "EFW",
		CapacityUnits:   750_000,
		BaseCost:        29.5,
		PerRuleCost:     1.0,
		MaxQueue:        DefaultQueuePackets,
		LockupDeniedPPS: 1_000,
	}
}

// ADF returns the calibrated Autonomic Distributed Firewall profile:
// identical hardware budget to the EFW, a costlier per-rule match, and
// VPG cryptography.
//
// Calibration anchors:
//   - 64-rule available bandwidth ≈ 33 Mbps  => capacity/(2·(base+1.78·64)) ≈ 2,700/s
//   - single-VPG bandwidth well below a standard rule-set, with a
//     near-linear bandwidth/flood-rate relation (Figure 3a)
func ADF() Profile {
	return Profile{
		Name:            "ADF",
		CapacityUnits:   750_000,
		BaseCost:        27,
		PerRuleCost:     1.78,
		CryptoPerPacket: 8,
		CryptoPerByte:   0.05,
		MaxQueue:        DefaultQueuePackets,
	}
}

// NextGen returns a hypothetical next-generation embedded firewall — the
// paper's closing hope: "new embedded firewall devices that have
// sufficient tolerance to simple packet flood attacks". It models
// purpose-built filtering hardware (the design 3Com rejected on cost
// grounds, §2) the way modern cards actually escaped the depth cliff:
// the rule set is compiled into a depth-independent classifier
// (fw.Compile) and repeated flows short-circuit through a per-flow
// verdict cache, on an order of magnitude more capacity.
//
// Calibration anchors (same 1518-byte/TCP accounting as EFW):
//   - compiled lookup ≈ 6 units: a handful of binary-search probes and
//     mask words, ≈ a 6-rule walk at EFW per-rule cost — paid at ANY
//     depth, so bandwidth is flat from 1 to 512 rules
//   - cache hit ≈ 1.5 units: one hash + one key compare
//   - worst case (all misses) 2F·(29.5+6) ≤ 7.5M sustains F ≈ 105k
//     data pps — above the 100 Mbps wire's 64-byte maximum of ≈81k pps,
//     so no flood the testbed can generate finds a DoS rate (Fig. 3
//     rerun, EXT1)
//   - PerRuleCost stays at the EFW's 1.0 as the reference cost of the
//     equivalent linear walk (comparison output only; the compiled
//     matcher never pays it)
func NextGen() Profile {
	return Profile{
		Name:               "NextGenFW",
		CapacityUnits:      7_500_000,
		BaseCost:           29.5,
		PerRuleCost:        1.0,
		MaxQueue:           DefaultQueuePackets,
		CompiledMatch:      true,
		CompiledLookupCost: 6,
		FlowCacheSize:      4096,
		CacheHitCost:       1.5,
	}
}

// Stateful returns a hypothetical stateful embedded firewall: EFW-class
// capacity and rule costs (without the Deny-All lockup defect), plus a
// connection-tracking table bounded by card memory. It is the profile
// the stateflood experiment family measures: the same processor budget
// as the EFW, so its *packet-rate* DoS threshold is comparable, but a
// new, much cheaper exhaustion axis — table state — that the stateless
// cards simply do not have.
//
// Calibration anchors:
//   - 128 KiB of state SRAM at 128 B/entry bounds the table at 1,024
//     connections — the same order as early commercial stateful
//     offloads, and small enough that the testbed's flood generator
//     can exhaust it at rates far below the packet-rate DoS threshold
//   - conntrack lookup ≈ 2 units (one hash probe + state advance) and
//     insert ≈ 4 units (slot claim + optional eviction): the netfilter
//     measurement literature puts conntrack at a small constant per
//     packet, dwarfed by the 29.5-unit base cost
//   - packet-rate DoS stays EFW-shaped: 2F·(29.5+2+d) ≈ capacity
func Stateful() Profile {
	return Profile{
		Name:                "StatefulFW",
		CapacityUnits:       750_000,
		BaseCost:            29.5,
		PerRuleCost:         1.0,
		MaxQueue:            DefaultQueuePackets,
		CompiledMatch:       true,
		CompiledLookupCost:  6,
		FlowCacheSize:       1024,
		CacheHitCost:        1.5,
		ConntrackEntries:    1024,
		ConntrackEntryBytes: 128,
		ConntrackLookupCost: 2.0,
		ConntrackInsertCost: 4.0,
		ConntrackEvict:      conntrack.EvictLRU,
	}
}

// ConntrackMemBytes is the card memory the state table charges: the
// entry bound times the per-entry footprint.
func (p Profile) ConntrackMemBytes() int {
	return p.ConntrackEntries * p.ConntrackEntryBytes
}

// matchCost is the rule-matching component of a packet's cost, by how
// the verdict was produced.
//
//barbican:noalloc
func (p Profile) matchCost(path MatchPath, rulesTraversed int) float64 {
	switch path {
	case MatchWalk:
		if p.CompiledMatch {
			return p.CompiledLookupCost
		}
		return p.PerRuleCost * float64(rulesTraversed)
	case MatchCacheHit:
		return p.CacheHitCost
	case MatchNone, NumMatchPaths:
	}
	return 0
}

// CostPath returns the processing cost of one packet whose verdict came
// via the given match path, having traversed the given number of rules
// (meaningful for MatchWalk on a linear profile), optionally paying
// crypto for cryptoBytes.
//
//barbican:noalloc
func (p Profile) CostPath(path MatchPath, rulesTraversed, cryptoBytes int) float64 {
	c := p.BaseCost + p.matchCost(path, rulesTraversed)
	if cryptoBytes > 0 {
		c += p.CryptoPerPacket + p.CryptoPerByte*float64(cryptoBytes)
	}
	return c
}

// cost is CostPath for the ordinary rule-matched case.
func (p Profile) cost(rulesTraversed int, cryptoBytes int) float64 {
	return p.CostPath(MatchWalk, rulesTraversed, cryptoBytes)
}

// Cost is the exported cost model for the rule-matched path, for
// explain-style tooling, lint predictions, and attribution exports. On
// a CompiledMatch profile it is flat in rulesTraversed.
func (p Profile) Cost(rulesTraversed, cryptoBytes int) float64 {
	return p.cost(rulesTraversed, cryptoBytes)
}

// CostPartsPath decomposes CostPath into its phases — fixed base,
// rule-match (walk, compiled lookup, or cache hit), and crypto — for
// the cost-domain profiler. The parts sum to CostPath(path,
// rulesTraversed, cryptoBytes) exactly, which is what lets the profiler
// attribute 100% of the processor's consumed units.
//
//barbican:noalloc
func (p Profile) CostPartsPath(path MatchPath, rulesTraversed, cryptoBytes int) (base, match, crypto float64) {
	base = p.BaseCost
	match = p.matchCost(path, rulesTraversed)
	if cryptoBytes > 0 {
		crypto = p.CryptoPerPacket + p.CryptoPerByte*float64(cryptoBytes)
	}
	return base, match, crypto
}

// CostParts is CostPartsPath for the ordinary rule-matched case.
func (p Profile) CostParts(rulesTraversed, cryptoBytes int) (base, match, crypto float64) {
	return p.CostPartsPath(MatchWalk, rulesTraversed, cryptoBytes)
}

// ServiceTime converts a cost to the time the embedded processor
// spends on it. A zero-capacity (wire speed) profile serves instantly.
func (p Profile) ServiceTime(cost float64) time.Duration {
	if p.CapacityUnits <= 0 || cost <= 0 {
		return 0
	}
	return time.Duration(cost / p.CapacityUnits * float64(time.Second))
}
