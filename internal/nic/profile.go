package nic

import "time"

// Profile parameterizes a card's embedded processing model. Cost units
// are abstract; only the ratios and the capacity matter. The default
// profiles are calibrated so the simulated cards reproduce the paper's
// measured shapes (see DESIGN.md §4 and the calibration tests in
// internal/experiment).
type Profile struct {
	// Name identifies the model in results ("EFW", "ADF", ...).
	Name string
	// CapacityUnits is the embedded processor budget in cost units per
	// second. Zero models a wire-speed standard NIC.
	CapacityUnits float64
	// BaseCost is the fixed per-packet processing cost.
	BaseCost float64
	// PerRuleCost is the cost of examining one rule. The ADF pays more
	// per rule than the EFW (the paper attributes its lower throughput
	// to "a less efficient packet filtering algorithm" on identical
	// hardware).
	PerRuleCost float64
	// CryptoPerPacket and CryptoPerByte are the additional costs of
	// sealing or opening a VPG packet.
	CryptoPerPacket float64
	CryptoPerByte   float64
	// MaxQueue bounds the card's descriptor ring, in packets.
	MaxQueue int
	// LockupDeniedPPS, when positive, wedges the card once it denies
	// more than this many packets within one second — the EFW's
	// Deny-All failure the paper could not work around. A wedged card
	// drops all traffic until the firewall agent restarts it.
	LockupDeniedPPS int
	// EagerVPGDecrypt, when true, decrypts sealed packets before rule
	// matching instead of on reaching the matching VPG rule. The real
	// ADF is lazy — the paper observed that inserting non-matching VPG
	// rules above the action rule costs almost nothing — and this knob
	// exists for the ablation that shows why that matters.
	EagerVPGDecrypt bool
}

// Standard returns the non-filtering wire-speed NIC profile (the paper's
// Intel EEPro 100 control).
func Standard() Profile {
	return Profile{Name: "Standard"}
}

// EFW returns the calibrated 3Com Embedded Firewall profile.
//
// The paper measured bandwidth with iperf, whose default protocol is
// TCP, so every data segment costs the card twice: once inbound and once
// for the outbound ACK. Calibration anchors (1518-byte frames, 100 Mbps
// => 8,127 fps; x = capacity / (2·(base + perRule·depth)) data pps):
//   - 64-rule available bandwidth ≈ 50 Mbps  => x(64) ≈ 4,100/s
//   - <20 rules: no significant loss         => x(19) ≥ 8,127/s
//   - 1-rule flood of ≈12,500/s => ~0 Mbps   => 2F·(base+1) ≈ capacity at F≈12.5k
//   - minimum allowed-flood rate at 64 rules ≈ 4,500/s (Figure 3b)
func EFW() Profile {
	return Profile{
		Name:            "EFW",
		CapacityUnits:   750_000,
		BaseCost:        29.5,
		PerRuleCost:     1.0,
		MaxQueue:        DefaultQueuePackets,
		LockupDeniedPPS: 1_000,
	}
}

// ADF returns the calibrated Autonomic Distributed Firewall profile:
// identical hardware budget to the EFW, a costlier per-rule match, and
// VPG cryptography.
//
// Calibration anchors:
//   - 64-rule available bandwidth ≈ 33 Mbps  => capacity/(2·(base+1.78·64)) ≈ 2,700/s
//   - single-VPG bandwidth well below a standard rule-set, with a
//     near-linear bandwidth/flood-rate relation (Figure 3a)
func ADF() Profile {
	return Profile{
		Name:            "ADF",
		CapacityUnits:   750_000,
		BaseCost:        27,
		PerRuleCost:     1.78,
		CryptoPerPacket: 8,
		CryptoPerByte:   0.05,
		MaxQueue:        DefaultQueuePackets,
	}
}

// NextGen returns a hypothetical next-generation embedded firewall — the
// paper's closing hope: "new embedded firewall devices that have
// sufficient tolerance to simple packet flood attacks". It models
// purpose-built filtering hardware (the design 3Com rejected on cost
// grounds, §2): an order of magnitude more capacity and a hash-assisted
// matcher whose per-rule cost is a tenth of the EFW's linear scan. The
// EXT1 extension experiment shows it survives any 100 Mbps flood.
func NextGen() Profile {
	return Profile{
		Name:          "NextGenFW",
		CapacityUnits: 7_500_000,
		BaseCost:      29.5,
		PerRuleCost:   0.1,
		MaxQueue:      DefaultQueuePackets,
	}
}

// cost returns the processing cost of one packet that traversed the given
// number of rules, optionally paying crypto for cryptoBytes.
func (p Profile) cost(rulesTraversed int, cryptoBytes int) float64 {
	c := p.BaseCost + p.PerRuleCost*float64(rulesTraversed)
	if cryptoBytes > 0 {
		c += p.CryptoPerPacket + p.CryptoPerByte*float64(cryptoBytes)
	}
	return c
}

// Cost is the exported cost model, for explain-style tooling and
// exports that predict per-packet processing cost outside a running
// simulation.
func (p Profile) Cost(rulesTraversed, cryptoBytes int) float64 {
	return p.cost(rulesTraversed, cryptoBytes)
}

// CostParts decomposes cost into its phases — fixed base, rule-match
// walk, and crypto — for the cost-domain profiler. The parts sum to
// cost(rulesTraversed, cryptoBytes) exactly, which is what lets the
// profiler attribute 100% of the processor's consumed units.
func (p Profile) CostParts(rulesTraversed, cryptoBytes int) (base, match, crypto float64) {
	base = p.BaseCost
	match = p.PerRuleCost * float64(rulesTraversed)
	if cryptoBytes > 0 {
		crypto = p.CryptoPerPacket + p.CryptoPerByte*float64(cryptoBytes)
	}
	return base, match, crypto
}

// ServiceTime converts a cost to the time the embedded processor
// spends on it. A zero-capacity (wire speed) profile serves instantly.
func (p Profile) ServiceTime(cost float64) time.Duration {
	if p.CapacityUnits <= 0 || cost <= 0 {
		return 0
	}
	return time.Duration(cost / p.CapacityUnits * float64(time.Second))
}
