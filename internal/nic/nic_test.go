package nic

import (
	"testing"
	"time"

	"barbican/internal/fw"
	"barbican/internal/link"
	"barbican/internal/packet"
	"barbican/internal/sim"
	"barbican/internal/vpg"
)

var (
	macA = packet.MAC{2, 0, 0, 0, 0, 1}
	macB = packet.MAC{2, 0, 0, 0, 0, 2}
	ipA  = packet.MustIP("10.0.0.1")
	ipB  = packet.MustIP("10.0.0.2")
)

// pair builds two NICs joined by a 100 Mbps link.
func pair(t *testing.T, k *sim.Kernel, profA, profB Profile) (*NIC, *NIC) {
	t.Helper()
	ea, eb := link.New(k, link.Config{QueueFrames: 1 << 16})
	return New(k, macA, profA, ea), New(k, macB, profB, eb)
}

func udpDatagram(src, dst packet.IP, sport, dport uint16, payload int) *packet.Datagram {
	u := &packet.UDPDatagram{SrcPort: sport, DstPort: dport, Payload: make([]byte, payload)}
	return packet.NewDatagram(src, dst, packet.ProtoUDP, 1, u.Marshal(src, dst))
}

func tcpSyn(src, dst packet.IP, sport, dport uint16) *packet.Datagram {
	s := &packet.TCPSegment{SrcPort: sport, DstPort: dport, Flags: packet.FlagSYN}
	return packet.NewDatagram(src, dst, packet.ProtoTCP, 1, s.Marshal(src, dst))
}

func TestStandardNICPassesTraffic(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, Standard(), Standard())
	var got []*packet.Frame
	b.SetDeliver(func(f *packet.Frame) { got = append(got, f) })
	if !a.Send(udpDatagram(ipA, ipB, 1000, 2000, 100), macB) {
		t.Fatal("Send refused")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(got))
	}
	if st := b.Stats(); st.RxAllowed != 1 || st.RxDenied != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNICIgnoresFramesForOtherMACs(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, Standard(), Standard())
	delivered := 0
	b.SetDeliver(func(f *packet.Frame) { delivered++ })
	other := packet.MAC{2, 0, 0, 0, 0, 99}
	a.Send(udpDatagram(ipA, ipB, 1, 2, 10), other)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Error("frame for another MAC was delivered")
	}
	if b.Stats().RxFrames != 0 {
		t.Error("frame for another MAC was counted")
	}
}

func TestIngressPolicyEnforced(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, Standard(), EFW())
	b.InstallRuleSet(fw.MustRuleSet(fw.Deny,
		fw.Rule{Action: fw.Allow, Direction: fw.In, Proto: packet.ProtoUDP, DstPorts: fw.Port(2000)},
	))
	delivered := 0
	b.SetDeliver(func(f *packet.Frame) { delivered++ })

	a.Send(udpDatagram(ipA, ipB, 1000, 2000, 100), macB) // allowed
	a.Send(udpDatagram(ipA, ipB, 1000, 2001, 100), macB) // denied by default
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1", delivered)
	}
	st := b.Stats()
	if st.RxAllowed != 1 || st.RxDenied != 1 {
		t.Errorf("stats = %+v, want 1 allowed / 1 denied", st)
	}
}

func TestEgressPolicyEnforced(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, EFW(), Standard())
	a.InstallRuleSet(fw.MustRuleSet(fw.Allow,
		fw.Rule{Action: fw.Deny, Direction: fw.Out, Proto: packet.ProtoUDP, DstPorts: fw.Port(9)},
	))
	delivered := 0
	b.SetDeliver(func(f *packet.Frame) { delivered++ })

	if a.Send(udpDatagram(ipA, ipB, 1, 9, 10), macB) {
		t.Error("denied egress datagram accepted")
	}
	if !a.Send(udpDatagram(ipA, ipB, 1, 10, 10), macB) {
		t.Error("allowed egress datagram refused")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Errorf("delivered %d, want 1", delivered)
	}
	if st := a.Stats(); st.TxDenied != 1 || st.TxAllowed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUnfilteredNICAllowsWithoutRuleCost(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, Standard(), EFW())
	if b.RuleSet() != nil {
		t.Fatal("fresh NIC has rules")
	}
	delivered := 0
	b.SetDeliver(func(f *packet.Frame) { delivered++ })
	a.Send(udpDatagram(ipA, ipB, 1, 2, 64), macB)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatal("unfiltered EFW dropped traffic")
	}
	// Only the base cost was paid: no rules were traversed.
	if got := b.proc.UnitsDone(); got != EFW().BaseCost {
		t.Errorf("units done = %v, want base cost %v", got, EFW().BaseCost)
	}
}

func TestSaturationDropsFloodTraffic(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, Standard(), EFW())
	rs, err := fw.DepthRuleSet(64, fw.AllowAllRule(), fw.Deny)
	if err != nil {
		t.Fatal(err)
	}
	b.InstallRuleSet(rs)
	delivered := 0
	b.SetDeliver(func(f *packet.Frame) { delivered++ })

	// Offer twice the card's 64-rule one-way capacity for one second;
	// roughly half must be dropped by overload.
	cap64 := EFW().CapacityUnits / (EFW().BaseCost + 64*EFW().PerRuleCost)
	offered := int(2 * cap64)
	interval := time.Second / time.Duration(offered)
	for i := 0; i < offered; i++ {
		d := udpDatagram(ipA, ipB, 1000, 2000, 64)
		k.At(time.Duration(i)*interval, func() { a.Send(d, macB) })
	}
	if err := k.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.RxOverloadDrops == 0 {
		t.Fatal("no overload drops under 2x flood")
	}
	if float64(delivered) < cap64*0.8 || float64(delivered) > cap64*1.3 {
		t.Errorf("delivered %d packets, want ≈%0.f (card capacity at 64 rules)", delivered, cap64)
	}
}

func TestEFWLockupAndAgentRestart(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, Standard(), EFW())
	b.InstallRuleSet(fw.MustRuleSet(fw.Deny)) // deny-all
	delivered := 0
	b.SetDeliver(func(f *packet.Frame) { delivered++ })

	// Flood with 1,500 denied packets/s: above the 1,000/s lockup
	// threshold the paper observed.
	interval := time.Second / 1500
	for i := 0; i < 1500; i++ {
		d := udpDatagram(ipA, ipB, 1, 2, 64)
		k.At(time.Duration(i)*interval, func() { a.Send(d, macB) })
	}
	if err := k.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if !b.Locked() {
		t.Fatal("EFW did not lock up under a >1000 pps denied flood")
	}
	if b.Stats().Lockups != 1 {
		t.Errorf("Lockups = %d, want 1", b.Stats().Lockups)
	}

	// While locked, even traffic that would be allowed is dropped.
	b.InstallRuleSet(fw.MustRuleSet(fw.Allow))
	a.Send(udpDatagram(ipA, ipB, 1, 2, 64), macB)
	if err := k.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Error("locked card delivered traffic")
	}
	lockedDrops := b.Stats().RxLockedDrops
	if lockedDrops == 0 {
		t.Error("locked card recorded no locked drops")
	}

	// Restarting the agent restores service, as in the paper.
	b.RestartAgent()
	a.Send(udpDatagram(ipA, ipB, 1, 2, 64), macB)
	if err := k.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Errorf("delivered %d after restart, want 1", delivered)
	}
}

func TestADFDoesNotLockUp(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, Standard(), ADF())
	b.InstallRuleSet(fw.MustRuleSet(fw.Deny))
	interval := time.Second / 5000
	for i := 0; i < 5000; i++ {
		d := udpDatagram(ipA, ipB, 1, 2, 64)
		k.At(time.Duration(i)*interval, func() { a.Send(d, macB) })
	}
	if err := k.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if b.Locked() {
		t.Error("ADF locked up; only the EFW exhibits the Deny-All failure")
	}
}

func vpgPair(t *testing.T, k *sim.Kernel) (*NIC, *NIC, *vpg.Group) {
	t.Helper()
	a, b := pair(t, k, ADF(), ADF())
	g, err := vpg.NewGroup("psq", vpg.DeriveKey("k"), ipA, ipB)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.InstallGroup(g, ipA); err != nil {
		t.Fatal(err)
	}
	if err := b.InstallGroup(g, ipB); err != nil {
		t.Fatal(err)
	}
	prefix := packet.MustPrefix("10.0.0.0/24")
	a.InstallRuleSet(fw.MustRuleSet(fw.Deny, fw.VPGRulePair("psq", ipA, prefix)...))
	b.InstallRuleSet(fw.MustRuleSet(fw.Deny, fw.VPGRulePair("psq", ipB, prefix)...))
	return a, b, g
}

func TestVPGSealsAndOpensEndToEnd(t *testing.T) {
	k := sim.NewKernel()
	a, b, _ := vpgPair(t, k)
	var got *packet.Frame
	b.SetDeliver(func(f *packet.Frame) { got = f })

	if !a.Send(udpDatagram(ipA, ipB, 1000, 2000, 256), macB) {
		t.Fatal("Send refused")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("nothing delivered")
	}
	if got.Type != packet.EtherTypeIPv4 {
		t.Fatalf("delivered frame type %#x, want cleartext IPv4", uint16(got.Type))
	}
	d, err := packet.UnmarshalDatagram(got.Payload)
	if err != nil {
		t.Fatalf("inner datagram: %v", err)
	}
	u, err := packet.UnmarshalUDPDatagram(d.Header.Src, d.Header.Dst, d.Payload)
	if err != nil {
		t.Fatalf("inner UDP: %v", err)
	}
	if u.DstPort != 2000 || len(u.Payload) != 256 {
		t.Errorf("inner UDP = port %d len %d", u.DstPort, len(u.Payload))
	}
	if a.Stats().Sealed != 1 || b.Stats().Opened != 1 {
		t.Errorf("sealed=%d opened=%d", a.Stats().Sealed, b.Stats().Opened)
	}
}

func TestVPGWireTrafficIsSealed(t *testing.T) {
	k := sim.NewKernel()
	ea, eb := link.New(k, link.Config{})
	a := New(k, macA, ADF(), ea)
	g, err := vpg.NewGroup("psq", vpg.DeriveKey("k"), ipA, ipB)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.InstallGroup(g, ipA); err != nil {
		t.Fatal(err)
	}
	a.InstallRuleSet(fw.MustRuleSet(fw.Deny, fw.VPGRulePair("psq", ipA, packet.MustPrefix("10.0.0.0/24"))...))

	var wire *packet.Frame
	eb.Attach(func(f *packet.Frame) { wire = f })
	a.Send(udpDatagram(ipA, ipB, 1000, 2000, 64), macB)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wire == nil {
		t.Fatal("nothing on the wire")
	}
	if wire.Type != packet.EtherTypeVPG {
		t.Fatalf("wire frame type %#x, want sealed VPG", uint16(wire.Type))
	}
	d, err := packet.UnmarshalDatagram(wire.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if d.Header.Protocol != packet.ProtoVPGEncap {
		t.Errorf("outer protocol %v, want VPG encap", d.Header.Protocol)
	}
}

func TestVPGRejectsCleartextFromNonMember(t *testing.T) {
	k := sim.NewKernel()
	_, b, _ := vpgPair(t, k)

	// An attacker injects a cleartext datagram at b's ingress; the
	// VPG-only policy must deny it.
	delivered := 0
	b.SetDeliver(func(f *packet.Frame) { delivered++ })
	evil := packet.MustIP("10.0.0.66")
	d := udpDatagram(evil, ipB, 1, 2000, 64)
	f := &packet.Frame{Dst: macB, Src: packet.MAC{2, 0, 0, 0, 0, 66}, Type: packet.EtherTypeIPv4, Payload: d.Marshal()}
	b.handleFrame(f)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Error("cleartext from non-member delivered through VPG-only policy")
	}
	if b.Stats().RxDenied != 1 {
		t.Errorf("RxDenied = %d, want 1", b.Stats().RxDenied)
	}
}

func TestVPGForgedFrameDropped(t *testing.T) {
	k := sim.NewKernel()
	a, b, _ := vpgPair(t, k)
	delivered := 0
	b.SetDeliver(func(f *packet.Frame) { delivered++ })

	// Two legitimate sealed sends pass.
	a.Send(udpDatagram(ipA, ipB, 1, 2000, 64), macB)
	a.Send(udpDatagram(ipA, ipB, 1, 2000, 64), macB)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("clean frames delivered = %d, want 2", delivered)
	}

	// Craft a forged envelope with the wrong key.
	forgedGroup, err := vpg.NewGroup("psq", vpg.DeriveKey("WRONG"), ipA, ipB)
	if err != nil {
		t.Fatal(err)
	}
	env, err := forgedGroup.Seal(ipA, ipB, packet.ProtoUDP, make([]byte, 64), 99)
	if err != nil {
		t.Fatal(err)
	}
	outer := packet.NewDatagram(ipA, ipB, packet.ProtoVPGEncap, 9, env)
	forged := &packet.Frame{Dst: macB, Src: macA, Type: packet.EtherTypeVPG, Payload: outer.Marshal()}
	b.handleFrame(forged)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Error("forged frame was delivered")
	}
	if b.Stats().RxAuthFailures != 1 {
		t.Errorf("RxAuthFailures = %d, want 1", b.Stats().RxAuthFailures)
	}
}

func TestVPGReplayDropped(t *testing.T) {
	k := sim.NewKernel()
	a, b, _ := vpgPair(t, k)
	delivered := 0
	b.SetDeliver(func(f *packet.Frame) { delivered++ })

	a.Send(udpDatagram(ipA, ipB, 1, 2000, 64), macB)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatal("original frame not delivered")
	}

	// An attacker who captured a sealed frame replays it verbatim: the
	// first injected copy is fresh (new seq), its replay is dropped.
	g, err := vpg.NewGroup("psq", vpg.DeriveKey("k"), ipA, ipB)
	if err != nil {
		t.Fatal(err)
	}
	env, err := g.Seal(ipA, ipB, packet.ProtoUDP, make([]byte, 64), 7)
	if err != nil {
		t.Fatal(err)
	}
	outer := packet.NewDatagram(ipA, ipB, packet.ProtoVPGEncap, 9, env)
	f := &packet.Frame{Dst: macB, Src: macA, Type: packet.EtherTypeVPG, Payload: outer.Marshal()}
	b.handleFrame(f)
	b.handleFrame(f.Clone())
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2 (original + first injected)", delivered)
	}
	if b.Stats().RxReplayDrops != 1 {
		t.Errorf("RxReplayDrops = %d, want 1", b.Stats().RxReplayDrops)
	}
}

func TestSealOverheadAndOversize(t *testing.T) {
	k := sim.NewKernel()
	a, _, _ := vpgPair(t, k)
	if a.SealOverhead() != vpg.Overhead(3) {
		t.Errorf("SealOverhead = %d, want %d", a.SealOverhead(), vpg.Overhead(3))
	}
	// A full-MTU datagram cannot be sealed without exceeding the MTU.
	big := udpDatagram(ipA, ipB, 1, 2000, packet.MaxPayload-packet.IPv4HeaderLen-packet.UDPHeaderLen)
	if a.Send(big, macB) {
		t.Error("oversized sealed frame accepted")
	}
	if a.Stats().TxOversize != 1 {
		t.Errorf("TxOversize = %d, want 1", a.Stats().TxOversize)
	}
}

func TestEagerVPGDecryptCostsMore(t *testing.T) {
	// Ablation support: with eager decryption the card pays crypto for
	// sealed packets even when they are denied before the VPG rule.
	run := func(eager bool) float64 {
		k := sim.NewKernel()
		prof := ADF()
		prof.EagerVPGDecrypt = eager
		ea, eb := link.New(k, link.Config{})
		_ = ea
		b := New(k, macB, prof, eb)
		g, err := vpg.NewGroup("psq", vpg.DeriveKey("k"), ipA, ipB)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.InstallGroup(g, ipB); err != nil {
			t.Fatal(err)
		}
		// Sealed traffic denied by rule 1 (before any VPG rule).
		b.InstallRuleSet(fw.MustRuleSet(fw.Deny))
		env, err := g.Seal(ipA, ipB, packet.ProtoUDP, make([]byte, 512), 1)
		if err != nil {
			t.Fatal(err)
		}
		outer := packet.NewDatagram(ipA, ipB, packet.ProtoVPGEncap, 1, env)
		f := &packet.Frame{Dst: macB, Src: macA, Type: packet.EtherTypeVPG, Payload: outer.Marshal()}
		b.handleFrame(f)
		return b.proc.UnitsDone()
	}
	lazy, eager := run(false), run(true)
	if eager <= lazy {
		t.Errorf("eager units %0.f <= lazy units %0.f; eager decrypt should cost more", eager, lazy)
	}
}

func TestLockedCardRefusesEgress(t *testing.T) {
	k := sim.NewKernel()
	a, _ := pair(t, k, EFW(), Standard())
	a.locked = true
	if a.Send(udpDatagram(ipA, ipB, 1, 2, 10), macB) {
		t.Error("locked card transmitted")
	}
	if a.Stats().TxLockedDrops != 1 {
		t.Errorf("TxLockedDrops = %d, want 1", a.Stats().TxLockedDrops)
	}
}
