package nic

import (
	"barbican/internal/obs"
	"barbican/internal/obs/tracing"
)

// PublishMetrics registers the card's counters and processor state with
// the registry as collector closures. The packet fast path is untouched
// — the closures read the existing Stats fields only when a snapshot or
// flight-recorder tick gathers them, so an unsampled (or unregistered)
// card pays nothing.
func (n *NIC) PublishMetrics(reg *obs.Registry, labels ...obs.Label) {
	counter := func(name, help string, read func() float64) {
		reg.MustRegisterFunc(name, help, obs.KindCounter, read, labels...)
	}
	gauge := func(name, help string, read func() float64) {
		reg.MustRegisterFunc(name, help, obs.KindGauge, read, labels...)
	}

	counter("nic_rx_frames_total", "Frames addressed to this card.",
		func() float64 { return float64(n.stats.RxFrames) })
	counter("nic_rx_allowed_total", "Ingress frames passed to the host.",
		func() float64 { return float64(n.stats.RxAllowed) })
	counter("nic_rx_denied_total", "Ingress frames denied by policy.",
		func() float64 { return float64(n.stats.RxDenied) })
	counter("nic_rx_overload_drops_total", "Ingress frames dropped by the saturated processor.",
		func() float64 { return float64(n.stats.RxOverloadDrops) })
	counter("nic_rx_auth_failures_total", "VPG open failures (tamper, non-member, wrong key).",
		func() float64 { return float64(n.stats.RxAuthFailures) })
	counter("nic_rx_replay_drops_total", "Sealed frames dropped by the replay window.",
		func() float64 { return float64(n.stats.RxReplayDrops) })
	counter("nic_rx_no_group_total", "Sealed frames for groups the card lacks.",
		func() float64 { return float64(n.stats.RxNoGroup) })
	counter("nic_rx_malformed_total", "Unparseable ingress frames.",
		func() float64 { return float64(n.stats.RxMalformed) })
	counter("nic_rx_locked_drops_total", "Ingress frames dropped while the card was wedged.",
		func() float64 { return float64(n.stats.RxLockedDrops) })

	counter("nic_tx_requests_total", "Egress transmit requests from the host.",
		func() float64 { return float64(n.stats.TxRequests) })
	counter("nic_tx_allowed_total", "Egress frames accepted for transmission.",
		func() float64 { return float64(n.stats.TxAllowed) })
	counter("nic_tx_denied_total", "Egress frames denied by policy.",
		func() float64 { return float64(n.stats.TxDenied) })
	counter("nic_tx_overload_drops_total", "Egress frames dropped by the saturated processor.",
		func() float64 { return float64(n.stats.TxOverloadDrops) })
	counter("nic_tx_locked_drops_total", "Egress frames dropped while the card was wedged.",
		func() float64 { return float64(n.stats.TxLockedDrops) })

	// Per-reason drop taxonomy (see internal/obs/tracing.DropReason):
	// one series per direction × reason, reading the always-on arrays.
	for _, r := range tracing.DropReasons() {
		r := r
		reg.MustRegisterFunc("nic_drops_total", "Frames dropped, by first-class drop reason.",
			obs.KindCounter,
			func() float64 { return float64(n.rxDrops[r]) },
			append([]obs.Label{obs.L("dir", "rx"), obs.L("reason", r.String())}, labels...)...)
		reg.MustRegisterFunc("nic_drops_total", "Frames dropped, by first-class drop reason.",
			obs.KindCounter,
			func() float64 { return float64(n.txDrops[r]) },
			append([]obs.Label{obs.L("dir", "tx"), obs.L("reason", r.String())}, labels...)...)
	}

	counter("nic_sealed_total", "Datagrams sealed into VPG envelopes.",
		func() float64 { return float64(n.stats.Sealed) })
	counter("nic_opened_total", "VPG envelopes verified and opened.",
		func() float64 { return float64(n.stats.Opened) })
	counter("nic_lockups_total", "Times the card wedged (EFW Deny-All failure).",
		func() float64 { return float64(n.stats.Lockups) })

	counter("nic_degraded_entries_total", "Transitions into the degraded policy-plane state.",
		func() float64 { return float64(n.stats.DegradedEntries) })
	counter("nic_watchdog_resets_total", "Automatic watchdog recoveries to the last committed rule set.",
		func() float64 { return float64(n.stats.WatchdogResets) })
	counter("nic_updates_aborted_total", "Policy updates declared interrupted.",
		func() float64 { return float64(n.stats.UpdatesAborted) })
	counter("nic_degraded_drops_total", "Frames dropped fail-closed while degraded (both directions).",
		func() float64 { return float64(n.stats.RxDegradedDrops + n.stats.TxDegradedDrops) })
	counter("nic_degraded_pass_total", "Frames passed unfiltered fail-open while degraded.",
		func() float64 { return float64(n.stats.DegradedPass) })
	gauge("nic_degraded_state", "Policy-plane state (0 healthy, 1 updating, 2 degraded, 3 wedged).",
		func() float64 { return float64(n.DegradedState()) })
	// The same state as a labeled one-hot family, so dashboards can
	// plot/alert per state by name instead of decoding the enum value.
	for s := StateHealthy; s < NumDegradedStates; s++ {
		s := s
		reg.MustRegisterFunc("nic_degraded_mode", "Whether the card is in this policy-plane state (one-hot by state label).",
			obs.KindGauge,
			func() float64 {
				if n.DegradedState() == s {
					return 1
				}
				return 0
			},
			append([]obs.Label{obs.L("state", s.String())}, labels...)...)
	}

	if n.fcache != nil {
		counter("nic_flow_cache_hits_total", "Packets whose verdict was replayed from the per-flow cache.",
			func() float64 { return float64(n.fcache.hits) })
		counter("nic_flow_cache_misses_total", "Policy-subject packets that required a rule match.",
			func() float64 { return float64(n.fcache.misses) })
		counter("nic_flow_cache_evictions_total", "Cached flow verdicts displaced by the bounded cache.",
			func() float64 { return float64(n.fcache.evictions) })
		counter("nic_flow_cache_invalidations_total", "Whole-cache invalidations (policy commits and degraded-mode transitions).",
			func() float64 { return float64(n.fcache.invalidations) })
		gauge("nic_flow_cache_entries", "Flow verdicts currently cached.",
			func() float64 { return float64(len(n.fcache.idx)) })
	}

	if n.ct != nil {
		gauge("nic_conntrack_entries", "Connections currently tracked in the bounded state table.",
			func() float64 { return float64(n.ct.Len()) })
		gauge("nic_conntrack_capacity", "State-table slot capacity.",
			func() float64 { return float64(n.ct.Cap()) })
		gauge("nic_conntrack_mem_bytes", "Card SRAM charged to the state table.",
			func() float64 { return float64(n.profile.ConntrackMemBytes()) })
		counter("nic_conntrack_created_total", "State-table entries created.",
			func() float64 { return float64(n.ct.Stats().Created) })
		counter("nic_conntrack_expired_total", "Entries reclaimed by per-state idle timeouts.",
			func() float64 { return float64(n.ct.Stats().Expired) })
		reg.MustRegisterFunc("nic_conntrack_evictions_total",
			"Live entries displaced to make room, by the table's eviction policy.",
			obs.KindCounter,
			func() float64 { return float64(n.ct.Stats().Evicted) },
			append([]obs.Label{obs.L("policy", n.ct.Policy().String())}, labels...)...)
		// Stateful denials by reason, both directions summed: the two
		// drop taxonomies conntrack adds to the card.
		for _, r := range []tracing.DropReason{tracing.DropNoState, tracing.DropStateTableFull} {
			r := r
			reg.MustRegisterFunc("nic_conntrack_denied_total",
				"Packets denied by connection tracking, by reason.",
				obs.KindCounter,
				func() float64 { return float64(n.rxDrops[r] + n.txDrops[r]) },
				append([]obs.Label{obs.L("reason", r.String())}, labels...)...)
		}
	}

	gauge("nic_locked", "Whether the card is currently wedged (0/1).",
		func() float64 {
			if n.locked {
				return 1
			}
			return 0
		})
	gauge("nic_proc_queue_depth", "Descriptor-ring occupancy of the embedded processor.",
		func() float64 { return float64(n.proc.Queued()) })
	gauge("nic_proc_backlog_seconds", "Queued work on the embedded processor, in time.",
		func() float64 { return n.proc.Backlog().Seconds() })
	gauge("nic_backlog_units", "Queued work on the embedded processor, in cost units (backlog time × capacity).",
		func() float64 { return n.proc.Backlog().Seconds() * n.proc.Capacity() })
	gauge("nic_proc_capacity_units", "Processor capacity in cost units/s (0 = wire speed).",
		n.proc.Capacity)
	counter("nic_proc_admitted_total", "Work items accepted by the processor.",
		func() float64 { return float64(n.proc.Admitted()) })
	counter("nic_proc_units_total", "Cost units accepted by the processor; its per-second rate over capacity is utilisation.",
		n.proc.UnitsDone)
}
