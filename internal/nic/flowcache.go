package nic

import (
	"barbican/internal/fw"
	"barbican/internal/packet"
)

// flowCache is the XDP-style per-flow verdict cache: a bounded map from
// a packet's flow identity to the verdict the policy produced for that
// flow, so repeated packets of an established flow pay one hash lookup
// (Profile.CacheHitCost) instead of a rule match. Entries never expire
// on their own; the whole cache is invalidated on every policy commit
// and degraded-mode transition, which is what keeps a cached verdict
// always equal to what the installed policy would decide.
//
// The structure is an index map over fixed parallel slot arrays with a
// round-robin eviction cursor: bounded memory, deterministic eviction
// order, and a hit path that performs no map writes — so lookup holds
// 0 allocs/op under the noalloc gate.

// flowKey is the flow identity a verdict depends on. It carries exactly
// the packet attributes fw.Rule.MatchesState reads — protocol,
// addresses, ports (and whether they exist), sealing, travel
// direction, and the conntrack classification — and nothing else, so
// two packets with equal keys are guaranteed the same verdict under a
// fixed policy. Per-packet attributes that do not change the verdict
// (length, TCP flags except through cs, fragmentation) stay out of the
// key and keep the hit rate high. On stateless policies cs is always
// fw.StateNone and the key degenerates to the old 5-tuple form.
type flowKey struct {
	src, dst         packet.IP
	srcPort, dstPort uint16
	proto            packet.Protocol
	dir              fw.Direction
	cs               fw.ConnState
	flags            uint8 // bit 0: has transport ports; bit 1: sealed
}

// FlowCacheStats is a snapshot of the cache's counters.
type FlowCacheStats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Invalidations uint64
	Entries       int
}

type flowCache struct {
	cap      int
	idx      map[flowKey]int32
	keys     []flowKey
	verdicts []fw.Verdict
	used     []bool
	cursor   int

	hits, misses, evictions, invalidations uint64
}

func newFlowCache(capacity int) *flowCache {
	if capacity <= 0 {
		return nil
	}
	return &flowCache{
		cap:      capacity,
		idx:      make(map[flowKey]int32, capacity),
		keys:     make([]flowKey, capacity),
		verdicts: make([]fw.Verdict, capacity),
		used:     make([]bool, capacity),
	}
}

// key builds the flow identity for a packet summary traveling in dir
// whose conntrack classification is cs.
//
//barbican:noalloc
func (c *flowCache) key(s packet.Summary, dir fw.Direction, cs fw.ConnState) flowKey {
	k := flowKey{src: s.Src, dst: s.Dst, proto: s.Proto, dir: dir, cs: cs}
	if s.HasPorts {
		k.srcPort, k.dstPort = s.SrcPort, s.DstPort
		k.flags |= 1
	}
	if s.Sealed {
		k.flags |= 2
	}
	return k
}

// lookup returns the cached verdict for the packet's flow. It is the
// per-packet hot path: one map read, no writes beyond the counters.
//
//barbican:noalloc
func (c *flowCache) lookup(s packet.Summary, dir fw.Direction, cs fw.ConnState) (fw.Verdict, bool) {
	if i, ok := c.idx[c.key(s, dir, cs)]; ok {
		c.hits++
		return c.verdicts[i], true
	}
	c.misses++
	return fw.Verdict{}, false
}

// insert remembers the verdict for the packet's flow, evicting the
// slot under the round-robin cursor when the cache is full.
func (c *flowCache) insert(s packet.Summary, dir fw.Direction, cs fw.ConnState, v fw.Verdict) {
	k := c.key(s, dir, cs)
	if i, ok := c.idx[k]; ok {
		c.verdicts[i] = v
		return
	}
	slot := c.cursor
	c.cursor++
	if c.cursor == c.cap {
		c.cursor = 0
	}
	if c.used[slot] {
		delete(c.idx, c.keys[slot])
		c.evictions++
	}
	c.keys[slot] = k
	c.verdicts[slot] = v
	c.used[slot] = true
	c.idx[k] = int32(slot)
}

// invalidate drops every cached verdict. Called on policy commits and
// degraded-mode transitions; the map keeps its buckets, so refill after
// invalidation does not allocate in steady state.
func (c *flowCache) invalidate() {
	clear(c.idx)
	for i := range c.used {
		c.used[i] = false
	}
	c.cursor = 0
	c.invalidations++
}

func (c *flowCache) stats() FlowCacheStats {
	return FlowCacheStats{
		Hits: c.hits, Misses: c.misses,
		Evictions: c.evictions, Invalidations: c.invalidations,
		Entries: len(c.idx),
	}
}
