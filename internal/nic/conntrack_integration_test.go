package nic

import (
	"testing"

	"barbican/internal/fw"
	"barbican/internal/nic/conntrack"
	"barbican/internal/obs/tracing"
	"barbican/internal/packet"
	"barbican/internal/sim"
)

func tcpDgram(src, dst packet.IP, sport, dport uint16, flags packet.TCPFlags) *packet.Datagram {
	s := &packet.TCPSegment{SrcPort: sport, DstPort: dport, Flags: flags, Window: 65535}
	return packet.NewDatagram(src, dst, packet.ProtoTCP, 1, s.Marshal(src, dst))
}

// statefulRules is the canonical stateful policy: new connections only
// to port 2000, everything else rides on established/related state.
func statefulRules() *fw.RuleSet {
	return fw.MustRuleSet(fw.Deny,
		fw.Rule{Action: fw.Allow, Direction: fw.In, Proto: packet.ProtoTCP,
			DstPorts: fw.Port(2000), States: fw.MaskOf(fw.StateNew)},
		fw.Rule{Action: fw.Allow, Direction: fw.Both,
			States: fw.MaskOf(fw.StateEstablished, fw.StateRelated)},
	)
}

// establish runs the three-way handshake for (sport -> 2000) through
// the a->b pair so b's state table holds an assured established entry.
func establish(t *testing.T, k *sim.Kernel, a, b *NIC, sport uint16) {
	t.Helper()
	if !a.Send(tcpDgram(ipA, ipB, sport, 2000, packet.FlagSYN), macB) {
		t.Fatal("SYN refused")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !b.Send(tcpDgram(ipB, ipA, 2000, sport, packet.FlagSYN|packet.FlagACK), macA) {
		t.Fatal("SYN/ACK refused")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !a.Send(tcpDgram(ipA, ipB, sport, 2000, packet.FlagACK), macB) {
		t.Fatal("ACK refused")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestStatefulInvalidHardDrop: an untracked mid-stream ACK classifies
// INVALID and is dropped before the rule walk — the counter is the
// dedicated no-state reason, not a rule deny.
func TestStatefulInvalidHardDrop(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, Standard(), Stateful())
	b.InstallRuleSet(statefulRules())
	delivered := 0
	b.SetDeliver(func(f *packet.Frame) { delivered++ })

	a.Send(tcpDgram(ipA, ipB, 41000, 2000, packet.FlagACK), macB)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatal("untracked ACK was delivered")
	}
	st := b.Stats()
	if st.RxNoStateDrops != 1 || st.RxDenied != 0 {
		t.Errorf("stats = %+v, want one no-state drop and zero rule denies", st)
	}
	rx, _ := b.DropCounts()
	if rx[tracing.DropNoState] != 1 {
		t.Errorf("rxDrops[DropNoState] = %d, want 1", rx[tracing.DropNoState])
	}
	cts := b.ConntrackStats()
	if cts.Lookups != 1 || cts.Created != 0 {
		t.Errorf("conntrack stats = %+v, want 1 lookup, 0 created", cts)
	}
	if b.Conntrack().Len() != 0 {
		t.Error("invalid packet grew the state table")
	}
}

// TestStatefulHandshakeAndStateKeyedCache: the handshake establishes
// state, data rides the established rule, and — the flow-cache keying
// contract — when the same 5-tuple's classification changes (RST moves
// the entry to closed), the cached Allow verdict must not replay.
func TestStatefulHandshakeAndStateKeyedCache(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, Standard(), Stateful())
	b.InstallRuleSet(statefulRules())
	delivered := 0
	b.SetDeliver(func(f *packet.Frame) { delivered++ })

	establish(t, k, a, b, 41000)
	if b.Conntrack().Len() != 1 {
		t.Fatalf("conntrack entries = %d, want 1", b.Conntrack().Len())
	}
	sum := packet.Summary{Proto: packet.ProtoTCP, Src: ipA, Dst: ipB,
		SrcPort: 41000, DstPort: 2000, HasPorts: true}
	info, ok := b.Conntrack().Peek(sum, k.Now())
	if !ok || info.TCP != conntrack.TCPEstablished || !info.Assured {
		t.Fatalf("peek = %+v, %v; want assured established", info, ok)
	}

	// Data segments on the established flow pass in both directions
	// (the second ingress segment exercises the flow-cache hit path).
	for i := 0; i < 2; i++ {
		a.Send(tcpDgram(ipA, ipB, 41000, 2000, packet.FlagACK|packet.FlagPSH), macB)
	}
	if !b.Send(tcpDgram(ipB, ipA, 2000, 41000, packet.FlagACK|packet.FlagPSH), macA) {
		t.Fatal("egress data refused")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	base := delivered
	if base < 3 {
		t.Fatalf("delivered %d established-flow frames, want >= 3", base)
	}

	// RST tears the connection down; the same data packet that was
	// just allowed (and cached) must now classify INVALID and drop.
	a.Send(tcpDgram(ipA, ipB, 41000, 2000, packet.FlagRST), macB)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	pre := b.Stats().RxNoStateDrops
	a.Send(tcpDgram(ipA, ipB, 41000, 2000, packet.FlagACK|packet.FlagPSH), macB)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().RxNoStateDrops - pre; got != 1 {
		t.Errorf("post-RST data: no-state drops = %d, want 1 (stale cached verdict replayed?)", got)
	}
	if delivered != base+1 { // the RST itself was delivered; the data was not
		t.Errorf("delivered = %d, want %d", delivered, base+1)
	}
}

// TestStateTableFullPosture: with every entry assured and a policy
// (syn-drop) that refuses to evict assured state, a new connection hits
// CommitFull. The default posture is closed (drop, DropStateTableFull);
// FailModeOpen admits the connection untracked instead.
func TestStateTableFullPosture(t *testing.T) {
	k := sim.NewKernel()
	prof := Stateful()
	prof.ConntrackEntries = 2
	prof.ConntrackEvict = conntrack.EvictSYNDrop
	a, b := pair(t, k, Standard(), prof)
	b.InstallRuleSet(statefulRules())
	delivered := 0
	b.SetDeliver(func(f *packet.Frame) { delivered++ })

	establish(t, k, a, b, 41000)
	establish(t, k, a, b, 41001)
	if b.Conntrack().Len() != 2 {
		t.Fatalf("conntrack entries = %d, want 2 (table full)", b.Conntrack().Len())
	}

	// Closed posture (default): the third connection's SYN is dropped.
	preDeliver := delivered
	a.Send(tcpDgram(ipA, ipB, 41002, 2000, packet.FlagSYN), macB)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.RxStateFullDrops != 1 || st.StateUntrackedPass != 0 {
		t.Errorf("closed posture: stats = %+v, want 1 state-full drop", st)
	}
	rx, _ := b.DropCounts()
	if rx[tracing.DropStateTableFull] != 1 {
		t.Errorf("rxDrops[DropStateTableFull] = %d, want 1", rx[tracing.DropStateTableFull])
	}
	if delivered != preDeliver {
		t.Error("closed posture delivered the overflow SYN")
	}

	// Open posture: the same overflow admits untracked.
	b.SetFailMode(FailModeOpen)
	a.Send(tcpDgram(ipA, ipB, 41003, 2000, packet.FlagSYN), macB)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	st = b.Stats()
	if st.StateUntrackedPass != 1 {
		t.Errorf("open posture: StateUntrackedPass = %d, want 1", st.StateUntrackedPass)
	}
	if delivered != preDeliver+1 {
		t.Errorf("open posture: delivered = %d, want %d", delivered, preDeliver+1)
	}
	if b.Conntrack().Len() != 2 {
		t.Error("untracked pass grew the table past its cap")
	}
}

// TestStatelessPolicyBypassesConntrack: a stateless rule set on a
// conntrack-equipped card never consults the table — byte-identical to
// the pre-conntrack fast path.
func TestStatelessPolicyBypassesConntrack(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, Standard(), Stateful())
	b.InstallRuleSet(fw.MustRuleSet(fw.Deny, fw.AllowAllRule()))
	delivered := 0
	b.SetDeliver(func(f *packet.Frame) { delivered++ })

	a.Send(tcpDgram(ipA, ipB, 41000, 2000, packet.FlagSYN), macB)
	a.Send(udpDatagram(ipA, ipB, 1000, 2000, 64), macB)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2", delivered)
	}
	if cts := b.ConntrackStats(); cts.Lookups != 0 || cts.Created != 0 {
		t.Errorf("stateless policy touched conntrack: %+v", cts)
	}
	if b.Conntrack().Len() != 0 {
		t.Error("stateless policy grew the state table")
	}
}

// TestStatelessProfileWithStatefulPolicy: a card without a state table
// evaluates a stateful policy under StateNone — stateful rules cannot
// fire, so the default verdict applies. No crash, no tracking.
func TestStatelessProfileWithStatefulPolicy(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, Standard(), EFW())
	b.InstallRuleSet(statefulRules())
	delivered := 0
	b.SetDeliver(func(f *packet.Frame) { delivered++ })

	a.Send(tcpDgram(ipA, ipB, 41000, 2000, packet.FlagSYN), macB)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Error("stateless card matched a stateful rule")
	}
	if st := b.Stats(); st.RxDenied != 1 || st.RxNoStateDrops != 0 {
		t.Errorf("stats = %+v, want a plain rule deny", st)
	}
	if b.Conntrack() != nil {
		t.Fatal("EFW profile has a conntrack table")
	}
}
