package nic

import (
	"testing"
	"time"

	"barbican/internal/fw"
	"barbican/internal/link"
	"barbican/internal/packet"
	"barbican/internal/sim"
)

func TestManagementBypassExemptsControlChannel(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, Standard(), EFW())
	b.InstallRuleSet(fw.MustRuleSet(fw.Deny)) // deny everything
	serverIP := packet.MustIP("10.0.0.10")
	b.SetManagementBypass(serverIP, 4747)

	delivered := 0
	b.SetDeliver(func(f *packet.Frame) { delivered++ })

	// A TCP segment from the policy server to the agent port passes the
	// deny-all policy.
	seg := &packet.TCPSegment{SrcPort: 33000, DstPort: 4747, Flags: packet.FlagSYN}
	d := packet.NewDatagram(serverIP, ipB, packet.ProtoTCP, 1, seg.Marshal(serverIP, ipB))
	a.Send(d, macB)

	// The same segment from any other address is denied.
	other := packet.MustIP("10.0.0.77")
	seg2 := &packet.TCPSegment{SrcPort: 33000, DstPort: 4747, Flags: packet.FlagSYN}
	d2 := packet.NewDatagram(other, ipB, packet.ProtoTCP, 2, seg2.Marshal(other, ipB))
	a.Send(d2, macB)

	// And a non-management port from the server is denied too.
	seg3 := &packet.TCPSegment{SrcPort: 33000, DstPort: 80, Flags: packet.FlagSYN}
	d3 := packet.NewDatagram(serverIP, ipB, packet.ProtoTCP, 3, seg3.Marshal(serverIP, ipB))
	a.Send(d3, macB)

	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Errorf("delivered = %d, want only the management segment", delivered)
	}
	if b.Stats().RxDenied != 2 {
		t.Errorf("RxDenied = %d, want 2", b.Stats().RxDenied)
	}
}

func TestManagementBypassEgress(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, EFW(), Standard())
	a.InstallRuleSet(fw.MustRuleSet(fw.Deny))
	serverIP := packet.MustIP("10.0.0.10")
	a.SetManagementBypass(serverIP, 4747)

	// Agent reply toward the server from the management port passes.
	seg := &packet.TCPSegment{SrcPort: 4747, DstPort: 33000, Flags: packet.FlagSYN | packet.FlagACK}
	d := packet.NewDatagram(ipA, serverIP, packet.ProtoTCP, 1, seg.Marshal(ipA, serverIP))
	if !a.Send(d, macB) {
		t.Error("management egress denied")
	}
	// Anything else is denied.
	u := udpDatagram(ipA, ipB, 1, 2, 10)
	if a.Send(u, macB) {
		t.Error("non-management egress allowed through deny-all")
	}
	_ = b
}

func TestManagementBypassDoesNotSurviveLockup(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, Standard(), EFW())
	b.InstallRuleSet(fw.MustRuleSet(fw.Deny))
	serverIP := packet.MustIP("10.0.0.10")
	b.SetManagementBypass(serverIP, 4747)

	// Lock the card with a denied flood.
	interval := time.Second / 1500
	for i := 0; i < 1500; i++ {
		d := udpDatagram(ipA, ipB, 1, 2, 64)
		k.At(time.Duration(i)*interval, func() { a.Send(d, macB) })
	}
	if err := k.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if !b.Locked() {
		t.Fatal("card did not lock")
	}
	delivered := 0
	b.SetDeliver(func(f *packet.Frame) { delivered++ })
	seg := &packet.TCPSegment{SrcPort: 33000, DstPort: 4747, Flags: packet.FlagSYN}
	d := packet.NewDatagram(serverIP, ipB, packet.ProtoTCP, 1, seg.Marshal(serverIP, ipB))
	a.Send(d, macB)
	if err := k.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Error("management traffic passed a wedged card")
	}
}

func TestSendRawFrameBypassesPolicy(t *testing.T) {
	k := sim.NewKernel()
	a, b := pair(t, k, EFW(), Standard())
	a.InstallRuleSet(fw.MustRuleSet(fw.Deny))
	delivered := 0
	b.SetDeliver(func(f *packet.Frame) { delivered++ })

	d := udpDatagram(ipA, ipB, 1, 2, 32)
	f := &packet.Frame{Dst: macB, Src: macA, Type: packet.EtherTypeIPv4, Payload: d.Marshal()}
	if !a.SendRawFrame(f) {
		t.Fatal("raw frame refused")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1 (raw injection skips egress policy)", delivered)
	}
}

func TestSendRawFrameHonorsLockup(t *testing.T) {
	k := sim.NewKernel()
	a, _ := pair(t, k, EFW(), Standard())
	a.locked = true
	f := &packet.Frame{Dst: macB, Src: macA, Type: packet.EtherTypeIPv4}
	if a.SendRawFrame(f) {
		t.Error("locked card transmitted a raw frame")
	}
}

func TestProfileCostShape(t *testing.T) {
	p := EFW()
	base := p.cost(0, 0)
	if base != p.BaseCost {
		t.Errorf("cost(0,0) = %v, want base %v", base, p.BaseCost)
	}
	if got, want := p.cost(64, 0), p.BaseCost+64*p.PerRuleCost; got != want {
		t.Errorf("cost(64,0) = %v, want %v", got, want)
	}
	adf := ADF()
	withCrypto := adf.cost(2, 1000)
	without := adf.cost(2, 0)
	if want := adf.CryptoPerPacket + 1000*adf.CryptoPerByte; withCrypto-without != want {
		t.Errorf("crypto increment = %v, want %v", withCrypto-without, want)
	}
}

func TestProfileCalibrationAnchors(t *testing.T) {
	// The documented calibration identities of DESIGN.md §4 must hold
	// for the shipped profiles (guards against accidental retuning).
	efw := EFW()
	x64 := efw.CapacityUnits / (2 * (efw.BaseCost + 64*efw.PerRuleCost))
	if x64 < 3500 || x64 > 4500 {
		t.Errorf("EFW x(64) = %.0f data pps, want ≈4000 (≈50 Mbps)", x64)
	}
	x16 := efw.CapacityUnits / (2 * (efw.BaseCost + 16*efw.PerRuleCost))
	if x16 < 8127 {
		t.Errorf("EFW x(16) = %.0f data pps, want ≥ wire rate 8127", x16)
	}
	dos1 := efw.CapacityUnits / (2 * (efw.BaseCost + 1))
	if dos1 < 11000 || dos1 > 14000 {
		t.Errorf("EFW 1-rule DoS anchor = %.0f pps, want ≈12,300", dos1)
	}
	adf := ADF()
	a64 := adf.CapacityUnits / (2 * (adf.BaseCost + 64*adf.PerRuleCost))
	if a64 < 2300 || a64 > 3100 {
		t.Errorf("ADF x(64) = %.0f data pps, want ≈2700 (≈33 Mbps)", a64)
	}
	if adf.CapacityUnits != efw.CapacityUnits {
		t.Error("EFW and ADF are the same hardware; budgets must match")
	}
	ng := NextGen()
	if ng.CapacityUnits < 8*efw.CapacityUnits {
		t.Error("NextGen must be an order of magnitude above the EFW")
	}
}

func TestStandardProfileIsWireSpeed(t *testing.T) {
	k := sim.NewKernel()
	p := NewProcessor(k, Standard().CapacityUnits, 0)
	for i := 0; i < 100000; i++ {
		if _, ok := p.Admit(1e9); !ok {
			t.Fatal("wire-speed processor rejected work")
		}
	}
	if p.Backlog() != 0 {
		t.Error("wire-speed processor accumulated backlog")
	}
}

func TestProcessorRingBound(t *testing.T) {
	k := sim.NewKernel()
	p := NewProcessor(k, 1000, 4)
	accepted := 0
	for i := 0; i < 10; i++ {
		if _, ok := p.Admit(10); ok {
			accepted++
		}
	}
	if accepted != 4 {
		t.Errorf("accepted %d, want ring size 4", accepted)
	}
	if p.Queued() != 4 {
		t.Errorf("Queued = %d, want 4", p.Queued())
	}
	if p.OverloadDrops() != 6 {
		t.Errorf("OverloadDrops = %d, want 6", p.OverloadDrops())
	}
	// After the queued work completes, the ring frees up.
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if p.Queued() != 0 {
		t.Errorf("Queued after drain = %d", p.Queued())
	}
	if _, ok := p.Admit(10); !ok {
		t.Error("drained ring rejected work")
	}
}

func TestProcessorReset(t *testing.T) {
	k := sim.NewKernel()
	p := NewProcessor(k, 100, 8)
	p.Admit(1000) // 10 seconds of work
	if p.Backlog() == 0 {
		t.Fatal("no backlog after admit")
	}
	p.Reset()
	if p.Backlog() != 0 || p.Queued() != 0 {
		t.Error("Reset did not clear the processor")
	}
}

func TestNICEndpointAccessor(t *testing.T) {
	k := sim.NewKernel()
	ea, _ := link.New(k, link.Config{})
	n := New(k, macA, Standard(), ea)
	if n.Endpoint() != ea {
		t.Error("Endpoint() does not return the attachment")
	}
}

// Property: the card's counters conserve — every frame addressed to the
// card is accounted for by exactly one disposition.
func TestNICAccountingConservation(t *testing.T) {
	k := sim.NewKernel(sim.WithSeed(99))
	a, b := pair(t, k, Standard(), EFW())
	rs, err := fw.DepthRuleSet(16, fw.Rule{
		Action: fw.Allow, Direction: fw.Both, Proto: packet.ProtoUDP, DstPorts: fw.Ports(1000, 2000),
	}, fw.Deny)
	if err != nil {
		t.Fatal(err)
	}
	b.InstallRuleSet(rs)
	delivered := 0
	b.SetDeliver(func(f *packet.Frame) { delivered++ })

	rng := k.Rand()
	const n = 5000
	interval := time.Second / time.Duration(n) / 4 // 4x overload
	for i := 0; i < n; i++ {
		dport := uint16(rng.Intn(4000))
		d := udpDatagram(ipA, ipB, 1, dport, rng.Intn(1200))
		k.At(time.Duration(i)*interval, func() { a.Send(d, macB) })
	}
	if err := k.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	accounted := st.RxAllowed + st.RxDenied + st.RxOverloadDrops + st.RxMalformed +
		st.RxLockedDrops + st.RxAuthFailures + st.RxReplayDrops + st.RxNoGroup
	if accounted != st.RxFrames {
		t.Errorf("accounting leak: frames=%d accounted=%d (%+v)", st.RxFrames, accounted, st)
	}
	if uint64(delivered) != st.RxAllowed {
		t.Errorf("delivered %d != RxAllowed %d", delivered, st.RxAllowed)
	}
	if st.RxOverloadDrops == 0 || st.RxDenied == 0 || st.RxAllowed == 0 {
		t.Errorf("test did not exercise all dispositions: %+v", st)
	}
}
