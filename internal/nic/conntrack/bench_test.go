package conntrack

import (
	"testing"
	"time"

	"barbican/internal/fw"
	"barbican/internal/packet"
)

// BenchmarkConntrack measures the table's three temperatures: the hit
// path (every packet of every established flow — must stay at 0
// allocs/op, it runs inside the card's noalloc ingress), the miss that
// classifies INVALID (the ACK-flood drop path, also alloc-free), and
// insert/evict churn per policy (the SYN-flood path; map bookkeeping
// amortizes but the steady state must not grow).
func BenchmarkConntrack(b *testing.B) {
	now := time.Second
	establish := func(tab *Table, src packet.IP, sport uint16) packet.Summary {
		syn := tcpPkt(src, ipS, sport, 80, packet.FlagSYN)
		tab.Classify(syn, now)
		tab.Commit(syn, now)
		synack := tcpPkt(ipS, src, 80, sport, packet.FlagSYN|packet.FlagACK)
		tab.Classify(synack, now)
		ack := tcpPkt(src, ipS, sport, 80, packet.FlagACK)
		tab.Classify(ack, now)
		return tcpPkt(src, ipS, sport, 80, packet.FlagACK|packet.FlagPSH)
	}

	b.Run("lookup-hit", func(b *testing.B) {
		tab := New(Config{Cap: 1024, Seed: 1})
		data := establish(tab, ipC, 40000)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if cs := tab.Classify(data, now); cs != fw.StateEstablished {
				b.Fatalf("classified %v", cs)
			}
		}
	})

	b.Run("lookup-miss-invalid", func(b *testing.B) {
		tab := New(Config{Cap: 1024, Seed: 1})
		ack := tcpPkt(ipC, ipS, 41000, 80, packet.FlagACK)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if cs := tab.Classify(ack, now); cs != fw.StateInvalid {
				b.Fatalf("classified %v", cs)
			}
		}
	})

	for _, policy := range []EvictPolicy{EvictLRU, EvictRandom, EvictSYNDrop} {
		b.Run("insert-churn/"+policy.String(), func(b *testing.B) {
			tab := New(Config{Cap: 1024, Policy: policy, Seed: 1})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := tcpPkt(packet.IP{10, byte(i >> 16), byte(i >> 8), byte(i)}, ipS,
					uint16(i%1024)+1, 80, packet.FlagSYN)
				if st := tab.Commit(s, now); st == CommitFull {
					b.Fatal("commit full")
				}
			}
			b.StopTimer()
			if tab.Len() > tab.Cap() {
				b.Fatalf("len %d exceeds cap", tab.Len())
			}
		})
	}
}
