package conntrack

import (
	"math/rand"
	"testing"
	"time"

	"barbican/internal/fw"
	"barbican/internal/packet"
)

var (
	ipC = packet.MustIP("10.0.0.1") // client / initiator
	ipS = packet.MustIP("10.0.0.2") // server / responder
)

func tcpPkt(src, dst packet.IP, sport, dport uint16, flags packet.TCPFlags) packet.Summary {
	return packet.Summary{
		Proto: packet.ProtoTCP, Src: src, Dst: dst,
		SrcPort: sport, DstPort: dport, HasPorts: true,
		Flags: flags, IPLen: 40,
	}
}

func udpPkt(src, dst packet.IP, sport, dport uint16) packet.Summary {
	return packet.Summary{
		Proto: packet.ProtoUDP, Src: src, Dst: dst,
		SrcPort: sport, DstPort: dport, HasPorts: true, IPLen: 36,
	}
}

func icmpPkt(src, dst packet.IP) packet.Summary {
	return packet.Summary{Proto: packet.ProtoICMP, Src: src, Dst: dst, IPLen: 28}
}

// step classifies one packet and commits it if the allow-all stateful
// policy would admit it (anything but INVALID), mirroring the NIC's
// two-phase classify/commit contract.
func step(t *testing.T, tab *Table, s packet.Summary, now time.Duration) fw.ConnState {
	t.Helper()
	cs := tab.Classify(s, now)
	if cs != fw.StateInvalid {
		tab.Commit(s, now)
	}
	return cs
}

func TestConntrackHandshakeLifecycle(t *testing.T) {
	tab := New(Config{Cap: 8, Seed: 1})
	now := time.Second
	syn := tcpPkt(ipC, ipS, 40000, 80, packet.FlagSYN)
	synack := tcpPkt(ipS, ipC, 80, 40000, packet.FlagSYN|packet.FlagACK)
	ack := tcpPkt(ipC, ipS, 40000, 80, packet.FlagACK)

	if cs := step(t, tab, syn, now); cs != fw.StateNew {
		t.Fatalf("SYN classified %v, want new", cs)
	}
	if cs := step(t, tab, synack, now); cs != fw.StateEstablished {
		t.Fatalf("SYN/ACK classified %v, want established", cs)
	}
	if cs := step(t, tab, ack, now); cs != fw.StateEstablished {
		t.Fatalf("handshake ACK classified %v, want established", cs)
	}
	info, ok := tab.Peek(ack, now)
	if !ok || info.TCP != TCPEstablished || !info.Assured {
		t.Fatalf("after handshake: info=%+v ok=%v, want established+assured", info, ok)
	}

	// Data flows both ways while established.
	data := tcpPkt(ipC, ipS, 40000, 80, packet.FlagACK|packet.FlagPSH)
	echo := tcpPkt(ipS, ipC, 80, 40000, packet.FlagACK|packet.FlagPSH)
	for i := 0; i < 3; i++ {
		now += 100 * time.Millisecond
		if cs := step(t, tab, data, now); cs != fw.StateEstablished {
			t.Fatalf("data classified %v", cs)
		}
		if cs := step(t, tab, echo, now); cs != fw.StateEstablished {
			t.Fatalf("echo classified %v", cs)
		}
	}

	// RST teardown: the entry closes; later data on the tuple is
	// INVALID, but a fresh SYN reuses it as a new connection.
	rst := tcpPkt(ipC, ipS, 40000, 80, packet.FlagRST)
	if cs := step(t, tab, rst, now); cs != fw.StateEstablished {
		t.Fatalf("RST classified %v (still part of the tracked flow)", cs)
	}
	if info, _ := tab.Peek(rst, now); info.TCP != TCPClosed {
		t.Fatalf("after RST: state %v, want closed", info.TCP)
	}
	if cs := step(t, tab, data, now); cs != fw.StateInvalid {
		t.Fatalf("post-RST data classified %v, want invalid", cs)
	}
	if cs := step(t, tab, syn, now); cs != fw.StateNew {
		t.Fatalf("post-RST SYN classified %v, want new (tuple reuse)", cs)
	}
}

func TestConntrackSimultaneousOpen(t *testing.T) {
	tab := New(Config{Cap: 8, Seed: 1})
	now := time.Second
	// Both sides SYN (crossed), then both SYN/ACK: RFC 793 simultaneous
	// open. No packet of the exchange may classify INVALID.
	seq := []packet.Summary{
		tcpPkt(ipC, ipS, 5000, 5001, packet.FlagSYN),
		tcpPkt(ipS, ipC, 5001, 5000, packet.FlagSYN),
		tcpPkt(ipC, ipS, 5000, 5001, packet.FlagSYN|packet.FlagACK),
		tcpPkt(ipS, ipC, 5001, 5000, packet.FlagSYN|packet.FlagACK),
		tcpPkt(ipC, ipS, 5000, 5001, packet.FlagACK|packet.FlagPSH),
	}
	for i, s := range seq {
		if cs := step(t, tab, s, now); cs == fw.StateInvalid {
			t.Fatalf("simultaneous-open packet %d classified invalid", i)
		}
	}
	if info, _ := tab.Peek(seq[4], now); info.TCP != TCPEstablished {
		t.Fatalf("after simultaneous open: %v, want established", info.TCP)
	}
}

func TestConntrackBareACKInvalid(t *testing.T) {
	tab := New(Config{Cap: 8, Seed: 1})
	ack := tcpPkt(ipC, ipS, 40000, 80, packet.FlagACK)
	if cs := tab.Classify(ack, time.Second); cs != fw.StateInvalid {
		t.Fatalf("bare ACK classified %v, want invalid", cs)
	}
	// Commit on a mid-stream packet must not create state either (the
	// fail-open NIC commits whatever it admits).
	if st := tab.Commit(ack, time.Second); st != CommitExisting {
		t.Fatalf("bare-ACK commit = %v, want existing (no-op)", st)
	}
	if tab.Len() != 0 {
		t.Fatalf("bare ACK created state: len=%d", tab.Len())
	}
}

func TestConntrackUDPPseudoState(t *testing.T) {
	tab := New(Config{Cap: 8, Seed: 1})
	now := time.Second
	q := udpPkt(ipC, ipS, 5353, 53)
	r := udpPkt(ipS, ipC, 53, 5353)
	if cs := step(t, tab, q, now); cs != fw.StateNew {
		t.Fatalf("UDP query classified %v", cs)
	}
	if cs := step(t, tab, r, now); cs != fw.StateEstablished {
		t.Fatalf("UDP reply classified %v, want established", cs)
	}
	if cs := step(t, tab, q, now); cs != fw.StateEstablished {
		t.Fatalf("replied UDP flow classified %v, want established", cs)
	}
	// Idle past the replied timeout, the flow starts over.
	later := now + DefaultTimeouts().UDPReplied + time.Second
	if cs := step(t, tab, q, later); cs != fw.StateNew {
		t.Fatalf("expired UDP flow classified %v, want new", cs)
	}
}

func TestConntrackICMPRelated(t *testing.T) {
	tab := New(Config{Cap: 8, Seed: 1})
	now := time.Second
	// With a TCP connection tracked between the peers, ICMP between the
	// same addresses classifies Related (errors about the connection).
	step(t, tab, tcpPkt(ipC, ipS, 40000, 80, packet.FlagSYN), now)
	if cs := tab.Classify(icmpPkt(ipS, ipC), now); cs != fw.StateRelated {
		t.Fatalf("ICMP beside tracked TCP classified %v, want related", cs)
	}
	// Without any tracked pair it is just a new ICMP flow.
	other := packet.MustIP("10.0.0.9")
	if cs := tab.Classify(icmpPkt(other, ipS), now); cs != fw.StateNew {
		t.Fatalf("lone ICMP classified %v, want new", cs)
	}
}

func TestConntrackLooseWindowPickup(t *testing.T) {
	tab := New(Config{Cap: 8, Seed: 1})
	now := time.Second
	ack := tcpPkt(ipC, ipS, 40000, 80, packet.FlagACK|packet.FlagPSH)
	if cs := tab.Classify(ack, now); cs != fw.StateInvalid {
		t.Fatalf("pre-window mid-stream packet classified %v", cs)
	}
	tab.EnterLooseWindow(now + time.Second)
	if cs := step(t, tab, ack, now); cs != fw.StateNew {
		t.Fatalf("in-window mid-stream packet classified %v, want new", cs)
	}
	// The adopted entry is established and assured immediately.
	if info, ok := tab.Peek(ack, now); !ok || info.TCP != TCPEstablished || !info.Assured {
		t.Fatalf("adopted entry: %+v ok=%v", info, ok)
	}
	// After the window closes, untracked mid-stream packets are
	// INVALID again.
	late := tcpPkt(ipC, ipS, 41000, 80, packet.FlagACK)
	if cs := tab.Classify(late, now+2*time.Second); cs != fw.StateInvalid {
		t.Fatalf("post-window mid-stream packet classified %v", cs)
	}
}

func TestConntrackEvictionPolicies(t *testing.T) {
	now := time.Second
	fill := func(tab *Table, n int) {
		for i := 0; i < n; i++ {
			s := tcpPkt(packet.IP{198, 18, 0, byte(i + 1)}, ipS, 1000, 80, packet.FlagSYN)
			step(t, tab, s, now)
			now += time.Millisecond
		}
	}
	assure := func(tab *Table, src packet.IP) packet.Summary {
		syn := tcpPkt(src, ipS, 2000, 80, packet.FlagSYN)
		step(t, tab, syn, now)
		step(t, tab, tcpPkt(ipS, src, 80, 2000, packet.FlagSYN|packet.FlagACK), now)
		step(t, tab, tcpPkt(src, ipS, 2000, 80, packet.FlagACK), now)
		return syn
	}

	t.Run("lru", func(t *testing.T) {
		tab := New(Config{Cap: 4, Policy: EvictLRU, Seed: 1})
		fill(tab, 4)
		if st := tab.Commit(tcpPkt(packet.IP{198, 19, 0, 1}, ipS, 1000, 80, packet.FlagSYN), now); st != CommitEvicted {
			t.Fatalf("full-table commit = %v, want evicted", st)
		}
		// The oldest embryonic entry (first filled) is the victim.
		gone := tcpPkt(packet.IP{198, 18, 0, 1}, ipS, 1000, 80, packet.FlagACK)
		if cs := tab.Classify(gone, now); cs != fw.StateInvalid {
			t.Fatalf("evicted flow classified %v, want invalid", cs)
		}
	})
	t.Run("syn-drop", func(t *testing.T) {
		tab := New(Config{Cap: 4, Policy: EvictSYNDrop, Seed: 1})
		session := assure(tab, ipC)
		fill(tab, 3)
		// Table full: 1 assured + 3 embryonic. New SYNs evict only
		// embryonic entries; the assured session is untouchable.
		for i := 0; i < 100; i++ {
			s := tcpPkt(packet.IP{198, 19, byte(i >> 8), byte(i)}, ipS, 1000, 80, packet.FlagSYN)
			if st := tab.Commit(s, now); st != CommitEvicted {
				t.Fatalf("flood commit %d = %v, want evicted", i, st)
			}
		}
		if cs := tab.Classify(tcpPkt(ipC, ipS, 2000, 80, packet.FlagACK), now); cs != fw.StateEstablished {
			t.Fatalf("assured session classified %v after flood, want established", cs)
		}
		_ = session
	})
	t.Run("syn-drop-full", func(t *testing.T) {
		tab := New(Config{Cap: 2, Policy: EvictSYNDrop, Seed: 1})
		assure(tab, ipC)
		assure(tab, packet.MustIP("10.0.0.3"))
		// Every entry assured: nothing evictable — the caller's fail
		// posture decides.
		if st := tab.Commit(tcpPkt(packet.IP{198, 19, 0, 1}, ipS, 1000, 80, packet.FlagSYN), now); st != CommitFull {
			t.Fatalf("all-assured commit = %v, want full", st)
		}
	})
	t.Run("random", func(t *testing.T) {
		tab := New(Config{Cap: 4, Policy: EvictRandom, Seed: 42})
		fill(tab, 4)
		for i := 0; i < 8; i++ {
			s := tcpPkt(packet.IP{198, 19, 0, byte(i + 1)}, ipS, 1000, 80, packet.FlagSYN)
			if st := tab.Commit(s, now); st != CommitEvicted {
				t.Fatalf("commit = %v, want evicted", st)
			}
		}
		if tab.Len() != 4 {
			t.Fatalf("len = %d, want 4", tab.Len())
		}
	})
}

func TestConntrackFlush(t *testing.T) {
	tab := New(Config{Cap: 8, Seed: 1})
	for i := 0; i < 5; i++ {
		step(t, tab, tcpPkt(packet.IP{198, 18, 0, byte(i + 1)}, ipS, 1000, 80, packet.FlagSYN), time.Second)
	}
	tab.Flush()
	if tab.Len() != 0 {
		t.Fatalf("len after flush = %d", tab.Len())
	}
	if tab.Stats().Flushes != 1 {
		t.Fatalf("flushes = %d", tab.Stats().Flushes)
	}
	// The table keeps working after a flush.
	if cs := tab.Classify(tcpPkt(ipC, ipS, 1, 2, packet.FlagSYN), time.Second); cs != fw.StateNew {
		t.Fatalf("post-flush SYN classified %v", cs)
	}
}

// traceEvent is one packet of a generated connection script with its
// expected classification.
type traceEvent struct {
	s    packet.Summary
	want fw.ConnState
	// anyTracked accepts either new or established (used where the
	// exact state depends on handshake progress, e.g. retransmits
	// during simultaneous open).
	anyTracked bool
}

// genScript builds one correct TCP exchange with seeded perturbations:
// retransmitted SYN, duplicated data segments, out-of-order data, RST
// vs FIN teardown, simultaneous open. Every emitted packet carries the
// classification a correct tracker must produce.
func genScript(r *rand.Rand, client, server packet.IP, sport, dport uint16) []traceEvent {
	var ev []traceEvent
	c2s := func(flags packet.TCPFlags) packet.Summary { return tcpPkt(client, server, sport, dport, flags) }
	s2c := func(flags packet.TCPFlags) packet.Summary { return tcpPkt(server, client, dport, sport, flags) }

	if r.Intn(8) == 0 {
		// Simultaneous open: crossed SYNs, then SYN/ACKs.
		ev = append(ev,
			traceEvent{s: c2s(packet.FlagSYN), want: fw.StateNew},
			traceEvent{s: s2c(packet.FlagSYN), want: fw.StateEstablished},
			traceEvent{s: c2s(packet.FlagSYN | packet.FlagACK), want: fw.StateEstablished},
			traceEvent{s: s2c(packet.FlagSYN | packet.FlagACK), want: fw.StateEstablished},
		)
	} else {
		ev = append(ev, traceEvent{s: c2s(packet.FlagSYN), want: fw.StateNew})
		if r.Intn(4) == 0 {
			// Retransmitted initial SYN: still the opener.
			ev = append(ev, traceEvent{s: c2s(packet.FlagSYN), want: fw.StateNew})
		}
		ev = append(ev,
			traceEvent{s: s2c(packet.FlagSYN | packet.FlagACK), want: fw.StateEstablished},
			traceEvent{s: c2s(packet.FlagACK), want: fw.StateEstablished},
		)
	}

	// Data phase: every segment (including duplicates and reorderings)
	// classifies established.
	n := 1 + r.Intn(6)
	var data []packet.Summary
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			data = append(data, c2s(packet.FlagACK|packet.FlagPSH))
		} else {
			data = append(data, s2c(packet.FlagACK|packet.FlagPSH))
		}
		if r.Intn(4) == 0 {
			data = append(data, data[len(data)-1]) // retransmit
		}
	}
	r.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] }) // out of order
	for _, d := range data {
		ev = append(ev, traceEvent{s: d, want: fw.StateEstablished})
	}

	if r.Intn(2) == 0 {
		// RST teardown: abrupt close, then the tuple is dead to
		// non-SYN traffic.
		ev = append(ev,
			traceEvent{s: c2s(packet.FlagRST), want: fw.StateEstablished},
			traceEvent{s: c2s(packet.FlagACK), want: fw.StateInvalid},
			traceEvent{s: s2c(packet.FlagACK | packet.FlagPSH), want: fw.StateInvalid},
		)
	} else {
		// FIN teardown both ways stays part of the tracked flow.
		ev = append(ev,
			traceEvent{s: c2s(packet.FlagFIN | packet.FlagACK), want: fw.StateEstablished},
			traceEvent{s: s2c(packet.FlagFIN | packet.FlagACK), want: fw.StateEstablished},
			traceEvent{s: c2s(packet.FlagACK), want: fw.StateEstablished},
		)
	}
	return ev
}

// TestConntrackTraceProperty: over an allow-all stateful policy, the
// tracker admits exactly what a correct TCP exchange implies — no
// packet of a well-formed trace (with retransmits, reordering,
// simultaneous open, either teardown) classifies INVALID except after
// an RST, and unsolicited mid-stream packets on foreign tuples always
// do. Connections interleave arbitrarily; the table is big enough that
// eviction never interferes.
func TestConntrackTraceProperty(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		tab := New(Config{Cap: 256, Seed: seed})
		now := time.Second

		// A pool of concurrent connection scripts, interleaved by
		// seeded choice: cross-connection reordering is the norm.
		type script struct {
			ev  []traceEvent
			pos int
		}
		var scripts []*script
		for i := 0; i < 8; i++ {
			client := packet.IP{10, 0, byte(i + 1), 1}
			scripts = append(scripts, &script{
				ev: genScript(r, client, ipS, uint16(30000+i), 80),
			})
		}
		live := len(scripts)
		for live > 0 {
			sc := scripts[r.Intn(len(scripts))]
			if sc.pos >= len(sc.ev) {
				continue
			}
			e := sc.ev[sc.pos]
			sc.pos++
			if sc.pos == len(sc.ev) {
				live--
			}
			now += time.Duration(r.Intn(5)) * time.Millisecond
			cs := step(t, tab, e.s, now)
			if e.anyTracked {
				if cs != fw.StateNew && cs != fw.StateEstablished {
					t.Fatalf("seed %d: %v classified %v, want tracked", seed, e.s, cs)
				}
				continue
			}
			if cs != e.want {
				t.Fatalf("seed %d: %v classified %v, want %v", seed, e.s, cs, e.want)
			}
		}

		// Unsolicited mid-stream packets on tuples no script used must
		// classify INVALID and leave no state behind.
		before := tab.Len()
		for i := 0; i < 20; i++ {
			s := tcpPkt(packet.IP{192, 0, 2, byte(i + 1)}, ipS, uint16(r.Intn(60000)+1), 80,
				packet.FlagACK)
			if cs := tab.Classify(s, now); cs != fw.StateInvalid {
				t.Fatalf("seed %d: foreign ACK classified %v", seed, cs)
			}
			tab.Commit(s, now)
		}
		if tab.Len() != before {
			t.Fatalf("seed %d: foreign ACKs grew the table %d -> %d", seed, before, tab.Len())
		}
	}
}

// TestConntrackTableBoundStress hammers a tiny table with a seeded mix
// of packet shapes and checks the hard bound and bookkeeping
// invariants hold throughout. Safe under -race -shuffle=on: the table
// is purely local state.
func TestConntrackTableBoundStress(t *testing.T) {
	for _, policy := range []EvictPolicy{EvictLRU, EvictRandom, EvictSYNDrop} {
		t.Run(policy.String(), func(t *testing.T) {
			tab := New(Config{Cap: 64, Policy: policy, Seed: 99})
			r := rand.New(rand.NewSource(7))
			now := time.Second
			flagChoices := []packet.TCPFlags{
				packet.FlagSYN,
				packet.FlagSYN | packet.FlagACK,
				packet.FlagACK,
				packet.FlagACK | packet.FlagPSH,
				packet.FlagFIN | packet.FlagACK,
				packet.FlagRST,
			}
			for i := 0; i < 20000; i++ {
				now += time.Duration(r.Intn(2000)) * time.Microsecond
				var s packet.Summary
				switch r.Intn(10) {
				case 0:
					s = udpPkt(packet.IP{10, 1, byte(r.Intn(4)), byte(r.Intn(64))}, ipS,
						uint16(r.Intn(1024)+1), 53)
				case 1:
					s = icmpPkt(packet.IP{10, 1, 0, byte(r.Intn(64))}, ipS)
				default:
					s = tcpPkt(packet.IP{10, 1, byte(r.Intn(4)), byte(r.Intn(64))}, ipS,
						uint16(r.Intn(512)+1), 80, flagChoices[r.Intn(len(flagChoices))])
				}
				cs := tab.Classify(s, now)
				if cs != fw.StateInvalid {
					tab.Commit(s, now)
				}
				if tab.Len() > tab.Cap() {
					t.Fatalf("iteration %d: len %d exceeds cap %d", i, tab.Len(), tab.Cap())
				}
			}
			st := tab.Stats()
			if st.Created == 0 || st.Lookups == 0 {
				t.Fatalf("stress ran without activity: %+v", st)
			}
			if policy != EvictSYNDrop && st.Evicted == 0 {
				t.Fatalf("%v stress never evicted: %+v", policy, st)
			}
			tab.Flush()
			if tab.Len() != 0 {
				t.Fatalf("flush left %d entries", tab.Len())
			}
		})
	}
}

func TestEvictPolicyRoundTrip(t *testing.T) {
	for p := EvictLRU; p < NumEvictPolicies; p++ {
		got, ok := ParseEvictPolicy(p.String())
		if !ok || got != p {
			t.Errorf("ParseEvictPolicy(%q) = %v, %v", p.String(), got, ok)
		}
	}
	if _, ok := ParseEvictPolicy("bogus"); ok {
		t.Error("ParseEvictPolicy accepted bogus")
	}
}

func TestTCPStateStrings(t *testing.T) {
	for s := TCPNone; s < NumTCPStates; s++ {
		if s.String() == "" {
			t.Errorf("TCPState %d has no name", int(s))
		}
	}
}
