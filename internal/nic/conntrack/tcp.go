package conntrack

import (
	"fmt"
	"time"

	"barbican/internal/packet"
)

// TCPState is the tracked connection's position in the RFC 793 state
// machine, collapsed to the granularity a firewall needs: both
// directions of the close sequence fold into FinWait/Closing, and both
// UDP and ICMP pseudo-connections use TCPNone.
type TCPState int

// Tracked states.
const (
	// TCPNone marks a non-TCP pseudo-connection (UDP or ICMP pair).
	TCPNone TCPState = iota
	// TCPSynSent: initial SYN seen, no reply yet (embryonic).
	TCPSynSent
	// TCPSynRecv: SYN/ACK reply (or simultaneous-open SYN) seen.
	TCPSynRecv
	// TCPEstablished: three-way handshake completed.
	TCPEstablished
	// TCPFinWait: first FIN seen.
	TCPFinWait
	// TCPClosing: both FINs seen, awaiting the final ACK.
	TCPClosing
	// TCPTimeWait: close sequence acknowledged; lingering entry.
	TCPTimeWait
	// TCPClosed: RST seen; packets for the entry are invalid until a
	// fresh SYN reuses the tuple.
	TCPClosed
	// NumTCPStates is the sentinel for exhaustive-switch checks.
	NumTCPStates
)

var tcpStateNames = [...]string{
	TCPNone:        "none",
	TCPSynSent:     "syn-sent",
	TCPSynRecv:     "syn-recv",
	TCPEstablished: "established",
	TCPFinWait:     "fin-wait",
	TCPClosing:     "closing",
	TCPTimeWait:    "time-wait",
	TCPClosed:      "closed",
}

// String names the state.
func (s TCPState) String() string {
	if s >= 0 && int(s) < len(tcpStateNames) {
		return tcpStateNames[s]
	}
	return fmt.Sprintf("tcpstate(%d)", int(s))
}

// Timeouts holds the per-state idle timeouts, on virtual time. An
// entry that has not seen a packet for its state's timeout is expired
// lazily on the next lookup or reaped when the table needs a slot.
type Timeouts struct {
	SynSent     time.Duration
	SynRecv     time.Duration
	Established time.Duration
	FinWait     time.Duration
	Closing     time.Duration
	TimeWait    time.Duration
	Closed      time.Duration
	UDPNew      time.Duration
	UDPReplied  time.Duration
	ICMP        time.Duration
}

// DefaultTimeouts returns the stock timeout profile: the netfilter
// shape (embryonic states short, established long) scaled to the
// simulator's seconds-long experiment horizon.
func DefaultTimeouts() Timeouts {
	return Timeouts{
		SynSent:     30 * time.Second,
		SynRecv:     15 * time.Second,
		Established: 600 * time.Second,
		FinWait:     30 * time.Second,
		Closing:     15 * time.Second,
		TimeWait:    30 * time.Second,
		Closed:      5 * time.Second,
		UDPNew:      10 * time.Second,
		UDPReplied:  60 * time.Second,
		ICMP:        10 * time.Second,
	}
}

// forEntry returns the idle timeout for an entry's current state.
func (tm *Timeouts) forEntry(e *entry) time.Duration {
	switch e.tcp {
	case TCPNone:
		if e.key.proto == packet.ProtoICMP {
			return tm.ICMP
		}
		if e.replied {
			return tm.UDPReplied
		}
		return tm.UDPNew
	case TCPSynSent:
		return tm.SynSent
	case TCPSynRecv:
		return tm.SynRecv
	case TCPEstablished:
		return tm.Established
	case TCPFinWait:
		return tm.FinWait
	case TCPClosing:
		return tm.Closing
	case TCPTimeWait:
		return tm.TimeWait
	case TCPClosed, NumTCPStates:
		return tm.Closed
	default:
		return tm.Closed
	}
}

// advanceTCP applies one TCP segment to an existing entry's state
// machine and reports whether the entry became assured (handshake
// completed) by this packet. fromInit is true when the segment travels
// in the direction the tracked connection was initiated.
//
//barbican:noalloc
func advanceTCP(e *entry, fromInit bool, flags packet.TCPFlags) (assuredNow bool) {
	if flags.Has(packet.FlagRST) {
		e.tcp = TCPClosed
		return false
	}
	syn := flags.Has(packet.FlagSYN)
	fin := flags.Has(packet.FlagFIN)
	ack := flags.Has(packet.FlagACK)
	switch {
	case syn && !ack:
		switch e.tcp {
		case TCPSynSent:
			if !fromInit {
				// Simultaneous open: both ends sent SYN.
				e.tcp = TCPSynRecv
			}
			// From the initiator it is a retransmit; no transition.
		case TCPNone, TCPSynRecv, TCPEstablished, TCPFinWait, TCPClosing,
			TCPTimeWait, TCPClosed, NumTCPStates:
			// A SYN against a live connection is ignored (the caller
			// classified it); tuple reuse after close is handled by
			// the table, which restarts the entry.
		}
	case syn && ack:
		switch e.tcp {
		case TCPSynSent:
			if !fromInit {
				e.tcp = TCPSynRecv
			}
		case TCPSynRecv:
			if fromInit {
				// Simultaneous open completes on the crossed SYN/ACK.
				e.tcp = TCPEstablished
				return true
			}
		case TCPNone, TCPEstablished, TCPFinWait, TCPClosing, TCPTimeWait,
			TCPClosed, NumTCPStates:
		}
	case fin:
		switch e.tcp {
		case TCPEstablished, TCPSynRecv:
			e.tcp = TCPFinWait
		case TCPFinWait:
			e.tcp = TCPClosing
		case TCPNone, TCPSynSent, TCPClosing, TCPTimeWait, TCPClosed, NumTCPStates:
		}
	case ack:
		switch e.tcp {
		case TCPSynRecv:
			if fromInit {
				e.tcp = TCPEstablished
				return true
			}
		case TCPClosing:
			e.tcp = TCPTimeWait
		case TCPNone, TCPSynSent, TCPEstablished, TCPFinWait, TCPTimeWait,
			TCPClosed, NumTCPStates:
		}
	}
	return false
}
