// Package conntrack implements the card's connection-tracking table:
// an RFC 793-shaped TCP state machine plus lightweight UDP/ICMP
// pseudo-state behind a hard-bounded, deterministically evicted entry
// store, all on virtual time.
//
// The table is split from verdict delivery the way netfilter splits
// conntrack from filter: Classify runs on every packet before rule
// evaluation and returns the fw.ConnState the rules match on
// (advancing the state machine of existing entries as a side effect),
// while Commit runs only after an Allow verdict and is the sole
// operation that creates entries — a denied SYN never occupies a slot.
//
// Bound and eviction are the package's reason to exist: the table
// holds at most Cap entries, each charged against the card's memory
// budget by the NIC profile, and when full the configured EvictPolicy
// decides deterministically (seeded, on virtual time) which entry dies
// — the difference between the three policies under SYN flood is one
// of the experiment families this repository measures.
package conntrack

import (
	"math/rand"
	"time"

	"barbican/internal/fw"
	"barbican/internal/packet"
)

// EvictPolicy selects the victim entry when the table is full.
type EvictPolicy int

// Eviction policies.
const (
	// EvictLRU removes the least recently used entry, embryonic or
	// assured alike.
	EvictLRU EvictPolicy = iota + 1
	// EvictRandom removes a uniformly chosen entry (seeded stream).
	EvictRandom
	// EvictSYNDrop removes only embryonic (not yet assured) entries —
	// the netfilter early_drop discipline. When every entry is
	// assured, the insert fails instead.
	EvictSYNDrop
	// NumEvictPolicies is the sentinel for exhaustive-switch checks.
	NumEvictPolicies
)

var evictPolicyNames = [...]string{
	EvictLRU:     "lru",
	EvictRandom:  "random",
	EvictSYNDrop: "syn-drop",
}

// String names the policy ("lru", "random", "syn-drop").
func (p EvictPolicy) String() string {
	if p > 0 && int(p) < len(evictPolicyNames) {
		return evictPolicyNames[p]
	}
	return "evict(?)"
}

// ParseEvictPolicy parses a policy name.
func ParseEvictPolicy(s string) (EvictPolicy, bool) {
	for p := EvictLRU; p < NumEvictPolicies; p++ {
		if evictPolicyNames[p] == s {
			return p, true
		}
	}
	return 0, false
}

// Key is the canonical connection tuple: the two endpoints ordered
// (lower address, then lower port, first) plus the IP protocol, so
// both directions of a connection hash to the same entry. ICMP pairs
// use zero ports.
type Key struct {
	loIP, hiIP     packet.IP
	loPort, hiPort uint16
	proto          packet.Protocol
}

// keyOf canonicalizes a summary's tuple.
//
//barbican:noalloc
func keyOf(s packet.Summary) Key {
	sp, dp := s.SrcPort, s.DstPort
	if s.Proto == packet.ProtoICMP || !s.HasPorts {
		sp, dp = 0, 0
	}
	su, du := s.Src.Uint32(), s.Dst.Uint32()
	if su < du || (su == du && sp <= dp) {
		return Key{loIP: s.Src, hiIP: s.Dst, loPort: sp, hiPort: dp, proto: s.Proto}
	}
	return Key{loIP: s.Dst, hiIP: s.Src, loPort: dp, hiPort: sp, proto: s.Proto}
}

// ipPair is the unordered address pair, for the ICMP-related index.
type ipPair struct{ lo, hi packet.IP }

func pairOf(k Key) ipPair { return ipPair{lo: k.loIP, hi: k.hiIP} }

// List identifiers for an entry's intrusive-list membership.
const (
	onNone = iota
	onEmbryonic
	onAssured
)

// entry is one tracked connection. Entries live in a fixed slab; the
// intrusive prev/next indices thread them onto exactly one of two LRU
// lists (embryonic or assured), least recently used at the head.
type entry struct {
	key       Key
	origSrc   packet.IP // initiator's address ...
	origSport uint16    // ... and source port, for direction semantics
	tcp       TCPState
	replied   bool // a packet in the reply direction has been seen
	assured   bool // handshake completed (TCP) or replied (UDP)
	inUse     bool
	list      uint8
	prev      int32
	next      int32
	created   time.Duration
	lastSeen  time.Duration
	expiresAt time.Duration
}

// lruList is an intrusive doubly linked list over the entry slab.
type lruList struct{ head, tail int32 }

// Stats are the table's monotonic counters.
type Stats struct {
	// Lookups counts Classify calls; Hits the ones that found a live
	// entry.
	Lookups, Hits uint64
	// Created counts entries inserted; Evicted those removed by the
	// eviction policy; Expired those removed by idle timeout; Full the
	// inserts that failed because no entry was evictable.
	Created, Evicted, Expired, Full uint64
	// Flushes counts whole-table flushes.
	Flushes uint64
}

// Config configures a table.
type Config struct {
	// Cap bounds the entry count; must be positive.
	Cap int
	// Policy selects the eviction discipline (default EvictLRU).
	Policy EvictPolicy
	// Seed feeds EvictRandom's private deterministic stream.
	Seed int64
	// Timeouts holds per-state idle timeouts; zero value means
	// DefaultTimeouts.
	Timeouts Timeouts
}

// Table is the bounded connection-tracking store. It is not safe for
// concurrent use; the NIC serializes access on the simulator's
// virtual-time event loop.
type Table struct {
	cap      int
	policy   EvictPolicy
	timeouts Timeouts
	rng      *rand.Rand

	idx       map[Key]int32
	entries   []entry
	freeList  []int32
	embryonic lruList
	assured   lruList
	pairCount map[ipPair]uint16 // live non-ICMP entries per address pair

	// looseUntil, when in the future, admits TCP packets with no entry
	// as New (and Commit re-establishes them directly): the recovery
	// resync window, the tcp_loose analog.
	looseUntil time.Duration

	stats Stats
}

// New builds an empty table.
func New(cfg Config) *Table {
	if cfg.Cap <= 0 {
		cfg.Cap = 1
	}
	if cfg.Policy == 0 {
		cfg.Policy = EvictLRU
	}
	if cfg.Timeouts == (Timeouts{}) {
		cfg.Timeouts = DefaultTimeouts()
	}
	t := &Table{
		cap:       cfg.Cap,
		policy:    cfg.Policy,
		timeouts:  cfg.Timeouts,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		idx:       make(map[Key]int32, cfg.Cap),
		entries:   make([]entry, cfg.Cap),
		freeList:  make([]int32, 0, cfg.Cap),
		pairCount: make(map[ipPair]uint16),
	}
	t.embryonic = lruList{head: -1, tail: -1}
	t.assured = lruList{head: -1, tail: -1}
	for i := cfg.Cap - 1; i >= 0; i-- {
		t.freeList = append(t.freeList, int32(i))
	}
	return t
}

// Len returns the live entry count (lazily expired entries included
// until touched or reaped).
func (t *Table) Len() int { return t.cap - len(t.freeList) }

// Cap returns the entry bound.
func (t *Table) Cap() int { return t.cap }

// Policy returns the eviction policy.
func (t *Table) Policy() EvictPolicy { return t.policy }

// Stats returns the counters.
func (t *Table) Stats() Stats { return t.stats }

// list returns the list an entry belongs on.
func (t *Table) listOf(e *entry) *lruList {
	if e.list == onAssured {
		return &t.assured
	}
	return &t.embryonic
}

// unlink removes entry i from its list.
//
//barbican:noalloc
func (t *Table) unlink(i int32) {
	e := &t.entries[i]
	l := t.listOf(e)
	if e.prev >= 0 {
		t.entries[e.prev].next = e.next
	} else {
		l.head = e.next
	}
	if e.next >= 0 {
		t.entries[e.next].prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next, e.list = -1, -1, onNone
}

// pushTail appends entry i to a list's most-recently-used end.
//
//barbican:noalloc
func (t *Table) pushTail(l *lruList, i int32, list uint8) {
	e := &t.entries[i]
	e.list = list
	e.prev = l.tail
	e.next = -1
	if l.tail >= 0 {
		t.entries[l.tail].next = i
	} else {
		l.head = i
	}
	l.tail = i
}

// touch refreshes an entry's recency and idle deadline after a packet.
//
//barbican:noalloc
func (t *Table) touch(i int32, now time.Duration) {
	e := &t.entries[i]
	e.lastSeen = now
	e.expiresAt = now + t.timeouts.forEntry(e)
	list := uint8(onEmbryonic)
	l := &t.embryonic
	if e.assured {
		list, l = onAssured, &t.assured
	}
	t.unlink(i)
	t.pushTail(l, i, list)
}

// remove frees entry i.
func (t *Table) remove(i int32) {
	e := &t.entries[i]
	t.unlink(i)
	delete(t.idx, e.key)
	if e.key.proto != packet.ProtoICMP {
		p := pairOf(e.key)
		if c := t.pairCount[p]; c <= 1 {
			delete(t.pairCount, p)
		} else {
			t.pairCount[p] = c - 1
		}
	}
	*e = entry{}
	t.freeList = append(t.freeList, i)
}

// Flush removes every entry: the state a card reset or an explicit
// RecoveryFlush leaves behind.
func (t *Table) Flush() {
	for i := range t.entries {
		if t.entries[i].inUse {
			t.remove(int32(i))
		}
	}
	t.stats.Flushes++
}

// EnterLooseWindow opens the recovery resync window: until the given
// virtual time, TCP packets with no entry classify as New instead of
// Invalid, and Commit re-establishes them as assured entries directly
// — how a recovered card re-adopts connections that lived through an
// outage it did not track.
func (t *Table) EnterLooseWindow(until time.Duration) {
	if until > t.looseUntil {
		t.looseUntil = until
	}
}

// InLooseWindow reports whether the resync window is open at now.
func (t *Table) InLooseWindow(now time.Duration) bool { return now < t.looseUntil }

// expired reports whether entry i is past its idle deadline.
func (t *Table) expiredAt(i int32, now time.Duration) bool {
	return t.entries[i].expiresAt <= now
}

// lookupLive finds the live entry for a key, lazily expiring a dead
// one.
//
//barbican:noalloc
func (t *Table) lookupLive(k Key, now time.Duration) (int32, bool) {
	i, ok := t.idx[k]
	if !ok {
		return -1, false
	}
	if t.expiredAt(i, now) {
		t.stats.Expired++
		t.remove(i)
		return -1, false
	}
	return i, true
}

// Classify looks the packet's connection up and returns the
// fw.ConnState its rules should match on, advancing the tracked state
// machine for packets that belong to an existing entry. It never
// creates entries — that is Commit's job, after the verdict.
//
//barbican:noalloc
func (t *Table) Classify(s packet.Summary, now time.Duration) fw.ConnState {
	t.stats.Lookups++
	k := keyOf(s)
	i, ok := t.lookupLive(k, now)
	if !ok {
		return t.classifyNoEntry(s, k, now)
	}
	t.stats.Hits++
	e := &t.entries[i]
	fromInit := s.Src == e.origSrc && (s.SrcPort == e.origSport || !s.HasPorts)
	if !fromInit && !e.replied {
		e.replied = true
		if e.tcp == TCPNone {
			// UDP (or ICMP pair) sees its first reply: assured.
			e.assured = true
		}
	}
	switch e.tcp {
	case TCPNone:
		// UDP/ICMP pseudo-state: established once replied.
		cs := fw.StateNew
		if e.replied {
			cs = fw.StateEstablished
		}
		t.touch(i, now)
		return cs
	case TCPClosed:
		if s.Flags.Has(packet.FlagSYN) && !s.Flags.Has(packet.FlagACK) &&
			!s.Flags.Has(packet.FlagRST) {
			// Tuple reuse after close: restart as a fresh connection.
			t.restart(i, s, now)
			return fw.StateNew
		}
		t.touch(i, now)
		return fw.StateInvalid
	case TCPTimeWait:
		if s.Flags.Has(packet.FlagSYN) && !s.Flags.Has(packet.FlagACK) &&
			!s.Flags.Has(packet.FlagRST) {
			t.restart(i, s, now)
			return fw.StateNew
		}
	case TCPSynSent:
		if fromInit && s.Flags.Has(packet.FlagSYN) && !s.Flags.Has(packet.FlagACK) {
			// Retransmitted initial SYN: still the connection opener.
			t.touch(i, now)
			return fw.StateNew
		}
	case TCPSynRecv, TCPEstablished, TCPFinWait, TCPClosing, NumTCPStates:
	}
	if advanceTCP(e, fromInit, s.Flags) {
		e.assured = true
	}
	t.touch(i, now)
	return fw.StateEstablished
}

// classifyNoEntry decides the state of a packet with no table entry.
//
//barbican:noalloc
func (t *Table) classifyNoEntry(s packet.Summary, k Key, now time.Duration) fw.ConnState {
	switch s.Proto {
	case packet.ProtoTCP:
		if s.Flags.Has(packet.FlagSYN) && !s.Flags.Has(packet.FlagACK) &&
			!s.Flags.Has(packet.FlagRST) {
			return fw.StateNew
		}
		if t.InLooseWindow(now) {
			// Resync window: mid-stream packets of untracked
			// connections are picked up instead of dropped.
			return fw.StateNew
		}
		return fw.StateInvalid
	case packet.ProtoICMP:
		if t.pairCount[pairOf(k)] > 0 {
			return fw.StateRelated
		}
		return fw.StateNew
	default:
		return fw.StateNew
	}
}

// restart rewinds a Closed/TimeWait entry for tuple reuse: the packet
// is a fresh SYN from whichever side sent it.
func (t *Table) restart(i int32, s packet.Summary, now time.Duration) {
	e := &t.entries[i]
	e.origSrc, e.origSport = s.Src, s.SrcPort
	e.tcp = TCPSynSent
	e.replied, e.assured = false, false
	e.created = now
	t.touch(i, now)
}

// CommitStatus reports what Commit did.
type CommitStatus int

// Commit outcomes.
const (
	// CommitExisting: the packet already had a (or needs no) entry.
	CommitExisting CommitStatus = iota + 1
	// CommitCreated: a new entry was inserted into a free slot.
	CommitCreated
	// CommitEvicted: a new entry was inserted after evicting a victim.
	CommitEvicted
	// CommitFull: no entry was insertable (SYN-drop policy with every
	// entry assured); the caller applies its fail posture.
	CommitFull
	// NumCommitStatuses is the sentinel for exhaustive-switch checks.
	NumCommitStatuses
)

// Commit records the connection an *allowed* packet starts, creating
// its entry (evicting per policy when the table is full). Packets
// whose connection is already tracked, and Related packets, are
// no-ops.
func (t *Table) Commit(s packet.Summary, now time.Duration) CommitStatus {
	k := keyOf(s)
	if _, ok := t.lookupLive(k, now); ok {
		return CommitExisting
	}
	st := TCPNone
	if s.Proto == packet.ProtoTCP {
		if !s.Flags.Has(packet.FlagSYN) || s.Flags.Has(packet.FlagACK) ||
			s.Flags.Has(packet.FlagRST) {
			if !t.InLooseWindow(now) {
				// Only an initial SYN opens a tracked TCP connection
				// (mid-stream pickup happens only while resyncing).
				return CommitExisting
			}
		} else {
			st = TCPSynSent
		}
	} else if s.Proto == packet.ProtoICMP && t.pairCount[pairOf(k)] > 0 {
		// Related ICMP rides on the connection it refers to.
		return CommitExisting
	}

	i, ok := t.slot(now)
	status := CommitCreated
	if !ok {
		i, ok = t.evict(now)
		if !ok {
			t.stats.Full++
			return CommitFull
		}
		status = CommitEvicted
	}
	e := &t.entries[i]
	e.key = k
	e.origSrc, e.origSport = s.Src, s.SrcPort
	e.tcp = st
	e.inUse = true
	e.created = now
	if s.Proto == packet.ProtoTCP && st == TCPNone {
		// Loose-window pickup: adopt the connection as established
		// and assured immediately.
		e.tcp = TCPEstablished
		e.replied, e.assured = true, true
	}
	t.idx[k] = i
	if k.proto != packet.ProtoICMP {
		t.pairCount[pairOf(k)]++
	}
	list, l := uint8(onEmbryonic), &t.embryonic
	if e.assured {
		list, l = onAssured, &t.assured
	}
	e.lastSeen = now
	e.expiresAt = now + t.timeouts.forEntry(e)
	t.pushTail(l, i, list)
	t.stats.Created++
	return status
}

// slot returns a free slot, reaping one expired list head if needed.
func (t *Table) slot(now time.Duration) (int32, bool) {
	if n := len(t.freeList); n > 0 {
		i := t.freeList[n-1]
		t.freeList = t.freeList[:n-1]
		return i, true
	}
	// Lists are recency-ordered, so the heads are the entries most
	// likely to have idled out; reap one rather than evicting a live
	// connection.
	for _, l := range [2]*lruList{&t.embryonic, &t.assured} {
		if l.head >= 0 && t.expiredAt(l.head, now) {
			t.stats.Expired++
			t.remove(l.head)
			n := len(t.freeList)
			i := t.freeList[n-1]
			t.freeList = t.freeList[:n-1]
			return i, true
		}
	}
	return -1, false
}

// evict frees a slot per the configured policy and returns it.
func (t *Table) evict(now time.Duration) (int32, bool) {
	var victim int32 = -1
	switch t.policy {
	case EvictLRU:
		// Global LRU across both lists: the older of the two heads.
		victim = t.embryonic.head
		if a := t.assured.head; a >= 0 &&
			(victim < 0 || t.entries[a].lastSeen < t.entries[victim].lastSeen) {
			victim = a
		}
	case EvictRandom:
		// The table is full, so any slot is a victim; one seeded draw.
		victim = int32(t.rng.Intn(t.cap))
	case EvictSYNDrop:
		// Only embryonic entries are expendable: a flood of half-open
		// connections can never displace an assured one.
		victim = t.embryonic.head
	case NumEvictPolicies:
	}
	if victim < 0 || !t.entries[victim].inUse {
		return -1, false
	}
	t.stats.Evicted++
	t.remove(victim)
	n := len(t.freeList)
	i := t.freeList[n-1]
	t.freeList = t.freeList[:n-1]
	return i, true
}

// PeekInfo is a read-only view of a tracked connection, for explain
// tooling.
type PeekInfo struct {
	// TCP is the tracked state (TCPNone for UDP/ICMP pseudo-state).
	TCP TCPState
	// Age is how long the entry has existed.
	Age time.Duration
	// IdleFor is the time since the last packet.
	IdleFor time.Duration
	// Replied and Assured mirror the entry flags.
	Replied, Assured bool
	// FromInitiator reports whether the peeked packet travels in the
	// connection's original direction.
	FromInitiator bool
}

// Peek returns the tracked connection a packet would consult, without
// mutating anything (no expiry, no transitions, no counters).
func (t *Table) Peek(s packet.Summary, now time.Duration) (PeekInfo, bool) {
	i, ok := t.idx[keyOf(s)]
	if !ok || t.expiredAt(i, now) {
		return PeekInfo{}, false
	}
	e := &t.entries[i]
	return PeekInfo{
		TCP:           e.tcp,
		Age:           now - e.created,
		IdleFor:       now - e.lastSeen,
		Replied:       e.replied,
		Assured:       e.assured,
		FromInitiator: s.Src == e.origSrc && (s.SrcPort == e.origSport || !s.HasPorts),
	}, true
}
