package nic

import (
	"fmt"
	"time"

	"barbican/internal/fw"
	"barbican/internal/link"
	"barbican/internal/nic/conntrack"
	"barbican/internal/obs/profile"
	"barbican/internal/obs/tracing"
	"barbican/internal/packet"
	"barbican/internal/sim"
	"barbican/internal/vpg"
)

// Stats counts per-card activity.
type Stats struct {
	RxFrames        uint64 // frames addressed to this card
	RxAllowed       uint64
	RxDenied        uint64
	RxOverloadDrops uint64 // saturated processor
	RxAuthFailures  uint64 // VPG open failures (tamper, non-member, wrong key)
	RxReplayDrops   uint64
	RxNoGroup       uint64 // sealed traffic for a group the card lacks
	RxMalformed     uint64
	RxLockedDrops   uint64

	TxRequests      uint64
	TxAllowed       uint64
	TxDenied        uint64
	TxOverloadDrops uint64
	TxOversize      uint64
	TxNoGroup       uint64
	TxLockedDrops   uint64

	Sealed  uint64
	Opened  uint64
	Lockups uint64

	// Degraded-mode machine activity (all zero while FailModeNone).
	DegradedEntries uint64 // transitions into StateDegraded
	WatchdogResets  uint64 // automatic recoveries to the committed rule set
	UpdatesAborted  uint64 // policy updates declared interrupted
	RxDegradedDrops uint64 // ingress frames dropped fail-closed
	TxDegradedDrops uint64 // egress frames dropped fail-closed
	DegradedPass    uint64 // frames passed unfiltered fail-open

	// Conntrack activity (all zero on stateless profiles/policies).
	RxNoStateDrops     uint64 // ingress ctstate-INVALID drops
	TxNoStateDrops     uint64 // egress ctstate-INVALID drops
	RxStateFullDrops   uint64 // ingress drops: table full, posture closed
	TxStateFullDrops   uint64 // egress drops: table full, posture closed
	StateUntrackedPass uint64 // table full, FailModeOpen: admitted untracked
}

type replayKey struct {
	group  string
	sender packet.IP
}

// NIC is a simulated network interface card, optionally enforcing a
// firewall policy on its embedded processor.
type NIC struct {
	kernel  *sim.Kernel
	mac     packet.MAC
	profile Profile
	proc    *Processor
	ep      *link.Endpoint
	deliver func(*packet.Frame)

	rules   *fw.RuleSet
	groups  map[string]*vpg.Group
	sealers map[string]*vpg.Sealer
	replay  map[replayKey]*vpg.ReplayWindow

	// Fast-path machinery for CompiledMatch/FlowCacheSize profiles:
	// compiled is the depth-independent matcher for the current rules
	// (nil on linear profiles or without policy), fcache the per-flow
	// verdict cache (nil when the profile has none). Both are kept in
	// sync with rules by setRules — never assign n.rules directly.
	compiled *fw.CompiledSet
	fcache   *flowCache

	// ct is the connection-tracking table (nil on stateless profiles),
	// consulted whenever the installed policy carries state matchers.
	// Assigned only through setConntrack — cached flow verdicts embed
	// the classifications the current table produced, so a table swap
	// must invalidate the cache with it. stateRecovery decides what
	// happens to tracked state when enforcement returns after a
	// degraded episode (see degraded.go).
	ct            *conntrack.Table
	stateRecovery StateRecovery

	locked      bool
	winStart    time.Duration
	deniedInWin int
	ipID        uint16

	// Degraded-mode state machine (see degraded.go). failMode's zero
	// value FailModeNone keeps the machine fully disarmed.
	failMode        FailMode
	degState        DegradedState
	lastCommitted   *fw.RuleSet
	overloadDegrade bool
	updateEv        *sim.Event
	recoverEv       *sim.Event

	// Precomputed hot-path callbacks and the pending-ingress freelist:
	// together with the kernel's pooled events they make the steady-state
	// per-packet paths allocation-free.
	txFn        func(any)
	finishFn    func(any)
	ingressFree []*pendingIngress

	mgmtPeer packet.IP
	mgmtPort uint16

	stats Stats

	// Always-on per-reason drop counters (one array index increment
	// per drop; see internal/obs/tracing.DropReason) and the optional
	// packet-lifecycle tracer (nil = disabled, the hot-path cost is a
	// nil check).
	rxDrops [tracing.NumDropReasons]uint64
	txDrops [tracing.NumDropReasons]uint64
	tracer  *tracing.Tracer

	// Optional cost-domain profiler (nil = disabled, hot-path cost is
	// a nil check). Recording happens on every successful processor
	// admission, so the profiler's unit totals reconcile exactly with
	// the processor's UnitsDone.
	prof *profile.CardProfiler
}

// New creates a card with the given hardware profile, attached to one end
// of a link. Frames arriving on the link flow through the card's ingress
// path; the host receives surviving frames via the handler registered
// with SetDeliver.
func New(k *sim.Kernel, mac packet.MAC, profile Profile, ep *link.Endpoint) *NIC {
	n := &NIC{
		kernel:  k,
		mac:     mac,
		profile: profile,
		proc:    NewProcessor(k, profile.CapacityUnits, profile.MaxQueue),
		ep:      ep,
		groups:  make(map[string]*vpg.Group),
		sealers: make(map[string]*vpg.Sealer),
		replay:  make(map[replayKey]*vpg.ReplayWindow),
		fcache:  newFlowCache(profile.FlowCacheSize),
	}
	n.txFn = func(x any) {
		if !n.locked {
			n.ep.Send(x.(*packet.Frame))
		}
	}
	n.finishFn = n.finishPending
	if profile.ConntrackEntries > 0 {
		// The eviction stream's seed comes from the kernel's seeded
		// RNG, so a run is reproducible from the experiment seed alone.
		n.setConntrack(conntrack.New(conntrack.Config{
			Cap:    profile.ConntrackEntries,
			Policy: profile.ConntrackEvict,
			Seed:   k.Rand().Int63(),
		}))
	}
	ep.Attach(n.handleFrame)
	return n
}

// pendingIngress carries one admitted ingress frame from policy
// evaluation to processor completion. Instances are recycled through
// the card's freelist.
type pendingIngress struct {
	f       *packet.Frame
	s       packet.Summary
	verdict fw.Verdict
}

// finishPending unwraps a recycled pendingIngress and completes the
// admitted frame. On the per-packet hot path (BenchmarkRxPath).
//
//barbican:noalloc
func (n *NIC) finishPending(x any) {
	pi := x.(*pendingIngress)
	f, s, verdict := pi.f, pi.s, pi.verdict
	pi.f, pi.verdict = nil, fw.Verdict{}
	n.ingressFree = append(n.ingressFree, pi)
	n.finishIngress(f, s, verdict)
}

// MAC returns the card's hardware address.
func (n *NIC) MAC() packet.MAC { return n.mac }

// Endpoint returns the card's link attachment, e.g. for passive taps
// (see internal/trace).
func (n *NIC) Endpoint() *link.Endpoint { return n.ep }

// Profile returns the card's hardware profile.
func (n *NIC) Profile() Profile { return n.profile }

// Stats returns a snapshot of the card's counters.
func (n *NIC) Stats() Stats { return n.stats }

// Backlog returns the embedded processor's queued work, expressed as
// the time it will take to drain at current capacity. The card enters
// degraded mode when this crosses cpuExhaustedBacklog.
func (n *NIC) Backlog() time.Duration { return n.proc.Backlog() }

// QueueDepth returns the processor's descriptor-ring occupancy.
func (n *NIC) QueueDepth() int { return n.proc.Queued() }

// SetTracer attaches (or with nil detaches) a packet-lifecycle
// tracer. The card samples egress packets (Send/SendRawFrame) and
// records spans for frames whose TraceID is already set.
func (n *NIC) SetTracer(tr *tracing.Tracer) { n.tracer = tr }

// SetProfiler attaches (or with nil detaches) a cost-domain profiler.
// The card fills in its device parameters and a lazy rule-label hook
// that reads whatever policy is installed at export time.
func (n *NIC) SetProfiler(cp *profile.CardProfiler) {
	n.prof = cp
	if cp == nil {
		return
	}
	cp.Device = n.profile.Name
	cp.PerRule = n.profile.PerRuleCost
	cp.RuleText = func(i int) string {
		if n.rules == nil || i < 1 || i > n.rules.Len() {
			return ""
		}
		return n.rules.Rule(i).String()
	}
}

// Profiler returns the attached cost-domain profiler (nil when
// profiling is off).
func (n *NIC) Profiler() *profile.CardProfiler { return n.prof }

// DropCounts returns the per-reason ingress and egress drop counters,
// indexed by tracing.DropReason.
func (n *NIC) DropCounts() (rx, tx [tracing.NumDropReasons]uint64) {
	return n.rxDrops, n.txDrops
}

// TotalDrops sums every per-reason drop counter, both directions.
func (n *NIC) TotalDrops() uint64 {
	var total uint64
	for r := range n.rxDrops {
		total += n.rxDrops[r] + n.txDrops[r]
	}
	return total
}

// cpuExhaustedBacklog separates the two overload drop reasons: when
// the embedded processor has at least this much queued work at the
// moment the descriptor ring rejects a packet, the card is saturated
// (cpu-exhausted, the paper's flood-collapse regime); below it the
// ring filled transiently (queue-overflow burst).
const cpuExhaustedBacklog = time.Millisecond

// overloadReason classifies a processor admission rejection.
func (n *NIC) overloadReason() tracing.DropReason {
	if n.proc.Backlog() >= cpuExhaustedBacklog {
		return tracing.DropCPUExhausted
	}
	return tracing.DropQueueOverflow
}

// SetDeliver registers the host-side receive handler.
func (n *NIC) SetDeliver(fn func(*packet.Frame)) { n.deliver = fn }

// InstallRuleSet installs (or, with nil, removes) the enforced policy.
// In the real systems this is done by the firewall agent on behalf of the
// central policy server. A direct install is a committed policy: it is
// what a degraded card's watchdog reset restores.
func (n *NIC) InstallRuleSet(rs *fw.RuleSet) {
	n.setRules(rs)
	n.lastCommitted = rs
}

// setRules makes rs the active enforced policy. Every assignment of the
// active rule set funnels through here so the compiled matcher stays in
// sync and the flow cache never serves a verdict produced under a
// previous policy: any policy change — commit, degraded-mode
// enforcement swap, watchdog restore — invalidates the whole cache.
func (n *NIC) setRules(rs *fw.RuleSet) {
	n.rules = rs
	switch {
	case rs == nil:
		n.compiled = nil
	case n.profile.CompiledMatch:
		// Recompile only on an actual rule-set change; the watchdog
		// restoring the already-compiled committed policy reuses it.
		if n.compiled == nil || n.compiled.RuleSet() != rs {
			n.compiled = fw.Compile(rs)
		}
	}
	n.invalidateFlowCache()
}

// invalidateFlowCache drops every cached flow verdict (no-op without a
// cache). Called on policy changes and degraded-mode transitions.
func (n *NIC) invalidateFlowCache() {
	if n.fcache != nil {
		n.fcache.invalidate()
	}
}

// FlowCacheStats returns a snapshot of the per-flow verdict cache's
// counters (all zero when the profile has no cache).
func (n *NIC) FlowCacheStats() FlowCacheStats {
	if n.fcache == nil {
		return FlowCacheStats{}
	}
	return n.fcache.stats()
}

// setConntrack makes t the card's connection-tracking table. Every
// assignment of the table funnels through here so the swap invalidates
// the flow cache with it: cached verdicts are keyed by the conn-state
// classification the old table produced, and a different table (or
// none) can classify the same flow differently.
func (n *NIC) setConntrack(t *conntrack.Table) {
	n.ct = t
	n.invalidateFlowCache()
}

// Conntrack returns the card's connection-tracking table (nil on
// stateless profiles). Callers may read stats or Peek; mutating it
// outside the ingress/egress paths voids determinism.
func (n *NIC) Conntrack() *conntrack.Table { return n.ct }

// ConntrackStats returns a snapshot of the state table's counters
// (zero when the profile has no table).
func (n *NIC) ConntrackStats() conntrack.Stats {
	if n.ct == nil {
		return conntrack.Stats{}
	}
	return n.ct.Stats()
}

// classifyConn runs the conntrack classification for a policy-subject
// packet, returning the state its rules match on plus the lookup cost.
// Stateless profiles, stateless policies, and sealed envelopes (whose
// transport header the card cannot see) skip the table entirely —
// StateNone, zero cost, byte-identical to the pre-conntrack card.
//
//barbican:noalloc
func (n *NIC) classifyConn(s packet.Summary) (fw.ConnState, float64) {
	if n.ct == nil || s.Sealed || !n.rules.Stateful() {
		return fw.StateNone, 0
	}
	return n.ct.Classify(s, n.kernel.Now()), n.profile.ConntrackLookupCost
}

// commitConn records an allowed new connection in the state table and
// returns the insert cost plus whether the packet must instead be
// dropped because the table is full and the card's posture forbids
// admitting untracked connections (FailModeOpen admits them, counted).
//
//barbican:noalloc
func (n *NIC) commitConn(s packet.Summary, cs fw.ConnState) (cost float64, fullDrop bool) {
	if cs == fw.StateNone {
		return 0, false
	}
	switch n.ct.Commit(s, n.kernel.Now()) {
	case conntrack.CommitCreated, conntrack.CommitEvicted:
		return n.profile.ConntrackInsertCost, false
	case conntrack.CommitFull:
		if n.failMode == FailModeOpen {
			n.stats.StateUntrackedPass++
			return n.profile.ConntrackInsertCost, false
		}
		return n.profile.ConntrackInsertCost, true
	case conntrack.CommitExisting, conntrack.NumCommitStatuses:
	}
	return 0, false
}

// evalPolicy produces the verdict for a policy-subject packet whose
// conntrack classification is cs (StateNone on the stateless path): the
// flow cache first, then the compiled matcher when the profile has one,
// otherwise the linear reference walk. A cache hit replays the
// remembered verdict and applies the same counter updates the walk
// would (fw.RuleSet.Record), so per-rule hit metrics and attribution
// stay exact. Callers guarantee n.rules != nil.
//
//barbican:noalloc
func (n *NIC) evalPolicy(s packet.Summary, dir fw.Direction, cs fw.ConnState) (fw.Verdict, MatchPath) {
	if n.fcache != nil {
		if v, ok := n.fcache.lookup(s, dir, cs); ok {
			n.rules.Record(v)
			return v, MatchCacheHit
		}
	}
	var v fw.Verdict
	if n.compiled != nil {
		v = n.compiled.EvalState(s, dir, cs)
	} else {
		v = n.rules.EvalState(s, dir, cs)
	}
	if n.fcache != nil {
		n.fcache.insert(s, dir, cs, v)
	}
	return v, MatchWalk
}

// RuleSet returns the enforced policy (nil when unfiltered).
func (n *NIC) RuleSet() *fw.RuleSet { return n.rules }

// InstallGroup provisions a VPG on the card for the given local member
// address, enabling it to seal outbound and open inbound group traffic.
func (n *NIC) InstallGroup(g *vpg.Group, local packet.IP) error {
	s, err := vpg.NewSealer(g, local)
	if err != nil {
		return fmt.Errorf("nic: install group %q: %w", g.Name(), err)
	}
	n.groups[g.Name()] = g
	n.sealers[g.Name()] = s
	return nil
}

// SealOverhead returns the worst-case bytes sealing adds to a transport
// segment across the card's installed groups. Host stacks shrink their
// MSS by this amount so sealed frames still fit the MTU.
func (n *NIC) SealOverhead() int {
	max := 0
	for name := range n.groups {
		if o := vpg.Overhead(len(name)); o > max {
			max = o
		}
	}
	return max
}

// SetManagementBypass exempts the firewall-agent control channel from
// policy evaluation: TCP traffic exchanged with peer on the given local
// port bypasses the rule set, mirroring the EFW/ADF's protected policy-
// server channel (a freshly pushed deny-all must not sever the agent).
// The bypass does not survive a lockup: a wedged card passes nothing.
func (n *NIC) SetManagementBypass(peer packet.IP, port uint16) {
	n.mgmtPeer = peer
	n.mgmtPort = port
}

// isManagement reports whether a summary matches the control channel.
func (n *NIC) isManagement(s packet.Summary) bool {
	if n.mgmtPort == 0 || s.Proto != packet.ProtoTCP || !s.HasPorts {
		return false
	}
	return (s.Src == n.mgmtPeer && s.DstPort == n.mgmtPort) ||
		(s.Dst == n.mgmtPeer && s.SrcPort == n.mgmtPort)
}

// Locked reports whether the card is wedged (the EFW Deny-All failure).
func (n *NIC) Locked() bool { return n.locked }

// RestartAgent models restarting the firewall agent software, which the
// paper found was the only way to restore a wedged card. Installed policy
// and groups survive; queued work is discarded.
func (n *NIC) RestartAgent() {
	n.locked = false
	n.deniedInWin = 0
	n.winStart = n.kernel.Now()
	n.proc.Reset()
	// A restart also clears the degraded machine back to healthy with
	// the committed policy enforced.
	if n.updateEv != nil {
		n.updateEv.Cancel()
		n.updateEv = nil
	}
	if n.recoverEv != nil {
		n.recoverEv.Cancel()
		n.recoverEv = nil
	}
	if n.degState != StateHealthy {
		n.setRules(n.lastCommitted)
		n.degState = StateHealthy
		n.conntrackRecovered()
	}
}

// Send transmits an IP datagram to the given destination MAC, subject to
// the card's egress policy. It reports whether the datagram was accepted
// for transmission.
func (n *NIC) Send(d *packet.Datagram, dstMAC packet.MAC) bool {
	n.stats.TxRequests++
	if n.locked {
		n.stats.TxLockedDrops++
		n.txDrops[tracing.DropAgentNotReady]++
		return false
	}
	// Summarize the datagram directly: it is wire-identical to the frame
	// payload marshaled below, and skips a parse of bytes we just built.
	s, err := packet.SummarizeDatagram(d)
	if err != nil {
		n.stats.TxDenied++
		n.txDrops[tracing.DropMalformed]++
		return false
	}

	// Egress is where every simulated packet first meets a NIC, so the
	// sampling decision lives here; sampled frames carry the trace ID
	// through the rest of the pipeline.
	var tid uint64
	tr := n.tracer
	if tr != nil && tr.Take() {
		tid = tr.Begin(s.String())
	}

	if n.degState == StateDegraded {
		if handled, sent := n.degradedEgress(d, dstMAC, s, tid); handled {
			return sent
		}
	}

	verdict := fw.Verdict{Action: fw.Allow}
	path := MatchNone
	cs := fw.StateNone
	var ctCost float64
	stateFull := false
	if n.rules != nil && !n.isManagement(s) {
		// Conntrack sees both directions: the outbound SYN creates the
		// entry the inbound SYN/ACK will be classified against.
		cs, ctCost = n.classifyConn(s)
		if cs == fw.StateInvalid {
			if _, ok := n.proc.Admit(n.profile.CostPath(MatchNone, 0, 0) + ctCost); ok {
				if n.prof != nil {
					base, match, crypto := n.profile.CostPartsPath(MatchNone, 0, 0)
					n.prof.RecordTx(0, 0, base, match+ctCost, crypto)
				}
				n.stats.TxNoStateDrops++
				n.txDrops[tracing.DropNoState]++
				if tid != 0 {
					tr.Drop(tid, tracing.StageNICTx, tracing.DropNoState)
				}
			} else {
				n.stats.TxOverloadDrops++
				reason := n.overloadReason()
				n.txDrops[reason]++
				n.noteOverload(reason)
				if tid != 0 {
					tr.Drop(tid, tracing.StageNICTx, reason)
				}
			}
			return false
		}
		verdict, path = n.evalPolicy(s, fw.Out, cs)
		if tid != 0 {
			tr.RuleWalk(tid, verdict.Index, verdict.Traversed, verdict.Action.String())
		}
		if verdict.Action == fw.Allow {
			insertCost, fullDrop := n.commitConn(s, cs)
			ctCost += insertCost
			stateFull = fullDrop
		}
	}

	cryptoBytes := 0
	sealGroup := ""
	if verdict.Action == fw.Allow && verdict.Rule != nil && verdict.Rule.IsVPG() {
		sealGroup = verdict.Rule.VPG
		cryptoBytes = len(d.Payload) + vpg.Overhead(len(sealGroup))
	}

	completeAt, ok := n.proc.Admit(n.profile.CostPath(path, verdict.Traversed, cryptoBytes) + ctCost)
	if !ok {
		n.stats.TxOverloadDrops++
		reason := n.overloadReason()
		n.txDrops[reason]++
		n.noteOverload(reason)
		if tid != 0 {
			tr.Drop(tid, tracing.StageNICTx, reason)
		}
		return false
	}
	if n.prof != nil {
		base, match, crypto := n.profile.CostPartsPath(path, verdict.Traversed, cryptoBytes)
		n.prof.RecordTx(verdict.Traversed, verdict.Index, base, match+ctCost, crypto)
	}
	if verdict.Action == fw.Deny {
		n.stats.TxDenied++
		n.txDrops[tracing.DropRuleDeny]++
		if tid != 0 {
			tr.Drop(tid, tracing.StageNICTx, tracing.DropRuleDeny)
		}
		return false
	}
	if stateFull {
		n.stats.TxStateFullDrops++
		n.txDrops[tracing.DropStateTableFull]++
		if tid != 0 {
			tr.Drop(tid, tracing.StageNICTx, tracing.DropStateTableFull)
		}
		return false
	}

	var frame *packet.Frame
	if sealGroup != "" {
		sealed, ok := n.seal(sealGroup, d, dstMAC)
		if !ok {
			n.txDrops[tracing.DropNoGroup]++
			if tid != 0 {
				tr.Drop(tid, tracing.StageVPG, tracing.DropNoGroup)
			}
			return false
		}
		frame = sealed
		if tid != 0 {
			tr.Point(tid, tracing.StageVPG, "sealed "+sealGroup)
		}
	} else {
		frame = &packet.Frame{Dst: dstMAC, Src: n.mac, Type: packet.EtherTypeIPv4, Payload: d.Marshal()}
	}
	if len(frame.Payload) > packet.MaxPayload {
		n.stats.TxOversize++
		n.txDrops[tracing.DropOversize]++
		if tid != 0 {
			tr.Drop(tid, tracing.StageNICTx, tracing.DropOversize)
		}
		return false
	}
	n.stats.TxAllowed++
	if tid != 0 {
		frame.TraceID = tid
		tr.Span(tid, tracing.StageNICTx, n.kernel.Now(), completeAt)
	}
	// The frame leaves the card once the embedded processor finishes it.
	n.kernel.AtCall(completeAt, n.txFn, frame)
	return true
}

// SendRawFrame transmits a pre-built frame without policy evaluation or
// sealing — attacker tooling (raw sockets on a non-filtering card). A
// filtering card still charges its base processing cost and honors
// lockup; a standard card passes it straight through.
func (n *NIC) SendRawFrame(f *packet.Frame) bool {
	n.stats.TxRequests++
	var tid uint64
	tr := n.tracer
	if tr != nil && tr.Take() {
		if s, err := packet.Summarize(f); err == nil {
			tid = tr.Begin(s.String())
		} else {
			tid = tr.Begin("raw frame")
		}
	}
	if n.locked {
		n.stats.TxLockedDrops++
		n.txDrops[tracing.DropAgentNotReady]++
		if tid != 0 {
			tr.Drop(tid, tracing.StageNICTx, tracing.DropAgentNotReady)
		}
		return false
	}
	if n.degState == StateDegraded {
		switch n.failMode {
		case FailModeOpen:
			// Hardware bypass: the frame skips the (degraded) filter
			// processor entirely.
			n.stats.DegradedPass++
			n.stats.TxAllowed++
			if tid != 0 {
				f.TraceID = tid
				tr.Point(tid, tracing.StageNICTx, "degraded fail-open pass")
			}
			n.ep.Send(f)
			return true
		case FailModeClosed:
			n.stats.TxDegradedDrops++
			n.txDrops[tracing.DropDegraded]++
			if tid != 0 {
				tr.Drop(tid, tracing.StageNICTx, tracing.DropDegraded)
			}
			return false
		case FailModeNone, NumFailModes:
			// Unreachable: StateDegraded requires an armed machine.
		}
	}
	completeAt, ok := n.proc.Admit(n.profile.CostPath(MatchNone, 0, 0))
	if !ok {
		n.stats.TxOverloadDrops++
		reason := n.overloadReason()
		n.txDrops[reason]++
		n.noteOverload(reason)
		if tid != 0 {
			tr.Drop(tid, tracing.StageNICTx, reason)
		}
		return false
	}
	if n.prof != nil {
		base, match, crypto := n.profile.CostPartsPath(MatchNone, 0, 0)
		n.prof.RecordTx(0, 0, base, match, crypto)
	}
	n.stats.TxAllowed++
	if tid != 0 {
		f.TraceID = tid
		tr.Span(tid, tracing.StageNICTx, n.kernel.Now(), completeAt)
	}
	n.kernel.AtCall(completeAt, n.txFn, f)
	return true
}

// seal wraps the datagram's transport segment in a VPG envelope and
// returns the sealed frame.
func (n *NIC) seal(group string, d *packet.Datagram, dstMAC packet.MAC) (*packet.Frame, bool) {
	sealer, ok := n.sealers[group]
	if !ok {
		n.stats.TxNoGroup++
		return nil, false
	}
	env, err := sealer.Seal(d.Header.Dst, d.Header.Protocol, d.Payload)
	if err != nil {
		n.stats.TxNoGroup++
		return nil, false
	}
	n.ipID++
	outer := packet.NewDatagram(d.Header.Src, d.Header.Dst, packet.ProtoVPGEncap, n.ipID, env)
	n.stats.Sealed++
	return &packet.Frame{Dst: dstMAC, Src: n.mac, Type: packet.EtherTypeVPG, Payload: outer.Marshal()}, true
}

// handleFrame is the ingress path: MAC filtering (free, in hardware),
// policy evaluation and optional VPG opening on the embedded processor,
// then delivery to the host. On the per-packet hot path
// (BenchmarkRxPath): the untraced steady state must not allocate.
//
//barbican:noalloc
func (n *NIC) handleFrame(f *packet.Frame) {
	if f.Dst != n.mac && !f.Dst.IsBroadcast() {
		return
	}
	n.stats.RxFrames++
	tid := f.TraceID
	tr := n.tracer
	if tr == nil {
		tid = 0
	}
	if n.locked {
		n.stats.RxLockedDrops++
		n.rxDrops[tracing.DropAgentNotReady]++
		if tid != 0 {
			tr.Drop(tid, tracing.StageNICRx, tracing.DropAgentNotReady)
		}
		return
	}
	if f.Type == packet.EtherTypeARP {
		// The cards filter IP; address resolution passes untouched (and
		// unmetered — ARP is handled below the filtering processor).
		if n.deliver != nil {
			n.deliver(f)
		}
		return
	}
	s, err := packet.Summarize(f)
	if err != nil {
		n.stats.RxMalformed++
		n.rxDrops[tracing.DropMalformed]++
		if tid != 0 {
			tr.Drop(tid, tracing.StageNICRx, tracing.DropMalformed)
		}
		return
	}

	if n.degState == StateDegraded && n.degradedIngress(f, s, tid) {
		return
	}

	verdict := fw.Verdict{Action: fw.Allow}
	path := MatchNone
	cs := fw.StateNone
	var ctCost float64
	stateFull := false
	if n.rules != nil && !n.isManagement(s) {
		cs, ctCost = n.classifyConn(s)
		if cs == fw.StateInvalid {
			// A packet that contradicts tracked connection state is
			// dropped before rule evaluation — the NIC-offload posture is
			// strict, unlike the host filter where rules may still match
			// INVALID explicitly. The lookup still cost the processor.
			if _, ok := n.proc.Admit(n.profile.CostPath(MatchNone, 0, 0) + ctCost); ok {
				if n.prof != nil {
					base, match, crypto := n.profile.CostPartsPath(MatchNone, 0, 0)
					n.prof.RecordRx(0, 0, base, match+ctCost, crypto) //barbican:allow alloc -- profiled-only branch; prof==nil on the contract path
				}
				n.stats.RxNoStateDrops++
				n.rxDrops[tracing.DropNoState]++
				if tid != 0 {
					tr.Drop(tid, tracing.StageNICRx, tracing.DropNoState)
				}
			} else {
				n.stats.RxOverloadDrops++
				reason := n.overloadReason()
				n.rxDrops[reason]++
				n.noteOverload(reason)
				if tid != 0 {
					tr.Drop(tid, tracing.StageNICRx, reason)
				}
			}
			return
		}
		verdict, path = n.evalPolicy(s, fw.In, cs)
		if tid != 0 {
			tr.RuleWalk(tid, verdict.Index, verdict.Traversed, verdict.Action.String()) //barbican:allow alloc -- traced-only branch; tid==0 when no tracer is attached
		}
		if verdict.Action == fw.Allow {
			// Only allowed packets occupy state-table slots: a denied SYN
			// never consumes conntrack memory (netfilter's conntrack
			// records what filter admits, not what arrives).
			insertCost, fullDrop := n.commitConn(s, cs)
			ctCost += insertCost
			stateFull = fullDrop
		}
	}

	cryptoBytes := 0
	if s.Sealed {
		matchedVPG := verdict.Action == fw.Allow && verdict.Rule != nil && verdict.Rule.IsVPG()
		switch {
		case n.profile.EagerVPGDecrypt:
			// Ablation ABL2: an eager filter trial-decrypts the envelope
			// at every candidate VPG rule it traverses, so non-matching
			// VPGs above the action pair multiply the crypto cost. The
			// real ADF is lazy — it decrypts once, at the matching rule.
			trials := 1
			if n.rules != nil {
				if c := n.rules.CountVPGCandidates(fw.In, verdict.Traversed); c > trials {
					trials = c
				}
			}
			cryptoBytes = trials * s.IPLen
		case matchedVPG:
			cryptoBytes = s.IPLen
		}
	}

	completeAt, ok := n.proc.Admit(n.profile.CostPath(path, verdict.Traversed, cryptoBytes) + ctCost)
	if !ok {
		n.stats.RxOverloadDrops++
		reason := n.overloadReason()
		n.rxDrops[reason]++
		n.noteOverload(reason)
		if tid != 0 {
			tr.Drop(tid, tracing.StageNICRx, reason)
		}
		return
	}
	if n.prof != nil {
		base, match, crypto := n.profile.CostPartsPath(path, verdict.Traversed, cryptoBytes)
		n.prof.RecordRx(verdict.Traversed, verdict.Index, base, match+ctCost, crypto) //barbican:allow alloc -- profiled-only branch; prof==nil on the contract path
	}
	if verdict.Action == fw.Deny {
		n.stats.RxDenied++
		n.rxDrops[tracing.DropRuleDeny]++
		if tid != 0 {
			tr.Drop(tid, tracing.StageNICRx, tracing.DropRuleDeny)
		}
		n.noteDenied()
		return
	}
	if stateFull {
		// Policy said allow but the state table is full and the posture
		// is not fail-open: the connection cannot be tracked, so it is
		// not admitted. The work was already done, hence after Admit.
		n.stats.RxStateFullDrops++
		n.rxDrops[tracing.DropStateTableFull]++
		if tid != 0 {
			tr.Drop(tid, tracing.StageNICRx, tracing.DropStateTableFull)
		}
		return
	}
	if tid != 0 {
		tr.Span(tid, tracing.StageNICRx, n.kernel.Now(), completeAt)
	}
	var pi *pendingIngress
	if k := len(n.ingressFree); k > 0 {
		pi = n.ingressFree[k-1]
		n.ingressFree[k-1] = nil
		n.ingressFree = n.ingressFree[:k-1]
	} else {
		pi = &pendingIngress{} //barbican:allow alloc -- cold-path freelist refill; steady state recycles
	}
	pi.f, pi.s, pi.verdict = f, s, verdict
	n.kernel.AtCall(completeAt, n.finishFn, pi)
}

// finishIngress runs after the processor's admission delay: VPG opening
// if sealed, then delivery. On the per-packet hot path (BenchmarkRxPath).
//
//barbican:noalloc
func (n *NIC) finishIngress(f *packet.Frame, s packet.Summary, verdict fw.Verdict) {
	tid := f.TraceID
	if n.tracer == nil {
		tid = 0
	}
	if n.locked {
		n.stats.RxLockedDrops++
		n.rxDrops[tracing.DropAgentNotReady]++
		if tid != 0 {
			n.tracer.Drop(tid, tracing.StageNICRx, tracing.DropAgentNotReady)
		}
		return
	}
	if !s.Sealed {
		n.stats.RxAllowed++
		if n.deliver != nil {
			n.deliver(f)
		}
		return
	}
	inner, ok := n.open(f, s, verdict, tid)
	if !ok {
		return
	}
	n.stats.RxAllowed++
	if n.deliver != nil {
		n.deliver(inner)
	}
}

// open verifies and decrypts a sealed frame, returning the reconstructed
// cleartext frame. tid is the frame's sampled trace (0 = untraced);
// drop reasons are recorded against it and propagated to the inner
// frame on success.
func (n *NIC) open(f *packet.Frame, s packet.Summary, verdict fw.Verdict, tid uint64) (*packet.Frame, bool) {
	drop := func(stat *uint64, reason tracing.DropReason) {
		*stat++
		n.rxDrops[reason]++
		if tid != 0 {
			n.tracer.Drop(tid, tracing.StageVPG, reason)
		}
	}
	outer, err := packet.UnmarshalDatagram(f.Payload)
	if err != nil {
		drop(&n.stats.RxMalformed, tracing.DropMalformed)
		return nil, false
	}
	name, err := vpg.PeekGroupName(outer.Payload)
	if err != nil {
		drop(&n.stats.RxMalformed, tracing.DropMalformed)
		return nil, false
	}
	// Policy must have admitted the packet via the VPG rule for this
	// group; sealed traffic admitted any other way is a configuration
	// error and is dropped.
	if verdict.Rule == nil || verdict.Rule.VPG != name {
		if n.rules != nil {
			drop(&n.stats.RxNoGroup, tracing.DropNoGroup)
			return nil, false
		}
	}
	g, ok := n.groups[name]
	if !ok {
		drop(&n.stats.RxNoGroup, tracing.DropNoGroup)
		return nil, false
	}
	proto, transport, seq, err := g.Open(outer.Header.Src, outer.Header.Dst, outer.Payload)
	if err != nil {
		drop(&n.stats.RxAuthFailures, tracing.DropAuthFail)
		return nil, false
	}
	key := replayKey{group: name, sender: outer.Header.Src}
	w := n.replay[key]
	if w == nil {
		w = &vpg.ReplayWindow{}
		n.replay[key] = w
	}
	if !w.Check(seq) {
		drop(&n.stats.RxReplayDrops, tracing.DropReplay)
		return nil, false
	}
	n.stats.Opened++
	if tid != 0 {
		n.tracer.Point(tid, tracing.StageVPG, "opened "+name)
	}
	inner := packet.NewDatagram(outer.Header.Src, outer.Header.Dst, proto, outer.Header.ID, transport)
	return &packet.Frame{Dst: f.Dst, Src: f.Src, Type: packet.EtherTypeIPv4, Payload: inner.Marshal(), TraceID: tid}, true
}

// noteDenied tracks the denied-packet rate for the EFW lockup failure.
func (n *NIC) noteDenied() {
	if n.profile.LockupDeniedPPS <= 0 {
		return
	}
	now := n.kernel.Now()
	if now-n.winStart >= time.Second {
		n.winStart = now
		n.deniedInWin = 0
	}
	n.deniedInWin++
	if n.deniedInWin > n.profile.LockupDeniedPPS {
		n.locked = true
		n.stats.Lockups++
	}
}
