package nic

import (
	"testing"

	"barbican/internal/fw"
	"barbican/internal/link"
	"barbican/internal/obs"
	"barbican/internal/obs/tracing"
	"barbican/internal/packet"
	"barbican/internal/sim"
)

// benchRx drives the card's ingress path — handleFrame plus the kernel
// events it schedules — once per iteration. It backs the zero-cost-
// when-disabled contract: BenchmarkRxPath/instrumented publishes every
// card counter to a registry (no recorder sampling it) and must be
// within noise of BenchmarkRxPath/uninstrumented, because collector
// closures only run at gather time. With sampleEvery > 0 a packet
// tracer is attached and frames are stamped upstream at that 1-in-N
// rate, measuring the tracing overhead documented in DESIGN.md §8.
func benchRx(b *testing.B, instrument bool, sampleEvery int) {
	k := sim.NewKernel()
	_, eb := link.New(k, link.Config{QueueFrames: 1 << 16})
	n := New(k, macB, EFW(), eb)
	n.InstallRuleSet(fw.MustRuleSet(fw.Deny,
		fw.Rule{Action: fw.Allow, Direction: fw.In, Proto: packet.ProtoUDP, DstPorts: fw.Port(2000)},
	))
	n.SetDeliver(func(f *packet.Frame) {})
	if instrument {
		n.PublishMetrics(obs.NewRegistry(), obs.L("host", "bench"))
	}
	var tr *tracing.Tracer
	if sampleEvery > 0 {
		tr = tracing.New(k, tracing.Options{SampleEvery: sampleEvery, Limit: 1024})
		n.SetTracer(tr)
	}

	d := udpDatagram(ipA, ipB, 1000, 2000, 100)
	f := &packet.Frame{Dst: macB, Src: macA, Type: packet.EtherTypeIPv4, Payload: d.Marshal()}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr != nil {
			// Stamp the frame the way the sending NIC would.
			f.TraceID = 0
			if tr.Take() {
				f.TraceID = tr.Begin("bench udp")
			}
		}
		n.handleFrame(f)
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := n.Stats().RxAllowed; got != uint64(b.N) {
		b.Fatalf("rx allowed = %d, want %d", got, b.N)
	}
	if tr != nil && b.N >= sampleEvery && tr.Sampled() == 0 {
		b.Fatal("tracer attached but nothing sampled")
	}
}

func BenchmarkRxPath(b *testing.B) {
	b.Run("uninstrumented", func(b *testing.B) { benchRx(b, false, 0) })
	b.Run("instrumented", func(b *testing.B) { benchRx(b, true, 0) })
	b.Run("traced-1in64", func(b *testing.B) { benchRx(b, true, 64) })
}
